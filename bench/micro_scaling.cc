// Scalability micro-bench: end-to-end runtime vs dataset size and vs
// thread count (the paper's headline scaling claim is that the relaxed
// model reaches millions of tuples; our substrate parallelizes detection,
// grounding, and Gibbs chains with deterministic results).

#include <cstdio>

#include "common.h"
#include "holoclean/data/food.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

int main() {
  std::printf("Micro: runtime scaling (Food profile, DC-Feats mode)\n\n");
  std::vector<int> widths = {8, 9, 11, 12, 11, 11};
  PrintRule(widths);
  PrintRow({"Rows", "Threads", "Detect (s)", "Compile (s)", "Learn (s)",
            "Infer (s)"},
           widths);
  PrintRule(widths);
  for (size_t rows : {2000, 4000, 8000, 16000}) {
    FoodOptions options;
    options.num_rows = rows;
    GeneratedData data = MakeFood(options);
    HoloCleanConfig config = PaperConfig("food");
    RunOutcome outcome = RunPipeline(&data, config, false);
    PrintRow({std::to_string(rows), "all",
              Fmt(outcome.stats.detect_seconds, 2),
              Fmt(outcome.stats.compile_seconds, 2),
              Fmt(outcome.stats.learn_seconds, 2),
              Fmt(outcome.stats.infer_seconds, 2)},
             widths);
  }
  PrintRule(widths);
  for (size_t threads : {1, 2, 4, 8}) {
    FoodOptions options;
    options.num_rows = 8000;
    GeneratedData data = MakeFood(options);
    HoloCleanConfig config = PaperConfig("food");
    config.num_threads = threads;
    RunOutcome outcome = RunPipeline(&data, config, false);
    PrintRow({"8000", std::to_string(threads),
              Fmt(outcome.stats.detect_seconds, 2),
              Fmt(outcome.stats.compile_seconds, 2),
              Fmt(outcome.stats.learn_seconds, 2),
              Fmt(outcome.stats.infer_seconds, 2)},
             widths);
  }
  PrintRule(widths);
  return 0;
}
