// Streaming ingestion: incremental append+clean vs from-scratch re-clean
// over an append-only Food table. A warm base session absorbs batches of
// 64 tuples through StreamSession (delta detection, incremental grounding,
// warm-started SGD); the baseline re-cleans the grown table from scratch
// at every batch boundary — what a system without incremental maintenance
// would pay for the same freshness. Reports sustained tuples/sec, the
// per-batch speedup, and the warm-vs-scratch repair quality.

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/data/food.h"
#include "holoclean/stream/stream_session.h"
#include "holoclean/util/csv.h"
#include "holoclean/util/timer.h"

using namespace holoclean;         // NOLINT
using namespace holoclean::bench;  // NOLINT

namespace {

constexpr size_t kBatchRows = 64;
constexpr size_t kBatches = 4;

struct StreamSplit {
  CsvDocument base;
  CsvDocument clean_full;
  std::vector<std::vector<std::string>> tail;
  std::vector<std::vector<std::string>> clean_tail;
  std::vector<DenialConstraint> dcs;
};

StreamSplit MakeStreamSplit(size_t base_rows, size_t tail_rows,
                            uint64_t seed) {
  FoodOptions options;
  options.num_rows = base_rows + tail_rows;
  options.error_rate = 0.06;
  options.seed = seed;
  GeneratedData data = MakeFood(options);
  StreamSplit split;
  CsvDocument full = data.dataset.dirty().ToCsv();
  split.clean_full = data.dataset.clean().ToCsv();
  split.base.header = full.header;
  for (size_t i = 0; i < full.rows.size(); ++i) {
    if (i < base_rows) {
      split.base.rows.push_back(full.rows[i]);
    } else {
      split.tail.push_back(full.rows[i]);
      split.clean_tail.push_back(split.clean_full.rows[i]);
    }
  }
  split.dcs = std::move(data.dcs);
  return split;
}

/// Builds a dataset of the first `rows` dirty tuples with aligned ground
/// truth, as a cold re-clean at a batch boundary would see it.
Dataset PrefixDataset(const StreamSplit& split, size_t rows) {
  CsvDocument doc;
  doc.header = split.base.header;
  for (size_t i = 0; i < rows; ++i) {
    doc.rows.push_back(i < split.base.rows.size()
                           ? split.base.rows[i]
                           : split.tail[i - split.base.rows.size()]);
  }
  auto table = Table::FromCsv(doc);
  if (!table.ok()) {
    std::fprintf(stderr, "prefix table failed: %s\n",
                 table.status().ToString().c_str());
    std::abort();
  }
  Dataset dataset(std::move(table).value());
  Table clean(dataset.dirty().schema(), dataset.dirty().dict_ptr());
  for (size_t i = 0; i < rows; ++i) clean.AppendRow(split.clean_full.rows[i]);
  dataset.set_clean(std::move(clean));
  return dataset;
}

}  // namespace

int main() {
  size_t base_rows = static_cast<size_t>(2000 * BenchScale());
  size_t tail_rows = kBatches * kBatchRows;
  std::printf("Streaming ingestion on generated Food: %zu base rows, "
              "%zu batches x %zu appended tuples\n\n",
              base_rows, kBatches, kBatchRows);

  HoloCleanConfig config = PaperConfig("food");
  StreamSplit split = MakeStreamSplit(base_rows, tail_rows, 7701);

  // Warm side: clean the base once (not timed on either side — both
  // worlds pay it), then stream the tail incrementally.
  Dataset stream_dataset = PrefixDataset(split, base_rows);
  SessionOptions session_options;
  session_options.config = config;
  auto opened = OpenStandaloneSession(
      CleaningInputs::Borrowed(&stream_dataset, &split.dcs), session_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "base session failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Session session = std::move(opened).value();
  Timer timer;
  if (!session.RunThrough(StageId::kRepair).ok()) return 1;
  double base_seconds = timer.Seconds();

  StreamOptions stream_options;
  stream_options.mode = StreamMode::kWarm;
  StreamSession stream(&session, stream_options);

  std::vector<double> incr_seconds(kBatches, 0.0);
  std::vector<double> scratch_seconds(kBatches, 0.0);
  std::vector<Repair> warm_repairs;
  EvalResult scratch_eval;
  for (size_t b = 0; b < kBatches; ++b) {
    std::vector<std::vector<std::string>> batch(
        split.tail.begin() + static_cast<std::ptrdiff_t>(b * kBatchRows),
        split.tail.begin() + static_cast<std::ptrdiff_t>((b + 1) * kBatchRows));
    std::vector<std::vector<std::string>> clean_batch(
        split.clean_tail.begin() + static_cast<std::ptrdiff_t>(b * kBatchRows),
        split.clean_tail.begin() +
            static_cast<std::ptrdiff_t>((b + 1) * kBatchRows));
    timer.Reset();
    auto updated = stream.AppendRows(batch, &clean_batch);
    incr_seconds[b] = timer.Seconds();
    if (!updated.ok()) {
      std::fprintf(stderr, "append %zu failed: %s\n", b,
                   updated.status().ToString().c_str());
      return 1;
    }
    warm_repairs = updated.value().repairs;

    // Baseline: a cold end-to-end clean of the same grown table.
    Dataset grown = PrefixDataset(split, base_rows + (b + 1) * kBatchRows);
    timer.Reset();
    auto cold = CleanOnce(CleaningInputs::Borrowed(&grown, &split.dcs),
                          session_options);
    scratch_seconds[b] = timer.Seconds();
    if (!cold.ok()) {
      std::fprintf(stderr, "scratch %zu failed: %s\n", b,
                   cold.status().ToString().c_str());
      return 1;
    }
    if (b + 1 == kBatches) {
      scratch_eval = EvaluateRepairs(grown, cold.value().repairs);
    }
  }

  EvalResult warm_eval = EvaluateRepairs(stream_dataset, warm_repairs);
  const StreamStats& stats = stream.stats();

  std::vector<int> widths = {7, 10, 10, 10, 9};
  PrintRule(widths);
  PrintRow({"batch", "rows", "incr (s)", "cold (s)", "speedup"}, widths);
  PrintRule(widths);
  double incr_total = 0.0;
  double scratch_total = 0.0;
  for (size_t b = 0; b < kBatches; ++b) {
    incr_total += incr_seconds[b];
    scratch_total += scratch_seconds[b];
    PrintRow({std::to_string(b + 1),
              std::to_string(base_rows + (b + 1) * kBatchRows),
              Fmt(incr_seconds[b]), Fmt(scratch_seconds[b]),
              Fmt(incr_seconds[b] > 0.0
                      ? scratch_seconds[b] / incr_seconds[b]
                      : 0.0,
                  1)},
             widths);
  }
  PrintRule(widths);

  double speedup = incr_total > 0.0 ? scratch_total / incr_total : 0.0;
  double tuples_per_sec =
      incr_total > 0.0 ? static_cast<double>(tail_rows) / incr_total : 0.0;
  std::printf(
      "\nbase clean: %ss; appended %zu tuples in %zu batches "
      "(%zu compactions)\n"
      "incremental total: %ss  from-scratch total: %ss  speedup: %sx\n"
      "sustained ingest: %s tuples/sec\n"
      "quality: warm f1 %s vs from-scratch f1 %s\n",
      Fmt(base_seconds).c_str(), stats.appended_rows, stats.batches,
      stats.compactions, Fmt(incr_total).c_str(), Fmt(scratch_total).c_str(),
      Fmt(speedup, 1).c_str(), Fmt(tuples_per_sec, 0).c_str(),
      Fmt(warm_eval.f1).c_str(), Fmt(scratch_eval.f1).c_str());

  AppendBenchMetric("micro_stream", "stream_tuples_per_sec", tuples_per_sec);
  AppendBenchMetric("micro_stream", "stream_speedup_b64", speedup);
  AppendBenchMetric("micro_stream", "stream_incremental_seconds", incr_total);
  AppendBenchMetric("micro_stream", "stream_scratch_seconds", scratch_total);
  AppendBenchMetric("micro_stream", "warm_f1", warm_eval.f1);
  AppendBenchMetric("micro_stream", "scratch_f1", scratch_eval.f1);
  return 0;
}
