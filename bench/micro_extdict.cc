// Reproduces §6.3.2 of the paper: the F1 gain from incorporating external
// dictionaries through matching dependencies. The paper reports gains below
// 1% on all datasets (limited dictionary coverage), with Physicians at
// exactly zero due to the zip format mismatch.

#include <cstdio>

#include "common.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

int main() {
  std::printf("Micro §6.3.2: F1 with and without external dictionaries\n\n");
  std::vector<int> widths = {12, 12, 12, 10};
  PrintRule(widths);
  PrintRow({"Dataset", "F1 w/o dict", "F1 w/ dict", "Gain"}, widths);
  PrintRule(widths);
  for (const std::string& name : AllDatasetNames()) {
    if (name == "flights") continue;  // No dictionary exists for Flights.
    GeneratedData without = MakeDataset(name);
    RunOutcome base = RunPipeline(&without, PaperConfig(name), false);
    GeneratedData with = MakeDataset(name);
    RunOutcome dict = RunPipeline(&with, PaperConfig(name), true);
    PrintRow({name, Fmt(base.eval.f1), Fmt(dict.eval.f1),
              Fmt(dict.eval.f1 - base.eval.f1)},
             widths);
  }
  PrintRule(widths);
  return 0;
}
