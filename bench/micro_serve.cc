// Serving-tier micro-bench: request throughput and latency of the
// multi-tenant CleaningServer over three workloads, dispatched through
// the exact code path the TCP front end uses (Handle(), minus socket
// framing so the numbers isolate the serving stack, not loopback I/O).
//
//  - cold:  first-touch cleans, one per (tenant, dataset) slot — full
//           pipeline runs behind a registry lookup + admission ticket.
//  - warm:  repeat cleans over the parked sessions in the engine LRU —
//           cached-report lookups, the steady-state serving hot path.
//  - mixed: round-robin over more slots than the LRU holds with spill
//           enabled, so requests alternate warm hits with
//           restore-from-spill misses (the capacity-pressure regime).
//  - saturation: offered load beyond admission capacity (4 threads per
//           single-inflight tenant, a deterministic per-request service
//           hold via a failpoint delay), run twice — once with the
//           deadline-aware request queue, once reject-only — to compare
//           goodput and tail latency under overload.
//
// Warm responses are cross-checked byte-for-byte against the cold
// responses of the same slot (the LRU trades nothing for correctness),
// and so are the responses answered under saturation.
//
// Emits JSON-lines metrics via HOLOCLEAN_BENCH_JSON (aggregated into
// BENCH_ci.json by CI): QPS per workload, p50/p99 latency, the
// warm-over-cold speedup the CI ratio gate holds at >= 1.5x, and the
// saturation goodput gate (queueing must not lose work the reject-only
// config would have answered).

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "holoclean/data/food.h"
#include "holoclean/serve/server.h"
#include "holoclean/util/csv.h"
#include "holoclean/util/failpoint.h"
#include "holoclean/util/timer.h"

using namespace holoclean;         // NOLINT
using namespace holoclean::bench;  // NOLINT

namespace {

constexpr size_t kSlots = 6;        // Distinct (tenant, dataset) pairs.
constexpr size_t kWarmRounds = 25;  // Warm requests per slot.

struct Payload {
  std::string csv;
  std::string dcs;
};

Payload MakePayload(size_t i, size_t rows) {
  FoodOptions options;
  options.num_rows = rows;
  options.error_rate = 0.05 + 0.01 * static_cast<double>(i);
  options.seed = 911 + i;
  GeneratedData data = MakeFood(options);
  Payload payload;
  payload.csv = WriteCsv(data.dataset.dirty().ToCsv());
  for (const DenialConstraint& dc : data.dcs) {
    payload.dcs += dc.ToString(data.dataset.dirty().schema()) + "\n";
  }
  return payload;
}

JsonValue CleanFrame(size_t slot) {
  JsonValue frame = JsonValue::Object();
  frame.Set("op", JsonValue::String("clean"));
  frame.Set("tenant", JsonValue::String("tenant" + std::to_string(slot)));
  frame.Set("dataset", JsonValue::String("food"));
  return frame;
}

std::string RepairsDump(const JsonValue& response) {
  const JsonValue* report = response.Find("report");
  const JsonValue* repairs =
      report != nullptr ? report->Find("repairs") : nullptr;
  return repairs != nullptr ? repairs->Dump() : "<missing>";
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size()));
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

struct WorkloadStats {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

WorkloadStats Summarize(const std::vector<double>& latencies_ms,
                        double total_seconds) {
  WorkloadStats stats;
  stats.qps = static_cast<double>(latencies_ms.size()) / total_seconds;
  stats.p50_ms = Percentile(latencies_ms, 0.50);
  stats.p99_ms = Percentile(latencies_ms, 0.99);
  return stats;
}

}  // namespace

int main() {
  size_t rows = static_cast<size_t>(800 * BenchScale());
  if (rows < 150) rows = 150;

  std::printf(
      "Micro: serving-tier QPS/latency (Food profile, %zu slots, %zu rows "
      "each, %zu warm rounds)\n\n",
      kSlots, rows, kWarmRounds);

  serve::ServerOptions options;
  options.default_config = PaperConfig("food");
  options.session_cache_capacity = kSlots;
  options.admission.per_tenant_inflight = 2;
  options.admission.global_inflight = 2 * kSlots;
  serve::CleaningServer server(options);

  std::vector<Payload> payloads;
  payloads.reserve(kSlots);
  for (size_t i = 0; i < kSlots; ++i) {
    payloads.push_back(MakePayload(i, rows));
  }
  auto register_slot = [&](serve::CleaningServer& target, size_t i) {
    JsonValue frame = JsonValue::Object();
    frame.Set("op", JsonValue::String("register_dataset"));
    frame.Set("tenant", JsonValue::String("tenant" + std::to_string(i)));
    frame.Set("dataset", JsonValue::String("food"));
    frame.Set("csv", JsonValue::String(payloads[i].csv));
    frame.Set("constraints", JsonValue::String(payloads[i].dcs));
    return target.Handle(frame).GetBool("ok");
  };
  for (size_t i = 0; i < kSlots; ++i) {
    if (!register_slot(server, i)) {
      std::fprintf(stderr, "register %zu failed\n", i);
      return 1;
    }
  }

  // --- Cold: first touch of every slot.
  std::vector<std::string> cold_repairs(kSlots);
  std::vector<double> cold_latencies;
  Timer cold_timer;
  for (size_t i = 0; i < kSlots; ++i) {
    Timer request_timer;
    JsonValue response = server.Handle(CleanFrame(i));
    cold_latencies.push_back(request_timer.Millis());
    if (!response.GetBool("ok") || response.GetBool("warm")) {
      std::fprintf(stderr, "cold clean %zu failed: %s\n", i,
                   response.Dump().c_str());
      return 1;
    }
    cold_repairs[i] = RepairsDump(response);
  }
  WorkloadStats cold = Summarize(cold_latencies, cold_timer.Seconds());

  // --- Warm: steady-state repeats over the parked sessions.
  bool identical = true;
  std::vector<double> warm_latencies;
  Timer warm_timer;
  for (size_t round = 0; round < kWarmRounds; ++round) {
    for (size_t i = 0; i < kSlots; ++i) {
      Timer request_timer;
      JsonValue response = server.Handle(CleanFrame(i));
      warm_latencies.push_back(request_timer.Millis());
      if (!response.GetBool("ok") || !response.GetBool("warm")) {
        std::fprintf(stderr, "warm clean %zu failed: %s\n", i,
                     response.Dump().c_str());
        return 1;
      }
      identical = identical && RepairsDump(response) == cold_repairs[i];
    }
  }
  WorkloadStats warm = Summarize(warm_latencies, warm_timer.Seconds());

  // --- Mixed: capacity pressure. A second server holds an LRU of half
  // the slots with spilling on, so the round-robin alternates warm hits
  // and restore-from-spill misses.
  serve::ServerOptions mixed_options = options;
  mixed_options.session_cache_capacity = kSlots / 2;
  mixed_options.spill_directory = "/tmp";
  serve::CleaningServer mixed_server(mixed_options);
  for (size_t i = 0; i < kSlots; ++i) {
    if (!register_slot(mixed_server, i)) {
      std::fprintf(stderr, "mixed register %zu failed\n", i);
      return 1;
    }
  }
  std::vector<double> mixed_latencies;
  Timer mixed_timer;
  for (size_t round = 0; round < 3; ++round) {
    for (size_t i = 0; i < kSlots; ++i) {
      Timer request_timer;
      JsonValue response = mixed_server.Handle(CleanFrame(i));
      mixed_latencies.push_back(request_timer.Millis());
      if (!response.GetBool("ok")) {
        std::fprintf(stderr, "mixed clean %zu failed: %s\n", i,
                     response.Dump().c_str());
        return 1;
      }
      // Round 0 is the cold fill; later rounds must agree with round 0's
      // repairs whether they came from the LRU or a spill restore.
      if (round == 0) {
        if (RepairsDump(response) != cold_repairs[i]) identical = false;
      } else {
        identical = identical && RepairsDump(response) == cold_repairs[i];
      }
    }
  }
  WorkloadStats mixed = Summarize(mixed_latencies, mixed_timer.Seconds());

  // --- Saturation: offered load beyond admission capacity. Two tenants
  // with one inflight slot each take 4 client threads apiece; a failpoint
  // delay between queue grant and execution pins the per-request service
  // time at 3ms so the overload is deterministic rather than a race. The
  // queue-with-deadlines config parks the overflow and answers nearly
  // everything; reject-only (queue depth 0, the pre-queue behavior)
  // bounces whatever arrives while the slot is busy.
  constexpr size_t kSatSlots = 2;
  constexpr size_t kSatThreadsPerSlot = 4;
  constexpr size_t kSatRequestsPerThread = 25;
  auto run_saturation = [&](size_t queue_depth, WorkloadStats* stats,
                            double* goodput) -> bool {
    serve::ServerOptions sat_options = options;
    sat_options.session_cache_capacity = kSatSlots;
    sat_options.admission.per_tenant_inflight = 1;
    sat_options.admission.global_inflight = kSatSlots;
    sat_options.queue.max_depth = queue_depth;
    serve::CleaningServer sat_server(sat_options);
    for (size_t i = 0; i < kSatSlots; ++i) {
      if (!register_slot(sat_server, i)) return false;
      JsonValue warmup = sat_server.Handle(CleanFrame(i));
      if (!warmup.GetBool("ok") ||
          RepairsDump(warmup) != cold_repairs[i]) {
        return false;
      }
    }
    ScopedFailpoints hold("serve.queue.dispatch=always/delay:3");
    std::mutex merge_mu;
    std::vector<double> latencies;
    size_t ok_count = 0;
    bool responses_match = true;
    std::vector<std::thread> threads;
    Timer sat_timer;
    for (size_t slot = 0; slot < kSatSlots; ++slot) {
      for (size_t t = 0; t < kSatThreadsPerSlot; ++t) {
        threads.emplace_back([&, slot] {
          std::vector<double> local;
          size_t local_ok = 0;
          bool local_match = true;
          for (size_t r = 0; r < kSatRequestsPerThread; ++r) {
            JsonValue frame = CleanFrame(slot);
            frame.Set("deadline_ms", JsonValue::Number(2000));
            Timer request_timer;
            JsonValue response = sat_server.Handle(frame);
            local.push_back(request_timer.Millis());
            if (response.GetBool("ok")) {
              local_ok++;
              local_match =
                  local_match && RepairsDump(response) == cold_repairs[slot];
            }
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          latencies.insert(latencies.end(), local.begin(), local.end());
          ok_count += local_ok;
          responses_match = responses_match && local_match;
        });
      }
    }
    for (std::thread& th : threads) th.join();
    *stats = Summarize(latencies, sat_timer.Seconds());
    *goodput =
        static_cast<double>(ok_count) / static_cast<double>(latencies.size());
    return responses_match;
  };
  WorkloadStats sat_queue, sat_reject;
  double sat_queue_goodput = 0.0, sat_reject_goodput = 0.0;
  if (!run_saturation(/*queue_depth=*/64, &sat_queue, &sat_queue_goodput)) {
    std::fprintf(stderr, "saturation (queued) responses diverged\n");
    return 1;
  }
  if (!run_saturation(/*queue_depth=*/0, &sat_reject, &sat_reject_goodput)) {
    std::fprintf(stderr, "saturation (reject-only) responses diverged\n");
    return 1;
  }

  double warm_speedup = warm.p50_ms > 0.0 ? cold.p50_ms / warm.p50_ms : 0.0;

  std::vector<int> widths = {10, 12, 12, 12, 10};
  PrintRule(widths);
  PrintRow({"Workload", "Requests", "QPS", "p50 ms", "p99 ms"}, widths);
  PrintRule(widths);
  PrintRow({"cold", std::to_string(cold_latencies.size()), Fmt(cold.qps, 1),
            Fmt(cold.p50_ms, 2), Fmt(cold.p99_ms, 2)},
           widths);
  PrintRow({"warm", std::to_string(warm_latencies.size()), Fmt(warm.qps, 1),
            Fmt(warm.p50_ms, 2), Fmt(warm.p99_ms, 2)},
           widths);
  PrintRow({"mixed", std::to_string(mixed_latencies.size()),
            Fmt(mixed.qps, 1), Fmt(mixed.p50_ms, 2), Fmt(mixed.p99_ms, 2)},
           widths);
  PrintRule(widths);
  std::printf("\nwarm p50 speedup over cold: %sx, responses %s\n",
              Fmt(warm_speedup, 1).c_str(),
              identical ? "bit-identical" : "DIVERGED");

  size_t sat_offered = kSatSlots * kSatThreadsPerSlot * kSatRequestsPerThread;
  std::printf(
      "\nSaturation (%zu offered, capacity 1 inflight/tenant, 3ms service "
      "hold):\n",
      sat_offered);
  std::vector<int> sat_widths = {14, 10, 12, 12};
  PrintRule(sat_widths);
  PrintRow({"Config", "Goodput", "p50 ms", "p99 ms"}, sat_widths);
  PrintRule(sat_widths);
  PrintRow({"queue+deadline", Fmt(sat_queue_goodput, 3),
            Fmt(sat_queue.p50_ms, 2), Fmt(sat_queue.p99_ms, 2)},
           sat_widths);
  PrintRow({"reject-only", Fmt(sat_reject_goodput, 3),
            Fmt(sat_reject.p50_ms, 2), Fmt(sat_reject.p99_ms, 2)},
           sat_widths);
  PrintRule(sat_widths);

  AppendBenchMetric("micro_serve", "cold_qps", cold.qps);
  AppendBenchMetric("micro_serve", "cold_p50_ms", cold.p50_ms);
  AppendBenchMetric("micro_serve", "cold_p99_ms", cold.p99_ms);
  AppendBenchMetric("micro_serve", "warm_qps", warm.qps);
  AppendBenchMetric("micro_serve", "warm_p50_ms", warm.p50_ms);
  AppendBenchMetric("micro_serve", "warm_p99_ms", warm.p99_ms);
  AppendBenchMetric("micro_serve", "mixed_qps", mixed.qps);
  AppendBenchMetric("micro_serve", "mixed_p50_ms", mixed.p50_ms);
  AppendBenchMetric("micro_serve", "mixed_p99_ms", mixed.p99_ms);
  AppendBenchMetric("micro_serve", "warm_speedup", warm_speedup);
  AppendBenchMetric("micro_serve", "identical", identical ? 1.0 : 0.0);
  AppendBenchMetric("micro_serve", "sat_offered",
                    static_cast<double>(sat_offered));
  AppendBenchMetric("micro_serve", "sat_queue_goodput", sat_queue_goodput);
  AppendBenchMetric("micro_serve", "sat_queue_p50_ms", sat_queue.p50_ms);
  AppendBenchMetric("micro_serve", "sat_queue_p99_ms", sat_queue.p99_ms);
  AppendBenchMetric("micro_serve", "sat_reject_goodput", sat_reject_goodput);
  AppendBenchMetric("micro_serve", "sat_reject_p50_ms", sat_reject.p50_ms);
  AppendBenchMetric("micro_serve", "sat_reject_p99_ms", sat_reject.p99_ms);

  return identical ? 0 : 1;
}
