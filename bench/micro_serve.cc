// Serving-tier micro-bench: request throughput and latency of the
// multi-tenant CleaningServer over three workloads, dispatched through
// the exact code path the TCP front end uses (Handle(), minus socket
// framing so the numbers isolate the serving stack, not loopback I/O).
//
//  - cold:  first-touch cleans, one per (tenant, dataset) slot — full
//           pipeline runs behind a registry lookup + admission ticket.
//  - warm:  repeat cleans over the parked sessions in the engine LRU —
//           cached-report lookups, the steady-state serving hot path.
//  - mixed: round-robin over more slots than the LRU holds with spill
//           enabled, so requests alternate warm hits with
//           restore-from-spill misses (the capacity-pressure regime).
//
// Warm responses are cross-checked byte-for-byte against the cold
// responses of the same slot (the LRU trades nothing for correctness).
//
// Emits JSON-lines metrics via HOLOCLEAN_BENCH_JSON (aggregated into
// BENCH_ci.json by CI): QPS per workload, p50/p99 latency, and the
// warm-over-cold speedup the CI ratio gate holds at >= 1.5x.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "holoclean/data/food.h"
#include "holoclean/serve/server.h"
#include "holoclean/util/csv.h"
#include "holoclean/util/timer.h"

using namespace holoclean;         // NOLINT
using namespace holoclean::bench;  // NOLINT

namespace {

constexpr size_t kSlots = 6;        // Distinct (tenant, dataset) pairs.
constexpr size_t kWarmRounds = 25;  // Warm requests per slot.

struct Payload {
  std::string csv;
  std::string dcs;
};

Payload MakePayload(size_t i, size_t rows) {
  FoodOptions options;
  options.num_rows = rows;
  options.error_rate = 0.05 + 0.01 * static_cast<double>(i);
  options.seed = 911 + i;
  GeneratedData data = MakeFood(options);
  Payload payload;
  payload.csv = WriteCsv(data.dataset.dirty().ToCsv());
  for (const DenialConstraint& dc : data.dcs) {
    payload.dcs += dc.ToString(data.dataset.dirty().schema()) + "\n";
  }
  return payload;
}

JsonValue CleanFrame(size_t slot) {
  JsonValue frame = JsonValue::Object();
  frame.Set("op", JsonValue::String("clean"));
  frame.Set("tenant", JsonValue::String("tenant" + std::to_string(slot)));
  frame.Set("dataset", JsonValue::String("food"));
  return frame;
}

std::string RepairsDump(const JsonValue& response) {
  const JsonValue* report = response.Find("report");
  const JsonValue* repairs =
      report != nullptr ? report->Find("repairs") : nullptr;
  return repairs != nullptr ? repairs->Dump() : "<missing>";
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size()));
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

struct WorkloadStats {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

WorkloadStats Summarize(const std::vector<double>& latencies_ms,
                        double total_seconds) {
  WorkloadStats stats;
  stats.qps = static_cast<double>(latencies_ms.size()) / total_seconds;
  stats.p50_ms = Percentile(latencies_ms, 0.50);
  stats.p99_ms = Percentile(latencies_ms, 0.99);
  return stats;
}

}  // namespace

int main() {
  size_t rows = static_cast<size_t>(800 * BenchScale());
  if (rows < 150) rows = 150;

  std::printf(
      "Micro: serving-tier QPS/latency (Food profile, %zu slots, %zu rows "
      "each, %zu warm rounds)\n\n",
      kSlots, rows, kWarmRounds);

  serve::ServerOptions options;
  options.default_config = PaperConfig("food");
  options.session_cache_capacity = kSlots;
  options.admission.per_tenant_inflight = 2;
  options.admission.global_inflight = 2 * kSlots;
  serve::CleaningServer server(options);

  for (size_t i = 0; i < kSlots; ++i) {
    Payload payload = MakePayload(i, rows);
    JsonValue frame = JsonValue::Object();
    frame.Set("op", JsonValue::String("register_dataset"));
    frame.Set("tenant", JsonValue::String("tenant" + std::to_string(i)));
    frame.Set("dataset", JsonValue::String("food"));
    frame.Set("csv", JsonValue::String(payload.csv));
    frame.Set("constraints", JsonValue::String(payload.dcs));
    JsonValue response = server.Handle(frame);
    if (!response.GetBool("ok")) {
      std::fprintf(stderr, "register %zu failed: %s\n", i,
                   response.Dump().c_str());
      return 1;
    }
  }

  // --- Cold: first touch of every slot.
  std::vector<std::string> cold_repairs(kSlots);
  std::vector<double> cold_latencies;
  Timer cold_timer;
  for (size_t i = 0; i < kSlots; ++i) {
    Timer request_timer;
    JsonValue response = server.Handle(CleanFrame(i));
    cold_latencies.push_back(request_timer.Millis());
    if (!response.GetBool("ok") || response.GetBool("warm")) {
      std::fprintf(stderr, "cold clean %zu failed: %s\n", i,
                   response.Dump().c_str());
      return 1;
    }
    cold_repairs[i] = RepairsDump(response);
  }
  WorkloadStats cold = Summarize(cold_latencies, cold_timer.Seconds());

  // --- Warm: steady-state repeats over the parked sessions.
  bool identical = true;
  std::vector<double> warm_latencies;
  Timer warm_timer;
  for (size_t round = 0; round < kWarmRounds; ++round) {
    for (size_t i = 0; i < kSlots; ++i) {
      Timer request_timer;
      JsonValue response = server.Handle(CleanFrame(i));
      warm_latencies.push_back(request_timer.Millis());
      if (!response.GetBool("ok") || !response.GetBool("warm")) {
        std::fprintf(stderr, "warm clean %zu failed: %s\n", i,
                     response.Dump().c_str());
        return 1;
      }
      identical = identical && RepairsDump(response) == cold_repairs[i];
    }
  }
  WorkloadStats warm = Summarize(warm_latencies, warm_timer.Seconds());

  // --- Mixed: capacity pressure. A second server holds an LRU of half
  // the slots with spilling on, so the round-robin alternates warm hits
  // and restore-from-spill misses.
  serve::ServerOptions mixed_options = options;
  mixed_options.session_cache_capacity = kSlots / 2;
  mixed_options.spill_directory = "/tmp";
  serve::CleaningServer mixed_server(mixed_options);
  for (size_t i = 0; i < kSlots; ++i) {
    Payload payload = MakePayload(i, rows);
    JsonValue frame = JsonValue::Object();
    frame.Set("op", JsonValue::String("register_dataset"));
    frame.Set("tenant", JsonValue::String("tenant" + std::to_string(i)));
    frame.Set("dataset", JsonValue::String("food"));
    frame.Set("csv", JsonValue::String(payload.csv));
    frame.Set("constraints", JsonValue::String(payload.dcs));
    if (!mixed_server.Handle(frame).GetBool("ok")) {
      std::fprintf(stderr, "mixed register %zu failed\n", i);
      return 1;
    }
  }
  std::vector<double> mixed_latencies;
  Timer mixed_timer;
  for (size_t round = 0; round < 3; ++round) {
    for (size_t i = 0; i < kSlots; ++i) {
      Timer request_timer;
      JsonValue response = mixed_server.Handle(CleanFrame(i));
      mixed_latencies.push_back(request_timer.Millis());
      if (!response.GetBool("ok")) {
        std::fprintf(stderr, "mixed clean %zu failed: %s\n", i,
                     response.Dump().c_str());
        return 1;
      }
      // Round 0 is the cold fill; later rounds must agree with round 0's
      // repairs whether they came from the LRU or a spill restore.
      if (round == 0) {
        if (RepairsDump(response) != cold_repairs[i]) identical = false;
      } else {
        identical = identical && RepairsDump(response) == cold_repairs[i];
      }
    }
  }
  WorkloadStats mixed = Summarize(mixed_latencies, mixed_timer.Seconds());

  double warm_speedup = warm.p50_ms > 0.0 ? cold.p50_ms / warm.p50_ms : 0.0;

  std::vector<int> widths = {10, 12, 12, 12, 10};
  PrintRule(widths);
  PrintRow({"Workload", "Requests", "QPS", "p50 ms", "p99 ms"}, widths);
  PrintRule(widths);
  PrintRow({"cold", std::to_string(cold_latencies.size()), Fmt(cold.qps, 1),
            Fmt(cold.p50_ms, 2), Fmt(cold.p99_ms, 2)},
           widths);
  PrintRow({"warm", std::to_string(warm_latencies.size()), Fmt(warm.qps, 1),
            Fmt(warm.p50_ms, 2), Fmt(warm.p99_ms, 2)},
           widths);
  PrintRow({"mixed", std::to_string(mixed_latencies.size()),
            Fmt(mixed.qps, 1), Fmt(mixed.p50_ms, 2), Fmt(mixed.p99_ms, 2)},
           widths);
  PrintRule(widths);
  std::printf("\nwarm p50 speedup over cold: %sx, responses %s\n",
              Fmt(warm_speedup, 1).c_str(),
              identical ? "bit-identical" : "DIVERGED");

  AppendBenchMetric("micro_serve", "cold_qps", cold.qps);
  AppendBenchMetric("micro_serve", "cold_p50_ms", cold.p50_ms);
  AppendBenchMetric("micro_serve", "cold_p99_ms", cold.p99_ms);
  AppendBenchMetric("micro_serve", "warm_qps", warm.qps);
  AppendBenchMetric("micro_serve", "warm_p50_ms", warm.p50_ms);
  AppendBenchMetric("micro_serve", "warm_p99_ms", warm.p99_ms);
  AppendBenchMetric("micro_serve", "mixed_qps", mixed.qps);
  AppendBenchMetric("micro_serve", "mixed_p50_ms", mixed.p50_ms);
  AppendBenchMetric("micro_serve", "mixed_p99_ms", mixed.p99_ms);
  AppendBenchMetric("micro_serve", "warm_speedup", warm_speedup);
  AppendBenchMetric("micro_serve", "identical", identical ? 1.0 : 0.0);

  return identical ? 0 : 1;
}
