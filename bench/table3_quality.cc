// Reproduces Table 3 of the paper: precision, recall, and F1 of HoloClean
// against Holistic, KATARA, and SCARE on the four datasets (per-dataset
// pruning threshold τ in parentheses, as in the paper).

#include <cstdio>

#include "common.h"
#include "holoclean/baselines/holistic.h"
#include "holoclean/baselines/katara.h"
#include "holoclean/baselines/scare.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

namespace {

std::string Cell(const EvalResult& e) {
  return Fmt(e.precision) + "/" + Fmt(e.recall) + "/" + Fmt(e.f1);
}

}  // namespace

int main() {
  std::printf("Table 3: Precision/Recall/F1 per dataset and method\n");
  std::printf("(paper F1: Hospital .832/.435/.379/.593, Flights .763/0/n-a/"
              ".104,\n Food .783/.235/.473/0, Physicians .897/.512/0/0)\n\n");
  std::vector<int> widths = {16, 19, 19, 19, 19};
  PrintRule(widths);
  PrintRow({"Dataset (tau)", "HoloClean P/R/F1", "Holistic P/R/F1",
            "KATARA P/R/F1", "SCARE P/R/F1"},
           widths);
  PrintRule(widths);

  double holo_f1_sum = 0.0;
  double best_baseline_f1_sum = 0.0;
  for (const std::string& name : AllDatasetNames()) {
    GeneratedData data = MakeDataset(name);

    RunOutcome holo = RunPipeline(&data, PaperConfig(name), false);

    Holistic holistic;
    EvalResult holistic_eval =
        EvaluateRepairs(data.dataset, holistic.Run(data.dataset, data.dcs));

    std::string katara_cell = "n/a";
    EvalResult katara_eval;
    if (!data.dicts.empty()) {
      Katara katara;
      katara_eval = EvaluateRepairs(
          data.dataset, katara.Run(&data.dataset, data.dicts, data.mds));
      katara_cell = Cell(katara_eval);
    }

    Scare scare;
    EvalResult scare_eval =
        EvaluateRepairs(data.dataset, scare.Run(data.dataset));

    PrintRow({name + " (" + Fmt(PaperTau(name), 1) + ")", Cell(holo.eval),
              Cell(holistic_eval), katara_cell, Cell(scare_eval)},
             widths);
    holo_f1_sum += holo.eval.f1;
    double best = std::max(
        {holistic_eval.f1, katara_eval.f1, scare_eval.f1});
    best_baseline_f1_sum += best;
  }
  PrintRule(widths);
  std::printf("\nAverage F1: HoloClean %.3f vs best baseline %.3f "
              "(improvement %.2fx; paper reports >2x on average)\n",
              holo_f1_sum / 4.0, best_baseline_f1_sum / 4.0,
              best_baseline_f1_sum > 0
                  ? holo_f1_sum / best_baseline_f1_sum
                  : 0.0);
  return 0;
}
