// Reproduces Table 4 of the paper: end-to-end wall-clock runtime of each
// method per dataset. Absolute numbers differ from the paper (scaled data,
// different hardware, in-memory substrate instead of Postgres/DeepDive);
// the comparison of interest is relative cost across methods.

#include <cstdio>

#include "common.h"
#include "holoclean/baselines/holistic.h"
#include "holoclean/baselines/katara.h"
#include "holoclean/baselines/scare.h"
#include "holoclean/util/timer.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

int main() {
  std::printf("Table 4: Runtime (seconds) per dataset and method\n");
  std::printf("(paper: HoloClean 148s/71s/33m/6.5h; Holistic 5.7s/80s/7.6m/"
              "2h; KATARA 2s/n-a/1.7m/15.5m; SCARE 25s/14s/DNF/DNF)\n\n");
  std::vector<int> widths = {12, 12, 10, 8, 7};
  PrintRule(widths);
  PrintRow({"Dataset", "HoloClean", "Holistic", "KATARA", "SCARE"}, widths);
  PrintRule(widths);

  for (const std::string& name : AllDatasetNames()) {
    GeneratedData data = MakeDataset(name);

    RunOutcome holo = RunPipeline(&data, PaperConfig(name), false);

    Timer timer;
    Holistic holistic;
    holistic.Run(data.dataset, data.dcs);
    double holistic_seconds = timer.Seconds();

    std::string katara_cell = "n/a";
    if (!data.dicts.empty()) {
      timer.Reset();
      Katara katara;
      katara.Run(&data.dataset, data.dicts, data.mds);
      katara_cell = Fmt(timer.Seconds(), 2);
    }

    timer.Reset();
    Scare scare;
    scare.Run(data.dataset);
    double scare_seconds = timer.Seconds();

    PrintRow({name, Fmt(holo.stats.TotalSeconds(), 2),
              Fmt(holistic_seconds, 2), katara_cell,
              Fmt(scare_seconds, 2)},
             widths);
  }
  PrintRule(widths);
  return 0;
}
