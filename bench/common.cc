#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "holoclean/data/flights.h"
#include "holoclean/data/food.h"
#include "holoclean/data/hospital.h"
#include "holoclean/data/physicians.h"

namespace holoclean::bench {

double BenchScale() {
  const char* env = std::getenv("HOLOCLEAN_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

GeneratedData MakeDataset(const std::string& name) {
  double scale = BenchScale();
  if (name == "hospital") {
    HospitalOptions options;
    options.num_rows = static_cast<size_t>(1000 * scale);
    return MakeHospital(options);
  }
  if (name == "flights") {
    FlightsOptions options;
    options.num_rows = static_cast<size_t>(2377 * scale);
    return MakeFlights(options);
  }
  if (name == "food") {
    FoodOptions options;
    options.num_rows = static_cast<size_t>(4000 * scale);
    return MakeFood(options);
  }
  if (name == "physicians") {
    PhysiciansOptions options;
    options.num_rows = static_cast<size_t>(8000 * scale);
    return MakePhysicians(options);
  }
  std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
  std::abort();
}

double PaperTau(const std::string& name) {
  if (name == "hospital") return 0.5;
  if (name == "flights") return 0.3;
  if (name == "food") return 0.5;
  return 0.7;  // physicians
}

HoloCleanConfig PaperConfig(const std::string& name) {
  HoloCleanConfig config;
  config.tau = PaperTau(name);
  config.dc_mode = DcMode::kFeatures;
  config.partitioning = false;
  return config;
}

RunOutcome RunPipeline(GeneratedData* data, const HoloCleanConfig& config,
                       bool use_dicts) {
  SessionOptions options;
  options.config = config;
  bool with_dicts = use_dicts && !data->dicts.empty();
  auto report = CleanOnce(
      CleaningInputs::Borrowed(&data->dataset, &data->dcs,
                               with_dicts ? &data->dicts : nullptr,
                               with_dicts ? &data->mds : nullptr),
      options);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed on %s: %s\n", data->name.c_str(),
                 report.status().ToString().c_str());
    std::abort();
  }
  RunOutcome outcome;
  outcome.eval = EvaluateRepairs(data->dataset, report.value().repairs);
  outcome.stats = report.value().stats;
  outcome.repairs = std::move(report.value().repairs);
  return outcome;
}

void PrintRule(const std::vector<int>& widths) {
  for (int w : widths) {
    std::printf("+");
    for (int i = 0; i < w + 2; ++i) std::printf("-");
  }
  std::printf("+\n");
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("| %-*s ", widths[i], cells[i].c_str());
  }
  std::printf("|\n");
}

std::string Fmt(double v, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

std::string BenchJsonPath() {
  const char* env = std::getenv("HOLOCLEAN_BENCH_JSON");
  return env == nullptr ? std::string() : std::string(env);
}

void AppendBenchMetric(const std::string& bench, const std::string& metric,
                       double value) {
  std::string path = BenchJsonPath();
  if (path.empty()) return;
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  // Metric names are plain identifiers, so no JSON escaping is needed.
  std::fprintf(f, "{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.17g}\n",
               bench.c_str(), metric.c_str(), value);
  std::fclose(f);
}

const std::vector<std::string>& AllDatasetNames() {
  static const std::vector<std::string> kNames = {"hospital", "flights",
                                                  "food", "physicians"};
  return kNames;
}

}  // namespace holoclean::bench
