// Reproduces Table 2 of the paper: parameters of the evaluation datasets —
// tuples, attributes, detected DC violations, noisy cells, and number of
// integrity constraints. (Row counts are scaled; set HOLOCLEAN_BENCH_SCALE
// to approach the paper's sizes.)

#include <cstdio>

#include "common.h"
#include "holoclean/detect/violation_detector.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

int main() {
  std::printf("Table 2: Parameters of the data used for evaluation\n");
  std::printf("(paper: Hospital 1000/19/6604/6140/9, Flights 2377/6/84413/"
              "11180/4,\n Food 339908/17/39322/41254/7, Physicians "
              "2071849/18/5427322/174557/9)\n\n");
  std::vector<int> widths = {11, 9, 11, 11, 12, 5};
  PrintRule(widths);
  PrintRow({"Dataset", "Tuples", "Attributes", "Violations", "Noisy cells",
            "ICs"},
           widths);
  PrintRule(widths);
  for (const std::string& name : AllDatasetNames()) {
    GeneratedData data = MakeDataset(name);
    ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
    auto violations = detector.Detect();
    NoisyCells noisy = ViolationDetector::NoisyFromViolations(violations);
    PrintRow({name, std::to_string(data.dataset.dirty().num_rows()),
              std::to_string(data.dataset.dirty().schema().num_attrs()),
              std::to_string(violations.size()), std::to_string(noisy.size()),
              std::to_string(data.dcs.size()) + " DCs"},
             widths);
  }
  PrintRule(widths);
  return 0;
}
