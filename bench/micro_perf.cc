// Infrastructure micro-benchmarks (google-benchmark): throughput of the
// hot paths that determine HoloClean's scalability — violation detection
// (blocked vs naive), co-occurrence statistics, domain pruning, grounding,
// SGD learning, and Gibbs sweeps.

#include <benchmark/benchmark.h>

#include "common.h"
#include "holoclean/data/hospital.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/infer/gibbs.h"
#include "holoclean/infer/learner.h"
#include "holoclean/model/domain_pruning.h"
#include "holoclean/model/grounding.h"
#include "holoclean/stats/cooccurrence.h"

namespace holoclean {
namespace {

GeneratedData& SharedHospital() {
  static GeneratedData* data = [] {
    HospitalOptions options;
    options.num_rows = 1000;
    return new GeneratedData(MakeHospital(options));
  }();
  return *data;
}

void BM_ViolationDetection(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  for (auto _ : state) {
    ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
    benchmark::DoNotOptimize(detector.Detect());
  }
  state.SetItemsProcessed(state.iterations() *
                          data.dataset.dirty().num_rows());
}
BENCHMARK(BM_ViolationDetection);

void BM_CooccurrenceBuild(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  std::vector<AttrId> attrs = data.dataset.RepairableAttrs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CooccurrenceStats::Build(data.dataset.dirty(), attrs));
  }
  state.SetItemsProcessed(state.iterations() *
                          data.dataset.dirty().num_cells());
}
BENCHMARK(BM_CooccurrenceBuild);

void BM_DomainPruning(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  std::vector<AttrId> attrs = data.dataset.RepairableAttrs();
  CooccurrenceStats cooc =
      CooccurrenceStats::Build(data.dataset.dirty(), attrs);
  ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
  NoisyCells noisy =
      ViolationDetector::NoisyFromViolations(detector.Detect());
  DomainPruningOptions options;
  options.tau = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PruneDomains(data.dataset.dirty(),
                                          noisy.cells(), attrs, cooc,
                                          options));
  }
  state.SetItemsProcessed(state.iterations() * noisy.size());
}
BENCHMARK(BM_DomainPruning)->Arg(3)->Arg(5)->Arg(9);

struct GroundedModel {
  GroundedModel(GeneratedData& data, DcMode mode) {
    attrs = data.dataset.RepairableAttrs();
    table = &data.dataset.dirty();
    cooc = CooccurrenceStats::Build(*table, attrs);
    ViolationDetector detector(table, &data.dcs);
    violations = detector.Detect();
    noisy = ViolationDetector::NoisyFromViolations(violations);
    for (size_t t = 0; t < table->num_rows(); ++t) {
      for (AttrId a : attrs) {
        CellRef c{static_cast<TupleId>(t), a};
        if (!noisy.Contains(c) && table->Get(c) != Dictionary::kNull &&
            evidence.size() < 4000) {
          evidence.push_back(c);
        }
      }
    }
    std::vector<CellRef> all = noisy.cells();
    all.insert(all.end(), evidence.begin(), evidence.end());
    DomainPruningOptions prune;
    prune.tau = 0.5;
    domains = PruneDomains(*table, all, attrs, cooc, prune);

    input.table = table;
    input.dcs = &data.dcs;
    input.attrs = &attrs;
    input.query_cells = &noisy.cells();
    input.evidence_cells = &evidence;
    input.domains = &domains;
    input.cooc = &cooc;
    input.violations = &violations;
    options.dc_mode = mode;
    options.use_partitioning = mode != DcMode::kFeatures;
  }

  const Table* table;
  std::vector<AttrId> attrs;
  CooccurrenceStats cooc;
  std::vector<Violation> violations;
  NoisyCells noisy;
  std::vector<CellRef> evidence;
  PrunedDomains domains;
  GroundingInput input;
  GroundingOptions options;
};

void BM_Grounding(benchmark::State& state) {
  GroundedModel model(SharedHospital(),
                      state.range(0) == 0 ? DcMode::kFeatures
                                          : DcMode::kBoth);
  for (auto _ : state) {
    Grounder grounder(model.input, model.options);
    auto graph = grounder.Ground();
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_Grounding)->Arg(0)->Arg(1);

void BM_SgdEpoch(benchmark::State& state) {
  GroundedModel model(SharedHospital(), DcMode::kFeatures);
  Grounder grounder(model.input, model.options);
  auto graph = grounder.Ground();
  LearnerOptions options;
  options.epochs = 1;
  SgdLearner learner(&graph.value(), options);
  for (auto _ : state) {
    WeightStore weights;
    benchmark::DoNotOptimize(learner.Train(&weights));
  }
  state.SetItemsProcessed(state.iterations() * model.evidence.size());
}
BENCHMARK(BM_SgdEpoch);

void BM_GibbsSweep(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  GroundedModel model(data, DcMode::kBoth);
  Grounder grounder(model.input, model.options);
  auto graph = grounder.Ground();
  WeightStore weights;
  GibbsOptions options;
  options.burn_in = 0;
  options.samples = 1;
  for (auto _ : state) {
    GibbsSampler sampler(&graph.value(), model.table, &data.dcs, &weights,
                         options);
    benchmark::DoNotOptimize(sampler.Run());
  }
  state.SetItemsProcessed(state.iterations() *
                          graph.value().query_vars().size());
}
BENCHMARK(BM_GibbsSweep);

}  // namespace
}  // namespace holoclean

BENCHMARK_MAIN();
