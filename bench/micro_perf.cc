// Infrastructure micro-benchmarks (google-benchmark): throughput of the
// hot paths that determine HoloClean's scalability — violation detection
// (blocked vs naive), co-occurrence statistics, domain pruning, grounding,
// SGD learning, and Gibbs sweeps (reference interpreter vs compiled
// kernel).
//
// After the registered benchmarks, main() runs the compiled-vs-reference
// kernel comparison on the Food 4k workload (learn/infer stage wall times
// and throughput, repairs cross-checked bit-identical) and appends the
// numbers to the HOLOCLEAN_BENCH_JSON metrics file — CI's bench-smoke job
// aggregates them into BENCH_ci.json. Pass --benchmark_filter='^$' to run
// only the kernel comparison.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "common.h"
#include "holoclean/data/food.h"
#include "holoclean/data/hospital.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/infer/gibbs.h"
#include "holoclean/infer/learner.h"
#include "holoclean/model/compiled_graph.h"
#include "holoclean/model/domain_pruning.h"
#include "holoclean/model/grounding.h"
#include "holoclean/stats/cooccurrence.h"

namespace holoclean {
namespace {

GeneratedData& SharedHospital() {
  static GeneratedData* data = [] {
    HospitalOptions options;
    options.num_rows = 1000;
    return new GeneratedData(MakeHospital(options));
  }();
  return *data;
}

void BM_ViolationDetection(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  for (auto _ : state) {
    ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
    benchmark::DoNotOptimize(detector.Detect());
  }
  state.SetItemsProcessed(state.iterations() *
                          data.dataset.dirty().num_rows());
}
BENCHMARK(BM_ViolationDetection);

void BM_CooccurrenceBuild(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  std::vector<AttrId> attrs = data.dataset.RepairableAttrs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CooccurrenceStats::Build(data.dataset.dirty(), attrs));
  }
  state.SetItemsProcessed(state.iterations() *
                          data.dataset.dirty().num_cells());
}
BENCHMARK(BM_CooccurrenceBuild);

void BM_DomainPruning(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  std::vector<AttrId> attrs = data.dataset.RepairableAttrs();
  CooccurrenceStats cooc =
      CooccurrenceStats::Build(data.dataset.dirty(), attrs);
  ViolationDetector detector(&data.dataset.dirty(), &data.dcs);
  NoisyCells noisy =
      ViolationDetector::NoisyFromViolations(detector.Detect());
  DomainPruningOptions options;
  options.tau = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PruneDomains(data.dataset.dirty(),
                                          noisy.cells(), attrs, cooc,
                                          options));
  }
  state.SetItemsProcessed(state.iterations() * noisy.size());
}
BENCHMARK(BM_DomainPruning)->Arg(3)->Arg(5)->Arg(9);

struct GroundedModel {
  GroundedModel(GeneratedData& data, DcMode mode) {
    attrs = data.dataset.RepairableAttrs();
    table = &data.dataset.dirty();
    cooc = CooccurrenceStats::Build(*table, attrs);
    ViolationDetector detector(table, &data.dcs);
    violations = detector.Detect();
    noisy = ViolationDetector::NoisyFromViolations(violations);
    for (size_t t = 0; t < table->num_rows(); ++t) {
      for (AttrId a : attrs) {
        CellRef c{static_cast<TupleId>(t), a};
        if (!noisy.Contains(c) && table->Get(c) != Dictionary::kNull &&
            evidence.size() < 4000) {
          evidence.push_back(c);
        }
      }
    }
    std::vector<CellRef> all = noisy.cells();
    all.insert(all.end(), evidence.begin(), evidence.end());
    DomainPruningOptions prune;
    prune.tau = 0.5;
    domains = PruneDomains(*table, all, attrs, cooc, prune);

    input.table = table;
    input.dcs = &data.dcs;
    input.attrs = &attrs;
    input.query_cells = &noisy.cells();
    input.evidence_cells = &evidence;
    input.domains = &domains;
    input.cooc = &cooc;
    input.violations = &violations;
    options.dc_mode = mode;
    options.use_partitioning = mode != DcMode::kFeatures;
  }

  const Table* table;
  std::vector<AttrId> attrs;
  CooccurrenceStats cooc;
  std::vector<Violation> violations;
  NoisyCells noisy;
  std::vector<CellRef> evidence;
  PrunedDomains domains;
  GroundingInput input;
  GroundingOptions options;
};

void BM_Grounding(benchmark::State& state) {
  GroundedModel model(SharedHospital(),
                      state.range(0) == 0 ? DcMode::kFeatures
                                          : DcMode::kBoth);
  for (auto _ : state) {
    Grounder grounder(model.input, model.options);
    auto graph = grounder.Ground();
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_Grounding)->Arg(0)->Arg(1);

void BM_SgdEpoch(benchmark::State& state) {
  GroundedModel model(SharedHospital(), DcMode::kFeatures);
  Grounder grounder(model.input, model.options);
  auto graph = grounder.Ground();
  LearnerOptions options;
  options.epochs = 1;
  SgdLearner learner(&graph.value(), options);
  for (auto _ : state) {
    WeightStore weights;
    benchmark::DoNotOptimize(learner.Train(&weights));
  }
  state.SetItemsProcessed(state.iterations() * model.evidence.size());
}
BENCHMARK(BM_SgdEpoch);

void BM_SgdEpochCompiled(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  GroundedModel model(data, DcMode::kFeatures);
  Grounder grounder(model.input, model.options);
  auto graph = grounder.Ground();
  CompiledGraph compiled =
      CompiledGraph::Build(graph.value(), *model.table, data.dcs);
  LearnerOptions options;
  options.epochs = 1;
  SgdLearner learner(&graph.value(), options);
  for (auto _ : state) {
    WeightStore weights;
    benchmark::DoNotOptimize(learner.Train(compiled, &weights));
  }
  state.SetItemsProcessed(state.iterations() * model.evidence.size());
}
BENCHMARK(BM_SgdEpochCompiled);

void BM_GibbsSweep(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  GroundedModel model(data, DcMode::kBoth);
  Grounder grounder(model.input, model.options);
  auto graph = grounder.Ground();
  WeightStore weights;
  GibbsOptions options;
  options.burn_in = 0;
  options.samples = 1;
  for (auto _ : state) {
    GibbsSampler sampler(&graph.value(), model.table, &data.dcs, &weights,
                         options);
    benchmark::DoNotOptimize(sampler.Run());
  }
  state.SetItemsProcessed(state.iterations() *
                          graph.value().query_vars().size());
}
BENCHMARK(BM_GibbsSweep);

void BM_GibbsSweepCompiled(benchmark::State& state) {
  GeneratedData& data = SharedHospital();
  GroundedModel model(data, DcMode::kBoth);
  Grounder grounder(model.input, model.options);
  auto graph = grounder.Ground();
  CompiledGraph compiled =
      CompiledGraph::Build(graph.value(), *model.table, data.dcs);
  WeightStore weights;
  GibbsOptions options;
  options.burn_in = 0;
  options.samples = 1;
  for (auto _ : state) {
    GibbsSampler sampler(&graph.value(), model.table, &data.dcs, &weights,
                         options, &compiled);
    benchmark::DoNotOptimize(sampler.Run());
  }
  state.SetItemsProcessed(state.iterations() *
                          graph.value().query_vars().size());
}
BENCHMARK(BM_GibbsSweepCompiled);

// ---------------------------------------------------------------------------
// Compiled-vs-reference kernel comparison on the Food 4k workload.
// ---------------------------------------------------------------------------

struct StageRun {
  double learn_seconds = 0.0;
  double infer_seconds = 0.0;
  size_t evidence_vars = 0;
  size_t query_vars = 0;
  std::vector<Repair> repairs;
};

/// One full pipeline run; returns the learn/infer stage wall times from
/// the session's stage timings (the compiled run pays its CompiledGraph
/// build inside the learn stage, so the comparison is end to end).
StageRun RunFoodStages(const HoloCleanConfig& config) {
  FoodOptions options;
  options.num_rows = 4000;  // The acceptance workload; bench scale exempt.
  GeneratedData data = MakeFood(options);
  auto opened = OpenStandaloneSession(
      CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  if (!opened.ok()) {
    std::fprintf(stderr, "food open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  Session session = std::move(opened).value();
  auto report = session.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "food run failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  StageRun out;
  const auto& timings = report.value().stats.stage_timings;
  out.learn_seconds = timings[static_cast<size_t>(StageId::kLearn)].seconds;
  out.infer_seconds = timings[static_cast<size_t>(StageId::kInfer)].seconds +
                      timings[static_cast<size_t>(StageId::kRepair)].seconds;
  out.evidence_vars = report.value().stats.num_evidence_vars;
  out.query_vars = report.value().stats.num_query_vars;
  out.repairs = std::move(report.value().repairs);
  return out;
}

bool RepairsIdentical(const std::vector<Repair>& a,
                      const std::vector<Repair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].cell == b[i].cell) || a[i].new_value != b[i].new_value ||
        a[i].probability != b[i].probability) {
      return false;
    }
  }
  return true;
}

void ReportKernelComparison(const char* label, const HoloCleanConfig& base,
                            int sweeps) {
  HoloCleanConfig ref_config = base;
  ref_config.compiled_kernel = false;
  HoloCleanConfig comp_config = base;
  comp_config.compiled_kernel = true;

  StageRun ref = RunFoodStages(ref_config);
  StageRun comp = RunFoodStages(comp_config);
  bool identical = RepairsIdentical(ref.repairs, comp.repairs);
  std::string prefix = std::string("food4k_") + label;
  bench::AppendBenchMetric("micro_perf", prefix + "_repairs_identical",
                           identical ? 1.0 : 0.0);
  if (!identical) {
    // The bench doubles as CI's bit-identity cross-check: a divergence
    // must fail the job, not just print — after recording the failed
    // check in the metrics artifact. (The speedup itself stays advisory —
    // shared runners are too noisy to gate on.)
    std::fprintf(stderr,
                 "FATAL: compiled kernel repairs diverge from the reference "
                 "path on food4k %s\n",
                 label);
    std::exit(1);
  }

  double ref_total = ref.learn_seconds + ref.infer_seconds;
  double comp_total = comp.learn_seconds + comp.infer_seconds;
  double speedup = comp_total > 0.0 ? ref_total / comp_total : 0.0;
  double learn_examples =
      static_cast<double>(ref.evidence_vars) * base.epochs;
  double infer_var_sweeps =
      static_cast<double>(ref.query_vars) * static_cast<double>(sweeps);

  std::printf(
      "\nfood4k %s: learn %.3fs -> %.3fs, infer %.3fs -> %.3fs, "
      "combined speedup %.2fx, repairs bit-identical\n",
      label, ref.learn_seconds, comp.learn_seconds, ref.infer_seconds,
      comp.infer_seconds, speedup);
  std::printf(
      "  learn vars/s %.0f -> %.0f; infer var-sweeps/s %.0f -> %.0f\n",
      learn_examples / ref.learn_seconds,
      learn_examples / comp.learn_seconds,
      infer_var_sweeps / ref.infer_seconds,
      infer_var_sweeps / comp.infer_seconds);

  bench::AppendBenchMetric("micro_perf", prefix + "_learn_seconds_reference",
                           ref.learn_seconds);
  bench::AppendBenchMetric("micro_perf", prefix + "_learn_seconds_compiled",
                           comp.learn_seconds);
  bench::AppendBenchMetric("micro_perf", prefix + "_infer_seconds_reference",
                           ref.infer_seconds);
  bench::AppendBenchMetric("micro_perf", prefix + "_infer_seconds_compiled",
                           comp.infer_seconds);
  bench::AppendBenchMetric("micro_perf", prefix + "_learn_infer_speedup",
                           speedup);
  bench::AppendBenchMetric("micro_perf",
                           prefix + "_learn_vars_per_sec_reference",
                           learn_examples / ref.learn_seconds);
  bench::AppendBenchMetric("micro_perf",
                           prefix + "_learn_vars_per_sec_compiled",
                           learn_examples / comp.learn_seconds);
  bench::AppendBenchMetric("micro_perf",
                           prefix + "_infer_var_sweeps_per_sec_reference",
                           infer_var_sweeps / ref.infer_seconds);
  bench::AppendBenchMetric("micro_perf",
                           prefix + "_infer_var_sweeps_per_sec_compiled",
                           infer_var_sweeps / comp.infer_seconds);
}

void RunKernelComparison() {
  // The paper's Food configuration (DC features, exact marginals): learn
  // dominates, infer is the closed-form softmax pass.
  HoloCleanConfig feats = bench::PaperConfig("food");
  ReportKernelComparison("feats", feats, /*sweeps=*/1);

  // DC factors + partitioning with the default Gibbs chain: sweeps scored
  // through the precomputed violation tables.
  HoloCleanConfig factors = bench::PaperConfig("food");
  factors.dc_mode = DcMode::kBoth;
  factors.partitioning = true;
  ReportKernelComparison(
      "factors", factors,
      /*sweeps=*/factors.gibbs_burn_in + factors.gibbs_samples);
}

}  // namespace
}  // namespace holoclean

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  holoclean::RunKernelComparison();
  return 0;
}
