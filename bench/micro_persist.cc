// Session persistence: bytes on disk and save/restore/resume wall times
// across the snapshot variants — the legacy v1 format, the v2 sectioned
// format with raw and packed codecs, and v2 packed restored via mmap with
// the factor-graph section deferred to first stage access. A session saved
// after learning carries the grounded factor graph and trained weights, so
// a restored process pays only inference + repair extraction; the packed
// codec shrinks the bytes that buy that shortcut and the mmap path defers
// the biggest section until a stage actually touches it.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "holoclean/data/food.h"
#include "holoclean/util/timer.h"

using namespace holoclean;         // NOLINT
using namespace holoclean::bench;  // NOLINT

namespace {

constexpr char kSnapshotPath[] = "/tmp/holoclean_micro_persist.snapshot";

HoloCleanConfig PersistConfig() {
  HoloCleanConfig config;
  config.tau = 0.5;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.gibbs_burn_in = 10;
  config.gibbs_samples = 40;
  return config;
}

size_t FileSize(const char* path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<size_t>(in.tellg()) : 0;
}

struct Variant {
  const char* name;
  SnapshotSaveOptions save;
  bool mmap_restore = false;
};

struct VariantResult {
  double save_seconds = 0.0;
  size_t bytes = 0;
  double restore_seconds = 0.0;
  double resume_seconds = 0.0;
  bool identical = false;
};

bool SameRepairs(const std::vector<Repair>& a, const std::vector<Repair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].cell == b[i].cell) || a[i].old_value != b[i].old_value ||
        a[i].new_value != b[i].new_value ||
        a[i].probability != b[i].probability) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  size_t rows = static_cast<size_t>(4000 * BenchScale());
  std::printf("Session persistence on generated Food (%zu rows), "
              "DC factors + partitioning\n\n", rows);
  HoloCleanConfig config = PersistConfig();

  // Cold run: the baseline every restore competes against.
  GeneratedData cold_data = MakeFood({rows, 0.06, 7});
  Timer timer;
  auto cold_report = CleanOnce(
      CleaningInputs::Borrowed(&cold_data.dataset, &cold_data.dcs), {config});
  if (!cold_report.ok()) {
    std::fprintf(stderr, "cold run failed: %s\n",
                 cold_report.status().ToString().c_str());
    return 1;
  }
  double cold_seconds = timer.Seconds();
  const std::vector<Repair>& reference = cold_report.value().repairs;

  // One session, saved after learn under each variant's options.
  GeneratedData save_data = MakeFood({rows, 0.06, 7});
  auto opened = OpenStandaloneSession(
      CleaningInputs::Borrowed(&save_data.dataset, &save_data.dcs), {config});
  if (!opened.ok()) return 1;
  Session session = std::move(opened).value();
  if (!session.RunThrough(StageId::kLearn).ok()) return 1;

  Variant variants[] = {
      {"v1 (legacy)", {SectionCodec::kRaw, kSnapshotFormatV1}, false},
      {"v2 raw", {SectionCodec::kRaw, kSnapshotFormatVersion}, false},
      {"v2 packed", {SectionCodec::kPacked, kSnapshotFormatVersion}, false},
      {"v2 packed + mmap",
       {SectionCodec::kPacked, kSnapshotFormatVersion},
       true},
  };
  VariantResult results[4];
  for (size_t i = 0; i < 4; ++i) {
    const Variant& variant = variants[i];
    VariantResult& r = results[i];
    timer.Reset();
    Status saved = session.Save(kSnapshotPath, variant.save);
    r.save_seconds = timer.Seconds();
    if (!saved.ok()) {
      std::fprintf(stderr, "%s save failed: %s\n", variant.name,
                   saved.ToString().c_str());
      return 1;
    }
    r.bytes = FileSize(kSnapshotPath);

    // Restore into a fresh dataset (as a new process would) and finish the
    // pipeline from inference.
    GeneratedData restore_data = MakeFood({rows, 0.06, 7});
    SessionOptions restore_options;
    restore_options.config = config;
    restore_options.snapshot_path = kSnapshotPath;
    restore_options.load_options.lazy_graph = variant.mmap_restore;
    timer.Reset();
    auto restored = OpenStandaloneSession(
        CleaningInputs::Borrowed(&restore_data.dataset, &restore_data.dcs),
        restore_options);
    r.restore_seconds = timer.Seconds();
    if (!restored.ok()) {
      std::fprintf(stderr, "%s restore failed: %s\n", variant.name,
                   restored.status().ToString().c_str());
      return 1;
    }
    timer.Reset();
    auto resumed = restored.value().Run();
    r.resume_seconds = timer.Seconds();
    if (!resumed.ok()) return 1;
    r.identical = SameRepairs(resumed.value().repairs, reference);
  }

  std::vector<int> widths = {18, 11, 10, 11, 11, 11};
  PrintRule(widths);
  PrintRow({"Variant", "size (MiB)", "save (s)", "restore (s)",
            "resume (s)", "rest+res"},
           widths);
  PrintRule(widths);
  for (size_t i = 0; i < 4; ++i) {
    const VariantResult& r = results[i];
    PrintRow({variants[i].name,
              Fmt(static_cast<double>(r.bytes) / (1024.0 * 1024.0), 1),
              Fmt(r.save_seconds), Fmt(r.restore_seconds),
              Fmt(r.resume_seconds),
              Fmt(r.restore_seconds + r.resume_seconds)},
             widths);
  }
  PrintRule(widths);

  double ratio = results[2].bytes > 0
                     ? static_cast<double>(results[0].bytes) /
                           static_cast<double>(results[2].bytes)
                     : 0.0;
  bool all_identical = true;
  for (const VariantResult& r : results) all_identical &= r.identical;
  double warm = results[2].restore_seconds + results[2].resume_seconds;
  std::printf(
      "cold run: %ss; packed restore+resume vs cold: %sx\n"
      "on-disk size reduction (v1 -> v2 packed): %sx\n"
      "mmap restore-to-session-ready: %ss vs eager v1 %ss\n"
      "repairs %s\n",
      Fmt(cold_seconds).c_str(),
      warm > 0.0 ? Fmt(cold_seconds / warm, 1).c_str() : "-",
      Fmt(ratio, 2).c_str(), Fmt(results[3].restore_seconds).c_str(),
      Fmt(results[0].restore_seconds).c_str(),
      all_identical ? "bit-identical to the cold run for every variant"
                    : "DIFFER (BUG)");

  const char* keys[] = {"v1", "v2_raw", "v2_packed", "v2_packed_mmap"};
  for (size_t i = 0; i < 4; ++i) {
    std::string prefix = keys[i];
    AppendBenchMetric("micro_persist", prefix + "_bytes",
                      static_cast<double>(results[i].bytes));
    AppendBenchMetric("micro_persist", prefix + "_save_seconds",
                      results[i].save_seconds);
    AppendBenchMetric("micro_persist", prefix + "_restore_seconds",
                      results[i].restore_seconds);
    AppendBenchMetric("micro_persist", prefix + "_resume_seconds",
                      results[i].resume_seconds);
  }
  AppendBenchMetric("micro_persist", "cold_seconds", cold_seconds);
  AppendBenchMetric("micro_persist", "size_reduction_v1_over_packed", ratio);
  AppendBenchMetric("micro_persist", "repairs_identical",
                    all_identical ? 1.0 : 0.0);

  std::remove(kSnapshotPath);
  return all_identical ? 0 : 1;
}
