// Session persistence: cost of Session::Save / HoloClean::Restore versus
// recomputing the pipeline from scratch. A session saved after learning
// carries the grounded factor graph and trained weights, so a restored
// process pays only inference + repair extraction — the snapshot turns the
// expensive detect/compile/learn prefix into file I/O.

#include <cstdio>
#include <fstream>

#include "common.h"
#include "holoclean/data/food.h"
#include "holoclean/util/timer.h"

using namespace holoclean;         // NOLINT
using namespace holoclean::bench;  // NOLINT

namespace {

constexpr char kSnapshotPath[] = "/tmp/holoclean_micro_persist.snapshot";

HoloCleanConfig PersistConfig() {
  HoloCleanConfig config;
  config.tau = 0.5;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.gibbs_burn_in = 10;
  config.gibbs_samples = 40;
  return config;
}

size_t FileSize(const char* path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<size_t>(in.tellg()) : 0;
}

}  // namespace

int main() {
  size_t rows = static_cast<size_t>(4000 * BenchScale());
  std::printf("Session persistence on generated Food (%zu rows), "
              "DC factors + partitioning\n\n", rows);
  HoloCleanConfig config = PersistConfig();

  // Cold run: the baseline a restore competes against.
  GeneratedData cold_data = MakeFood({rows, 0.06, 7});
  HoloClean cleaner(config);
  Timer timer;
  auto cold_report = cleaner.Run(&cold_data.dataset, cold_data.dcs);
  if (!cold_report.ok()) {
    std::fprintf(stderr, "cold run failed: %s\n",
                 cold_report.status().ToString().c_str());
    return 1;
  }
  double cold_seconds = timer.Seconds();

  // Save after learn: the snapshot carries detect + compile + learn.
  GeneratedData save_data = MakeFood({rows, 0.06, 7});
  auto opened = cleaner.Open(&save_data.dataset, save_data.dcs);
  if (!opened.ok()) return 1;
  Session session = std::move(opened).value();
  if (!session.RunThrough(StageId::kLearn).ok()) return 1;
  timer.Reset();
  Status saved = session.Save(kSnapshotPath);
  double save_seconds = timer.Seconds();
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  size_t snapshot_bytes = FileSize(kSnapshotPath);

  // Restore into a fresh dataset (as a new process would) and finish the
  // pipeline from inference.
  GeneratedData restore_data = MakeFood({rows, 0.06, 7});
  timer.Reset();
  auto restored = cleaner.Restore(kSnapshotPath, &restore_data.dataset,
                                  restore_data.dcs);
  double load_seconds = timer.Seconds();
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  timer.Reset();
  auto resumed = restored.value().Run();
  double resume_seconds = timer.Seconds();
  if (!resumed.ok()) return 1;

  bool identical =
      resumed.value().repairs.size() == cold_report.value().repairs.size();
  for (size_t i = 0; identical && i < resumed.value().repairs.size(); ++i) {
    const Repair& a = resumed.value().repairs[i];
    const Repair& b = cold_report.value().repairs[i];
    identical = a.cell == b.cell && a.new_value == b.new_value &&
                a.probability == b.probability;
  }

  std::vector<int> widths = {34, 12};
  PrintRule(widths);
  PrintRow({"Step", "seconds"}, widths);
  PrintRule(widths);
  PrintRow({"cold run (all stages)", Fmt(cold_seconds)}, widths);
  PrintRow({"save after learn", Fmt(save_seconds)}, widths);
  PrintRow({"restore (load + validate)", Fmt(load_seconds)}, widths);
  PrintRow({"resume (infer + repair)", Fmt(resume_seconds)}, widths);
  PrintRow({"restore + resume total", Fmt(load_seconds + resume_seconds)},
           widths);
  PrintRule(widths);
  double warm = load_seconds + resume_seconds;
  std::printf("snapshot size: %.1f MiB; restore+resume vs cold: %sx; "
              "repairs %s\n",
              static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0),
              warm > 0.0 ? Fmt(cold_seconds / warm, 1).c_str() : "-",
              identical ? "bit-identical to the cold run" : "DIFFER (BUG)");
  std::remove(kSnapshotPath);
  return identical ? 0 : 1;
}
