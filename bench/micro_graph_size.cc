// Reproduces the grounding-reduction claims of §1/§5: the paper reports
// that domain pruning (Alg. 2) plus tuple partitioning (Alg. 3) shrink the
// grounded factor graph by 7x (small datasets) to 96,000x (largest).
//
// For each dataset we compare:
//   naive     — DC factors over all tuple pairs with active-domain-sized
//               variable states (computed analytically; materializing it is
//               exactly what the paper says is infeasible),
//   pruned    — DC factors with Alg. 2 candidate sets, no partitioning,
//   pruned+p. — with partitioning (Alg. 3) as well.

#include <cstdio>

#include "common.h"
#include "holoclean/detect/violation_detector.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

int main() {
  std::printf("Micro: factor-graph size reduction from Alg. 2 + Alg. 3\n\n");
  std::vector<int> widths = {12, 16, 14, 16, 11};
  PrintRule(widths);
  PrintRow({"Dataset", "Naive factors", "Pruned", "Pruned+part.",
            "Reduction"},
           widths);
  PrintRule(widths);

  for (const std::string& name : AllDatasetNames()) {
    // Naive: every two-tuple DC grounds a factor per tuple pair, and each
    // cell variable ranges over its attribute's full active domain.
    GeneratedData data = MakeDataset(name);
    const Table& table = data.dataset.dirty();
    double n = static_cast<double>(table.num_rows());
    double naive = 0.0;
    for (const auto& dc : data.dcs) {
      naive += dc.IsTwoTuple() ? n * (n - 1) / 2 : n;
    }
    // Plus one feature factor per (cell, active-domain value, feature).
    double active_states = 0.0;
    for (size_t a = 0; a < table.schema().num_attrs(); ++a) {
      active_states +=
          n * static_cast<double>(
                  table.ActiveDomain(static_cast<AttrId>(a)).size());
    }
    naive += active_states;

    HoloCleanConfig config = PaperConfig(name);
    config.dc_mode = DcMode::kBoth;
    config.partitioning = false;
    RunOutcome pruned = RunPipeline(&data, config, false);

    GeneratedData data2 = MakeDataset(name);
    config.partitioning = true;
    RunOutcome part = RunPipeline(&data2, config, false);

    double reduction =
        static_cast<double>(part.stats.num_grounded_factors) > 0
            ? naive /
                  static_cast<double>(part.stats.num_grounded_factors)
            : 0.0;
    PrintRow({name, Fmt(naive, 0),
              std::to_string(pruned.stats.num_grounded_factors),
              std::to_string(part.stats.num_grounded_factors),
              Fmt(reduction, 0) + "x"},
             widths);
  }
  PrintRule(widths);
  std::printf("\n(The reduction grows with dataset size — at the paper's "
              "full scale it reaches ~96,000x on Physicians.)\n");
  return 0;
}
