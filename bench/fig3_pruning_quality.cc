// Reproduces Figure 3 of the paper: effect of the domain-pruning threshold
// τ (Algorithm 2) on the precision and recall of HoloClean's repairs, for
// τ ∈ {0.3, 0.5, 0.7, 0.9} on all four datasets. Expected shape: recall
// falls as τ grows (smaller candidate sets), precision generally rises.

#include <cstdio>

#include "common.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

int main() {
  const std::vector<double> taus = {0.3, 0.5, 0.7, 0.9};
  std::printf("Figure 3: Precision/Recall vs pruning threshold tau\n\n");
  std::vector<int> widths = {12, 5, 10, 10, 10};
  PrintRule(widths);
  PrintRow({"Dataset", "tau", "Precision", "Recall", "F1"}, widths);
  PrintRule(widths);
  for (const std::string& name : AllDatasetNames()) {
    for (double tau : taus) {
      GeneratedData data = MakeDataset(name);
      HoloCleanConfig config = PaperConfig(name);
      config.tau = tau;
      RunOutcome outcome = RunPipeline(&data, config, false);
      PrintRow({name, Fmt(tau, 1), Fmt(outcome.eval.precision),
                Fmt(outcome.eval.recall), Fmt(outcome.eval.f1)},
               widths);
    }
    PrintRule(widths);
  }
  return 0;
}
