// Batch/session-pool micro-bench: many Food-derived datasets served
// through one Engine vs the same jobs as sequential standalone sessions
// with private per-session pools.
//
// The serving workload runs two rounds over the same dataset fleet — the
// multi-tenant pattern the Engine exists for. The per-session baseline
// pays a cold session (pool spin-up, detect, compile, learn, infer) for
// every job; the Engine runs the fleet concurrently over one shared pool
// and parks each job's session in its LRU, so round two reuses the cached
// stage artifacts (a bit-identical incremental re-run) instead of
// recomputing them. Repairs are cross-checked against the standalone
// baseline job by job.
//
// Emits JSON-lines metrics via HOLOCLEAN_BENCH_JSON (aggregated into
// BENCH_ci.json by CI): serving throughput for both paths, the headline
// speedup, and cold-batch throughput vs shared-pool size.

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "holoclean/core/engine.h"
#include "holoclean/data/food.h"
#include "holoclean/util/timer.h"

using namespace holoclean;         // NOLINT
using namespace holoclean::bench;  // NOLINT

namespace {

constexpr size_t kFleet = 4;   // Distinct Food-derived datasets.
constexpr size_t kRounds = 2;  // Serving rounds over the fleet.

std::shared_ptr<GeneratedData> MakeVariant(size_t i, size_t rows) {
  FoodOptions options;
  options.num_rows = rows;
  options.error_rate = 0.05 + 0.01 * static_cast<double>(i);
  options.seed = 901 + i;
  return std::make_shared<GeneratedData>(MakeFood(options));
}

CleaningInputs InputsOf(const std::shared_ptr<GeneratedData>& data) {
  return CleaningInputs::Owned(
      std::shared_ptr<Dataset>(data, &data->dataset),
      std::shared_ptr<const std::vector<DenialConstraint>>(data,
                                                           &data->dcs));
}

}  // namespace

int main() {
  size_t rows = static_cast<size_t>(1500 * BenchScale());
  if (rows < 300) rows = 300;
  HoloCleanConfig config = PaperConfig("food");

  std::printf(
      "Micro: batch serving throughput (Food profile, %zu datasets x %zu "
      "rounds, %zu rows each)\n\n",
      kFleet, kRounds, rows);

  std::vector<std::shared_ptr<GeneratedData>> fleet;
  for (size_t i = 0; i < kFleet; ++i) fleet.push_back(MakeVariant(i, rows));

  // --- Baseline: sequential standalone runs, one private pool per
  // session (the legacy deployment). Job i uses the batch-derived per-job
  // seed, so the comparison below is apples-to-apples and bit-identical.
  std::vector<std::vector<Repair>> baseline_repairs(kFleet);
  Timer per_session_timer;
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < kFleet; ++i) {
      HoloCleanConfig job_config = config;
      job_config.seed = Engine::PerJobSeed(config.seed, i);
      auto report = CleanOnce(
          CleaningInputs::Borrowed(&fleet[i]->dataset, &fleet[i]->dcs),
          {job_config});
      if (!report.ok()) {
        std::fprintf(stderr, "standalone run %zu failed: %s\n", i,
                     report.status().ToString().c_str());
        return 1;
      }
      baseline_repairs[i] = report.value().repairs;
    }
  }
  double per_session_seconds = per_session_timer.Seconds();

  // --- Engine serving: one shared pool, sessions parked in the LRU
  // between rounds. Round two's jobs are cached-report lookups.
  double engine_seconds = 0.0;
  bool identical = true;
  {
    EngineOptions engine_options;
    engine_options.session_cache_capacity = kFleet;
    Engine engine(engine_options);
    Timer timer;
    for (size_t round = 0; round < kRounds; ++round) {
      std::vector<Engine::BatchJob> jobs;
      for (size_t i = 0; i < kFleet; ++i) {
        Engine::BatchJob job;
        job.inputs = InputsOf(fleet[i]);
        job.options.config = config;
        job.options.config.seed = Engine::PerJobSeed(config.seed, i);
        job.options.cache_key = "food-" + std::to_string(i);
        jobs.push_back(std::move(job));
      }
      std::vector<std::future<Result<Report>>> futures =
          engine.SubmitBatch(std::move(jobs));
      for (size_t i = 0; i < futures.size(); ++i) {
        Result<Report> result = futures[i].get();
        if (!result.ok()) {
          std::fprintf(stderr, "engine job %zu failed: %s\n", i,
                       result.status().ToString().c_str());
          return 1;
        }
        const std::vector<Repair>& got = result.value().repairs;
        const std::vector<Repair>& want = baseline_repairs[i];
        if (got.size() != want.size()) identical = false;
        for (size_t r = 0; identical && r < got.size(); ++r) {
          identical = got[r].cell == want[r].cell &&
                      got[r].new_value == want[r].new_value &&
                      got[r].probability == want[r].probability;
        }
      }
    }
    engine_seconds = timer.Seconds();
  }

  size_t total_jobs = kFleet * kRounds;
  double per_session_rate =
      static_cast<double>(total_jobs) / per_session_seconds;
  double engine_rate = static_cast<double>(total_jobs) / engine_seconds;
  double speedup = per_session_seconds / engine_seconds;

  std::vector<int> widths = {26, 12, 14, 10};
  PrintRule(widths);
  PrintRow({"Path", "Seconds", "Datasets/sec", "Repairs"}, widths);
  PrintRule(widths);
  PrintRow({"per-session pools", Fmt(per_session_seconds, 2),
            Fmt(per_session_rate, 2), identical ? "match" : "MISMATCH"},
           widths);
  PrintRow({"engine (shared+LRU)", Fmt(engine_seconds, 2),
            Fmt(engine_rate, 2), Fmt(speedup, 2) + "x"},
           widths);
  PrintRule(widths);

  AppendBenchMetric("micro_pool", "per_session_seconds", per_session_seconds);
  AppendBenchMetric("micro_pool", "engine_seconds", engine_seconds);
  AppendBenchMetric("micro_pool", "per_session_datasets_per_sec",
                    per_session_rate);
  AppendBenchMetric("micro_pool", "engine_datasets_per_sec", engine_rate);
  AppendBenchMetric("micro_pool", "pool_speedup", speedup);
  AppendBenchMetric("micro_pool", "repairs_identical", identical ? 1 : 0);

  // --- Cold-batch throughput vs shared-pool size: one round, no session
  // reuse — isolates the concurrency and pool-amortization component (on
  // a single-core host this hovers around 1x; the LRU provides the
  // serving win above).
  std::printf("\nCold batch (no session reuse) vs shared-pool size:\n");
  std::vector<int> cold_widths = {12, 12, 14};
  PrintRule(cold_widths);
  PrintRow({"Pool size", "Seconds", "Datasets/sec"}, cold_widths);
  PrintRule(cold_widths);
  for (size_t pool_size : {size_t{1}, size_t{2}, size_t{4}}) {
    EngineOptions engine_options;
    engine_options.num_threads = pool_size;
    engine_options.session_cache_capacity = 0;  // No parking: cold jobs.
    Engine engine(engine_options);
    std::vector<CleaningInputs> inputs;
    for (size_t i = 0; i < kFleet; ++i) inputs.push_back(InputsOf(fleet[i]));
    SessionOptions common;
    common.config = config;
    Timer timer;
    std::vector<std::future<Result<Report>>> futures =
        engine.SubmitBatch(std::move(inputs), common);
    for (auto& f : futures) {
      if (!f.get().ok()) {
        std::fprintf(stderr, "cold batch job failed\n");
        return 1;
      }
    }
    double seconds = timer.Seconds();
    double rate = static_cast<double>(kFleet) / seconds;
    PrintRow({std::to_string(pool_size), Fmt(seconds, 2), Fmt(rate, 2)},
             cold_widths);
    AppendBenchMetric("micro_pool",
                      "cold_batch_datasets_per_sec_pool" +
                          std::to_string(pool_size),
                      rate);
  }
  PrintRule(cold_widths);

  if (!identical) {
    std::fprintf(stderr,
                 "error: engine repairs diverged from standalone runs\n");
    return 1;
  }
  return 0;
}
