// Reproduces Figure 6 of the paper: the error rate of HoloClean's repairs
// per marginal-probability bucket, across all four datasets. Expected
// shape: error rate decreases monotonically as the marginal probability of
// the repair increases — the marginals carry calibrated semantics (§6.3.3).

#include <cstdio>

#include "common.h"
#include "holoclean/core/calibration.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

int main() {
  std::printf("Figure 6: Repair error-rate per marginal-probability bucket\n");
  std::printf("(paper bucket averages: [.5-.6) .58, [.6-.7) .36, [.7-.8) .24,"
              " [.8-.9) .07, [.9-1.0] .04)\n\n");
  const std::vector<double> edges = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  std::vector<int> widths = {12, 12, 12, 12, 12, 12};
  PrintRule(widths);
  PrintRow({"Dataset", "[.5-.6)", "[.6-.7)", "[.7-.8)", "[.8-.9)",
            "[.9-1.0]"},
           widths);
  PrintRule(widths);

  std::vector<double> wrong_sum(5, 0.0);
  std::vector<double> total_sum(5, 0.0);
  for (const std::string& name : AllDatasetNames()) {
    GeneratedData data = MakeDataset(name);
    RunOutcome outcome = RunPipeline(&data, PaperConfig(name), false);
    auto buckets = ComputeCalibration(data.dataset, outcome.repairs, edges);
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < buckets.size(); ++i) {
      const auto& b = buckets[i];
      row.push_back(b.total == 0
                        ? "-"
                        : Fmt(b.ErrorRate(), 2) + " (" +
                              std::to_string(b.total) + ")");
      wrong_sum[i] += static_cast<double>(b.wrong);
      total_sum[i] += static_cast<double>(b.total);
    }
    PrintRow(row, widths);
  }
  PrintRule(widths);
  std::vector<std::string> avg = {"average"};
  for (size_t i = 0; i < wrong_sum.size(); ++i) {
    avg.push_back(total_sum[i] == 0 ? "-"
                                    : Fmt(wrong_sum[i] / total_sum[i], 2));
  }
  PrintRow(avg, widths);
  PrintRule(widths);
  return 0;
}
