// Reproduces Figure 5 of the paper: runtime, precision, and recall of the
// five HoloClean variants on Food, sweeping the repair-candidate threshold:
//   DC Factors | DC Factors + partitioning | DC Feats |
//   DC Feats + DC Factors | DC Feats + DC Factors + partitioning
// Expected shape: relaxed features (DC Feats) are faster at low τ and give
// the best quality; partitioning reduces the factor count / runtime of the
// factor-based variants; pruning raises precision and lowers recall for all.

#include <cstdio>

#include "common.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

namespace {

struct Variant {
  const char* label;
  DcMode mode;
  bool partitioning;
};

}  // namespace

int main() {
  const std::vector<double> taus = {0.3, 0.5, 0.7, 0.9};
  const std::vector<Variant> variants = {
      {"DC Factors", DcMode::kFactors, false},
      {"DC Factors + part.", DcMode::kFactors, true},
      {"DC Feats", DcMode::kFeatures, false},
      {"DC Feats + DC Factors", DcMode::kBoth, false},
      {"DC Feats + Factors + part.", DcMode::kBoth, true},
  };

  std::printf("Figure 5: HoloClean variants on Food\n\n");
  std::vector<int> widths = {27, 5, 12, 11, 10, 10, 10, 11};
  PrintRule(widths);
  PrintRow({"Variant", "tau", "Compile (s)", "Repair (s)", "Precision",
            "Recall", "F1", "DC factors"},
           widths);
  PrintRule(widths);
  for (const Variant& variant : variants) {
    for (double tau : taus) {
      GeneratedData data = MakeDataset("food");
      HoloCleanConfig config = PaperConfig("food");
      config.tau = tau;
      config.dc_mode = variant.mode;
      config.partitioning = variant.partitioning;
      RunOutcome outcome = RunPipeline(&data, config, false);
      PrintRow({variant.label, Fmt(tau, 1),
                Fmt(outcome.stats.compile_seconds, 2),
                Fmt(outcome.stats.RepairSeconds(), 2),
                Fmt(outcome.eval.precision), Fmt(outcome.eval.recall),
                Fmt(outcome.eval.f1),
                std::to_string(outcome.stats.num_dc_factors)},
               widths);
    }
    PrintRule(widths);
  }
  return 0;
}
