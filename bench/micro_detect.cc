// Detect+compile wall time of the columnar scan paths vs the row reference
// paths on generated Food at three sizes. Both paths run the full pipeline
// on identical data, so the bench doubles as a bit-identity cross-check of
// the noisy set and the repairs. CI pins the columnar-vs-row speedup at the
// largest size against the committed BENCH_ci.json ratio.

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "holoclean/data/food.h"

using namespace holoclean;         // NOLINT
using namespace holoclean::bench;  // NOLINT

namespace {

struct DetectRun {
  bool ok = false;
  double detect = 0.0;
  double compile = 0.0;
  double detect_compile = 0.0;
  size_t num_violations = 0;
  size_t num_noisy = 0;
  std::vector<Repair> repairs;
};

DetectRun RunOnce(size_t rows, uint64_t seed, bool columnar) {
  GeneratedData data = MakeFood({rows, 0.06, seed});
  HoloCleanConfig config;
  config.tau = 0.5;
  config.columnar = columnar;
  auto session = OpenStandaloneSession(
      CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  if (!session.ok()) return {};
  auto report = session.value().Run();
  if (!report.ok()) return {};
  DetectRun out;
  out.ok = true;
  out.detect = report.value().stats.detect_seconds;
  out.compile = report.value().stats.compile_seconds;
  out.detect_compile = out.detect + out.compile;
  out.num_violations = report.value().stats.num_violations;
  out.num_noisy = report.value().stats.num_noisy_cells;
  out.repairs = report.value().repairs;
  return out;
}

bool SameResults(const DetectRun& a, const DetectRun& b) {
  if (a.num_violations != b.num_violations) return false;
  if (a.num_noisy != b.num_noisy) return false;
  if (a.repairs.size() != b.repairs.size()) return false;
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    const Repair& x = a.repairs[i];
    const Repair& y = b.repairs[i];
    if (!(x.cell == y.cell) || x.old_value != y.old_value ||
        x.new_value != y.new_value || x.probability != y.probability) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::vector<std::pair<std::string, size_t>> sizes = {
      {"4k", 4000}, {"40k", 40000}, {"100k", 100000}};
  std::printf("Detect+compile: columnar scans vs row reference "
              "(generated Food)\n\n");

  std::vector<int> widths = {6, 9, 13, 13, 13, 13, 12, 9};
  PrintRule(widths);
  PrintRow({"size", "rows", "det col (s)", "det row (s)", "cmp col (s)",
            "cmp row (s)", "rows/s col", "speedup"},
           widths);
  PrintRule(widths);

  double largest_speedup = 0.0;
  for (const auto& [label, nominal] : sizes) {
    size_t rows = static_cast<size_t>(static_cast<double>(nominal) *
                                      BenchScale());
    if (rows == 0) rows = 1;
    DetectRun col = RunOnce(rows, 7, true);
    DetectRun row = RunOnce(rows, 7, false);
    if (!col.ok || !row.ok) {
      std::fprintf(stderr, "run failed at %s\n", label.c_str());
      return 1;
    }
    if (!SameResults(col, row)) {
      std::fprintf(stderr,
                   "columnar/row results diverge at %s "
                   "(violations %zu vs %zu, noisy %zu vs %zu, repairs "
                   "%zu vs %zu)\n",
                   label.c_str(), col.num_violations, row.num_violations,
                   col.num_noisy, row.num_noisy, col.repairs.size(),
                   row.repairs.size());
      return 1;
    }
    double speedup =
        col.detect_compile > 0.0 ? row.detect_compile / col.detect_compile
                                 : 0.0;
    double rows_per_sec =
        col.detect_compile > 0.0
            ? static_cast<double>(rows) / col.detect_compile
            : 0.0;
    PrintRow({label, std::to_string(rows), Fmt(col.detect), Fmt(row.detect),
              Fmt(col.compile), Fmt(row.compile), Fmt(rows_per_sec, 0),
              Fmt(speedup, 2) + "x"},
             widths);
    AppendBenchMetric("micro_detect",
                      "detect_compile_seconds_columnar_" + label,
                      col.detect_compile);
    AppendBenchMetric("micro_detect", "detect_compile_seconds_row_" + label,
                      row.detect_compile);
    AppendBenchMetric("micro_detect", "rows_per_sec_columnar_" + label,
                      rows_per_sec);
    largest_speedup = speedup;
  }
  PrintRule(widths);
  std::printf("(noisy set and repairs bit-identical across paths at every "
              "size)\n");
  AppendBenchMetric("micro_detect", "speedup_100k", largest_speedup);
  return 0;
}
