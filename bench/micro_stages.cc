// Per-stage wall times of the staged pipeline engine on the generated
// scaling dataset: sequential vs partition-parallel execution of the
// compile (grounding) and infer (Gibbs) stages, and the cost of an
// incremental re-run from InferStage against the cached context.

#include <cstdio>
#include <thread>

#include "common.h"
#include "holoclean/data/food.h"
#include "holoclean/util/timer.h"

using namespace holoclean;         // NOLINT
using namespace holoclean::bench;  // NOLINT

namespace {

struct StageRun {
  std::vector<StageTiming> timings;
  double total = 0.0;
  size_t repairs = 0;
};

StageRun RunStaged(size_t rows, size_t threads) {
  GeneratedData data = MakeFood({rows, 0.06, 7});
  HoloCleanConfig config;
  config.tau = 0.5;
  config.num_threads = threads;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.gibbs_burn_in = 10;
  config.gibbs_samples = 40;
  auto session = OpenStandaloneSession(
      CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  if (!session.ok()) return {};
  auto report = session.value().Run();
  if (!report.ok()) return {};
  StageRun out;
  out.timings = report.value().stats.stage_timings;
  out.total = report.value().stats.TotalSeconds();
  out.repairs = report.value().repairs.size();
  return out;
}

}  // namespace

int main() {
  size_t rows = static_cast<size_t>(4000 * BenchScale());
  size_t hw = std::thread::hardware_concurrency();
  std::printf("Staged pipeline on generated Food (%zu rows), "
              "DC factors + partitioning\n\n", rows);

  StageRun seq = RunStaged(rows, 1);
  StageRun par = RunStaged(rows, 0);
  if (seq.timings.empty() || par.timings.empty()) {
    std::fprintf(stderr, "staged run failed\n");
    return 1;
  }

  std::vector<int> widths = {9, 14, 16, 9, 14};
  PrintRule(widths);
  PrintRow({"Stage", "1 thread (s)",
            "parallel (s, " + std::to_string(hw) + " hw)", "speedup",
            "peak rss (MiB)"},
           widths);
  PrintRule(widths);
  for (size_t i = 0; i < seq.timings.size(); ++i) {
    double s = seq.timings[i].seconds;
    double p = par.timings[i].seconds;
    double rss = static_cast<double>(par.timings[i].peak_rss_bytes) /
                 (1024.0 * 1024.0);
    PrintRow({seq.timings[i].name, Fmt(s), Fmt(p),
              p > 0.0 ? Fmt(s / p, 2) + "x" : "-", Fmt(rss, 1)},
             widths);
    AppendBenchMetric("micro_stages",
                      seq.timings[i].name + std::string("_seconds"), p);
    AppendBenchMetric("micro_stages",
                      seq.timings[i].name + std::string("_peak_rss_bytes"),
                      static_cast<double>(par.timings[i].peak_rss_bytes));
  }
  PrintRule(widths);
  PrintRow({"total", Fmt(seq.total), Fmt(par.total),
            par.total > 0.0 ? Fmt(seq.total / par.total, 2) + "x" : "-"},
           widths);
  PrintRule(widths);
  std::printf("(repairs: sequential %zu, parallel %zu — identical by "
              "construction)\n\n", seq.repairs, par.repairs);

  // Incremental re-run: invalidate inference only and re-execute against
  // the cached factor graph and weights.
  GeneratedData data = MakeFood({rows, 0.06, 7});
  HoloCleanConfig config;
  config.tau = 0.5;
  config.dc_mode = DcMode::kBoth;
  config.partitioning = true;
  config.gibbs_burn_in = 10;
  config.gibbs_samples = 40;
  auto session = OpenStandaloneSession(
      CleaningInputs::Borrowed(&data.dataset, &data.dcs), {config});
  if (!session.ok()) {
    std::fprintf(stderr, "open failed\n");
    return 1;
  }
  Timer timer;
  if (!session.value().Run().ok()) return 1;
  double cold = timer.Seconds();
  session.value().Invalidate(StageId::kInfer);
  timer.Reset();
  if (!session.value().Run().ok()) return 1;
  double warm = timer.Seconds();
  std::printf("incremental re-run from infer: %ss vs %ss cold (%sx)\n",
              Fmt(warm).c_str(), Fmt(cold).c_str(),
              warm > 0.0 ? Fmt(cold / warm, 1).c_str() : "-");
  AppendBenchMetric("micro_stages", "total_seconds", par.total);
  AppendBenchMetric("micro_stages", "rerun_from_infer_seconds", warm);
  AppendBenchMetric("micro_stages", "cold_seconds", cold);
  return 0;
}
