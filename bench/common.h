#ifndef HOLOCLEAN_BENCH_COMMON_H_
#define HOLOCLEAN_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "holoclean/core/config.h"
#include "holoclean/core/engine.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/data/generated_data.h"

namespace holoclean::bench {

/// Scale knob for all benches: HOLOCLEAN_BENCH_SCALE environment variable
/// multiplies the default row counts (1.0 when unset). Use e.g. 85 for
/// Food to approach the paper's full 339,908 rows.
double BenchScale();

/// Builds one of the four paper datasets by name ("hospital", "flights",
/// "food", "physicians") at the bench scale.
GeneratedData MakeDataset(const std::string& name);

/// The paper's per-dataset pruning thresholds (Table 3): hospital .5,
/// flights .3, food .5, physicians .7.
double PaperTau(const std::string& name);

/// Default HoloClean configuration for a dataset (paper Table 3 setup:
/// DC features, no partitioning, per-dataset tau).
HoloCleanConfig PaperConfig(const std::string& name);

/// Runs the full cleaning pipeline once (CleanOnce over a borrowed
/// bundle) and returns (evaluation, report).
struct RunOutcome {
  EvalResult eval;
  RunStats stats;
  std::vector<Repair> repairs;
};
RunOutcome RunPipeline(GeneratedData* data, const HoloCleanConfig& config,
                       bool use_dicts);

/// Prints a markdown-style table row.
void PrintRule(const std::vector<int>& widths);
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

/// Formats a double with fixed precision.
std::string Fmt(double v, int precision = 3);

/// Path of the JSON-lines metrics file named by the HOLOCLEAN_BENCH_JSON
/// environment variable, or empty when unset. CI points every bench at one
/// file and aggregates the records into BENCH_ci.json per PR, so the perf
/// trajectory (sizes, wall times, peak memory) is tracked as an artifact.
std::string BenchJsonPath();

/// Appends one {"bench":...,"metric":...,"value":...} record to the
/// metrics file. No-op when HOLOCLEAN_BENCH_JSON is unset.
void AppendBenchMetric(const std::string& bench, const std::string& metric,
                       double value);

const std::vector<std::string>& AllDatasetNames();

}  // namespace holoclean::bench

#endif  // HOLOCLEAN_BENCH_COMMON_H_
