// Ablation study of HoloClean's signals and design choices (the unification
// claim of Table 1 / §1, quantified): each row removes or isolates one
// signal of the full model and reports repair quality per dataset.
//
//   full            — all signals (the Table 3 configuration)
//   no statistics   — co-occurrence/frequency feature priors zeroed
//   no minimality   — minimality prior w0 = 0
//   no DC features  — relaxed violation features removed (DC factors off)
//   no source trust — EM reliability initialization disabled
//   no learning     — SGD disabled; priors only
//
// Expected shape: every ablation hurts at least one dataset — the paper's
// core argument is that no single signal suffices everywhere.

#include <cstdio>

#include "common.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

namespace {

struct Ablation {
  const char* label;
  void (*apply)(HoloCleanConfig*);
};

const Ablation kAblations[] = {
    {"full", [](HoloCleanConfig*) {}},
    {"no statistics",
     [](HoloCleanConfig* c) {
       c->stats_prior_weight = 0.0;
       c->freq_prior_weight = 0.0;
     }},
    {"no minimality", [](HoloCleanConfig* c) { c->minimality_weight = 0.0; }},
    {"no DC features",
     [](HoloCleanConfig* c) {
       c->dc_violation_init = 0.0;
       c->support_prior = 0.0;
     }},
    {"no source trust",
     [](HoloCleanConfig* c) { c->source_trust_scale = 0.0; }},
    {"no learning", [](HoloCleanConfig* c) { c->epochs = 0; }},
};

}  // namespace

int main() {
  std::printf("Micro: signal ablations (F1 per dataset)\n\n");
  std::vector<int> widths = {16, 10, 10, 10, 12};
  PrintRule(widths);
  PrintRow({"Ablation", "hospital", "flights", "food", "physicians"},
           widths);
  PrintRule(widths);
  for (const Ablation& ablation : kAblations) {
    std::vector<std::string> row = {ablation.label};
    for (const std::string& name : AllDatasetNames()) {
      GeneratedData data = MakeDataset(name);
      HoloCleanConfig config = PaperConfig(name);
      ablation.apply(&config);
      RunOutcome outcome = RunPipeline(&data, config, false);
      row.push_back(Fmt(outcome.eval.f1));
    }
    PrintRow(row, widths);
  }
  PrintRule(widths);
  return 0;
}
