// Reproduces Figure 4 of the paper: effect of the pruning threshold τ on
// HoloClean's compilation and repairing runtimes. Expected shape: compile
// time roughly flat in τ; repair (learning + inference) time decreases as
// τ grows because variables have fewer candidate values.

#include <cstdio>

#include "common.h"

using namespace holoclean;        // NOLINT
using namespace holoclean::bench; // NOLINT

int main() {
  const std::vector<double> taus = {0.3, 0.5, 0.7, 0.9};
  std::printf("Figure 4: Compilation and repair runtime vs tau (seconds)\n\n");
  std::vector<int> widths = {12, 5, 11, 11, 11, 12};
  PrintRule(widths);
  PrintRow({"Dataset", "tau", "Detect (s)", "Compile (s)", "Repair (s)",
            "Candidates"},
           widths);
  PrintRule(widths);
  for (const std::string& name : AllDatasetNames()) {
    for (double tau : taus) {
      GeneratedData data = MakeDataset(name);
      HoloCleanConfig config = PaperConfig(name);
      config.tau = tau;
      RunOutcome outcome = RunPipeline(&data, config, false);
      PrintRow({name, Fmt(tau, 1), Fmt(outcome.stats.detect_seconds, 2),
                Fmt(outcome.stats.compile_seconds, 2),
                Fmt(outcome.stats.RepairSeconds(), 2),
                std::to_string(outcome.stats.num_candidates)},
               widths);
    }
    PrintRule(widths);
  }
  return 0;
}
