// Flights fusion: repair conflicting flight times reported by web sources
// of very different reliability (paper §6.1/§6.2.1). Demonstrates the
// provenance signal: HoloClean's EM-estimated source trust lets it side
// with a reliable minority against a coordinated wrong majority, where
// minimality-based repair follows the (wrong) majority.

#include <cstdio>

#include "holoclean/baselines/holistic.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/core/engine.h"
#include "holoclean/data/flights.h"
#include "holoclean/stats/source_reliability.h"

using namespace holoclean;  // NOLINT — example brevity.

int main() {
  FlightsOptions data_options;
  GeneratedData data = MakeFlights(data_options);
  const Table& table = data.dataset.dirty();

  // What the trust estimator recovers about the sources.
  SourceReliability trust = SourceReliability::Estimate(
      table, table.schema().IndexOf("Flight"), data.dataset.source_attr());
  std::printf("Estimated source reliabilities (EM, SLiMFast-style):\n");
  for (const auto& [src, r] : trust.All()) {
    std::printf("  %-8s %.3f\n", table.dict().GetString(src).c_str(), r);
  }

  HoloCleanConfig config;
  config.tau = 0.3;  // Paper Table 3 uses tau=0.3 for Flights.
  auto report = holoclean::CleanOnce(
      holoclean::CleaningInputs::Borrowed(&data.dataset, &data.dcs),
      {config});
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  EvalResult holo = EvaluateRepairs(data.dataset, report.value().repairs);

  Holistic holistic;
  EvalResult minimal =
      EvaluateRepairs(data.dataset, holistic.Run(data.dataset, data.dcs));

  std::printf("\n%zu rows, %zu true errors\n", table.num_rows(),
              data.dataset.TrueErrors().size());
  std::printf("HoloClean: P=%.3f R=%.3f F1=%.3f\n", holo.precision,
              holo.recall, holo.f1);
  std::printf("Holistic (minimality): P=%.3f R=%.3f F1=%.3f\n",
              minimal.precision, minimal.recall, minimal.f1);
  return 0;
}
