// Food inspections: the paper's motivating workload (§1, Example 1).
// Cleans the Chicago food-inspections profile with all three signals —
// denial constraints, the zip/city/state dictionary, and co-occurrence
// statistics — then shows what each signal contributed by re-running with
// signals removed (the spirit of Table 1 / Figure 5).

#include <cstdio>

#include "holoclean/core/evaluation.h"
#include "holoclean/core/pipeline.h"
#include "holoclean/data/food.h"

using namespace holoclean;  // NOLINT — example brevity.

namespace {

EvalResult RunOnce(const char* label, bool use_dict, double minimality,
                   GeneratedData* data) {
  HoloCleanConfig config;
  config.tau = 0.5;
  config.minimality_weight = minimality;
  HoloClean cleaner(config);
  auto report =
      use_dict ? cleaner.Run(&data->dataset, data->dcs, &data->dicts,
                             &data->mds)
               : cleaner.Run(&data->dataset, data->dcs);
  if (!report.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 report.status().ToString().c_str());
    return {};
  }
  EvalResult eval = EvaluateRepairs(data->dataset, report.value().repairs);
  std::printf("  %-28s P=%.3f R=%.3f F1=%.3f  (%zu repairs, %.1fs)\n", label,
              eval.precision, eval.recall, eval.f1, eval.total_repairs,
              report.value().stats.TotalSeconds());
  return eval;
}

}  // namespace

int main() {
  FoodOptions data_options;
  data_options.num_rows = 4000;
  GeneratedData data = MakeFood(data_options);
  std::printf("Food inspections: %zu rows, %zu true errors\n\n",
              data.dataset.dirty().num_rows(),
              data.dataset.TrueErrors().size());

  std::printf("Signal ablation:\n");
  RunOnce("all signals", /*use_dict=*/true, /*minimality=*/1.0, &data);
  RunOnce("without external dictionary", false, 1.0, &data);
  RunOnce("without minimality prior", true, 0.0, &data);
  return 0;
}
