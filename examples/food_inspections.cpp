// Food inspections: the paper's motivating workload (§1, Example 1).
// Cleans the Chicago food-inspections profile with all three signals —
// denial constraints, the zip/city/state dictionary, and co-occurrence
// statistics — then shows what each signal contributed by re-running with
// signals removed (the spirit of Table 1 / Figure 5).
//
// The ablation runs as one Engine batch: each variant owns its copy of the
// generated data (concurrent jobs must not share a mutable Dataset), all
// three jobs run concurrently over the engine's shared worker pool, and
// each outcome arrives as a std::future<Result<Report>>. Results are
// bit-identical to running the variants sequentially as standalone
// sessions.

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "holoclean/core/engine.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/data/food.h"

using namespace holoclean;  // NOLINT — example brevity.

namespace {

struct Variant {
  const char* label;
  bool use_dict;
  double minimality;
};

}  // namespace

int main() {
  FoodOptions data_options;
  data_options.num_rows = 4000;
  const std::vector<Variant> variants = {
      {"all signals", true, 1.0},
      {"without external dictionary", false, 1.0},
      {"without minimality prior", true, 0.0},
  };

  Engine engine;
  std::vector<Engine::BatchJob> jobs;
  std::vector<std::shared_ptr<GeneratedData>> data;
  for (const Variant& v : variants) {
    // Same generator seed per variant: every job cleans identical data.
    auto generated = std::make_shared<GeneratedData>(MakeFood(data_options));
    data.push_back(generated);

    Engine::BatchJob job;
    // Aliasing shared_ptrs: the bundle keeps the whole GeneratedData
    // (dataset + constraints + dictionaries) alive as one unit.
    job.inputs = CleaningInputs::Owned(
        std::shared_ptr<Dataset>(generated, &generated->dataset),
        std::shared_ptr<const std::vector<DenialConstraint>>(
            generated, &generated->dcs),
        v.use_dict ? std::shared_ptr<const ExtDictCollection>(
                         generated, &generated->dicts)
                   : nullptr,
        v.use_dict ? std::shared_ptr<const std::vector<MatchingDependency>>(
                         generated, &generated->mds)
                   : nullptr);
    job.options.config.tau = 0.5;
    job.options.config.minimality_weight = v.minimality;
    jobs.push_back(std::move(job));
  }

  std::printf("Food inspections: %zu rows, %zu true errors\n\n",
              data[0]->dataset.dirty().num_rows(),
              data[0]->dataset.TrueErrors().size());
  std::printf("Signal ablation (one concurrent Engine batch):\n");

  std::vector<std::future<Result<Report>>> futures =
      engine.SubmitBatch(std::move(jobs));
  int failures = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<Report> result = futures[i].get();
    if (!result.ok()) {
      std::fprintf(stderr, "  %-28s failed: %s\n", variants[i].label,
                   result.status().ToString().c_str());
      ++failures;
      continue;
    }
    EvalResult eval =
        EvaluateRepairs(data[i]->dataset, result.value().repairs);
    std::printf("  %-28s P=%.3f R=%.3f F1=%.3f  (%zu repairs, %.1fs)\n",
                variants[i].label, eval.precision, eval.recall, eval.f1,
                eval.total_repairs, result.value().stats.TotalSeconds());
  }
  return failures == 0 ? 0 : 1;
}
