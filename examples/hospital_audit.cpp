// Hospital audit: clean the Hospital benchmark end-to-end, compare against
// ground truth, and show how the calibrated marginal probabilities let an
// auditor focus manual review on low-confidence repairs (paper §2.2, §6.3.3).

#include <algorithm>
#include <cstdio>

#include "holoclean/core/calibration.h"
#include "holoclean/core/evaluation.h"
#include "holoclean/core/engine.h"
#include "holoclean/data/hospital.h"

using namespace holoclean;  // NOLINT — example brevity.

int main() {
  HospitalOptions data_options;
  data_options.num_rows = 1000;
  GeneratedData data = MakeHospital(data_options);

  HoloCleanConfig config;
  config.tau = 0.5;
  auto report = holoclean::CleanOnce(
      holoclean::CleaningInputs::Borrowed(&data.dataset, &data.dcs,
                                          &data.dicts, &data.mds),
      {config});
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  EvalResult eval = EvaluateRepairs(data.dataset, report.value().repairs);
  std::printf("Hospital: %zu rows, %zu true errors\n",
              data.dataset.dirty().num_rows(),
              data.dataset.TrueErrors().size());
  std::printf("Repairs: %zu (correct %zu)  P=%.3f R=%.3f F1=%.3f\n",
              eval.total_repairs, eval.correct_repairs, eval.precision,
              eval.recall, eval.f1);

  // Calibration: error rate per marginal-probability bucket (Figure 6).
  std::printf("\nConfidence buckets (repair error-rate by marginal):\n");
  for (const CalibrationBucket& b :
       ComputeCalibration(data.dataset, report.value().repairs)) {
    std::printf("  [%.1f-%.1f): %4zu repairs, error-rate %.2f\n", b.lo, b.hi,
                b.total, b.ErrorRate());
  }

  // An auditor reviews the least confident repairs first.
  std::vector<Repair> by_confidence = report.value().repairs;
  std::sort(by_confidence.begin(), by_confidence.end(),
            [](const Repair& a, const Repair& b) {
              return a.probability < b.probability;
            });
  const Table& table = data.dataset.dirty();
  std::printf("\n5 least-confident repairs (review these first):\n");
  for (size_t i = 0; i < std::min<size_t>(5, by_confidence.size()); ++i) {
    const Repair& r = by_confidence[i];
    std::printf("  t%d.%-12s %-24s -> %-24s (p=%.2f)\n", r.cell.tid,
                table.schema().name(r.cell.attr).c_str(),
                table.dict().GetString(r.old_value).c_str(),
                table.dict().GetString(r.new_value).c_str(), r.probability);
  }
  return 0;
}
