// Quickstart: clean the paper's running example (Figure 1) with HoloClean.
//
// Builds the four-tuple Chicago food-inspections snippet, declares the
// functional dependencies of Figure 1(B) and the address dictionary of
// Figure 1(D), runs the pipeline through the Engine API, and prints the
// proposed repairs with their marginal probabilities.
//
// The Engine call surface replaces the legacy five-positional-pointer
// calling convention: inputs travel in one CleaningInputs bundle — here the
// *owned* flavor, so the session keeps every input alive and the caller
// never juggles lifetimes — and per-run knobs live in SessionOptions.

#include <cstdio>
#include <memory>

#include "holoclean/constraints/parser.h"
#include "holoclean/core/engine.h"
#include "holoclean/core/evaluation.h"

using namespace holoclean;  // NOLINT — example brevity.

int main() {
  // The dirty snippet of Figure 1(A).
  Schema schema({"DBAName", "AKAName", "Address", "City", "State", "Zip"});
  Table dirty(schema, std::make_shared<Dictionary>());
  dirty.AppendRow({"John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST",
                   "Chicago", "IL", "60608"});
  dirty.AppendRow({"John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST",
                   "Chicago", "IL", "60609"});
  dirty.AppendRow({"John Veliotis Sr.", "Johnnyo's", "3465 S Morgan ST",
                   "Chicago", "IL", "60609"});
  dirty.AppendRow({"Johnnyo's", "Johnnyo's", "3465 S Morgan ST", "Cicago",
                   "IL", "60608"});
  // Context rows so co-occurrence statistics have evidence to learn from.
  for (int i = 0; i < 8; ++i) {
    dirty.AppendRow({"Taqueria Lucky " + std::to_string(i), "Lucky",
                     std::to_string(100 + i) + " W Cermak Rd", "Chicago",
                     "IL", "60608"});
  }

  // Figure 1(B): the functional dependencies, written as denial
  // constraints in the parser's textual format.
  const char* kConstraints =
      "t1&t2&EQ(t1.DBAName,t2.DBAName)&IQ(t1.Zip,t2.Zip)\n"
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)\n"
      "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.State,t2.State)\n"
      "t1&t2&EQ(t1.City,t2.City)&EQ(t1.State,t2.State)&"
      "EQ(t1.Address,t2.Address)&IQ(t1.Zip,t2.Zip)\n";
  auto parsed = ParseDenialConstraints(kConstraints, schema);
  if (!parsed.ok()) {
    std::fprintf(stderr, "constraint parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }

  // Figure 1(D): the external address listing, wired in through the
  // matching dependencies of Figure 1(C).
  auto dicts = std::make_shared<ExtDictCollection>();
  Table listing(Schema({"Ext_Address", "Ext_City", "Ext_State", "Ext_Zip"}),
                std::make_shared<Dictionary>());
  listing.AppendRow({"3465 S Morgan ST", "Chicago", "IL", "60608"});
  listing.AppendRow({"1208 N Wells ST", "Chicago", "IL", "60610"});
  listing.AppendRow({"259 E Erie ST", "Chicago", "IL", "60611"});
  listing.AppendRow({"2806 W Cermak Rd", "Chicago", "IL", "60623"});
  int k = dicts->Add("chicago-addresses", std::move(listing));
  auto mds = std::make_shared<std::vector<MatchingDependency>>();
  mds->push_back({"m1: zip->city", k, {{"Zip", "Ext_Zip"}}, "City",
                  "Ext_City"});
  mds->push_back({"m2: zip->state", k, {{"Zip", "Ext_Zip"}}, "State",
                  "Ext_State"});
  mds->push_back({"m3: city,state,address->zip",
                  k,
                  {{"City", "Ext_City"},
                   {"State", "Ext_State"},
                   {"Address", "Ext_Address"}},
                  "Zip",
                  "Ext_Zip"});

  // The owned input bundle: the session shares ownership, so these locals
  // could go out of scope (or the job run asynchronously via
  // Engine::Submit) without any lifetime bookkeeping.
  auto dataset = std::make_shared<Dataset>(std::move(dirty));
  auto dcs = std::make_shared<const std::vector<DenialConstraint>>(
      std::move(parsed).value());
  CleaningInputs inputs = CleaningInputs::Owned(dataset, dcs, dicts, mds);

  SessionOptions options;
  options.config.tau = 0.3;
  options.config.max_training_cells = 1000;
  // On this tiny instance we can afford the full model: DC factors with
  // Gibbs sampling on top of the relaxed features, so the proposed zips
  // are consistent across the conflicting tuples.
  options.config.dc_mode = DcMode::kBoth;
  options.config.gibbs_burn_in = 100;
  options.config.gibbs_samples = 400;
  // Soft constraint weight: hard factors trap Gibbs in one mode (the
  // paper's §5.2 argument); a gentler weight lets the chain mix.
  options.config.dc_factor_weight = 1.5;
  // Trust the curated address listing more than the (tiny) statistics.
  options.config.ext_dict_init = 6.0;

  Engine engine;
  auto opened = engine.OpenSession(std::move(inputs), options);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Session session = std::move(opened).value();
  auto report = session.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  const Table& table = dataset->dirty();
  std::printf("Generated DDlog program:\n%s\n", report.value().ddlog.c_str());
  std::printf("%zu noisy cells, %zu proposed repairs (%zu learned weights):\n",
              report.value().stats.num_noisy_cells,
              report.value().repairs.size(), session.weights().size());
  for (const Repair& r : report.value().repairs) {
    std::printf("  t%d.%-8s  %-18s -> %-18s  (p=%.2f)\n", r.cell.tid,
                table.schema().name(r.cell.attr).c_str(),
                table.dict().GetString(r.old_value).c_str(),
                table.dict().GetString(r.new_value).c_str(), r.probability);
  }
  return 0;
}
