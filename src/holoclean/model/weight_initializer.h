#ifndef HOLOCLEAN_MODEL_WEIGHT_INITIALIZER_H_
#define HOLOCLEAN_MODEL_WEIGHT_INITIALIZER_H_

#include <vector>

#include "holoclean/constraints/denial_constraint.h"
#include "holoclean/model/weight_store.h"
#include "holoclean/storage/table.h"

namespace holoclean {

/// Prior weights seeded before SGD refinement. The priors encode the
/// qualitative direction of each signal so the model behaves sensibly even
/// where the evidence carries no gradient (e.g. single-candidate evidence
/// variables).
struct WeightInitOptions {
  /// Initial weight of the shared probability-valued co-occurrence feature.
  double stats_prior_weight = 1.0;
  /// Initial weight of the per-attribute frequency feature.
  double freq_prior_weight = 0.3;
  /// Initial weight of the relaxed DC violation-count features w(σ)
  /// (negative: violations lower a candidate's score).
  double dc_violation_init = -1.0;
  /// Initial weight of the external-dictionary factors w(k).
  double ext_dict_init = 2.0;
  /// Initial weight of the FD-partner support feature when the table has no
  /// provenance column (with provenance, EM trust estimates are used).
  double support_prior = 0.5;
  /// Scale of the source-trust initialization derived from the
  /// SLiMFast-style reliability estimates (paper §6.2.1).
  double source_trust_scale = 2.0;
};

/// Everything the initializer reads. Pointers are borrowed.
struct WeightInitInput {
  const Table* table = nullptr;
  const std::vector<AttrId>* attrs = nullptr;
  const std::vector<DenialConstraint>* dcs = nullptr;
  size_t num_dicts = 0;
  /// Provenance attribute, -1 when absent. With provenance, per-source
  /// reliability is estimated with the EM voter and seeds the
  /// partner-support weights; without it a flat support prior is used.
  AttrId source_attr = -1;
};

/// Seeds a WeightStore with the signal priors the pipeline's LearnStage
/// refines by SGD: statistics features positive, violation counts negative,
/// dictionary matches positive, and source-trust weights from the
/// SLiMFast-style EM estimates when provenance is available.
class WeightInitializer {
 public:
  explicit WeightInitializer(WeightInitOptions options)
      : options_(options) {}

  WeightStore Initialize(const WeightInitInput& in) const;

 private:
  WeightInitOptions options_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_MODEL_WEIGHT_INITIALIZER_H_
