#ifndef HOLOCLEAN_MODEL_DOMAIN_PRUNING_H_
#define HOLOCLEAN_MODEL_DOMAIN_PRUNING_H_

#include <unordered_map>
#include <vector>

#include "holoclean/stats/cooccurrence.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// Output of Algorithm 2: the candidate-repair set for each noisy cell.
struct PrunedDomains {
  std::unordered_map<CellRef, std::vector<ValueId>, CellRefHash> candidates;

  /// Sum of candidate-set sizes — the number of random-variable states.
  size_t TotalCandidates() const {
    size_t n = 0;
    for (const auto& [cell, cand] : candidates) n += cand.size();
    return n;
  }

  const std::vector<ValueId>& For(const CellRef& cell) const {
    static const std::vector<ValueId> kEmpty;
    auto it = candidates.find(cell);
    return it == candidates.end() ? kEmpty : it->second;
  }
};

/// Options for domain pruning.
struct DomainPruningOptions {
  /// The co-occurrence threshold τ of Algorithm 2: value v is a candidate
  /// for cell c when Pr[v | v_c'] >= tau for some other cell c' of c's tuple.
  double tau = 0.5;
  /// Hard cap on candidates per cell (keeps grounding bounded even for very
  /// low τ); candidates with the highest co-occurrence counts are kept.
  size_t max_candidates = 64;
  /// When true, cells whose tuple context is entirely NULL fall back to the
  /// most frequent values of the attribute.
  bool frequency_fallback = true;
};

/// Algorithm 2 of the paper: candidate repairs for every cell in `cells`
/// are the values of the cell's attribute that co-occur with the tuple's
/// other cell values with conditional probability >= τ. The observed value
/// is always a candidate.
PrunedDomains PruneDomains(const Table& table,
                           const std::vector<CellRef>& cells,
                           const std::vector<AttrId>& attrs,
                           const CooccurrenceStats& cooc,
                           const DomainPruningOptions& options);

/// Same candidate sets as PruneDomains (bit-identical per cell), produced
/// the columnar way: cells fan out across the pool and per-cell scoring
/// runs on flat (value, count) runs — sort + keep-max-per-value — instead
/// of a hash map per cell.
PrunedDomains PruneDomainsColumnar(const Table& table,
                                   const std::vector<CellRef>& cells,
                                   const std::vector<AttrId>& attrs,
                                   const CooccurrenceStats& cooc,
                                   const DomainPruningOptions& options,
                                   ThreadPool* pool = nullptr);

}  // namespace holoclean

#endif  // HOLOCLEAN_MODEL_DOMAIN_PRUNING_H_
