#ifndef HOLOCLEAN_MODEL_COMPILED_GRAPH_H_
#define HOLOCLEAN_MODEL_COMPILED_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"
#include "holoclean/model/factor_graph.h"
#include "holoclean/model/weight_store.h"
#include "holoclean/util/thread_pool.h"

namespace holoclean {

/// Build-time knobs of the compiled runtime representation.
struct CompiledGraphOptions {
  /// Maximum candidate-combination entries precomputed per DC factor. A
  /// factor whose query-variable candidate cross-product exceeds the cap
  /// gets no violation table; the sampler falls back to evaluating the
  /// constraint with the DcEvaluator (bit-identical, just slower).
  size_t violation_table_cap = 4096;
  /// Similarity threshold of the evaluator that precomputes the violation
  /// tables. Recorded on the built graph (CompiledGraph::sim_threshold());
  /// the sampler constructs its fallback evaluator from that recorded
  /// value, so the table and fallback verdicts agree by construction.
  double sim_threshold = 0.8;
};

/// Compile-once/execute-many view of a FactorGraph: everything the learn
/// and infer hot loops touch, flattened into contiguous arrays.
///
///  - Dense weight ids: every packed 64-bit weight key appearing in a
///    feature gets a contiguous int32 id (sorted-key order, so the remap is
///    deterministic). Training and scoring run over a flat
///    std::vector<double> indexed by these ids instead of hashing into the
///    WeightStore per activation. The WeightStore stays the sparse
///    persisted/introspection view; GatherWeights/ScatterWeights convert at
///    stage boundaries so snapshots remain bit-compatible with the
///    reference path.
///  - CSR arenas: per-variable candidate offsets, flat prior biases, and a
///    global feature arena (weight id + activation), plus CSR
///    factors-of-variable adjacency. One pointer chase per span instead of
///    one per Variable.
///  - Violation tables: per DC factor, the violation predicate evaluated
///    once per combination of its query variables' candidate indices, so
///    Gibbs factor scoring becomes an array lookup.
///
/// Every score a CompiledGraph produces is bit-identical to the reference
/// FactorGraph path: the arrays preserve feature and factor order, the
/// dense values mirror WeightStore::Get exactly, and the tables are
/// precomputed with the same evaluator the fallback uses.
///
/// The compiled view borrows nothing: it copies what it needs at Build
/// time, so it stays valid as long as the ids it references (variables,
/// factors, candidates) describe the same graph. Rebuild whenever the
/// FactorGraph or the observed table changes.
class CompiledGraph {
 public:
  /// Per-build statistics, for introspection, benches, and the fallback
  /// boundary tests.
  struct Stats {
    size_t num_tabled_factors = 0;
    size_t num_fallback_factors = 0;
    size_t table_entries = 0;
  };

  CompiledGraph() = default;

  /// Compiles `graph` against the observed `table` and constraint set.
  /// `table` and `dcs` are only read during Build (violation-table
  /// precompute); they are not retained. `pool` parallelizes the arena
  /// fill and the per-factor violation-table precompute (null = fully
  /// sequential): every offset is planned in cheap serial passes first, so
  /// the parallel fills write disjoint ranges and the built graph is
  /// byte-identical for any pool size.
  static CompiledGraph Build(const FactorGraph& graph, const Table& table,
                             const std::vector<DenialConstraint>& dcs,
                             const CompiledGraphOptions& options = {},
                             ThreadPool* pool = nullptr);

  /// Streaming-append extension: folds the variables
  /// [first_var, graph.num_variables()) of `graph` — which must be the
  /// graph this view was built from, grown by feature-only variables (no
  /// DC factors attach to them) — into the arenas in place. Existing
  /// entries are untouched: candidate/feature spans append at the tail,
  /// and weight keys the old graph never referenced get dense ids past the
  /// sorted prefix (WeightIdOf scans that unsorted tail linearly), so
  /// every already-stored feat_weight_ id stays valid. The periodic full
  /// rebuild (stream compaction / resync) restores the fully-sorted key
  /// order.
  void AppendVariables(const FactorGraph& graph, size_t first_var);

  // --- Dense weight remap ---------------------------------------------------

  size_t num_weights() const { return weight_keys_.size(); }
  /// Dense id -> packed weight key. Keys [0, sorted_weight_prefix())
  /// ascend; ids past that are append-order (streaming extension).
  const std::vector<uint64_t>& weight_keys() const { return weight_keys_; }
  /// Length of the sorted prefix of weight_keys(); equal to num_weights()
  /// on a freshly built graph.
  size_t sorted_weight_prefix() const { return sorted_weight_prefix_; }
  /// Dense id of a packed key, or -1 when no feature references it.
  /// Binary search over the sorted prefix plus a linear scan of the
  /// appended tail — introspection/test path, not used by the hot loops.
  int32_t WeightIdOf(uint64_t key) const {
    auto sorted_end =
        weight_keys_.begin() + static_cast<ptrdiff_t>(sorted_weight_prefix_);
    auto it = std::lower_bound(weight_keys_.begin(), sorted_end, key);
    if (it != sorted_end && *it == key) {
      return static_cast<int32_t>(it - weight_keys_.begin());
    }
    for (size_t i = sorted_weight_prefix_; i < weight_keys_.size(); ++i) {
      if (weight_keys_[i] == key) return static_cast<int32_t>(i);
    }
    return -1;
  }

  /// Dense parameter vector mirroring `sparse`: dense[id] ==
  /// sparse.Get(weight_keys()[id]) for every id (absent keys read 0.0).
  std::vector<double> GatherWeights(const WeightStore& sparse) const;

  /// Writes trained dense values back into the sparse store. Only ids
  /// flagged in `touched` are Set — exactly the keys the reference SGD
  /// loop would have created or updated — so the store's entry set (and
  /// therefore its serialized form) matches the reference path bit for
  /// bit.
  void ScatterWeights(const std::vector<double>& dense,
                      const std::vector<uint8_t>& touched,
                      WeightStore* sparse) const;

  // --- Variables ------------------------------------------------------------

  size_t num_variables() const { return is_evidence_.size(); }
  int32_t NumCandidates(int var_id) const {
    return cand_begin_[static_cast<size_t>(var_id) + 1] -
           cand_begin_[static_cast<size_t>(var_id)];
  }
  /// Offset of the variable's first candidate in the flat candidate arrays
  /// (prior biases, unary-score buffers).
  int32_t CandBegin(int var_id) const {
    return cand_begin_[static_cast<size_t>(var_id)];
  }
  bool IsEvidence(int var_id) const {
    return is_evidence_[static_cast<size_t>(var_id)] != 0;
  }
  int32_t InitIndex(int var_id) const {
    return init_index_[static_cast<size_t>(var_id)];
  }

  /// Unary score of candidate `k` of `var_id` under the dense parameters:
  /// same accumulation order as FactorGraph::UnaryScore, so the result is
  /// bit-identical when `dense` mirrors the WeightStore.
  double UnaryScore(int var_id, int k, const std::vector<double>& dense) const {
    size_t c = static_cast<size_t>(cand_begin_[static_cast<size_t>(var_id)]) +
               static_cast<size_t>(k);
    double score = prior_bias_[c];
    for (int64_t i = feat_begin_[c]; i < feat_begin_[c + 1]; ++i) {
      score += dense[static_cast<size_t>(feat_weight_[static_cast<size_t>(i)])] *
               feat_act_[static_cast<size_t>(i)];
    }
    return score;
  }

  /// Span of the feature arena for candidate `k` of `var_id`.
  int64_t FeatBegin(int var_id, int k) const {
    return feat_begin_[static_cast<size_t>(
        cand_begin_[static_cast<size_t>(var_id)] + k)];
  }
  int64_t FeatEnd(int var_id, int k) const {
    return feat_begin_[static_cast<size_t>(
                           cand_begin_[static_cast<size_t>(var_id)] + k) +
                       1];
  }
  const std::vector<int32_t>& feat_weight() const { return feat_weight_; }
  const std::vector<float>& feat_act() const { return feat_act_; }

  // --- DC factors -----------------------------------------------------------

  size_t num_factors() const { return factor_weight_.size(); }
  double FactorWeight(int fid) const {
    return factor_weight_[static_cast<size_t>(fid)];
  }
  int32_t FactorDcIndex(int fid) const {
    return factor_dc_[static_cast<size_t>(fid)];
  }
  TupleId FactorT1(int fid) const { return factor_t1_[static_cast<size_t>(fid)]; }
  TupleId FactorT2(int fid) const { return factor_t2_[static_cast<size_t>(fid)]; }
  /// Span [begin, end) of the factor's variable ids in factor_vars().
  int32_t FactorVarBegin(int fid) const {
    return factor_var_begin_[static_cast<size_t>(fid)];
  }
  int32_t FactorVarEnd(int fid) const {
    return factor_var_begin_[static_cast<size_t>(fid) + 1];
  }
  const std::vector<int32_t>& factor_vars() const { return factor_vars_; }

  /// CSR factors-of-variable adjacency (same order as
  /// FactorGraph::FactorsOfVar).
  int32_t FovBegin(int var_id) const {
    return fov_begin_[static_cast<size_t>(var_id)];
  }
  int32_t FovEnd(int var_id) const {
    return fov_begin_[static_cast<size_t>(var_id) + 1];
  }
  const std::vector<int32_t>& fov() const { return fov_; }

  /// Whether factor `fid` has a precomputed violation table.
  bool HasViolationTable(int fid) const {
    return table_begin_[static_cast<size_t>(fid)] >= 0;
  }

  /// Pointer to the table entry at `offset` within factor `fid`'s
  /// violation table. The sampler's hot loop resolves a variable's
  /// candidates through an affine (base + k * stride) offset into this.
  /// Requires HasViolationTable(fid).
  const uint8_t* ViolationTableEntry(int fid, size_t offset) const {
    return violation_tables_.data() +
           static_cast<size_t>(table_begin_[static_cast<size_t>(fid)]) +
           offset;
  }

  /// Table lookup: is factor `fid` violated when `var_id` takes candidate
  /// `k` and every other factor variable takes its `assignment` index?
  /// Requires HasViolationTable(fid).
  bool TableViolated(int fid, int var_id, int k,
                     const std::vector<int>& assignment) const {
    size_t idx = 0;
    for (int32_t i = FactorVarBegin(fid); i < FactorVarEnd(fid); ++i) {
      int32_t v = factor_vars_[static_cast<size_t>(i)];
      int c = v == var_id ? k : assignment[static_cast<size_t>(v)];
      idx = idx * static_cast<size_t>(NumCandidates(v)) +
            static_cast<size_t>(c);
    }
    return violation_tables_[static_cast<size_t>(
               table_begin_[static_cast<size_t>(fid)]) +
                             idx] != 0;
  }

  const Stats& stats() const { return stats_; }

  /// Threshold the violation tables were precomputed with; the fallback
  /// evaluator must (and, in GibbsSampler, does) use the same value.
  double sim_threshold() const { return sim_threshold_; }

 private:
  // Dense weight remap (ids are positions; sorted up to
  // sorted_weight_prefix_, append-order past it).
  std::vector<uint64_t> weight_keys_;
  size_t sorted_weight_prefix_ = 0;

  // Variable arenas. cand_begin_ has num_variables()+1 entries; the flat
  // candidate arrays (prior_bias_, unary buffers) are indexed by
  // cand_begin_[v] + k. feat_begin_ has total_candidates+1 entries into the
  // global feature arena.
  std::vector<int32_t> cand_begin_;
  std::vector<uint8_t> is_evidence_;
  std::vector<int32_t> init_index_;
  std::vector<double> prior_bias_;
  std::vector<int64_t> feat_begin_;
  std::vector<int32_t> feat_weight_;
  std::vector<float> feat_act_;

  // Factor arenas.
  std::vector<int32_t> fov_begin_;
  std::vector<int32_t> fov_;
  std::vector<int32_t> factor_var_begin_;
  std::vector<int32_t> factor_vars_;
  std::vector<double> factor_weight_;
  std::vector<int32_t> factor_dc_;
  std::vector<TupleId> factor_t1_;
  std::vector<TupleId> factor_t2_;

  // Violation tables: one shared arena; table_begin_[fid] is the factor's
  // offset, or -1 when it fell back (cross-product above the cap).
  std::vector<int64_t> table_begin_;
  std::vector<uint8_t> violation_tables_;
  double sim_threshold_ = 0.8;

  Stats stats_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_MODEL_COMPILED_GRAPH_H_
