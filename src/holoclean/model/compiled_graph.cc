#include "holoclean/model/compiled_graph.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "holoclean/constraints/evaluator.h"
#include "holoclean/util/hash.h"
#include "holoclean/util/logging.h"

namespace holoclean {

namespace {

/// Open-addressing key interner for the dense weight remap. Building the
/// remap does one probe per feature activation — with millions of
/// activations per graph, an unordered_map's bucket chasing dominated the
/// whole Build; linear probing over a flat power-of-two table is ~4x
/// cheaper. Keys get ids in insertion order; the caller re-sorts
/// afterwards (so the final ids stay deterministic) and remaps with one
/// linear pass.
class KeyInterner {
 public:
  explicit KeyInterner(size_t expected) {
    size_t capacity = 64;
    while (capacity < expected * 2) capacity <<= 1;
    slots_.assign(capacity, -1);
    mask_ = capacity - 1;
  }

  int32_t InsertOrGet(uint64_t key) {
    size_t i = Mix64(key) & mask_;
    while (slots_[i] >= 0) {
      if (keys_[static_cast<size_t>(slots_[i])] == key) return slots_[i];
      i = (i + 1) & mask_;
    }
    int32_t id = static_cast<int32_t>(keys_.size());
    keys_.push_back(key);
    slots_[i] = id;
    if (keys_.size() * 3 > slots_.size() * 2) Grow();
    return id;
  }

  std::vector<uint64_t>& keys() { return keys_; }

 private:
  void Grow() {
    size_t capacity = slots_.size() * 2;
    slots_.assign(capacity, -1);
    mask_ = capacity - 1;
    for (size_t id = 0; id < keys_.size(); ++id) {
      size_t i = Mix64(keys_[id]) & mask_;
      while (slots_[i] >= 0) i = (i + 1) & mask_;
      slots_[i] = static_cast<int32_t>(id);
    }
  }

  std::vector<int32_t> slots_;
  std::vector<uint64_t> keys_;
  size_t mask_ = 0;
};

/// Runs fn over disjoint chunks of [0, n): on the pool when one is given,
/// inline otherwise. All Build fills write disjoint index ranges, so the
/// output bytes are identical either way.
void RunChunks(ThreadPool* pool, size_t n,
               const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool != nullptr) {
    pool->ParallelChunks(n, fn);
  } else {
    fn(0, n);
  }
}

/// Fills one DC factor's precomputed violation table. One filler per
/// worker chunk: it owns the evaluator and the scratch buffers, so the
/// per-factor work stays allocation-free after warm-up exactly like the
/// old sequential loop did.
///
/// The precompute reproduces DcEvaluator::ViolatesWith verdicts without
/// paying a full evaluator call per candidate combination: each
/// predicate's operands are resolved once per factor to either a fixed
/// ValueId (an evidence cell of the factor's tuples) or a position in the
/// factor's query-variable list. Predicates with no dynamic operand are
/// evaluated once; with one, per candidate of that variable; only
/// predicates joining two query variables are evaluated per combination.
/// Verdict equivalence with the evaluator is pinned by an exhaustive
/// differential test.
class TableFiller {
 public:
  TableFiller(const std::vector<Variable>& vars, const Table& table,
              const std::vector<DenialConstraint>& dcs, double sim_threshold)
      : vars_(vars),
        table_(table),
        dcs_(dcs),
        dict_(table.dict()),
        evaluator_(&table, sim_threshold) {}

  /// Writes `entries` bytes at `dst` (the factor's region of the shared
  /// table arena, pre-zeroed by the caller's resize).
  void Fill(const DcFactor& factor, uint8_t* dst, size_t entries) {
    size_t num_positions = factor.var_ids.size();
    const DenialConstraint& dc = dcs_[static_cast<size_t>(factor.dc_index)];
    bool never_violates = dc.IsTwoTuple() && factor.t1 == factor.t2;

    // Resolve each predicate. `fixed_hold` accumulates the predicates with
    // no dynamic operand; if any fails, no combination violates.
    two_dyn_.clear();
    if (pred_by_cand_.size() < num_positions) {
      pred_by_cand_.resize(num_positions);
    }
    pred_used_.assign(num_positions, 0);
    bool fixed_hold = true;
    if (!never_violates) {
      for (const Predicate& p : dc.preds) {
        DynamicPred d;
        d.p = &p;
        TupleId lhs_t = p.lhs_tuple == 0 ? factor.t1 : factor.t2;
        for (size_t i = 0; i < num_positions; ++i) {
          const Variable& var =
              vars_[static_cast<size_t>(factor.var_ids[i])];
          if (var.cell.tid == lhs_t && var.cell.attr == p.lhs_attr) {
            d.lhs_pos = static_cast<int>(i);
            break;
          }
        }
        if (d.lhs_pos < 0) d.lhs_fixed = table_.Get(lhs_t, p.lhs_attr);
        if (!p.rhs_is_constant) {
          TupleId rhs_t = p.rhs_tuple == 0 ? factor.t1 : factor.t2;
          for (size_t i = 0; i < num_positions; ++i) {
            const Variable& var =
                vars_[static_cast<size_t>(factor.var_ids[i])];
            if (var.cell.tid == rhs_t && var.cell.attr == p.rhs_attr) {
              d.rhs_pos = static_cast<int>(i);
              break;
            }
          }
          if (d.rhs_pos < 0) d.rhs_fixed = table_.Get(rhs_t, p.rhs_attr);
        }

        if (d.lhs_pos < 0 && d.rhs_pos < 0) {
          if (!PredHolds(p, d.lhs_fixed, d.rhs_fixed)) {
            fixed_hold = false;
            break;
          }
        } else if (d.lhs_pos >= 0 && d.rhs_pos >= 0) {
          two_dyn_.push_back(d);
        } else {
          // One dynamic operand: fold the predicate into that variable's
          // per-candidate conjunction.
          int pos = d.lhs_pos >= 0 ? d.lhs_pos : d.rhs_pos;
          const Variable& var =
              vars_[static_cast<size_t>(factor.var_ids[pos])];
          auto& holds = pred_by_cand_[static_cast<size_t>(pos)];
          if (pred_used_[static_cast<size_t>(pos)] == 0) {
            pred_used_[static_cast<size_t>(pos)] = 1;
            holds.assign(var.NumCandidates(), 1);
          }
          for (size_t k = 0; k < var.NumCandidates(); ++k) {
            if (holds[k] == 0) continue;
            ValueId lhs = d.lhs_pos >= 0 ? var.domain[k] : d.lhs_fixed;
            ValueId rhs = d.rhs_pos >= 0 ? var.domain[k] : d.rhs_fixed;
            if (!PredHolds(p, lhs, rhs)) holds[k] = 0;
          }
        }
      }
    }

    // The arena region is pre-zeroed: a factor that can never violate
    // keeps its all-zero table without writing a byte.
    if (never_violates || !fixed_hold) return;

    // Enumerate the combinations in row-major order (last variable
    // fastest), mirroring TableViolated's index computation.
    combo_.assign(num_positions, 0);
    combo_value_.resize(num_positions);
    for (size_t i = 0; i < num_positions; ++i) {
      combo_value_[i] =
          vars_[static_cast<size_t>(factor.var_ids[i])].domain[0];
    }
    for (size_t e = 0; e < entries; ++e) {
      bool violated = true;
      for (size_t i = 0; i < num_positions && violated; ++i) {
        if (pred_used_[i] != 0 &&
            pred_by_cand_[i][static_cast<size_t>(combo_[i])] == 0) {
          violated = false;
        }
      }
      for (const DynamicPred& d : two_dyn_) {
        if (!violated) break;
        violated = PredHolds(*d.p,
                             combo_value_[static_cast<size_t>(d.lhs_pos)],
                             combo_value_[static_cast<size_t>(d.rhs_pos)]);
      }
      dst[e] = violated ? 1 : 0;
      // Increment the mixed-radix counter (last position fastest).
      for (size_t i = num_positions; i-- > 0;) {
        const Variable& var =
            vars_[static_cast<size_t>(factor.var_ids[i])];
        if (++combo_[i] < static_cast<int>(var.NumCandidates())) {
          combo_value_[i] = var.domain[static_cast<size_t>(combo_[i])];
          break;
        }
        combo_[i] = 0;
        combo_value_[i] = var.domain[0];
      }
    }
  }

 private:
  struct DynamicPred {
    const Predicate* p = nullptr;
    int lhs_pos = -1;  ///< Position in the factor's var list, or -1 fixed.
    int rhs_pos = -1;
    ValueId lhs_fixed = 0;
    ValueId rhs_fixed = 0;
  };

  // Mirrors the tail of DcEvaluator::PredicateHolds once the operands are
  // resolved: NULLs never hold; constants compare as strings.
  bool PredHolds(const Predicate& p, ValueId lhs, ValueId rhs) const {
    if (lhs == Dictionary::kNull) return false;
    if (p.rhs_is_constant) {
      return evaluator_.CompareStrings(p.op, dict_.GetString(lhs),
                                       p.constant);
    }
    if (rhs == Dictionary::kNull) return false;
    return evaluator_.Compare(p.op, lhs, rhs);
  }

  const std::vector<Variable>& vars_;
  const Table& table_;
  const std::vector<DenialConstraint>& dcs_;
  const Dictionary& dict_;
  DcEvaluator evaluator_;

  /// Scratch, reused across the chunk's factors (allocation-free steady
  /// state). pred_by_cand_[i][k]: conjunction of the single-dynamic
  /// predicates of factor variable i at its candidate k; pred_used_[i]
  /// marks positions that have any.
  std::vector<DynamicPred> two_dyn_;
  std::vector<std::vector<uint8_t>> pred_by_cand_;
  std::vector<uint8_t> pred_used_;
  std::vector<int> combo_;
  std::vector<ValueId> combo_value_;
};

}  // namespace

CompiledGraph CompiledGraph::Build(const FactorGraph& graph,
                                   const Table& table,
                                   const std::vector<DenialConstraint>& dcs,
                                   const CompiledGraphOptions& options,
                                   ThreadPool* pool) {
  CompiledGraph out;
  out.sim_threshold_ = options.sim_threshold;
  const std::vector<Variable>& vars = graph.variables();
  size_t num_vars = vars.size();

  // --- Variable arenas: serial offset planning, parallel fill.
  // Candidate and feature offsets per variable are cheap prefix sums; with
  // them fixed, every variable writes disjoint ranges of the flat arrays.
  size_t total_cands = 0;
  size_t total_feats = 0;
  out.cand_begin_.reserve(num_vars + 1);
  out.cand_begin_.push_back(0);
  out.is_evidence_.reserve(num_vars);
  out.init_index_.reserve(num_vars);
  std::vector<int64_t> var_feat_begin(num_vars + 1);
  var_feat_begin[0] = 0;
  for (size_t v = 0; v < num_vars; ++v) {
    const Variable& var = vars[v];
    total_cands += var.NumCandidates();
    total_feats += var.features.size();
    out.cand_begin_.push_back(static_cast<int32_t>(total_cands));
    out.is_evidence_.push_back(var.is_evidence ? 1 : 0);
    out.init_index_.push_back(var.init_index);
    var_feat_begin[v + 1] = static_cast<int64_t>(total_feats);
  }
  HOLO_CHECK(total_cands < static_cast<size_t>(INT32_MAX));
  out.prior_bias_.resize(total_cands);
  out.feat_begin_.resize(total_cands + 1);
  out.feat_begin_[0] = 0;
  out.feat_act_.resize(total_feats);
  out.feat_weight_.resize(total_feats);
  // Raw 64-bit keys land in a temp arena first; interning stays a serial
  // pass (the interner is shared state), but it is one probe per
  // activation over a flat array — the copy work around it parallelizes.
  std::vector<uint64_t> feat_key_raw(total_feats);
  RunChunks(pool, num_vars, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      const Variable& var = vars[v];
      size_t cand = static_cast<size_t>(out.cand_begin_[v]);
      size_t feat = static_cast<size_t>(var_feat_begin[v]);
      for (size_t k = 0; k < var.NumCandidates(); ++k) {
        out.prior_bias_[cand + k] = var.prior_bias[k];
        for (int32_t i = var.feat_begin[k]; i < var.feat_begin[k + 1]; ++i) {
          const FeatureInstance& f = var.features[static_cast<size_t>(i)];
          feat_key_raw[feat] = f.weight_key;
          out.feat_act_[feat] = f.activation;
          ++feat;
        }
        out.feat_begin_[cand + k + 1] =
            var_feat_begin[v] + static_cast<int64_t>(var.feat_begin[k + 1]);
      }
    }
  });

  // Interning runs per chunk: each worker collects its chunk's unique keys
  // in a private probe table, and the union is sorted and deduplicated
  // (chunks can share keys). The dense id assignment is sorted-key order,
  // so the result is exactly the serial pass's for ANY chunking — one
  // chunk, the pool's, or none. Instances then remap in parallel through a
  // read-only probe table over the sorted key set. Sizing the interners
  // for one unique key per ~4 instances skips nearly every rehash without
  // over-allocating on feature-heavy graphs.
  std::vector<std::vector<uint64_t>> chunk_keys;
  std::mutex chunk_mu;
  RunChunks(pool, total_feats, [&](size_t begin, size_t end) {
    KeyInterner local(/*expected=*/(end - begin) / 4 + 64);
    for (size_t i = begin; i < end; ++i) local.InsertOrGet(feat_key_raw[i]);
    std::lock_guard<std::mutex> lock(chunk_mu);
    chunk_keys.push_back(std::move(local.keys()));
  });
  size_t total_keys = 0;
  for (const auto& keys : chunk_keys) total_keys += keys.size();
  out.weight_keys_.clear();
  out.weight_keys_.reserve(total_keys);
  for (const auto& keys : chunk_keys) {
    out.weight_keys_.insert(out.weight_keys_.end(), keys.begin(), keys.end());
  }
  std::sort(out.weight_keys_.begin(), out.weight_keys_.end());
  out.weight_keys_.erase(
      std::unique(out.weight_keys_.begin(), out.weight_keys_.end()),
      out.weight_keys_.end());
  out.sorted_weight_prefix_ = out.weight_keys_.size();
  // Read-only probe table: key -> rank in the sorted set. Lookups cannot
  // miss (every instance key was interned), so the probe loop needs no
  // empty-slot check.
  size_t rank_capacity = 64;
  while (rank_capacity < out.weight_keys_.size() * 2) rank_capacity <<= 1;
  std::vector<int32_t> rank_slots(rank_capacity, -1);
  const size_t rank_mask = rank_capacity - 1;
  for (size_t r = 0; r < out.weight_keys_.size(); ++r) {
    size_t i = Mix64(out.weight_keys_[r]) & rank_mask;
    while (rank_slots[i] >= 0) i = (i + 1) & rank_mask;
    rank_slots[i] = static_cast<int32_t>(r);
  }
  RunChunks(pool, total_feats, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      uint64_t key = feat_key_raw[i];
      size_t s = Mix64(key) & rank_mask;
      while (out.weight_keys_[static_cast<size_t>(rank_slots[s])] != key) {
        s = (s + 1) & rank_mask;
      }
      out.feat_weight_[i] = rank_slots[s];
    }
  });
  feat_key_raw.clear();
  feat_key_raw.shrink_to_fit();

  // --- Factors-of-variable adjacency, preserving FactorsOfVar order.
  const std::vector<DcFactor>& factors = graph.dc_factors();
  size_t num_factors = factors.size();
  size_t total_adjacency = 0;
  for (const DcFactor& factor : factors) {
    total_adjacency += factor.var_ids.size();
  }
  out.fov_begin_.reserve(num_vars + 1);
  out.fov_begin_.push_back(0);
  for (size_t v = 0; v < num_vars; ++v) {
    out.fov_begin_.push_back(
        out.fov_begin_.back() +
        static_cast<int32_t>(graph.FactorsOfVar(static_cast<int>(v)).size()));
  }
  out.fov_.resize(static_cast<size_t>(out.fov_begin_.back()));
  RunChunks(pool, num_vars, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      const auto& fids = graph.FactorsOfVar(static_cast<int>(v));
      std::copy(fids.begin(), fids.end(),
                out.fov_.begin() + out.fov_begin_[v]);
    }
  });

  // --- Factor arenas and violation-table offsets (serial: cheap linear
  // bookkeeping, and the stats must accumulate deterministically).
  out.factor_var_begin_.reserve(num_factors + 1);
  out.factor_var_begin_.push_back(0);
  out.factor_vars_.reserve(total_adjacency);
  out.factor_weight_.reserve(num_factors);
  out.factor_dc_.reserve(num_factors);
  out.factor_t1_.reserve(num_factors);
  out.factor_t2_.reserve(num_factors);
  out.table_begin_.reserve(num_factors);
  std::vector<size_t> table_entries(num_factors, 0);
  size_t total_entries = 0;
  for (size_t fid = 0; fid < num_factors; ++fid) {
    const DcFactor& factor = factors[fid];
    out.factor_vars_.insert(out.factor_vars_.end(), factor.var_ids.begin(),
                            factor.var_ids.end());
    out.factor_var_begin_.push_back(
        static_cast<int32_t>(out.factor_vars_.size()));
    out.factor_weight_.push_back(factor.weight);
    out.factor_dc_.push_back(factor.dc_index);
    out.factor_t1_.push_back(factor.t1);
    out.factor_t2_.push_back(factor.t2);

    // Cross-product size, capped. The per-variable candidate counts are
    // bounded by the pruning cap (default 64), so overflow is only a
    // theoretical concern — still, bail out as soon as the running product
    // passes the table cap.
    size_t entries = 1;
    bool fits = !factor.var_ids.empty();
    for (int32_t v : factor.var_ids) {
      entries *= vars[static_cast<size_t>(v)].NumCandidates();
      if (entries > options.violation_table_cap) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      out.table_begin_.push_back(-1);
      ++out.stats_.num_fallback_factors;
      continue;
    }
    out.table_begin_.push_back(static_cast<int64_t>(total_entries));
    table_entries[fid] = entries;
    total_entries += entries;
    ++out.stats_.num_tabled_factors;
    out.stats_.table_entries += entries;
  }

  // --- Violation-table fill: per-factor regions are disjoint, so factors
  // precompute concurrently; each chunk owns its evaluator and scratch.
  out.violation_tables_.assign(total_entries, 0);
  RunChunks(pool, num_factors, [&](size_t begin, size_t end) {
    TableFiller filler(vars, table, dcs, options.sim_threshold);
    for (size_t fid = begin; fid < end; ++fid) {
      if (out.table_begin_[fid] < 0) continue;
      filler.Fill(factors[fid],
                  out.violation_tables_.data() +
                      static_cast<size_t>(out.table_begin_[fid]),
                  table_entries[fid]);
    }
  });

  return out;
}

void CompiledGraph::AppendVariables(const FactorGraph& graph,
                                    size_t first_var) {
  const std::vector<Variable>& vars = graph.variables();
  HOLO_CHECK(first_var == num_variables());
  HOLO_CHECK(first_var <= vars.size());

  // Interning for the delta: keys already known resolve through WeightIdOf
  // (sorted prefix + tail); keys first seen in this batch append at the
  // tail. A private map over the existing tail keeps repeat lookups O(1)
  // across the batch.
  std::unordered_map<uint64_t, int32_t> tail_ids;
  for (size_t i = sorted_weight_prefix_; i < weight_keys_.size(); ++i) {
    tail_ids.emplace(weight_keys_[i], static_cast<int32_t>(i));
  }
  auto id_of = [&](uint64_t key) -> int32_t {
    auto sorted_end =
        weight_keys_.begin() + static_cast<ptrdiff_t>(sorted_weight_prefix_);
    auto it = std::lower_bound(weight_keys_.begin(), sorted_end, key);
    if (it != sorted_end && *it == key) {
      return static_cast<int32_t>(it - weight_keys_.begin());
    }
    auto mit = tail_ids.find(key);
    if (mit != tail_ids.end()) return mit->second;
    int32_t id = static_cast<int32_t>(weight_keys_.size());
    weight_keys_.push_back(key);
    tail_ids.emplace(key, id);
    return id;
  };

  for (size_t v = first_var; v < vars.size(); ++v) {
    const Variable& var = vars[v];
    // Streamed variables are feature-only; DC factors never attach to them
    // (factor-mode models force a full rebuild instead).
    HOLO_CHECK(graph.FactorsOfVar(static_cast<int>(v)).empty());
    size_t cand0 = prior_bias_.size();
    cand_begin_.push_back(
        static_cast<int32_t>(cand0 + var.NumCandidates()));
    is_evidence_.push_back(var.is_evidence ? 1 : 0);
    init_index_.push_back(var.init_index);
    fov_begin_.push_back(fov_begin_.back());
    for (size_t k = 0; k < var.NumCandidates(); ++k) {
      prior_bias_.push_back(var.prior_bias[k]);
      for (int32_t i = var.feat_begin[k]; i < var.feat_begin[k + 1]; ++i) {
        const FeatureInstance& f = var.features[static_cast<size_t>(i)];
        feat_weight_.push_back(id_of(f.weight_key));
        feat_act_.push_back(f.activation);
      }
      feat_begin_.push_back(static_cast<int64_t>(feat_weight_.size()));
    }
  }
  HOLO_CHECK(prior_bias_.size() < static_cast<size_t>(INT32_MAX));
}

std::vector<double> CompiledGraph::GatherWeights(
    const WeightStore& sparse) const {
  std::vector<double> dense(weight_keys_.size());
  for (size_t i = 0; i < weight_keys_.size(); ++i) {
    dense[i] = sparse.Get(weight_keys_[i]);
  }
  return dense;
}

void CompiledGraph::ScatterWeights(const std::vector<double>& dense,
                                   const std::vector<uint8_t>& touched,
                                   WeightStore* sparse) const {
  HOLO_CHECK(dense.size() == weight_keys_.size());
  HOLO_CHECK(touched.size() == weight_keys_.size());
  for (size_t i = 0; i < weight_keys_.size(); ++i) {
    if (touched[i]) sparse->Set(weight_keys_[i], dense[i]);
  }
}

}  // namespace holoclean
