#include "holoclean/model/grounding.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "holoclean/ddlog/program.h"
#include "holoclean/model/feature_registry.h"
#include "holoclean/util/hash.h"
#include "holoclean/util/logging.h"

namespace holoclean {

namespace {

/// Query-variable ids among the head-slot cells of a grounded tuple pair.
/// Reads the already-built variables only; safe to call concurrently.
std::vector<int32_t> VarsOfPair(const FactorGraph& graph,
                                const std::vector<DcHeadSlot>& slots,
                                TupleId t1, TupleId t2) {
  std::vector<int32_t> ids;
  for (const DcHeadSlot& slot : slots) {
    CellRef c{slot.role == 0 ? t1 : t2, slot.attr};
    int id = graph.VarOfCell(c);
    if (id >= 0 && !graph.variable(id).is_evidence) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

Grounder::Grounder(GroundingInput input, GroundingOptions options)
    : in_(std::move(input)),
      opt_(options),
      evaluator_(in_.table, options.sim_threshold) {
  HOLO_CHECK(in_.table != nullptr);
  HOLO_CHECK(in_.dcs != nullptr);
  HOLO_CHECK(in_.attrs != nullptr);
  HOLO_CHECK(in_.query_cells != nullptr);
  HOLO_CHECK(in_.evidence_cells != nullptr);
  HOLO_CHECK(in_.domains != nullptr);
  if (in_.matches != nullptr) {
    for (const MatchedEntry& m : *in_.matches) {
      ValueId v = in_.table->dict().Lookup(m.value);
      if (v < 0) continue;  // Pipeline interns matched values; skip others.
      matches_by_cell_[m.cell].emplace_back(v, m.dict_id);
    }
  }
  BuildDcIndexes();
}

void Grounder::BuildDcIndexes() {
  const auto& dcs = *in_.dcs;
  dc_indexes_.resize(dcs.size());
  fd_target_attr_.assign(dcs.size(), -1);
  cross_eqs_.resize(dcs.size());
  role_attrs_[0].resize(dcs.size());
  role_attrs_[1].resize(dcs.size());
  size_t n = in_.table->num_rows();

  for (size_t i = 0; i < dcs.size(); ++i) {
    const DenialConstraint& dc = dcs[i];
    cross_eqs_[i] = dc.CrossEqualities();
    role_attrs_[0][i] = dc.AttrsOfRole(0);
    role_attrs_[1][i] = dc.AttrsOfRole(1);
    if (!dc.IsTwoTuple()) continue;
    if (cross_eqs_[i].empty()) continue;
    DcIndex& index = dc_indexes_[i];
    index.usable = true;
    for (size_t t = 0; t < n; ++t) {
      for (int role : {0, 1}) {
        uint64_t key =
            RoleKey(static_cast<int>(i), static_cast<TupleId>(t), role, {});
        if (key == 0) continue;
        index.by_role[role][key].push_back(static_cast<TupleId>(t));
      }
    }

    // FD shape: every predicate spans both tuples on the same attribute,
    // exactly one is a NEQ (the dependent attribute), the rest are EQ.
    AttrId neq_attr = -1;
    bool fd_shaped = true;
    int neq_count = 0;
    for (const Predicate& p : dc.preds) {
      if (p.rhs_is_constant || p.lhs_tuple == p.rhs_tuple ||
          p.lhs_attr != p.rhs_attr) {
        fd_shaped = false;
        break;
      }
      if (p.op == Op::kNeq) {
        ++neq_count;
        neq_attr = p.lhs_attr;
      } else if (p.op != Op::kEq) {
        fd_shaped = false;
        break;
      }
    }
    if (fd_shaped && neq_count == 1) {
      fd_target_attr_[i] = neq_attr;
    }
  }
}

uint64_t Grounder::RoleKey(int dc_index, TupleId t, int role,
                           const std::vector<CellOverride>& overrides) const {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const Predicate* p : cross_eqs_[static_cast<size_t>(dc_index)]) {
    AttrId attr;
    if (role == 0) {
      attr = p->lhs_tuple == 0 ? p->lhs_attr : p->rhs_attr;
    } else {
      attr = p->lhs_tuple == 1 ? p->lhs_attr : p->rhs_attr;
    }
    ValueId v = in_.table->Get(t, attr);
    for (const CellOverride& o : overrides) {
      if (o.cell.tid == t && o.cell.attr == attr) v = o.value;
    }
    if (v == Dictionary::kNull) return 0;
    h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(v)));
  }
  return h;
}

int Grounder::CountViolations(int dc_index, const CellRef& cell,
                              ValueId candidate) const {
  const DenialConstraint& dc = (*in_.dcs)[static_cast<size_t>(dc_index)];
  std::vector<CellOverride> overrides{{cell, candidate}};

  if (!dc.IsTwoTuple()) {
    const auto& attrs = role_attrs_[0][static_cast<size_t>(dc_index)];
    if (!std::binary_search(attrs.begin(), attrs.end(), cell.attr)) return 0;
    return evaluator_.ViolatesWith(dc, cell.tid, cell.tid, overrides) ? 1 : 0;
  }

  const DcIndex& index = dc_indexes_[static_cast<size_t>(dc_index)];
  if (!index.usable) return 0;

  int count = 0;
  std::unordered_set<TupleId> counted;
  for (int role : {0, 1}) {
    const auto& role_attrs = role_attrs_[role][static_cast<size_t>(dc_index)];
    if (!std::binary_search(role_attrs.begin(), role_attrs.end(), cell.attr)) {
      continue;
    }
    uint64_t key = RoleKey(dc_index, cell.tid, role, overrides);
    if (key == 0) continue;
    auto it = index.by_role[1 - role].find(key);
    if (it == index.by_role[1 - role].end()) continue;
    size_t checks = 0;
    for (TupleId partner : it->second) {
      if (partner == cell.tid) continue;
      if (++checks > opt_.max_partner_checks) break;
      if (counted.count(partner) > 0) continue;
      bool violates = role == 0
                          ? evaluator_.ViolatesWith(dc, cell.tid, partner,
                                                    overrides)
                          : evaluator_.ViolatesWith(dc, partner, cell.tid,
                                                    overrides);
      if (violates) {
        counted.insert(partner);
        if (++count >= opt_.max_violation_count) return count;
      }
    }
  }
  return count;
}

std::unordered_map<ValueId, int> Grounder::SupportBySource(
    int dc_index, const CellRef& cell, ValueId candidate) const {
  std::unordered_map<ValueId, int> support;
  const DcIndex& index = dc_indexes_[static_cast<size_t>(dc_index)];
  if (!index.usable) return support;
  uint64_t key = RoleKey(dc_index, cell.tid, 0, {});
  if (key == 0) return support;
  auto it = index.by_role[1].find(key);
  if (it == index.by_role[1].end()) return support;
  size_t checks = 0;
  for (TupleId partner : it->second) {
    if (partner == cell.tid) continue;
    if (++checks > opt_.max_partner_checks) break;
    if (in_.table->Get(partner, cell.attr) != candidate) continue;
    ValueId src = in_.source_attr >= 0
                      ? in_.table->Get(partner, in_.source_attr)
                      : Dictionary::kNull;
    ++support[src];
  }
  return support;
}

Result<Variable> Grounder::BuildVariable(const CellRef& cell,
                                         bool is_evidence) const {
  const Table& table = *in_.table;
  Variable var;
  var.cell = cell;
  var.is_evidence = is_evidence;
  var.domain = in_.domains->For(cell);
  if (var.domain.empty()) {
    return Status::Internal("cell has no candidates");
  }
  ValueId init = table.Get(cell);
  var.init_index = -1;
  for (size_t k = 0; k < var.domain.size(); ++k) {
    if (var.domain[k] == init) {
      var.init_index = static_cast<int>(k);
      break;
    }
  }
  var.prior_bias.assign(var.domain.size(), 0.0);
  if (var.init_index >= 0) {
    var.prior_bias[static_cast<size_t>(var.init_index)] =
        opt_.minimality_weight;
  }

  ValueId src = in_.source_attr >= 0 ? table.Get(cell.tid, in_.source_attr)
                                     : Dictionary::kNull;
  const auto* cell_matches = [&]() -> const std::vector<std::pair<ValueId, int>>* {
    auto it = matches_by_cell_.find(cell);
    return it == matches_by_cell_.end() ? nullptr : &it->second;
  }();

  bool relax_dcs =
      opt_.dc_mode == DcMode::kFeatures || opt_.dc_mode == DcMode::kBoth;

  // Columnar grounding resolves the tuple's context once per cell — the
  // context value, its count, and the co-occurrence run for this attribute
  // pair — so the per-candidate loop binary-searches an id-sorted run
  // instead of hashing into the statistics per candidate. The emitted
  // features (order and float values) are identical: the conditional
  // probability is computed from the same numerator and denominator.
  struct CtxRun {
    AttrId a_ctx;
    ValueId v_ctx;
    int ctx_count;
    const std::vector<std::pair<ValueId, int>>* run;
  };
  std::vector<CtxRun> contexts;
  if (opt_.columnar) {
    contexts.reserve(in_.attrs->size());
    for (AttrId a_ctx : *in_.attrs) {
      if (a_ctx == cell.attr) continue;
      ValueId v_ctx = table.Get(cell.tid, a_ctx);
      if (v_ctx == Dictionary::kNull) continue;
      CtxRun ctx{a_ctx, v_ctx, 0, nullptr};
      if (in_.cooc != nullptr) {
        ctx.ctx_count = in_.cooc->Count(a_ctx, v_ctx);
        ctx.run = &in_.cooc->CooccurringValues(cell.attr, a_ctx, v_ctx);
      }
      contexts.push_back(ctx);
    }
  }

  var.feat_begin.push_back(0);
  for (size_t k = 0; k < var.domain.size(); ++k) {
    ValueId d = var.domain[k];
    uint32_t du = static_cast<uint32_t>(d);
    uint32_t au = static_cast<uint32_t>(cell.attr);

    // Co-occurrence features: one per non-null context cell of the tuple.
    // Two flavours per context: the paper's per-(d,f) indicator with weight
    // w(d,f), and a probability-valued feature shared per attribute pair so
    // the statistics signal generalizes where w(d,f) lacks training data.
    if (opt_.columnar) {
      for (const CtxRun& ctx : contexts) {
        var.features.push_back(
            {WeightKeyCodec::Pack(FeatureKind::kCooccurrence, au,
                                  static_cast<uint32_t>(ctx.a_ctx),
                                  static_cast<uint32_t>(ctx.v_ctx), du),
             1.0f});
        if (ctx.run != nullptr && ctx.ctx_count > 0) {
          auto it = std::lower_bound(ctx.run->begin(), ctx.run->end(),
                                     std::make_pair(d, 0));
          if (it != ctx.run->end() && it->first == d) {
            double p = static_cast<double>(it->second) /
                       static_cast<double>(ctx.ctx_count);
            var.features.push_back(
                {WeightKeyCodec::Pack(FeatureKind::kCondProb, au,
                                      static_cast<uint32_t>(ctx.a_ctx), 0, 0),
                 static_cast<float>(p)});
          }
        }
      }
    } else {
      for (AttrId a_ctx : *in_.attrs) {
        if (a_ctx == cell.attr) continue;
        ValueId v_ctx = table.Get(cell.tid, a_ctx);
        if (v_ctx == Dictionary::kNull) continue;
        var.features.push_back(
            {WeightKeyCodec::Pack(FeatureKind::kCooccurrence, au,
                                  static_cast<uint32_t>(a_ctx),
                                  static_cast<uint32_t>(v_ctx), du),
             1.0f});
        if (in_.cooc != nullptr) {
          double p = in_.cooc->CondProb(cell.attr, d, a_ctx, v_ctx);
          if (p > 0.0) {
            var.features.push_back(
                {WeightKeyCodec::Pack(FeatureKind::kCondProb, au,
                                      static_cast<uint32_t>(a_ctx), 0, 0),
                 static_cast<float>(p)});
          }
        }
      }
    }
    // Marginal frequency of the candidate within its attribute.
    if (in_.cooc != nullptr && table.num_rows() > 0) {
      double p = static_cast<double>(in_.cooc->Count(cell.attr, d)) /
                 static_cast<double>(table.num_rows());
      if (p > 0.0) {
        var.features.push_back(
            {WeightKeyCodec::Pack(FeatureKind::kFrequency, au, 0, 0, 0),
             static_cast<float>(p)});
      }
    }
    // Source prior feature (provenance as a feature, paper §4.1).
    if (src != Dictionary::kNull) {
      var.features.push_back(
          {WeightKeyCodec::Pack(FeatureKind::kSourcePrior, au, 0,
                                static_cast<uint32_t>(src), du),
           1.0f});
    }
    // External-dictionary factors, weight w(k).
    if (cell_matches != nullptr) {
      for (const auto& [value, dict_id] : *cell_matches) {
        if (value == d) {
          var.features.push_back(
              {WeightKeyCodec::Pack(FeatureKind::kExtDict, 0,
                                    static_cast<uint32_t>(dict_id), 0, 0),
               1.0f});
        }
      }
    }
    // Denial-constraint signals.
    for (size_t s = 0; s < in_.dcs->size(); ++s) {
      if (relax_dcs) {
        int violations = CountViolations(static_cast<int>(s), cell, d);
        if (violations > 0) {
          var.features.push_back(
              {WeightKeyCodec::Pack(FeatureKind::kDcViolation, 0,
                                    static_cast<uint32_t>(s), 0, 0),
               static_cast<float>(violations)});
        }
      }
      // Agreement with FD partners, keyed by the partner's source: the
      // trust signal that drives Flights (§6.2.1) and the duplicate signal
      // that drives Hospital.
      if (fd_target_attr_[s] == cell.attr) {
        for (const auto& [partner_src, n] :
             SupportBySource(static_cast<int>(s), cell, d)) {
          int capped = std::min(n, static_cast<int>(opt_.max_support_count));
          var.features.push_back(
              {WeightKeyCodec::Pack(FeatureKind::kSourceSupport, au,
                                    static_cast<uint32_t>(s),
                                    static_cast<uint32_t>(partner_src), 0),
               static_cast<float>(capped)});
        }
      }
    }
    var.feat_begin.push_back(static_cast<int32_t>(var.features.size()));
  }
  return var;
}

void Grounder::GroundDcFactors(FactorGraph* graph) {
  const auto& dcs = *in_.dcs;
  const Table& table = *in_.table;
  size_t n = table.num_rows();

  TupleGroups local_groups;
  const TupleGroups* groups = in_.groups;
  if (opt_.use_partitioning && groups == nullptr) {
    static const std::vector<Violation> kNoViolations;
    const auto& violations =
        in_.violations != nullptr ? *in_.violations : kNoViolations;
    local_groups = BuildTupleGroups(n, dcs.size(), violations);
    groups = &local_groups;
  }

  for (size_t s = 0; s < dcs.size(); ++s) {
    const DenialConstraint& dc = dcs[s];
    auto slots = EnumerateHeadSlots(dc);

    auto vars_of_pair = [&](TupleId t1, TupleId t2) {
      return VarsOfPair(*graph, slots, t1, t2);
    };

    if (dc.IsTwoTuple() && opt_.use_partitioning) {
      GroundPartitionedDc(graph, static_cast<int>(s), groups->groups_per_dc[s]);
      continue;
    }

    if (!dc.IsTwoTuple()) {
      for (size_t t = 0; t < n; ++t) {
        TupleId tid = static_cast<TupleId>(t);
        auto ids = vars_of_pair(tid, tid);
        if (ids.empty()) continue;
        graph->AddDcFactor(
            {static_cast<int>(s), tid, tid, opt_.dc_factor_weight, ids});
        ++stats_.num_dc_factors;
      }
      continue;
    }

    std::unordered_set<uint64_t> seen_pairs;
    size_t pairs = 0;
    auto consider = [&](TupleId a, TupleId b) {
      if (a == b || pairs >= opt_.max_pairs_per_dc) return;
      uint64_t lo = static_cast<uint32_t>(std::min(a, b));
      uint64_t hi = static_cast<uint32_t>(std::max(a, b));
      if (!seen_pairs.insert((hi << 32) | lo).second) return;
      ++stats_.num_dc_pairs_considered;
      auto ids = vars_of_pair(a, b);
      if (ids.empty()) return;
      graph->AddDcFactor(
          {static_cast<int>(s), a, b, opt_.dc_factor_weight, ids});
      ++stats_.num_dc_factors;
      ++pairs;
    };

    // No partitioning: candidate-expanded blocking. A pair can interact
    // through the constraint only if some candidate assignment makes the
    // equality prefix match, so we expand each tuple's blocking key over
    // the candidate values of its noisy equality-attribute cells.
    auto equalities = dc.CrossEqualities();
    if (equalities.empty()) {
      HOLO_LOG(kWarning) << "DC " << dc.name
                         << " has no equality predicate; skipping factors";
      continue;
    }
    std::unordered_map<uint64_t, std::vector<TupleId>> buckets[2];
    for (int role : {0, 1}) {
      std::vector<AttrId> key_attrs;
      for (const Predicate* p : equalities) {
        key_attrs.push_back(role == 0
                                ? (p->lhs_tuple == 0 ? p->lhs_attr
                                                     : p->rhs_attr)
                                : (p->lhs_tuple == 1 ? p->lhs_attr
                                                     : p->rhs_attr));
      }
      for (size_t t = 0; t < n; ++t) {
        TupleId tid = static_cast<TupleId>(t);
        // Cartesian product of per-attribute value options, capped.
        std::vector<uint64_t> keys{0x9E3779B97F4A7C15ULL};
        bool dead = false;
        for (AttrId attr : key_attrs) {
          std::vector<ValueId> options;
          ValueId init = table.Get(tid, attr);
          if (init != Dictionary::kNull) options.push_back(init);
          const auto& cand = in_.domains->For(CellRef{tid, attr});
          for (ValueId v : cand) {
            if (v != init && v != Dictionary::kNull) options.push_back(v);
          }
          if (options.empty()) {
            dead = true;
            break;
          }
          std::vector<uint64_t> next;
          next.reserve(keys.size() * options.size());
          for (uint64_t h : keys) {
            for (ValueId v : options) {
              next.push_back(HashCombine(
                  h, static_cast<uint64_t>(static_cast<uint32_t>(v))));
              if (next.size() >= opt_.max_keys_per_tuple) break;
            }
            if (next.size() >= opt_.max_keys_per_tuple) break;
          }
          keys = std::move(next);
        }
        if (dead) continue;
        for (uint64_t key : keys) buckets[role][key].push_back(tid);
      }
    }
    for (const auto& [key, left] : buckets[0]) {
      auto it = buckets[1].find(key);
      if (it == buckets[1].end()) continue;
      for (TupleId a : left) {
        for (TupleId b : it->second) consider(a, b);
      }
    }
    if (pairs >= opt_.max_pairs_per_dc) {
      HOLO_LOG(kWarning) << "DC factor pair cap reached for " << dc.name;
    }
  }
}

void Grounder::GroundPartitionedDc(
    FactorGraph* graph, int dc_index,
    const std::vector<std::vector<TupleId>>& groups) {
  const DenialConstraint& dc = (*in_.dcs)[static_cast<size_t>(dc_index)];
  auto slots = EnumerateHeadSlots(dc);

  std::vector<std::vector<DcFactor>> per_group(groups.size());
  std::vector<size_t> considered(groups.size(), 0);
  auto build_group = [&](size_t g) {
    const std::vector<TupleId>& group = groups[g];
    std::vector<DcFactor>& out = per_group[g];
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        if (out.size() >= opt_.max_pairs_per_dc) return;
        ++considered[g];
        auto ids = VarsOfPair(*graph, slots, group[i], group[j]);
        if (ids.empty()) continue;
        out.push_back({dc_index, group[i], group[j], opt_.dc_factor_weight,
                       std::move(ids)});
      }
    }
  };
  if (opt_.pool != nullptr) {
    opt_.pool->ParallelFor(groups.size(), build_group);
  } else {
    for (size_t g = 0; g < groups.size(); ++g) build_group(g);
  }

  // Deterministic merge: append in group order, capped per constraint.
  size_t pairs = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    stats_.num_dc_pairs_considered += considered[g];
    for (DcFactor& factor : per_group[g]) {
      if (pairs >= opt_.max_pairs_per_dc) {
        HOLO_LOG(kWarning) << "DC factor pair cap reached for " << dc.name;
        return;
      }
      graph->AddDcFactor(std::move(factor));
      ++stats_.num_dc_factors;
      ++pairs;
    }
  }
}

Result<FactorGraph> Grounder::Ground() {
  if (in_.table->dict().size() >= (1ULL << WeightKeyCodec::kValueBits)) {
    return Status::OutOfRange("dictionary too large for weight-key packing");
  }
  FactorGraph graph;
  // Variables are independent of each other: build them in parallel, then
  // register sequentially so ids are deterministic.
  std::vector<Variable> query_vars(in_.query_cells->size());
  std::atomic<bool> failed{false};
  auto build_query = [&](size_t i) {
    auto var = BuildVariable((*in_.query_cells)[i], /*is_evidence=*/false);
    if (!var.ok()) {
      failed.store(true);
      return;
    }
    query_vars[i] = std::move(var).value();
  };
  if (opt_.pool != nullptr) {
    opt_.pool->ParallelFor(query_vars.size(), build_query);
  } else {
    for (size_t i = 0; i < query_vars.size(); ++i) build_query(i);
  }
  if (failed.load()) return Status::Internal("cell has no candidates");
  for (Variable& var : query_vars) {
    stats_.num_feature_instances += var.features.size();
    graph.AddVariable(std::move(var));
    ++stats_.num_query_vars;
  }

  std::vector<Variable> evidence_vars(in_.evidence_cells->size());
  std::vector<char> keep(in_.evidence_cells->size(), 0);
  auto build_evidence = [&](size_t i) {
    const CellRef& cell = (*in_.evidence_cells)[i];
    if (in_.table->Get(cell) == Dictionary::kNull) return;
    auto var = BuildVariable(cell, /*is_evidence=*/true);
    if (!var.ok()) {
      failed.store(true);
      return;
    }
    if (var.value().init_index < 0) return;  // Label outside candidates.
    evidence_vars[i] = std::move(var).value();
    keep[i] = 1;
  };
  if (opt_.pool != nullptr) {
    opt_.pool->ParallelFor(evidence_vars.size(), build_evidence);
  } else {
    for (size_t i = 0; i < evidence_vars.size(); ++i) build_evidence(i);
  }
  if (failed.load()) return Status::Internal("cell has no candidates");
  for (size_t i = 0; i < evidence_vars.size(); ++i) {
    if (!keep[i]) continue;
    stats_.num_feature_instances += evidence_vars[i].features.size();
    graph.AddVariable(std::move(evidence_vars[i]));
    ++stats_.num_evidence_vars;
  }
  if (opt_.dc_mode == DcMode::kFactors || opt_.dc_mode == DcMode::kBoth) {
    GroundDcFactors(&graph);
  }
  return graph;
}

Status Grounder::GroundAppend(FactorGraph* graph,
                              const std::vector<CellRef>& query,
                              const std::vector<CellRef>& evidence) {
  if (in_.table->dict().size() >= (1ULL << WeightKeyCodec::kValueBits)) {
    return Status::OutOfRange("dictionary too large for weight-key packing");
  }
  std::vector<Variable> query_vars(query.size());
  std::atomic<bool> failed{false};
  auto build_query = [&](size_t i) {
    auto var = BuildVariable(query[i], /*is_evidence=*/false);
    if (!var.ok()) {
      failed.store(true);
      return;
    }
    query_vars[i] = std::move(var).value();
  };
  if (opt_.pool != nullptr) {
    opt_.pool->ParallelFor(query_vars.size(), build_query);
  } else {
    for (size_t i = 0; i < query_vars.size(); ++i) build_query(i);
  }
  if (failed.load()) return Status::Internal("cell has no candidates");
  for (Variable& var : query_vars) {
    stats_.num_feature_instances += var.features.size();
    graph->AddVariable(std::move(var));
    ++stats_.num_query_vars;
  }

  std::vector<Variable> evidence_vars(evidence.size());
  std::vector<char> keep(evidence.size(), 0);
  auto build_evidence = [&](size_t i) {
    const CellRef& cell = evidence[i];
    if (in_.table->Get(cell) == Dictionary::kNull) return;
    auto var = BuildVariable(cell, /*is_evidence=*/true);
    if (!var.ok()) {
      failed.store(true);
      return;
    }
    if (var.value().init_index < 0) return;  // Label outside candidates.
    evidence_vars[i] = std::move(var).value();
    keep[i] = 1;
  };
  if (opt_.pool != nullptr) {
    opt_.pool->ParallelFor(evidence_vars.size(), build_evidence);
  } else {
    for (size_t i = 0; i < evidence_vars.size(); ++i) build_evidence(i);
  }
  if (failed.load()) return Status::Internal("cell has no candidates");
  for (size_t i = 0; i < evidence_vars.size(); ++i) {
    if (!keep[i]) continue;
    stats_.num_feature_instances += evidence_vars[i].features.size();
    graph->AddVariable(std::move(evidence_vars[i]));
    ++stats_.num_evidence_vars;
  }
  return Status::OK();
}

}  // namespace holoclean
