#include "holoclean/model/weight_initializer.h"

#include "holoclean/model/feature_registry.h"
#include "holoclean/stats/source_reliability.h"

namespace holoclean {

WeightStore WeightInitializer::Initialize(const WeightInitInput& in) const {
  WeightStore weights;
  const std::vector<AttrId>& attrs = *in.attrs;
  const std::vector<DenialConstraint>& dcs = *in.dcs;

  for (AttrId a : attrs) {
    uint32_t au = static_cast<uint32_t>(a);
    weights.Set(WeightKeyCodec::Pack(FeatureKind::kFrequency, au, 0, 0, 0),
                options_.freq_prior_weight);
    for (AttrId a_ctx : attrs) {
      if (a_ctx == a) continue;
      weights.Set(
          WeightKeyCodec::Pack(FeatureKind::kCondProb, au,
                               static_cast<uint32_t>(a_ctx), 0, 0),
          options_.stats_prior_weight);
    }
  }
  for (size_t s = 0; s < dcs.size(); ++s) {
    weights.Set(WeightKeyCodec::Pack(FeatureKind::kDcViolation, 0,
                                     static_cast<uint32_t>(s), 0, 0),
                options_.dc_violation_init);
  }
  for (size_t k = 0; k < in.num_dicts; ++k) {
    weights.Set(WeightKeyCodec::Pack(FeatureKind::kExtDict, 0,
                                     static_cast<uint32_t>(k), 0, 0),
                options_.ext_dict_init);
  }

  if (in.source_attr < 0) {
    for (AttrId a : attrs) {
      for (size_t s = 0; s < dcs.size(); ++s) {
        weights.Set(WeightKeyCodec::Pack(FeatureKind::kSourceSupport,
                                         static_cast<uint32_t>(a),
                                         static_cast<uint32_t>(s), 0, 0),
                    options_.support_prior);
      }
    }
    return weights;
  }

  // Source-trust initialization (SLiMFast-style, §6.2.1): when provenance
  // is available, estimate per-source reliability with the EM voter and
  // seed the partner-support weights with it. SGD refines from there.
  AttrId key_attr = -1;
  for (const DenialConstraint& dc : dcs) {
    auto equalities = dc.CrossEqualities();
    if (dc.IsTwoTuple() && !equalities.empty()) {
      key_attr = equalities.front()->lhs_attr;
      break;
    }
  }
  if (key_attr >= 0) {
    SourceReliability trust =
        SourceReliability::Estimate(*in.table, key_attr, in.source_attr);
    for (const auto& [src, r] : trust.All()) {
      double w = options_.source_trust_scale * (r - 0.5) * 2.0;
      for (AttrId a : attrs) {
        for (size_t s = 0; s < dcs.size(); ++s) {
          weights.Set(
              WeightKeyCodec::Pack(FeatureKind::kSourceSupport,
                                   static_cast<uint32_t>(a),
                                   static_cast<uint32_t>(s),
                                   static_cast<uint32_t>(src), 0),
              w);
        }
      }
    }
  }
  return weights;
}

}  // namespace holoclean
