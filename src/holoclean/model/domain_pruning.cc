#include "holoclean/model/domain_pruning.h"

#include <algorithm>
#include <unordered_map>

namespace holoclean {

PrunedDomains PruneDomains(const Table& table,
                           const std::vector<CellRef>& cells,
                           const std::vector<AttrId>& attrs,
                           const CooccurrenceStats& cooc,
                           const DomainPruningOptions& options) {
  PrunedDomains out;
  for (const CellRef& cell : cells) {
    // Score each candidate by its best co-occurrence count so the cap keeps
    // the strongest candidates deterministically.
    std::unordered_map<ValueId, int> scores;
    bool has_context = false;
    for (AttrId a_ctx : attrs) {
      if (a_ctx == cell.attr) continue;
      ValueId v_ctx = table.Get(cell.tid, a_ctx);
      if (v_ctx == Dictionary::kNull) continue;
      int ctx_count = cooc.Count(a_ctx, v_ctx);
      if (ctx_count == 0) continue;
      has_context = true;
      for (const auto& [v, pair_count] :
           cooc.CooccurringValues(cell.attr, a_ctx, v_ctx)) {
        if (static_cast<double>(pair_count) >=
            options.tau * static_cast<double>(ctx_count)) {
          int& best = scores[v];
          best = std::max(best, pair_count);
        }
      }
    }
    // Fall back to the attribute's most frequent values only when the tuple
    // has no usable context at all (e.g. an all-NULL row). When contexts
    // exist but nothing passes τ, Algorithm 2 legitimately yields only the
    // observed value — that monotone behaviour is the precision/recall dial.
    if (!has_context && options.frequency_fallback) {
      for (ValueId v : cooc.Domain(cell.attr)) {
        scores[v] = cooc.Count(cell.attr, v);
      }
    }

    std::vector<std::pair<ValueId, int>> ranked(scores.begin(), scores.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (ranked.size() > options.max_candidates) {
      ranked.resize(options.max_candidates);
    }

    std::vector<ValueId> candidates;
    candidates.reserve(ranked.size() + 1);
    ValueId init = table.Get(cell);
    // The observed value is always a candidate (choosing it = "no repair").
    if (init != Dictionary::kNull) candidates.push_back(init);
    for (const auto& [v, score] : ranked) {
      if (v != init) candidates.push_back(v);
    }
    if (candidates.empty()) candidates.push_back(init);
    out.candidates.emplace(cell, std::move(candidates));
  }
  return out;
}

}  // namespace holoclean
