#include "holoclean/model/domain_pruning.h"

#include <algorithm>
#include <unordered_map>

namespace holoclean {

PrunedDomains PruneDomains(const Table& table,
                           const std::vector<CellRef>& cells,
                           const std::vector<AttrId>& attrs,
                           const CooccurrenceStats& cooc,
                           const DomainPruningOptions& options) {
  PrunedDomains out;
  for (const CellRef& cell : cells) {
    // Score each candidate by its best co-occurrence count so the cap keeps
    // the strongest candidates deterministically.
    std::unordered_map<ValueId, int> scores;
    bool has_context = false;
    for (AttrId a_ctx : attrs) {
      if (a_ctx == cell.attr) continue;
      ValueId v_ctx = table.Get(cell.tid, a_ctx);
      if (v_ctx == Dictionary::kNull) continue;
      int ctx_count = cooc.Count(a_ctx, v_ctx);
      if (ctx_count == 0) continue;
      has_context = true;
      for (const auto& [v, pair_count] :
           cooc.CooccurringValues(cell.attr, a_ctx, v_ctx)) {
        if (static_cast<double>(pair_count) >=
            options.tau * static_cast<double>(ctx_count)) {
          int& best = scores[v];
          best = std::max(best, pair_count);
        }
      }
    }
    // Fall back to the attribute's most frequent values only when the tuple
    // has no usable context at all (e.g. an all-NULL row). When contexts
    // exist but nothing passes τ, Algorithm 2 legitimately yields only the
    // observed value — that monotone behaviour is the precision/recall dial.
    if (!has_context && options.frequency_fallback) {
      for (ValueId v : cooc.Domain(cell.attr)) {
        scores[v] = cooc.Count(cell.attr, v);
      }
    }

    std::vector<std::pair<ValueId, int>> ranked(scores.begin(), scores.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (ranked.size() > options.max_candidates) {
      ranked.resize(options.max_candidates);
    }

    std::vector<ValueId> candidates;
    candidates.reserve(ranked.size() + 1);
    ValueId init = table.Get(cell);
    // The observed value is always a candidate (choosing it = "no repair").
    if (init != Dictionary::kNull) candidates.push_back(init);
    for (const auto& [v, score] : ranked) {
      if (v != init) candidates.push_back(v);
    }
    if (candidates.empty()) candidates.push_back(init);
    out.candidates.emplace(cell, std::move(candidates));
  }
  return out;
}

PrunedDomains PruneDomainsColumnar(const Table& table,
                                   const std::vector<CellRef>& cells,
                                   const std::vector<AttrId>& attrs,
                                   const CooccurrenceStats& cooc,
                                   const DomainPruningOptions& options,
                                   ThreadPool* pool) {
  std::vector<std::vector<ValueId>> per_cell(cells.size());
  auto prune_cell = [&](size_t i) {
    const CellRef& cell = cells[i];
    // Collect every (value, pair_count) passing τ, then keep the best
    // count per value by sorting — same scores as the hash-map path.
    std::vector<std::pair<ValueId, int>> hits;
    bool has_context = false;
    for (AttrId a_ctx : attrs) {
      if (a_ctx == cell.attr) continue;
      ValueId v_ctx = table.Get(cell.tid, a_ctx);
      if (v_ctx == Dictionary::kNull) continue;
      int ctx_count = cooc.Count(a_ctx, v_ctx);
      if (ctx_count == 0) continue;
      has_context = true;
      double bar = options.tau * static_cast<double>(ctx_count);
      for (const auto& [v, pair_count] :
           cooc.CooccurringValues(cell.attr, a_ctx, v_ctx)) {
        if (static_cast<double>(pair_count) >= bar) {
          hits.emplace_back(v, pair_count);
        }
      }
    }
    if (!has_context && options.frequency_fallback) {
      for (ValueId v : cooc.Domain(cell.attr)) {
        hits.emplace_back(v, cooc.Count(cell.attr, v));
      }
    }

    // Keep-max-per-value: group by value with count descending, take the
    // first of each group, then rank (count desc, value asc) and cap.
    std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first < b.first : a.second > b.second;
    });
    hits.erase(std::unique(hits.begin(), hits.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               hits.end());
    std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (hits.size() > options.max_candidates) {
      hits.resize(options.max_candidates);
    }

    std::vector<ValueId> candidates;
    candidates.reserve(hits.size() + 1);
    ValueId init = table.Get(cell);
    if (init != Dictionary::kNull) candidates.push_back(init);
    for (const auto& [v, score] : hits) {
      if (v != init) candidates.push_back(v);
    }
    if (candidates.empty()) candidates.push_back(init);
    per_cell[i] = std::move(candidates);
  };

  if (pool != nullptr && cells.size() > 1) {
    pool->ParallelFor(cells.size(), prune_cell);
  } else {
    for (size_t i = 0; i < cells.size(); ++i) prune_cell(i);
  }

  PrunedDomains out;
  out.candidates.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    out.candidates.emplace(cells[i], std::move(per_cell[i]));
  }
  return out;
}

}  // namespace holoclean
