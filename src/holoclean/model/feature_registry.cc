#include "holoclean/model/feature_registry.h"

#include <sstream>

namespace holoclean {

std::string WeightKeyCodec::Describe(uint64_t key, const Schema& schema,
                                     const Dictionary& dict) {
  std::ostringstream os;
  FeatureKind kind = Kind(key);
  uint32_t p1 = P1(key);
  uint32_t p2 = P2(key);
  uint32_t ctx = Ctx(key);
  uint32_t value = Value(key);
  auto attr_name = [&](uint32_t a) -> std::string {
    return a < schema.num_attrs() ? schema.name(static_cast<AttrId>(a))
                                  : "?";
  };
  auto value_str = [&](uint32_t v) -> std::string {
    return v < dict.size() ? dict.GetString(static_cast<ValueId>(v)) : "?";
  };
  switch (kind) {
    case FeatureKind::kCooccurrence:
      os << "cooc[" << attr_name(p1) << "=" << value_str(value) << " | "
         << attr_name(p2) << "=" << value_str(ctx) << "]";
      break;
    case FeatureKind::kSourceSupport:
      os << "support[attr=" << attr_name(p1) << ", dc=" << p2
         << ", src=" << value_str(ctx) << "]";
      break;
    case FeatureKind::kExtDict:
      os << "extdict[k=" << p2 << "]";
      break;
    case FeatureKind::kDcViolation:
      os << "dc_violation[sigma=" << p2 << "]";
      break;
    case FeatureKind::kSourcePrior:
      os << "src_prior[" << attr_name(p1) << "=" << value_str(value)
         << " | src=" << value_str(ctx) << "]";
      break;
    case FeatureKind::kCondProb:
      os << "cond_prob[" << attr_name(p1) << " | " << attr_name(p2) << "]";
      break;
    case FeatureKind::kFrequency:
      os << "frequency[" << attr_name(p1) << "]";
      break;
  }
  return os.str();
}

}  // namespace holoclean
