#ifndef HOLOCLEAN_MODEL_FEATURE_REGISTRY_H_
#define HOLOCLEAN_MODEL_FEATURE_REGISTRY_H_

#include <cstdint>
#include <string>

#include "holoclean/storage/table.h"

namespace holoclean {

/// Kinds of unary features HoloClean attaches to cell random variables.
/// Each corresponds to one inference-rule family of the generated program.
enum class FeatureKind : uint8_t {
  /// Co-occurrence feature: candidate d together with context attribute
  /// value "a_ctx = v_ctx" in the same tuple. Weight w(d, f) — paper §4.2.
  kCooccurrence = 1,
  /// Support from tuples that agree on a constraint's equality key, keyed
  /// by the supporting tuple's source (provenance trust, paper §4.1/§6.2.1).
  kSourceSupport = 2,
  /// External-dictionary match through a matching dependency; weight w(k).
  kExtDict = 3,
  /// Relaxed denial-constraint feature; weight w(σ) — paper §5.2.
  kDcViolation = 4,
  /// Per-source value prior: candidate d reported by source s; weight
  /// w(d, src=s).
  kSourcePrior = 5,
  /// Probability-valued co-occurrence feature shared per attribute pair:
  /// activation = Pr[d | a_ctx = v_ctx]. One weight per (a, a_ctx), so the
  /// statistics signal generalizes across values even where the per-value
  /// weights w(d, f) have no training signal.
  kCondProb = 6,
  /// Marginal frequency of the candidate within its attribute; one weight
  /// per attribute.
  kFrequency = 7,
};

/// Packs/unpacks the 64-bit weight keys used by the WeightStore and the
/// learner. Layout: [kind:4][p1:8][p2:8][ctx:22][value:22].
///
/// The packing is injective, so two distinct features can never alias the
/// same weight. ValueIds must fit in 22 bits (~4.2M distinct strings),
/// which is checked at grounding time.
class WeightKeyCodec {
 public:
  static constexpr int kValueBits = 22;
  static constexpr uint64_t kValueMask = (1ULL << kValueBits) - 1;

  /// Packs a weight key. `p1`/`p2` are small parameters (attribute ids,
  /// constraint indices, dictionary ids); `ctx` and `value` are ValueIds
  /// (or 0 when unused / weight is shared across candidates).
  static uint64_t Pack(FeatureKind kind, uint32_t p1, uint32_t p2,
                       uint32_t ctx, uint32_t value) {
    return (static_cast<uint64_t>(kind) << 60) |
           (static_cast<uint64_t>(p1 & 0xFF) << 52) |
           (static_cast<uint64_t>(p2 & 0xFF) << 44) |
           ((static_cast<uint64_t>(ctx) & kValueMask) << kValueBits) |
           (static_cast<uint64_t>(value) & kValueMask);
  }

  static FeatureKind Kind(uint64_t key) {
    return static_cast<FeatureKind>(key >> 60);
  }
  static uint32_t P1(uint64_t key) { return (key >> 52) & 0xFF; }
  static uint32_t P2(uint64_t key) { return (key >> 44) & 0xFF; }
  static uint32_t Ctx(uint64_t key) {
    return (key >> kValueBits) & kValueMask;
  }
  static uint32_t Value(uint64_t key) { return key & kValueMask; }

  /// Human-readable description for debugging and model introspection.
  static std::string Describe(uint64_t key, const Schema& schema,
                              const Dictionary& dict);
};

}  // namespace holoclean

#endif  // HOLOCLEAN_MODEL_FEATURE_REGISTRY_H_
