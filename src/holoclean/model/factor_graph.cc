#include "holoclean/model/factor_graph.h"

#include "holoclean/util/logging.h"

namespace holoclean {

int FactorGraph::AddVariable(Variable var) {
  HOLO_CHECK(!var.domain.empty());
  HOLO_CHECK(var.feat_begin.size() == var.domain.size() + 1);
  HOLO_CHECK(var.prior_bias.size() == var.domain.size());
  int id = static_cast<int>(vars_.size());
  var_of_cell_[var.cell] = id;
  if (var.is_evidence) {
    evidence_vars_.push_back(id);
  } else {
    query_vars_.push_back(id);
  }
  vars_.push_back(std::move(var));
  factors_of_var_.emplace_back();
  return id;
}

void FactorGraph::AddDcFactor(DcFactor factor) {
  int fid = static_cast<int>(dc_factors_.size());
  for (int32_t v : factor.var_ids) {
    factors_of_var_[static_cast<size_t>(v)].push_back(fid);
  }
  dc_factors_.push_back(std::move(factor));
}

int FactorGraph::VarOfCell(const CellRef& cell) const {
  auto it = var_of_cell_.find(cell);
  return it == var_of_cell_.end() ? -1 : it->second;
}

double FactorGraph::UnaryScore(int var_id, int k,
                               const WeightStore& weights) const {
  const Variable& var = vars_[static_cast<size_t>(var_id)];
  double score = var.prior_bias[static_cast<size_t>(k)];
  for (int32_t i = var.feat_begin[static_cast<size_t>(k)];
       i < var.feat_begin[static_cast<size_t>(k) + 1]; ++i) {
    const FeatureInstance& f = var.features[static_cast<size_t>(i)];
    score += weights.Get(f.weight_key) * f.activation;
  }
  return score;
}

size_t FactorGraph::NumGroundedFactors() const {
  size_t n = dc_factors_.size();
  for (const Variable& var : vars_) {
    n += var.features.size();
    n += var.domain.size();  // Minimality-prior factors.
  }
  return n;
}

}  // namespace holoclean
