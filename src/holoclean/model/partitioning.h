#ifndef HOLOCLEAN_MODEL_PARTITIONING_H_
#define HOLOCLEAN_MODEL_PARTITIONING_H_

#include <vector>

#include "holoclean/detect/violation_detector.h"

namespace holoclean {

/// Output of Algorithm 3: for each denial constraint, the groups of tuples
/// (connected components of the conflict hypergraph restricted to that
/// constraint) inside which DC factors are grounded.
struct TupleGroups {
  /// groups_per_dc[dc_index] = list of groups; each group is a sorted list
  /// of tuple ids. Singleton components are dropped (no pairs to ground).
  std::vector<std::vector<std::vector<TupleId>>> groups_per_dc;

  /// Σ over groups of |g|·(|g|-1)/2 — the pair budget after partitioning.
  size_t TotalPairs() const;
};

/// Algorithm 3 of the paper: partitions tuples into per-constraint groups
/// using the connected components of the detected violations.
TupleGroups BuildTupleGroups(size_t num_tuples, size_t num_dcs,
                             const std::vector<Violation>& violations);

}  // namespace holoclean

#endif  // HOLOCLEAN_MODEL_PARTITIONING_H_
