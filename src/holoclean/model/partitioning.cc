#include "holoclean/model/partitioning.h"

#include <algorithm>
#include <unordered_map>

#include "holoclean/util/union_find.h"

namespace holoclean {

size_t TupleGroups::TotalPairs() const {
  size_t total = 0;
  for (const auto& groups : groups_per_dc) {
    for (const auto& g : groups) {
      total += g.size() * (g.size() - 1) / 2;
    }
  }
  return total;
}

TupleGroups BuildTupleGroups(size_t num_tuples, size_t num_dcs,
                             const std::vector<Violation>& violations) {
  TupleGroups out;
  out.groups_per_dc.resize(num_dcs);
  for (size_t dc = 0; dc < num_dcs; ++dc) {
    UnionFind uf(num_tuples);
    std::vector<bool> touched(num_tuples, false);
    for (const Violation& v : violations) {
      if (static_cast<size_t>(v.dc_index) != dc) continue;
      touched[static_cast<size_t>(v.t1)] = true;
      touched[static_cast<size_t>(v.t2)] = true;
      uf.Union(static_cast<size_t>(v.t1), static_cast<size_t>(v.t2));
    }
    std::unordered_map<size_t, std::vector<TupleId>> components;
    for (size_t t = 0; t < num_tuples; ++t) {
      if (!touched[t]) continue;
      components[uf.Find(t)].push_back(static_cast<TupleId>(t));
    }
    auto& groups = out.groups_per_dc[dc];
    for (auto& [root, members] : components) {
      if (members.size() < 2) continue;
      std::sort(members.begin(), members.end());
      groups.push_back(std::move(members));
    }
    // Deterministic ordering across runs.
    std::sort(groups.begin(), groups.end());
  }
  return out;
}

}  // namespace holoclean
