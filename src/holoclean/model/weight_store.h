#ifndef HOLOCLEAN_MODEL_WEIGHT_STORE_H_
#define HOLOCLEAN_MODEL_WEIGHT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace holoclean {

/// Sparse parameter vector of the probabilistic model, keyed by the packed
/// weight keys of WeightKeyCodec. Unseen weights are implicitly zero.
class WeightStore {
 public:
  double Get(uint64_t key) const {
    auto it = weights_.find(key);
    return it == weights_.end() ? 0.0 : it->second;
  }

  void Set(uint64_t key, double value) { weights_[key] = value; }

  /// Adds `delta` to the weight (creating it when absent).
  void Add(uint64_t key, double delta) { weights_[key] += delta; }

  /// In-place L2 shrinkage: w *= (1 - factor), applied to every weight.
  /// Used for lazily-regularized SGD epochs.
  void ShrinkAll(double factor);

  size_t size() const { return weights_.size(); }

  const std::unordered_map<uint64_t, double>& raw() const { return weights_; }

  /// Largest-magnitude weights, for model introspection. Deterministic:
  /// equal magnitudes tie-break on the packed key, so the output does not
  /// depend on the map's iteration order.
  std::vector<std::pair<uint64_t, double>> TopByMagnitude(size_t k) const;

 private:
  std::unordered_map<uint64_t, double> weights_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_MODEL_WEIGHT_STORE_H_
