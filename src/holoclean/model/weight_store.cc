#include "holoclean/model/weight_store.h"

#include <algorithm>
#include <cmath>

namespace holoclean {

void WeightStore::ShrinkAll(double factor) {
  for (auto& [key, w] : weights_) w *= (1.0 - factor);
}

std::vector<std::pair<uint64_t, double>> WeightStore::TopByMagnitude(
    size_t k) const {
  std::vector<std::pair<uint64_t, double>> all(weights_.begin(),
                                               weights_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    double ma = std::abs(a.second);
    double mb = std::abs(b.second);
    return ma != mb ? ma > mb : a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace holoclean
