#include "holoclean/model/weight_store.h"

#include <algorithm>
#include <cmath>

namespace holoclean {

void WeightStore::ShrinkAll(double factor) {
  for (auto& [key, w] : weights_) w *= (1.0 - factor);
}

std::vector<std::pair<uint64_t, double>> WeightStore::TopByMagnitude(
    size_t k) const {
  std::vector<std::pair<uint64_t, double>> all(weights_.begin(),
                                               weights_.end());
  // Equal magnitudes tie-break on the packed key: the comparator is a
  // total order over the (unique-keyed) entries, so the result is
  // independent of the unordered_map's iteration order.
  auto by_magnitude = [](const auto& a, const auto& b) {
    double ma = std::abs(a.second);
    double mb = std::abs(b.second);
    return ma != mb ? ma > mb : a.first < b.first;
  };
  if (all.size() > k) {
    std::partial_sort(all.begin(),
                      all.begin() + static_cast<ptrdiff_t>(k), all.end(),
                      by_magnitude);
    all.resize(k);
  } else {
    std::sort(all.begin(), all.end(), by_magnitude);
  }
  return all;
}

}  // namespace holoclean
