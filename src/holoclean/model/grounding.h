#ifndef HOLOCLEAN_MODEL_GROUNDING_H_
#define HOLOCLEAN_MODEL_GROUNDING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "holoclean/constraints/evaluator.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/extdata/matcher.h"
#include "holoclean/model/domain_pruning.h"
#include "holoclean/model/factor_graph.h"
#include "holoclean/model/partitioning.h"
#include "holoclean/util/thread_pool.h"

namespace holoclean {

/// How denial constraints enter the model (the HoloClean variants of §6.3.1).
enum class DcMode {
  /// "DC Factors": pairwise factors enforcing the constraint softly.
  kFactors,
  /// "DC Feats": the relaxation of §5.2 — unary violation-count features
  /// against other tuples' observed values; variables stay independent.
  kFeatures,
  /// "DC Feats + DC Factors".
  kBoth,
};

/// Knobs of the grounding engine.
struct GroundingOptions {
  DcMode dc_mode = DcMode::kFeatures;
  /// Restrict DC-factor pairs to the tuple groups of Algorithm 3.
  bool use_partitioning = false;
  /// Fixed soft weight w of DC factors (Algorithm 1).
  double dc_factor_weight = 4.0;
  /// Weight w0 of the minimality prior.
  double minimality_weight = 1.0;
  /// Similarity threshold for ≈ predicates.
  double sim_threshold = 0.8;
  /// Cap on the violation-count activation of relaxed DC features. The cap
  /// saturates both sides of a dense conflict block, which keeps a large
  /// wrong majority (systematic errors) from dominating the statistics
  /// signals.
  int max_violation_count = 5;
  /// Cap on the per-source partner-support activation, for the same reason.
  int max_support_count = 5;
  /// Cap on partner tuples examined per (cell, candidate, constraint).
  size_t max_partner_checks = 256;
  /// Cap on candidate-expanded blocking keys per tuple (DC factors without
  /// partitioning).
  size_t max_keys_per_tuple = 32;
  /// Cap on grounded pairs per constraint for DC factors.
  size_t max_pairs_per_dc = 500'000;
  /// Optional worker pool: variables are grounded in parallel (the result
  /// is identical to the sequential order).
  ThreadPool* pool = nullptr;
  /// Ground from precomputed per-cell context runs (value-id lists shared
  /// with the co-occurrence index) instead of per-candidate stat lookups.
  /// Same factor graph bit-for-bit; the row path is kept as the reference.
  bool columnar = true;
};

/// Everything the grounder reads. All pointers are borrowed and must
/// outlive the grounder; `matches` and `violations` may be null when the
/// corresponding signal is absent.
struct GroundingInput {
  const Table* table = nullptr;
  const std::vector<DenialConstraint>* dcs = nullptr;
  const std::vector<AttrId>* attrs = nullptr;
  const std::vector<CellRef>* query_cells = nullptr;
  const std::vector<CellRef>* evidence_cells = nullptr;
  /// Candidate sets covering both query and evidence cells.
  const PrunedDomains* domains = nullptr;
  /// Co-occurrence statistics for the probability-valued features.
  const CooccurrenceStats* cooc = nullptr;
  const std::vector<MatchedEntry>* matches = nullptr;
  const std::vector<Violation>* violations = nullptr;
  /// Precomputed Algorithm-3 tuple groups. When null and partitioning is
  /// enabled, the grounder builds them from `violations` on demand. The
  /// pipeline passes its context-owned copy so the groups that drove
  /// grounding stay inspectable after the run (stats, tests, benches).
  const TupleGroups* groups = nullptr;
  AttrId source_attr = -1;
};

/// Grounds the compiled program into a FactorGraph: instantiates one
/// variable per cell, attaches the unary feature factors (co-occurrence,
/// source, dictionary, minimality, relaxed DC features) and, depending on
/// DcMode, the pairwise DC factors (paper Sections 4.2 and 5).
class Grounder {
 public:
  struct Stats {
    size_t num_query_vars = 0;
    size_t num_evidence_vars = 0;
    size_t num_feature_instances = 0;
    size_t num_dc_factors = 0;
    size_t num_dc_pairs_considered = 0;
  };

  Grounder(GroundingInput input, GroundingOptions options);

  /// Builds the factor graph. Fails on malformed input (e.g. a query cell
  /// with no candidates).
  Result<FactorGraph> Ground();

  /// Streaming-append grounding: builds variables for the given cells and
  /// registers them into an existing graph (ids appended after the current
  /// ones). Construction mirrors Ground() exactly — query cells must have
  /// candidates; evidence cells that are NULL or whose observed value fell
  /// outside their candidate set are skipped. DC factors are not extended
  /// (the streaming tier forces a full re-ground for factor-mode models).
  /// Stats accumulate onto stats().
  Status GroundAppend(FactorGraph* graph, const std::vector<CellRef>& query,
                      const std::vector<CellRef>& evidence);

  const Stats& stats() const { return stats_; }

 private:
  // Per-constraint blocking index over the observed table: for each tuple
  // role, maps the equality-key hash to the tuples with that key.
  struct DcIndex {
    bool usable = false;
    std::unordered_map<uint64_t, std::vector<TupleId>> by_role[2];
  };

  void BuildDcIndexes();
  uint64_t RoleKey(int dc_index, TupleId t, int role,
                   const std::vector<CellOverride>& overrides) const;
  /// #partners whose pairing with (cell := candidate) violates `dc`.
  int CountViolations(int dc_index, const CellRef& cell,
                      ValueId candidate) const;
  /// #partners agreeing with candidate on an FD-shaped constraint, per
  /// supporting source (kNull when no provenance).
  std::unordered_map<ValueId, int> SupportBySource(int dc_index,
                                                   const CellRef& cell,
                                                   ValueId candidate) const;

  Result<Variable> BuildVariable(const CellRef& cell,
                                 bool is_evidence) const;
  void GroundDcFactors(FactorGraph* graph);
  /// Grounds one constraint's DC factors inside its Algorithm-3 groups.
  /// Groups are disjoint tuple sets, so per-group factor lists are built
  /// concurrently on the pool and appended in group order — factor ids are
  /// identical for any thread count.
  void GroundPartitionedDc(FactorGraph* graph, int dc_index,
                           const std::vector<std::vector<TupleId>>& groups);

  GroundingInput in_;
  GroundingOptions opt_;
  DcEvaluator evaluator_;
  std::vector<DcIndex> dc_indexes_;
  /// Per-DC caches of CrossEqualities() / AttrsOfRole(role), which would
  /// otherwise be re-derived (with allocations) on every RoleKey /
  /// CountViolations call in the per-candidate loops.
  std::vector<std::vector<const Predicate*>> cross_eqs_;
  std::vector<std::vector<AttrId>> role_attrs_[2];
  /// For FD-shaped constraints: the attribute their NEQ predicate targets
  /// (-1 when the constraint is not FD-shaped).
  std::vector<AttrId> fd_target_attr_;
  std::unordered_map<CellRef, std::vector<std::pair<ValueId, int>>,
                     CellRefHash>
      matches_by_cell_;
  Stats stats_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_MODEL_GROUNDING_H_
