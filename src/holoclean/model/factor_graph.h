#ifndef HOLOCLEAN_MODEL_FACTOR_GRAPH_H_
#define HOLOCLEAN_MODEL_FACTOR_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"
#include "holoclean/model/weight_store.h"
#include "holoclean/storage/table.h"

namespace holoclean {

/// One unary feature activation: the candidate's score receives
/// weight(weight_key) * activation.
struct FeatureInstance {
  uint64_t weight_key = 0;
  float activation = 1.0f;
};

/// A categorical random variable for one cell. Evidence variables (clean
/// cells) have their value fixed to init_index and are used to learn the
/// feature weights; query variables (noisy cells) are inferred.
struct Variable {
  CellRef cell;
  std::vector<ValueId> domain;
  int init_index = 0;        ///< Index of the observed value in `domain`.
  bool is_evidence = false;

  /// Per-candidate fixed bias (the minimality prior of §4.2).
  std::vector<double> prior_bias;
  /// Candidate k's features are features[feat_begin[k] .. feat_begin[k+1]).
  std::vector<int32_t> feat_begin;
  std::vector<FeatureInstance> features;

  size_t NumCandidates() const { return domain.size(); }
};

/// A grounded denial-constraint factor over the cells of a tuple pair
/// (t2 == t1 for single-tuple constraints). Contributes -weight to the
/// model score whenever the current assignment violates the constraint
/// (Algorithm 1 with the soft-weight relaxation of §4.2).
struct DcFactor {
  int dc_index = 0;
  TupleId t1 = 0;
  TupleId t2 = 0;
  double weight = 0.0;
  /// Query variables among the constraint's cells; all other cells read
  /// their observed value from the table.
  std::vector<int32_t> var_ids;
};

/// The grounded probabilistic model: variables (evidence + query), their
/// unary features, and pairwise denial-constraint factors.
class FactorGraph {
 public:
  /// Adds a variable, returns its id.
  int AddVariable(Variable var);

  /// Adds a DC factor and indexes it on its variables.
  void AddDcFactor(DcFactor factor);

  const std::vector<Variable>& variables() const { return vars_; }
  const Variable& variable(int id) const {
    return vars_[static_cast<size_t>(id)];
  }
  const std::vector<DcFactor>& dc_factors() const { return dc_factors_; }

  /// Ids of DC factors attached to variable `var_id`.
  const std::vector<int32_t>& FactorsOfVar(int var_id) const {
    return factors_of_var_[static_cast<size_t>(var_id)];
  }

  /// Variable id for a cell, or -1.
  int VarOfCell(const CellRef& cell) const;

  /// Ids of query (non-evidence) variables.
  const std::vector<int32_t>& query_vars() const { return query_vars_; }
  /// Ids of evidence variables.
  const std::vector<int32_t>& evidence_vars() const { return evidence_vars_; }

  /// Unary score of candidate `k` of variable `var_id` under `weights`:
  /// prior bias plus the weighted feature activations.
  double UnaryScore(int var_id, int k, const WeightStore& weights) const;

  /// Total number of grounded factors: one per (candidate, feature
  /// instance) plus the DC factors. This is the "factor graph size" the
  /// paper's scalability claims are about.
  size_t NumGroundedFactors() const;

  size_t num_variables() const { return vars_.size(); }

 private:
  std::vector<Variable> vars_;
  std::vector<DcFactor> dc_factors_;
  std::vector<std::vector<int32_t>> factors_of_var_;
  std::vector<int32_t> query_vars_;
  std::vector<int32_t> evidence_vars_;
  std::unordered_map<CellRef, int, CellRefHash> var_of_cell_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_MODEL_FACTOR_GRAPH_H_
