#include "holoclean/storage/column_store.h"

#include <algorithm>
#include <numeric>

#include "holoclean/util/logging.h"
#include "holoclean/util/string_util.h"

namespace holoclean {

namespace {

void InitColumn(ColumnStore::Column* col) {
  col->code_to_value = {Dictionary::kNull};
  col->value_to_code = {{Dictionary::kNull, 0}};
  col->code_counts = {0};
  col->sorted_prefix = 1;
}

}  // namespace

ColumnStore::ColumnStore(size_t num_attrs) {
  columns_.resize(num_attrs);
  for (Column& col : columns_) InitColumn(&col);
  meta_.resize(num_attrs);
}

ColumnStore::ColumnStore(const ColumnStore& other) {
  std::lock_guard<std::mutex> lock(other.meta_mu_);
  columns_ = other.columns_;
  num_rows_ = other.num_rows_;
  meta_ = other.meta_;
}

ColumnStore& ColumnStore::operator=(const ColumnStore& other) {
  if (this != &other) {
    ColumnStore tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

ColumnStore::ColumnStore(ColumnStore&& other) noexcept
    : columns_(std::move(other.columns_)),
      num_rows_(other.num_rows_),
      meta_(std::move(other.meta_)) {}

ColumnStore& ColumnStore::operator=(ColumnStore&& other) noexcept {
  if (this != &other) {
    columns_ = std::move(other.columns_);
    num_rows_ = other.num_rows_;
    meta_ = std::move(other.meta_);
  }
  return *this;
}

Code ColumnStore::InternCode(Column* col, ValueId v) {
  auto it = col->value_to_code.find(v);
  if (it != col->value_to_code.end()) return it->second;
  Code c = static_cast<Code>(col->code_to_value.size());
  col->code_to_value.push_back(v);
  col->code_counts.push_back(0);
  col->value_to_code.emplace(v, c);
  return c;
}

void ColumnStore::Set(size_t a, size_t t, ValueId v) {
  Column& col = columns_[a];
  Code old_code = col.codes[t];
  HOLO_CHECK(col.code_counts[static_cast<size_t>(old_code)] > 0);
  --col.code_counts[static_cast<size_t>(old_code)];
  Code c = InternCode(&col, v);
  col.codes[t] = c;
  ++col.code_counts[static_cast<size_t>(c)];
  col.values[t] = v;
  // A new code leaves the cached compare metadata in place: it is stale
  // (detected by its code count), and EnsureCompareMeta extends it
  // incrementally instead of rebuilding the column's metadata.
}

void ColumnStore::AppendRow(const std::vector<ValueId>& ids) {
  HOLO_CHECK(ids.size() == columns_.size());
  for (size_t a = 0; a < ids.size(); ++a) {
    Column& col = columns_[a];
    Code c = InternCode(&col, ids[a]);
    col.codes.push_back(c);
    ++col.code_counts[static_cast<size_t>(c)];
    col.values.push_back(ids[a]);
  }
  ++num_rows_;
}

void ColumnStore::Truncate(size_t new_rows) {
  HOLO_CHECK(new_rows <= num_rows_);
  for (Column& col : columns_) {
    while (col.codes.size() > new_rows) {
      Code c = col.codes.back();
      col.codes.pop_back();
      HOLO_CHECK(col.code_counts[static_cast<size_t>(c)] > 0);
      --col.code_counts[static_cast<size_t>(c)];
      col.values.pop_back();
    }
  }
  num_rows_ = new_rows;
}

void ColumnStore::SortDictionaries(const Dictionary& dict) {
  for (size_t a = 0; a < columns_.size(); ++a) {
    Column& col = columns_[a];
    size_t n_codes = col.num_codes();
    if (n_codes <= 2) {
      col.sorted_prefix = n_codes;
      continue;
    }
    // Order non-null codes by their value strings; NULL keeps code 0.
    std::vector<Code> order(n_codes - 1);
    std::iota(order.begin(), order.end(), Code{1});
    std::sort(order.begin(), order.end(), [&](Code x, Code y) {
      return dict.GetString(col.code_to_value[static_cast<size_t>(x)]) <
             dict.GetString(col.code_to_value[static_cast<size_t>(y)]);
    });
    std::vector<Code> remap(n_codes);
    std::vector<ValueId> new_c2v(n_codes);
    std::vector<uint32_t> new_counts(n_codes);
    new_c2v[0] = Dictionary::kNull;
    new_counts[0] = col.code_counts[0];
    for (size_t i = 0; i < order.size(); ++i) {
      Code old_code = order[i];
      Code new_code = static_cast<Code>(i + 1);
      remap[static_cast<size_t>(old_code)] = new_code;
      new_c2v[static_cast<size_t>(new_code)] =
          col.code_to_value[static_cast<size_t>(old_code)];
      new_counts[static_cast<size_t>(new_code)] =
          col.code_counts[static_cast<size_t>(old_code)];
    }
    for (size_t ch = 0; ch < col.codes.num_chunks(); ++ch) {
      Code* codes = col.codes.chunk_data(ch);
      const size_t m = col.codes.chunk_size(ch);
      for (size_t i = 0; i < m; ++i) {
        codes[i] = remap[static_cast<size_t>(codes[i])];
      }
    }
    col.code_to_value = std::move(new_c2v);
    col.code_counts = std::move(new_counts);
    for (size_t c = 0; c < n_codes; ++c) {
      col.value_to_code[col.code_to_value[c]] = static_cast<Code>(c);
    }
    col.sorted_prefix = n_codes;
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  for (auto& m : meta_) m.reset();
}

void ColumnStore::Install(std::vector<std::vector<ValueId>> values,
                          std::vector<std::vector<ValueId>> dicts,
                          const std::vector<uint64_t>& sorted_prefixes) {
  HOLO_CHECK(values.size() == columns_.size());
  HOLO_CHECK(dicts.size() == columns_.size());
  size_t rows = columns_.empty() ? 0 : values[0].size();
  for (size_t a = 0; a < columns_.size(); ++a) {
    HOLO_CHECK(values[a].size() == rows);
    Column& col = columns_[a];
    col.code_to_value = std::move(dicts[a]);
    size_t n_codes = col.num_codes();
    HOLO_CHECK(n_codes >= 1 && col.code_to_value[0] == Dictionary::kNull);
    // Dense reverse map over the global id range of this column's dict.
    ValueId max_id = 0;
    for (ValueId v : col.code_to_value) max_id = std::max(max_id, v);
    std::vector<Code> reverse(static_cast<size_t>(max_id) + 1, Code{-1});
    col.value_to_code.clear();
    col.value_to_code.reserve(n_codes);
    for (size_t c = 0; c < n_codes; ++c) {
      ValueId v = col.code_to_value[c];
      HOLO_CHECK(v >= 0 && reverse[static_cast<size_t>(v)] < 0);
      reverse[static_cast<size_t>(v)] = static_cast<Code>(c);
      col.value_to_code.emplace(v, static_cast<Code>(c));
    }
    col.codes.clear();
    col.code_counts.assign(n_codes, 0);
    const std::vector<ValueId>& vals = values[a];
    for (size_t t = 0; t < rows; ++t) {
      ValueId v = vals[t];
      HOLO_CHECK(v >= 0 && static_cast<size_t>(v) < reverse.size());
      Code c = reverse[static_cast<size_t>(v)];
      HOLO_CHECK(c >= 0);
      col.codes.push_back(c);
      ++col.code_counts[static_cast<size_t>(c)];
    }
    col.values = std::move(values[a]);
    col.sorted_prefix =
        std::min(static_cast<size_t>(sorted_prefixes[a]), n_codes);
  }
  num_rows_ = rows;
  std::lock_guard<std::mutex> lock(meta_mu_);
  for (auto& m : meta_) m.reset();
}

std::shared_ptr<const ColumnStore::CompareMeta> ColumnStore::EnsureCompareMeta(
    size_t a, const Dictionary& dict) const {
  std::shared_ptr<const CompareMeta> base;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    if (meta_[a] != nullptr) {
      if (meta_[a]->is_numeric.size() == columns_[a].num_codes()) {
        return meta_[a];
      }
      // Codes only ever grow in place between cache resets (the reorder
      // paths — SortDictionaries, Install — drop the cache), so a smaller
      // snapshot describes a prefix of today's dictionary and can be
      // extended instead of rebuilt.
      if (meta_[a]->is_numeric.size() < columns_[a].num_codes()) {
        base = meta_[a];
      }
    }
  }
  const Column& col = columns_[a];
  const size_t n_codes = col.num_codes();
  const size_t d_old = base == nullptr ? 0 : base->is_numeric.size();
  auto meta = std::make_shared<CompareMeta>();
  meta->is_numeric.resize(n_codes, 0);
  meta->numeric.resize(n_codes, 0.0);
  meta->lex_rank.resize(n_codes, 0);
  meta->all_lexicographic = base == nullptr || base->all_lexicographic;
  meta->all_numeric = base == nullptr || base->all_numeric;
  if (base != nullptr) {
    std::copy(base->is_numeric.begin(), base->is_numeric.end(),
              meta->is_numeric.begin());
    std::copy(base->numeric.begin(), base->numeric.end(),
              meta->numeric.begin());
  }
  // Per-code parsing runs only for codes the snapshot does not cover.
  for (size_t c = d_old; c < n_codes; ++c) {
    const std::string& s = dict.GetString(col.code_to_value[c]);
    if (IsNumeric(s)) {
      meta->is_numeric[c] = 1;
      meta->numeric[c] = ParseDoubleOr(s, 0.0);
      if (c != 0) meta->all_lexicographic = false;
    } else if (c != 0) {
      meta->all_numeric = false;
    }
  }
  // Lexicographic ranks: merge the snapshot's rank order with the sorted
  // new codes (strings are distinct per column, so the merge reproduces a
  // full rebuild's std::sort order exactly). d_old == 0 degenerates into
  // the full sort.
  std::vector<Code> new_codes(n_codes - d_old);
  std::iota(new_codes.begin(), new_codes.end(), static_cast<Code>(d_old));
  std::sort(new_codes.begin(), new_codes.end(), [&](Code x, Code y) {
    return dict.GetString(col.code_to_value[static_cast<size_t>(x)]) <
           dict.GetString(col.code_to_value[static_cast<size_t>(y)]);
  });
  std::vector<Code> inv_old(d_old);
  for (size_t c = 0; c < d_old; ++c) {
    inv_old[static_cast<size_t>(base->lex_rank[c])] = static_cast<Code>(c);
  }
  size_t i = 0;
  size_t j = 0;
  int32_t rank = 0;
  while (i < d_old || j < new_codes.size()) {
    bool take_old;
    if (i >= d_old) {
      take_old = false;
    } else if (j >= new_codes.size()) {
      take_old = true;
    } else {
      take_old =
          dict.GetString(
              col.code_to_value[static_cast<size_t>(inv_old[i])]) <
          dict.GetString(
              col.code_to_value[static_cast<size_t>(new_codes[j])]);
    }
    Code c = take_old ? inv_old[i++] : new_codes[j++];
    meta->lex_rank[static_cast<size_t>(c)] = rank++;
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (meta_[a] == nullptr || meta_[a]->is_numeric.size() != n_codes) {
    meta_[a] = std::move(meta);
  }
  return meta_[a];
}

std::vector<ValueId> ColumnStore::ActiveDomain(size_t a) const {
  const Column& col = columns_[a];
  std::vector<ValueId> out;
  out.reserve(col.num_codes());
  for (size_t c = 1; c < col.num_codes(); ++c) {
    if (col.code_counts[c] > 0) out.push_back(col.code_to_value[c]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace holoclean
