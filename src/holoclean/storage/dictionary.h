#ifndef HOLOCLEAN_STORAGE_DICTIONARY_H_
#define HOLOCLEAN_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace holoclean {

/// Integer id of an interned string value. Id 0 is always the NULL/empty
/// value (`Dictionary::kNull`).
using ValueId = int32_t;

/// A string interner shared by all columns of a table.
///
/// Cells hold ValueIds; equality of cell values is integer equality, which
/// is what makes violation detection and co-occurrence counting cheap.
class Dictionary {
 public:
  /// The id of the canonical NULL value (the empty string).
  static constexpr ValueId kNull = 0;

  Dictionary() { Intern(""); }

  /// Returns the id for `value`, interning it if new.
  ValueId Intern(std::string_view value) {
    auto it = ids_.find(std::string(value));
    if (it != ids_.end()) return it->second;
    ValueId id = static_cast<ValueId>(values_.size());
    values_.emplace_back(value);
    ids_.emplace(values_.back(), id);
    return id;
  }

  /// Returns the id for `value` or kNull-1 (-1) when absent; never interns.
  ValueId Lookup(std::string_view value) const {
    auto it = ids_.find(std::string(value));
    return it == ids_.end() ? ValueId{-1} : it->second;
  }

  /// String for an id. Requires a valid id.
  const std::string& GetString(ValueId id) const {
    return values_[static_cast<size_t>(id)];
  }

  bool Contains(std::string_view value) const { return Lookup(value) >= 0; }

  /// Number of interned values (including NULL).
  size_t size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueId> ids_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STORAGE_DICTIONARY_H_
