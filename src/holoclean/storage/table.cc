#include "holoclean/storage/table.h"

#include <algorithm>

#include "holoclean/util/logging.h"

namespace holoclean {

Schema::Schema(std::vector<std::string> attr_names)
    : names_(std::move(attr_names)) {}

AttrId Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<AttrId>(i);
  }
  return -1;
}

Table::Table(Schema schema, std::shared_ptr<Dictionary> dict)
    : schema_(std::move(schema)),
      dict_(std::move(dict)),
      store_(schema_.num_attrs()) {
  HOLO_CHECK(dict_ != nullptr);
}

void Table::AppendRow(const std::vector<std::string>& values) {
  HOLO_CHECK(values.size() == schema_.num_attrs());
  std::vector<ValueId> ids;
  ids.reserve(values.size());
  for (const std::string& v : values) ids.push_back(dict_->Intern(v));
  store_.AppendRow(ids);
}

void Table::AppendRowIds(const std::vector<ValueId>& ids) {
  HOLO_CHECK(ids.size() == schema_.num_attrs());
  store_.AppendRow(ids);
}

std::vector<ValueId> Table::ActiveDomain(AttrId a) const {
  return store_.ActiveDomain(static_cast<size_t>(a));
}

void Table::InstallColumns(std::vector<std::vector<ValueId>> values,
                           std::vector<std::vector<ValueId>> dicts,
                           const std::vector<uint64_t>& sorted_prefixes) {
  store_.Install(std::move(values), std::move(dicts), sorted_prefixes);
}

Table Table::Clone() const {
  Table copy(schema_, dict_);
  copy.store_ = store_;
  return copy;
}

Table Table::CloneWithPrivateDictionary() const {
  Table copy(schema_, std::make_shared<Dictionary>(*dict_));
  copy.store_ = store_;
  return copy;
}

Result<Table> Table::FromCsv(const CsvDocument& doc) {
  if (doc.header.empty()) {
    return Status::InvalidArgument("CSV document has no header");
  }
  Table table(Schema(doc.header), std::make_shared<Dictionary>());
  for (const auto& row : doc.rows) {
    if (row.size() != doc.header.size()) {
      return Status::InvalidArgument("CSV row arity mismatch");
    }
    table.AppendRow(row);
  }
  table.store_.SortDictionaries(*table.dict_);
  return table;
}

CsvDocument Table::ToCsv() const {
  CsvDocument doc;
  doc.header = schema_.names();
  doc.rows.reserve(num_rows());
  for (size_t t = 0; t < num_rows(); ++t) {
    std::vector<std::string> row;
    row.reserve(schema_.num_attrs());
    for (size_t a = 0; a < schema_.num_attrs(); ++a) {
      row.push_back(dict_->GetString(Get(static_cast<TupleId>(t),
                                         static_cast<AttrId>(a))));
    }
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

}  // namespace holoclean
