#include "holoclean/storage/table.h"

#include <algorithm>
#include <unordered_set>

#include "holoclean/util/logging.h"

namespace holoclean {

Schema::Schema(std::vector<std::string> attr_names)
    : names_(std::move(attr_names)) {}

AttrId Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<AttrId>(i);
  }
  return -1;
}

Table::Table(Schema schema, std::shared_ptr<Dictionary> dict)
    : schema_(std::move(schema)), dict_(std::move(dict)) {
  HOLO_CHECK(dict_ != nullptr);
  cols_.resize(schema_.num_attrs());
}

void Table::AppendRow(const std::vector<std::string>& values) {
  HOLO_CHECK(values.size() == schema_.num_attrs());
  for (size_t a = 0; a < values.size(); ++a) {
    cols_[a].push_back(dict_->Intern(values[a]));
  }
  ++num_rows_;
}

void Table::AppendRowIds(const std::vector<ValueId>& ids) {
  HOLO_CHECK(ids.size() == schema_.num_attrs());
  for (size_t a = 0; a < ids.size(); ++a) {
    cols_[a].push_back(ids[a]);
  }
  ++num_rows_;
}

std::vector<ValueId> Table::ActiveDomain(AttrId a) const {
  std::unordered_set<ValueId> seen;
  std::vector<ValueId> out;
  for (ValueId v : cols_[static_cast<size_t>(a)]) {
    if (v == Dictionary::kNull) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Table Table::Clone() const {
  Table copy(schema_, dict_);
  copy.cols_ = cols_;
  copy.num_rows_ = num_rows_;
  return copy;
}

Result<Table> Table::FromCsv(const CsvDocument& doc) {
  if (doc.header.empty()) {
    return Status::InvalidArgument("CSV document has no header");
  }
  Table table(Schema(doc.header), std::make_shared<Dictionary>());
  for (const auto& row : doc.rows) {
    if (row.size() != doc.header.size()) {
      return Status::InvalidArgument("CSV row arity mismatch");
    }
    table.AppendRow(row);
  }
  return table;
}

CsvDocument Table::ToCsv() const {
  CsvDocument doc;
  doc.header = schema_.names();
  doc.rows.reserve(num_rows_);
  for (size_t t = 0; t < num_rows_; ++t) {
    std::vector<std::string> row;
    row.reserve(schema_.num_attrs());
    for (size_t a = 0; a < schema_.num_attrs(); ++a) {
      row.push_back(dict_->GetString(cols_[a][t]));
    }
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

}  // namespace holoclean
