#ifndef HOLOCLEAN_STORAGE_COLUMN_STORE_H_
#define HOLOCLEAN_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "holoclean/storage/dictionary.h"

namespace holoclean {

/// Per-column dictionary code: index into that column's code_to_value
/// dictionary. Code 0 always maps to Dictionary::kNull.
using Code = int32_t;

/// Physically chunked code array: fixed-size segments of kRowsPerChunk
/// codes each. Appends only ever touch the tail segment (full segments are
/// never reallocated, so concurrent readers of sealed chunks see stable
/// storage), and a truncation pops codes off the tail — the storage-level
/// primitives streaming ingestion needs. Scans iterate per chunk via
/// chunk_data()/chunk_size(); random access goes through operator[].
class ChunkedCodes {
 public:
  static constexpr size_t kRowsPerChunk = 1 << 16;

  Code operator[](size_t t) const {
    return chunks_[t >> kShift][t & kMask];
  }
  Code& operator[](size_t t) { return chunks_[t >> kShift][t & kMask]; }

  void push_back(Code c) {
    if ((size_ & kMask) == 0) {
      chunks_.emplace_back();
      chunks_.back().reserve(kRowsPerChunk);
    }
    chunks_.back().push_back(c);
    ++size_;
  }

  void pop_back() {
    chunks_.back().pop_back();
    --size_;
    if (chunks_.back().empty()) chunks_.pop_back();
  }

  Code back() const { return chunks_.back().back(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_chunks() const { return chunks_.size(); }
  const Code* chunk_data(size_t i) const { return chunks_[i].data(); }
  Code* chunk_data(size_t i) { return chunks_[i].data(); }
  size_t chunk_size(size_t i) const { return chunks_[i].size(); }

  void clear() {
    chunks_.clear();
    size_ = 0;
  }

  /// Chunk layout is a pure function of size, so element equality is chunk
  /// equality.
  friend bool operator==(const ChunkedCodes& a, const ChunkedCodes& b) {
    return a.chunks_ == b.chunks_;
  }
  friend bool operator!=(const ChunkedCodes& a, const ChunkedCodes& b) {
    return !(a == b);
  }

 private:
  static constexpr size_t kShift = 16;
  static constexpr size_t kMask = kRowsPerChunk - 1;
  static_assert(kRowsPerChunk == (size_t{1} << kShift), "shift mismatch");

  std::vector<std::vector<Code>> chunks_;
  size_t size_ = 0;
};

/// Columnar dictionary-encoded cell storage (the hyrise dictionary-segment
/// design, collapsed to one segment per column with logical chunk
/// boundaries).
///
/// Each column holds a contiguous code array plus a per-column dictionary
/// mapping dense codes to the table-wide ValueId space. The global
/// Dictionary stays authoritative for string interning — every artifact
/// the pipeline persists (violations, domains, weights, repairs)
/// references global ValueIds — so per-column codes are a pure
/// acceleration layer: equality scans compare codes or global ids as
/// integers, and per-code metadata (occurrence counts, parsed-numeric
/// values, lexicographic ranks) turns per-cell work into per-distinct-value
/// work.
///
/// A decoded global-id mirror of every column is kept eagerly in sync: it
/// is what Table's row-oriented accessors read, so hot consumers that were
/// tuned against flat ValueId arrays (compiled kernel, Gibbs, grounding)
/// keep their exact memory behaviour. Mutations go through Set/Append,
/// which update codes, counts, and the mirror together.
class ColumnStore {
 public:
  /// Rows per physical code segment: appends grow only the tail chunk,
  /// sealed chunks are never reallocated, and scans tile per chunk.
  static constexpr size_t kChunkRows = ChunkedCodes::kRowsPerChunk;

  /// Lazily derived per-code comparison metadata of one column (built by
  /// EnsureCompareMeta, immutable afterwards until the dictionary grows).
  struct CompareMeta {
    /// Per code: whether the value parses as a number (IsNumeric).
    std::vector<uint8_t> is_numeric;
    /// Per code: the parsed value (0.0 for non-numeric codes).
    std::vector<double> numeric;
    /// Per code: rank of the value string in lexicographic order over the
    /// column's dictionary. Comparable across codes of the SAME column.
    std::vector<int32_t> lex_rank;
    /// True when no code (besides NULL) parses as numeric: every ordered
    /// comparison inside the column takes the lexicographic branch, so
    /// `lex_rank` alone decides <,>,<=,>=.
    bool all_lexicographic = false;
    /// True when every non-null code parses as numeric: every ordered
    /// comparison inside the column is numeric.
    bool all_numeric = false;
  };

  struct Column {
    /// One code per row, in physical kChunkRows segments.
    ChunkedCodes codes;
    /// Dense code -> global ValueId. codes.size() distinct entries;
    /// code_to_value[0] == Dictionary::kNull always.
    std::vector<ValueId> code_to_value;
    /// Reverse mapping for interning appends/writes.
    std::unordered_map<ValueId, Code> value_to_code;
    /// Occurrences of each code among the rows (kept exact under Set, so
    /// active domains and frequency stats are O(#distinct), not O(rows)).
    std::vector<uint32_t> code_counts;
    /// Decoded global-id mirror, index is the row. Always in sync with
    /// `codes` (Table's Column()/Get() read this).
    std::vector<ValueId> values;
    /// Codes below this bound are in lexicographic string order (set by
    /// bulk sorted encoding; appends of new values grow an unsorted tail).
    size_t sorted_prefix = 1;

    size_t num_codes() const { return code_to_value.size(); }
  };

  explicit ColumnStore(size_t num_attrs);

  // Explicit because of the metadata mutex (Table is cloned and moved
  // through Result<Table>).
  ColumnStore(const ColumnStore& other);
  ColumnStore& operator=(const ColumnStore& other);
  ColumnStore(ColumnStore&& other) noexcept;
  ColumnStore& operator=(ColumnStore&& other) noexcept;

  size_t num_attrs() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }
  size_t num_chunks() const {
    return num_rows_ == 0 ? 0 : (num_rows_ + kChunkRows - 1) / kChunkRows;
  }

  const Column& column(size_t a) const { return columns_[a]; }

  ValueId Value(size_t a, size_t t) const { return columns_[a].values[t]; }

  /// Decoded mirror of a column (index is the row).
  const std::vector<ValueId>& Values(size_t a) const {
    return columns_[a].values;
  }

  /// Overwrites one cell, keeping codes, counts, and the mirror in sync.
  void Set(size_t a, size_t t, ValueId v);

  /// Appends one row of global ids (one per column).
  void AppendRow(const std::vector<ValueId>& ids);

  /// Drops every row at index >= new_rows (streaming-append rollback).
  /// Codes whose occurrence count drops to zero stay in the per-column
  /// dictionaries (ActiveDomain and the stats passes skip count-0 codes),
  /// so cached CompareMeta stays valid.
  void Truncate(size_t new_rows);

  /// Re-encodes every column so codes follow lexicographic string order
  /// (code 0 stays NULL). Called after a bulk load; `dict` resolves the
  /// strings. Resets sorted_prefix to the full dictionary.
  void SortDictionaries(const Dictionary& dict);

  /// Replaces the store contents wholesale (snapshot restore fast path).
  /// `values` are the decoded columns, `dicts` the per-column
  /// code_to_value arrays; codes and counts are derived here with O(1)
  /// array mapping per cell — no per-cell hashing. Caller validated that
  /// every value of column a appears in dicts[a] and dicts[a][0] is NULL.
  void Install(std::vector<std::vector<ValueId>> values,
               std::vector<std::vector<ValueId>> dicts,
               const std::vector<uint64_t>& sorted_prefixes);

  /// Comparison metadata of a column, built on first use (thread-safe —
  /// detection fetches this concurrently from per-DC pool workers). `dict`
  /// resolves code strings. The returned snapshot is immutable; it covers
  /// the codes that existed when it was built, so callers that mutate the
  /// table must re-fetch. When the dictionary only grew since the cached
  /// snapshot (appends interning new values), the snapshot is extended
  /// incrementally: per-code parsing runs only for the new codes and the
  /// lexicographic ranks are merged, so append cost is proportional to the
  /// new distinct values, never the whole column.
  std::shared_ptr<const CompareMeta> EnsureCompareMeta(
      size_t a, const Dictionary& dict) const;

  /// Distinct non-null global ids currently present in column a, ascending.
  std::vector<ValueId> ActiveDomain(size_t a) const;

 private:
  Code InternCode(Column* col, ValueId v);

  std::vector<Column> columns_;
  size_t num_rows_ = 0;

  /// Lazy compare metadata, one slot per column. Guarded by meta_mu_ for
  /// concurrent first-use from const scans (detection runs per-DC on the
  /// pool); a shared_ptr is handed out so a rebuild after dictionary
  /// growth never invalidates a reader mid-scan.
  mutable std::mutex meta_mu_;
  mutable std::vector<std::shared_ptr<CompareMeta>> meta_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STORAGE_COLUMN_STORE_H_
