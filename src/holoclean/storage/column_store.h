#ifndef HOLOCLEAN_STORAGE_COLUMN_STORE_H_
#define HOLOCLEAN_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "holoclean/storage/dictionary.h"

namespace holoclean {

/// Per-column dictionary code: index into that column's code_to_value
/// dictionary. Code 0 always maps to Dictionary::kNull.
using Code = int32_t;

/// Columnar dictionary-encoded cell storage (the hyrise dictionary-segment
/// design, collapsed to one segment per column with logical chunk
/// boundaries).
///
/// Each column holds a contiguous code array plus a per-column dictionary
/// mapping dense codes to the table-wide ValueId space. The global
/// Dictionary stays authoritative for string interning — every artifact
/// the pipeline persists (violations, domains, weights, repairs)
/// references global ValueIds — so per-column codes are a pure
/// acceleration layer: equality scans compare codes or global ids as
/// integers, and per-code metadata (occurrence counts, parsed-numeric
/// values, lexicographic ranks) turns per-cell work into per-distinct-value
/// work.
///
/// A decoded global-id mirror of every column is kept eagerly in sync: it
/// is what Table's row-oriented accessors read, so hot consumers that were
/// tuned against flat ValueId arrays (compiled kernel, Gibbs, grounding)
/// keep their exact memory behaviour. Mutations go through Set/Append,
/// which update codes, counts, and the mirror together.
class ColumnStore {
 public:
  /// Logical rows per chunk. Chunks share one physical code array today —
  /// the boundary exists so streaming/append work has a natural unit (and
  /// scans a natural tile) without a later storage-format change.
  static constexpr size_t kChunkRows = 1 << 16;

  /// Lazily derived per-code comparison metadata of one column (built by
  /// EnsureCompareMeta, immutable afterwards until the dictionary grows).
  struct CompareMeta {
    /// Per code: whether the value parses as a number (IsNumeric).
    std::vector<uint8_t> is_numeric;
    /// Per code: the parsed value (0.0 for non-numeric codes).
    std::vector<double> numeric;
    /// Per code: rank of the value string in lexicographic order over the
    /// column's dictionary. Comparable across codes of the SAME column.
    std::vector<int32_t> lex_rank;
    /// True when no code (besides NULL) parses as numeric: every ordered
    /// comparison inside the column takes the lexicographic branch, so
    /// `lex_rank` alone decides <,>,<=,>=.
    bool all_lexicographic = false;
    /// True when every non-null code parses as numeric: every ordered
    /// comparison inside the column is numeric.
    bool all_numeric = false;
  };

  struct Column {
    /// One code per row.
    std::vector<Code> codes;
    /// Dense code -> global ValueId. codes.size() distinct entries;
    /// code_to_value[0] == Dictionary::kNull always.
    std::vector<ValueId> code_to_value;
    /// Reverse mapping for interning appends/writes.
    std::unordered_map<ValueId, Code> value_to_code;
    /// Occurrences of each code among the rows (kept exact under Set, so
    /// active domains and frequency stats are O(#distinct), not O(rows)).
    std::vector<uint32_t> code_counts;
    /// Decoded global-id mirror, index is the row. Always in sync with
    /// `codes` (Table's Column()/Get() read this).
    std::vector<ValueId> values;
    /// Codes below this bound are in lexicographic string order (set by
    /// bulk sorted encoding; appends of new values grow an unsorted tail).
    size_t sorted_prefix = 1;

    size_t num_codes() const { return code_to_value.size(); }
  };

  explicit ColumnStore(size_t num_attrs);

  // Explicit because of the metadata mutex (Table is cloned and moved
  // through Result<Table>).
  ColumnStore(const ColumnStore& other);
  ColumnStore& operator=(const ColumnStore& other);
  ColumnStore(ColumnStore&& other) noexcept;
  ColumnStore& operator=(ColumnStore&& other) noexcept;

  size_t num_attrs() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }
  size_t num_chunks() const {
    return num_rows_ == 0 ? 0 : (num_rows_ + kChunkRows - 1) / kChunkRows;
  }

  const Column& column(size_t a) const { return columns_[a]; }

  ValueId Value(size_t a, size_t t) const { return columns_[a].values[t]; }

  /// Decoded mirror of a column (index is the row).
  const std::vector<ValueId>& Values(size_t a) const {
    return columns_[a].values;
  }

  /// Overwrites one cell, keeping codes, counts, and the mirror in sync.
  void Set(size_t a, size_t t, ValueId v);

  /// Appends one row of global ids (one per column).
  void AppendRow(const std::vector<ValueId>& ids);

  /// Re-encodes every column so codes follow lexicographic string order
  /// (code 0 stays NULL). Called after a bulk load; `dict` resolves the
  /// strings. Resets sorted_prefix to the full dictionary.
  void SortDictionaries(const Dictionary& dict);

  /// Replaces the store contents wholesale (snapshot restore fast path).
  /// `values` are the decoded columns, `dicts` the per-column
  /// code_to_value arrays; codes and counts are derived here with O(1)
  /// array mapping per cell — no per-cell hashing. Caller validated that
  /// every value of column a appears in dicts[a] and dicts[a][0] is NULL.
  void Install(std::vector<std::vector<ValueId>> values,
               std::vector<std::vector<ValueId>> dicts,
               const std::vector<uint64_t>& sorted_prefixes);

  /// Comparison metadata of a column, built on first use (thread-safe —
  /// detection fetches this concurrently from per-DC pool workers). `dict`
  /// resolves code strings. The returned snapshot is immutable; it covers
  /// the codes that existed when it was built, so callers that mutate the
  /// table must re-fetch.
  std::shared_ptr<const CompareMeta> EnsureCompareMeta(
      size_t a, const Dictionary& dict) const;

  /// Distinct non-null global ids currently present in column a, ascending.
  std::vector<ValueId> ActiveDomain(size_t a) const;

 private:
  Code InternCode(Column* col, ValueId v);

  std::vector<Column> columns_;
  size_t num_rows_ = 0;

  /// Lazy compare metadata, one slot per column. Guarded by meta_mu_ for
  /// concurrent first-use from const scans (detection runs per-DC on the
  /// pool); a shared_ptr is handed out so a rebuild after dictionary
  /// growth never invalidates a reader mid-scan.
  mutable std::mutex meta_mu_;
  mutable std::vector<std::shared_ptr<CompareMeta>> meta_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STORAGE_COLUMN_STORE_H_
