#include "holoclean/storage/dictionary.h"

namespace holoclean {

// Dictionary is header-only; this TU anchors the library target.

}  // namespace holoclean
