#ifndef HOLOCLEAN_STORAGE_DATASET_H_
#define HOLOCLEAN_STORAGE_DATASET_H_

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "holoclean/storage/table.h"

namespace holoclean {

/// A data-cleaning instance: the dirty table D, optional ground truth, and
/// metadata about provenance / repairability of attributes.
class Dataset {
 public:
  explicit Dataset(Table dirty) : dirty_(std::move(dirty)) {}

  Table& dirty() { return dirty_; }
  const Table& dirty() const { return dirty_; }

  /// Ground-truth clean version of the table (same schema/dictionary),
  /// when available. Used only for evaluation, never by repairing code.
  void set_clean(Table clean) { clean_ = std::move(clean); }
  bool has_clean() const { return clean_.has_value(); }
  const Table& clean() const { return *clean_; }
  /// Mutable access for streaming appends: the clean table's rows must
  /// stay aligned with the dirty table's (TrueErrors indexes both by the
  /// dirty row count).
  Table& clean() { return *clean_; }

  /// Marks an attribute as the provenance/source column (e.g. which web
  /// source reported a Flights tuple). Source cells are never repaired but
  /// are turned into trust features of the model (paper Section 4.1).
  void set_source_attr(AttrId a) { source_attr_ = a; }
  AttrId source_attr() const { return source_attr_; }
  bool has_source_attr() const { return source_attr_ >= 0; }

  /// Attributes eligible for repair: everything except the source column.
  std::vector<AttrId> RepairableAttrs() const {
    std::vector<AttrId> out;
    for (size_t a = 0; a < dirty_.schema().num_attrs(); ++a) {
      if (static_cast<AttrId>(a) != source_attr_) {
        out.push_back(static_cast<AttrId>(a));
      }
    }
    return out;
  }

  /// The set of cells whose ground-truth value differs from the observed
  /// one. Requires has_clean().
  std::vector<CellRef> TrueErrors() const {
    std::vector<CellRef> out;
    for (size_t t = 0; t < dirty_.num_rows(); ++t) {
      for (AttrId a : RepairableAttrs()) {
        CellRef c{static_cast<TupleId>(t), a};
        if (dirty_.Get(c) != clean_->Get(c)) out.push_back(c);
      }
    }
    return out;
  }

 private:
  Table dirty_;
  std::optional<Table> clean_;
  AttrId source_attr_ = -1;
};

/// Set of cells flagged as potentially erroneous (Dn in the paper).
/// Cells not in the set form Dc and are treated as evidence.
class NoisyCells {
 public:
  void Add(const CellRef& c) {
    if (set_.insert(c).second) cells_.push_back(c);
  }

  /// Removes a cell — e.g. once user feedback verifies it as clean — so an
  /// incremental re-compile treats it as evidence. No-op when absent.
  void Remove(const CellRef& c) {
    if (set_.erase(c) == 0) return;
    cells_.erase(std::find(cells_.begin(), cells_.end(), c));
  }

  bool Contains(const CellRef& c) const { return set_.count(c) > 0; }
  const std::vector<CellRef>& cells() const { return cells_; }
  size_t size() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }

  /// Union with another detector's output.
  void Merge(const NoisyCells& other) {
    for (const CellRef& c : other.cells()) Add(c);
  }

 private:
  std::vector<CellRef> cells_;
  std::unordered_set<CellRef, CellRefHash> set_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STORAGE_DATASET_H_
