#ifndef HOLOCLEAN_STORAGE_TABLE_H_
#define HOLOCLEAN_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "holoclean/storage/column_store.h"
#include "holoclean/storage/dictionary.h"
#include "holoclean/util/csv.h"
#include "holoclean/util/status.h"

namespace holoclean {

/// Index of an attribute (column) in a table's schema.
using AttrId = int32_t;
/// Index of a tuple (row) in a table.
using TupleId = int32_t;

/// Addresses a single cell t[a] of a table — the unit the paper repairs.
struct CellRef {
  TupleId tid = 0;
  AttrId attr = 0;

  bool operator==(const CellRef& other) const {
    return tid == other.tid && attr == other.attr;
  }
  bool operator<(const CellRef& other) const {
    return tid != other.tid ? tid < other.tid : attr < other.attr;
  }
};

/// Hash functor for CellRef keys.
struct CellRefHash {
  size_t operator()(const CellRef& c) const {
    return (static_cast<size_t>(c.tid) << 20) ^ static_cast<size_t>(c.attr);
  }
};

/// Ordered list of attribute names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attr_names);

  /// Attribute index by name, or -1 when absent.
  AttrId IndexOf(std::string_view name) const;

  const std::string& name(AttrId a) const {
    return names_[static_cast<size_t>(a)];
  }
  size_t num_attrs() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

/// In-memory columnar relation backed by a ColumnStore: each column is a
/// dictionary-encoded segment (dense per-column codes plus a code -> global
/// ValueId dictionary), with a decoded global-id mirror serving this
/// row-oriented API. The global Dictionary is shared across columns (and
/// may be shared across tables, e.g. between a dirty table and its
/// ground-truth clean version).
class Table {
 public:
  Table(Schema schema, std::shared_ptr<Dictionary> dict);

  /// Appends a row of raw string values. Requires row arity == schema arity.
  void AppendRow(const std::vector<std::string>& values);

  /// Appends a row of pre-interned ids.
  void AppendRowIds(const std::vector<ValueId>& ids);

  /// Drops every row at index >= new_rows (streaming-append rollback).
  /// Strings the dropped rows interned stay in the dictionary; per-column
  /// dictionary codes whose count reaches zero stay allocated (harmless —
  /// active domains and stats skip them).
  void Truncate(size_t new_rows) { store_.Truncate(new_rows); }

  ValueId Get(TupleId t, AttrId a) const {
    return store_.Value(static_cast<size_t>(a), static_cast<size_t>(t));
  }
  ValueId Get(const CellRef& c) const { return Get(c.tid, c.attr); }

  void Set(TupleId t, AttrId a, ValueId v) {
    store_.Set(static_cast<size_t>(a), static_cast<size_t>(t), v);
  }
  void Set(const CellRef& c, ValueId v) { Set(c.tid, c.attr, v); }

  /// The string value of a cell.
  const std::string& GetString(TupleId t, AttrId a) const {
    return dict_->GetString(Get(t, a));
  }
  const std::string& GetString(const CellRef& c) const {
    return GetString(c.tid, c.attr);
  }

  /// Sets a cell from a raw string (interning it).
  void SetString(TupleId t, AttrId a, std::string_view value) {
    Set(t, a, dict_->Intern(value));
  }

  /// Full column as global ids; index is TupleId.
  const std::vector<ValueId>& Column(AttrId a) const {
    return store_.Values(static_cast<size_t>(a));
  }

  /// Distinct non-null values appearing in attribute `a` (its active domain).
  std::vector<ValueId> ActiveDomain(AttrId a) const;

  /// The columnar backing store (code arrays, per-column dictionaries, and
  /// compare metadata) for vectorized scans.
  const ColumnStore& store() const { return store_; }

  /// Replaces all cell contents and per-column dictionaries wholesale
  /// (snapshot restore fast path — skips per-cell re-encoding). Row count
  /// is taken from `values`; the caller validated the inputs against the
  /// shared dictionary.
  void InstallColumns(std::vector<std::vector<ValueId>> values,
                      std::vector<std::vector<ValueId>> dicts,
                      const std::vector<uint64_t>& sorted_prefixes);

  size_t num_rows() const { return store_.num_rows(); }
  size_t num_cells() const { return num_rows() * schema_.num_attrs(); }
  const Schema& schema() const { return schema_; }
  Dictionary& dict() { return *dict_; }
  const Dictionary& dict() const { return *dict_; }
  std::shared_ptr<Dictionary> dict_ptr() const { return dict_; }

  /// Deep copy sharing the same dictionary.
  Table Clone() const;

  /// Deep copy with a private copy of the dictionary: value ids are
  /// preserved (the copy starts from the same interned sequence), but
  /// later interning on either table leaves the other untouched. The
  /// isolation primitive for concurrent jobs over the same logical data —
  /// a run mutates its dataset's dictionary, so tenants must not share
  /// one.
  Table CloneWithPrivateDictionary() const;

  /// Builds a table from a parsed CSV document using a fresh dictionary.
  /// Per-column dictionaries are bulk-sorted after the load so codes start
  /// out in lexicographic string order.
  static Result<Table> FromCsv(const CsvDocument& doc);

  /// Serializes to a CSV document.
  CsvDocument ToCsv() const;

 private:
  Schema schema_;
  std::shared_ptr<Dictionary> dict_;
  ColumnStore store_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STORAGE_TABLE_H_
