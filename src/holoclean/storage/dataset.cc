#include "holoclean/storage/dataset.h"

namespace holoclean {

// Dataset and NoisyCells are header-only; this TU anchors the library target.

}  // namespace holoclean
