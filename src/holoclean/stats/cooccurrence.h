#ifndef HOLOCLEAN_STATS_COOCCURRENCE_H_
#define HOLOCLEAN_STATS_COOCCURRENCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "holoclean/storage/table.h"
#include "holoclean/util/thread_pool.h"

namespace holoclean {

/// Pairwise value co-occurrence statistics of a table.
///
/// This is the quantitative-statistics signal of the paper: the conditional
/// probability Pr[v | v'] = #(v, v' in the same tuple) / #v' drives both the
/// domain-pruning strategy (Algorithm 2) and the co-occurrence features of
/// the probabilistic model.
///
/// Two construction paths fill the same representation with identical
/// contents: Build scans rows (the reference), BuildColumnar counts over
/// the ColumnStore's per-column code arrays — grouping rows by context
/// code with one prefix-sum scatter per attribute pair, so the hash work
/// is per distinct value pair instead of per cell.
class CooccurrenceStats {
 public:
  /// Counts co-occurrences across all ordered pairs of `attrs` in `table`.
  /// NULL cells are skipped.
  static CooccurrenceStats Build(const Table& table,
                                 const std::vector<AttrId>& attrs);

  /// Same statistics, counted over dictionary codes. Attribute pairs are
  /// processed in parallel when `pool` is given; the result is identical
  /// either way.
  static CooccurrenceStats BuildColumnar(const Table& table,
                                         const std::vector<AttrId>& attrs,
                                         ThreadPool* pool = nullptr);

  /// Folds rows [first_row, table.num_rows()) into the statistics in place
  /// (streaming append). Counts, pair lists, and domains end up with
  /// exactly the contents a from-scratch Build over the grown table
  /// produces — new pair entries are inserted at their sorted position —
  /// so every consumer (pruning, features) sees bit-identical statistics.
  /// Cost is O(new_rows * |attrs|^2 * log) — independent of the old rows.
  void AppendRows(const Table& table, const std::vector<AttrId>& attrs,
                  size_t first_row);

  /// #(tuples where attribute a = v and attribute a_ctx = v_ctx).
  int PairCount(AttrId a, ValueId v, AttrId a_ctx, ValueId v_ctx) const;

  /// #(tuples where attribute a = v).
  int Count(AttrId a, ValueId v) const;

  /// Pr[v for attribute a | v_ctx for attribute a_ctx]; 0 when v_ctx unseen.
  double CondProb(AttrId a, ValueId v, AttrId a_ctx, ValueId v_ctx) const;

  /// Values of attribute a that co-occur with (a_ctx = v_ctx) in >= 1 tuple,
  /// with their pair counts, ascending by value. This is the
  /// candidate-generation primitive of Algorithm 2: it avoids scanning the
  /// whole active domain of a.
  const std::vector<std::pair<ValueId, int>>& CooccurringValues(
      AttrId a, AttrId a_ctx, ValueId v_ctx) const;

  /// Active domain (distinct non-null values) of attribute a.
  const std::vector<ValueId>& Domain(AttrId a) const;

  /// Total number of (attr-pair, value-pair) entries; the memory footprint.
  size_t num_pair_entries() const { return num_pair_entries_; }

 private:
  // Packs (a, v) into a 64-bit key. Requires v < 2^32.
  static uint64_t KeyAV(AttrId a, ValueId v) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(v);
  }

  std::unordered_map<uint64_t, int> value_counts_;  // (a,v) -> count
  // (a,a_ctx) indexed by a*A+a_ctx -> map from (v_ctx) -> list of (v,count),
  // each list ascending by v. PairCount binary-searches these lists, so no
  // separate flat pair map is kept.
  struct PairIndex {
    std::unordered_map<ValueId, std::vector<std::pair<ValueId, int>>> by_ctx;
  };
  std::vector<PairIndex> pair_index_;          // size A*A
  std::vector<std::vector<ValueId>> domains_;  // per attribute
  size_t num_pair_entries_ = 0;
  size_t num_attrs_ = 0;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STATS_COOCCURRENCE_H_
