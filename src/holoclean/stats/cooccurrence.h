#ifndef HOLOCLEAN_STATS_COOCCURRENCE_H_
#define HOLOCLEAN_STATS_COOCCURRENCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "holoclean/storage/table.h"

namespace holoclean {

/// Pairwise value co-occurrence statistics of a table.
///
/// This is the quantitative-statistics signal of the paper: the conditional
/// probability Pr[v | v'] = #(v, v' in the same tuple) / #v' drives both the
/// domain-pruning strategy (Algorithm 2) and the co-occurrence features of
/// the probabilistic model.
class CooccurrenceStats {
 public:
  /// Counts co-occurrences across all ordered pairs of `attrs` in `table`.
  /// NULL cells are skipped.
  static CooccurrenceStats Build(const Table& table,
                                 const std::vector<AttrId>& attrs);

  /// #(tuples where attribute a = v and attribute a_ctx = v_ctx).
  int PairCount(AttrId a, ValueId v, AttrId a_ctx, ValueId v_ctx) const;

  /// #(tuples where attribute a = v).
  int Count(AttrId a, ValueId v) const;

  /// Pr[v for attribute a | v_ctx for attribute a_ctx]; 0 when v_ctx unseen.
  double CondProb(AttrId a, ValueId v, AttrId a_ctx, ValueId v_ctx) const;

  /// Values of attribute a that co-occur with (a_ctx = v_ctx) in >= 1 tuple,
  /// with their pair counts. This is the candidate-generation primitive of
  /// Algorithm 2: it avoids scanning the whole active domain of a.
  const std::vector<std::pair<ValueId, int>>& CooccurringValues(
      AttrId a, AttrId a_ctx, ValueId v_ctx) const;

  /// Active domain (distinct non-null values) of attribute a.
  const std::vector<ValueId>& Domain(AttrId a) const;

  /// Total number of (attr-pair, value-pair) entries; the memory footprint.
  size_t num_pair_entries() const { return pair_counts_.size(); }

 private:
  // Packs (a, v) into a 64-bit key. Requires v < 2^32.
  static uint64_t KeyAV(AttrId a, ValueId v) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(v);
  }

  std::unordered_map<uint64_t, int> value_counts_;  // (a,v) -> count
  // (a,a_ctx) indexed by a*A+a_ctx -> map from (v_ctx) -> list of (v,count).
  // Stored as: per attr-pair, map v_ctx -> vector<pair<v,count>>.
  struct PairIndex {
    std::unordered_map<ValueId, std::vector<std::pair<ValueId, int>>> by_ctx;
  };
  std::vector<PairIndex> pair_index_;              // size A*A
  std::unordered_map<uint64_t, int> pair_counts_;  // packed pair key -> count
  std::vector<std::vector<ValueId>> domains_;      // per attribute
  size_t num_attrs_ = 0;

  uint64_t PairKey(AttrId a, ValueId v, AttrId a_ctx, ValueId v_ctx) const;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STATS_COOCCURRENCE_H_
