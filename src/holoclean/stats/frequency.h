#ifndef HOLOCLEAN_STATS_FREQUENCY_H_
#define HOLOCLEAN_STATS_FREQUENCY_H_

#include <unordered_map>
#include <vector>

#include "holoclean/storage/table.h"

namespace holoclean {

/// Per-attribute empirical value distribution of a table.
/// Used by the categorical outlier detector and the SCARE baseline.
class FrequencyStats {
 public:
  /// Counts values of every attribute of `table`.
  static FrequencyStats Build(const Table& table);

  /// Number of occurrences of value v in attribute a.
  int Count(AttrId a, ValueId v) const;

  /// Empirical probability of v within attribute a.
  double Probability(AttrId a, ValueId v) const;

  /// Distinct values of attribute a sorted by descending count.
  std::vector<std::pair<ValueId, int>> SortedCounts(AttrId a) const;

  /// Most frequent value of attribute a (kNull when the column is empty).
  ValueId Mode(AttrId a) const;

  size_t num_rows() const { return num_rows_; }

 private:
  std::vector<std::unordered_map<ValueId, int>> counts_;
  size_t num_rows_ = 0;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STATS_FREQUENCY_H_
