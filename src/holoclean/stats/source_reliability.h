#ifndef HOLOCLEAN_STATS_SOURCE_RELIABILITY_H_
#define HOLOCLEAN_STATS_SOURCE_RELIABILITY_H_

#include <unordered_map>
#include <vector>

#include "holoclean/storage/table.h"

namespace holoclean {

/// Iterative (EM-style) estimate of per-source trustworthiness, in the
/// spirit of SLiMFast [Rekatsinas et al., SIGMOD'17] — the signal the paper
/// uses on Flights (§6.2.1).
///
/// Tuples are grouped by a key attribute (the entity, e.g. flight number).
/// Starting from a uniform prior, each round (1) estimates the truth of
/// every (entity, attribute) by a reliability-weighted vote and (2)
/// re-estimates each source's reliability as its smoothed agreement rate
/// with the estimated truths. Consistently-correct sources reinforce each
/// other, which lets the estimate escape wrong unweighted majorities.
class SourceReliability {
 public:
  struct Options {
    int iterations = 10;
    double initial = 0.8;
    /// Laplace smoothing of the agreement rate.
    double smoothing = 1.0;
  };

  /// Estimates reliabilities. `key_attr` identifies the entity; `source_attr`
  /// identifies the reporting source; all other attributes are voted on.
  static SourceReliability Estimate(const Table& table, AttrId key_attr,
                                    AttrId source_attr, Options options);
  static SourceReliability Estimate(const Table& table, AttrId key_attr,
                                    AttrId source_attr) {
    return Estimate(table, key_attr, source_attr, Options());
  }

  /// Reliability in [0,1]; 0.5 for unknown sources (uninformative prior).
  double Get(ValueId source) const;

  /// All (source value, reliability) pairs, sorted by source id.
  std::vector<std::pair<ValueId, double>> All() const;

 private:
  std::unordered_map<ValueId, double> reliability_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STATS_SOURCE_RELIABILITY_H_
