#ifndef HOLOCLEAN_STATS_NUMERIC_H_
#define HOLOCLEAN_STATS_NUMERIC_H_

#include <optional>
#include <vector>

#include "holoclean/storage/table.h"

namespace holoclean {

/// Robust summary of a (mostly) numeric attribute: median and MAD
/// (median absolute deviation), plus mean/stddev, over the cells that
/// parse as numbers.
struct NumericProfile {
  size_t numeric_count = 0;
  size_t non_numeric_count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  /// Median absolute deviation, scaled by 1.4826 (consistent with the
  /// standard deviation under normality).
  double mad = 0.0;

  /// Whether the attribute is predominantly numeric (>= 80% parseable).
  bool IsNumericAttribute() const {
    size_t total = numeric_count + non_numeric_count;
    return total > 0 && numeric_count * 5 >= total * 4;
  }

  /// Robust z-score of a value: |v - median| / MAD (infinite MAD-less
  /// columns yield 0).
  double RobustZ(double value) const {
    if (mad <= 0.0) return 0.0;
    double z = (value - median) / mad;
    return z < 0 ? -z : z;
  }
};

/// Profiles attribute `a` of the table (NULLs skipped).
NumericProfile ProfileNumeric(const Table& table, AttrId a);

}  // namespace holoclean

#endif  // HOLOCLEAN_STATS_NUMERIC_H_
