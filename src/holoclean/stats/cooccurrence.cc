#include "holoclean/stats/cooccurrence.h"

#include <algorithm>

#include "holoclean/util/logging.h"

namespace holoclean {

namespace {
constexpr uint64_t kValueBits = 24;
constexpr uint64_t kValueMask = (1ULL << kValueBits) - 1;

// Layout: [a:8][a_ctx:8][v:24][v_ctx:24]. Checked at build time.
uint64_t PairKey(AttrId a, ValueId v, AttrId a_ctx, ValueId v_ctx) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 56) |
         (static_cast<uint64_t>(static_cast<uint32_t>(a_ctx)) << 48) |
         ((static_cast<uint64_t>(static_cast<uint32_t>(v)) & kValueMask)
          << kValueBits) |
         (static_cast<uint64_t>(static_cast<uint32_t>(v_ctx)) & kValueMask);
}
}  // namespace

CooccurrenceStats CooccurrenceStats::Build(const Table& table,
                                           const std::vector<AttrId>& attrs) {
  CooccurrenceStats stats;
  size_t num_attrs = table.schema().num_attrs();
  stats.num_attrs_ = num_attrs;
  HOLO_CHECK(num_attrs < 256);
  HOLO_CHECK(table.dict().size() < (1ULL << kValueBits));
  stats.pair_index_.resize(num_attrs * num_attrs);
  stats.domains_.resize(num_attrs);

  for (AttrId a : attrs) {
    for (ValueId v : table.Column(a)) {
      if (v == Dictionary::kNull) continue;
      ++stats.value_counts_[KeyAV(a, v)];
    }
    stats.domains_[static_cast<size_t>(a)] = table.ActiveDomain(a);
  }

  std::unordered_map<uint64_t, int> pair_counts;
  for (size_t t = 0; t < table.num_rows(); ++t) {
    for (AttrId a : attrs) {
      ValueId v = table.Get(static_cast<TupleId>(t), a);
      if (v == Dictionary::kNull) continue;
      for (AttrId a_ctx : attrs) {
        if (a_ctx == a) continue;
        ValueId v_ctx = table.Get(static_cast<TupleId>(t), a_ctx);
        if (v_ctx == Dictionary::kNull) continue;
        ++pair_counts[PairKey(a, v, a_ctx, v_ctx)];
      }
    }
  }

  // Build the per-context index from the flat pair counts.
  for (const auto& [key, count] : pair_counts) {
    AttrId a = static_cast<AttrId>(key >> 56);
    AttrId a_ctx = static_cast<AttrId>((key >> 48) & 0xFF);
    ValueId v = static_cast<ValueId>((key >> kValueBits) & kValueMask);
    ValueId v_ctx = static_cast<ValueId>(key & kValueMask);
    auto& index = stats.pair_index_[static_cast<size_t>(a) * num_attrs +
                                    static_cast<size_t>(a_ctx)];
    index.by_ctx[v_ctx].emplace_back(v, count);
  }
  // Deterministic ordering for reproducible candidate generation.
  for (auto& index : stats.pair_index_) {
    for (auto& [ctx, values] : index.by_ctx) {
      std::sort(values.begin(), values.end());
    }
  }
  stats.num_pair_entries_ = pair_counts.size();
  return stats;
}

CooccurrenceStats CooccurrenceStats::BuildColumnar(
    const Table& table, const std::vector<AttrId>& attrs, ThreadPool* pool) {
  CooccurrenceStats stats;
  size_t num_attrs = table.schema().num_attrs();
  stats.num_attrs_ = num_attrs;
  HOLO_CHECK(num_attrs < 256);
  HOLO_CHECK(table.dict().size() < (1ULL << kValueBits));
  stats.pair_index_.resize(num_attrs * num_attrs);
  stats.domains_.resize(num_attrs);

  const ColumnStore& store = table.store();

  for (AttrId a : attrs) {
    const ColumnStore::Column& col = store.column(static_cast<size_t>(a));
    for (size_t c = 1; c < col.num_codes(); ++c) {
      if (col.code_counts[c] > 0) {
        stats.value_counts_[KeyAV(a, col.code_to_value[c])] =
            static_cast<int>(col.code_counts[c]);
      }
    }
    stats.domains_[static_cast<size_t>(a)] = table.ActiveDomain(a);
  }

  // One task per ordered (target, context) attribute pair; each writes a
  // disjoint pair_index_ slot, so pairs parallelize without coordination.
  std::vector<std::pair<AttrId, AttrId>> tasks;
  tasks.reserve(attrs.size() * attrs.size());
  for (AttrId a : attrs) {
    for (AttrId a_ctx : attrs) {
      if (a_ctx != a) tasks.emplace_back(a, a_ctx);
    }
  }
  std::vector<size_t> task_entries(tasks.size(), 0);

  auto build_pair = [&](size_t task) {
    const AttrId a = tasks[task].first;
    const AttrId a_ctx = tasks[task].second;
    const ColumnStore::Column& tcol = store.column(static_cast<size_t>(a));
    const ColumnStore::Column& ccol =
        store.column(static_cast<size_t>(a_ctx));
    const size_t n_ctx = ccol.num_codes();
    const size_t n_tgt = tcol.num_codes();

    // Group the target codes of all rows by their context code with a
    // prefix-sum scatter (the context column's occupancy counts are the
    // bucket sizes), then count each group with a touched-list scratch.
    std::vector<uint32_t> offsets(n_ctx + 1, 0);
    for (size_t c = 1; c < n_ctx; ++c) {
      offsets[c + 1] = offsets[c] + ccol.code_counts[c];
    }
    std::vector<Code> grouped(offsets[n_ctx]);
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t ch = 0; ch < ccol.codes.num_chunks(); ++ch) {
      const Code* cc_data = ccol.codes.chunk_data(ch);
      const Code* tc_data = tcol.codes.chunk_data(ch);
      const size_t m = ccol.codes.chunk_size(ch);
      for (size_t i = 0; i < m; ++i) {
        Code cc = cc_data[i];
        if (cc == 0) continue;
        grouped[cursor[static_cast<size_t>(cc)]++] = tc_data[i];
      }
    }

    std::vector<int> counts(n_tgt, 0);
    std::vector<Code> touched;
    auto& index = stats.pair_index_[static_cast<size_t>(a) * num_attrs +
                                    static_cast<size_t>(a_ctx)];
    size_t entries = 0;
    for (size_t cc = 1; cc < n_ctx; ++cc) {
      for (uint32_t u = offsets[cc]; u < offsets[cc + 1]; ++u) {
        Code tc = grouped[u];
        if (tc == 0) continue;
        if (counts[static_cast<size_t>(tc)]++ == 0) touched.push_back(tc);
      }
      if (touched.empty()) continue;
      auto& list = index.by_ctx[ccol.code_to_value[cc]];
      list.reserve(touched.size());
      for (Code tc : touched) {
        list.emplace_back(tcol.code_to_value[static_cast<size_t>(tc)],
                          counts[static_cast<size_t>(tc)]);
        counts[static_cast<size_t>(tc)] = 0;
      }
      touched.clear();
      // Ascending by value, matching the row build's deterministic order.
      std::sort(list.begin(), list.end());
      entries += list.size();
    }
    task_entries[task] = entries;
  };

  if (pool != nullptr && tasks.size() > 1) {
    pool->ParallelFor(tasks.size(), build_pair);
  } else {
    for (size_t i = 0; i < tasks.size(); ++i) build_pair(i);
  }
  for (size_t e : task_entries) stats.num_pair_entries_ += e;
  return stats;
}

void CooccurrenceStats::AppendRows(const Table& table,
                                   const std::vector<AttrId>& attrs,
                                   size_t first_row) {
  HOLO_CHECK(table.schema().num_attrs() == num_attrs_);
  HOLO_CHECK(table.dict().size() < (1ULL << kValueBits));
  for (size_t t = first_row; t < table.num_rows(); ++t) {
    for (AttrId a : attrs) {
      ValueId v = table.Get(static_cast<TupleId>(t), a);
      if (v == Dictionary::kNull) continue;
      ++value_counts_[KeyAV(a, v)];
      for (AttrId a_ctx : attrs) {
        if (a_ctx == a) continue;
        ValueId v_ctx = table.Get(static_cast<TupleId>(t), a_ctx);
        if (v_ctx == Dictionary::kNull) continue;
        auto& list = pair_index_[static_cast<size_t>(a) * num_attrs_ +
                                 static_cast<size_t>(a_ctx)]
                         .by_ctx[v_ctx];
        auto it =
            std::lower_bound(list.begin(), list.end(), std::make_pair(v, 0));
        if (it != list.end() && it->first == v) {
          ++it->second;
        } else {
          list.insert(it, {v, 1});
          ++num_pair_entries_;
        }
      }
    }
  }
  for (AttrId a : attrs) {
    domains_[static_cast<size_t>(a)] = table.ActiveDomain(a);
  }
}

int CooccurrenceStats::PairCount(AttrId a, ValueId v, AttrId a_ctx,
                                 ValueId v_ctx) const {
  const auto& list = CooccurringValues(a, a_ctx, v_ctx);
  auto it = std::lower_bound(list.begin(), list.end(), std::make_pair(v, 0));
  return (it != list.end() && it->first == v) ? it->second : 0;
}

int CooccurrenceStats::Count(AttrId a, ValueId v) const {
  auto it = value_counts_.find(KeyAV(a, v));
  return it == value_counts_.end() ? 0 : it->second;
}

double CooccurrenceStats::CondProb(AttrId a, ValueId v, AttrId a_ctx,
                                   ValueId v_ctx) const {
  int ctx_count = Count(a_ctx, v_ctx);
  if (ctx_count == 0) return 0.0;
  return static_cast<double>(PairCount(a, v, a_ctx, v_ctx)) /
         static_cast<double>(ctx_count);
}

const std::vector<std::pair<ValueId, int>>&
CooccurrenceStats::CooccurringValues(AttrId a, AttrId a_ctx,
                                     ValueId v_ctx) const {
  static const std::vector<std::pair<ValueId, int>> kEmpty;
  const auto& index = pair_index_[static_cast<size_t>(a) * num_attrs_ +
                                  static_cast<size_t>(a_ctx)];
  auto it = index.by_ctx.find(v_ctx);
  if (it == index.by_ctx.end()) return kEmpty;
  return it->second;
}

const std::vector<ValueId>& CooccurrenceStats::Domain(AttrId a) const {
  return domains_[static_cast<size_t>(a)];
}

}  // namespace holoclean
