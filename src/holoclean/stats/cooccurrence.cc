#include "holoclean/stats/cooccurrence.h"

#include <algorithm>

#include "holoclean/util/logging.h"

namespace holoclean {

namespace {
constexpr uint64_t kValueBits = 24;
constexpr uint64_t kValueMask = (1ULL << kValueBits) - 1;
}  // namespace

uint64_t CooccurrenceStats::PairKey(AttrId a, ValueId v, AttrId a_ctx,
                                    ValueId v_ctx) const {
  // Layout: [a:8][a_ctx:8][v:24][v_ctx:24]. Checked at build time.
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 56) |
         (static_cast<uint64_t>(static_cast<uint32_t>(a_ctx)) << 48) |
         ((static_cast<uint64_t>(static_cast<uint32_t>(v)) & kValueMask)
          << kValueBits) |
         (static_cast<uint64_t>(static_cast<uint32_t>(v_ctx)) & kValueMask);
}

CooccurrenceStats CooccurrenceStats::Build(const Table& table,
                                           const std::vector<AttrId>& attrs) {
  CooccurrenceStats stats;
  size_t num_attrs = table.schema().num_attrs();
  stats.num_attrs_ = num_attrs;
  HOLO_CHECK(num_attrs < 256);
  HOLO_CHECK(table.dict().size() < (1ULL << kValueBits));
  stats.pair_index_.resize(num_attrs * num_attrs);
  stats.domains_.resize(num_attrs);

  for (AttrId a : attrs) {
    for (ValueId v : table.Column(a)) {
      if (v == Dictionary::kNull) continue;
      ++stats.value_counts_[KeyAV(a, v)];
    }
    stats.domains_[static_cast<size_t>(a)] = table.ActiveDomain(a);
  }

  for (size_t t = 0; t < table.num_rows(); ++t) {
    for (AttrId a : attrs) {
      ValueId v = table.Get(static_cast<TupleId>(t), a);
      if (v == Dictionary::kNull) continue;
      for (AttrId a_ctx : attrs) {
        if (a_ctx == a) continue;
        ValueId v_ctx = table.Get(static_cast<TupleId>(t), a_ctx);
        if (v_ctx == Dictionary::kNull) continue;
        ++stats.pair_counts_[stats.PairKey(a, v, a_ctx, v_ctx)];
      }
    }
  }

  // Build the per-context index from the flat pair counts.
  for (const auto& [key, count] : stats.pair_counts_) {
    AttrId a = static_cast<AttrId>(key >> 56);
    AttrId a_ctx = static_cast<AttrId>((key >> 48) & 0xFF);
    ValueId v = static_cast<ValueId>((key >> kValueBits) & kValueMask);
    ValueId v_ctx = static_cast<ValueId>(key & kValueMask);
    auto& index = stats.pair_index_[static_cast<size_t>(a) * num_attrs +
                                    static_cast<size_t>(a_ctx)];
    index.by_ctx[v_ctx].emplace_back(v, count);
  }
  // Deterministic ordering for reproducible candidate generation.
  for (auto& index : stats.pair_index_) {
    for (auto& [ctx, values] : index.by_ctx) {
      std::sort(values.begin(), values.end());
    }
  }
  return stats;
}

int CooccurrenceStats::PairCount(AttrId a, ValueId v, AttrId a_ctx,
                                 ValueId v_ctx) const {
  auto it = pair_counts_.find(PairKey(a, v, a_ctx, v_ctx));
  return it == pair_counts_.end() ? 0 : it->second;
}

int CooccurrenceStats::Count(AttrId a, ValueId v) const {
  auto it = value_counts_.find(KeyAV(a, v));
  return it == value_counts_.end() ? 0 : it->second;
}

double CooccurrenceStats::CondProb(AttrId a, ValueId v, AttrId a_ctx,
                                   ValueId v_ctx) const {
  int ctx_count = Count(a_ctx, v_ctx);
  if (ctx_count == 0) return 0.0;
  return static_cast<double>(PairCount(a, v, a_ctx, v_ctx)) /
         static_cast<double>(ctx_count);
}

const std::vector<std::pair<ValueId, int>>&
CooccurrenceStats::CooccurringValues(AttrId a, AttrId a_ctx,
                                     ValueId v_ctx) const {
  static const std::vector<std::pair<ValueId, int>> kEmpty;
  const auto& index = pair_index_[static_cast<size_t>(a) * num_attrs_ +
                                  static_cast<size_t>(a_ctx)];
  auto it = index.by_ctx.find(v_ctx);
  if (it == index.by_ctx.end()) return kEmpty;
  return it->second;
}

const std::vector<ValueId>& CooccurrenceStats::Domain(AttrId a) const {
  return domains_[static_cast<size_t>(a)];
}

}  // namespace holoclean
