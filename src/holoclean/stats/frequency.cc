#include "holoclean/stats/frequency.h"

#include <algorithm>

namespace holoclean {

FrequencyStats FrequencyStats::Build(const Table& table) {
  FrequencyStats stats;
  stats.num_rows_ = table.num_rows();
  stats.counts_.resize(table.schema().num_attrs());
  // Counting pass over the column store's per-code occupancy counts: one
  // entry per distinct value present (including NULL), instead of one hash
  // update per cell. Identical to counting the rows directly.
  const ColumnStore& store = table.store();
  for (size_t a = 0; a < table.schema().num_attrs(); ++a) {
    auto& counter = stats.counts_[a];
    const ColumnStore::Column& col = store.column(a);
    counter.reserve(col.num_codes());
    for (size_t c = 0; c < col.num_codes(); ++c) {
      if (col.code_counts[c] > 0) {
        counter.emplace(col.code_to_value[c],
                        static_cast<int>(col.code_counts[c]));
      }
    }
  }
  return stats;
}

int FrequencyStats::Count(AttrId a, ValueId v) const {
  const auto& counter = counts_[static_cast<size_t>(a)];
  auto it = counter.find(v);
  return it == counter.end() ? 0 : it->second;
}

double FrequencyStats::Probability(AttrId a, ValueId v) const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(Count(a, v)) / static_cast<double>(num_rows_);
}

std::vector<std::pair<ValueId, int>> FrequencyStats::SortedCounts(
    AttrId a) const {
  const auto& counter = counts_[static_cast<size_t>(a)];
  std::vector<std::pair<ValueId, int>> out(counter.begin(), counter.end());
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.second != y.second ? x.second > y.second : x.first < y.first;
  });
  return out;
}

ValueId FrequencyStats::Mode(AttrId a) const {
  auto sorted = SortedCounts(a);
  return sorted.empty() ? Dictionary::kNull : sorted.front().first;
}

}  // namespace holoclean
