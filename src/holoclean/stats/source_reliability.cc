#include "holoclean/stats/source_reliability.h"

#include <algorithm>

namespace holoclean {

SourceReliability SourceReliability::Estimate(const Table& table,
                                              AttrId key_attr,
                                              AttrId source_attr,
                                              Options options) {
  // Group tuple ids by entity key.
  std::unordered_map<ValueId, std::vector<TupleId>> groups;
  for (size_t t = 0; t < table.num_rows(); ++t) {
    ValueId key = table.Get(static_cast<TupleId>(t), key_attr);
    if (key == Dictionary::kNull) continue;
    groups[key].push_back(static_cast<TupleId>(t));
  }

  std::unordered_map<ValueId, double> reliability;
  for (size_t t = 0; t < table.num_rows(); ++t) {
    ValueId src = table.Get(static_cast<TupleId>(t), source_attr);
    reliability.emplace(src, options.initial);
  }

  size_t num_attrs = table.schema().num_attrs();
  for (int round = 0; round < options.iterations; ++round) {
    std::unordered_map<ValueId, double> agree;
    std::unordered_map<ValueId, double> total;
    for (const auto& [key, tids] : groups) {
      if (tids.size() < 2) continue;  // Singletons carry no conflict signal.
      for (size_t a = 0; a < num_attrs; ++a) {
        AttrId attr = static_cast<AttrId>(a);
        if (attr == key_attr || attr == source_attr) continue;
        // Reliability-weighted vote for the entity's true value.
        std::unordered_map<ValueId, double> votes;
        for (TupleId t : tids) {
          ValueId v = table.Get(t, attr);
          if (v == Dictionary::kNull) continue;
          votes[v] += reliability[table.Get(t, source_attr)];
        }
        if (votes.empty()) continue;
        ValueId truth = Dictionary::kNull;
        double best = -1.0;
        for (const auto& [v, score] : votes) {
          if (score > best || (score == best && v < truth)) {
            truth = v;
            best = score;
          }
        }
        for (TupleId t : tids) {
          ValueId v = table.Get(t, attr);
          if (v == Dictionary::kNull) continue;
          ValueId src = table.Get(t, source_attr);
          total[src] += 1.0;
          if (v == truth) agree[src] += 1.0;
        }
      }
    }
    for (auto& [src, r] : reliability) {
      auto it = total.find(src);
      if (it == total.end()) continue;
      double hits = 0.0;
      auto ag = agree.find(src);
      if (ag != agree.end()) hits = ag->second;
      r = (hits + options.smoothing) / (it->second + 2.0 * options.smoothing);
    }
  }

  SourceReliability out;
  out.reliability_ = std::move(reliability);
  return out;
}

double SourceReliability::Get(ValueId source) const {
  auto it = reliability_.find(source);
  return it == reliability_.end() ? 0.5 : it->second;
}

std::vector<std::pair<ValueId, double>> SourceReliability::All() const {
  std::vector<std::pair<ValueId, double>> out(reliability_.begin(),
                                              reliability_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace holoclean
