#include "holoclean/stats/numeric.h"

#include <algorithm>
#include <cmath>

#include "holoclean/util/string_util.h"

namespace holoclean {

NumericProfile ProfileNumeric(const Table& table, AttrId a) {
  NumericProfile profile;
  std::vector<double> values;
  for (ValueId v : table.Column(a)) {
    if (v == Dictionary::kNull) continue;
    const std::string& s = table.dict().GetString(v);
    if (IsNumeric(s)) {
      values.push_back(ParseDoubleOr(s, 0.0));
    } else {
      ++profile.non_numeric_count;
    }
  }
  profile.numeric_count = values.size();
  if (values.empty()) return profile;

  double sum = 0.0;
  for (double v : values) sum += v;
  profile.mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - profile.mean) * (v - profile.mean);
  profile.stddev = std::sqrt(ss / static_cast<double>(values.size()));

  std::sort(values.begin(), values.end());
  profile.median = values[values.size() / 2];
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - profile.median));
  std::sort(deviations.begin(), deviations.end());
  profile.mad = 1.4826 * deviations[deviations.size() / 2];
  return profile;
}

}  // namespace holoclean
