#include "holoclean/util/memory.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace holoclean {

namespace {

/// Reads a "VmXXX:  <kB> kB" field from /proc/self/status. Returns 0 when
/// the file or the field is missing (non-procfs platforms).
size_t ProcStatusKb(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 &&
        line[field_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &value) == 1) {
        kb = static_cast<size_t>(value);
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

size_t CurrentRssBytes() { return ProcStatusKb("VmRSS") * 1024; }

size_t PeakRssBytes() {
  size_t kb = ProcStatusKb("VmHWM");
  if (kb != 0) return kb * 1024;
  // Portable fallback: ru_maxrss is in kilobytes on Linux.
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    return static_cast<size_t>(usage.ru_maxrss) * 1024;
  }
  return 0;
}

}  // namespace holoclean
