#ifndef HOLOCLEAN_UTIL_FAILPOINT_H_
#define HOLOCLEAN_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "holoclean/util/status.h"

namespace holoclean {

/// Deterministic fault injection for the paths that can fail in
/// production: frame I/O, accept/dispatch, snapshot save/restore,
/// spill/restore, and job execution. Each such path declares a *named
/// site* (HOLO_FAILPOINT / HOLO_FAILPOINT_EVAL); tests, the CI smoke
/// flow, and ad-hoc debugging arm sites with a profile string, and the
/// site then fires a configured fault on a configured trigger — so every
/// "hope it never happens" branch gets a test that makes it happen, on
/// demand, reproducibly.
///
/// Profile grammar (';'-separated entries):
///
///   site '=' trigger '/' action
///
///   trigger := 'on:' N          fire exactly on the Nth hit (1-based)
///            | 'after:' N       fire on every hit past the Nth
///            | 'p:' P ':' SEED  seeded per-hit Bernoulli(P) — the fire
///                               pattern is a pure function of the seed
///                               and the site's hit sequence
///            | 'always'         fire on every hit
///
///   action  := 'error' [':' code]  return an injected Status; `code` is
///                                  one of internal (default), parse,
///                                  not_found, overloaded, draining,
///                                  deadline — the latter four carry the
///                                  wire protocol's message prefixes
///            | 'delay:' MS         sleep MS milliseconds, then proceed
///            | 'slice:' N          byte-slicing hint for I/O sites: the
///                                  site caps each syscall at N bytes
///                                  (exercises short-read/write loops)
///
/// Example:
///   "engine.spill.save=always/error;serve.frame.corrupt_write=on:2/error"
///
/// When no site is armed — the production configuration — a site check is
/// a single relaxed atomic load and branch; with HOLOCLEAN_NO_FAILPOINTS
/// defined it compiles away entirely. All trigger state is deterministic:
/// per-site hit counters and seeded RNG streams, never wall-clock or
/// thread identity.
class Failpoints {
 public:
  enum class Action { kError, kDelay, kSlice };

  /// One firing of a site: what the site should do.
  struct Fire {
    Action action = Action::kError;
    Status error;          ///< kError: the status to inject.
    int delay_ms = 0;      ///< kDelay: how long to sleep.
    size_t slice_bytes = 0;  ///< kSlice: per-syscall byte cap.
  };

  /// Counters of one site (for tests and explain_status).
  struct SiteStats {
    std::string site;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  /// The process-wide instance every HOLO_FAILPOINT site consults. On
  /// first access it applies the HOLOCLEAN_FAILPOINTS environment
  /// variable, so any binary in the repo can be fault-injected without a
  /// code change (a parse error in the env profile is logged and
  /// ignored).
  static Failpoints& Global();

  /// Replaces the active profile. An empty string clears everything.
  /// On a parse error nothing is changed.
  Status Configure(const std::string& profile);

  /// Disarms every site and resets all counters.
  void Clear();

  /// True when at least one site is armed (the slow-path gate).
  bool active() const {
    return active_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Records a hit on `site` and returns the configured fault when the
  /// site's trigger fires, nullopt otherwise. Delay actions are NOT
  /// slept here — the caller decides (Inject() sleeps them).
  std::optional<Fire> Evaluate(const char* site);

  /// Convenience for error/delay sites: evaluates, sleeps delay actions,
  /// and returns the injected Status for error actions (OK otherwise —
  /// including for slice actions, which only I/O-loop sites interpret).
  Status Inject(const char* site);

  /// Counters for one site (zeros when the site was never hit).
  SiteStats stats(const std::string& site) const;

  /// Counters for every site hit or armed since the last Clear().
  std::vector<SiteStats> AllStats() const;

 private:
  Failpoints();

  struct SiteState;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SiteState>> sites_;  ///< Guarded by mu_.
  std::atomic<uint64_t> active_sites_{0};
};

/// RAII profile for tests: arms the global instance on construction and
/// fully clears it on destruction, so no test leaks armed sites into its
/// neighbors. Aborts on a malformed profile (a test bug, not a data
/// error).
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& profile);
  ~ScopedFailpoints() { Failpoints::Global().Clear(); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

#ifndef HOLOCLEAN_NO_FAILPOINTS
/// Injects a configured fault at `site`: evaluates the site only when any
/// failpoint is armed, sleeps delay actions, and yields the injected
/// Status for error actions. Use as:
///   HOLO_RETURN_NOT_OK(HOLO_FAILPOINT("engine.spill.save"));
#define HOLO_FAILPOINT(site)                                  \
  (::holoclean::Failpoints::Global().active()                 \
       ? ::holoclean::Failpoints::Global().Inject(site)       \
       : ::holoclean::Status::OK())
/// Full evaluation for sites that interpret the Fire themselves
/// (corruption, truncation, byte slicing).
#define HOLO_FAILPOINT_EVAL(site)                             \
  (::holoclean::Failpoints::Global().active()                 \
       ? ::holoclean::Failpoints::Global().Evaluate(site)     \
       : std::optional<::holoclean::Failpoints::Fire>())
#else
#define HOLO_FAILPOINT(site) ::holoclean::Status::OK()
#define HOLO_FAILPOINT_EVAL(site) \
  std::optional<::holoclean::Failpoints::Fire>()
#endif

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_FAILPOINT_H_
