#include "holoclean/util/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

namespace holoclean {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsNumeric(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc() && ptr == end && std::isfinite(value);
}

double ParseDoubleOr(std::string_view s, double fallback) {
  s = StripWhitespace(s);
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || !std::isfinite(value)) return fallback;
  return value;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row dynamic program; a is the shorter string.
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t insert_or_delete = std::min(row[i], row[i - 1]) + 1;
      size_t substitute = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min(insert_or_delete, substitute);
    }
  }
  return row[a.size()];
}

double Similarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

std::string NormalizeForMatch(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_space = false;
  for (char raw : std::string(StripWhitespace(s))) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isspace(c)) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(static_cast<char>(std::tolower(c)));
  }
  return out;
}

}  // namespace holoclean
