#ifndef HOLOCLEAN_UTIL_STATUS_H_
#define HOLOCLEAN_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace holoclean {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kInternal,
  kNotImplemented,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value used for all recoverable errors in the library.
/// The library does not throw exceptions across public API boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value) : repr_(std::move(value)) {}           // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {}    // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK when a value is held, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Requires ok(). Accessing the value of an error result aborts.
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::move(std::get<T>(repr_)); }

  /// Returns the held value or `fallback` when this is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK status to the caller.
#define HOLO_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::holoclean::Status _st = (expr);        \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define HOLO_ASSIGN_OR_RETURN(lhs, expr)     \
  auto lhs##_result = (expr);                \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto lhs = std::move(lhs##_result).value()

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_STATUS_H_
