#include "holoclean/util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace holoclean {

void JsonValue::Set(std::string_view key, JsonValue v) {
  type_ = Type::kObject;
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(v));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

double JsonValue::GetDouble(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

void JsonValue::EscapeTo(std::string_view raw, std::string* out) {
  out->push_back('"');
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

namespace {

void DumpNumber(double v, std::string* out) {
  // Integral doubles (the counts, ids, and byte sizes that dominate the
  // report schema) print without a fraction so the golden files stay
  // readable; everything else gets round-trip precision.
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  } else {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    std::snprintf(buf, sizeof(buf), "null");
  }
  out->append(buf);
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      DumpNumber(number_, out);
      break;
    case Type::kString:
      EscapeTo(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        items_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        EscapeTo(members_[i].first, out);
        out->push_back(':');
        members_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// --- Parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    HOLO_ASSIGN_OR_RETURN(value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError("json: trailing characters at offset " +
                                std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > 64) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        HOLO_ASSIGN_OR_RETURN(s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue::Bool(true);
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue::Bool(false);
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue::Null();
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      HOLO_ASSIGN_OR_RETURN(key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      HOLO_ASSIGN_OR_RETURN(value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      HOLO_ASSIGN_OR_RETURN(value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two separate 3-byte sequences; the library never emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return Error("invalid number");
    }
    return JsonValue::Number(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace holoclean
