#ifndef HOLOCLEAN_UTIL_UNION_FIND_H_
#define HOLOCLEAN_UTIL_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace holoclean {

/// Disjoint-set forest with path compression and union by size.
/// Used to form connected components of the conflict hypergraph
/// (tuple partitioning, paper Algorithm 3).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  /// Representative of x's component.
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the components of a and b. Returns true if they were distinct.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return true;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Size of the component containing x.
  size_t ComponentSize(size_t x) { return size_[Find(x)]; }

  size_t num_elements() const { return parent_.size(); }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_UNION_FIND_H_
