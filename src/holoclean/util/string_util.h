#ifndef HOLOCLEAN_UTIL_STRING_UTIL_H_
#define HOLOCLEAN_UTIL_STRING_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace holoclean {

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing (data values in this library are ASCII by convention).
std::string ToLower(std::string_view s);

/// True when `s` parses fully as a finite double.
bool IsNumeric(std::string_view s);

/// Parses `s` as double; returns `fallback` when not numeric.
double ParseDoubleOr(std::string_view s, double fallback);

/// Levenshtein edit distance between `a` and `b`.
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalized similarity in [0,1]: 1 - dist/max(|a|,|b|); 1.0 for two empty
/// strings. Used for the ≈ (similarity) predicate in denial constraints and
/// for approximate dictionary matching.
double Similarity(std::string_view a, std::string_view b);

/// Case/whitespace-insensitive canonical form used by the similarity matcher.
std::string NormalizeForMatch(std::string_view s);

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_STRING_UTIL_H_
