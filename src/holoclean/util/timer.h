#ifndef HOLOCLEAN_UTIL_TIMER_H_
#define HOLOCLEAN_UTIL_TIMER_H_

#include <chrono>

namespace holoclean {

/// Wall-clock stopwatch used for the paper's runtime experiments
/// (Table 4, Figures 4 and 5).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_TIMER_H_
