#include "holoclean/util/csv.h"

#include <fstream>
#include <sstream>

namespace holoclean {

namespace {

// Parses one record starting at *pos; advances *pos past the record and its
// line terminator. Returns false at end of input.
bool ParseRecord(std::string_view text, size_t* pos,
                 std::vector<std::string>* fields, Status* error) {
  if (*pos >= text.size()) return false;
  fields->clear();
  std::string field;
  bool in_quotes = false;
  // True right after a closing quote: the only legal next characters are a
  // field separator, a record terminator, or end of input.
  bool after_quoted = false;
  size_t i = *pos;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          after_quoted = true;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else {
      if (c == ',') {
        fields->push_back(std::move(field));
        field.clear();
        after_quoted = false;
        ++i;
      } else if (c == '\n' || c == '\r') {
        fields->push_back(std::move(field));
        if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
        *pos = i + 1;
        return true;
      } else if (after_quoted) {
        *error = Status::ParseError("character after closing quote");
        return false;
      } else if (c == '"') {
        if (!field.empty()) {
          *error = Status::ParseError("quote inside unquoted field");
          return false;
        }
        in_quotes = true;
        ++i;
      } else {
        field.push_back(c);
        ++i;
      }
    }
  }
  if (in_quotes) {
    *error = Status::ParseError("unterminated quoted field");
    return false;
  }
  fields->push_back(std::move(field));
  *pos = text.size();
  return true;
}

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void AppendField(std::string* out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<CsvDocument> ParseCsv(std::string_view text) {
  CsvDocument doc;
  Status error;
  size_t pos = 0;
  std::vector<std::string> fields;
  if (!ParseRecord(text, &pos, &fields, &error)) {
    if (!error.ok()) return error;
    return Status::ParseError("empty CSV input");
  }
  doc.header = std::move(fields);
  while (true) {
    std::vector<std::string> row;
    if (!ParseRecord(text, &pos, &row, &error)) {
      if (!error.ok()) return error;
      break;
    }
    // Tolerate a trailing blank line.
    if (row.size() == 1 && row[0].empty() && pos >= text.size()) break;
    if (row.size() != doc.header.size()) {
      std::ostringstream msg;
      msg << "row " << doc.rows.size() + 1 << " has " << row.size()
          << " fields, header has " << doc.header.size();
      return Status::ParseError(msg.str());
    }
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, row[i]);
    }
    out.push_back('\n');
  };
  write_row(doc.header);
  for (const auto& row : doc.rows) write_row(row);
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open file for writing: " + path);
  out << WriteCsv(doc);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace holoclean
