#include "holoclean/util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace holoclean {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelChunks(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = threads_.size();
  if (workers <= 1 || n < 2 * workers) {
    fn(0, n);
    return;
  }
  size_t chunk = (n + workers - 1) / workers;
  std::atomic<size_t> remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t launched = 0;
  for (size_t begin = 0; begin < n; begin += chunk) {
    ++launched;
  }
  remaining.store(launched);
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    Submit([&, begin, end] {
      fn(begin, end);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  ParallelChunks(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace holoclean
