#include "holoclean/util/thread_pool.h"

#include <algorithm>

#include "holoclean/util/failpoint.h"

namespace holoclean {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    // pool.task is delay-only by convention: it stalls a worker between
    // dequeue and execution (a starved/oversubscribed pool) without
    // changing what runs — tasks here have no error channel to inject.
    (void)HOLO_FAILPOINT("pool.task");
    task();
  }
}

bool TaskGroup::RunOne(const std::shared_ptr<State>& state) {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->pending.empty()) return false;
    task = std::move(state->pending.front());
    state->pending.pop_front();
    ++state->running;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    --state->running;
    if (state->running == 0 && state->pending.empty()) {
      state->done.notify_all();
    }
  }
  return true;
}

void TaskGroup::Submit(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->pending.push_back(std::move(fn));
  }
  // One pool helper per task: each helper claims at most one pending task,
  // so helpers left behind by a group the caller already drained find an
  // empty list and exit without touching anything the caller owned.
  pool_->Enqueue([state = state_] { RunOne(state); });
}

void TaskGroup::Wait() {
  while (RunOne(state_)) {
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done.wait(lock, [this] {
    return state_->running == 0 && state_->pending.empty();
  });
}

void ThreadPool::ParallelChunks(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = threads_.size();
  if (workers <= 1 || n < 2 * workers) {
    fn(0, n);
    return;
  }
  size_t chunk = (n + workers - 1) / workers;
  TaskGroup group(this);
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    group.Submit([&fn, begin, end] { fn(begin, end); });
  }
  group.Wait();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  ParallelChunks(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace holoclean
