#ifndef HOLOCLEAN_UTIL_MEMORY_H_
#define HOLOCLEAN_UTIL_MEMORY_H_

#include <cstddef>

namespace holoclean {

/// Resident set size of the process right now, in bytes. 0 when the
/// platform offers no cheap way to read it.
size_t CurrentRssBytes();

/// High-water mark of the process's resident set size, in bytes (Linux
/// VmHWM, with a getrusage fallback). Monotone over the process lifetime:
/// sampled after each pipeline stage, the increase over the previous
/// sample is memory that stage newly touched. 0 when unavailable.
size_t PeakRssBytes();

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_MEMORY_H_
