#ifndef HOLOCLEAN_UTIL_CSV_H_
#define HOLOCLEAN_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "holoclean/util/status.h"

namespace holoclean {

/// A parsed CSV document: a header row plus data rows, all as strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses RFC-4180-style CSV text: comma separated, double-quote quoting,
/// doubled quotes as escapes, LF or CRLF line endings. The first record is
/// the header. Every data row must have the same arity as the header.
Result<CsvDocument> ParseCsv(std::string_view text);

/// Serializes a document back to CSV, quoting fields that need it.
std::string WriteCsv(const CsvDocument& doc);

/// Reads and parses a CSV file from disk.
Result<CsvDocument> ReadCsvFile(const std::string& path);

/// Writes a document to disk.
Status WriteCsvFile(const std::string& path, const CsvDocument& doc);

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_CSV_H_
