#ifndef HOLOCLEAN_UTIL_RNG_H_
#define HOLOCLEAN_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace holoclean {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// Every randomized component in the library (error injection, SGD shuffling,
/// Gibbs sampling) takes an explicit seed and draws from this generator so
/// whole experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Below(uint64_t bound) {
    // Debiased via rejection sampling on the top of the range.
    uint64_t threshold = (0ULL - bound) % bound;
    while (true) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool Chance(double p) { return Uniform() < p; }

  /// Samples an index proportionally to non-negative `weights`.
  /// Falls back to uniform when all weights are zero. Requires non-empty.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return Below(weights.size());
    double r = Uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = Below(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks a uniformly random element. Requires non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Below(items.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_RNG_H_
