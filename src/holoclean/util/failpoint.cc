#include "holoclean/util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "holoclean/util/logging.h"
#include "holoclean/util/rng.h"
#include "holoclean/util/string_util.h"

namespace holoclean {

namespace {

std::string Trim(std::string_view s) {
  return std::string(StripWhitespace(s));
}

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

enum class Trigger { kOn, kAfter, kProbability, kAlways };

struct Config {
  Trigger trigger = Trigger::kAlways;
  uint64_t trigger_n = 0;    // on:N / after:N
  double probability = 0.0;  // p:P:SEED
  uint64_t seed = 0;
  Failpoints::Action action = Failpoints::Action::kError;
  std::string error_code;  // error:<code>
  int delay_ms = 0;
  size_t slice_bytes = 0;
};

Status InjectedError(const std::string& code, const std::string& site) {
  const std::string at = " (injected at " + site + ")";
  if (code.empty() || code == "internal") {
    return Status::Internal("injected failure" + at);
  }
  if (code == "parse") return Status::ParseError("injected corruption" + at);
  if (code == "not_found") return Status::NotFound("injected miss" + at);
  // The serve-layer codes ride on kOutOfRange with the message prefixes
  // protocol.cc keys its error-code mapping on.
  if (code == "overloaded") {
    return Status::OutOfRange("overloaded: injected" + at);
  }
  if (code == "draining") {
    return Status::OutOfRange("draining: injected" + at);
  }
  if (code == "deadline") {
    return Status::OutOfRange("deadline_exceeded: injected" + at);
  }
  return Status::Internal("injected failure (unknown code '" + code + "')" +
                          at);
}

Status ParseCount(const std::string& text, uint64_t* out) {
  if (text.empty()) return Status::ParseError("missing count");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::ParseError("bad count '" + text + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return Status::OK();
}

Status ParseEntry(const std::string& entry, std::string* site, Config* config) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::ParseError("failpoint entry '" + entry +
                              "' is not site=trigger/action");
  }
  *site = Trim(entry.substr(0, eq));
  std::string rest = Trim(entry.substr(eq + 1));
  size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    return Status::ParseError("failpoint entry '" + entry +
                              "' is missing the /action part");
  }
  std::string trigger = Trim(rest.substr(0, slash));
  std::string action = Trim(rest.substr(slash + 1));

  if (trigger == "always") {
    config->trigger = Trigger::kAlways;
  } else if (StartsWith(trigger, "on:")) {
    config->trigger = Trigger::kOn;
    HOLO_RETURN_NOT_OK(ParseCount(trigger.substr(3), &config->trigger_n));
    if (config->trigger_n == 0) {
      return Status::ParseError("on:N is 1-based; got on:0");
    }
  } else if (StartsWith(trigger, "after:")) {
    config->trigger = Trigger::kAfter;
    HOLO_RETURN_NOT_OK(ParseCount(trigger.substr(6), &config->trigger_n));
  } else if (StartsWith(trigger, "p:")) {
    config->trigger = Trigger::kProbability;
    std::string spec = trigger.substr(2);
    size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("p trigger needs p:P:SEED; got '" + trigger +
                                "'");
    }
    config->probability = ParseDoubleOr(spec.substr(0, colon), -1.0);
    if (config->probability < 0.0 || config->probability > 1.0) {
      return Status::ParseError("probability in '" + trigger +
                                "' is not a number in [0,1]");
    }
    HOLO_RETURN_NOT_OK(ParseCount(spec.substr(colon + 1), &config->seed));
  } else {
    return Status::ParseError("unknown failpoint trigger '" + trigger + "'");
  }

  if (action == "error" || StartsWith(action, "error:")) {
    config->action = Failpoints::Action::kError;
    if (StartsWith(action, "error:")) config->error_code = action.substr(6);
  } else if (StartsWith(action, "delay:")) {
    config->action = Failpoints::Action::kDelay;
    uint64_t ms = 0;
    HOLO_RETURN_NOT_OK(ParseCount(action.substr(6), &ms));
    config->delay_ms = static_cast<int>(ms);
  } else if (StartsWith(action, "slice:")) {
    config->action = Failpoints::Action::kSlice;
    uint64_t bytes = 0;
    HOLO_RETURN_NOT_OK(ParseCount(action.substr(6), &bytes));
    if (bytes == 0) return Status::ParseError("slice:N needs N >= 1");
    config->slice_bytes = static_cast<size_t>(bytes);
  } else {
    return Status::ParseError("unknown failpoint action '" + action + "'");
  }
  return Status::OK();
}

}  // namespace

struct Failpoints::SiteState {
  std::string site;
  bool armed = false;
  Config config;
  Rng rng{0};          // p:P:SEED stream; reseeded on every Configure().
  uint64_t hits = 0;   // Lifetime hits since Clear(), armed or not.
  uint64_t fires = 0;  // Hits where the trigger fired.
};

Failpoints& Failpoints::Global() {
  static Failpoints* instance = [] {
    auto* fp = new Failpoints();
    const char* env = std::getenv("HOLOCLEAN_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      Status status = fp->Configure(env);
      if (!status.ok()) {
        HOLO_LOG(kWarning) << "ignoring HOLOCLEAN_FAILPOINTS: "
                           << status.ToString();
      }
    }
    return fp;
  }();
  return *instance;
}

Failpoints::Failpoints() = default;

Status Failpoints::Configure(const std::string& profile) {
  // Parse the whole profile before touching live state, so a bad entry
  // can't leave a half-applied mix of old and new sites.
  std::vector<std::pair<std::string, Config>> parsed;
  for (const std::string& raw : Split(profile, ';')) {
    std::string entry = Trim(raw);
    if (entry.empty()) continue;
    std::string site;
    Config config;
    HOLO_RETURN_NOT_OK(ParseEntry(entry, &site, &config));
    parsed.emplace_back(std::move(site), config);
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (auto& state : sites_) {
    state->armed = false;
    state->hits = 0;
    state->fires = 0;
  }
  for (auto& [site, config] : parsed) {
    SiteState* state = nullptr;
    for (auto& existing : sites_) {
      if (existing->site == site) {
        state = existing.get();
        break;
      }
    }
    if (state == nullptr) {
      sites_.push_back(std::make_unique<SiteState>());
      state = sites_.back().get();
      state->site = site;
    }
    state->armed = true;
    state->config = config;
    state->rng = Rng(config.seed);
  }
  active_sites_.store(parsed.size(), std::memory_order_relaxed);
  return Status::OK();
}

void Failpoints::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  active_sites_.store(0, std::memory_order_relaxed);
}

std::optional<Failpoints::Fire> Failpoints::Evaluate(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState* state = nullptr;
  for (auto& existing : sites_) {
    if (existing->site == site) {
      state = existing.get();
      break;
    }
  }
  if (state == nullptr || !state->armed) return std::nullopt;
  state->hits++;

  bool fired = false;
  switch (state->config.trigger) {
    case Trigger::kOn:
      fired = state->hits == state->config.trigger_n;
      break;
    case Trigger::kAfter:
      fired = state->hits > state->config.trigger_n;
      break;
    case Trigger::kProbability:
      fired = state->rng.Chance(state->config.probability);
      break;
    case Trigger::kAlways:
      fired = true;
      break;
  }
  if (!fired) return std::nullopt;
  state->fires++;

  Fire fire;
  fire.action = state->config.action;
  switch (state->config.action) {
    case Action::kError:
      fire.error = InjectedError(state->config.error_code, state->site);
      break;
    case Action::kDelay:
      fire.delay_ms = state->config.delay_ms;
      break;
    case Action::kSlice:
      fire.slice_bytes = state->config.slice_bytes;
      break;
  }
  return fire;
}

Status Failpoints::Inject(const char* site) {
  std::optional<Fire> fire = Evaluate(site);
  if (!fire.has_value()) return Status::OK();
  switch (fire->action) {
    case Action::kError:
      return fire->error;
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fire->delay_ms));
      return Status::OK();
    case Action::kSlice:
      return Status::OK();  // Only byte-loop sites interpret slicing.
  }
  return Status::OK();
}

Failpoints::SiteStats Failpoints::stats(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& state : sites_) {
    if (state->site == site) {
      return SiteStats{state->site, state->hits, state->fires};
    }
  }
  return SiteStats{site, 0, 0};
}

std::vector<Failpoints::SiteStats> Failpoints::AllStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteStats> all;
  all.reserve(sites_.size());
  for (const auto& state : sites_) {
    all.push_back(SiteStats{state->site, state->hits, state->fires});
  }
  return all;
}

ScopedFailpoints::ScopedFailpoints(const std::string& profile) {
  Status status = Failpoints::Global().Configure(profile);
  if (!status.ok()) {
    HOLO_LOG(kError) << "bad failpoint profile '" << profile
                     << "': " << status.ToString();
  }
  HOLO_CHECK(status.ok());
}

}  // namespace holoclean
