#ifndef HOLOCLEAN_UTIL_JSON_H_
#define HOLOCLEAN_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "holoclean/util/status.h"

namespace holoclean {

/// A parsed JSON document node: the wire currency of the serving tier
/// (serve/protocol) and the stable report serializer (io/report_json).
///
/// Objects preserve insertion order (a vector of key/value pairs, not a
/// map), so a value serializes byte-identically to how it was built —
/// the property the golden-file report schema and the wire protocol's
/// deterministic framing both rely on. Member lookup is linear; protocol
/// objects are small (tens of keys), so this is never hot.
///
/// Numbers are held as doubles. Integers up to 2^53 round-trip exactly,
/// which covers every count/byte/id the library serializes; Dump() prints
/// integral doubles without a fractional part and everything else with
/// enough digits (%.17g) to round-trip bit-exactly.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v) {
    JsonValue j;
    j.type_ = Type::kBool;
    j.bool_ = v;
    return j;
  }
  static JsonValue Number(double v) {
    JsonValue j;
    j.type_ = Type::kNumber;
    j.number_ = v;
    return j;
  }
  static JsonValue Number(uint64_t v) {
    return Number(static_cast<double>(v));
  }
  static JsonValue Number(int v) { return Number(static_cast<double>(v)); }
  static JsonValue String(std::string v) {
    JsonValue j;
    j.type_ = Type::kString;
    j.string_ = std::move(v);
    return j;
  }
  static JsonValue Array() {
    JsonValue j;
    j.type_ = Type::kArray;
    return j;
  }
  static JsonValue Object() {
    JsonValue j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; reading the wrong alternative returns the type's
  /// zero value (protocol code validates with the predicates above).
  bool AsBool() const { return is_bool() ? bool_ : false; }
  double AsDouble() const { return is_number() ? number_ : 0.0; }
  int64_t AsInt() const {
    return is_number() ? static_cast<int64_t>(number_) : 0;
  }
  const std::string& AsString() const {
    static const std::string kEmpty;
    return is_string() ? string_ : kEmpty;
  }

  // --- Arrays --------------------------------------------------------------

  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }
  size_t size() const {
    return is_array() ? items_.size() : is_object() ? members_.size() : 0;
  }

  // --- Objects -------------------------------------------------------------

  const std::vector<Member>& members() const { return members_; }

  /// Sets (or replaces) a member, keeping first-insertion order.
  void Set(std::string_view key, JsonValue v);

  /// Member value by key, or nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Convenience typed getters with defaults for protocol parsing.
  std::string GetString(std::string_view key,
                        const std::string& fallback = "") const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  // --- Serialization -------------------------------------------------------

  /// Compact deterministic serialization (no whitespace). Object members
  /// print in insertion order; doubles print integrally when integral,
  /// %.17g otherwise — the same input always yields the same bytes.
  std::string Dump() const;
  void DumpTo(std::string* out) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Depth is bounded (kMaxDepth) so a hostile wire payload cannot blow
  /// the stack.
  static Result<JsonValue> Parse(std::string_view text);

  /// Escapes a string into a JSON string literal, with surrounding quotes.
  static void EscapeTo(std::string_view raw, std::string* out);

 private:
  static constexpr int kMaxDepth = 64;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_JSON_H_
