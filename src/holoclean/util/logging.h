#ifndef HOLOCLEAN_UTIL_LOGGING_H_
#define HOLOCLEAN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace holoclean {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const std::string& message);

/// Stream-style log line: emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define HOLO_LOG(level)                                          \
  ::holoclean::internal::LogMessage(::holoclean::LogLevel::level)

/// Invariant check that aborts with a message; used for programming errors
/// (not data errors, which go through Status).
#define HOLO_CHECK(condition)                                              \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::holoclean::internal::EmitLog(::holoclean::LogLevel::kError,        \
                                     "CHECK failed: " #condition " at "    \
                                     __FILE__);                            \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_LOGGING_H_
