#ifndef HOLOCLEAN_UTIL_HASH_H_
#define HOLOCLEAN_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace holoclean {

/// splitmix64 finalizer; a fast, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Order-sensitive combination of two 64-bit hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

/// FNV-1a over bytes.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Hash functor for std::pair keys in unordered containers.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return static_cast<size_t>(
        HashCombine(static_cast<uint64_t>(std::hash<A>()(p.first)),
                    static_cast<uint64_t>(std::hash<B>()(p.second))));
  }
};

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_HASH_H_
