#ifndef HOLOCLEAN_UTIL_THREAD_POOL_H_
#define HOLOCLEAN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace holoclean {

/// A fixed-size worker pool for data-parallel sections (grounding,
/// violation detection, per-component Gibbs sweeps — the DimmWitted-style
/// parallelism the paper's inference engine relies on).
///
/// The pool is shareable: one pool (typically owned by an Engine) can serve
/// many sessions at once. Concurrent callers' sections interleave on the
/// FIFO task queue, and every blocking entry point participates in its own
/// work (see TaskGroup), so a caller never deadlocks waiting for workers
/// that are busy with other jobs — including when the caller itself *is* a
/// pool worker running a batch job.
///
/// All parallel entry points in the library are deterministic: work is
/// split into index ranges and any per-task randomness is seeded by the
/// task index, never by the executing thread.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (hardware concurrency when 0).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a fire-and-forget task. The destructor drains the queue, so
  /// every enqueued task runs exactly once. Tasks must not throw.
  void Enqueue(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n), distributed over the workers in
  /// contiguous chunks; blocks until all iterations complete. Executes
  /// inline when the pool has a single worker or n is small. The calling
  /// thread works on its own chunks while it waits, so concurrent
  /// sections from different sessions make progress on any pool size.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs fn(begin, end) over disjoint chunks covering [0, n).
  void ParallelChunks(size_t n,
                      const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool shutting_down_ = false;
};

/// A job-scoped group of tasks on a shared pool. Submitted tasks are
/// offered to the pool's workers, but Wait() (and the destructor) drains
/// the group's still-pending tasks on the calling thread too, so a group
/// completes even when every worker is busy with other jobs — the property
/// that makes one pool safely shareable across concurrent sessions and
/// lets batch jobs (which themselves run on pool workers) open nested
/// parallel sections without deadlock.
///
/// All group state lives on the heap behind a shared_ptr: helper tasks a
/// finished group left in the pool queue find an empty task list and
/// return without touching anything else, so a TaskGroup (and everything
/// its tasks captured) can be destroyed the moment Wait() returns.
class TaskGroup {
 public:
  /// `pool` may be null: tasks then run inline in Submit (the fully
  /// sequential configuration).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Adds a task to the group. Tasks must not throw.
  void Submit(std::function<void()> fn);

  /// Runs pending tasks on the calling thread until none remain, then
  /// blocks until tasks claimed by workers finish. On return every
  /// submitted task has completed.
  void Wait();

 private:
  struct State {
    std::mutex mutex;
    std::condition_variable done;
    std::deque<std::function<void()>> pending;
    size_t running = 0;
  };

  /// Claims and runs one pending task; returns false when none were
  /// pending. Static so pool-queue helpers outliving the group can share
  /// the heap state without referencing the TaskGroup object.
  static bool RunOne(const std::shared_ptr<State>& state);

  ThreadPool* pool_;
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_THREAD_POOL_H_
