#ifndef HOLOCLEAN_UTIL_THREAD_POOL_H_
#define HOLOCLEAN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace holoclean {

/// A fixed-size worker pool for data-parallel sections (grounding,
/// violation detection, per-component Gibbs sweeps — the DimmWitted-style
/// parallelism the paper's inference engine relies on).
///
/// All parallel entry points in the library are deterministic: work is
/// split into index ranges and any per-task randomness is seeded by the
/// task index, never by the executing thread.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (hardware concurrency when 0).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n), distributed over the workers in
  /// contiguous chunks; blocks until all iterations complete. Executes
  /// inline when the pool has a single worker or n is small.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs fn(begin, end) over disjoint chunks covering [0, n).
  void ParallelChunks(size_t n,
                      const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool shutting_down_ = false;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_UTIL_THREAD_POOL_H_
