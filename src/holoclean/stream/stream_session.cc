#include "holoclean/stream/stream_session.h"

#include <utility>

#include "holoclean/detect/violation_detector.h"
#include "holoclean/infer/learner.h"
#include "holoclean/model/compiled_graph.h"
#include "holoclean/model/domain_pruning.h"
#include "holoclean/model/grounding.h"
#include "holoclean/model/weight_initializer.h"
#include "holoclean/util/failpoint.h"
#include "holoclean/util/timer.h"

namespace holoclean {

StreamSession::StreamSession(Session* session, StreamOptions options)
    : session_(session), options_(options) {
  base_rows_ = session_->context().dataset->dirty().num_rows();
}

Result<Report> StreamSession::AppendRows(
    const std::vector<std::vector<std::string>>& rows,
    const std::vector<std::vector<std::string>>* clean_rows) {
  PipelineContext& ctx = session_->context();
  Table& dirty = ctx.dataset->dirty();
  const size_t arity = dirty.schema().num_attrs();
  for (const auto& row : rows) {
    if (row.size() != arity) {
      return Status::InvalidArgument("append row arity mismatch");
    }
  }
  if (clean_rows != nullptr) {
    if (!ctx.dataset->has_clean()) {
      return Status::InvalidArgument(
          "clean rows passed but the dataset has no clean table");
    }
    if (clean_rows->size() != rows.size()) {
      return Status::InvalidArgument("clean/dirty append size mismatch");
    }
    for (const auto& row : *clean_rows) {
      if (row.size() != arity) {
        return Status::InvalidArgument("append clean row arity mismatch");
      }
    }
  }
  if (rows.empty()) return session_->Run();

  Timer total_timer;
  StreamBatchStats batch;
  batch.rows = rows.size();

  // Nothing is mutated yet: an injected intern fault needs no rollback.
  HOLO_RETURN_NOT_OK(HOLO_FAILPOINT("stream.append.intern"));

  const size_t old_rows = dirty.num_rows();
  const size_t old_violations = ctx.violations.size();
  for (const auto& row : rows) dirty.AppendRow(row);
  const bool clean_appended = ctx.dataset->has_clean();
  if (clean_appended) {
    Table& clean = ctx.dataset->clean();
    for (size_t i = 0; i < rows.size(); ++i) {
      clean.AppendRow(clean_rows != nullptr ? (*clean_rows)[i] : rows[i]);
    }
  }
  auto rollback = [&]() {
    dirty.Truncate(old_rows);
    if (clean_appended) ctx.dataset->clean().Truncate(old_rows);
  };

  {
    Status st = HOLO_FAILPOINT("stream.append.detect");
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  // A session that never detected (or was invalidated back past detect)
  // has no cached artifacts to extend: fall back to a full run. The rows
  // stay appended even on error — the session is simply still invalid
  // from detect, exactly as before the batch.
  if (!session_->StageIsValid(StageId::kDetect)) {
    session_->Invalidate(StageId::kDetect);
    HOLO_ASSIGN_OR_RETURN(report, session_->Run());
    batch.full_run = true;
    batch.resync = true;
    base_rows_ = dirty.num_rows();
    stats_.appended_since_resync = 0;
    batch.pipeline_seconds = total_timer.Seconds();
    batch.new_violations = ctx.violations.size() > old_violations
                               ? ctx.violations.size() - old_violations
                               : 0;
    batch.total_seconds = total_timer.Seconds();
    stats_.appended_rows += rows.size();
    ++stats_.batches;
    stats_.total_seconds += batch.total_seconds;
    stats_.tuples_per_sec =
        stats_.total_seconds > 0.0
            ? static_cast<double>(stats_.appended_rows) / stats_.total_seconds
            : 0.0;
    stats_.last_batch = batch;
    return report;
  }

  // Exact delta detection over the blocks the new tuples touch, merged
  // over a copy of the cached violations so an injected commit fault can
  // still roll back to the pre-batch state.
  Timer detect_timer;
  ViolationDetector::Options dopt;
  dopt.sim_threshold = ctx.config.sim_threshold;
  dopt.pool = ctx.pool;
  dopt.columnar = ctx.config.columnar;
  ViolationDetector detector(&dirty, ctx.dcs, dopt);
  DeltaDetectResult delta = detector.DetectAppended(old_rows);
  DetectResult merged = ViolationDetector::MergeAppendDelta(
      ctx.violations, ctx.dcs->size(), std::move(delta));
  batch.detect_seconds = detect_timer.Seconds();

  {
    Status st = HOLO_FAILPOINT("stream.append.commit");
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  // Commit point: from here on the appended rows stay and the detect
  // artifacts are exactly what a full DetectStage over the grown table
  // would produce.
  ctx.attrs = ctx.dataset->RepairableAttrs();
  ctx.violations = std::move(merged.violations);
  ctx.noisy = ViolationDetector::NoisyFromViolations(ctx.violations);
  if (ctx.extra_detectors != nullptr) {
    ctx.noisy.Merge(ctx.extra_detectors->Detect(*ctx.dataset));
  }
  ctx.report.stats.num_violations = ctx.violations.size();
  ctx.report.stats.num_noisy_cells = ctx.noisy.size();
  ctx.report.stats.detect_truncated = !merged.truncated_dcs.empty();
  ctx.report.stats.num_truncated_dcs = merged.truncated_dcs.size();
  batch.new_violations = ctx.violations.size() - old_violations;

  // DC-factor models re-ground pairwise factors over the whole table —
  // there is no incremental path for them, so they resync every batch.
  const bool dc_factors = ctx.config.dc_mode != DcMode::kFeatures;
  const bool stale =
      options_.compact_threshold <= 0.0 || base_rows_ == 0 ||
      static_cast<double>(stats_.appended_since_resync + rows.size()) >=
          options_.compact_threshold * static_cast<double>(base_rows_);
  bool resync = options_.mode == StreamMode::kExact || dc_factors || stale;

  if (!resync) {
    Timer ground_timer;
    Status warm = WarmAppend(old_rows, &batch);
    batch.ground_seconds = ground_timer.Seconds();
    if (warm.ok()) {
      session_->Invalidate(StageId::kInfer);
    } else {
      // Degrade, never corrupt: the full re-compile rebuilds everything
      // the failed incremental step may have half-written.
      resync = true;
    }
  }
  if (resync) {
    session_->Invalidate(StageId::kCompile);
  }

  Timer pipeline_timer;
  HOLO_ASSIGN_OR_RETURN(report, session_->RunThrough(StageId::kRepair));
  batch.pipeline_seconds = pipeline_timer.Seconds();

  batch.resync = resync;
  if (resync) {
    base_rows_ = dirty.num_rows();
    stats_.appended_since_resync = 0;
    // Warm-mode resyncs — threshold-triggered, factor-mode, or the
    // degrade-on-error path — are compactions; exact mode recompiles by
    // design and counts none.
    if (options_.mode == StreamMode::kWarm) ++stats_.compactions;
  } else {
    stats_.appended_since_resync += rows.size();
  }
  batch.total_seconds = total_timer.Seconds();
  stats_.appended_rows += rows.size();
  ++stats_.batches;
  stats_.total_seconds += batch.total_seconds;
  stats_.tuples_per_sec =
      stats_.total_seconds > 0.0
          ? static_cast<double>(stats_.appended_rows) / stats_.total_seconds
          : 0.0;
  stats_.last_batch = batch;
  return report;
}

Status StreamSession::WarmAppend(size_t old_rows, StreamBatchStats* batch) {
  HOLO_RETURN_NOT_OK(HOLO_FAILPOINT("stream.append.ground"));
  PipelineContext& ctx = session_->context();
  Table& dirty = ctx.dataset->dirty();
  const HoloCleanConfig& config = ctx.config;

  // Statistics first: the batch's domains must be pruned against the
  // grown-table co-occurrence counts (exactly what a full re-compile
  // would see).
  ctx.cooc.AppendRows(dirty, ctx.attrs, old_rows);

  // New query cells: noisy cells with no variable yet (the batch's own
  // noisy cells, plus old cells the batch newly implicates) and evidence
  // cells the batch flipped noisy. A flip re-adds the cell as a query
  // variable; the superseded evidence variable keeps training toward its
  // observed value until the next resync drops it (bounded divergence).
  std::vector<CellRef> query_delta;
  for (const CellRef& cell : ctx.noisy.cells()) {
    int var = ctx.graph.VarOfCell(cell);
    if (var < 0 || ctx.graph.variable(var).is_evidence) {
      query_delta.push_back(cell);
    }
  }

  // New evidence: the batch's clean non-null cells, honoring the global
  // training-cell cap.
  std::vector<CellRef> evidence_delta;
  for (size_t t = old_rows; t < dirty.num_rows(); ++t) {
    if (ctx.evidence_cells.size() + evidence_delta.size() >=
        config.max_training_cells) {
      break;
    }
    for (AttrId a : ctx.attrs) {
      CellRef c{static_cast<TupleId>(t), a};
      if (ctx.noisy.Contains(c)) continue;
      if (dirty.Get(c) == Dictionary::kNull) continue;
      evidence_delta.push_back(c);
    }
  }

  // Per-cell domain pruning is independent across cells, so pruning only
  // the delta cells is exact; flipped cells get their (query-sized)
  // domains recomputed and overwrite the stale evidence-era entry.
  DomainPruningOptions popt;
  popt.tau = config.tau;
  popt.max_candidates = config.max_candidates;
  std::vector<CellRef> delta_cells = query_delta;
  delta_cells.insert(delta_cells.end(), evidence_delta.begin(),
                     evidence_delta.end());
  PrunedDomains pruned =
      config.columnar
          ? PruneDomainsColumnar(dirty, delta_cells, ctx.attrs, ctx.cooc,
                                 popt, ctx.pool)
          : PruneDomains(dirty, delta_cells, ctx.attrs, ctx.cooc, popt);
  for (auto& entry : pruned.candidates) {
    ctx.domains.candidates[entry.first] = std::move(entry.second);
  }
  ctx.report.stats.num_candidates = ctx.domains.TotalCandidates();

  GroundingInput input;
  input.table = &dirty;
  input.dcs = ctx.dcs;
  input.attrs = &ctx.attrs;
  input.cooc = &ctx.cooc;
  input.query_cells = &query_delta;
  input.evidence_cells = &evidence_delta;
  input.domains = &ctx.domains;
  input.matches = ctx.matches.empty() ? nullptr : &ctx.matches;
  input.violations = &ctx.violations;
  input.source_attr = ctx.dataset->source_attr();
  GroundingOptions gopt = config.ToGroundingOptions();
  gopt.pool = ctx.pool;
  Grounder grounder(input, gopt);

  const size_t first_var = ctx.graph.num_variables();
  HOLO_RETURN_NOT_OK(grounder.GroundAppend(&ctx.graph, query_delta,
                                           evidence_delta));
  ctx.grounder_stats.num_query_vars += grounder.stats().num_query_vars;
  ctx.grounder_stats.num_evidence_vars += grounder.stats().num_evidence_vars;
  ctx.grounder_stats.num_feature_instances +=
      grounder.stats().num_feature_instances;
  ctx.report.stats.num_query_vars = ctx.graph.query_vars().size();
  ctx.report.stats.num_evidence_vars = ctx.graph.evidence_vars().size();
  ctx.report.stats.num_grounded_factors = ctx.graph.NumGroundedFactors();
  ctx.query_cells.insert(ctx.query_cells.end(), query_delta.begin(),
                         query_delta.end());
  ctx.evidence_cells.insert(ctx.evidence_cells.end(), evidence_delta.begin(),
                            evidence_delta.end());
  batch->new_query_vars = grounder.stats().num_query_vars;
  batch->new_evidence_vars = grounder.stats().num_evidence_vars;

  // Extend the compiled arenas in place (the append-only CSR tail). The
  // const view is only shared within this session; EnsureCompiled builds
  // it mutable.
  if (ctx.compiled != nullptr) {
    std::const_pointer_cast<CompiledGraph>(ctx.compiled)
        ->AppendVariables(ctx.graph, first_var);
  }

  // Warm-start weights: keys the batch introduced (new values, new
  // sources) get their prior seed; every existing weight keeps its
  // learned value.
  WeightInitInput winput;
  winput.table = &dirty;
  winput.attrs = &ctx.attrs;
  winput.dcs = ctx.dcs;
  winput.num_dicts = ctx.dicts == nullptr ? 0 : ctx.dicts->size();
  winput.source_attr =
      ctx.dataset->has_source_attr() ? ctx.dataset->source_attr() : -1;
  WeightInitializer initializer(config.ToWeightInitOptions());
  WeightStore seeded = initializer.Initialize(winput);
  for (const auto& entry : seeded.raw()) {
    if (ctx.weights.raw().count(entry.first) == 0) {
      ctx.weights.Set(entry.first, entry.second);
    }
  }

  // A few SGD epochs over the batch's evidence refine the weights toward
  // the new data without forgetting the old (per-batch seed keeps the
  // whole append sequence deterministic).
  if (options_.warm_epochs > 0) {
    std::vector<int32_t> new_evidence_vars;
    for (size_t v = first_var; v < ctx.graph.num_variables(); ++v) {
      if (ctx.graph.variable(static_cast<int>(v)).is_evidence) {
        new_evidence_vars.push_back(static_cast<int32_t>(v));
      }
    }
    if (!new_evidence_vars.empty()) {
      LearnerOptions lopt;
      lopt.epochs = options_.warm_epochs;
      lopt.learning_rate = config.learning_rate;
      lopt.lr_decay = config.lr_decay;
      lopt.l2 = config.l2;
      lopt.seed = config.seed ^ 0x5851F42D4C957F2DULL ^
                  (stats_.batches + 1);
      SgdLearner learner(&ctx.graph, lopt);
      learner.TrainOn(new_evidence_vars, &ctx.weights);
    }
  }
  return Status::OK();
}

Result<Report> StreamSession::Resync() {
  session_->Invalidate(StageId::kCompile);
  HOLO_ASSIGN_OR_RETURN(report, session_->RunThrough(StageId::kRepair));
  base_rows_ = session_->context().dataset->dirty().num_rows();
  stats_.appended_since_resync = 0;
  ++stats_.compactions;
  return report;
}

}  // namespace holoclean
