#ifndef HOLOCLEAN_STREAM_STREAM_SESSION_H_
#define HOLOCLEAN_STREAM_STREAM_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "holoclean/core/session.h"

namespace holoclean {

/// How AppendRows keeps the model in sync with the growing table.
enum class StreamMode {
  /// Every batch re-compiles the model from the (incrementally maintained)
  /// detect artifacts: violations, domains, and repairs are bit-identical
  /// to cleaning the final table from scratch after every batch. Detection
  /// is still delta-only, so the win over a cold re-clean is the detect
  /// stage; compile/learn/infer re-run in full.
  kExact,
  /// Incremental model maintenance: new tuples' variables are grounded
  /// into the existing factor-graph and compiled arenas, weights are
  /// warm-started (re-seeded only for feature keys the batch introduces)
  /// and refined with a few SGD epochs over the batch's evidence, then
  /// inference and repair extraction re-run over the full model.
  /// Violations stay bit-identical to a from-scratch clean (detection is
  /// exact in every mode); repairs may diverge within a bounded window
  /// until the next resync (see StreamOptions::compact_threshold).
  kWarm,
};

struct StreamOptions {
  StreamMode mode = StreamMode::kWarm;
  /// Warm mode: SGD epochs over each batch's new evidence variables.
  int warm_epochs = 3;
  /// Warm mode: once the rows appended since the last full compile reach
  /// this fraction of the table size at that compile, the batch ends in a
  /// resync — a full re-compile that restores bit-identity with a
  /// from-scratch clean and compacts the appended arena tails (counted in
  /// StreamStats::compactions). <= 0 resyncs every batch.
  double compact_threshold = 0.5;
};

/// Per-batch accounting.
struct StreamBatchStats {
  size_t rows = 0;
  /// Violations the batch added (net, after the exact merge).
  size_t new_violations = 0;
  size_t new_query_vars = 0;
  size_t new_evidence_vars = 0;
  /// The batch ended in a full re-compile (exact mode, factor-mode model,
  /// staleness threshold, or degradation after an incremental error).
  bool resync = false;
  /// The session had never run: the batch fell back to a full Run().
  bool full_run = false;
  double detect_seconds = 0.0;   ///< Delta detection + merge.
  double ground_seconds = 0.0;   ///< Incremental ground/weights/warm SGD.
  double pipeline_seconds = 0.0; ///< The staged re-run (compile.. or infer..).
  double total_seconds = 0.0;
};

/// Cumulative streaming stats (explain_status's `stream` object).
struct StreamStats {
  size_t appended_rows = 0;
  size_t batches = 0;
  /// Full re-compiles while streaming (threshold-triggered or explicit
  /// Resync()); exact-mode per-batch recompiles are not counted.
  size_t compactions = 0;
  /// Rows appended since the model was last fully compiled — the staleness
  /// bound of warm mode (always 0 in exact mode).
  size_t appended_since_resync = 0;
  double total_seconds = 0.0;
  /// appended_rows / total wall time spent in AppendRows.
  double tuples_per_sec = 0.0;
  StreamBatchStats last_batch;
};

/// Streaming ingestion over a Session: appends batches of rows to the
/// dirty table and incrementally re-cleans, reusing every cached stage
/// artifact the append does not invalidate. Detection is always exact —
/// only the blocks the new tuples touch are re-scanned, and the delta is
/// merged over the cached violations so the detect artifacts match a full
/// re-detection bit for bit. Downstream, StreamMode picks between exact
/// per-batch recompilation and warm incremental model maintenance.
///
/// Error handling: a failure before the batch commits rolls the table
/// back (Table::Truncate) and leaves the session exactly as it was. A
/// failure after the commit point leaves the appended rows in place with
/// the suffix stages invalidated — the next Run()/AppendRows heals by
/// re-executing them. A failure inside warm incremental maintenance
/// degrades to a full re-compile of the batch, never a corrupt model.
/// Failpoint sites: stream.append.intern, stream.append.detect,
/// stream.append.commit, stream.append.ground.
///
/// The session must outlive the StreamSession. Appends mutate the
/// session's dataset; when the dataset carries a clean (ground-truth)
/// table, pass the matching clean rows so TrueErrors stays aligned — with
/// none provided the dirty values are mirrored (the new rows evaluate as
/// error-free).
class StreamSession {
 public:
  explicit StreamSession(Session* session, StreamOptions options = {});

  /// Appends `rows` (raw string values, schema arity each) and re-cleans.
  /// Returns the updated report: repairs cover the whole table, not just
  /// the batch. An empty batch just runs any invalid stage suffix.
  Result<Report> AppendRows(
      const std::vector<std::vector<std::string>>& rows,
      const std::vector<std::vector<std::string>>* clean_rows = nullptr);

  /// Forces a full re-compile from the committed detect artifacts,
  /// restoring bit-identity with a from-scratch clean (warm mode's
  /// explicit compaction). Counted in StreamStats::compactions.
  Result<Report> Resync();

  const StreamStats& stats() const { return stats_; }
  Session* session() { return session_; }

 private:
  /// Incremental model maintenance for rows [old_rows, n). Any error means
  /// the caller degrades to a full re-compile.
  Status WarmAppend(size_t old_rows, StreamBatchStats* batch);

  Session* session_;
  StreamOptions options_;
  StreamStats stats_;
  /// Table size at the last full compile (staleness denominator).
  size_t base_rows_ = 0;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_STREAM_STREAM_SESSION_H_
