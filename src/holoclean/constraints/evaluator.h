#ifndef HOLOCLEAN_CONSTRAINTS_EVALUATOR_H_
#define HOLOCLEAN_CONSTRAINTS_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"

namespace holoclean {

/// A hypothetical cell assignment overriding the table's stored value;
/// used to evaluate constraints under candidate repairs without mutating
/// the table (relaxed DC features, Gibbs factor evaluation).
struct CellOverride {
  CellRef cell;
  ValueId value;
};

/// Evaluates denial-constraint predicates against a table.
///
/// Semantics: a tuple pair violates a DC when *all* its predicates hold.
/// Predicates involving NULL cells never hold (NULLs do not create
/// violations). Ordered comparisons use numeric order when both operands
/// parse as numbers, lexicographic order otherwise. The ≈ operator holds
/// when normalized edit similarity >= `sim_threshold`.
class DcEvaluator {
 public:
  explicit DcEvaluator(const Table* table, double sim_threshold = 0.8);

  /// Whether (t1, t2) violates the two-tuple constraint `dc`.
  /// For DCs whose predicates are all symmetric it suffices to test t1 < t2;
  /// the caller controls the ordering.
  bool Violates(const DenialConstraint& dc, TupleId t1, TupleId t2) const {
    return ViolatesWith(dc, t1, t2, {});
  }

  /// Whether a single tuple violates the single-tuple constraint `dc`.
  bool ViolatesSingle(const DenialConstraint& dc, TupleId t) const {
    return ViolatesWith(dc, t, t, {});
  }

  /// Violation check with hypothetical cell assignments applied on top of
  /// the table. `overrides` is expected to be tiny (1-2 entries).
  bool ViolatesWith(const DenialConstraint& dc, TupleId t1, TupleId t2,
                    const std::vector<CellOverride>& overrides) const;

  /// Evaluates a single predicate for the pair (t1, t2) with overrides.
  bool PredicateHolds(const Predicate& p, TupleId t1, TupleId t2,
                      const std::vector<CellOverride>& overrides) const;

  const Table& table() const { return *table_; }
  double sim_threshold() const { return sim_threshold_; }

  /// Single-operator comparisons over dictionary ids / strings. Public for
  /// the compiled violation-table precompute, which resolves predicate
  /// operands itself and must reproduce PredicateHolds verdicts exactly.
  bool Compare(Op op, ValueId lhs, ValueId rhs) const;
  bool CompareStrings(Op op, const std::string& ls,
                      const std::string& rs) const;

 private:
  /// Per-ValueId comparison metadata over the whole dictionary, built
  /// lazily on the first ordered (<, >, <=, >=) comparison. `lex_rank` is
  /// the rank of the value string in lexicographic order across all
  /// interned values — sound as a total order stand-in because interned
  /// strings are distinct, so rank comparison reproduces
  /// std::string::compare's sign exactly.
  struct OrderMemo {
    std::vector<uint8_t> is_numeric;
    std::vector<double> numeric;
    std::vector<int32_t> lex_rank;
  };

  ValueId CellValue(TupleId t1, TupleId t2, int role, AttrId attr,
                    const std::vector<CellOverride>& overrides) const;

  /// Snapshot of the memo covering at least the ids interned when it was
  /// built; ids beyond its range (dictionary grew since) fall back to the
  /// string path in Compare.
  std::shared_ptr<const OrderMemo> EnsureOrderMemo() const;

  const Table* table_;
  double sim_threshold_;
  /// Shared across copies so the memo is built once per table; guarded by
  /// the mutex for concurrent first use from pool workers.
  mutable std::shared_ptr<std::mutex> memo_mu_;
  mutable std::shared_ptr<std::shared_ptr<const OrderMemo>> memo_slot_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_CONSTRAINTS_EVALUATOR_H_
