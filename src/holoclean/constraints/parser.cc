#include "holoclean/constraints/parser.h"

#include <optional>
#include <string>

#include "holoclean/util/string_util.h"

namespace holoclean {

namespace {

std::optional<Op> OpFromName(std::string_view name) {
  if (name == "EQ") return Op::kEq;
  if (name == "IQ" || name == "NEQ") return Op::kNeq;
  if (name == "LT") return Op::kLt;
  if (name == "GT") return Op::kGt;
  if (name == "LTE" || name == "LEQ") return Op::kLeq;
  if (name == "GTE" || name == "GEQ") return Op::kGeq;
  if (name == "SIM") return Op::kSim;
  return std::nullopt;
}

// Splits on '&' but not inside parentheses or quotes.
std::vector<std::string> SplitTopLevel(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  bool in_quotes = false;
  for (char c : text) {
    if (c == '"') in_quotes = !in_quotes;
    if (!in_quotes) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == '&' && depth == 0) {
        parts.push_back(current);
        current.clear();
        continue;
      }
    }
    current.push_back(c);
  }
  parts.push_back(current);
  return parts;
}

struct Ref {
  bool is_constant = false;
  int tuple = 0;
  AttrId attr = 0;
  std::string constant;
};

Result<Ref> ParseRef(std::string_view text, const Schema& schema,
                     bool allow_constant) {
  text = StripWhitespace(text);
  Ref ref;
  if (!text.empty() && text.front() == '"') {
    if (!allow_constant) {
      return Status::ParseError("constant not allowed on left side: " +
                                std::string(text));
    }
    if (text.size() < 2 || text.back() != '"') {
      return Status::ParseError("unterminated constant: " + std::string(text));
    }
    ref.is_constant = true;
    ref.constant = std::string(text.substr(1, text.size() - 2));
    return ref;
  }
  size_t dot = text.find('.');
  if (dot == std::string_view::npos) {
    return Status::ParseError("expected tN.Attr or \"const\", got: " +
                              std::string(text));
  }
  std::string_view tuple_part = text.substr(0, dot);
  std::string_view attr_part = text.substr(dot + 1);
  if (tuple_part == "t1") {
    ref.tuple = 0;
  } else if (tuple_part == "t2") {
    ref.tuple = 1;
  } else {
    return Status::ParseError("unknown tuple variable: " +
                              std::string(tuple_part));
  }
  AttrId attr = schema.IndexOf(attr_part);
  if (attr < 0) {
    return Status::NotFound("unknown attribute: " + std::string(attr_part));
  }
  ref.attr = attr;
  return ref;
}

}  // namespace

Result<DenialConstraint> ParseDenialConstraint(std::string_view text,
                                               const Schema& schema) {
  DenialConstraint dc;
  dc.name = std::string(StripWhitespace(text));
  bool declared_t1 = false;
  bool declared_t2 = false;
  for (const std::string& raw_part : SplitTopLevel(text)) {
    std::string_view part = StripWhitespace(raw_part);
    if (part.empty()) continue;
    if (part == "t1") {
      declared_t1 = true;
      continue;
    }
    if (part == "t2") {
      declared_t2 = true;
      continue;
    }
    size_t open = part.find('(');
    if (open == std::string_view::npos || part.back() != ')') {
      return Status::ParseError("malformed predicate: " + std::string(part));
    }
    auto op = OpFromName(StripWhitespace(part.substr(0, open)));
    if (!op.has_value()) {
      return Status::ParseError("unknown operator: " +
                                std::string(part.substr(0, open)));
    }
    std::string_view args = part.substr(open + 1, part.size() - open - 2);
    // Split on the top-level comma (constants may not contain commas).
    size_t comma = std::string_view::npos;
    bool in_quotes = false;
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i] == '"') in_quotes = !in_quotes;
      if (args[i] == ',' && !in_quotes) {
        comma = i;
        break;
      }
    }
    if (comma == std::string_view::npos) {
      return Status::ParseError("predicate needs two arguments: " +
                                std::string(part));
    }
    HOLO_ASSIGN_OR_RETURN(lhs, ParseRef(args.substr(0, comma), schema,
                                        /*allow_constant=*/false));
    HOLO_ASSIGN_OR_RETURN(rhs, ParseRef(args.substr(comma + 1), schema,
                                        /*allow_constant=*/true));
    Predicate p;
    p.lhs_tuple = lhs.tuple;
    p.lhs_attr = lhs.attr;
    p.op = *op;
    if (rhs.is_constant) {
      p.rhs_is_constant = true;
      p.constant = rhs.constant;
    } else {
      p.rhs_tuple = rhs.tuple;
      p.rhs_attr = rhs.attr;
    }
    dc.preds.push_back(std::move(p));
  }
  if (dc.preds.empty()) {
    return Status::ParseError("constraint has no predicates: " +
                              std::string(text));
  }
  if (!declared_t1) {
    return Status::ParseError("constraint must declare t1: " +
                              std::string(text));
  }
  if (dc.IsTwoTuple() && !declared_t2) {
    return Status::ParseError("constraint uses t2 without declaring it: " +
                              std::string(text));
  }
  return dc;
}

Result<std::vector<DenialConstraint>> ParseDenialConstraints(
    std::string_view text, const Schema& schema) {
  std::vector<DenialConstraint> out;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    HOLO_ASSIGN_OR_RETURN(dc, ParseDenialConstraint(stripped, schema));
    out.push_back(std::move(dc));
  }
  return out;
}

}  // namespace holoclean
