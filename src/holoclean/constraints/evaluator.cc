#include "holoclean/constraints/evaluator.h"

#include <algorithm>
#include <numeric>
#include <string_view>

#include "holoclean/util/string_util.h"

namespace holoclean {

DcEvaluator::DcEvaluator(const Table* table, double sim_threshold)
    : table_(table),
      sim_threshold_(sim_threshold),
      memo_mu_(std::make_shared<std::mutex>()),
      memo_slot_(std::make_shared<std::shared_ptr<const OrderMemo>>()) {}

std::shared_ptr<const DcEvaluator::OrderMemo> DcEvaluator::EnsureOrderMemo()
    const {
  {
    std::lock_guard<std::mutex> lock(*memo_mu_);
    if (*memo_slot_ != nullptr) return *memo_slot_;
  }
  const Dictionary& dict = table_->dict();
  size_t n = dict.size();
  auto memo = std::make_shared<OrderMemo>();
  memo->is_numeric.resize(n, 0);
  memo->numeric.resize(n, 0.0);
  memo->lex_rank.resize(n, 0);
  for (size_t v = 0; v < n; ++v) {
    const std::string& s = dict.GetString(static_cast<ValueId>(v));
    if (IsNumeric(s)) {
      memo->is_numeric[v] = 1;
      memo->numeric[v] = ParseDoubleOr(s, 0.0);
    }
  }
  std::vector<ValueId> order(n);
  std::iota(order.begin(), order.end(), ValueId{0});
  std::sort(order.begin(), order.end(), [&](ValueId a, ValueId b) {
    return dict.GetString(a) < dict.GetString(b);
  });
  for (size_t rank = 0; rank < n; ++rank) {
    memo->lex_rank[static_cast<size_t>(order[rank])] =
        static_cast<int32_t>(rank);
  }
  std::lock_guard<std::mutex> lock(*memo_mu_);
  if (*memo_slot_ == nullptr) *memo_slot_ = std::move(memo);
  return *memo_slot_;
}

ValueId DcEvaluator::CellValue(
    TupleId t1, TupleId t2, int role, AttrId attr,
    const std::vector<CellOverride>& overrides) const {
  TupleId t = role == 0 ? t1 : t2;
  for (const CellOverride& o : overrides) {
    if (o.cell.tid == t && o.cell.attr == attr) return o.value;
  }
  return table_->Get(t, attr);
}

bool DcEvaluator::Compare(Op op, ValueId lhs, ValueId rhs) const {
  // Fast path: equality comparisons are integer comparisons thanks to the
  // shared dictionary encoding.
  switch (op) {
    case Op::kEq:
      return lhs == rhs;
    case Op::kNeq:
      return lhs != rhs;
    default:
      break;
  }
  if (op != Op::kSim) {
    // Ordered comparisons resolve through the memo: numeric order when
    // both sides parse as numbers, dictionary-wide lexicographic rank
    // order otherwise — same verdicts as the string path, without
    // re-parsing or re-walking strings per pair.
    std::shared_ptr<const OrderMemo> memo = EnsureOrderMemo();
    size_t l = static_cast<size_t>(lhs);
    size_t r = static_cast<size_t>(rhs);
    if (l < memo->is_numeric.size() && r < memo->is_numeric.size()) {
      int cmp;
      if (memo->is_numeric[l] && memo->is_numeric[r]) {
        double ld = memo->numeric[l];
        double rd = memo->numeric[r];
        cmp = ld < rd ? -1 : (ld > rd ? 1 : 0);
      } else {
        cmp = memo->lex_rank[l] < memo->lex_rank[r]
                  ? -1
                  : (memo->lex_rank[l] > memo->lex_rank[r] ? 1 : 0);
      }
      switch (op) {
        case Op::kLt:
          return cmp < 0;
        case Op::kGt:
          return cmp > 0;
        case Op::kLeq:
          return cmp <= 0;
        case Op::kGeq:
          return cmp >= 0;
        default:
          return false;
      }
    }
  }
  return CompareStrings(op, table_->dict().GetString(lhs),
                        table_->dict().GetString(rhs));
}

bool DcEvaluator::CompareStrings(Op op, const std::string& ls,
                                 const std::string& rs) const {
  switch (op) {
    case Op::kEq:
      return ls == rs;
    case Op::kNeq:
      return ls != rs;
    default:
      break;
  }
  if (op == Op::kSim) {
    return Similarity(ls, rs) >= sim_threshold_;
  }
  int cmp;
  if (IsNumeric(ls) && IsNumeric(rs)) {
    double ld = ParseDoubleOr(ls, 0.0);
    double rd = ParseDoubleOr(rs, 0.0);
    cmp = ld < rd ? -1 : (ld > rd ? 1 : 0);
  } else {
    cmp = ls.compare(rs);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case Op::kLt:
      return cmp < 0;
    case Op::kGt:
      return cmp > 0;
    case Op::kLeq:
      return cmp <= 0;
    case Op::kGeq:
      return cmp >= 0;
    default:
      return false;
  }
}

bool DcEvaluator::PredicateHolds(
    const Predicate& p, TupleId t1, TupleId t2,
    const std::vector<CellOverride>& overrides) const {
  ValueId lhs = CellValue(t1, t2, p.lhs_tuple, p.lhs_attr, overrides);
  if (lhs == Dictionary::kNull) return false;
  if (p.rhs_is_constant) {
    // Constants may not be interned in the data's dictionary; compare the
    // strings (numerically when both sides parse as numbers).
    return CompareStrings(p.op, table_->dict().GetString(lhs), p.constant);
  }
  ValueId rhs = CellValue(t1, t2, p.rhs_tuple, p.rhs_attr, overrides);
  if (rhs == Dictionary::kNull) return false;
  return Compare(p.op, lhs, rhs);
}

bool DcEvaluator::ViolatesWith(
    const DenialConstraint& dc, TupleId t1, TupleId t2,
    const std::vector<CellOverride>& overrides) const {
  if (dc.IsTwoTuple() && t1 == t2) return false;
  for (const Predicate& p : dc.preds) {
    if (!PredicateHolds(p, t1, t2, overrides)) return false;
  }
  return true;
}

}  // namespace holoclean
