#ifndef HOLOCLEAN_CONSTRAINTS_DENIAL_CONSTRAINT_H_
#define HOLOCLEAN_CONSTRAINTS_DENIAL_CONSTRAINT_H_

#include <string>
#include <vector>

#include "holoclean/storage/table.h"

namespace holoclean {

/// Comparison operators of denial-constraint predicates (paper Section 3.1).
/// kSim is the ≈ similarity operator.
enum class Op {
  kEq,
  kNeq,
  kLt,
  kGt,
  kLeq,
  kGeq,
  kSim,
};

/// Short mnemonic used by the textual DC format ("EQ", "IQ", ...).
const char* OpName(Op op);

/// A single predicate of a denial constraint. The left side is always a
/// cell reference (tuple role + attribute); the right side is either a cell
/// reference or a string constant.
struct Predicate {
  int lhs_tuple = 0;   ///< 0 = t1, 1 = t2.
  AttrId lhs_attr = 0;
  Op op = Op::kEq;
  bool rhs_is_constant = false;
  int rhs_tuple = 0;
  AttrId rhs_attr = 0;
  std::string constant;

  /// True when the predicate mentions both tuple roles.
  bool SpansTuples() const {
    return !rhs_is_constant && lhs_tuple != rhs_tuple;
  }
};

/// A denial constraint σ: ∀ t1, t2 ∈ D : ¬(P1 ∧ ... ∧ PK).
/// A pair (or single tuple) *violates* σ when all predicates hold.
struct DenialConstraint {
  std::string name;
  std::vector<Predicate> preds;

  /// True when any predicate references the t2 role (pairwise constraint).
  bool IsTwoTuple() const;

  /// Attributes referenced for a given tuple role (0 = t1, 1 = t2),
  /// deduplicated, sorted.
  std::vector<AttrId> AttrsOfRole(int role) const;

  /// All referenced attributes over both roles, deduplicated, sorted.
  std::vector<AttrId> AllAttrs() const;

  /// Equality predicates spanning both tuples — the blocking keys used by
  /// the violation detector to avoid the quadratic pair scan.
  std::vector<const Predicate*> CrossEqualities() const;

  /// Textual form in the parser's format, e.g.
  /// "t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)".
  std::string ToString(const Schema& schema) const;
};

/// Expands the functional dependency lhs -> rhs into one two-tuple denial
/// constraint per rhs attribute (paper Example 2). Attribute names must
/// exist in `schema`.
Result<std::vector<DenialConstraint>> FdToDenialConstraints(
    const Schema& schema, const std::vector<std::string>& lhs,
    const std::vector<std::string>& rhs);

}  // namespace holoclean

#endif  // HOLOCLEAN_CONSTRAINTS_DENIAL_CONSTRAINT_H_
