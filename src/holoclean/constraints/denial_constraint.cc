#include "holoclean/constraints/denial_constraint.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace holoclean {

const char* OpName(Op op) {
  switch (op) {
    case Op::kEq:
      return "EQ";
    case Op::kNeq:
      return "IQ";
    case Op::kLt:
      return "LT";
    case Op::kGt:
      return "GT";
    case Op::kLeq:
      return "LTE";
    case Op::kGeq:
      return "GTE";
    case Op::kSim:
      return "SIM";
  }
  return "?";
}

bool DenialConstraint::IsTwoTuple() const {
  for (const Predicate& p : preds) {
    if (p.lhs_tuple == 1) return true;
    if (!p.rhs_is_constant && p.rhs_tuple == 1) return true;
  }
  return false;
}

std::vector<AttrId> DenialConstraint::AttrsOfRole(int role) const {
  std::set<AttrId> attrs;
  for (const Predicate& p : preds) {
    if (p.lhs_tuple == role) attrs.insert(p.lhs_attr);
    if (!p.rhs_is_constant && p.rhs_tuple == role) attrs.insert(p.rhs_attr);
  }
  return {attrs.begin(), attrs.end()};
}

std::vector<AttrId> DenialConstraint::AllAttrs() const {
  std::set<AttrId> attrs;
  for (int role : {0, 1}) {
    for (AttrId a : AttrsOfRole(role)) attrs.insert(a);
  }
  return {attrs.begin(), attrs.end()};
}

std::vector<const Predicate*> DenialConstraint::CrossEqualities() const {
  std::vector<const Predicate*> out;
  for (const Predicate& p : preds) {
    if (p.op == Op::kEq && p.SpansTuples()) out.push_back(&p);
  }
  return out;
}

std::string DenialConstraint::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "t1";
  if (IsTwoTuple()) os << "&t2";
  for (const Predicate& p : preds) {
    os << "&" << OpName(p.op) << "(t" << (p.lhs_tuple + 1) << "."
       << schema.name(p.lhs_attr) << ",";
    if (p.rhs_is_constant) {
      os << "\"" << p.constant << "\"";
    } else {
      os << "t" << (p.rhs_tuple + 1) << "." << schema.name(p.rhs_attr);
    }
    os << ")";
  }
  return os.str();
}

Result<std::vector<DenialConstraint>> FdToDenialConstraints(
    const Schema& schema, const std::vector<std::string>& lhs,
    const std::vector<std::string>& rhs) {
  std::vector<AttrId> lhs_ids;
  for (const std::string& name : lhs) {
    AttrId a = schema.IndexOf(name);
    if (a < 0) return Status::NotFound("unknown attribute: " + name);
    lhs_ids.push_back(a);
  }
  std::vector<DenialConstraint> out;
  for (const std::string& name : rhs) {
    AttrId r = schema.IndexOf(name);
    if (r < 0) return Status::NotFound("unknown attribute: " + name);
    DenialConstraint dc;
    std::string lhs_desc;
    for (size_t i = 0; i < lhs.size(); ++i) {
      if (i > 0) lhs_desc += ",";
      lhs_desc += lhs[i];
    }
    dc.name = "FD(" + lhs_desc + "->" + name + ")";
    for (AttrId l : lhs_ids) {
      Predicate p;
      p.lhs_tuple = 0;
      p.lhs_attr = l;
      p.op = Op::kEq;
      p.rhs_tuple = 1;
      p.rhs_attr = l;
      dc.preds.push_back(p);
    }
    Predicate neq;
    neq.lhs_tuple = 0;
    neq.lhs_attr = r;
    neq.op = Op::kNeq;
    neq.rhs_tuple = 1;
    neq.rhs_attr = r;
    dc.preds.push_back(neq);
    out.push_back(std::move(dc));
  }
  return out;
}

}  // namespace holoclean
