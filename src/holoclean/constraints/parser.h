#ifndef HOLOCLEAN_CONSTRAINTS_PARSER_H_
#define HOLOCLEAN_CONSTRAINTS_PARSER_H_

#include <string_view>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"

namespace holoclean {

/// Parses the textual denial-constraint format used by the original
/// HoloClean / Holistic tooling:
///
///   t1&t2&EQ(t1.Zip,t2.Zip)&IQ(t1.City,t2.City)
///   t1&EQ(t1.State,"IL")&GT(t1.Score,"10")
///
/// Grammar: an '&'-separated list of tuple declarations ("t1", "t2")
/// followed by predicates `OP(ref,ref)`, where OP is one of
/// EQ, IQ, LT, GT, LTE, GTE, SIM and ref is `tN.Attr` or a double-quoted
/// constant (constants are only allowed on the right side).
Result<DenialConstraint> ParseDenialConstraint(std::string_view text,
                                               const Schema& schema);

/// Parses one constraint per non-empty line; '#'-prefixed lines are comments.
Result<std::vector<DenialConstraint>> ParseDenialConstraints(
    std::string_view text, const Schema& schema);

}  // namespace holoclean

#endif  // HOLOCLEAN_CONSTRAINTS_PARSER_H_
