#include "holoclean/io/session_snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "holoclean/core/stage.h"
#include "holoclean/util/hash.h"

namespace holoclean {

namespace {

constexpr char kMagic[4] = {'H', 'C', 'S', 'S'};
/// Magic (4) + format version (u32) + payload size (u64).
constexpr size_t kHeaderBytes = 16;
/// Trailing FNV-1a checksum (u64) over the payload.
constexpr size_t kChecksumBytes = 8;

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// --- Small-piece codecs ----------------------------------------------------

void WriteCellRef(BinaryWriter* out, const CellRef& c) {
  out->WriteI32(c.tid);
  out->WriteI32(c.attr);
}

Status ReadCellRef(BinaryReader* in, CellRef* c) {
  HOLO_RETURN_NOT_OK(in->ReadI32(&c->tid));
  HOLO_RETURN_NOT_OK(in->ReadI32(&c->attr));
  return Status::OK();
}

void WriteCellVec(BinaryWriter* out, const std::vector<CellRef>& cells) {
  out->WriteU64(cells.size());
  for (const CellRef& c : cells) WriteCellRef(out, c);
}

Status ReadCellVec(BinaryReader* in, std::vector<CellRef>* cells) {
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(8, &n));
  cells->resize(n);
  for (CellRef& c : *cells) HOLO_RETURN_NOT_OK(ReadCellRef(in, &c));
  return Status::OK();
}

void WriteI32Vec(BinaryWriter* out, const std::vector<int32_t>& v) {
  out->WriteU64(v.size());
  for (int32_t x : v) out->WriteI32(x);
}

Status ReadI32Vec(BinaryReader* in, std::vector<int32_t>* v) {
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(4, &n));
  v->resize(n);
  for (int32_t& x : *v) HOLO_RETURN_NOT_OK(in->ReadI32(&x));
  return Status::OK();
}

void WriteF64Vec(BinaryWriter* out, const std::vector<double>& v) {
  out->WriteU64(v.size());
  for (double x : v) out->WriteF64(x);
}

Status ReadF64Vec(BinaryReader* in, std::vector<double>* v) {
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(8, &n));
  v->resize(n);
  for (double& x : *v) HOLO_RETURN_NOT_OK(in->ReadF64(&x));
  return Status::OK();
}

Status ReadValueIdVec(BinaryReader* in, size_t dict_size,
                      std::vector<ValueId>* v) {
  HOLO_RETURN_NOT_OK(ReadI32Vec(in, v));
  for (ValueId id : *v) {
    if (id < 0 || static_cast<size_t>(id) >= dict_size) {
      return Status::ParseError("snapshot value id out of range");
    }
  }
  return Status::OK();
}

}  // namespace

uint64_t ConfigFingerprint(const HoloCleanConfig& c) {
  // Every result-affecting knob must be mixed in below — a knob the
  // fingerprint misses would let a snapshot restore under a config that
  // produces different results, breaking the bit-identical guarantee.
  // This assert trips when HoloCleanConfig gains (or loses) a field, as a
  // reminder to update the fingerprint and bump kSnapshotFormatVersion if
  // the default changed behavior. (x86-64/AArch64 SysV layout.)
  static_assert(sizeof(HoloCleanConfig) == 160,
                "HoloCleanConfig changed: update ConfigFingerprint");
  uint64_t h = HashBytes("holoclean-config-v1");
  auto mix_u = [&h](uint64_t v) { h = HashCombine(h, v); };
  auto mix_d = [&](double v) { mix_u(DoubleBits(v)); };
  mix_d(c.tau);
  mix_u(c.max_candidates);
  mix_u(static_cast<uint64_t>(c.dc_mode));
  mix_u(c.partitioning ? 1 : 0);
  mix_d(c.dc_factor_weight);
  mix_d(c.minimality_weight);
  mix_d(c.sim_threshold);
  mix_d(c.source_trust_scale);
  mix_d(c.stats_prior_weight);
  mix_d(c.freq_prior_weight);
  mix_d(c.dc_violation_init);
  mix_d(c.ext_dict_init);
  mix_d(c.support_prior);
  mix_u(static_cast<uint64_t>(c.epochs));
  mix_d(c.learning_rate);
  mix_d(c.lr_decay);
  mix_d(c.l2);
  mix_u(c.max_training_cells);
  mix_u(static_cast<uint64_t>(c.gibbs_burn_in));
  mix_u(static_cast<uint64_t>(c.gibbs_samples));
  mix_u(c.seed);
  return h;
}

uint64_t DcsFingerprint(const std::vector<DenialConstraint>& dcs,
                        const Schema& schema) {
  uint64_t h = HashBytes("holoclean-dcs-v1");
  for (const DenialConstraint& dc : dcs) {
    h = HashCombine(h, HashBytes(dc.ToString(schema)));
  }
  return h;
}

namespace {

uint64_t TableContentFingerprint(const Table& table) {
  uint64_t h = HashBytes("holoclean-table-v1");
  for (const std::string& name : table.schema().names()) {
    h = HashCombine(h, HashBytes(name));
  }
  h = HashCombine(h, table.num_rows());
  for (size_t t = 0; t < table.num_rows(); ++t) {
    for (size_t a = 0; a < table.schema().num_attrs(); ++a) {
      h = HashCombine(h, HashBytes(table.GetString(static_cast<TupleId>(t),
                                                   static_cast<AttrId>(a))));
    }
  }
  return h;
}

}  // namespace

uint64_t ExternalDataFingerprint(const ExtDictCollection* dicts,
                                 const std::vector<MatchingDependency>* mds,
                                 const DetectorSuite* extra_detectors) {
  uint64_t h = HashBytes("holoclean-extdata-v1");
  h = HashCombine(h, dicts == nullptr ? 0 : dicts->size());
  if (dicts != nullptr) {
    for (size_t k = 0; k < dicts->size(); ++k) {
      const ExtDict& dict = dicts->Get(static_cast<int>(k));
      h = HashCombine(h, HashBytes(dict.name()));
      h = HashCombine(h, TableContentFingerprint(dict.records()));
    }
  }
  h = HashCombine(h, mds == nullptr ? 0 : mds->size());
  if (mds != nullptr) {
    for (const MatchingDependency& md : *mds) {
      h = HashCombine(h, HashBytes(md.name));
      h = HashCombine(h, static_cast<uint64_t>(md.dict_id));
      h = HashCombine(h, md.conditions.size());
      for (const MatchClause& c : md.conditions) {
        h = HashCombine(h, HashBytes(c.data_attr));
        h = HashCombine(h, HashBytes(c.ext_attr));
        h = HashCombine(h, c.approximate ? 1 : 0);
        h = HashCombine(h, DoubleBits(c.sim_threshold));
      }
      h = HashCombine(h, HashBytes(md.target_data_attr));
      h = HashCombine(h, HashBytes(md.target_ext_attr));
    }
  }
  h = HashCombine(h, extra_detectors == nullptr ? 0 : extra_detectors->size());
  if (extra_detectors != nullptr) {
    for (const std::string& name : extra_detectors->names()) {
      h = HashCombine(h, HashBytes(name));
    }
  }
  return h;
}

// --- FactorGraph -----------------------------------------------------------

void SerializeFactorGraph(const FactorGraph& graph, BinaryWriter* out) {
  out->WriteU64(graph.num_variables());
  for (const Variable& var : graph.variables()) {
    WriteCellRef(out, var.cell);
    WriteI32Vec(out, var.domain);
    out->WriteI32(var.init_index);
    out->WriteU8(var.is_evidence ? 1 : 0);
    WriteF64Vec(out, var.prior_bias);
    WriteI32Vec(out, var.feat_begin);
    out->WriteU64(var.features.size());
    for (const FeatureInstance& f : var.features) {
      out->WriteU64(f.weight_key);
      out->WriteF32(f.activation);
    }
  }
  out->WriteU64(graph.dc_factors().size());
  for (const DcFactor& f : graph.dc_factors()) {
    out->WriteI32(f.dc_index);
    out->WriteI32(f.t1);
    out->WriteI32(f.t2);
    out->WriteF64(f.weight);
    WriteI32Vec(out, f.var_ids);
  }
}

Status DeserializeFactorGraph(BinaryReader* in, FactorGraph* graph,
                              const FactorGraphBounds& bounds) {
  *graph = FactorGraph();
  size_t num_vars = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(1, &num_vars));
  for (size_t i = 0; i < num_vars; ++i) {
    Variable var;
    HOLO_RETURN_NOT_OK(ReadCellRef(in, &var.cell));
    HOLO_RETURN_NOT_OK(ReadValueIdVec(in, bounds.dict_size, &var.domain));
    HOLO_RETURN_NOT_OK(in->ReadI32(&var.init_index));
    uint8_t is_evidence = 0;
    HOLO_RETURN_NOT_OK(in->ReadU8(&is_evidence));
    var.is_evidence = is_evidence != 0;
    HOLO_RETURN_NOT_OK(ReadF64Vec(in, &var.prior_bias));
    HOLO_RETURN_NOT_OK(ReadI32Vec(in, &var.feat_begin));
    size_t num_features = 0;
    HOLO_RETURN_NOT_OK(in->ReadCount(12, &num_features));
    var.features.resize(num_features);
    for (FeatureInstance& f : var.features) {
      HOLO_RETURN_NOT_OK(in->ReadU64(&f.weight_key));
      HOLO_RETURN_NOT_OK(in->ReadF32(&f.activation));
    }
    // Validate the invariants AddVariable asserts (and UnaryScore indexes
    // by) so a corrupt payload reports a Status instead of aborting.
    if (var.domain.empty() ||
        var.prior_bias.size() != var.domain.size() ||
        var.feat_begin.size() != var.domain.size() + 1 ||
        var.init_index < -1 ||
        var.init_index >= static_cast<int>(var.domain.size())) {
      return Status::ParseError("snapshot variable is malformed");
    }
    for (int32_t b : var.feat_begin) {
      if (b < 0 || static_cast<size_t>(b) > var.features.size()) {
        return Status::ParseError("snapshot variable is malformed");
      }
    }
    graph->AddVariable(std::move(var));
  }
  size_t num_factors = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(1, &num_factors));
  for (size_t i = 0; i < num_factors; ++i) {
    DcFactor factor;
    HOLO_RETURN_NOT_OK(in->ReadI32(&factor.dc_index));
    if (factor.dc_index < 0 ||
        static_cast<size_t>(factor.dc_index) >= bounds.num_dcs) {
      return Status::ParseError(
          "snapshot factor references unknown constraint");
    }
    HOLO_RETURN_NOT_OK(in->ReadI32(&factor.t1));
    HOLO_RETURN_NOT_OK(in->ReadI32(&factor.t2));
    HOLO_RETURN_NOT_OK(in->ReadF64(&factor.weight));
    HOLO_RETURN_NOT_OK(ReadI32Vec(in, &factor.var_ids));
    for (int32_t v : factor.var_ids) {
      if (v < 0 || static_cast<size_t>(v) >= num_vars) {
        return Status::ParseError("snapshot factor references unknown variable");
      }
    }
    graph->AddDcFactor(std::move(factor));
  }
  return Status::OK();
}

// --- WeightStore -----------------------------------------------------------

void SerializeWeightStore(const WeightStore& weights, BinaryWriter* out) {
  // Sorted by key: the snapshot bytes are deterministic even though the
  // store iterates in hash order.
  std::vector<std::pair<uint64_t, double>> sorted(weights.raw().begin(),
                                                  weights.raw().end());
  std::sort(sorted.begin(), sorted.end());
  out->WriteU64(sorted.size());
  for (const auto& [key, value] : sorted) {
    out->WriteU64(key);
    out->WriteF64(value);
  }
}

Status DeserializeWeightStore(BinaryReader* in, WeightStore* weights) {
  *weights = WeightStore();
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(16, &n));
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    double value = 0.0;
    HOLO_RETURN_NOT_OK(in->ReadU64(&key));
    HOLO_RETURN_NOT_OK(in->ReadF64(&value));
    weights->Set(key, value);
  }
  return Status::OK();
}

// --- Marginals -------------------------------------------------------------

void SerializeMarginals(const Marginals& marginals, BinaryWriter* out) {
  const auto& probs = marginals.probs();
  out->WriteU64(probs.size());
  for (const std::vector<double>& p : probs) WriteF64Vec(out, p);
}

Status DeserializeMarginals(BinaryReader* in, Marginals* marginals) {
  size_t num_vars = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(8, &num_vars));
  Marginals loaded(num_vars);
  for (size_t i = 0; i < num_vars; ++i) {
    HOLO_RETURN_NOT_OK(ReadF64Vec(in, &loaded.probs()[i]));
  }
  *marginals = std::move(loaded);
  return Status::OK();
}

// --- Whole-session snapshot ------------------------------------------------

namespace {

void SerializeViolations(const std::vector<Violation>& violations,
                         BinaryWriter* out) {
  out->WriteU64(violations.size());
  for (const Violation& v : violations) {
    out->WriteI32(v.dc_index);
    out->WriteI32(v.t1);
    out->WriteI32(v.t2);
    WriteCellVec(out, v.cells);
  }
}

Status DeserializeViolations(BinaryReader* in,
                             std::vector<Violation>* violations) {
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(20, &n));
  violations->resize(n);
  for (Violation& v : *violations) {
    HOLO_RETURN_NOT_OK(in->ReadI32(&v.dc_index));
    HOLO_RETURN_NOT_OK(in->ReadI32(&v.t1));
    HOLO_RETURN_NOT_OK(in->ReadI32(&v.t2));
    HOLO_RETURN_NOT_OK(ReadCellVec(in, &v.cells));
  }
  return Status::OK();
}

void SerializeDomains(const PrunedDomains& domains, BinaryWriter* out) {
  // Sorted by cell for deterministic snapshot bytes.
  std::vector<const std::pair<const CellRef, std::vector<ValueId>>*> entries;
  entries.reserve(domains.candidates.size());
  for (const auto& entry : domains.candidates) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  out->WriteU64(entries.size());
  for (const auto* entry : entries) {
    WriteCellRef(out, entry->first);
    WriteI32Vec(out, entry->second);
  }
}

Status DeserializeDomains(BinaryReader* in, size_t dict_size,
                          PrunedDomains* domains) {
  domains->candidates.clear();
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(16, &n));
  for (size_t i = 0; i < n; ++i) {
    CellRef cell;
    HOLO_RETURN_NOT_OK(ReadCellRef(in, &cell));
    std::vector<ValueId> candidates;
    HOLO_RETURN_NOT_OK(ReadValueIdVec(in, dict_size, &candidates));
    domains->candidates.emplace(cell, std::move(candidates));
  }
  return Status::OK();
}

void SerializeProgram(const Program& program, BinaryWriter* out) {
  out->WriteU64(program.rules.size());
  for (const InferenceRule& rule : program.rules) {
    out->WriteI32(static_cast<int32_t>(rule.kind));
    out->WriteI32(rule.dc_index);
    out->WriteI32(rule.head.role);
    out->WriteI32(rule.head.attr);
    out->WriteI32(rule.dict_id);
    out->WriteF64(rule.fixed_weight);
    out->WriteU8(rule.weight_is_learned ? 1 : 0);
  }
}

Status DeserializeProgram(BinaryReader* in, Program* program) {
  program->rules.clear();
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(29, &n));
  program->rules.resize(n);
  for (InferenceRule& rule : program->rules) {
    int32_t kind = 0;
    HOLO_RETURN_NOT_OK(in->ReadI32(&kind));
    if (kind < static_cast<int32_t>(RuleKind::kRandomVariable) ||
        kind > static_cast<int32_t>(RuleKind::kDcRelaxedFeature)) {
      return Status::ParseError("snapshot rule kind out of range");
    }
    rule.kind = static_cast<RuleKind>(kind);
    HOLO_RETURN_NOT_OK(in->ReadI32(&rule.dc_index));
    HOLO_RETURN_NOT_OK(in->ReadI32(&rule.head.role));
    HOLO_RETURN_NOT_OK(in->ReadI32(&rule.head.attr));
    HOLO_RETURN_NOT_OK(in->ReadI32(&rule.dict_id));
    HOLO_RETURN_NOT_OK(in->ReadF64(&rule.fixed_weight));
    uint8_t learned = 0;
    HOLO_RETURN_NOT_OK(in->ReadU8(&learned));
    rule.weight_is_learned = learned != 0;
  }
  return Status::OK();
}

void SerializeRepairs(const std::vector<Repair>& repairs, BinaryWriter* out) {
  out->WriteU64(repairs.size());
  for (const Repair& r : repairs) {
    WriteCellRef(out, r.cell);
    out->WriteI32(r.old_value);
    out->WriteI32(r.new_value);
    out->WriteF64(r.probability);
  }
}

Status DeserializeRepairs(BinaryReader* in, std::vector<Repair>* repairs) {
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(24, &n));
  repairs->resize(n);
  for (Repair& r : *repairs) {
    HOLO_RETURN_NOT_OK(ReadCellRef(in, &r.cell));
    HOLO_RETURN_NOT_OK(in->ReadI32(&r.old_value));
    HOLO_RETURN_NOT_OK(in->ReadI32(&r.new_value));
    HOLO_RETURN_NOT_OK(in->ReadF64(&r.probability));
  }
  return Status::OK();
}

void SerializePosteriors(const std::vector<CellPosterior>& posteriors,
                         BinaryWriter* out) {
  out->WriteU64(posteriors.size());
  for (const CellPosterior& p : posteriors) {
    WriteCellRef(out, p.cell);
    out->WriteI32(p.old_value);
    out->WriteI32(p.map_value);
    out->WriteF64(p.map_prob);
  }
}

Status DeserializePosteriors(BinaryReader* in,
                             std::vector<CellPosterior>* posteriors) {
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(24, &n));
  posteriors->resize(n);
  for (CellPosterior& p : *posteriors) {
    HOLO_RETURN_NOT_OK(ReadCellRef(in, &p.cell));
    HOLO_RETURN_NOT_OK(in->ReadI32(&p.old_value));
    HOLO_RETURN_NOT_OK(in->ReadI32(&p.map_value));
    HOLO_RETURN_NOT_OK(in->ReadF64(&p.map_prob));
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path,
                       std::initializer_list<std::string_view> parts) {
  // Unique temp name per save: concurrent saves to the same path must not
  // interleave into one temp file — each writes its own and the last
  // rename wins with a complete snapshot.
  std::string tmp = path + ".tmp.XXXXXX";
  int fd = ::mkstemp(tmp.data());
  if (fd < 0) return Status::Internal("cannot open for writing: " + tmp);
  ::fchmod(fd, 0644);  // mkstemp creates 0600; snapshots are plain files.
  for (std::string_view part : parts) {
    size_t off = 0;
    while (off < part.size()) {
      ssize_t n = ::write(fd, part.data() + off, part.size() - off);
      if (n < 0) {
        ::close(fd);
        std::remove(tmp.c_str());
        return Status::Internal("write failed: " + tmp);
      }
      off += static_cast<size_t>(n);
    }
  }
  // The data must be durable before the rename publishes the name, or a
  // crash could leave a truncated file under the final path.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::Internal("fsync failed: " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename snapshot into place: " + path);
  }
  // Best-effort directory sync so the rename itself survives a crash.
  size_t slash = path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash + 1);
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

}  // namespace

Status SaveSessionSnapshot(const PipelineContext& ctx, int valid_through,
                           const std::string& path) {
  if (ctx.dataset == nullptr || ctx.dcs == nullptr) {
    return Status::InvalidArgument("snapshot requires an opened session");
  }
  if (valid_through < 0 || valid_through > kNumStages) {
    return Status::InvalidArgument("valid_through out of range");
  }
  const Table& table = ctx.dataset->dirty();
  const Schema& schema = table.schema();

  BinaryWriter payload;
  payload.WriteU64(ConfigFingerprint(ctx.config));
  payload.WriteU64(schema.num_attrs());
  for (const std::string& name : schema.names()) payload.WriteString(name);
  payload.WriteU64(table.num_rows());
  payload.WriteU64(DcsFingerprint(*ctx.dcs, schema));
  payload.WriteU64(
      ExternalDataFingerprint(ctx.dicts, ctx.mds, ctx.extra_detectors));

  // Dictionary + cell values: pins mutate the table and compilation interns
  // matched values, and every persisted artifact references both by id.
  const Dictionary& dict = table.dict();
  payload.WriteU64(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    payload.WriteString(dict.GetString(static_cast<ValueId>(i)));
  }
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    for (ValueId v : table.Column(static_cast<AttrId>(a))) {
      payload.WriteI32(v);
    }
  }

  payload.WriteI32(valid_through);
  const RunStats& stats = ctx.report.stats;
  payload.WriteU64(stats.num_violations);
  payload.WriteU64(stats.num_noisy_cells);
  payload.WriteU64(stats.num_query_vars);
  payload.WriteU64(stats.num_evidence_vars);
  payload.WriteU64(stats.num_candidates);
  payload.WriteU64(stats.num_dc_factors);
  payload.WriteU64(stats.num_grounded_factors);

  if (valid_through > static_cast<int>(StageId::kDetect)) {
    WriteI32Vec(&payload, ctx.attrs);
    SerializeViolations(ctx.violations, &payload);
    WriteCellVec(&payload, ctx.noisy.cells());
  }
  if (valid_through > static_cast<int>(StageId::kCompile)) {
    WriteCellVec(&payload, ctx.query_cells);
    WriteCellVec(&payload, ctx.evidence_cells);
    SerializeDomains(ctx.domains, &payload);
    SerializeProgram(ctx.program, &payload);
    SerializeFactorGraph(ctx.graph, &payload);
    payload.WriteU64(ctx.grounder_stats.num_query_vars);
    payload.WriteU64(ctx.grounder_stats.num_evidence_vars);
    payload.WriteU64(ctx.grounder_stats.num_feature_instances);
    payload.WriteU64(ctx.grounder_stats.num_dc_factors);
    payload.WriteU64(ctx.grounder_stats.num_dc_pairs_considered);
    payload.WriteU64(ctx.ground_runs);
    payload.WriteString(ctx.report.ddlog);
  }
  if (valid_through > static_cast<int>(StageId::kLearn)) {
    SerializeWeightStore(ctx.weights, &payload);
  }
  if (valid_through > static_cast<int>(StageId::kInfer)) {
    SerializeMarginals(ctx.marginals, &payload);
  }
  if (valid_through == kNumStages) {
    SerializeRepairs(ctx.report.repairs, &payload);
    SerializePosteriors(ctx.report.posteriors, &payload);
  }

  // Header and checksum are built separately so the multi-MiB body is
  // never copied into a second buffer on its way to disk.
  const std::string& body = payload.buffer();
  BinaryWriter header;
  header.WriteBytes(std::string_view(kMagic, sizeof(kMagic)));
  header.WriteU32(kSnapshotFormatVersion);
  header.WriteU64(body.size());
  BinaryWriter trailer;
  trailer.WriteU64(HashBytes(body));
  return WriteFileAtomic(path, {header.buffer(), body, trailer.buffer()});
}

Result<int> LoadSessionSnapshot(const std::string& path,
                                PipelineContext* ctx) {
  if (ctx == nullptr || ctx->dataset == nullptr || ctx->dcs == nullptr) {
    return Status::InvalidArgument("restore requires an opened session");
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open snapshot: " + path);
  // Size the buffer from the file length and read straight into it —
  // snapshots run to tens of MiB and a stringstream detour would hold the
  // bytes twice.
  std::streamoff size = in.tellg();
  if (size < 0) return Status::Internal("cannot stat snapshot: " + path);
  std::string bytes(static_cast<size_t>(size), '\0');
  in.seekg(0);
  in.read(bytes.data(), size);
  if (in.gcount() != size) {
    return Status::Internal("cannot read snapshot: " + path);
  }

  if (bytes.size() < kHeaderBytes + kChecksumBytes) {
    return Status::ParseError("snapshot truncated");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a SessionSnapshot file: " + path);
  }
  BinaryReader header(std::string_view(bytes).substr(4, 12));
  uint32_t version = 0;
  uint64_t payload_size = 0;
  HOLO_RETURN_NOT_OK(header.ReadU32(&version));
  HOLO_RETURN_NOT_OK(header.ReadU64(&payload_size));
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "snapshot format version mismatch: file has v" +
        std::to_string(version) + ", this build reads v" +
        std::to_string(kSnapshotFormatVersion));
  }
  if (bytes.size() != kHeaderBytes + payload_size + kChecksumBytes) {
    return Status::ParseError("snapshot truncated");
  }
  std::string_view body =
      std::string_view(bytes).substr(kHeaderBytes, payload_size);
  BinaryReader trailer(std::string_view(bytes).substr(
      kHeaderBytes + payload_size, kChecksumBytes));
  uint64_t stored_checksum = 0;
  HOLO_RETURN_NOT_OK(trailer.ReadU64(&stored_checksum));
  if (HashBytes(body) != stored_checksum) {
    return Status::ParseError("snapshot checksum mismatch (corrupt file)");
  }

  BinaryReader reader(body);

  // --- Compatibility validation, before the context is touched. ---
  Table& table = ctx->dataset->dirty();
  const Schema& schema = table.schema();
  uint64_t config_fp = 0;
  HOLO_RETURN_NOT_OK(reader.ReadU64(&config_fp));
  if (config_fp != ConfigFingerprint(ctx->config)) {
    return Status::InvalidArgument(
        "snapshot config fingerprint mismatch: the snapshot was saved under "
        "a different configuration");
  }
  size_t num_attrs = 0;
  HOLO_RETURN_NOT_OK(reader.ReadCount(8, &num_attrs));
  if (num_attrs != schema.num_attrs()) {
    return Status::InvalidArgument("snapshot schema mismatch");
  }
  for (size_t a = 0; a < num_attrs; ++a) {
    std::string name;
    HOLO_RETURN_NOT_OK(reader.ReadString(&name));
    if (name != schema.name(static_cast<AttrId>(a))) {
      return Status::InvalidArgument("snapshot schema mismatch: attribute " +
                                     std::to_string(a) + " is '" + name +
                                     "', dataset has '" +
                                     schema.name(static_cast<AttrId>(a)) +
                                     "'");
    }
  }
  uint64_t num_rows = 0;
  HOLO_RETURN_NOT_OK(reader.ReadU64(&num_rows));
  if (num_rows != table.num_rows()) {
    return Status::InvalidArgument("snapshot row count mismatch");
  }
  uint64_t dcs_fp = 0;
  HOLO_RETURN_NOT_OK(reader.ReadU64(&dcs_fp));
  if (dcs_fp != DcsFingerprint(*ctx->dcs, schema)) {
    return Status::InvalidArgument(
        "snapshot denial-constraint set mismatch");
  }
  uint64_t extdata_fp = 0;
  HOLO_RETURN_NOT_OK(reader.ReadU64(&extdata_fp));
  if (extdata_fp !=
      ExternalDataFingerprint(ctx->dicts, ctx->mds, ctx->extra_detectors)) {
    return Status::InvalidArgument(
        "snapshot external-data/detector inputs mismatch");
  }

  // Dictionary alignment: the dataset's interned strings must agree with
  // the snapshot's on the shared prefix — this is what makes the persisted
  // value ids meaningful. Entries the save-time session interned on top
  // (e.g. dictionary-matched candidates) are re-interned below.
  size_t dict_size = 0;
  HOLO_RETURN_NOT_OK(reader.ReadCount(8, &dict_size));
  std::vector<std::string> dict_values(dict_size);
  for (std::string& s : dict_values) {
    HOLO_RETURN_NOT_OK(reader.ReadString(&s));
  }
  Dictionary& dict = table.dict();
  size_t shared = std::min(dict_size, dict.size());
  for (size_t i = 0; i < shared; ++i) {
    if (dict.GetString(static_cast<ValueId>(i)) != dict_values[i]) {
      return Status::InvalidArgument(
          "dataset does not match snapshot: dictionary mismatch at value id " +
          std::to_string(i));
    }
  }
  // Entries past the shared prefix are re-interned on commit, and Intern
  // dedupes — a duplicate (against the prefix or within the tail) would
  // silently shift every id after it. A real dictionary never repeats, so
  // reject such snapshots outright.
  if (dict.size() < dict_size) {
    std::unordered_set<std::string_view> tail;
    for (size_t i = dict.size(); i < dict_size; ++i) {
      if (dict.Lookup(dict_values[i]) >= 0 ||
          !tail.insert(dict_values[i]).second) {
        return Status::ParseError("snapshot dictionary has duplicate entries");
      }
    }
  }
  std::vector<std::vector<ValueId>> columns(num_attrs);
  for (std::vector<ValueId>& column : columns) {
    column.resize(num_rows);
    for (ValueId& v : column) {
      HOLO_RETURN_NOT_OK(reader.ReadI32(&v));
      if (v < 0 || static_cast<size_t>(v) >= dict_size) {
        return Status::ParseError("snapshot value id out of range");
      }
    }
  }
  int valid_through = 0;
  HOLO_RETURN_NOT_OK(reader.ReadI32(&valid_through));
  if (valid_through < 0 || valid_through > kNumStages) {
    return Status::ParseError("snapshot valid_through out of range");
  }

  // --- Parse every artifact section into staging locals. Nothing in the
  // context or the dataset is touched until the whole payload parsed, so a
  // malformed section can never leave a half-restored session behind. ---
  uint64_t counters[7] = {};
  for (uint64_t& c : counters) HOLO_RETURN_NOT_OK(reader.ReadU64(&c));

  std::vector<AttrId> attrs;
  std::vector<Violation> violations;
  std::vector<CellRef> noisy_cells;
  if (valid_through > static_cast<int>(StageId::kDetect)) {
    HOLO_RETURN_NOT_OK(ReadI32Vec(&reader, &attrs));
    HOLO_RETURN_NOT_OK(DeserializeViolations(&reader, &violations));
    HOLO_RETURN_NOT_OK(ReadCellVec(&reader, &noisy_cells));
  }
  std::vector<CellRef> query_cells;
  std::vector<CellRef> evidence_cells;
  PrunedDomains domains;
  Program program;
  FactorGraph graph;
  Grounder::Stats grounder_stats;
  uint64_t ground_runs = 0;
  std::string ddlog;
  if (valid_through > static_cast<int>(StageId::kCompile)) {
    HOLO_RETURN_NOT_OK(ReadCellVec(&reader, &query_cells));
    HOLO_RETURN_NOT_OK(ReadCellVec(&reader, &evidence_cells));
    HOLO_RETURN_NOT_OK(DeserializeDomains(&reader, dict_size, &domains));
    HOLO_RETURN_NOT_OK(DeserializeProgram(&reader, &program));
    FactorGraphBounds bounds;
    bounds.dict_size = dict_size;
    bounds.num_dcs = ctx->dcs->size();
    HOLO_RETURN_NOT_OK(DeserializeFactorGraph(&reader, &graph, bounds));
    HOLO_RETURN_NOT_OK(reader.ReadU64(&grounder_stats.num_query_vars));
    HOLO_RETURN_NOT_OK(reader.ReadU64(&grounder_stats.num_evidence_vars));
    HOLO_RETURN_NOT_OK(
        reader.ReadU64(&grounder_stats.num_feature_instances));
    HOLO_RETURN_NOT_OK(reader.ReadU64(&grounder_stats.num_dc_factors));
    HOLO_RETURN_NOT_OK(
        reader.ReadU64(&grounder_stats.num_dc_pairs_considered));
    HOLO_RETURN_NOT_OK(reader.ReadU64(&ground_runs));
    HOLO_RETURN_NOT_OK(reader.ReadString(&ddlog));
  }
  WeightStore weights;
  if (valid_through > static_cast<int>(StageId::kLearn)) {
    HOLO_RETURN_NOT_OK(DeserializeWeightStore(&reader, &weights));
  }
  Marginals marginals{0};
  if (valid_through > static_cast<int>(StageId::kInfer)) {
    HOLO_RETURN_NOT_OK(DeserializeMarginals(&reader, &marginals));
  }
  std::vector<Repair> repairs;
  std::vector<CellPosterior> posteriors;
  if (valid_through == kNumStages) {
    HOLO_RETURN_NOT_OK(DeserializeRepairs(&reader, &repairs));
    HOLO_RETURN_NOT_OK(DeserializePosteriors(&reader, &posteriors));
  }
  if (reader.remaining() != 0) {
    return Status::ParseError("snapshot has trailing bytes");
  }

  // --- Cross-artifact consistency: every cell, tuple, constraint, and
  // value id the staged artifacts carry must stay inside the session's
  // bounds, so a checksum-valid but internally inconsistent snapshot can
  // never make a later stage index out of range. ---
  auto cell_ok = [&](const CellRef& c) {
    return c.tid >= 0 && static_cast<uint64_t>(c.tid) < num_rows &&
           c.attr >= 0 && static_cast<size_t>(c.attr) < num_attrs;
  };
  auto tuple_ok = [&](TupleId t) {
    return t >= 0 && static_cast<uint64_t>(t) < num_rows;
  };
  auto value_ok = [&](ValueId v) {
    return v >= 0 && static_cast<size_t>(v) < dict_size;
  };
  Status inconsistent = Status::ParseError("snapshot artifacts out of range");
  for (AttrId a : attrs) {
    if (a < 0 || static_cast<size_t>(a) >= num_attrs) return inconsistent;
  }
  for (const Violation& v : violations) {
    if (v.dc_index < 0 ||
        static_cast<size_t>(v.dc_index) >= ctx->dcs->size() ||
        !tuple_ok(v.t1) || !tuple_ok(v.t2)) {
      return inconsistent;
    }
    for (const CellRef& c : v.cells) {
      if (!cell_ok(c)) return inconsistent;
    }
  }
  for (const CellRef& c : noisy_cells) {
    if (!cell_ok(c)) return inconsistent;
  }
  for (const CellRef& c : query_cells) {
    if (!cell_ok(c)) return inconsistent;
  }
  for (const CellRef& c : evidence_cells) {
    if (!cell_ok(c)) return inconsistent;
  }
  for (const auto& [cell, candidates] : domains.candidates) {
    if (!cell_ok(cell)) return inconsistent;
  }
  for (const Variable& var : graph.variables()) {
    if (!cell_ok(var.cell)) return inconsistent;
  }
  for (const DcFactor& factor : graph.dc_factors()) {
    if (!tuple_ok(factor.t1) || !tuple_ok(factor.t2)) return inconsistent;
  }
  if (valid_through > static_cast<int>(StageId::kInfer)) {
    // RepairStage indexes marginals by variable id and domains by the MAP
    // index, so the shapes must agree with the persisted graph.
    if (marginals.probs().size() != graph.num_variables()) {
      return inconsistent;
    }
    for (size_t v = 0; v < graph.num_variables(); ++v) {
      if (marginals.probs()[v].size() !=
          graph.variable(static_cast<int>(v)).NumCandidates()) {
        return inconsistent;
      }
    }
  }
  for (const Repair& r : repairs) {
    if (!cell_ok(r.cell) || !value_ok(r.old_value) ||
        !value_ok(r.new_value)) {
      return inconsistent;
    }
  }
  for (const CellPosterior& p : posteriors) {
    if (!cell_ok(p.cell) || !value_ok(p.old_value) ||
        !value_ok(p.map_value)) {
      return inconsistent;
    }
  }

  // --- Everything parsed and validated: commit. ---
  for (size_t i = dict.size(); i < dict_size; ++i) {
    dict.Intern(dict_values[i]);
  }
  for (size_t a = 0; a < num_attrs; ++a) {
    for (size_t t = 0; t < num_rows; ++t) {
      table.Set(static_cast<TupleId>(t), static_cast<AttrId>(a),
                columns[a][t]);
    }
  }
  RunStats& stats = ctx->report.stats;
  stats.num_violations = counters[0];
  stats.num_noisy_cells = counters[1];
  stats.num_query_vars = counters[2];
  stats.num_evidence_vars = counters[3];
  stats.num_candidates = counters[4];
  stats.num_dc_factors = counters[5];
  stats.num_grounded_factors = counters[6];
  if (valid_through > static_cast<int>(StageId::kDetect)) {
    ctx->attrs = std::move(attrs);
    ctx->violations = std::move(violations);
    ctx->noisy = NoisyCells();
    for (const CellRef& c : noisy_cells) ctx->noisy.Add(c);
  }
  if (valid_through > static_cast<int>(StageId::kCompile)) {
    ctx->query_cells = std::move(query_cells);
    ctx->evidence_cells = std::move(evidence_cells);
    ctx->domains = std::move(domains);
    ctx->program = std::move(program);
    ctx->graph = std::move(graph);
    ctx->grounder_stats = grounder_stats;
    ctx->ground_runs = ground_runs;
    ctx->report.ddlog = std::move(ddlog);
  }
  if (valid_through > static_cast<int>(StageId::kLearn)) {
    ctx->weights = std::move(weights);
  }
  if (valid_through > static_cast<int>(StageId::kInfer)) {
    ctx->marginals = std::move(marginals);
  }
  if (valid_through == kNumStages) {
    ctx->report.repairs = std::move(repairs);
    ctx->report.posteriors = std::move(posteriors);
  }
  return valid_through;
}

}  // namespace holoclean
