#include "holoclean/io/session_snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>

#include "holoclean/util/failpoint.h"
#include <unordered_set>
#include <utility>

#include "holoclean/core/stage.h"
#include "holoclean/io/mmap_file.h"
#include "holoclean/model/feature_registry.h"
#include "holoclean/util/hash.h"

namespace holoclean {

namespace {

constexpr char kMagic[4] = {'H', 'C', 'S', 'S'};
/// Magic (4) + format version (u32) + one u64: the payload size in v1, the
/// section-directory offset in v2.
constexpr size_t kHeaderBytes = 16;
/// Trailing FNV-1a checksum (u64): over the payload in v1, over the
/// section directory in v2 (sections carry their own checksums there).
constexpr size_t kChecksumBytes = 8;

/// v2 section identifiers, in file order. Which sections a snapshot
/// carries is a function of its valid_through (mirroring the v1 payload's
/// conditional trailing blocks).
enum class SectionId : uint32_t {
  kMeta = 0,
  kDictionary = 1,
  kTable = 2,
  kDetect = 3,
  kCompile = 4,
  kGraph = 5,
  kWeights = 6,
  kMarginals = 7,
  kReport = 8,
  /// Per-column dictionary arrays + sorted prefixes of the ColumnStore,
  /// so restores install codes wholesale instead of re-encoding cell by
  /// cell. Always written by current saves; optional on load (v2 files
  /// predating the section restore through the per-cell path).
  kColumnStore = 9,
};

/// id (u32) + codec (u32) + offset (u64) + size (u64) + checksum (u64).
constexpr size_t kDirEntryBytes = 32;

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Checked narrowing for values decoded from u64 streams: a packed stream
/// can carry any u64, so every value destined for an int32 field must be
/// range-checked before the cast (a silent wrap would corrupt ids).
bool CastI32(uint64_t v, int32_t* out) {
  if (v > static_cast<uint64_t>(INT32_MAX)) return false;
  *out = static_cast<int32_t>(v);
  return true;
}

// --- Small-piece raw codecs (the v1 wire forms) ----------------------------

void WriteCellRef(BinaryWriter* out, const CellRef& c) {
  out->WriteI32(c.tid);
  out->WriteI32(c.attr);
}

Status ReadCellRef(BinaryReader* in, CellRef* c) {
  HOLO_RETURN_NOT_OK(in->ReadI32(&c->tid));
  HOLO_RETURN_NOT_OK(in->ReadI32(&c->attr));
  return Status::OK();
}

void WriteCellVec(BinaryWriter* out, const std::vector<CellRef>& cells) {
  out->WriteU64(cells.size());
  for (const CellRef& c : cells) WriteCellRef(out, c);
}

Status ReadCellVec(BinaryReader* in, std::vector<CellRef>* cells) {
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(8, &n));
  cells->resize(n);
  for (CellRef& c : *cells) HOLO_RETURN_NOT_OK(ReadCellRef(in, &c));
  return Status::OK();
}

void WriteI32Vec(BinaryWriter* out, const std::vector<int32_t>& v) {
  out->WriteU64(v.size());
  for (int32_t x : v) out->WriteI32(x);
}

Status ReadI32Vec(BinaryReader* in, std::vector<int32_t>* v) {
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(4, &n));
  v->resize(n);
  for (int32_t& x : *v) HOLO_RETURN_NOT_OK(in->ReadI32(&x));
  return Status::OK();
}

void WriteF64Vec(BinaryWriter* out, const std::vector<double>& v) {
  out->WriteU64(v.size());
  for (double x : v) out->WriteF64(x);
}

Status ReadF64Vec(BinaryReader* in, std::vector<double>* v) {
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(8, &n));
  v->resize(n);
  for (double& x : *v) HOLO_RETURN_NOT_OK(in->ReadF64(&x));
  return Status::OK();
}

Status ReadValueIdVec(BinaryReader* in, size_t dict_size,
                      std::vector<ValueId>* v) {
  HOLO_RETURN_NOT_OK(ReadI32Vec(in, v));
  for (ValueId id : *v) {
    if (id < 0 || static_cast<size_t>(id) >= dict_size) {
      return Status::ParseError("snapshot value id out of range");
    }
  }
  return Status::OK();
}

// --- Small-piece packed codecs ---------------------------------------------
// Cell vectors transpose into a tid stream and an attr stream: both are
// sorted or block-repetitive in practice, which the delta/RLE choosers
// exploit. Sizes must agree on read; every value is checked against the
// int32 range before narrowing.

void WritePackedCellVec(BinaryWriter* out, const std::vector<CellRef>& cells) {
  std::vector<uint64_t> tids(cells.size());
  std::vector<uint64_t> attrs(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    tids[i] = static_cast<uint64_t>(cells[i].tid);
    attrs[i] = static_cast<uint64_t>(cells[i].attr);
  }
  WriteU64Stream(out, tids);
  WriteU64Stream(out, attrs);
}

Status ReadPackedCellVec(BinaryReader* in, std::vector<CellRef>* cells) {
  std::vector<uint64_t> tids;
  std::vector<uint64_t> attrs;
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &tids));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &attrs));
  if (tids.size() != attrs.size()) {
    return Status::ParseError("snapshot cell streams disagree");
  }
  cells->resize(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    if (!CastI32(tids[i], &(*cells)[i].tid) ||
        !CastI32(attrs[i], &(*cells)[i].attr)) {
      return Status::ParseError("snapshot cell out of range");
    }
  }
  return Status::OK();
}

}  // namespace

uint64_t ConfigFingerprint(const HoloCleanConfig& c) {
  // Every result-affecting knob must be mixed in below — a knob the
  // fingerprint misses would let a snapshot restore under a config that
  // produces different results, breaking the bit-identical guarantee.
  // This assert trips when HoloCleanConfig gains (or loses) a field, as a
  // reminder to update the fingerprint and bump kSnapshotFormatVersion if
  // the default changed behavior. (x86-64/AArch64 SysV layout.)
  //
  // compiled_kernel, dc_table_cap, and columnar are deliberately NOT mixed
  // in: the compiled kernel and the columnar scan paths are bit-identical
  // to their reference paths (enforced by the differential tests), so
  // snapshots interchange freely across those knobs — including
  // pre-existing snapshots written before the knobs existed.
  static_assert(sizeof(HoloCleanConfig) == 184,
                "HoloCleanConfig changed: update ConfigFingerprint");
  uint64_t h = HashBytes("holoclean-config-v1");
  auto mix_u = [&h](uint64_t v) { h = HashCombine(h, v); };
  auto mix_d = [&](double v) { mix_u(DoubleBits(v)); };
  mix_d(c.tau);
  mix_u(c.max_candidates);
  mix_u(static_cast<uint64_t>(c.dc_mode));
  mix_u(c.partitioning ? 1 : 0);
  mix_d(c.dc_factor_weight);
  mix_d(c.minimality_weight);
  mix_d(c.sim_threshold);
  mix_d(c.source_trust_scale);
  mix_d(c.stats_prior_weight);
  mix_d(c.freq_prior_weight);
  mix_d(c.dc_violation_init);
  mix_d(c.ext_dict_init);
  mix_d(c.support_prior);
  mix_u(static_cast<uint64_t>(c.epochs));
  mix_d(c.learning_rate);
  mix_d(c.lr_decay);
  mix_d(c.l2);
  mix_u(c.max_training_cells);
  mix_u(static_cast<uint64_t>(c.gibbs_burn_in));
  mix_u(static_cast<uint64_t>(c.gibbs_samples));
  mix_u(c.seed);
  return h;
}

uint64_t DcsFingerprint(const std::vector<DenialConstraint>& dcs,
                        const Schema& schema) {
  uint64_t h = HashBytes("holoclean-dcs-v1");
  for (const DenialConstraint& dc : dcs) {
    h = HashCombine(h, HashBytes(dc.ToString(schema)));
  }
  return h;
}

namespace {

uint64_t TableContentFingerprint(const Table& table) {
  uint64_t h = HashBytes("holoclean-table-v1");
  for (const std::string& name : table.schema().names()) {
    h = HashCombine(h, HashBytes(name));
  }
  h = HashCombine(h, table.num_rows());
  for (size_t t = 0; t < table.num_rows(); ++t) {
    for (size_t a = 0; a < table.schema().num_attrs(); ++a) {
      h = HashCombine(h, HashBytes(table.GetString(static_cast<TupleId>(t),
                                                   static_cast<AttrId>(a))));
    }
  }
  return h;
}

}  // namespace

uint64_t ExternalDataFingerprint(const ExtDictCollection* dicts,
                                 const std::vector<MatchingDependency>* mds,
                                 const DetectorSuite* extra_detectors) {
  uint64_t h = HashBytes("holoclean-extdata-v1");
  h = HashCombine(h, dicts == nullptr ? 0 : dicts->size());
  if (dicts != nullptr) {
    for (size_t k = 0; k < dicts->size(); ++k) {
      const ExtDict& dict = dicts->Get(static_cast<int>(k));
      h = HashCombine(h, HashBytes(dict.name()));
      h = HashCombine(h, TableContentFingerprint(dict.records()));
    }
  }
  h = HashCombine(h, mds == nullptr ? 0 : mds->size());
  if (mds != nullptr) {
    for (const MatchingDependency& md : *mds) {
      h = HashCombine(h, HashBytes(md.name));
      h = HashCombine(h, static_cast<uint64_t>(md.dict_id));
      h = HashCombine(h, md.conditions.size());
      for (const MatchClause& c : md.conditions) {
        h = HashCombine(h, HashBytes(c.data_attr));
        h = HashCombine(h, HashBytes(c.ext_attr));
        h = HashCombine(h, c.approximate ? 1 : 0);
        h = HashCombine(h, DoubleBits(c.sim_threshold));
      }
      h = HashCombine(h, HashBytes(md.target_data_attr));
      h = HashCombine(h, HashBytes(md.target_ext_attr));
    }
  }
  h = HashCombine(h, extra_detectors == nullptr ? 0 : extra_detectors->size());
  if (extra_detectors != nullptr) {
    for (const std::string& name : extra_detectors->names()) {
      h = HashCombine(h, HashBytes(name));
    }
  }
  return h;
}

// --- FactorGraph -----------------------------------------------------------

namespace {

void SerializeFactorGraphRaw(const FactorGraph& graph, BinaryWriter* out) {
  out->WriteU64(graph.num_variables());
  for (const Variable& var : graph.variables()) {
    WriteCellRef(out, var.cell);
    WriteI32Vec(out, var.domain);
    out->WriteI32(var.init_index);
    out->WriteU8(var.is_evidence ? 1 : 0);
    WriteF64Vec(out, var.prior_bias);
    WriteI32Vec(out, var.feat_begin);
    out->WriteU64(var.features.size());
    for (const FeatureInstance& f : var.features) {
      out->WriteU64(f.weight_key);
      out->WriteF32(f.activation);
    }
  }
  out->WriteU64(graph.dc_factors().size());
  for (const DcFactor& f : graph.dc_factors()) {
    out->WriteI32(f.dc_index);
    out->WriteI32(f.t1);
    out->WriteI32(f.t2);
    out->WriteF64(f.weight);
    WriteI32Vec(out, f.var_ids);
  }
}

/// The structural invariants AddVariable asserts (and UnaryScore indexes
/// by), validated so a corrupt payload reports a Status instead of
/// aborting. Shared by the raw and packed decoders.
Status ValidateVariable(const Variable& var) {
  if (var.domain.empty() || var.prior_bias.size() != var.domain.size() ||
      var.feat_begin.size() != var.domain.size() + 1 ||
      var.init_index < -1 ||
      var.init_index >= static_cast<int>(var.domain.size())) {
    return Status::ParseError("snapshot variable is malformed");
  }
  for (int32_t b : var.feat_begin) {
    if (b < 0 || static_cast<size_t>(b) > var.features.size()) {
      return Status::ParseError("snapshot variable is malformed");
    }
  }
  return Status::OK();
}

Status DeserializeFactorGraphRaw(BinaryReader* in, FactorGraph* graph,
                                 const FactorGraphBounds& bounds) {
  size_t num_vars = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(1, &num_vars));
  for (size_t i = 0; i < num_vars; ++i) {
    Variable var;
    HOLO_RETURN_NOT_OK(ReadCellRef(in, &var.cell));
    HOLO_RETURN_NOT_OK(ReadValueIdVec(in, bounds.dict_size, &var.domain));
    HOLO_RETURN_NOT_OK(in->ReadI32(&var.init_index));
    uint8_t is_evidence = 0;
    HOLO_RETURN_NOT_OK(in->ReadU8(&is_evidence));
    var.is_evidence = is_evidence != 0;
    HOLO_RETURN_NOT_OK(ReadF64Vec(in, &var.prior_bias));
    HOLO_RETURN_NOT_OK(ReadI32Vec(in, &var.feat_begin));
    size_t num_features = 0;
    HOLO_RETURN_NOT_OK(in->ReadCount(12, &num_features));
    var.features.resize(num_features);
    for (FeatureInstance& f : var.features) {
      HOLO_RETURN_NOT_OK(in->ReadU64(&f.weight_key));
      HOLO_RETURN_NOT_OK(in->ReadF32(&f.activation));
    }
    HOLO_RETURN_NOT_OK(ValidateVariable(var));
    graph->AddVariable(std::move(var));
  }
  size_t num_factors = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(1, &num_factors));
  for (size_t i = 0; i < num_factors; ++i) {
    DcFactor factor;
    HOLO_RETURN_NOT_OK(in->ReadI32(&factor.dc_index));
    if (factor.dc_index < 0 ||
        static_cast<size_t>(factor.dc_index) >= bounds.num_dcs) {
      return Status::ParseError(
          "snapshot factor references unknown constraint");
    }
    HOLO_RETURN_NOT_OK(in->ReadI32(&factor.t1));
    HOLO_RETURN_NOT_OK(in->ReadI32(&factor.t2));
    HOLO_RETURN_NOT_OK(in->ReadF64(&factor.weight));
    HOLO_RETURN_NOT_OK(ReadI32Vec(in, &factor.var_ids));
    for (int32_t v : factor.var_ids) {
      if (v < 0 || static_cast<size_t>(v) >= num_vars) {
        return Status::ParseError(
            "snapshot factor references unknown variable");
      }
    }
    graph->AddDcFactor(std::move(factor));
  }
  return Status::OK();
}

/// Packed graph layout: every per-variable and per-feature field becomes
/// its own adaptive stream (column transposition), because each column is
/// individually low-entropy where the interleaved rows are not. Feature
/// weight keys are decomposed into their WeightKeyCodec bit fields —
/// kind/p1/p2/ctx/value — which turns 8 high-entropy bytes per feature
/// into five streams of near-constant or small integers. The field split
/// covers all 64 bits (4+8+8+22+22), so repacking is lossless for any
/// key; decode validates each field fits its width so the repack cannot
/// silently mask corrupt values.
void SerializeFactorGraphPacked(const FactorGraph& graph, BinaryWriter* out) {
  const size_t n_vars = graph.num_variables();
  WriteVarint(out, n_vars);
  std::vector<uint64_t> tids(n_vars);
  std::vector<uint64_t> attrs(n_vars);
  std::vector<uint64_t> domain_counts(n_vars);
  std::vector<uint64_t> init_plus1(n_vars);
  std::vector<uint64_t> is_evidence(n_vars);
  std::vector<uint64_t> feat_counts(n_vars);
  std::vector<uint64_t> domain_flat;
  std::vector<double> bias_flat;
  std::vector<uint64_t> feat_begin_flat;
  size_t total_features = 0;
  for (size_t i = 0; i < n_vars; ++i) {
    const Variable& var = graph.variable(static_cast<int>(i));
    tids[i] = static_cast<uint64_t>(var.cell.tid);
    attrs[i] = static_cast<uint64_t>(var.cell.attr);
    domain_counts[i] = var.domain.size();
    init_plus1[i] = static_cast<uint64_t>(var.init_index + 1);
    is_evidence[i] = var.is_evidence ? 1 : 0;
    feat_counts[i] = var.features.size();
    total_features += var.features.size();
    for (ValueId v : var.domain) domain_flat.push_back(v);
    for (double b : var.prior_bias) bias_flat.push_back(b);
    for (int32_t b : var.feat_begin) feat_begin_flat.push_back(b);
  }
  WriteU64Stream(out, tids);
  WriteU64Stream(out, attrs);
  WriteU64Stream(out, domain_counts);
  WriteU64Stream(out, domain_flat);
  WriteU64Stream(out, init_plus1);
  WriteU64Stream(out, is_evidence);
  WriteF64Stream(out, bias_flat);
  WriteU64Stream(out, feat_begin_flat);
  WriteU64Stream(out, feat_counts);

  // The key's three small fields (kind, p1, p2) are fused into one 20-bit
  // "meta" value: they change together (e.g. the per-candidate alternation
  // of co-occurrence and cond-prob features over context attributes), and
  // the fused stream draws from a small set the dictionary encoding
  // collapses to mostly one-byte indexes.
  std::vector<uint64_t> metas(total_features);
  std::vector<uint64_t> ctxs(total_features);
  std::vector<uint64_t> vals(total_features);
  std::vector<float> acts(total_features);
  size_t k = 0;
  for (size_t i = 0; i < n_vars; ++i) {
    for (const FeatureInstance& f :
         graph.variable(static_cast<int>(i)).features) {
      metas[k] = ((f.weight_key >> 60) << 16) |
                 (((f.weight_key >> 52) & 0xFF) << 8) |
                 ((f.weight_key >> 44) & 0xFF);
      ctxs[k] = (f.weight_key >> WeightKeyCodec::kValueBits) &
                WeightKeyCodec::kValueMask;
      vals[k] = f.weight_key & WeightKeyCodec::kValueMask;
      acts[k] = f.activation;
      ++k;
    }
  }
  WriteU64Stream(out, metas);
  WriteU64Stream(out, ctxs);
  WriteU64Stream(out, vals);
  WriteF32Stream(out, acts);

  const auto& factors = graph.dc_factors();
  WriteVarint(out, factors.size());
  std::vector<uint64_t> f_dc(factors.size());
  std::vector<uint64_t> f_t1(factors.size());
  std::vector<uint64_t> f_t2(factors.size());
  std::vector<double> f_weights(factors.size());
  std::vector<uint64_t> f_var_counts(factors.size());
  std::vector<uint64_t> f_var_flat;
  // Var ids are stored as a zigzag delta chain: each factor's first id is
  // relative to the previous factor's first id and later ids to their
  // in-factor predecessor. Factors arrive roughly sorted by tuple, so the
  // deltas are small where the raw ids are not; the per-factor counts make
  // the transform reversible.
  int32_t prev_first = 0;
  for (size_t i = 0; i < factors.size(); ++i) {
    f_dc[i] = static_cast<uint64_t>(factors[i].dc_index);
    f_t1[i] = static_cast<uint64_t>(factors[i].t1);
    f_t2[i] = static_cast<uint64_t>(factors[i].t2);
    f_weights[i] = factors[i].weight;
    f_var_counts[i] = factors[i].var_ids.size();
    int32_t prev = prev_first;
    for (size_t j = 0; j < factors[i].var_ids.size(); ++j) {
      int32_t v = factors[i].var_ids[j];
      f_var_flat.push_back(ZigzagEncode(v - prev));
      prev = v;
      if (j == 0) prev_first = v;
    }
  }
  WriteU64Stream(out, f_dc);
  WriteU64Stream(out, f_t1);
  WriteU64Stream(out, f_t2);
  WriteF64Stream(out, f_weights);
  WriteU64Stream(out, f_var_counts);
  WriteU64Stream(out, f_var_flat);
}

Status DeserializeFactorGraphPacked(BinaryReader* in, FactorGraph* graph,
                                    const FactorGraphBounds& bounds) {
  Status malformed = Status::ParseError("snapshot variable is malformed");
  uint64_t n_vars = 0;
  HOLO_RETURN_NOT_OK(ReadVarint(in, &n_vars));
  std::vector<uint64_t> tids;
  std::vector<uint64_t> attrs;
  std::vector<uint64_t> domain_counts;
  std::vector<uint64_t> domain_flat;
  std::vector<uint64_t> init_plus1;
  std::vector<uint64_t> is_evidence;
  std::vector<double> bias_flat;
  std::vector<uint64_t> feat_begin_flat;
  std::vector<uint64_t> feat_counts;
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &tids));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &attrs));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &domain_counts));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &domain_flat));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &init_plus1));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &is_evidence));
  HOLO_RETURN_NOT_OK(ReadF64Stream(in, &bias_flat));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &feat_begin_flat));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &feat_counts));
  if (tids.size() != n_vars || attrs.size() != n_vars ||
      domain_counts.size() != n_vars || init_plus1.size() != n_vars ||
      is_evidence.size() != n_vars || feat_counts.size() != n_vars) {
    return malformed;
  }
  size_t total_domain = 0;
  size_t total_features = 0;
  for (size_t i = 0; i < n_vars; ++i) {
    if (domain_counts[i] > domain_flat.size() ||
        feat_counts[i] > (uint64_t{1} << 32)) {
      return malformed;
    }
    total_domain += domain_counts[i];
    total_features += feat_counts[i];
  }
  if (domain_flat.size() != total_domain ||
      bias_flat.size() != total_domain ||
      feat_begin_flat.size() != total_domain + n_vars) {
    return malformed;
  }

  std::vector<uint64_t> metas;
  std::vector<uint64_t> ctxs;
  std::vector<uint64_t> vals;
  std::vector<float> acts;
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &metas));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &ctxs));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &vals));
  HOLO_RETURN_NOT_OK(ReadF32Stream(in, &acts));
  if (metas.size() != total_features || ctxs.size() != total_features ||
      vals.size() != total_features || acts.size() != total_features) {
    return malformed;
  }

  size_t d = 0;  // Cursor into the flattened domain/bias/feat_begin data.
  size_t fb = 0;
  size_t f = 0;  // Cursor into the feature streams.
  for (size_t i = 0; i < n_vars; ++i) {
    Variable var;
    if (!CastI32(tids[i], &var.cell.tid) ||
        !CastI32(attrs[i], &var.cell.attr)) {
      return malformed;
    }
    size_t dom = domain_counts[i];
    var.domain.resize(dom);
    var.prior_bias.resize(dom);
    for (size_t j = 0; j < dom; ++j) {
      if (!CastI32(domain_flat[d + j], &var.domain[j]) ||
          static_cast<size_t>(var.domain[j]) >= bounds.dict_size) {
        return Status::ParseError("snapshot value id out of range");
      }
      var.prior_bias[j] = bias_flat[d + j];
    }
    d += dom;
    if (init_plus1[i] > dom) return malformed;
    var.init_index = static_cast<int>(init_plus1[i]) - 1;
    var.is_evidence = is_evidence[i] != 0;
    var.feat_begin.resize(dom + 1);
    for (size_t j = 0; j <= dom; ++j) {
      if (!CastI32(feat_begin_flat[fb + j], &var.feat_begin[j])) {
        return malformed;
      }
    }
    fb += dom + 1;
    size_t nf = feat_counts[i];
    var.features.resize(nf);
    for (size_t j = 0; j < nf; ++j, ++f) {
      // Each field must fit its bit width: the repack below would silently
      // mask an out-of-range value and break the round trip.
      if (metas[f] > 0xFFFFF || ctxs[f] > WeightKeyCodec::kValueMask ||
          vals[f] > WeightKeyCodec::kValueMask) {
        return malformed;
      }
      var.features[j].weight_key =
          ((metas[f] >> 16) << 60) | (((metas[f] >> 8) & 0xFF) << 52) |
          ((metas[f] & 0xFF) << 44) |
          (ctxs[f] << WeightKeyCodec::kValueBits) | vals[f];
      var.features[j].activation = acts[f];
    }
    HOLO_RETURN_NOT_OK(ValidateVariable(var));
    graph->AddVariable(std::move(var));
  }

  uint64_t n_factors = 0;
  HOLO_RETURN_NOT_OK(ReadVarint(in, &n_factors));
  std::vector<uint64_t> f_dc;
  std::vector<uint64_t> f_t1;
  std::vector<uint64_t> f_t2;
  std::vector<double> f_weights;
  std::vector<uint64_t> f_var_counts;
  std::vector<uint64_t> f_var_flat;
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &f_dc));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &f_t1));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &f_t2));
  HOLO_RETURN_NOT_OK(ReadF64Stream(in, &f_weights));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &f_var_counts));
  HOLO_RETURN_NOT_OK(ReadU64Stream(in, &f_var_flat));
  if (f_dc.size() != n_factors || f_t1.size() != n_factors ||
      f_t2.size() != n_factors || f_weights.size() != n_factors ||
      f_var_counts.size() != n_factors) {
    return Status::ParseError("snapshot factor streams disagree");
  }
  size_t v = 0;
  int64_t prev_first = 0;  // Reverses the writer's zigzag delta chain.
  for (size_t i = 0; i < n_factors; ++i) {
    DcFactor factor;
    if (!CastI32(f_dc[i], &factor.dc_index) ||
        static_cast<size_t>(factor.dc_index) >= bounds.num_dcs) {
      return Status::ParseError(
          "snapshot factor references unknown constraint");
    }
    if (!CastI32(f_t1[i], &factor.t1) || !CastI32(f_t2[i], &factor.t2)) {
      return Status::ParseError("snapshot factor streams disagree");
    }
    factor.weight = f_weights[i];
    uint64_t nv = f_var_counts[i];
    if (nv > f_var_flat.size() - v) {
      return Status::ParseError("snapshot factor streams disagree");
    }
    factor.var_ids.resize(nv);
    int64_t prev = prev_first;
    for (size_t j = 0; j < nv; ++j, ++v) {
      // Unsigned arithmetic: a corrupt delta must wrap deterministically
      // into the range check, not overflow into UB.
      int64_t id = static_cast<int64_t>(
          static_cast<uint64_t>(prev) +
          static_cast<uint64_t>(ZigzagDecode(f_var_flat[v])));
      if (id < 0 || static_cast<uint64_t>(id) >= n_vars) {
        return Status::ParseError(
            "snapshot factor references unknown variable");
      }
      factor.var_ids[j] = static_cast<int32_t>(id);
      prev = id;
      if (j == 0) prev_first = id;
    }
    graph->AddDcFactor(std::move(factor));
  }
  if (v != f_var_flat.size()) {
    return Status::ParseError("snapshot factor streams disagree");
  }
  return Status::OK();
}

}  // namespace

void SerializeFactorGraph(const FactorGraph& graph, SectionCodec codec,
                          BinaryWriter* out) {
  if (codec == SectionCodec::kPacked) {
    SerializeFactorGraphPacked(graph, out);
  } else {
    SerializeFactorGraphRaw(graph, out);
  }
}

Status DeserializeFactorGraph(BinaryReader* in, SectionCodec codec,
                              FactorGraph* graph,
                              const FactorGraphBounds& bounds) {
  *graph = FactorGraph();
  if (codec == SectionCodec::kPacked) {
    return DeserializeFactorGraphPacked(in, graph, bounds);
  }
  return DeserializeFactorGraphRaw(in, graph, bounds);
}

// --- WeightStore -----------------------------------------------------------

void SerializeWeightStore(const WeightStore& weights, SectionCodec codec,
                          BinaryWriter* out) {
  // Sorted by key: the snapshot bytes are deterministic even though the
  // store iterates in hash order. (Sorted keys are also what makes the
  // packed key stream delta-friendly.)
  std::vector<std::pair<uint64_t, double>> sorted(weights.raw().begin(),
                                                  weights.raw().end());
  std::sort(sorted.begin(), sorted.end());
  if (codec == SectionCodec::kPacked) {
    std::vector<uint64_t> keys(sorted.size());
    std::vector<double> values(sorted.size());
    for (size_t i = 0; i < sorted.size(); ++i) {
      keys[i] = sorted[i].first;
      values[i] = sorted[i].second;
    }
    WriteU64Stream(out, keys);
    WriteF64Stream(out, values);
    return;
  }
  out->WriteU64(sorted.size());
  for (const auto& [key, value] : sorted) {
    out->WriteU64(key);
    out->WriteF64(value);
  }
}

Status DeserializeWeightStore(BinaryReader* in, SectionCodec codec,
                              WeightStore* weights) {
  *weights = WeightStore();
  if (codec == SectionCodec::kPacked) {
    std::vector<uint64_t> keys;
    std::vector<double> values;
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &keys));
    HOLO_RETURN_NOT_OK(ReadF64Stream(in, &values));
    if (keys.size() != values.size()) {
      return Status::ParseError("snapshot weight streams disagree");
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      weights->Set(keys[i], values[i]);
    }
    return Status::OK();
  }
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(16, &n));
  for (size_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    double value = 0.0;
    HOLO_RETURN_NOT_OK(in->ReadU64(&key));
    HOLO_RETURN_NOT_OK(in->ReadF64(&value));
    weights->Set(key, value);
  }
  return Status::OK();
}

// --- Marginals -------------------------------------------------------------

void SerializeMarginals(const Marginals& marginals, SectionCodec codec,
                        BinaryWriter* out) {
  const auto& probs = marginals.probs();
  if (codec == SectionCodec::kPacked) {
    // Gibbs marginals are ratios of small sample counts (a few dozen
    // distinct doubles across tens of thousands of entries), so the
    // flattened stream's dictionary encoding collapses them.
    WriteVarint(out, probs.size());
    std::vector<uint64_t> counts(probs.size());
    std::vector<double> flat;
    for (size_t i = 0; i < probs.size(); ++i) {
      counts[i] = probs[i].size();
      flat.insert(flat.end(), probs[i].begin(), probs[i].end());
    }
    WriteU64Stream(out, counts);
    WriteF64Stream(out, flat);
    return;
  }
  out->WriteU64(probs.size());
  for (const std::vector<double>& p : probs) WriteF64Vec(out, p);
}

Status DeserializeMarginals(BinaryReader* in, SectionCodec codec,
                            Marginals* marginals) {
  if (codec == SectionCodec::kPacked) {
    uint64_t num_vars = 0;
    HOLO_RETURN_NOT_OK(ReadVarint(in, &num_vars));
    std::vector<uint64_t> counts;
    std::vector<double> flat;
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &counts));
    HOLO_RETURN_NOT_OK(ReadF64Stream(in, &flat));
    if (counts.size() != num_vars) {
      return Status::ParseError("snapshot marginal streams disagree");
    }
    Marginals loaded(num_vars);
    size_t k = 0;
    for (size_t i = 0; i < num_vars; ++i) {
      if (counts[i] > flat.size() - k) {
        return Status::ParseError("snapshot marginal streams disagree");
      }
      loaded.probs()[i].assign(flat.begin() + k, flat.begin() + k + counts[i]);
      k += counts[i];
    }
    if (k != flat.size()) {
      return Status::ParseError("snapshot marginal streams disagree");
    }
    *marginals = std::move(loaded);
    return Status::OK();
  }
  size_t num_vars = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(8, &num_vars));
  Marginals loaded(num_vars);
  for (size_t i = 0; i < num_vars; ++i) {
    HOLO_RETURN_NOT_OK(ReadF64Vec(in, &loaded.probs()[i]));
  }
  *marginals = std::move(loaded);
  return Status::OK();
}

// --- Remaining artifact codecs ---------------------------------------------

namespace {

void SerializeViolations(const std::vector<Violation>& violations,
                         SectionCodec codec, BinaryWriter* out) {
  if (codec == SectionCodec::kPacked) {
    WriteVarint(out, violations.size());
    std::vector<uint64_t> dcs(violations.size());
    std::vector<uint64_t> t1s(violations.size());
    std::vector<uint64_t> t2s(violations.size());
    std::vector<uint64_t> cell_counts(violations.size());
    std::vector<CellRef> cells_flat;
    for (size_t i = 0; i < violations.size(); ++i) {
      dcs[i] = static_cast<uint64_t>(violations[i].dc_index);
      t1s[i] = static_cast<uint64_t>(violations[i].t1);
      t2s[i] = static_cast<uint64_t>(violations[i].t2);
      cell_counts[i] = violations[i].cells.size();
      cells_flat.insert(cells_flat.end(), violations[i].cells.begin(),
                        violations[i].cells.end());
    }
    WriteU64Stream(out, dcs);
    WriteU64Stream(out, t1s);
    WriteU64Stream(out, t2s);
    WriteU64Stream(out, cell_counts);
    WritePackedCellVec(out, cells_flat);
    return;
  }
  out->WriteU64(violations.size());
  for (const Violation& v : violations) {
    out->WriteI32(v.dc_index);
    out->WriteI32(v.t1);
    out->WriteI32(v.t2);
    WriteCellVec(out, v.cells);
  }
}

Status DeserializeViolations(BinaryReader* in, SectionCodec codec,
                             std::vector<Violation>* violations) {
  if (codec == SectionCodec::kPacked) {
    uint64_t n = 0;
    HOLO_RETURN_NOT_OK(ReadVarint(in, &n));
    std::vector<uint64_t> dcs;
    std::vector<uint64_t> t1s;
    std::vector<uint64_t> t2s;
    std::vector<uint64_t> cell_counts;
    std::vector<CellRef> cells_flat;
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &dcs));
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &t1s));
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &t2s));
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &cell_counts));
    HOLO_RETURN_NOT_OK(ReadPackedCellVec(in, &cells_flat));
    if (dcs.size() != n || t1s.size() != n || t2s.size() != n ||
        cell_counts.size() != n) {
      return Status::ParseError("snapshot violation streams disagree");
    }
    violations->resize(n);
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      Violation& v = (*violations)[i];
      if (!CastI32(dcs[i], &v.dc_index) || !CastI32(t1s[i], &v.t1) ||
          !CastI32(t2s[i], &v.t2) || cell_counts[i] > cells_flat.size() - k) {
        return Status::ParseError("snapshot violation streams disagree");
      }
      v.cells.assign(cells_flat.begin() + k,
                     cells_flat.begin() + k + cell_counts[i]);
      k += cell_counts[i];
    }
    if (k != cells_flat.size()) {
      return Status::ParseError("snapshot violation streams disagree");
    }
    return Status::OK();
  }
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(20, &n));
  violations->resize(n);
  for (Violation& v : *violations) {
    HOLO_RETURN_NOT_OK(in->ReadI32(&v.dc_index));
    HOLO_RETURN_NOT_OK(in->ReadI32(&v.t1));
    HOLO_RETURN_NOT_OK(in->ReadI32(&v.t2));
    HOLO_RETURN_NOT_OK(ReadCellVec(in, &v.cells));
  }
  return Status::OK();
}

void SerializeDomains(const PrunedDomains& domains, SectionCodec codec,
                      BinaryWriter* out) {
  // Sorted by cell for deterministic snapshot bytes (and delta-friendly
  // packed streams).
  std::vector<const std::pair<const CellRef, std::vector<ValueId>>*> entries;
  entries.reserve(domains.candidates.size());
  for (const auto& entry : domains.candidates) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  if (codec == SectionCodec::kPacked) {
    WriteVarint(out, entries.size());
    std::vector<CellRef> cells(entries.size());
    std::vector<uint64_t> counts(entries.size());
    std::vector<uint64_t> flat;
    for (size_t i = 0; i < entries.size(); ++i) {
      cells[i] = entries[i]->first;
      counts[i] = entries[i]->second.size();
      for (ValueId v : entries[i]->second) {
        flat.push_back(static_cast<uint64_t>(v));
      }
    }
    WritePackedCellVec(out, cells);
    WriteU64Stream(out, counts);
    WriteU64Stream(out, flat);
    return;
  }
  out->WriteU64(entries.size());
  for (const auto* entry : entries) {
    WriteCellRef(out, entry->first);
    WriteI32Vec(out, entry->second);
  }
}

Status DeserializeDomains(BinaryReader* in, SectionCodec codec,
                          size_t dict_size, PrunedDomains* domains) {
  domains->candidates.clear();
  if (codec == SectionCodec::kPacked) {
    uint64_t n = 0;
    HOLO_RETURN_NOT_OK(ReadVarint(in, &n));
    std::vector<CellRef> cells;
    std::vector<uint64_t> counts;
    std::vector<uint64_t> flat;
    HOLO_RETURN_NOT_OK(ReadPackedCellVec(in, &cells));
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &counts));
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &flat));
    if (cells.size() != n || counts.size() != n) {
      return Status::ParseError("snapshot domain streams disagree");
    }
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      if (counts[i] > flat.size() - k) {
        return Status::ParseError("snapshot domain streams disagree");
      }
      std::vector<ValueId> candidates(counts[i]);
      for (size_t j = 0; j < counts[i]; ++j, ++k) {
        if (!CastI32(flat[k], &candidates[j]) ||
            static_cast<size_t>(candidates[j]) >= dict_size) {
          return Status::ParseError("snapshot value id out of range");
        }
      }
      domains->candidates.emplace(cells[i], std::move(candidates));
    }
    if (k != flat.size()) {
      return Status::ParseError("snapshot domain streams disagree");
    }
    return Status::OK();
  }
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(16, &n));
  for (size_t i = 0; i < n; ++i) {
    CellRef cell;
    HOLO_RETURN_NOT_OK(ReadCellRef(in, &cell));
    std::vector<ValueId> candidates;
    HOLO_RETURN_NOT_OK(ReadValueIdVec(in, dict_size, &candidates));
    domains->candidates.emplace(cell, std::move(candidates));
  }
  return Status::OK();
}

// The program is a handful of rules; the raw form is used by both codecs.

void SerializeProgram(const Program& program, BinaryWriter* out) {
  out->WriteU64(program.rules.size());
  for (const InferenceRule& rule : program.rules) {
    out->WriteI32(static_cast<int32_t>(rule.kind));
    out->WriteI32(rule.dc_index);
    out->WriteI32(rule.head.role);
    out->WriteI32(rule.head.attr);
    out->WriteI32(rule.dict_id);
    out->WriteF64(rule.fixed_weight);
    out->WriteU8(rule.weight_is_learned ? 1 : 0);
  }
}

Status DeserializeProgram(BinaryReader* in, Program* program) {
  program->rules.clear();
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(29, &n));
  program->rules.resize(n);
  for (InferenceRule& rule : program->rules) {
    int32_t kind = 0;
    HOLO_RETURN_NOT_OK(in->ReadI32(&kind));
    if (kind < static_cast<int32_t>(RuleKind::kRandomVariable) ||
        kind > static_cast<int32_t>(RuleKind::kDcRelaxedFeature)) {
      return Status::ParseError("snapshot rule kind out of range");
    }
    rule.kind = static_cast<RuleKind>(kind);
    HOLO_RETURN_NOT_OK(in->ReadI32(&rule.dc_index));
    HOLO_RETURN_NOT_OK(in->ReadI32(&rule.head.role));
    HOLO_RETURN_NOT_OK(in->ReadI32(&rule.head.attr));
    HOLO_RETURN_NOT_OK(in->ReadI32(&rule.dict_id));
    HOLO_RETURN_NOT_OK(in->ReadF64(&rule.fixed_weight));
    uint8_t learned = 0;
    HOLO_RETURN_NOT_OK(in->ReadU8(&learned));
    rule.weight_is_learned = learned != 0;
  }
  return Status::OK();
}

void SerializeRepairs(const std::vector<Repair>& repairs, SectionCodec codec,
                      BinaryWriter* out) {
  if (codec == SectionCodec::kPacked) {
    std::vector<CellRef> cells(repairs.size());
    std::vector<uint64_t> old_vals(repairs.size());
    std::vector<uint64_t> new_vals(repairs.size());
    std::vector<double> probs(repairs.size());
    for (size_t i = 0; i < repairs.size(); ++i) {
      cells[i] = repairs[i].cell;
      old_vals[i] = static_cast<uint64_t>(repairs[i].old_value);
      new_vals[i] = static_cast<uint64_t>(repairs[i].new_value);
      probs[i] = repairs[i].probability;
    }
    WritePackedCellVec(out, cells);
    WriteU64Stream(out, old_vals);
    WriteU64Stream(out, new_vals);
    WriteF64Stream(out, probs);
    return;
  }
  out->WriteU64(repairs.size());
  for (const Repair& r : repairs) {
    WriteCellRef(out, r.cell);
    out->WriteI32(r.old_value);
    out->WriteI32(r.new_value);
    out->WriteF64(r.probability);
  }
}

Status DeserializeRepairs(BinaryReader* in, SectionCodec codec,
                          std::vector<Repair>* repairs) {
  if (codec == SectionCodec::kPacked) {
    std::vector<CellRef> cells;
    std::vector<uint64_t> old_vals;
    std::vector<uint64_t> new_vals;
    std::vector<double> probs;
    HOLO_RETURN_NOT_OK(ReadPackedCellVec(in, &cells));
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &old_vals));
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &new_vals));
    HOLO_RETURN_NOT_OK(ReadF64Stream(in, &probs));
    if (old_vals.size() != cells.size() || new_vals.size() != cells.size() ||
        probs.size() != cells.size()) {
      return Status::ParseError("snapshot repair streams disagree");
    }
    repairs->resize(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      Repair& r = (*repairs)[i];
      r.cell = cells[i];
      if (!CastI32(old_vals[i], &r.old_value) ||
          !CastI32(new_vals[i], &r.new_value)) {
        return Status::ParseError("snapshot repair streams disagree");
      }
      r.probability = probs[i];
    }
    return Status::OK();
  }
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(24, &n));
  repairs->resize(n);
  for (Repair& r : *repairs) {
    HOLO_RETURN_NOT_OK(ReadCellRef(in, &r.cell));
    HOLO_RETURN_NOT_OK(in->ReadI32(&r.old_value));
    HOLO_RETURN_NOT_OK(in->ReadI32(&r.new_value));
    HOLO_RETURN_NOT_OK(in->ReadF64(&r.probability));
  }
  return Status::OK();
}

void SerializePosteriors(const std::vector<CellPosterior>& posteriors,
                         SectionCodec codec, BinaryWriter* out) {
  if (codec == SectionCodec::kPacked) {
    std::vector<CellRef> cells(posteriors.size());
    std::vector<uint64_t> old_vals(posteriors.size());
    std::vector<uint64_t> map_vals(posteriors.size());
    std::vector<double> probs(posteriors.size());
    for (size_t i = 0; i < posteriors.size(); ++i) {
      cells[i] = posteriors[i].cell;
      old_vals[i] = static_cast<uint64_t>(posteriors[i].old_value);
      map_vals[i] = static_cast<uint64_t>(posteriors[i].map_value);
      probs[i] = posteriors[i].map_prob;
    }
    WritePackedCellVec(out, cells);
    WriteU64Stream(out, old_vals);
    WriteU64Stream(out, map_vals);
    WriteF64Stream(out, probs);
    return;
  }
  out->WriteU64(posteriors.size());
  for (const CellPosterior& p : posteriors) {
    WriteCellRef(out, p.cell);
    out->WriteI32(p.old_value);
    out->WriteI32(p.map_value);
    out->WriteF64(p.map_prob);
  }
}

Status DeserializePosteriors(BinaryReader* in, SectionCodec codec,
                             std::vector<CellPosterior>* posteriors) {
  if (codec == SectionCodec::kPacked) {
    std::vector<CellRef> cells;
    std::vector<uint64_t> old_vals;
    std::vector<uint64_t> map_vals;
    std::vector<double> probs;
    HOLO_RETURN_NOT_OK(ReadPackedCellVec(in, &cells));
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &old_vals));
    HOLO_RETURN_NOT_OK(ReadU64Stream(in, &map_vals));
    HOLO_RETURN_NOT_OK(ReadF64Stream(in, &probs));
    if (old_vals.size() != cells.size() || map_vals.size() != cells.size() ||
        probs.size() != cells.size()) {
      return Status::ParseError("snapshot posterior streams disagree");
    }
    posteriors->resize(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      CellPosterior& p = (*posteriors)[i];
      p.cell = cells[i];
      if (!CastI32(old_vals[i], &p.old_value) ||
          !CastI32(map_vals[i], &p.map_value)) {
        return Status::ParseError("snapshot posterior streams disagree");
      }
      p.map_prob = probs[i];
    }
    return Status::OK();
  }
  size_t n = 0;
  HOLO_RETURN_NOT_OK(in->ReadCount(24, &n));
  posteriors->resize(n);
  for (CellPosterior& p : *posteriors) {
    HOLO_RETURN_NOT_OK(ReadCellRef(in, &p.cell));
    HOLO_RETURN_NOT_OK(in->ReadI32(&p.old_value));
    HOLO_RETURN_NOT_OK(in->ReadI32(&p.map_value));
    HOLO_RETURN_NOT_OK(in->ReadF64(&p.map_prob));
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::string_view>& parts) {
  // Unique temp name per save: concurrent saves to the same path must not
  // interleave into one temp file — each writes its own and the last
  // rename wins with a complete snapshot.
  std::string tmp = path + ".tmp.XXXXXX";
  int fd = ::mkstemp(tmp.data());
  if (fd < 0) return Status::Internal("cannot open for writing: " + tmp);
  ::fchmod(fd, 0644);  // mkstemp creates 0600; snapshots are plain files.
  for (std::string_view part : parts) {
    size_t off = 0;
    while (off < part.size()) {
      ssize_t n = ::write(fd, part.data() + off, part.size() - off);
      if (n < 0) {
        ::close(fd);
        std::remove(tmp.c_str());
        return Status::Internal("write failed: " + tmp);
      }
      off += static_cast<size_t>(n);
    }
  }
  // The data must be durable before the rename publishes the name, or a
  // crash could leave a truncated file under the final path.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::Internal("fsync failed: " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename snapshot into place: " + path);
  }
  // Best-effort directory sync so the rename itself survives a crash.
  size_t slash = path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash + 1);
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

// --- Staged load: parse everything, validate, then commit ------------------

/// Everything a snapshot carries, parsed into session-independent staging
/// storage. Both format loaders fill one of these; nothing in the context
/// or the dataset is touched until the staged state passed every
/// validation, so a malformed snapshot can never leave a half-restored
/// session behind.
struct StagedSnapshot {
  uint64_t config_fp = 0;
  std::vector<std::string> schema_names;
  uint64_t num_rows = 0;
  uint64_t dcs_fp = 0;
  uint64_t extdata_fp = 0;
  std::vector<std::string> dict_values;
  std::vector<std::vector<ValueId>> columns;
  int valid_through = 0;
  uint64_t counters[7] = {};
  /// Detection-truncation flags appended to kMeta by newer saves; absent
  /// (and defaulted) in older v2 files.
  bool detect_truncated = false;
  uint64_t num_truncated_dcs = 0;

  /// Decoded kColumnStore section (optional): per-column code→value-id
  /// dictionaries and their sorted prefixes. When present (and validated),
  /// CommitStaged installs the table columns wholesale.
  bool has_column_store = false;
  std::vector<std::vector<ValueId>> col_dicts;
  std::vector<uint64_t> sorted_prefixes;

  std::vector<AttrId> attrs;
  std::vector<Violation> violations;
  std::vector<CellRef> noisy_cells;

  std::vector<CellRef> query_cells;
  std::vector<CellRef> evidence_cells;
  PrunedDomains domains;
  Program program;
  FactorGraph graph;
  /// False when a lazy v2 load deferred the graph section: `graph` is
  /// empty and the graph-dependent validations run at materialization.
  bool graph_loaded = false;
  Grounder::Stats grounder_stats;
  uint64_t ground_runs = 0;
  std::string ddlog;

  WeightStore weights;
  Marginals marginals{0};
  std::vector<Repair> repairs;
  std::vector<CellPosterior> posteriors;

  size_t num_attrs() const { return schema_names.size(); }
  size_t dict_size() const { return dict_values.size(); }
};

/// The session-compatibility gate: fingerprints, schema, row count, and
/// dictionary alignment, in the same order v1 checked them. All failures
/// are InvalidArgument — the snapshot is well-formed, it just does not
/// belong to this session.
Status ValidateCompatibility(const StagedSnapshot& s,
                             const PipelineContext& ctx) {
  const Table& table = ctx.dataset->dirty();
  const Schema& schema = table.schema();
  if (s.config_fp != ConfigFingerprint(ctx.config)) {
    return Status::InvalidArgument(
        "snapshot config fingerprint mismatch: the snapshot was saved under "
        "a different configuration");
  }
  if (s.num_attrs() != schema.num_attrs()) {
    return Status::InvalidArgument("snapshot schema mismatch");
  }
  for (size_t a = 0; a < s.num_attrs(); ++a) {
    if (s.schema_names[a] != schema.name(static_cast<AttrId>(a))) {
      return Status::InvalidArgument("snapshot schema mismatch: attribute " +
                                     std::to_string(a) + " is '" +
                                     s.schema_names[a] + "', dataset has '" +
                                     schema.name(static_cast<AttrId>(a)) +
                                     "'");
    }
  }
  if (s.num_rows != table.num_rows()) {
    return Status::InvalidArgument("snapshot row count mismatch");
  }
  if (s.dcs_fp != DcsFingerprint(*ctx.dcs, schema)) {
    return Status::InvalidArgument("snapshot denial-constraint set mismatch");
  }
  if (s.extdata_fp !=
      ExternalDataFingerprint(ctx.dicts, ctx.mds, ctx.extra_detectors)) {
    return Status::InvalidArgument(
        "snapshot external-data/detector inputs mismatch");
  }

  // Dictionary alignment: the dataset's interned strings must agree with
  // the snapshot's on the shared prefix — this is what makes the persisted
  // value ids meaningful. Entries the save-time session interned on top
  // (e.g. dictionary-matched candidates) are re-interned on commit.
  const Dictionary& dict = table.dict();
  size_t shared = std::min(s.dict_size(), dict.size());
  for (size_t i = 0; i < shared; ++i) {
    if (dict.GetString(static_cast<ValueId>(i)) != s.dict_values[i]) {
      return Status::InvalidArgument(
          "dataset does not match snapshot: dictionary mismatch at value id " +
          std::to_string(i));
    }
  }
  // Entries past the shared prefix are re-interned on commit, and Intern
  // dedupes — a duplicate (against the prefix or within the tail) would
  // silently shift every id after it. A real dictionary never repeats, so
  // reject such snapshots outright.
  if (dict.size() < s.dict_size()) {
    std::unordered_set<std::string_view> tail;
    for (size_t i = dict.size(); i < s.dict_size(); ++i) {
      if (dict.Lookup(s.dict_values[i]) >= 0 ||
          !tail.insert(s.dict_values[i]).second) {
        return Status::ParseError("snapshot dictionary has duplicate entries");
      }
    }
  }
  return Status::OK();
}

/// Graph-side bounds shared by the eager loader and the deferred
/// materializer: every variable cell and factor tuple must fall inside the
/// session's table.
Status ValidateGraphBounds(const FactorGraph& graph, uint64_t num_rows,
                           size_t num_attrs) {
  Status inconsistent = Status::ParseError("snapshot artifacts out of range");
  for (const Variable& var : graph.variables()) {
    if (var.cell.tid < 0 ||
        static_cast<uint64_t>(var.cell.tid) >= num_rows ||
        var.cell.attr < 0 ||
        static_cast<size_t>(var.cell.attr) >= num_attrs) {
      return inconsistent;
    }
  }
  for (const DcFactor& factor : graph.dc_factors()) {
    if (factor.t1 < 0 || static_cast<uint64_t>(factor.t1) >= num_rows ||
        factor.t2 < 0 || static_cast<uint64_t>(factor.t2) >= num_rows) {
      return inconsistent;
    }
  }
  return Status::OK();
}

/// RepairStage indexes marginals by variable id and domains by the MAP
/// index, so the shapes must agree with the persisted graph.
Status ValidateMarginalsShape(const Marginals& marginals,
                              const FactorGraph& graph) {
  if (marginals.probs().size() != graph.num_variables()) {
    return Status::ParseError("snapshot artifacts out of range");
  }
  for (size_t v = 0; v < graph.num_variables(); ++v) {
    if (marginals.probs()[v].size() !=
        graph.variable(static_cast<int>(v)).NumCandidates()) {
      return Status::ParseError("snapshot artifacts out of range");
    }
  }
  return Status::OK();
}

/// The kColumnStore section feeds Table::InstallColumns, whose internal
/// HOLO_CHECKs would abort the process on malformed input — so everything
/// it assumes is validated here on the staging side: code 0 maps to NULL,
/// dictionary entries are distinct and inside the string dictionary,
/// sorted prefixes are in bounds, and every table cell's value id appears
/// in its column's dictionary.
Status ValidateColumnStoreSection(const StagedSnapshot& s) {
  Status bad = Status::ParseError("snapshot column store inconsistent");
  if (s.col_dicts.size() != s.num_attrs() ||
      s.sorted_prefixes.size() != s.num_attrs() ||
      s.columns.size() != s.num_attrs()) {
    return bad;
  }
  for (size_t a = 0; a < s.num_attrs(); ++a) {
    const std::vector<ValueId>& cdict = s.col_dicts[a];
    if (cdict.empty() || cdict[0] != Dictionary::kNull) return bad;
    if (s.sorted_prefixes[a] > cdict.size()) return bad;
    std::unordered_set<ValueId> members;
    for (ValueId v : cdict) {
      if (v < 0 || static_cast<size_t>(v) >= s.dict_size() ||
          !members.insert(v).second) {
        return bad;
      }
    }
    for (ValueId v : s.columns[a]) {
      if (members.find(v) == members.end()) return bad;
    }
  }
  return Status::OK();
}

/// Cross-artifact consistency: every cell, tuple, constraint, and value id
/// the staged artifacts carry must stay inside the session's bounds, so a
/// checksum-valid but internally inconsistent snapshot can never make a
/// later stage index out of range. Graph-dependent checks are skipped for
/// a deferred graph — the materializer runs the identical checks.
Status ValidateArtifactBounds(const StagedSnapshot& s,
                              const PipelineContext& ctx) {
  const uint64_t num_rows = s.num_rows;
  const size_t num_attrs = s.num_attrs();
  auto cell_ok = [&](const CellRef& c) {
    return c.tid >= 0 && static_cast<uint64_t>(c.tid) < num_rows &&
           c.attr >= 0 && static_cast<size_t>(c.attr) < num_attrs;
  };
  auto tuple_ok = [&](TupleId t) {
    return t >= 0 && static_cast<uint64_t>(t) < num_rows;
  };
  auto value_ok = [&](ValueId v) {
    return v >= 0 && static_cast<size_t>(v) < s.dict_size();
  };
  Status inconsistent = Status::ParseError("snapshot artifacts out of range");
  for (AttrId a : s.attrs) {
    if (a < 0 || static_cast<size_t>(a) >= num_attrs) return inconsistent;
  }
  for (const Violation& v : s.violations) {
    if (v.dc_index < 0 ||
        static_cast<size_t>(v.dc_index) >= ctx.dcs->size() ||
        !tuple_ok(v.t1) || !tuple_ok(v.t2)) {
      return inconsistent;
    }
    for (const CellRef& c : v.cells) {
      if (!cell_ok(c)) return inconsistent;
    }
  }
  for (const CellRef& c : s.noisy_cells) {
    if (!cell_ok(c)) return inconsistent;
  }
  for (const CellRef& c : s.query_cells) {
    if (!cell_ok(c)) return inconsistent;
  }
  for (const CellRef& c : s.evidence_cells) {
    if (!cell_ok(c)) return inconsistent;
  }
  for (const auto& [cell, candidates] : s.domains.candidates) {
    (void)candidates;
    if (!cell_ok(cell)) return inconsistent;
  }
  if (s.graph_loaded) {
    HOLO_RETURN_NOT_OK(ValidateGraphBounds(s.graph, num_rows, num_attrs));
    if (s.valid_through > static_cast<int>(StageId::kInfer)) {
      HOLO_RETURN_NOT_OK(ValidateMarginalsShape(s.marginals, s.graph));
    }
  }
  for (const Repair& r : s.repairs) {
    if (!cell_ok(r.cell) || !value_ok(r.old_value) ||
        !value_ok(r.new_value)) {
      return inconsistent;
    }
  }
  for (const CellPosterior& p : s.posteriors) {
    if (!cell_ok(p.cell) || !value_ok(p.old_value) ||
        !value_ok(p.map_value)) {
      return inconsistent;
    }
  }
  return Status::OK();
}

/// Installs the staged state into the context and the dataset. Only called
/// after every validation passed; never fails.
void CommitStaged(StagedSnapshot* s, PipelineContext* ctx) {
  Table& table = ctx->dataset->dirty();
  Dictionary& dict = table.dict();
  // A fresh restore supersedes any lazy state a previous restore left, and
  // invalidates any compiled view of the previous graph.
  ctx->deferred_graph.reset();
  ctx->compiled.reset();
  for (size_t i = dict.size(); i < s->dict_size(); ++i) {
    dict.Intern(s->dict_values[i]);
  }
  if (s->has_column_store) {
    // The section carries the per-column dictionaries, so the codes install
    // wholesale — no per-cell re-encoding. Validated at parse time.
    table.InstallColumns(std::move(s->columns), std::move(s->col_dicts),
                         s->sorted_prefixes);
  } else {
    for (size_t a = 0; a < s->num_attrs(); ++a) {
      for (size_t t = 0; t < s->num_rows; ++t) {
        table.Set(static_cast<TupleId>(t), static_cast<AttrId>(a),
                  s->columns[a][t]);
      }
    }
  }
  RunStats& stats = ctx->report.stats;
  stats.num_violations = s->counters[0];
  stats.num_noisy_cells = s->counters[1];
  stats.num_query_vars = s->counters[2];
  stats.num_evidence_vars = s->counters[3];
  stats.num_candidates = s->counters[4];
  stats.num_dc_factors = s->counters[5];
  stats.num_grounded_factors = s->counters[6];
  stats.detect_truncated = s->detect_truncated;
  stats.num_truncated_dcs = s->num_truncated_dcs;
  if (s->valid_through > static_cast<int>(StageId::kDetect)) {
    ctx->attrs = std::move(s->attrs);
    ctx->violations = std::move(s->violations);
    ctx->noisy = NoisyCells();
    for (const CellRef& c : s->noisy_cells) ctx->noisy.Add(c);
  }
  if (s->valid_through > static_cast<int>(StageId::kCompile)) {
    ctx->query_cells = std::move(s->query_cells);
    ctx->evidence_cells = std::move(s->evidence_cells);
    ctx->domains = std::move(s->domains);
    ctx->program = std::move(s->program);
    ctx->graph = std::move(s->graph);
    ctx->grounder_stats = s->grounder_stats;
    ctx->ground_runs = s->ground_runs;
    ctx->report.ddlog = std::move(s->ddlog);
  }
  if (s->valid_through > static_cast<int>(StageId::kLearn)) {
    ctx->weights = std::move(s->weights);
  }
  if (s->valid_through > static_cast<int>(StageId::kInfer)) {
    ctx->marginals = std::move(s->marginals);
  }
  if (s->valid_through == kNumStages) {
    ctx->report.repairs = std::move(s->repairs);
    ctx->report.posteriors = std::move(s->posteriors);
  }
}

// --- v1: monolithic payload (write + read back) ----------------------------
// Byte-for-byte the PR 2 format; the golden fixture in tests/data/ pins it.

Status SaveSessionSnapshotV1(const PipelineContext& ctx, int valid_through,
                             const std::string& path) {
  const Table& table = ctx.dataset->dirty();
  const Schema& schema = table.schema();

  BinaryWriter payload;
  payload.WriteU64(ConfigFingerprint(ctx.config));
  payload.WriteU64(schema.num_attrs());
  for (const std::string& name : schema.names()) payload.WriteString(name);
  payload.WriteU64(table.num_rows());
  payload.WriteU64(DcsFingerprint(*ctx.dcs, schema));
  payload.WriteU64(
      ExternalDataFingerprint(ctx.dicts, ctx.mds, ctx.extra_detectors));

  // Dictionary + cell values: pins mutate the table and compilation interns
  // matched values, and every persisted artifact references both by id.
  const Dictionary& dict = table.dict();
  payload.WriteU64(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    payload.WriteString(dict.GetString(static_cast<ValueId>(i)));
  }
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    for (ValueId v : table.Column(static_cast<AttrId>(a))) {
      payload.WriteI32(v);
    }
  }

  payload.WriteI32(valid_through);
  const RunStats& stats = ctx.report.stats;
  payload.WriteU64(stats.num_violations);
  payload.WriteU64(stats.num_noisy_cells);
  payload.WriteU64(stats.num_query_vars);
  payload.WriteU64(stats.num_evidence_vars);
  payload.WriteU64(stats.num_candidates);
  payload.WriteU64(stats.num_dc_factors);
  payload.WriteU64(stats.num_grounded_factors);

  if (valid_through > static_cast<int>(StageId::kDetect)) {
    WriteI32Vec(&payload, ctx.attrs);
    SerializeViolations(ctx.violations, SectionCodec::kRaw, &payload);
    WriteCellVec(&payload, ctx.noisy.cells());
  }
  if (valid_through > static_cast<int>(StageId::kCompile)) {
    WriteCellVec(&payload, ctx.query_cells);
    WriteCellVec(&payload, ctx.evidence_cells);
    SerializeDomains(ctx.domains, SectionCodec::kRaw, &payload);
    SerializeProgram(ctx.program, &payload);
    SerializeFactorGraph(ctx.graph, SectionCodec::kRaw, &payload);
    payload.WriteU64(ctx.grounder_stats.num_query_vars);
    payload.WriteU64(ctx.grounder_stats.num_evidence_vars);
    payload.WriteU64(ctx.grounder_stats.num_feature_instances);
    payload.WriteU64(ctx.grounder_stats.num_dc_factors);
    payload.WriteU64(ctx.grounder_stats.num_dc_pairs_considered);
    payload.WriteU64(ctx.ground_runs);
    payload.WriteString(ctx.report.ddlog);
  }
  if (valid_through > static_cast<int>(StageId::kLearn)) {
    SerializeWeightStore(ctx.weights, SectionCodec::kRaw, &payload);
  }
  if (valid_through > static_cast<int>(StageId::kInfer)) {
    SerializeMarginals(ctx.marginals, SectionCodec::kRaw, &payload);
  }
  if (valid_through == kNumStages) {
    SerializeRepairs(ctx.report.repairs, SectionCodec::kRaw, &payload);
    SerializePosteriors(ctx.report.posteriors, SectionCodec::kRaw, &payload);
  }

  // Header and checksum are built separately so the multi-MiB body is
  // never copied into a second buffer on its way to disk.
  const std::string& body = payload.buffer();
  BinaryWriter header;
  header.WriteBytes(std::string_view(kMagic, sizeof(kMagic)));
  header.WriteU32(kSnapshotFormatV1);
  header.WriteU64(body.size());
  BinaryWriter trailer;
  trailer.WriteU64(HashBytes(body));
  return WriteFileAtomic(path, {header.buffer(), body, trailer.buffer()});
}

/// Parses a v1 payload (everything after the 16-byte header, checksum
/// already verified) into staging storage. `num_dcs` bounds the factor
/// dc_indexes (the session's constraint count).
Status ParseV1Payload(std::string_view body, size_t num_dcs,
                      StagedSnapshot* s) {
  BinaryReader reader(body);
  HOLO_RETURN_NOT_OK(reader.ReadU64(&s->config_fp));
  size_t num_attrs = 0;
  HOLO_RETURN_NOT_OK(reader.ReadCount(8, &num_attrs));
  s->schema_names.resize(num_attrs);
  for (std::string& name : s->schema_names) {
    HOLO_RETURN_NOT_OK(reader.ReadString(&name));
  }
  HOLO_RETURN_NOT_OK(reader.ReadU64(&s->num_rows));
  HOLO_RETURN_NOT_OK(reader.ReadU64(&s->dcs_fp));
  HOLO_RETURN_NOT_OK(reader.ReadU64(&s->extdata_fp));

  size_t dict_size = 0;
  HOLO_RETURN_NOT_OK(reader.ReadCount(8, &dict_size));
  s->dict_values.resize(dict_size);
  for (std::string& value : s->dict_values) {
    HOLO_RETURN_NOT_OK(reader.ReadString(&value));
  }
  // Bound the column allocations by the bytes actually present (4 per
  // cell): this parser runs before the session row count is compared, so
  // a corrupt huge num_rows must fail here, not in resize.
  if (num_attrs != 0 &&
      s->num_rows > reader.remaining() / (num_attrs * uint64_t{4})) {
    return Status::ParseError("snapshot truncated");
  }
  s->columns.resize(num_attrs);
  for (std::vector<ValueId>& column : s->columns) {
    column.resize(s->num_rows);
    for (ValueId& v : column) {
      HOLO_RETURN_NOT_OK(reader.ReadI32(&v));
      if (v < 0 || static_cast<size_t>(v) >= dict_size) {
        return Status::ParseError("snapshot value id out of range");
      }
    }
  }
  HOLO_RETURN_NOT_OK(reader.ReadI32(&s->valid_through));
  if (s->valid_through < 0 || s->valid_through > kNumStages) {
    return Status::ParseError("snapshot valid_through out of range");
  }
  for (uint64_t& c : s->counters) HOLO_RETURN_NOT_OK(reader.ReadU64(&c));

  if (s->valid_through > static_cast<int>(StageId::kDetect)) {
    HOLO_RETURN_NOT_OK(ReadI32Vec(&reader, &s->attrs));
    HOLO_RETURN_NOT_OK(
        DeserializeViolations(&reader, SectionCodec::kRaw, &s->violations));
    HOLO_RETURN_NOT_OK(ReadCellVec(&reader, &s->noisy_cells));
  }
  if (s->valid_through > static_cast<int>(StageId::kCompile)) {
    HOLO_RETURN_NOT_OK(ReadCellVec(&reader, &s->query_cells));
    HOLO_RETURN_NOT_OK(ReadCellVec(&reader, &s->evidence_cells));
    HOLO_RETURN_NOT_OK(DeserializeDomains(&reader, SectionCodec::kRaw,
                                          dict_size, &s->domains));
    HOLO_RETURN_NOT_OK(DeserializeProgram(&reader, &s->program));
    FactorGraphBounds bounds;
    bounds.dict_size = dict_size;
    bounds.num_dcs = num_dcs;
    HOLO_RETURN_NOT_OK(DeserializeFactorGraph(&reader, SectionCodec::kRaw,
                                              &s->graph, bounds));
    s->graph_loaded = true;
    HOLO_RETURN_NOT_OK(reader.ReadU64(&s->grounder_stats.num_query_vars));
    HOLO_RETURN_NOT_OK(reader.ReadU64(&s->grounder_stats.num_evidence_vars));
    HOLO_RETURN_NOT_OK(
        reader.ReadU64(&s->grounder_stats.num_feature_instances));
    HOLO_RETURN_NOT_OK(reader.ReadU64(&s->grounder_stats.num_dc_factors));
    HOLO_RETURN_NOT_OK(
        reader.ReadU64(&s->grounder_stats.num_dc_pairs_considered));
    HOLO_RETURN_NOT_OK(reader.ReadU64(&s->ground_runs));
    HOLO_RETURN_NOT_OK(reader.ReadString(&s->ddlog));
  }
  if (s->valid_through > static_cast<int>(StageId::kLearn)) {
    HOLO_RETURN_NOT_OK(
        DeserializeWeightStore(&reader, SectionCodec::kRaw, &s->weights));
  }
  if (s->valid_through > static_cast<int>(StageId::kInfer)) {
    HOLO_RETURN_NOT_OK(
        DeserializeMarginals(&reader, SectionCodec::kRaw, &s->marginals));
  }
  if (s->valid_through == kNumStages) {
    HOLO_RETURN_NOT_OK(
        DeserializeRepairs(&reader, SectionCodec::kRaw, &s->repairs));
    HOLO_RETURN_NOT_OK(
        DeserializePosteriors(&reader, SectionCodec::kRaw, &s->posteriors));
  }
  if (reader.remaining() != 0) {
    return Status::ParseError("snapshot has trailing bytes");
  }
  return Status::OK();
}

Result<int> LoadV1(std::string_view bytes, PipelineContext* ctx) {
  BinaryReader header(bytes.substr(4, kHeaderBytes - 4));
  uint32_t version = 0;
  uint64_t payload_size = 0;
  HOLO_RETURN_NOT_OK(header.ReadU32(&version));
  HOLO_RETURN_NOT_OK(header.ReadU64(&payload_size));
  if (bytes.size() != kHeaderBytes + payload_size + kChecksumBytes) {
    return Status::ParseError("snapshot truncated");
  }
  std::string_view body = bytes.substr(kHeaderBytes, payload_size);
  BinaryReader trailer(
      bytes.substr(kHeaderBytes + payload_size, kChecksumBytes));
  uint64_t stored_checksum = 0;
  HOLO_RETURN_NOT_OK(trailer.ReadU64(&stored_checksum));
  if (HashBytes(body) != stored_checksum) {
    return Status::ParseError("snapshot checksum mismatch (corrupt file)");
  }

  StagedSnapshot staged;
  HOLO_RETURN_NOT_OK(ParseV1Payload(body, ctx->dcs->size(), &staged));
  HOLO_RETURN_NOT_OK(ValidateCompatibility(staged, *ctx));
  HOLO_RETURN_NOT_OK(ValidateArtifactBounds(staged, *ctx));
  int valid_through = staged.valid_through;
  CommitStaged(&staged, ctx);
  return valid_through;
}

// --- v2: sectioned layout --------------------------------------------------
//
//   [magic][u32 version=2][u64 dir_offset]
//   [section 0 bytes][section 1 bytes]...      (contiguous, in id order)
//   [u64 count][count x {u32 id, u32 codec, u64 offset, u64 size,
//                        u64 checksum-of-section-bytes}]
//   [u64 checksum-of-directory]
//
// Sections must tile [header, dir_offset) exactly — gaps or overlaps are
// rejected — so no byte of the payload escapes a checksum. Which sections
// appear is a function of valid_through, mirroring v1's conditional
// payload blocks.

/// Section ids a snapshot with this valid_through must carry, in order.
std::vector<SectionId> ExpectedSections(int valid_through) {
  std::vector<SectionId> ids = {SectionId::kMeta, SectionId::kDictionary,
                                SectionId::kTable};
  if (valid_through > static_cast<int>(StageId::kDetect)) {
    ids.push_back(SectionId::kDetect);
  }
  if (valid_through > static_cast<int>(StageId::kCompile)) {
    ids.push_back(SectionId::kCompile);
    ids.push_back(SectionId::kGraph);
  }
  if (valid_through > static_cast<int>(StageId::kLearn)) {
    ids.push_back(SectionId::kWeights);
  }
  if (valid_through > static_cast<int>(StageId::kInfer)) {
    ids.push_back(SectionId::kMarginals);
  }
  if (valid_through == kNumStages) {
    ids.push_back(SectionId::kReport);
  }
  return ids;
}

struct SectionBlob {
  SectionId id;
  SectionCodec codec;
  std::string bytes;
};

/// True when every stream the packed codec would emit for this context
/// stays under the reader's kMaxStreamElements cap. The longest streams
/// are flattened per-element columns: table cells per attribute, feature
/// instances, factor var-ids, violation cells, marginal entries.
bool PackedStreamsFit(const PipelineContext& ctx, int valid_through) {
  const Table& table = ctx.dataset->dirty();
  uint64_t longest = table.num_rows();
  auto grow = [&longest](uint64_t n) { longest = std::max(longest, n); };
  // kColumnStore streams one code→value array per column, each at most the
  // dictionary's size.
  grow(table.dict().size());
  if (valid_through > static_cast<int>(StageId::kDetect)) {
    grow(ctx.violations.size());
    uint64_t cells = 0;
    for (const Violation& v : ctx.violations) cells += v.cells.size();
    grow(cells);
    grow(ctx.noisy.size());
  }
  if (valid_through > static_cast<int>(StageId::kCompile)) {
    grow(ctx.query_cells.size());
    grow(ctx.evidence_cells.size());
    uint64_t candidates = 0;
    for (const auto& [cell, cands] : ctx.domains.candidates) {
      (void)cell;
      candidates += cands.size();
    }
    grow(candidates);
    uint64_t features = 0;
    uint64_t domain = 0;
    for (const Variable& var : ctx.graph.variables()) {
      features += var.features.size();
      domain += var.domain.size();
    }
    grow(features);
    grow(domain + ctx.graph.num_variables());  // feat_begin stream.
    uint64_t var_ids = 0;
    for (const DcFactor& f : ctx.graph.dc_factors()) {
      var_ids += f.var_ids.size();
    }
    grow(ctx.graph.dc_factors().size());
    grow(var_ids);
  }
  if (valid_through > static_cast<int>(StageId::kLearn)) {
    grow(ctx.weights.size());
  }
  if (valid_through > static_cast<int>(StageId::kInfer)) {
    uint64_t probs = 0;
    for (const auto& p : ctx.marginals.probs()) probs += p.size();
    grow(probs);
  }
  if (valid_through == kNumStages) {
    grow(ctx.report.posteriors.size());
  }
  return longest <= kMaxStreamElements;
}

Status SaveSessionSnapshotV2(const PipelineContext& ctx, int valid_through,
                             const std::string& path, SectionCodec codec) {
  const Table& table = ctx.dataset->dirty();
  const Schema& schema = table.schema();
  // The reader caps packed stream lengths (allocation bound for corrupt
  // counts); a context past the cap saves raw instead, so Save never
  // produces a snapshot Load would reject.
  if (codec == SectionCodec::kPacked &&
      !PackedStreamsFit(ctx, valid_through)) {
    codec = SectionCodec::kRaw;
  }
  std::vector<SectionBlob> sections;
  auto add = [&sections](SectionId id, SectionCodec c, BinaryWriter* w) {
    sections.push_back({id, c, w->TakeBuffer()});
  };

  {
    BinaryWriter w;
    w.WriteU64(ConfigFingerprint(ctx.config));
    w.WriteU64(schema.num_attrs());
    for (const std::string& name : schema.names()) w.WriteString(name);
    w.WriteU64(table.num_rows());
    w.WriteU64(DcsFingerprint(*ctx.dcs, schema));
    w.WriteU64(
        ExternalDataFingerprint(ctx.dicts, ctx.mds, ctx.extra_detectors));
    w.WriteI32(valid_through);
    const RunStats& stats = ctx.report.stats;
    w.WriteU64(stats.num_violations);
    w.WriteU64(stats.num_noisy_cells);
    w.WriteU64(stats.num_query_vars);
    w.WriteU64(stats.num_evidence_vars);
    w.WriteU64(stats.num_candidates);
    w.WriteU64(stats.num_dc_factors);
    w.WriteU64(stats.num_grounded_factors);
    // Appended after the original seven counters; older readers that stop
    // at the counters reject the extra bytes, so this rides the same
    // format version as kColumnStore (newer readers tolerate absence).
    w.WriteU64(stats.detect_truncated ? 1 : 0);
    w.WriteU64(stats.num_truncated_dcs);
    add(SectionId::kMeta, SectionCodec::kRaw, &w);
  }
  {
    const Dictionary& dict = table.dict();
    BinaryWriter w;
    w.WriteU64(dict.size());
    for (size_t i = 0; i < dict.size(); ++i) {
      w.WriteString(dict.GetString(static_cast<ValueId>(i)));
    }
    add(SectionId::kDictionary, SectionCodec::kRaw, &w);
  }
  {
    BinaryWriter w;
    for (size_t a = 0; a < schema.num_attrs(); ++a) {
      const std::vector<ValueId>& column =
          table.Column(static_cast<AttrId>(a));
      if (codec == SectionCodec::kPacked) {
        std::vector<uint64_t> vals(column.begin(), column.end());
        WriteU64Stream(&w, vals);
      } else {
        for (ValueId v : column) w.WriteI32(v);
      }
    }
    add(SectionId::kTable, codec, &w);
  }
  if (valid_through > static_cast<int>(StageId::kDetect)) {
    BinaryWriter w;
    if (codec == SectionCodec::kPacked) {
      std::vector<uint64_t> attrs(ctx.attrs.begin(), ctx.attrs.end());
      WriteU64Stream(&w, attrs);
      SerializeViolations(ctx.violations, codec, &w);
      WritePackedCellVec(&w, ctx.noisy.cells());
    } else {
      WriteI32Vec(&w, ctx.attrs);
      SerializeViolations(ctx.violations, codec, &w);
      WriteCellVec(&w, ctx.noisy.cells());
    }
    add(SectionId::kDetect, codec, &w);
  }
  if (valid_through > static_cast<int>(StageId::kCompile)) {
    {
      BinaryWriter w;
      if (codec == SectionCodec::kPacked) {
        WritePackedCellVec(&w, ctx.query_cells);
        WritePackedCellVec(&w, ctx.evidence_cells);
      } else {
        WriteCellVec(&w, ctx.query_cells);
        WriteCellVec(&w, ctx.evidence_cells);
      }
      SerializeDomains(ctx.domains, codec, &w);
      SerializeProgram(ctx.program, &w);
      w.WriteU64(ctx.grounder_stats.num_query_vars);
      w.WriteU64(ctx.grounder_stats.num_evidence_vars);
      w.WriteU64(ctx.grounder_stats.num_feature_instances);
      w.WriteU64(ctx.grounder_stats.num_dc_factors);
      w.WriteU64(ctx.grounder_stats.num_dc_pairs_considered);
      w.WriteU64(ctx.ground_runs);
      w.WriteString(ctx.report.ddlog);
      add(SectionId::kCompile, codec, &w);
    }
    {
      BinaryWriter w;
      SerializeFactorGraph(ctx.graph, codec, &w);
      add(SectionId::kGraph, codec, &w);
    }
  }
  if (valid_through > static_cast<int>(StageId::kLearn)) {
    BinaryWriter w;
    SerializeWeightStore(ctx.weights, codec, &w);
    add(SectionId::kWeights, codec, &w);
  }
  if (valid_through > static_cast<int>(StageId::kInfer)) {
    BinaryWriter w;
    SerializeMarginals(ctx.marginals, codec, &w);
    add(SectionId::kMarginals, codec, &w);
  }
  if (valid_through == kNumStages) {
    BinaryWriter w;
    SerializeRepairs(ctx.report.repairs, codec, &w);
    SerializePosteriors(ctx.report.posteriors, codec, &w);
    add(SectionId::kReport, codec, &w);
  }
  {
    // ColumnStore dictionaries: per column, the code→value-id array and the
    // sorted prefix, so restores install the code arrays wholesale instead
    // of re-encoding every cell. Highest section id, hence always last.
    BinaryWriter w;
    for (size_t a = 0; a < schema.num_attrs(); ++a) {
      const ColumnStore::Column& col = table.store().column(a);
      if (codec == SectionCodec::kPacked) {
        std::vector<uint64_t> vals(col.code_to_value.begin(),
                                   col.code_to_value.end());
        WriteU64Stream(&w, vals);
      } else {
        WriteI32Vec(&w, col.code_to_value);
      }
      w.WriteU64(col.sorted_prefix);
    }
    add(SectionId::kColumnStore, codec, &w);
  }

  uint64_t offset = kHeaderBytes;
  BinaryWriter dir;
  dir.WriteU64(sections.size());
  for (const SectionBlob& s : sections) {
    dir.WriteU32(static_cast<uint32_t>(s.id));
    dir.WriteU32(static_cast<uint32_t>(s.codec));
    dir.WriteU64(offset);
    dir.WriteU64(s.bytes.size());
    dir.WriteU64(HashBytes(s.bytes));
    offset += s.bytes.size();
  }
  BinaryWriter header;
  header.WriteBytes(std::string_view(kMagic, sizeof(kMagic)));
  header.WriteU32(kSnapshotFormatVersion);
  header.WriteU64(offset);  // Directory starts where the sections end.
  BinaryWriter trailer;
  trailer.WriteU64(HashBytes(dir.buffer()));

  std::vector<std::string_view> parts;
  parts.push_back(header.buffer());
  for (const SectionBlob& s : sections) parts.push_back(s.bytes);
  parts.push_back(dir.buffer());
  parts.push_back(trailer.buffer());
  return WriteFileAtomic(path, parts);
}

/// Holds a still-encoded kGraph section of a lazily restored snapshot
/// (plus the mapping that keeps its bytes resident) and materializes it
/// on first access, running exactly the checks the eager path runs at
/// restore time: section checksum, structural decode, cell/tuple bounds,
/// and the marginals-shape agreement.
class LazyGraphSource : public DeferredGraphSource {
 public:
  LazyGraphSource(std::shared_ptr<MmapReader> mapping, std::string_view bytes,
                  SectionCodec codec, uint64_t checksum, size_t dict_size,
                  size_t num_dcs, uint64_t num_rows, size_t num_attrs,
                  int valid_through, std::string path)
      : mapping_(std::move(mapping)),
        bytes_(bytes),
        codec_(codec),
        checksum_(checksum),
        dict_size_(dict_size),
        num_dcs_(num_dcs),
        num_rows_(num_rows),
        num_attrs_(num_attrs),
        valid_through_(valid_through),
        path_(std::move(path)) {}

  Status Materialize(PipelineContext* ctx) override {
    if (HashBytes(bytes_) != checksum_) {
      return Status::ParseError(
          "snapshot checksum mismatch (corrupt file): " + path_);
    }
    BinaryReader in(bytes_);
    FactorGraph graph;
    FactorGraphBounds bounds;
    bounds.dict_size = dict_size_;
    bounds.num_dcs = num_dcs_;
    HOLO_RETURN_NOT_OK(DeserializeFactorGraph(&in, codec_, &graph, bounds));
    if (in.remaining() != 0) {
      return Status::ParseError("snapshot has trailing bytes");
    }
    HOLO_RETURN_NOT_OK(ValidateGraphBounds(graph, num_rows_, num_attrs_));
    if (valid_through_ > static_cast<int>(StageId::kInfer)) {
      HOLO_RETURN_NOT_OK(ValidateMarginalsShape(ctx->marginals, graph));
    }
    ctx->graph = std::move(graph);
    return Status::OK();
  }

 private:
  std::shared_ptr<MmapReader> mapping_;
  std::string_view bytes_;
  SectionCodec codec_;
  uint64_t checksum_;
  size_t dict_size_;
  size_t num_dcs_;
  uint64_t num_rows_;
  size_t num_attrs_;
  int valid_through_;
  std::string path_;
};

struct DirEntry {
  uint32_t id = 0;
  SectionCodec codec = SectionCodec::kRaw;
  std::string_view bytes;
  uint64_t checksum = 0;
};

Result<int> LoadV2(std::string_view bytes,
                   std::shared_ptr<MmapReader> mapping,
                   const std::string& path, PipelineContext* ctx,
                   const SnapshotLoadOptions& options) {
  BinaryReader header(bytes.substr(4, kHeaderBytes - 4));
  uint32_t version = 0;
  uint64_t dir_offset = 0;
  HOLO_RETURN_NOT_OK(header.ReadU32(&version));
  HOLO_RETURN_NOT_OK(header.ReadU64(&dir_offset));
  // Subtraction, not addition: a corrupt dir_offset near 2^64 must fail
  // this check, not wrap past it into an out-of-range substr. The caller
  // guaranteed bytes.size() >= header + checksum, so no underflow here.
  if (dir_offset < kHeaderBytes ||
      dir_offset > bytes.size() - 8 - kChecksumBytes) {
    return Status::ParseError("snapshot truncated");
  }
  std::string_view dir_bytes =
      bytes.substr(dir_offset, bytes.size() - dir_offset - kChecksumBytes);
  BinaryReader trailer(
      bytes.substr(bytes.size() - kChecksumBytes, kChecksumBytes));
  uint64_t stored_checksum = 0;
  HOLO_RETURN_NOT_OK(trailer.ReadU64(&stored_checksum));
  if (HashBytes(dir_bytes) != stored_checksum) {
    return Status::ParseError("snapshot checksum mismatch (corrupt file)");
  }

  BinaryReader dir(dir_bytes);
  uint64_t count = 0;
  HOLO_RETURN_NOT_OK(dir.ReadU64(&count));
  if (count > dir.remaining() / kDirEntryBytes ||
      dir.remaining() != count * kDirEntryBytes) {
    return Status::ParseError("snapshot truncated");
  }
  std::vector<DirEntry> entries(count);
  uint64_t expected_offset = kHeaderBytes;
  uint32_t prev_id = 0;
  for (size_t i = 0; i < count; ++i) {
    DirEntry& e = entries[i];
    uint32_t codec = 0;
    uint64_t offset = 0;
    uint64_t size = 0;
    HOLO_RETURN_NOT_OK(dir.ReadU32(&e.id));
    HOLO_RETURN_NOT_OK(dir.ReadU32(&codec));
    HOLO_RETURN_NOT_OK(dir.ReadU64(&offset));
    HOLO_RETURN_NOT_OK(dir.ReadU64(&size));
    HOLO_RETURN_NOT_OK(dir.ReadU64(&e.checksum));
    if (codec > kMaxSectionCodec ||
        e.id > static_cast<uint32_t>(SectionId::kColumnStore) ||
        (i > 0 && e.id <= prev_id)) {
      return Status::ParseError("snapshot section directory is malformed");
    }
    // Sections must tile [header, directory) exactly: no gaps a checksum
    // would not cover, no overlaps.
    if (offset != expected_offset || size > dir_offset - offset) {
      return Status::ParseError("snapshot section directory is malformed");
    }
    e.codec = static_cast<SectionCodec>(codec);
    e.bytes = bytes.substr(offset, size);
    expected_offset = offset + size;
    prev_id = e.id;
  }
  if (expected_offset != dir_offset) {
    return Status::ParseError("snapshot section directory is malformed");
  }

  // Meta first: it carries valid_through, which determines both the
  // expected section set and how to interpret the rest.
  StagedSnapshot staged;
  if (entries.empty() ||
      entries[0].id != static_cast<uint32_t>(SectionId::kMeta) ||
      entries[0].codec != SectionCodec::kRaw) {
    return Status::ParseError("snapshot sections inconsistent");
  }
  if (HashBytes(entries[0].bytes) != entries[0].checksum) {
    return Status::ParseError("snapshot checksum mismatch (corrupt file)");
  }
  {
    BinaryReader r(entries[0].bytes);
    HOLO_RETURN_NOT_OK(r.ReadU64(&staged.config_fp));
    size_t num_attrs = 0;
    HOLO_RETURN_NOT_OK(r.ReadCount(8, &num_attrs));
    staged.schema_names.resize(num_attrs);
    for (std::string& name : staged.schema_names) {
      HOLO_RETURN_NOT_OK(r.ReadString(&name));
    }
    HOLO_RETURN_NOT_OK(r.ReadU64(&staged.num_rows));
    HOLO_RETURN_NOT_OK(r.ReadU64(&staged.dcs_fp));
    HOLO_RETURN_NOT_OK(r.ReadU64(&staged.extdata_fp));
    HOLO_RETURN_NOT_OK(r.ReadI32(&staged.valid_through));
    if (staged.valid_through < 0 || staged.valid_through > kNumStages) {
      return Status::ParseError("snapshot valid_through out of range");
    }
    for (uint64_t& c : staged.counters) HOLO_RETURN_NOT_OK(r.ReadU64(&c));
    // Newer saves append the detection-truncation flags; older v2 files
    // end at the counters and keep the defaults.
    if (r.remaining() != 0) {
      uint64_t truncated = 0;
      HOLO_RETURN_NOT_OK(r.ReadU64(&truncated));
      if (truncated > 1) {
        return Status::ParseError("snapshot meta flags out of range");
      }
      staged.detect_truncated = truncated != 0;
      HOLO_RETURN_NOT_OK(r.ReadU64(&staged.num_truncated_dcs));
    }
    if (r.remaining() != 0) {
      return Status::ParseError("snapshot has trailing bytes");
    }
  }
  // kColumnStore (the highest id, hence always last) is optional: current
  // saves always append it, but v2 files written before it existed must
  // still restore — they just re-encode through the per-cell path.
  std::vector<SectionId> expected = ExpectedSections(staged.valid_through);
  size_t required = entries.size();
  if (required == expected.size() + 1 &&
      entries.back().id == static_cast<uint32_t>(SectionId::kColumnStore)) {
    required -= 1;
  }
  if (required != expected.size()) {
    return Status::ParseError("snapshot sections inconsistent");
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (entries[i].id != static_cast<uint32_t>(expected[i])) {
      return Status::ParseError("snapshot sections inconsistent");
    }
  }

  // Dictionary next, then the compatibility gate: fingerprint and
  // alignment mismatches must be reported as InvalidArgument before any
  // artifact section is parsed — a snapshot from the wrong session is not
  // malformed, it just does not belong here (and e.g. its factor
  // dc_indexes would otherwise trip the wrong-constraint-count bound as a
  // ParseError first).
  {
    const DirEntry& e = entries[1];
    if (e.codec != SectionCodec::kRaw) {
      return Status::ParseError("snapshot sections inconsistent");
    }
    if (HashBytes(e.bytes) != e.checksum) {
      return Status::ParseError("snapshot checksum mismatch (corrupt file)");
    }
    BinaryReader r(e.bytes);
    size_t dict_size = 0;
    HOLO_RETURN_NOT_OK(r.ReadCount(8, &dict_size));
    staged.dict_values.resize(dict_size);
    for (std::string& value : staged.dict_values) {
      HOLO_RETURN_NOT_OK(r.ReadString(&value));
    }
    if (r.remaining() != 0) {
      return Status::ParseError("snapshot has trailing bytes");
    }
  }
  HOLO_RETURN_NOT_OK(ValidateCompatibility(staged, *ctx));

  const bool defer_graph =
      options.lazy_graph && mapping != nullptr &&
      staged.valid_through > static_cast<int>(StageId::kCompile);
  const DirEntry* graph_entry = nullptr;
  for (size_t i = 2; i < entries.size(); ++i) {
    const DirEntry& e = entries[i];
    SectionId id = static_cast<SectionId>(e.id);
    if (defer_graph && id == SectionId::kGraph) {
      // Deferred: checksum and decode run at materialization.
      graph_entry = &e;
      continue;
    }
    if (HashBytes(e.bytes) != e.checksum) {
      return Status::ParseError("snapshot checksum mismatch (corrupt file)");
    }
    BinaryReader r(e.bytes);
    switch (id) {
      case SectionId::kTable: {
        staged.columns.resize(staged.num_attrs());
        for (std::vector<ValueId>& column : staged.columns) {
          if (e.codec == SectionCodec::kPacked) {
            std::vector<uint64_t> vals;
            HOLO_RETURN_NOT_OK(ReadU64Stream(&r, &vals));
            if (vals.size() != staged.num_rows) {
              return Status::ParseError("snapshot table streams disagree");
            }
            column.resize(vals.size());
            for (size_t t = 0; t < vals.size(); ++t) {
              if (!CastI32(vals[t], &column[t]) ||
                  static_cast<size_t>(column[t]) >= staged.dict_size()) {
                return Status::ParseError("snapshot value id out of range");
              }
            }
          } else {
            column.resize(staged.num_rows);
            for (ValueId& v : column) {
              HOLO_RETURN_NOT_OK(r.ReadI32(&v));
              if (v < 0 || static_cast<size_t>(v) >= staged.dict_size()) {
                return Status::ParseError("snapshot value id out of range");
              }
            }
          }
        }
        break;
      }
      case SectionId::kDetect: {
        if (e.codec == SectionCodec::kPacked) {
          std::vector<uint64_t> attrs;
          HOLO_RETURN_NOT_OK(ReadU64Stream(&r, &attrs));
          staged.attrs.resize(attrs.size());
          for (size_t a = 0; a < attrs.size(); ++a) {
            if (!CastI32(attrs[a], &staged.attrs[a])) {
              return Status::ParseError("snapshot artifacts out of range");
            }
          }
          HOLO_RETURN_NOT_OK(
              DeserializeViolations(&r, e.codec, &staged.violations));
          HOLO_RETURN_NOT_OK(ReadPackedCellVec(&r, &staged.noisy_cells));
        } else {
          HOLO_RETURN_NOT_OK(ReadI32Vec(&r, &staged.attrs));
          HOLO_RETURN_NOT_OK(
              DeserializeViolations(&r, e.codec, &staged.violations));
          HOLO_RETURN_NOT_OK(ReadCellVec(&r, &staged.noisy_cells));
        }
        break;
      }
      case SectionId::kCompile: {
        if (e.codec == SectionCodec::kPacked) {
          HOLO_RETURN_NOT_OK(ReadPackedCellVec(&r, &staged.query_cells));
          HOLO_RETURN_NOT_OK(ReadPackedCellVec(&r, &staged.evidence_cells));
        } else {
          HOLO_RETURN_NOT_OK(ReadCellVec(&r, &staged.query_cells));
          HOLO_RETURN_NOT_OK(ReadCellVec(&r, &staged.evidence_cells));
        }
        HOLO_RETURN_NOT_OK(DeserializeDomains(&r, e.codec,
                                              staged.dict_size(),
                                              &staged.domains));
        HOLO_RETURN_NOT_OK(DeserializeProgram(&r, &staged.program));
        HOLO_RETURN_NOT_OK(
            r.ReadU64(&staged.grounder_stats.num_query_vars));
        HOLO_RETURN_NOT_OK(
            r.ReadU64(&staged.grounder_stats.num_evidence_vars));
        HOLO_RETURN_NOT_OK(
            r.ReadU64(&staged.grounder_stats.num_feature_instances));
        HOLO_RETURN_NOT_OK(
            r.ReadU64(&staged.grounder_stats.num_dc_factors));
        HOLO_RETURN_NOT_OK(
            r.ReadU64(&staged.grounder_stats.num_dc_pairs_considered));
        HOLO_RETURN_NOT_OK(r.ReadU64(&staged.ground_runs));
        HOLO_RETURN_NOT_OK(r.ReadString(&staged.ddlog));
        break;
      }
      case SectionId::kGraph: {
        FactorGraphBounds bounds;
        bounds.dict_size = staged.dict_size();
        bounds.num_dcs = ctx->dcs->size();
        HOLO_RETURN_NOT_OK(
            DeserializeFactorGraph(&r, e.codec, &staged.graph, bounds));
        staged.graph_loaded = true;
        break;
      }
      case SectionId::kWeights: {
        HOLO_RETURN_NOT_OK(
            DeserializeWeightStore(&r, e.codec, &staged.weights));
        break;
      }
      case SectionId::kMarginals: {
        HOLO_RETURN_NOT_OK(
            DeserializeMarginals(&r, e.codec, &staged.marginals));
        break;
      }
      case SectionId::kReport: {
        HOLO_RETURN_NOT_OK(
            DeserializeRepairs(&r, e.codec, &staged.repairs));
        HOLO_RETURN_NOT_OK(
            DeserializePosteriors(&r, e.codec, &staged.posteriors));
        break;
      }
      case SectionId::kColumnStore: {
        // Ordered after kTable by id, so staged.columns is already parsed
        // and the cross-check against the cell values can run here.
        staged.col_dicts.resize(staged.num_attrs());
        staged.sorted_prefixes.resize(staged.num_attrs());
        for (size_t a = 0; a < staged.num_attrs(); ++a) {
          std::vector<ValueId>& cdict = staged.col_dicts[a];
          if (e.codec == SectionCodec::kPacked) {
            std::vector<uint64_t> vals;
            HOLO_RETURN_NOT_OK(ReadU64Stream(&r, &vals));
            cdict.resize(vals.size());
            for (size_t k = 0; k < vals.size(); ++k) {
              if (!CastI32(vals[k], &cdict[k]) ||
                  static_cast<size_t>(cdict[k]) >= staged.dict_size()) {
                return Status::ParseError("snapshot value id out of range");
              }
            }
          } else {
            HOLO_RETURN_NOT_OK(
                ReadValueIdVec(&r, staged.dict_size(), &cdict));
          }
          HOLO_RETURN_NOT_OK(r.ReadU64(&staged.sorted_prefixes[a]));
        }
        HOLO_RETURN_NOT_OK(ValidateColumnStoreSection(staged));
        staged.has_column_store = true;
        break;
      }
      case SectionId::kMeta:
      case SectionId::kDictionary:
        // Parsed before this loop; appearing again means a malformed
        // directory (the expected-set check should have caught it).
        return Status::ParseError("snapshot sections inconsistent");
    }
    if (r.remaining() != 0) {
      return Status::ParseError("snapshot has trailing bytes");
    }
  }

  // Compatibility was already validated before the artifact sections
  // parsed; only the cross-artifact bounds remain.
  HOLO_RETURN_NOT_OK(ValidateArtifactBounds(staged, *ctx));
  int valid_through = staged.valid_through;
  size_t dict_size = staged.dict_size();
  uint64_t num_rows = staged.num_rows;
  size_t num_attrs = staged.num_attrs();
  CommitStaged(&staged, ctx);
  if (defer_graph && graph_entry != nullptr) {
    ctx->deferred_graph = std::make_shared<LazyGraphSource>(
        std::move(mapping), graph_entry->bytes, graph_entry->codec,
        graph_entry->checksum, dict_size, ctx->dcs->size(), num_rows,
        num_attrs, valid_through, path);
  }
  return valid_through;
}

}  // namespace

// --- Public entry points ---------------------------------------------------

Status SaveSessionSnapshot(const PipelineContext& ctx, int valid_through,
                           const std::string& path,
                           const SnapshotSaveOptions& options) {
  // io.snapshot.save models the disk failing under any snapshot write —
  // spill-on-evict, drain persistence, explicit Save() calls alike.
  HOLO_RETURN_NOT_OK(HOLO_FAILPOINT("io.snapshot.save"));
  if (ctx.dataset == nullptr || ctx.dcs == nullptr) {
    return Status::InvalidArgument("snapshot requires an opened session");
  }
  if (valid_through < 0 || valid_through > kNumStages) {
    return Status::InvalidArgument("valid_through out of range");
  }
  if (ctx.deferred_graph != nullptr &&
      valid_through > static_cast<int>(StageId::kCompile)) {
    return Status::InvalidArgument(
        "cannot save a lazily restored session before its factor graph "
        "materializes (call PipelineContext::EnsureGraph)");
  }
  if (options.format_version == kSnapshotFormatV1) {
    return SaveSessionSnapshotV1(ctx, valid_through, path);
  }
  if (options.format_version != kSnapshotFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot format version: v" +
                                   std::to_string(options.format_version));
  }
  return SaveSessionSnapshotV2(ctx, valid_through, path, options.codec);
}

Result<int> LoadSessionSnapshot(const std::string& path, PipelineContext* ctx,
                                const SnapshotLoadOptions& options) {
  // io.snapshot.load models an unreadable/corrupt snapshot file; every
  // caller already treats a failed load as cold-start, never fatal.
  HOLO_RETURN_NOT_OK(HOLO_FAILPOINT("io.snapshot.load"));
  if (ctx == nullptr || ctx->dataset == nullptr || ctx->dcs == nullptr) {
    return Status::InvalidArgument("restore requires an opened session");
  }
  std::string owned;
  std::shared_ptr<MmapReader> mapping;
  std::string_view bytes;
  if (options.lazy_graph) {
    HOLO_ASSIGN_OR_RETURN(mapped, MmapReader::Map(path));
    mapping = std::move(mapped);
    bytes = mapping->data();
  } else {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return Status::NotFound("cannot open snapshot: " + path);
    // Size the buffer from the file length and read straight into it —
    // snapshots run to tens of MiB and a stringstream detour would hold
    // the bytes twice.
    std::streamoff size = in.tellg();
    if (size < 0) return Status::Internal("cannot stat snapshot: " + path);
    owned.resize(static_cast<size_t>(size));
    in.seekg(0);
    in.read(owned.data(), size);
    if (in.gcount() != size) {
      return Status::Internal("cannot read snapshot: " + path);
    }
    bytes = owned;
  }

  if (bytes.size() < kHeaderBytes + kChecksumBytes) {
    return Status::ParseError("snapshot truncated");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a SessionSnapshot file: " + path);
  }
  BinaryReader header(bytes.substr(4, 4));
  uint32_t version = 0;
  HOLO_RETURN_NOT_OK(header.ReadU32(&version));
  if (version == kSnapshotFormatV1) return LoadV1(bytes, ctx);
  if (version == kSnapshotFormatVersion) {
    return LoadV2(bytes, std::move(mapping), path, ctx, options);
  }
  return Status::InvalidArgument(
      "snapshot format version mismatch: file has v" +
      std::to_string(version) + ", this build reads v" +
      std::to_string(kSnapshotFormatVersion) + " (and v" +
      std::to_string(kSnapshotFormatV1) + ")");
}

}  // namespace holoclean
