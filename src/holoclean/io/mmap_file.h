#ifndef HOLOCLEAN_IO_MMAP_FILE_H_
#define HOLOCLEAN_IO_MMAP_FILE_H_

#include <memory>
#include <string>
#include <string_view>

#include "holoclean/util/status.h"

namespace holoclean {

/// Read-only memory mapping of a file. The kernel pages bytes in on first
/// touch, so a reader that only walks part of the file (e.g. a lazily
/// restored snapshot that never materializes its factor-graph section)
/// never pays I/O for the rest.
///
/// Returned as a shared_ptr so section views can keep the mapping alive
/// past the load call that created it (a deferred section holds a
/// string_view into the mapping until it materializes).
class MmapReader {
 public:
  /// Maps `path` read-only. Fails with NotFound when the file is missing
  /// and Internal when the mapping itself fails.
  static Result<std::shared_ptr<MmapReader>> Map(const std::string& path);

  MmapReader(const MmapReader&) = delete;
  MmapReader& operator=(const MmapReader&) = delete;
  ~MmapReader();

  /// The mapped bytes. Valid for the lifetime of this object.
  std::string_view data() const {
    if (addr_ == nullptr) return std::string_view();
    return std::string_view(static_cast<const char*>(addr_), size_);
  }

 private:
  MmapReader(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_IO_MMAP_FILE_H_
