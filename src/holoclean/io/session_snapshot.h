#ifndef HOLOCLEAN_IO_SESSION_SNAPSHOT_H_
#define HOLOCLEAN_IO_SESSION_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "holoclean/core/pipeline_context.h"
#include "holoclean/io/binary_io.h"
#include "holoclean/io/codec.h"

namespace holoclean {

/// Current version of the SessionSnapshot binary format (the v2 sectioned
/// layout: a section directory with per-section codecs and checksums, so
/// sections decode — and lazily materialize — independently). Snapshots
/// written by this build use it.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// The original monolithic format of PR 2. Still fully readable (the
/// back-compat contract is pinned by the golden fixture in tests/data/)
/// and writable via SnapshotSaveOptions for comparison benchmarks.
inline constexpr uint32_t kSnapshotFormatV1 = 1;

struct SnapshotSaveOptions {
  /// Codec for the artifact sections (the meta and dictionary sections are
  /// always raw: they are tiny and every reader needs them first).
  /// Ignored for v1, which predates section codecs.
  SectionCodec codec = SectionCodec::kPacked;
  /// Format to write: kSnapshotFormatVersion or kSnapshotFormatV1.
  uint32_t format_version = kSnapshotFormatVersion;
};

struct SnapshotLoadOptions {
  /// Map the snapshot instead of reading it, and defer the factor-graph
  /// section — by far the largest — to first access: restore validates
  /// and commits everything else, installs a DeferredGraphSource, and the
  /// first stage that touches the graph (or Session::Save) materializes
  /// it via PipelineContext::EnsureGraph. A session restored at full
  /// completion never pays for the graph at all. Only v2 snapshots defer;
  /// v1 files load eagerly regardless.
  ///
  /// Trade-off: the deferred section's checksum and validation run at
  /// materialization time, so a corruption confined to the graph section
  /// surfaces as a Status from the first stage run instead of from the
  /// restore call.
  bool lazy_graph = false;
};

/// Fingerprint over every result-affecting configuration knob. Two configs
/// with equal fingerprints produce bit-identical pipelines on the same
/// inputs, so a snapshot is only loadable under a config whose fingerprint
/// matches the one it was saved with. `num_threads` is excluded: results
/// are thread-count invariant, so a snapshot saved on 1 thread restores
/// fine into a 16-thread session.
uint64_t ConfigFingerprint(const HoloCleanConfig& config);

/// Fingerprint over a denial-constraint set (its textual form under
/// `schema`). Order-sensitive: constraint indexes are baked into the
/// grounded factors.
uint64_t DcsFingerprint(const std::vector<DenialConstraint>& dcs,
                        const Schema& schema);

/// Fingerprint over the session's external-data and detector inputs:
/// dictionary names and record contents, the matching dependencies'
/// clauses and thresholds, and the extra detectors' names. Cached compile
/// and detect artifacts were derived from these, so a snapshot only
/// restores under matching inputs. (Detector *parameters* are opaque to
/// the engine and not covered; registering differently configured
/// detectors under the same names is on the caller.)
uint64_t ExternalDataFingerprint(const ExtDictCollection* dicts,
                                 const std::vector<MatchingDependency>* mds,
                                 const DetectorSuite* extra_detectors);

// --- Artifact codecs -------------------------------------------------------
// Each Serialize appends the artifact to the writer under the given
// SectionCodec; the matching Deserialize consumes it, validating every
// structural invariant the in-memory type asserts (so a corrupt payload
// fails with a Status instead of tripping a HOLO_CHECK). kRaw is the v1
// fixed-width wire form; kPacked is the stream-transposed varint/delta/RLE
// form (feature keys are decomposed into their WeightKeyCodec fields and
// each field encoded as its own adaptive stream).

/// Upper bounds the deserialized graph's ids are validated against:
/// domain value ids must fall inside the dictionary and factor dc_indexes
/// inside the constraint set. Defaults impose no bound (standalone codec
/// use); snapshot loading passes the session's real bounds.
struct FactorGraphBounds {
  size_t dict_size = SIZE_MAX;
  size_t num_dcs = SIZE_MAX;
};

void SerializeFactorGraph(const FactorGraph& graph, SectionCodec codec,
                          BinaryWriter* out);
Status DeserializeFactorGraph(BinaryReader* in, SectionCodec codec,
                              FactorGraph* graph,
                              const FactorGraphBounds& bounds = {});

void SerializeWeightStore(const WeightStore& weights, SectionCodec codec,
                          BinaryWriter* out);
Status DeserializeWeightStore(BinaryReader* in, SectionCodec codec,
                              WeightStore* weights);

void SerializeMarginals(const Marginals& marginals, SectionCodec codec,
                        BinaryWriter* out);
Status DeserializeMarginals(BinaryReader* in, SectionCodec codec,
                            Marginals* marginals);

// --- Whole-session snapshot ------------------------------------------------

/// Serializes the context's cached stage artifacts — everything stages
/// [0, valid_through) produced — into the versioned, checksummed
/// SessionSnapshot format and writes it to `path` (temp file + rename, so a
/// crash mid-save never leaves a half-written snapshot under `path`).
///
/// The snapshot carries the dirty table's cell values and the dictionary's
/// interned strings: feedback pins mutate the table and compilation interns
/// matched values, and the grounded graph references both by id.
/// Artifacts every compile execution rebuilds from scratch (co-occurrence
/// statistics, external-data matches, tuple groups) are not persisted.
///
/// A lazily restored context must materialize its graph before saving
/// (Session::Save does); a still-deferred graph is an InvalidArgument.
Status SaveSessionSnapshot(const PipelineContext& ctx, int valid_through,
                           const std::string& path,
                           const SnapshotSaveOptions& options = {});

/// Loads a snapshot into a freshly opened session's context. Validates,
/// in order: magic + format version, payload integrity (v1: whole-payload
/// checksum; v2: the section directory's checksum, the sections' exact
/// tiling of the payload, and each section's checksum), config
/// fingerprint, schema and row count, the DC set, the external-data and
/// detector inputs, and dictionary alignment (the dataset's interned
/// strings must be a prefix-compatible match of the snapshot's, which
/// pins value ids); then parses every artifact section into staging
/// storage. Only after everything parsed cleanly is anything committed —
/// on any error the context and the dataset are untouched.
///
/// Under options.lazy_graph the factor-graph section is exempt from the
/// eager checksum/parse pass: it stays mapped, and EnsureGraph runs the
/// identical validation on first access.
///
/// On success the context holds the persisted artifacts, the dirty table
/// holds the cell values from save time (re-applying any feedback pins),
/// and the returned value is the number of leading stages the snapshot
/// carries artifacts for (the session's new `valid_through`).
Result<int> LoadSessionSnapshot(const std::string& path, PipelineContext* ctx,
                                const SnapshotLoadOptions& options = {});

}  // namespace holoclean

#endif  // HOLOCLEAN_IO_SESSION_SNAPSHOT_H_
