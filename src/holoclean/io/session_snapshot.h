#ifndef HOLOCLEAN_IO_SESSION_SNAPSHOT_H_
#define HOLOCLEAN_IO_SESSION_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "holoclean/core/pipeline_context.h"
#include "holoclean/io/binary_io.h"

namespace holoclean {

/// Version of the SessionSnapshot binary format. Bumped whenever the
/// payload layout changes; a snapshot written by another version is
/// rejected on load (no cross-version migration).
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Fingerprint over every result-affecting configuration knob. Two configs
/// with equal fingerprints produce bit-identical pipelines on the same
/// inputs, so a snapshot is only loadable under a config whose fingerprint
/// matches the one it was saved with. `num_threads` is excluded: results
/// are thread-count invariant, so a snapshot saved on 1 thread restores
/// fine into a 16-thread session.
uint64_t ConfigFingerprint(const HoloCleanConfig& config);

/// Fingerprint over a denial-constraint set (its textual form under
/// `schema`). Order-sensitive: constraint indexes are baked into the
/// grounded factors.
uint64_t DcsFingerprint(const std::vector<DenialConstraint>& dcs,
                        const Schema& schema);

/// Fingerprint over the session's external-data and detector inputs:
/// dictionary names and record contents, the matching dependencies'
/// clauses and thresholds, and the extra detectors' names. Cached compile
/// and detect artifacts were derived from these, so a snapshot only
/// restores under matching inputs. (Detector *parameters* are opaque to
/// the engine and not covered; registering differently configured
/// detectors under the same names is on the caller.)
uint64_t ExternalDataFingerprint(const ExtDictCollection* dicts,
                                 const std::vector<MatchingDependency>* mds,
                                 const DetectorSuite* extra_detectors);

// --- Artifact codecs -------------------------------------------------------
// Each Serialize appends the artifact to the writer; the matching
// Deserialize consumes it, validating every structural invariant the
// in-memory type asserts (so a corrupt payload fails with a Status instead
// of tripping a HOLO_CHECK).

/// Upper bounds the deserialized graph's ids are validated against:
/// domain value ids must fall inside the dictionary and factor dc_indexes
/// inside the constraint set. Defaults impose no bound (standalone codec
/// use); LoadSessionSnapshot passes the session's real bounds.
struct FactorGraphBounds {
  size_t dict_size = SIZE_MAX;
  size_t num_dcs = SIZE_MAX;
};

void SerializeFactorGraph(const FactorGraph& graph, BinaryWriter* out);
Status DeserializeFactorGraph(BinaryReader* in, FactorGraph* graph,
                              const FactorGraphBounds& bounds = {});

void SerializeWeightStore(const WeightStore& weights, BinaryWriter* out);
Status DeserializeWeightStore(BinaryReader* in, WeightStore* weights);

void SerializeMarginals(const Marginals& marginals, BinaryWriter* out);
Status DeserializeMarginals(BinaryReader* in, Marginals* marginals);

// --- Whole-session snapshot ------------------------------------------------

/// Serializes the context's cached stage artifacts — everything stages
/// [0, valid_through) produced — into the versioned, checksummed
/// SessionSnapshot format and writes it to `path` (temp file + rename, so a
/// crash mid-save never leaves a half-written snapshot under `path`).
///
/// The snapshot carries the dirty table's cell values and the dictionary's
/// interned strings: feedback pins mutate the table and compilation interns
/// matched candidate values, and the grounded graph references both by id.
/// Artifacts every compile execution rebuilds from scratch (co-occurrence
/// statistics, external-data matches, tuple groups) are not persisted.
Status SaveSessionSnapshot(const PipelineContext& ctx, int valid_through,
                           const std::string& path);

/// Loads a snapshot into a freshly opened session's context. Validates,
/// in order: magic + format version, payload checksum, config
/// fingerprint, schema and row count, the DC set, the external-data and
/// detector inputs, and dictionary alignment (the dataset's interned
/// strings must be a prefix-compatible match of the snapshot's, which
/// pins value ids); then parses every artifact section into staging
/// storage. Only after the whole payload parsed cleanly is anything
/// committed — on any error the context and the dataset are untouched.
/// On success the context holds the persisted artifacts, the dirty table
/// holds the cell values from save time (re-applying any feedback pins),
/// and the returned value is the number of leading stages the snapshot
/// carries artifacts for (the session's new `valid_through`).
Result<int> LoadSessionSnapshot(const std::string& path,
                                PipelineContext* ctx);

}  // namespace holoclean

#endif  // HOLOCLEAN_IO_SESSION_SNAPSHOT_H_
