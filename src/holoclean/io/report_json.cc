#include "holoclean/io/report_json.h"

#include <utility>

namespace holoclean {

JsonValue RunStatsToJson(const RunStats& stats) {
  JsonValue j = JsonValue::Object();
  j.Set("detect_seconds", JsonValue::Number(stats.detect_seconds));
  j.Set("compile_seconds", JsonValue::Number(stats.compile_seconds));
  j.Set("learn_seconds", JsonValue::Number(stats.learn_seconds));
  j.Set("infer_seconds", JsonValue::Number(stats.infer_seconds));
  j.Set("total_seconds", JsonValue::Number(stats.TotalSeconds()));
  JsonValue timings = JsonValue::Array();
  for (const StageTiming& t : stats.stage_timings) {
    JsonValue stage = JsonValue::Object();
    stage.Set("name", JsonValue::String(t.name));
    stage.Set("seconds", JsonValue::Number(t.seconds));
    stage.Set("peak_rss_bytes",
              JsonValue::Number(static_cast<uint64_t>(t.peak_rss_bytes)));
    stage.Set("cached", JsonValue::Bool(t.cached));
    timings.Append(std::move(stage));
  }
  j.Set("stage_timings", std::move(timings));
  j.Set("num_violations",
        JsonValue::Number(static_cast<uint64_t>(stats.num_violations)));
  j.Set("num_noisy_cells",
        JsonValue::Number(static_cast<uint64_t>(stats.num_noisy_cells)));
  j.Set("num_query_vars",
        JsonValue::Number(static_cast<uint64_t>(stats.num_query_vars)));
  j.Set("num_evidence_vars",
        JsonValue::Number(static_cast<uint64_t>(stats.num_evidence_vars)));
  j.Set("num_candidates",
        JsonValue::Number(static_cast<uint64_t>(stats.num_candidates)));
  j.Set("num_dc_factors",
        JsonValue::Number(static_cast<uint64_t>(stats.num_dc_factors)));
  j.Set("num_grounded_factors",
        JsonValue::Number(static_cast<uint64_t>(stats.num_grounded_factors)));
  j.Set("detect_truncated", JsonValue::Bool(stats.detect_truncated));
  j.Set("num_truncated_dcs",
        JsonValue::Number(static_cast<uint64_t>(stats.num_truncated_dcs)));
  return j;
}

JsonValue ReportToJson(const Report& report, const Table& table) {
  JsonValue j = JsonValue::Object();
  j.Set("version", JsonValue::Number(kReportJsonVersion));
  JsonValue repairs = JsonValue::Array();
  for (const Repair& r : report.repairs) {
    JsonValue repair = JsonValue::Object();
    repair.Set("tid", JsonValue::Number(static_cast<uint64_t>(r.cell.tid)));
    repair.Set("attr", JsonValue::String(table.schema().name(r.cell.attr)));
    repair.Set("old", JsonValue::String(table.dict().GetString(r.old_value)));
    repair.Set("new", JsonValue::String(table.dict().GetString(r.new_value)));
    repair.Set("probability", JsonValue::Number(r.probability));
    repairs.Append(std::move(repair));
  }
  j.Set("repairs", std::move(repairs));
  j.Set("num_posteriors",
        JsonValue::Number(static_cast<uint64_t>(report.posteriors.size())));
  j.Set("stats", RunStatsToJson(report.stats));
  return j;
}

std::string ReportJsonString(const Report& report, const Table& table) {
  return ReportToJson(report, table).Dump();
}

}  // namespace holoclean
