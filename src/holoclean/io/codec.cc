#include "holoclean/io/codec.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace holoclean {

namespace {

int VarintSize(uint64_t v) {
  int size = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++size;
  }
  return size;
}

uint64_t Delta(uint64_t cur, uint64_t prev) {
  // Two's-complement wraparound: decode adds the same way, so any u64
  // sequence round-trips regardless of direction or magnitude.
  return ZigzagEncode(static_cast<int64_t>(cur - prev));
}

}  // namespace

void WriteVarint(BinaryWriter* out, uint64_t v) {
  while (v >= 0x80) {
    out->WriteU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->WriteU8(static_cast<uint8_t>(v));
}

Status ReadVarint(BinaryReader* in, uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte = 0;
    HOLO_RETURN_NOT_OK(in->ReadU8(&byte));
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The tenth byte holds the top single bit; anything above is junk.
      if (shift == 63 && byte > 1) {
        return Status::ParseError("varint overflows 64 bits");
      }
      *out = v;
      return Status::OK();
    }
  }
  return Status::ParseError("varint overflows 64 bits");
}

namespace {

/// `allow_dictionary` is cleared for the nested index stream of a
/// kDictionary payload, bounding the recursion at one level.
void WriteU64StreamImpl(BinaryWriter* out, const std::vector<uint64_t>& values,
                        bool allow_dictionary) {
  WriteVarint(out, values.size());
  if (values.empty()) return;
  const size_t n = values.size();

  // The transforms the encodings are built from: identity, zigzag delta
  // against the previous element, and zigzag delta against the element two
  // back (out-of-range predecessors read as 0, keeping every transform a
  // pure bijection on the sequence).
  auto raw = [&](size_t i) { return values[i]; };
  auto d1 = [&](size_t i) {
    return Delta(values[i], i >= 1 ? values[i - 1] : 0);
  };
  auto d2 = [&](size_t i) {
    return Delta(values[i], i >= 2 ? values[i - 2] : 0);
  };
  auto varint_size_of = [&](auto get) {
    size_t size = 0;
    for (size_t i = 0; i < n; ++i) size += VarintSize(get(i));
    return size;
  };
  auto rle_size_of = [&](auto get) {
    size_t size = 0;
    for (size_t i = 0; i < n;) {
      uint64_t v = get(i);
      size_t j = i + 1;
      while (j < n && get(j) == v) ++j;
      size += VarintSize(v) + VarintSize(j - i);
      i = j;
    }
    return size;
  };

  // Legacy layout quirk: kDeltaVarint writes element 0 undeltaed. Same
  // cost as d1's delta-against-0, so the size computation can share d1.
  IntEncoding pick = IntEncoding::kVarint;
  size_t best = varint_size_of(raw);
  auto consider = [&](IntEncoding enc, size_t size) {
    if (size < best) {
      pick = enc;
      best = size;
    }
  };
  consider(IntEncoding::kDeltaVarint,
           VarintSize(values[0]) + varint_size_of(d1) - VarintSize(d1(0)));
  consider(IntEncoding::kRle, rle_size_of(raw));
  consider(IntEncoding::kDeltaRle, rle_size_of(d1));
  consider(IntEncoding::kDelta2Varint, varint_size_of(d2));
  consider(IntEncoding::kDelta2Rle, rle_size_of(d2));

  // Dictionary candidate: materialized (table + nested index stream) only
  // when the cheap lower bound says it could beat the current best.
  BinaryWriter dict;
  if (allow_dictionary) {
    std::unordered_map<uint64_t, uint64_t> counts;
    for (uint64_t v : values) ++counts[v];
    size_t lower_bound = counts.size() + values.size() + 2;
    if (counts.size() < values.size() && lower_bound < best) {
      std::vector<std::pair<uint64_t, uint64_t>> table(counts.begin(),
                                                       counts.end());
      std::sort(table.begin(), table.end(),
                [](const auto& a, const auto& b) {
                  return a.second != b.second ? a.second > b.second
                                              : a.first < b.first;
                });
      std::unordered_map<uint64_t, uint64_t> index;
      index.reserve(table.size());
      for (size_t i = 0; i < table.size(); ++i) {
        index.emplace(table[i].first, i);
      }
      WriteVarint(&dict, table.size());
      for (const auto& [value, count] : table) {
        (void)count;
        WriteVarint(&dict, value);
      }
      std::vector<uint64_t> indexes(values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        indexes[i] = index.at(values[i]);
      }
      WriteU64StreamImpl(&dict, indexes, /*allow_dictionary=*/false);
      if (dict.buffer().size() < best) pick = IntEncoding::kDictionary;
    }
  }

  auto write_rle = [&](auto get) {
    for (size_t i = 0; i < n;) {
      uint64_t v = get(i);
      size_t j = i + 1;
      while (j < n && get(j) == v) ++j;
      WriteVarint(out, v);
      WriteVarint(out, j - i);
      i = j;
    }
  };
  out->WriteU8(static_cast<uint8_t>(pick));
  switch (pick) {
    case IntEncoding::kVarint:
      for (uint64_t v : values) WriteVarint(out, v);
      break;
    case IntEncoding::kDeltaVarint:
      WriteVarint(out, values[0]);
      for (size_t i = 1; i < n; ++i) WriteVarint(out, d1(i));
      break;
    case IntEncoding::kRle:
      write_rle(raw);
      break;
    case IntEncoding::kDeltaRle:
      write_rle(d1);
      break;
    case IntEncoding::kDelta2Varint:
      for (size_t i = 0; i < n; ++i) WriteVarint(out, d2(i));
      break;
    case IntEncoding::kDelta2Rle:
      write_rle(d2);
      break;
    case IntEncoding::kDictionary:
      out->WriteBytes(dict.buffer());
      break;
  }
}

}  // namespace

void WriteU64Stream(BinaryWriter* out, const std::vector<uint64_t>& values) {
  WriteU64StreamImpl(out, values, /*allow_dictionary=*/true);
}

namespace {

Status ReadU64StreamImpl(BinaryReader* in, std::vector<uint64_t>* values,
                         bool allow_dictionary) {
  values->clear();
  uint64_t count = 0;
  HOLO_RETURN_NOT_OK(ReadVarint(in, &count));
  if (count == 0) return Status::OK();
  if (count > kMaxStreamElements) {
    return Status::ParseError("packed stream count out of range");
  }
  // Fills `values` with RLE-decoded (still transformed) elements.
  auto read_rle = [&]() -> Status {
    values->reserve(std::min<uint64_t>(count, 1u << 16));
    while (values->size() < count) {
      uint64_t value = 0;
      uint64_t run = 0;
      HOLO_RETURN_NOT_OK(ReadVarint(in, &value));
      HOLO_RETURN_NOT_OK(ReadVarint(in, &run));
      if (run == 0 || run > count - values->size()) {
        return Status::ParseError("packed stream run length out of range");
      }
      values->insert(values->end(), run, value);
    }
    return Status::OK();
  };
  // Inverts the zigzag delta-vs-k-back transform in place (wraparound
  // arithmetic: corrupt deltas decode deterministically, never into UB).
  auto undo_delta = [&](size_t k) {
    for (size_t i = 0; i < values->size(); ++i) {
      uint64_t prev = i >= k ? (*values)[i - k] : 0;
      (*values)[i] =
          prev + static_cast<uint64_t>(ZigzagDecode((*values)[i]));
    }
  };
  uint8_t tag = 0;
  HOLO_RETURN_NOT_OK(in->ReadU8(&tag));
  switch (static_cast<IntEncoding>(tag)) {
    case IntEncoding::kVarint: {
      if (count > in->remaining()) {
        return Status::ParseError("packed stream truncated");
      }
      values->resize(count);
      for (uint64_t& v : *values) HOLO_RETURN_NOT_OK(ReadVarint(in, &v));
      return Status::OK();
    }
    case IntEncoding::kDeltaVarint: {
      if (count > in->remaining()) {
        return Status::ParseError("packed stream truncated");
      }
      values->resize(count);
      HOLO_RETURN_NOT_OK(ReadVarint(in, &(*values)[0]));
      for (size_t i = 1; i < count; ++i) {
        uint64_t d = 0;
        HOLO_RETURN_NOT_OK(ReadVarint(in, &d));
        (*values)[i] =
            (*values)[i - 1] + static_cast<uint64_t>(ZigzagDecode(d));
      }
      return Status::OK();
    }
    case IntEncoding::kRle:
      return read_rle();
    case IntEncoding::kDeltaRle: {
      HOLO_RETURN_NOT_OK(read_rle());
      undo_delta(1);
      return Status::OK();
    }
    case IntEncoding::kDelta2Varint: {
      if (count > in->remaining()) {
        return Status::ParseError("packed stream truncated");
      }
      values->resize(count);
      for (uint64_t& v : *values) HOLO_RETURN_NOT_OK(ReadVarint(in, &v));
      undo_delta(2);
      return Status::OK();
    }
    case IntEncoding::kDelta2Rle: {
      HOLO_RETURN_NOT_OK(read_rle());
      undo_delta(2);
      return Status::OK();
    }
    case IntEncoding::kDictionary: {
      if (!allow_dictionary) {
        return Status::ParseError("unknown packed stream encoding");
      }
      uint64_t table_size = 0;
      HOLO_RETURN_NOT_OK(ReadVarint(in, &table_size));
      if (table_size == 0 || table_size > in->remaining()) {
        return Status::ParseError("packed stream truncated");
      }
      std::vector<uint64_t> table(table_size);
      for (uint64_t& v : table) HOLO_RETURN_NOT_OK(ReadVarint(in, &v));
      std::vector<uint64_t> indexes;
      HOLO_RETURN_NOT_OK(
          ReadU64StreamImpl(in, &indexes, /*allow_dictionary=*/false));
      if (indexes.size() != count) {
        return Status::ParseError("packed stream index count mismatch");
      }
      values->resize(count);
      for (size_t i = 0; i < count; ++i) {
        if (indexes[i] >= table_size) {
          return Status::ParseError("packed stream index out of range");
        }
        (*values)[i] = table[indexes[i]];
      }
      return Status::OK();
    }
  }
  return Status::ParseError("unknown packed stream encoding");
}

}  // namespace

Status ReadU64Stream(BinaryReader* in, std::vector<uint64_t>* values) {
  return ReadU64StreamImpl(in, values, /*allow_dictionary=*/true);
}

namespace {

/// Shared dictionary-vs-plain chooser for the float streams: `Bits`/
/// `WriteWord`/`ReadWord` abstract over the 32/64-bit width.
template <typename Word, typename Value>
void WriteFloatStream(BinaryWriter* out, const std::vector<Value>& values) {
  WriteVarint(out, values.size());
  if (values.empty()) return;

  std::vector<Word> bits(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    std::memcpy(&bits[i], &values[i], sizeof(Word));
  }

  // Distinct patterns ordered most-frequent-first (ties by pattern) so the
  // hottest values get one-byte indexes; the order is deterministic, which
  // keeps snapshot bytes reproducible.
  std::unordered_map<Word, uint64_t> counts;
  for (Word b : bits) ++counts[b];
  std::vector<std::pair<Word, uint64_t>> table(counts.begin(), counts.end());
  std::sort(table.begin(), table.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::unordered_map<Word, uint64_t> index;
  index.reserve(table.size());
  for (size_t i = 0; i < table.size(); ++i) index.emplace(table[i].first, i);

  BinaryWriter dict;
  WriteVarint(&dict, table.size());
  for (const auto& [word, count] : table) {
    (void)count;
    if constexpr (sizeof(Word) == 8) {
      dict.WriteU64(word);
    } else {
      dict.WriteU32(word);
    }
  }
  std::vector<uint64_t> indexes(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) indexes[i] = index.at(bits[i]);
  WriteU64Stream(&dict, indexes);

  size_t plain_size = values.size() * sizeof(Word);
  if (dict.buffer().size() < plain_size) {
    out->WriteU8(static_cast<uint8_t>(FloatEncoding::kDictionary));
    out->WriteBytes(dict.buffer());
  } else {
    out->WriteU8(static_cast<uint8_t>(FloatEncoding::kPlain));
    for (Word b : bits) {
      if constexpr (sizeof(Word) == 8) {
        out->WriteU64(b);
      } else {
        out->WriteU32(b);
      }
    }
  }
}

template <typename Word, typename Value>
Status ReadFloatStream(BinaryReader* in, std::vector<Value>* values) {
  values->clear();
  uint64_t count = 0;
  HOLO_RETURN_NOT_OK(ReadVarint(in, &count));
  if (count == 0) return Status::OK();
  if (count > kMaxStreamElements) {
    return Status::ParseError("packed stream count out of range");
  }
  uint8_t tag = 0;
  HOLO_RETURN_NOT_OK(in->ReadU8(&tag));
  auto read_word = [in](Word* word) -> Status {
    if constexpr (sizeof(Word) == 8) {
      uint64_t v = 0;
      HOLO_RETURN_NOT_OK(in->ReadU64(&v));
      *word = v;
    } else {
      uint32_t v = 0;
      HOLO_RETURN_NOT_OK(in->ReadU32(&v));
      *word = v;
    }
    return Status::OK();
  };
  switch (static_cast<FloatEncoding>(tag)) {
    case FloatEncoding::kPlain: {
      if (count > in->remaining() / sizeof(Word)) {
        return Status::ParseError("packed stream truncated");
      }
      values->resize(count);
      for (Value& v : *values) {
        Word b = 0;
        HOLO_RETURN_NOT_OK(read_word(&b));
        std::memcpy(&v, &b, sizeof(Word));
      }
      return Status::OK();
    }
    case FloatEncoding::kDictionary: {
      uint64_t table_size = 0;
      HOLO_RETURN_NOT_OK(ReadVarint(in, &table_size));
      if (table_size == 0 || table_size > in->remaining() / sizeof(Word)) {
        return Status::ParseError("packed stream truncated");
      }
      std::vector<Word> table(table_size);
      for (Word& b : table) HOLO_RETURN_NOT_OK(read_word(&b));
      std::vector<uint64_t> indexes;
      HOLO_RETURN_NOT_OK(ReadU64Stream(in, &indexes));
      if (indexes.size() != count) {
        return Status::ParseError("packed stream index count mismatch");
      }
      values->resize(count);
      for (size_t i = 0; i < count; ++i) {
        if (indexes[i] >= table_size) {
          return Status::ParseError("packed stream index out of range");
        }
        std::memcpy(&(*values)[i], &table[indexes[i]], sizeof(Word));
      }
      return Status::OK();
    }
  }
  return Status::ParseError("unknown packed stream encoding");
}

}  // namespace

void WriteF64Stream(BinaryWriter* out, const std::vector<double>& values) {
  WriteFloatStream<uint64_t>(out, values);
}

Status ReadF64Stream(BinaryReader* in, std::vector<double>* values) {
  return ReadFloatStream<uint64_t>(in, values);
}

void WriteF32Stream(BinaryWriter* out, const std::vector<float>& values) {
  WriteFloatStream<uint32_t>(out, values);
}

Status ReadF32Stream(BinaryReader* in, std::vector<float>* values) {
  return ReadFloatStream<uint32_t>(in, values);
}

}  // namespace holoclean
