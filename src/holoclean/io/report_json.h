#ifndef HOLOCLEAN_IO_REPORT_JSON_H_
#define HOLOCLEAN_IO_REPORT_JSON_H_

#include <string>

#include "holoclean/core/report.h"
#include "holoclean/util/json.h"

namespace holoclean {

/// Version of the report JSON schema. Bump only with an additive change;
/// consumers (CLI --report-json, batch per-job status, serve responses)
/// must keep reading older fields forever. The schema is pinned by the
/// golden file tests/data/report_golden.json.
inline constexpr int kReportJsonVersion = 1;

/// The stable JSON rendering of one run's statistics:
///   {"detect_seconds":..., "compile_seconds":..., "learn_seconds":...,
///    "infer_seconds":..., "total_seconds":...,
///    "stage_timings":[{"name":"detect","seconds":...,
///                      "peak_rss_bytes":...,"cached":false}, ...],
///    "num_violations":..., "num_noisy_cells":..., "num_query_vars":...,
///    "num_evidence_vars":..., "num_candidates":..., "num_dc_factors":...,
///    "num_grounded_factors":..., "detect_truncated":...,
///    "num_truncated_dcs":...}
JsonValue RunStatsToJson(const RunStats& stats);

/// The stable JSON rendering of a whole report. Repairs and posteriors
/// reference values as strings resolved through `table`'s dictionary (ids
/// are process-local and meaningless on the wire):
///   {"version":1,
///    "repairs":[{"tid":...,"attr":"City","old":"Cicago","new":"Chicago",
///                "probability":...}, ...],
///    "num_posteriors":...,
///    "stats":{...}}                    // RunStatsToJson
/// Used identically by the CLI (--report-json), batch per-job status, and
/// the serving tier's clean responses — one schema everywhere.
JsonValue ReportToJson(const Report& report, const Table& table);

/// ReportToJson serialized to its canonical compact byte form.
std::string ReportJsonString(const Report& report, const Table& table);

}  // namespace holoclean

#endif  // HOLOCLEAN_IO_REPORT_JSON_H_
