#ifndef HOLOCLEAN_IO_CODEC_H_
#define HOLOCLEAN_IO_CODEC_H_

#include <cstdint>
#include <vector>

#include "holoclean/io/binary_io.h"
#include "holoclean/util/status.h"

namespace holoclean {

/// How a snapshot section's bytes are encoded. Selected per section by the
/// v2 writer and recorded in the section directory, so readers decode each
/// section independently of the others.
enum class SectionCodec : uint32_t {
  /// Fixed-width little-endian encoding (the v1 wire format).
  kRaw = 0,
  /// Stream-transposed varint/delta/RLE/dictionary encoding (see below).
  kPacked = 1,
};

/// Largest SectionCodec value a v2 directory entry may carry.
inline constexpr uint32_t kMaxSectionCodec =
    static_cast<uint32_t>(SectionCodec::kPacked);

/// Upper bound on the element count of one packed stream. RLE expands far
/// beyond the encoded bytes by design (a constant run of a million factor
/// weights is a handful of bytes), so the usual bytes-remaining bound does
/// not apply on read; this absolute cap keeps a corrupt count from
/// triggering a multi-GiB allocation while sitting well above the
/// paper-scale workloads (full Food grounds ~155M feature instances).
/// Writers must not emit longer streams — the snapshot writer falls back
/// to the raw codec (which has no cap) when a section would exceed it, so
/// every snapshot that saves also restores.
inline constexpr uint64_t kMaxStreamElements = uint64_t{1} << 28;

// --- Varint primitives -----------------------------------------------------
// LEB128: 7 value bits per byte, high bit = continuation. At most 10 bytes
// for a u64. Zigzag maps signed deltas onto small unsigned values.

void WriteVarint(BinaryWriter* out, uint64_t v);
Status ReadVarint(BinaryReader* in, uint64_t* out);

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// --- Adaptive integer streams ----------------------------------------------
// One logical vector of non-negative integers, encoded with whichever of
// three schemes is smallest for this data (the chooser IS the compression:
// sorted data picks delta, repetitive data picks RLE, small data picks
// plain varints). Ties resolve to the lowest tag so the bytes are
// deterministic. Layout: varint count, then (if count > 0) a one-byte
// scheme tag and the payload.

enum class IntEncoding : uint8_t {
  /// One varint per element.
  kVarint = 0,
  /// First element as a varint, then zigzag varints of the deltas.
  kDeltaVarint = 1,
  /// (varint value, varint run length) pairs; run lengths must sum to the
  /// element count exactly.
  kRle = 2,
  /// A table of the distinct values ordered by frequency (most frequent
  /// first, ties by value) followed by a nested stream of table indexes.
  /// Wins when a stream draws large values from a small set — e.g. the
  /// fused (kind,p1,p2) feature-key field or context value ids — because
  /// the hot values collapse to one-byte indexes. The nested index stream
  /// never itself picks kDictionary, which bounds the recursion.
  kDictionary = 3,
  /// RLE over the zigzag delta-vs-previous transform (element 0 deltas
  /// against 0). Wins for constant-step sequences: long arithmetic runs
  /// collapse to one (delta, length) pair.
  kDeltaRle = 4,
  /// Zigzag delta against the element two back (the first two against 0),
  /// one varint each. Wins for period-2 alternations, where the direct
  /// delta oscillates but the 2-back delta is near zero — exactly the
  /// co-occurrence/cond-prob feature interleaving of the factor graph.
  kDelta2Varint = 5,
  /// RLE over the 2-back transform: period-2 alternations whose 2-back
  /// delta is constant (usually zero) collapse to a handful of runs.
  kDelta2Rle = 6,
};

void WriteU64Stream(BinaryWriter* out, const std::vector<uint64_t>& values);
Status ReadU64Stream(BinaryReader* in, std::vector<uint64_t>* values);

// --- Adaptive floating-point streams ---------------------------------------
// IEEE-754 bit patterns, either plain fixed-width or dictionary-encoded:
// a table of the distinct bit patterns ordered by frequency (most frequent
// first, ties by bit pattern) followed by a u64 stream of table indexes.
// Snapshot float data is extremely repetitive — Gibbs marginals are ratios
// of small sample counts and most feature activations are exactly 1.0f —
// so the dictionary usually wins by 4-8x; high-entropy data falls back to
// the plain form. Bit-pattern fidelity makes the round trip exact (NaNs
// and signed zeros included).

enum class FloatEncoding : uint8_t {
  kPlain = 0,
  kDictionary = 1,
};

void WriteF64Stream(BinaryWriter* out, const std::vector<double>& values);
Status ReadF64Stream(BinaryReader* in, std::vector<double>* values);

void WriteF32Stream(BinaryWriter* out, const std::vector<float>& values);
Status ReadF32Stream(BinaryReader* in, std::vector<float>* values);

}  // namespace holoclean

#endif  // HOLOCLEAN_IO_CODEC_H_
