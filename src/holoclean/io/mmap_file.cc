#include "holoclean/io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace holoclean {

Result<std::shared_ptr<MmapReader>> MmapReader::Map(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open snapshot: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("cannot stat snapshot: " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::Internal("cannot mmap snapshot: " + path);
    }
  }
  // The mapping survives the descriptor; closing early keeps the fd table
  // clean for long-lived sessions holding many snapshots.
  ::close(fd);
  return std::shared_ptr<MmapReader>(new MmapReader(addr, size));
}

MmapReader::~MmapReader() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

}  // namespace holoclean
