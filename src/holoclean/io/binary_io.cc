#include "holoclean/io/binary_io.h"

#include <cstring>

namespace holoclean {

void BinaryWriter::WriteF32(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU32(bits);
}

void BinaryWriter::WriteF64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  buffer_.append(s);
}

Status BinaryReader::ReadLe(int bytes, uint64_t* out) {
  if (remaining() < static_cast<size_t>(bytes)) {
    return Status::ParseError("snapshot truncated");
  }
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += static_cast<size_t>(bytes);
  *out = v;
  return Status::OK();
}

Status BinaryReader::ReadU8(uint8_t* out) {
  uint64_t v = 0;
  HOLO_RETURN_NOT_OK(ReadLe(1, &v));
  *out = static_cast<uint8_t>(v);
  return Status::OK();
}

Status BinaryReader::ReadU32(uint32_t* out) {
  uint64_t v = 0;
  HOLO_RETURN_NOT_OK(ReadLe(4, &v));
  *out = static_cast<uint32_t>(v);
  return Status::OK();
}

Status BinaryReader::ReadU64(uint64_t* out) { return ReadLe(8, out); }

Status BinaryReader::ReadI32(int32_t* out) {
  uint32_t v = 0;
  HOLO_RETURN_NOT_OK(ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status BinaryReader::ReadF32(float* out) {
  uint32_t bits = 0;
  HOLO_RETURN_NOT_OK(ReadU32(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status BinaryReader::ReadF64(double* out) {
  uint64_t bits = 0;
  HOLO_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* out) {
  size_t size = 0;
  HOLO_RETURN_NOT_OK(ReadCount(1, &size));
  out->assign(data_.substr(pos_, size));
  pos_ += size;
  return Status::OK();
}

Status BinaryReader::ReadCount(size_t min_bytes_per_elem, size_t* out) {
  uint64_t count = 0;
  HOLO_RETURN_NOT_OK(ReadU64(&count));
  if (min_bytes_per_elem > 0 &&
      count > remaining() / min_bytes_per_elem) {
    return Status::ParseError("snapshot truncated");
  }
  *out = static_cast<size_t>(count);
  return Status::OK();
}

}  // namespace holoclean
