#ifndef HOLOCLEAN_IO_BINARY_IO_H_
#define HOLOCLEAN_IO_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "holoclean/util/status.h"

namespace holoclean {

/// Append-only encoder for the SessionSnapshot format: fixed-width
/// little-endian integers, IEEE-754 bit patterns for floating point, and
/// u64-length-prefixed byte strings. The encoding is independent of host
/// endianness, so snapshots are portable across machines.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteLe(v, 4); }
  void WriteU64(uint64_t v) { WriteLe(v, 8); }
  void WriteI32(int32_t v) { WriteLe(static_cast<uint32_t>(v), 4); }
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(std::string_view s);

  /// Raw bytes, without any length prefix (magic numbers, nested payloads).
  void WriteBytes(std::string_view s) { buffer_.append(s); }

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  void WriteLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buffer_;
};

/// Bounds-checked decoder over a byte buffer. Every read past the end fails
/// with a clean ParseError — a truncated or corrupt snapshot can never crash
/// the loader, only return a Status.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI32(int32_t* out);
  Status ReadF32(float* out);
  Status ReadF64(double* out);
  Status ReadString(std::string* out);

  /// Reads a u64 element count and rejects counts that could not possibly
  /// fit in the remaining bytes (`min_bytes_per_elem` each). This bounds
  /// every container allocation by the snapshot size, so a corrupt count
  /// fails cleanly instead of triggering a huge allocation.
  Status ReadCount(size_t min_bytes_per_elem, size_t* out);

  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status ReadLe(int bytes, uint64_t* out);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_IO_BINARY_IO_H_
