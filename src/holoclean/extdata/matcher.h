#ifndef HOLOCLEAN_EXTDATA_MATCHER_H_
#define HOLOCLEAN_EXTDATA_MATCHER_H_

#include <string>
#include <vector>

#include "holoclean/extdata/ext_dict.h"
#include "holoclean/extdata/matching_dependency.h"
#include "holoclean/util/status.h"

namespace holoclean {

/// One entry of the Matched relation (paper Section 4.2): dictionary `dict_id`
/// suggests `value` for cell (tid, attr).
struct MatchedEntry {
  CellRef cell;
  std::string value;
  int dict_id = 0;
};

/// Evaluates matching dependencies between a data table and external
/// dictionaries, materializing the Matched(t, a, v, k) relation.
///
/// Exact clauses are evaluated via a hash index over the dictionary keyed on
/// the normalized clause values; approximate clauses are verified within the
/// indexed candidate set (or by scan when a dependency has no exact clause).
class Matcher {
 public:
  Matcher(const Table* data, const ExtDictCollection* dicts);

  /// All matches for one dependency. Fails when an attribute is unknown.
  Result<std::vector<MatchedEntry>> Match(const MatchingDependency& md) const;

  /// Union of matches over all dependencies.
  Result<std::vector<MatchedEntry>> MatchAll(
      const std::vector<MatchingDependency>& mds) const;

 private:
  const Table* data_;
  const ExtDictCollection* dicts_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_EXTDATA_MATCHER_H_
