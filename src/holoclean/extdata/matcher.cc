#include "holoclean/extdata/matcher.h"

#include <unordered_map>

#include "holoclean/util/hash.h"
#include "holoclean/util/string_util.h"

namespace holoclean {

namespace {

struct ResolvedClause {
  AttrId data_attr;
  AttrId ext_attr;
  bool approximate;
  double sim_threshold;
};

uint64_t KeyOfStrings(const std::vector<std::string>& parts) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const std::string& s : parts) h = HashCombine(h, HashBytes(s));
  return h;
}

}  // namespace

Matcher::Matcher(const Table* data, const ExtDictCollection* dicts)
    : data_(data), dicts_(dicts) {}

Result<std::vector<MatchedEntry>> Matcher::Match(
    const MatchingDependency& md) const {
  if (md.dict_id < 0 || static_cast<size_t>(md.dict_id) >= dicts_->size()) {
    return Status::InvalidArgument("unknown dictionary id");
  }
  const Table& ext = dicts_->Get(md.dict_id).records();

  std::vector<ResolvedClause> clauses;
  for (const MatchClause& c : md.conditions) {
    ResolvedClause rc;
    rc.data_attr = data_->schema().IndexOf(c.data_attr);
    rc.ext_attr = ext.schema().IndexOf(c.ext_attr);
    if (rc.data_attr < 0) {
      return Status::NotFound("unknown data attribute: " + c.data_attr);
    }
    if (rc.ext_attr < 0) {
      return Status::NotFound("unknown dictionary attribute: " + c.ext_attr);
    }
    rc.approximate = c.approximate;
    rc.sim_threshold = c.sim_threshold;
    clauses.push_back(rc);
  }
  AttrId target_data = data_->schema().IndexOf(md.target_data_attr);
  AttrId target_ext = ext.schema().IndexOf(md.target_ext_attr);
  if (target_data < 0) {
    return Status::NotFound("unknown target attribute: " +
                            md.target_data_attr);
  }
  if (target_ext < 0) {
    return Status::NotFound("unknown dictionary target attribute: " +
                            md.target_ext_attr);
  }

  // Index the dictionary on the normalized values of its exact clauses.
  std::vector<const ResolvedClause*> exact;
  std::vector<const ResolvedClause*> approx;
  for (const ResolvedClause& rc : clauses) {
    (rc.approximate ? approx : exact).push_back(&rc);
  }

  std::unordered_map<uint64_t, std::vector<TupleId>> index;
  if (!exact.empty()) {
    for (size_t e = 0; e < ext.num_rows(); ++e) {
      std::vector<std::string> parts;
      parts.reserve(exact.size());
      bool has_null = false;
      for (const ResolvedClause* rc : exact) {
        const std::string& raw =
            ext.GetString(static_cast<TupleId>(e), rc->ext_attr);
        if (raw.empty()) has_null = true;
        parts.push_back(NormalizeForMatch(raw));
      }
      if (has_null) continue;
      index[KeyOfStrings(parts)].push_back(static_cast<TupleId>(e));
    }
  }

  auto approx_ok = [&](TupleId t, TupleId e) {
    for (const ResolvedClause* rc : approx) {
      const std::string& dv = data_->GetString(t, rc->data_attr);
      const std::string& ev = ext.GetString(e, rc->ext_attr);
      if (dv.empty() || ev.empty()) return false;
      if (Similarity(NormalizeForMatch(dv), NormalizeForMatch(ev)) <
          rc->sim_threshold) {
        return false;
      }
    }
    return true;
  };

  std::vector<MatchedEntry> out;
  for (size_t t = 0; t < data_->num_rows(); ++t) {
    TupleId tid = static_cast<TupleId>(t);
    std::vector<TupleId> candidates;
    if (!exact.empty()) {
      std::vector<std::string> parts;
      parts.reserve(exact.size());
      bool has_null = false;
      for (const ResolvedClause* rc : exact) {
        const std::string& raw = data_->GetString(tid, rc->data_attr);
        if (raw.empty()) has_null = true;
        parts.push_back(NormalizeForMatch(raw));
      }
      if (has_null) continue;
      auto it = index.find(KeyOfStrings(parts));
      if (it == index.end()) continue;
      candidates = it->second;
    } else {
      candidates.resize(ext.num_rows());
      for (size_t e = 0; e < ext.num_rows(); ++e) {
        candidates[e] = static_cast<TupleId>(e);
      }
    }
    for (TupleId e : candidates) {
      if (!approx_ok(tid, e)) continue;
      const std::string& suggestion = ext.GetString(e, target_ext);
      if (suggestion.empty()) continue;
      out.push_back(MatchedEntry{CellRef{tid, target_data}, suggestion,
                                 md.dict_id});
    }
  }
  return out;
}

Result<std::vector<MatchedEntry>> Matcher::MatchAll(
    const std::vector<MatchingDependency>& mds) const {
  std::vector<MatchedEntry> out;
  for (const MatchingDependency& md : mds) {
    HOLO_ASSIGN_OR_RETURN(part, Match(md));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace holoclean
