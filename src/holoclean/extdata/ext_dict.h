#ifndef HOLOCLEAN_EXTDATA_EXT_DICT_H_
#define HOLOCLEAN_EXTDATA_EXT_DICT_H_

#include <memory>
#include <string>
#include <vector>

#include "holoclean/storage/table.h"

namespace holoclean {

/// One external dictionary (the ExtDict relation of paper Section 4.1):
/// a clean reference table such as address listings, identified by an
/// integer id `k` so factor weights w(k) can differ per dictionary.
class ExtDict {
 public:
  ExtDict(int id, std::string name, Table records)
      : id_(id), name_(std::move(name)), records_(std::move(records)) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  const Table& records() const { return records_; }

 private:
  int id_;
  std::string name_;
  Table records_;
};

/// The set of dictionaries available to a cleaning run.
class ExtDictCollection {
 public:
  /// Registers a dictionary and returns its id.
  int Add(std::string name, Table records) {
    int id = static_cast<int>(dicts_.size());
    dicts_.push_back(
        std::make_unique<ExtDict>(id, std::move(name), std::move(records)));
    return id;
  }

  const ExtDict& Get(int id) const { return *dicts_[static_cast<size_t>(id)]; }
  size_t size() const { return dicts_.size(); }
  bool empty() const { return dicts_.empty(); }

 private:
  std::vector<std::unique_ptr<ExtDict>> dicts_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_EXTDATA_EXT_DICT_H_
