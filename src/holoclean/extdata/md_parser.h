#ifndef HOLOCLEAN_EXTDATA_MD_PARSER_H_
#define HOLOCLEAN_EXTDATA_MD_PARSER_H_

#include <string_view>
#include <vector>

#include "holoclean/extdata/matching_dependency.h"
#include "holoclean/util/status.h"

namespace holoclean {

/// Parses the textual matching-dependency format used by the CLI and
/// configuration files:
///
///   m1: dict=0 Zip=Ext_Zip -> City=Ext_City
///   m3: dict=0 City=Ext_City & State=Ext_State & Address~Ext_Address
///       -> Zip=Ext_Zip
///
/// Grammar per line: `[name:] [dict=K] clause (& clause)* -> target`.
/// A clause is `DataAttr=ExtAttr` (exact) or `DataAttr~ExtAttr`
/// (approximate, optional `@threshold` suffix, default 0.85); the target
/// is always `DataAttr=ExtAttr`. `dict=K` defaults to dictionary 0.
/// '#'-prefixed lines are comments.
Result<MatchingDependency> ParseMatchingDependency(std::string_view text);

/// One dependency per non-empty, non-comment line.
Result<std::vector<MatchingDependency>> ParseMatchingDependencies(
    std::string_view text);

}  // namespace holoclean

#endif  // HOLOCLEAN_EXTDATA_MD_PARSER_H_
