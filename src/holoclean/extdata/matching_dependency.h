#ifndef HOLOCLEAN_EXTDATA_MATCHING_DEPENDENCY_H_
#define HOLOCLEAN_EXTDATA_MATCHING_DEPENDENCY_H_

#include <string>
#include <vector>

#include "holoclean/storage/table.h"

namespace holoclean {

/// One condition of a matching dependency: data attribute must match the
/// dictionary attribute, exactly or approximately (the ≈ of paper Fig. 1(C)).
struct MatchClause {
  std::string data_attr;
  std::string ext_attr;
  bool approximate = false;
  /// Similarity threshold for approximate clauses.
  double sim_threshold = 0.85;
};

/// A matching dependency (paper Section 3 / Example 3):
/// if all `conditions` hold between a data tuple and a dictionary tuple,
/// then the data tuple's `target_data_attr` should equal the dictionary
/// tuple's `target_ext_attr`.
///
/// Example — m1 of Figure 1(C): Zip = Ext_Zip -> City = Ext_City.
struct MatchingDependency {
  std::string name;
  int dict_id = 0;
  std::vector<MatchClause> conditions;
  std::string target_data_attr;
  std::string target_ext_attr;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_EXTDATA_MATCHING_DEPENDENCY_H_
