#include "holoclean/extdata/md_parser.h"

#include <string>

#include "holoclean/util/string_util.h"

namespace holoclean {

namespace {

// Parses "A=B", "A~B" or "A~B@0.9" into a clause.
Result<MatchClause> ParseClause(std::string_view text) {
  text = StripWhitespace(text);
  MatchClause clause;
  size_t op_pos = text.find_first_of("=~");
  if (op_pos == std::string_view::npos || op_pos == 0 ||
      op_pos + 1 >= text.size()) {
    return Status::ParseError("malformed clause: " + std::string(text));
  }
  clause.approximate = text[op_pos] == '~';
  clause.data_attr = std::string(StripWhitespace(text.substr(0, op_pos)));
  std::string_view rhs = text.substr(op_pos + 1);
  if (clause.approximate) {
    size_t at = rhs.find('@');
    if (at != std::string_view::npos) {
      double threshold = ParseDoubleOr(rhs.substr(at + 1), -1.0);
      if (threshold <= 0.0 || threshold > 1.0) {
        return Status::ParseError("bad similarity threshold in: " +
                                  std::string(text));
      }
      clause.sim_threshold = threshold;
      rhs = rhs.substr(0, at);
    }
  }
  clause.ext_attr = std::string(StripWhitespace(rhs));
  if (clause.data_attr.empty() || clause.ext_attr.empty()) {
    return Status::ParseError("empty attribute in clause: " +
                              std::string(text));
  }
  return clause;
}

}  // namespace

Result<MatchingDependency> ParseMatchingDependency(std::string_view text) {
  MatchingDependency md;
  std::string_view rest = StripWhitespace(text);

  // Optional "name:" prefix (but not the ':' inside attribute names — the
  // name ends at the first ':' that appears before any clause operator).
  size_t colon = rest.find(':');
  size_t first_op = rest.find_first_of("=~");
  if (colon != std::string_view::npos &&
      (first_op == std::string_view::npos || colon < first_op)) {
    md.name = std::string(StripWhitespace(rest.substr(0, colon)));
    rest = StripWhitespace(rest.substr(colon + 1));
  }

  // Optional "dict=K" token.
  if (rest.rfind("dict=", 0) == 0) {
    size_t space = rest.find(' ');
    if (space == std::string_view::npos) {
      return Status::ParseError("matching dependency has no clauses: " +
                                std::string(text));
    }
    double id = ParseDoubleOr(rest.substr(5, space - 5), -1.0);
    if (id < 0) {
      return Status::ParseError("bad dictionary id in: " + std::string(text));
    }
    md.dict_id = static_cast<int>(id);
    rest = StripWhitespace(rest.substr(space + 1));
  }

  size_t arrow = rest.find("->");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("matching dependency needs '->': " +
                              std::string(text));
  }
  std::string_view conditions = rest.substr(0, arrow);
  std::string_view target = StripWhitespace(rest.substr(arrow + 2));

  for (const std::string& part : Split(conditions, '&')) {
    if (StripWhitespace(part).empty()) continue;
    HOLO_ASSIGN_OR_RETURN(clause, ParseClause(part));
    md.conditions.push_back(std::move(clause));
  }
  if (md.conditions.empty()) {
    return Status::ParseError("matching dependency has no conditions: " +
                              std::string(text));
  }
  HOLO_ASSIGN_OR_RETURN(target_clause, ParseClause(target));
  if (target_clause.approximate) {
    return Status::ParseError("target of a matching dependency must be "
                              "exact: " +
                              std::string(text));
  }
  md.target_data_attr = target_clause.data_attr;
  md.target_ext_attr = target_clause.ext_attr;
  if (md.name.empty()) {
    md.name = md.conditions.front().data_attr + "->" + md.target_data_attr;
  }
  return md;
}

Result<std::vector<MatchingDependency>> ParseMatchingDependencies(
    std::string_view text) {
  std::vector<MatchingDependency> out;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    HOLO_ASSIGN_OR_RETURN(md, ParseMatchingDependency(stripped));
    out.push_back(std::move(md));
  }
  return out;
}

}  // namespace holoclean
