#include "holoclean/extdata/matching_dependency.h"

namespace holoclean {

// MatchingDependency is header-only; this TU anchors the library target.

}  // namespace holoclean
