#include "holoclean/extdata/ext_dict.h"

namespace holoclean {

// ExtDict types are header-only; this TU anchors the library target.

}  // namespace holoclean
