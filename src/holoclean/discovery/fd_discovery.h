#ifndef HOLOCLEAN_DISCOVERY_FD_DISCOVERY_H_
#define HOLOCLEAN_DISCOVERY_FD_DISCOVERY_H_

#include <string>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"
#include "holoclean/storage/table.h"

namespace holoclean {

/// A discovered (approximate) functional dependency lhs -> rhs with its
/// measured violation rate on the profiled table.
struct DiscoveredFd {
  std::vector<AttrId> lhs;
  AttrId rhs = 0;
  /// Fraction of tuples that deviate from their LHS-group's majority RHS
  /// value (g3-style error measure). 0 = exact FD.
  double error = 0.0;
  /// Number of distinct LHS groups with >= 2 tuples (the support).
  size_t support_groups = 0;

  std::string ToString(const Schema& schema) const;
};

/// Options for approximate FD discovery.
struct FdDiscoveryOptions {
  /// Maximum tolerated violation rate: dirty data violates the true FDs, so
  /// discovery over dirty data needs slack roughly matching the error rate.
  double max_error = 0.1;
  /// Candidate LHS size (1 = single attribute, 2 adds attribute pairs).
  int max_lhs_size = 1;
  /// Minimum groups with >= 2 tuples for an FD to be considered supported
  /// (FDs that never see two tuples with the same LHS are vacuous).
  size_t min_support_groups = 2;
  /// Skip candidate LHS attributes that are (near-)keys: if the fraction of
  /// distinct values exceeds this, grouping carries no information.
  double max_lhs_distinct_ratio = 0.9;
  /// Skip RHS attributes with more distinct values than this ratio (keys /
  /// free text cannot be functionally determined in a useful way).
  double max_rhs_distinct_ratio = 0.9;
};

/// TANE-style approximate functional-dependency discovery with the g3
/// error measure: lhs -> rhs holds approximately when removing `error`
/// fraction of tuples makes it exact. Profiling the *dirty* data with a
/// small error budget recovers the constraints that HoloClean then
/// enforces — the workflow the paper's §6.1 datasets come from (it cites
/// Chu et al., "Discovering denial constraints").
///
/// Results are minimal (no discovered FD's LHS is a superset of another
/// discovered FD's LHS with the same RHS) and sorted by ascending error.
std::vector<DiscoveredFd> DiscoverFds(const Table& table,
                                      const FdDiscoveryOptions& options);

/// Converts discovered FDs into denial constraints for the pipeline.
std::vector<DenialConstraint> ToDenialConstraints(
    const Table& table, const std::vector<DiscoveredFd>& fds);

}  // namespace holoclean

#endif  // HOLOCLEAN_DISCOVERY_FD_DISCOVERY_H_
