#include "holoclean/discovery/fd_discovery.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "holoclean/util/hash.h"

namespace holoclean {

namespace {

// Groups tuple ids by the combined value of the LHS attributes; rows with
// a NULL in the LHS are skipped (NULLs determine nothing).
std::unordered_map<uint64_t, std::vector<TupleId>> GroupByLhs(
    const Table& table, const std::vector<AttrId>& lhs) {
  std::unordered_map<uint64_t, std::vector<TupleId>> groups;
  for (size_t t = 0; t < table.num_rows(); ++t) {
    uint64_t key = 0x9E3779B97F4A7C15ULL;
    bool has_null = false;
    for (AttrId a : lhs) {
      ValueId v = table.Get(static_cast<TupleId>(t), a);
      if (v == Dictionary::kNull) {
        has_null = true;
        break;
      }
      key = HashCombine(key, static_cast<uint64_t>(static_cast<uint32_t>(v)));
    }
    if (!has_null) groups[key].push_back(static_cast<TupleId>(t));
  }
  return groups;
}

}  // namespace

std::string DiscoveredFd::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) os << ",";
    os << schema.name(lhs[i]);
  }
  os << " -> " << schema.name(rhs);
  return os.str();
}

std::vector<DiscoveredFd> DiscoverFds(const Table& table,
                                      const FdDiscoveryOptions& options) {
  std::vector<DiscoveredFd> out;
  size_t num_attrs = table.schema().num_attrs();
  size_t n = table.num_rows();
  if (n == 0) return out;

  // Distinct-value ratios decide which attributes are useful as LHS/RHS.
  std::vector<double> distinct_ratio(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    distinct_ratio[a] =
        static_cast<double>(table.ActiveDomain(static_cast<AttrId>(a)).size()) /
        static_cast<double>(n);
  }

  // Candidate LHS sets: singles, then pairs (lattice level 2).
  std::vector<std::vector<AttrId>> candidates;
  for (size_t a = 0; a < num_attrs; ++a) {
    if (distinct_ratio[a] <= options.max_lhs_distinct_ratio) {
      candidates.push_back({static_cast<AttrId>(a)});
    }
  }
  if (options.max_lhs_size >= 2) {
    for (size_t a = 0; a < num_attrs; ++a) {
      for (size_t b = a + 1; b < num_attrs; ++b) {
        if (distinct_ratio[a] <= options.max_lhs_distinct_ratio &&
            distinct_ratio[b] <= options.max_lhs_distinct_ratio) {
          candidates.push_back(
              {static_cast<AttrId>(a), static_cast<AttrId>(b)});
        }
      }
    }
  }

  // Already-discovered (lhs ⊆, rhs) combinations, for minimality pruning.
  std::set<std::pair<AttrId, AttrId>> single_holds;  // (lhs attr, rhs).

  for (const auto& lhs : candidates) {
    // Minimality: a pair LHS is redundant for rhs if either single holds.
    auto groups = GroupByLhs(table, lhs);
    for (size_t r = 0; r < num_attrs; ++r) {
      AttrId rhs = static_cast<AttrId>(r);
      if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) continue;
      if (distinct_ratio[r] > options.max_rhs_distinct_ratio) continue;
      if (lhs.size() == 2 &&
          (single_holds.count({lhs[0], rhs}) > 0 ||
           single_holds.count({lhs[1], rhs}) > 0)) {
        continue;
      }

      size_t violations = 0;
      size_t considered = 0;
      size_t support_groups = 0;
      for (const auto& [key, tids] : groups) {
        if (tids.size() < 2) continue;
        ++support_groups;
        considered += tids.size();
        std::unordered_map<ValueId, size_t> counts;
        size_t majority = 0;
        for (TupleId t : tids) {
          size_t c = ++counts[table.Get(t, rhs)];
          majority = std::max(majority, c);
        }
        violations += tids.size() - majority;
      }
      if (support_groups < options.min_support_groups || considered == 0) {
        continue;
      }
      double error = static_cast<double>(violations) /
                     static_cast<double>(considered);
      if (error > options.max_error) continue;

      DiscoveredFd fd;
      fd.lhs = lhs;
      fd.rhs = rhs;
      fd.error = error;
      fd.support_groups = support_groups;
      out.push_back(std::move(fd));
      if (lhs.size() == 1) single_holds.insert({lhs[0], rhs});
    }
  }

  std::sort(out.begin(), out.end(),
            [](const DiscoveredFd& a, const DiscoveredFd& b) {
              if (a.error != b.error) return a.error < b.error;
              if (a.lhs != b.lhs) return a.lhs < b.lhs;
              return a.rhs < b.rhs;
            });
  return out;
}

std::vector<DenialConstraint> ToDenialConstraints(
    const Table& table, const std::vector<DiscoveredFd>& fds) {
  std::vector<DenialConstraint> out;
  for (const DiscoveredFd& fd : fds) {
    std::vector<std::string> lhs_names;
    for (AttrId a : fd.lhs) lhs_names.push_back(table.schema().name(a));
    auto dcs = FdToDenialConstraints(table.schema(), lhs_names,
                                     {table.schema().name(fd.rhs)});
    if (dcs.ok()) {
      for (auto& dc : dcs.value()) out.push_back(std::move(dc));
    }
  }
  return out;
}

}  // namespace holoclean
