#include "holoclean/data/hospital.h"

#include <array>

#include "holoclean/data/error_injector.h"
#include "holoclean/util/logging.h"

namespace holoclean {

namespace {

struct HospitalEntity {
  std::string provider;
  std::string name;
  std::string address;
  size_t city_index;
  std::string zip;
  std::string phone;
  std::string type;
  std::string owner;
  std::string emergency;
};

}  // namespace

GeneratedData MakeHospital(const HospitalOptions& options) {
  Rng rng(options.seed);
  std::vector<GeoCity> geo = MakeGeography(12, 2, options.seed ^ 0x9E37ULL);

  static const std::array<const char*, 8> kPrefixes = {
      "Mercy",  "St. Vincent", "Riverside", "Providence",
      "Sacred", "Memorial",    "Unity",     "Baptist"};
  static const std::array<const char*, 4> kKinds = {
      "Medical Center", "Hospital", "Regional Hospital", "Health Center"};
  static const std::array<const char*, 2> kTypes = {
      "Acute Care Hospitals", "Critical Access Hospitals"};
  static const std::array<const char*, 4> kOwners = {
      "Government - State", "Proprietary", "Voluntary non-profit - Private",
      "Voluntary non-profit - Church"};
  static const std::array<const char*, 6> kConditions = {
      "Heart Attack",     "Heart Failure", "Pneumonia",
      "Surgical Infection", "Stroke",       "Pregnancy"};
  static const std::array<const char*, 8> kStreets = {
      "Main St", "Oak Ave", "Maple Dr", "Pine Rd",
      "1st Ave", "Lake St", "Hill Rd",  "Park Blvd"};

  size_t num_hospitals = std::max<size_t>(5, options.num_rows / 20);
  std::vector<HospitalEntity> hospitals;
  hospitals.reserve(num_hospitals);
  for (size_t h = 0; h < num_hospitals; ++h) {
    HospitalEntity e;
    e.provider = std::to_string(10000 + h);
    e.name = std::string(kPrefixes[h % kPrefixes.size()]) + " " +
             kKinds[(h / kPrefixes.size()) % kKinds.size()] + " " +
             std::to_string(h);
    e.address = std::to_string(100 + rng.Below(900)) + " " +
                kStreets[rng.Below(kStreets.size())];
    e.city_index = rng.Below(geo.size());
    const GeoCity& city = geo[e.city_index];
    e.zip = city.zips[rng.Below(city.zips.size())];
    e.phone = "205" + std::to_string(1000000 + h * 13 + rng.Below(13));
    e.type = kTypes[rng.Below(kTypes.size())];
    e.owner = kOwners[rng.Below(kOwners.size())];
    e.emergency = rng.Chance(0.7) ? "Yes" : "No";
    hospitals.push_back(std::move(e));
  }

  const size_t num_measures = 24;
  std::vector<std::string> measure_codes;
  std::vector<std::string> measure_names;
  for (size_t m = 0; m < num_measures; ++m) {
    measure_codes.push_back("AMI-" + std::to_string(m + 1));
    measure_names.push_back("patients given treatment protocol " +
                            std::to_string(m + 1));
  }

  Schema schema({"ProviderNumber", "HospitalName", "Address1", "Address2",
                 "Address3", "City", "State", "ZipCode", "CountyName",
                 "PhoneNumber", "HospitalType", "HospitalOwner",
                 "EmergencyService", "Condition", "MeasureCode",
                 "MeasureName", "Score", "Sample", "StateAvg"});
  Table clean(schema, std::make_shared<Dictionary>());
  for (size_t i = 0; i < options.num_rows; ++i) {
    const HospitalEntity& h = hospitals[i % num_hospitals];
    const GeoCity& city = geo[h.city_index];
    size_t m = rng.Below(num_measures);
    std::vector<std::string> row = {
        h.provider,
        h.name,
        h.address,
        "",
        "",
        city.city,
        city.state,
        h.zip,
        city.county,
        h.phone,
        h.type,
        h.owner,
        h.emergency,
        kConditions[m % kConditions.size()],
        measure_codes[m],
        measure_names[m],
        std::to_string(50 + rng.Below(50)) + "%",
        std::to_string(10 + rng.Below(490)) + " patients",
        city.state + "_" + measure_codes[m] + "_avg",
    };
    clean.AppendRow(row);
  }

  // Corrupt a copy with 'x'-typos across the error-eligible attributes
  // (covered by constraints or not — uncovered errors bound recall, §2.2).
  Table dirty = clean.Clone();
  const std::vector<std::string> eligible = {
      "HospitalName", "City",        "State",   "ZipCode",
      "CountyName",   "PhoneNumber", "Condition", "MeasureName",
      "Score",        "Sample",      "StateAvg"};
  for (size_t t = 0; t < dirty.num_rows(); ++t) {
    for (const std::string& attr_name : eligible) {
      AttrId a = schema.IndexOf(attr_name);
      HOLO_CHECK(a >= 0);
      if (!rng.Chance(options.error_rate)) continue;
      TupleId tid = static_cast<TupleId>(t);
      dirty.SetString(tid, a, InjectTypo(dirty.GetString(tid, a), &rng));
    }
  }

  Dataset dataset(std::move(dirty));
  dataset.set_clean(std::move(clean));
  GeneratedData data("hospital", std::move(dataset));

  const Schema& s = data.dataset.dirty().schema();
  auto add_fd = [&](const std::vector<std::string>& lhs,
                    const std::vector<std::string>& rhs) {
    auto dcs = FdToDenialConstraints(s, lhs, rhs);
    HOLO_CHECK(dcs.ok());
    for (auto& dc : dcs.value()) data.dcs.push_back(std::move(dc));
  };
  add_fd({"ProviderNumber"}, {"HospitalName", "City", "PhoneNumber"});
  add_fd({"ZipCode"}, {"City", "State", "CountyName"});
  add_fd({"PhoneNumber"}, {"ZipCode"});
  add_fd({"MeasureCode"}, {"MeasureName", "Condition"});
  HOLO_CHECK(data.dcs.size() == 9);

  // External dictionary: the federal zip listing of §6.1 (Ext_Zip ->
  // Ext_City, Ext_State).
  Table listing(Schema({"Ext_Zip", "Ext_City", "Ext_State"}),
                std::make_shared<Dictionary>());
  for (const GeoCity& city : geo) {
    for (const std::string& zip : city.zips) {
      listing.AppendRow({zip, city.city, city.state});
    }
  }
  int dict_id = data.dicts.Add("zip-listing", std::move(listing));
  data.mds.push_back({"zip->city", dict_id, {{"ZipCode", "Ext_Zip"}},
                      "City", "Ext_City"});
  data.mds.push_back({"zip->state", dict_id, {{"ZipCode", "Ext_Zip"}},
                      "State", "Ext_State"});
  data.mds.push_back({"city,state->zip",
                      dict_id,
                      {{"City", "Ext_City"}, {"State", "Ext_State"}},
                      "ZipCode",
                      "Ext_Zip"});
  return data;
}

}  // namespace holoclean
