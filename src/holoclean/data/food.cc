#include "holoclean/data/food.h"

#include <array>

#include "holoclean/data/error_injector.h"
#include "holoclean/util/logging.h"

namespace holoclean {

GeneratedData MakeFood(const FoodOptions& options) {
  Rng rng(options.seed);
  std::vector<GeoCity> geo = MakeGeography(8, 3, options.seed ^ 0x517CULL);

  static const std::array<const char*, 10> kNameParts = {
      "Johnny", "Taqueria", "Golden", "Lucky",  "Corner",
      "Blue",   "Star",     "Royal",  "Garden", "Sunrise"};
  static const std::array<const char*, 6> kNameKinds = {
      "Grill", "Diner", "Cafe", "Kitchen", "Deli", "Bistro"};
  static const std::array<const char*, 5> kFacilityTypes = {
      "Restaurant", "Grocery Store", "Bakery", "School Cafeteria", "Tavern"};
  static const std::array<const char*, 3> kRisks = {
      "Risk 1 (High)", "Risk 2 (Medium)", "Risk 3 (Low)"};
  static const std::array<const char*, 6> kStreets = {
      "S Morgan ST", "W Cermak Rd", "N Wells ST",
      "E Erie ST",   "W Madison ST", "S Halsted ST"};
  static const std::array<const char*, 3> kInspectionTypes = {
      "Canvass", "Complaint", "License"};
  static const std::array<const char*, 3> kResults = {
      "Pass", "Fail", "Pass w/ Conditions"};

  Schema schema({"InspectionID", "DBAName", "AKAName", "License",
                 "FacilityType", "Risk", "Address", "City", "State", "Zip",
                 "InspectionDate", "InspectionType", "Results",
                 "ViolationCount", "Latitude", "Longitude", "Ward"});
  Table clean(schema, std::make_shared<Dictionary>());

  size_t rows = 0;
  size_t establishment = 0;
  size_t inspection_id = 2000000;
  while (rows < options.num_rows) {
    std::string dba = std::string(kNameParts[rng.Below(kNameParts.size())]) +
                      " " + kNameKinds[rng.Below(kNameKinds.size())] + " " +
                      std::to_string(establishment);
    std::string aka = rng.Chance(0.5) ? dba : dba + "'s";
    std::string license = std::to_string(100000 + establishment);
    std::string facility =
        kFacilityTypes[rng.Below(kFacilityTypes.size())];
    std::string risk = kRisks[rng.Below(kRisks.size())];
    const GeoCity& city = geo[rng.Below(geo.size())];
    const std::string& zip = city.zips[rng.Below(city.zips.size())];
    std::string address = std::to_string(100 + establishment) + " " +
                          kStreets[rng.Below(kStreets.size())];
    std::string latitude = "41." + zip.substr(2) + "1";
    std::string longitude = "-87." + zip.substr(2) + "5";
    std::string ward = std::to_string(1 + (zip.back() - '0') * 5);
    ++establishment;

    // Duplication profile: most establishments inspected 2-3 times (small
    // groups where minimality has to guess), some 5-8 times.
    size_t visits = rng.Chance(0.6) ? 2 + rng.Below(2) : 5 + rng.Below(4);
    for (size_t v = 0; v < visits && rows < options.num_rows; ++v) {
      std::string date = std::to_string(2010 + v % 6) + "-" +
                         std::to_string(1 + rng.Below(12)) + "-" +
                         std::to_string(1 + rng.Below(28));
      clean.AppendRow({std::to_string(inspection_id++), dba, aka, license,
                       facility, risk, address, city.city, city.state, zip,
                       date, kInspectionTypes[rng.Below(3)],
                       kResults[rng.Below(3)],
                       std::to_string(rng.Below(12)), latitude, longitude,
                       ward});
      ++rows;
    }
  }

  // Non-systematic errors: independent random corruptions per cell, with
  // an attribute-appropriate corruption operator.
  Table dirty = clean.Clone();
  struct ErrorSpec {
    const char* attr;
    int op;  // 0 typo, 1 digit, 2 swap-category
  };
  static const std::array<ErrorSpec, 9> kErrors = {{{"DBAName", 0},
                                                    {"AKAName", 0},
                                                    {"City", 0},
                                                    {"State", 0},
                                                    {"Zip", 1},
                                                    {"FacilityType", 2},
                                                    {"Risk", 2},
                                                    {"Address", 0},
                                                    {"Results", 2}}};
  std::vector<std::string> facility_pool(kFacilityTypes.begin(),
                                         kFacilityTypes.end());
  std::vector<std::string> risk_pool(kRisks.begin(), kRisks.end());
  std::vector<std::string> results_pool(kResults.begin(), kResults.end());
  for (size_t t = 0; t < dirty.num_rows(); ++t) {
    TupleId tid = static_cast<TupleId>(t);
    for (const ErrorSpec& spec : kErrors) {
      if (!rng.Chance(options.error_rate)) continue;
      AttrId a = schema.IndexOf(spec.attr);
      HOLO_CHECK(a >= 0);
      const std::string& value = dirty.GetString(tid, a);
      std::string corrupted;
      switch (spec.op) {
        case 0:
          corrupted = rng.Chance(0.5) ? InjectTypo(value, &rng)
                                      : SwapAdjacent(value, &rng);
          break;
        case 1:
          corrupted = PerturbDigit(value, &rng);
          break;
        default: {
          const std::vector<std::string>& pool =
              std::string(spec.attr) == "FacilityType"
                  ? facility_pool
                  : (std::string(spec.attr) == "Risk" ? risk_pool
                                                      : results_pool);
          corrupted = PickDifferent(pool, value, &rng);
          break;
        }
      }
      dirty.SetString(tid, a, corrupted);
    }
  }

  Dataset dataset(std::move(dirty));
  dataset.set_clean(std::move(clean));
  GeneratedData data("food", std::move(dataset));

  const Schema& s = data.dataset.dirty().schema();
  auto add_fd = [&](const std::vector<std::string>& lhs,
                    const std::vector<std::string>& rhs) {
    auto dcs = FdToDenialConstraints(s, lhs, rhs);
    HOLO_CHECK(dcs.ok());
    for (auto& dc : dcs.value()) data.dcs.push_back(std::move(dc));
  };
  add_fd({"License"}, {"DBAName", "Address", "FacilityType", "Risk"});
  add_fd({"Zip"}, {"City", "State"});
  add_fd({"Address"}, {"Zip"});
  HOLO_CHECK(data.dcs.size() == 7);

  Table listing(Schema({"Ext_Zip", "Ext_City", "Ext_State"}),
                std::make_shared<Dictionary>());
  for (const GeoCity& city : geo) {
    for (const std::string& zip : city.zips) {
      listing.AppendRow({zip, city.city, city.state});
    }
  }
  int dict_id = data.dicts.Add("zip-listing", std::move(listing));
  data.mds.push_back({"zip->city", dict_id, {{"Zip", "Ext_Zip"}}, "City",
                      "Ext_City"});
  data.mds.push_back({"zip->state", dict_id, {{"Zip", "Ext_Zip"}}, "State",
                      "Ext_State"});
  return data;
}

}  // namespace holoclean
