#ifndef HOLOCLEAN_DATA_FLIGHTS_H_
#define HOLOCLEAN_DATA_FLIGHTS_H_

#include "holoclean/data/generated_data.h"

namespace holoclean {

/// Generator options for the Flights benchmark (paper Table 2: 2,377
/// tuples, 6 attributes, 4 denial constraints; majority of cells noisy).
struct FlightsOptions {
  size_t num_rows = 2377;
  /// Fraction of flights reported mostly by unreliable sources that share
  /// a decoy value (the "wrong majority" regime where minimality fails).
  double adversarial_fraction = 0.35;
  /// Probability that an unreliable source copies the decoy instead of
  /// inventing its own wrong value.
  double decoy_share = 0.85;
  size_t num_sources = 10;
  size_t num_reliable = 3;
  double reliable_accuracy = 0.97;
  double unreliable_accuracy = 0.25;
  uint64_t seed = 202;
};

/// Synthesizes the Flights profile: each flight reported by several web
/// sources with conflicting departure/arrival times; provenance column
/// "Source"; reliable sources are consistent across flights while
/// unreliable ones copy shared wrong values. Exercises the source-trust
/// signal (§6.2.1) — plain minimality/majority repairs fail on the
/// adversarial flights.
GeneratedData MakeFlights(const FlightsOptions& options = {});

}  // namespace holoclean

#endif  // HOLOCLEAN_DATA_FLIGHTS_H_
