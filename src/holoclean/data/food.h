#ifndef HOLOCLEAN_DATA_FOOD_H_
#define HOLOCLEAN_DATA_FOOD_H_

#include "holoclean/data/generated_data.h"

namespace holoclean {

/// Generator options for the Food-inspections benchmark (paper Table 2:
/// 339,908 tuples, 17 attributes, 7 denial constraints; non-systematic
/// errors, many duplicates across years). The default scale is reduced so
/// benches finish in minutes; pass the paper's row count to reproduce the
/// full-size experiment.
struct FoodOptions {
  size_t num_rows = 4000;
  /// Per-cell corruption probability over error-eligible attributes.
  double error_rate = 0.06;
  uint64_t seed = 303;
};

/// Synthesizes the Chicago food-inspections profile: establishments
/// inspected repeatedly across years (duplication), with random,
/// non-systematic transcription errors — misspelled names/cities,
/// perturbed zips, swapped facility types and risk levels. Ships the
/// zip/city/state dictionary used by KATARA.
GeneratedData MakeFood(const FoodOptions& options = {});

}  // namespace holoclean

#endif  // HOLOCLEAN_DATA_FOOD_H_
