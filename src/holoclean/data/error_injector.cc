#include "holoclean/data/error_injector.h"

#include <array>
#include <cctype>

namespace holoclean {

std::string InjectTypo(const std::string& value, Rng* rng) {
  if (value.empty()) return "x";
  std::string out = value;
  // Find a position whose character is not already 'x'.
  for (int attempt = 0; attempt < 8; ++attempt) {
    size_t pos = rng->Below(out.size());
    if (out[pos] != 'x') {
      out[pos] = 'x';
      return out;
    }
  }
  out[0] = 'y';
  return out;
}

std::string PerturbDigit(const std::string& value, Rng* rng) {
  std::string out = value;
  std::vector<size_t> digit_positions;
  for (size_t i = 0; i < out.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(out[i]))) {
      digit_positions.push_back(i);
    }
  }
  if (digit_positions.empty()) return InjectTypo(value, rng);
  size_t pos = digit_positions[rng->Below(digit_positions.size())];
  char old = out[pos];
  char replacement = static_cast<char>('0' + rng->Below(10));
  if (replacement == old) {
    replacement = static_cast<char>('0' + (old - '0' + 1) % 10);
  }
  out[pos] = replacement;
  return out;
}

std::string SwapAdjacent(const std::string& value, Rng* rng) {
  if (value.size() < 2) return InjectTypo(value, rng);
  for (int attempt = 0; attempt < 8; ++attempt) {
    size_t pos = rng->Below(value.size() - 1);
    if (value[pos] != value[pos + 1]) {
      std::string out = value;
      std::swap(out[pos], out[pos + 1]);
      return out;
    }
  }
  return InjectTypo(value, rng);
}

std::string PickDifferent(const std::vector<std::string>& pool,
                          const std::string& value, Rng* rng) {
  if (pool.empty()) return value;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::string& candidate = pool[rng->Below(pool.size())];
    if (candidate != value) return candidate;
  }
  return value;
}

std::vector<GeoCity> MakeGeography(size_t n, size_t zips_per_city,
                                   uint64_t seed) {
  static const std::array<const char*, 24> kCityNames = {
      "Springfield", "Riverton",  "Fairview",  "Greenville", "Bristol",
      "Clinton",     "Salem",     "Madison",   "Georgetown", "Arlington",
      "Ashland",     "Dover",     "Oxford",    "Jackson",    "Milton",
      "Newport",     "Kingston",  "Burlington", "Lexington", "Winchester",
      "Hudson",      "Clayton",   "Dayton",    "Franklin"};
  static const std::array<const char*, 8> kStates = {
      "IL", "WI", "IN", "IA", "MO", "MI", "OH", "MN"};
  static const std::array<const char*, 12> kCounties = {
      "Cook",   "Lake",   "Adams", "Brown",  "Clark",  "Grant",
      "Greene", "Jasper", "Logan", "Marion", "Monroe", "Perry"};

  Rng rng(seed);
  std::vector<GeoCity> cities;
  cities.reserve(n);
  int zip_counter = 60001;
  for (size_t i = 0; i < n; ++i) {
    GeoCity city;
    city.city = kCityNames[i % kCityNames.size()];
    if (i >= kCityNames.size()) {
      city.city += " " + std::to_string(i / kCityNames.size() + 1);
    }
    city.state = kStates[rng.Below(kStates.size())];
    city.county = kCounties[rng.Below(kCounties.size())] + std::string(" County");
    for (size_t z = 0; z < zips_per_city; ++z) {
      city.zips.push_back(std::to_string(zip_counter++));
    }
    cities.push_back(std::move(city));
  }
  return cities;
}

std::string MinutesToTime(int minutes) {
  minutes = ((minutes % 1440) + 1440) % 1440;
  int h = minutes / 60;
  int m = minutes % 60;
  std::string out;
  if (h < 10) out.push_back('0');
  out += std::to_string(h);
  out.push_back(':');
  if (m < 10) out.push_back('0');
  out += std::to_string(m);
  return out;
}

}  // namespace holoclean
