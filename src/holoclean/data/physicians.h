#ifndef HOLOCLEAN_DATA_PHYSICIANS_H_
#define HOLOCLEAN_DATA_PHYSICIANS_H_

#include "holoclean/data/generated_data.h"

namespace holoclean {

/// Generator options for the Physicians benchmark (paper Table 2: 2,071,849
/// tuples, 18 attributes, 9 denial constraints; systematic errors). The
/// default scale is reduced so benches finish in minutes.
struct PhysiciansOptions {
  size_t num_rows = 8000;
  /// Fraction of organizations whose rows carry a systematic misspelling.
  double systematic_org_fraction = 0.3;
  /// Fraction of an affected organization's rows carrying the error.
  double systematic_row_fraction = 0.3;
  /// Additional independent random per-cell error probability.
  double random_error_rate = 0.01;
  uint64_t seed = 404;
};

/// Synthesizes the Medicare Physician-Compare profile: one row per medical
/// professional, organizations shared by many professionals, and
/// *systematic* errors — the same misspelled city or wrong zip repeated
/// across hundreds of entries of an organization (the paper's
/// "Scaramento, CA" example). Ships a deliberately format-mismatched zip
/// dictionary (zero-padded zips) reproducing KATARA's 0.0 on this dataset.
GeneratedData MakePhysicians(const PhysiciansOptions& options = {});

}  // namespace holoclean

#endif  // HOLOCLEAN_DATA_PHYSICIANS_H_
