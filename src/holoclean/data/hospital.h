#ifndef HOLOCLEAN_DATA_HOSPITAL_H_
#define HOLOCLEAN_DATA_HOSPITAL_H_

#include "holoclean/data/generated_data.h"

namespace holoclean {

/// Generator options for the Hospital benchmark (paper Table 2: 1,000
/// tuples, 19 attributes, 9 denial constraints, ~5% errors).
struct HospitalOptions {
  size_t num_rows = 1000;
  /// Per-cell corruption probability over the error-eligible attributes.
  double error_rate = 0.05;
  uint64_t seed = 101;
};

/// Synthesizes the Hospital dataset profile: few distinct hospitals, each
/// appearing on many measure rows (heavy duplication), errors are 'x'-typos
/// sprinkled uniformly — the benchmark where redundancy makes statistical
/// repair easy. Ships the zip/city/state external dictionary used by
/// KATARA and §6.3.2.
GeneratedData MakeHospital(const HospitalOptions& options = {});

}  // namespace holoclean

#endif  // HOLOCLEAN_DATA_HOSPITAL_H_
