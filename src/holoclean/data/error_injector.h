#ifndef HOLOCLEAN_DATA_ERROR_INJECTOR_H_
#define HOLOCLEAN_DATA_ERROR_INJECTOR_H_

#include <string>
#include <vector>

#include "holoclean/util/rng.h"

namespace holoclean {

/// Mutation primitives used by the dataset generators to corrupt clean
/// values. Each produces a value different from the input (when possible)
/// so the injected error is observable.

/// Replaces one character with 'x' — the classic typo of the Hospital
/// benchmark used across the data-cleaning literature.
std::string InjectTypo(const std::string& value, Rng* rng);

/// Replaces one digit with a different digit (zip codes, phone numbers).
std::string PerturbDigit(const std::string& value, Rng* rng);

/// Swaps two adjacent characters — a transcription error.
std::string SwapAdjacent(const std::string& value, Rng* rng);

/// Picks a pool element different from `value` (falls back to `value` when
/// the pool has no alternative).
std::string PickDifferent(const std::vector<std::string>& pool,
                          const std::string& value, Rng* rng);

/// A small synthetic geography shared by the generators: cities with a
/// consistent state, county, and a handful of zip codes each — so that
/// Zip -> City/State/County functional dependencies hold in clean data.
struct GeoCity {
  std::string city;
  std::string state;
  std::string county;
  std::vector<std::string> zips;
};

/// Deterministically builds `n` cities (cycling through a fixed name pool
/// with numeric suffixes once exhausted), each with `zips_per_city` zips.
std::vector<GeoCity> MakeGeography(size_t n, size_t zips_per_city,
                                   uint64_t seed);

/// "HH:MM" string for a minute-of-day, e.g. 615 -> "10:15".
std::string MinutesToTime(int minutes);

}  // namespace holoclean

#endif  // HOLOCLEAN_DATA_ERROR_INJECTOR_H_
