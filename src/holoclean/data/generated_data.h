#ifndef HOLOCLEAN_DATA_GENERATED_DATA_H_
#define HOLOCLEAN_DATA_GENERATED_DATA_H_

#include <string>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"
#include "holoclean/extdata/ext_dict.h"
#include "holoclean/extdata/matching_dependency.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// A complete generated cleaning benchmark: dirty data with exact ground
/// truth, the denial constraints of the corresponding paper dataset, and
/// (when the paper's experiments use one) an external dictionary with its
/// matching dependencies.
///
/// Move-only (owns the dictionary collection).
struct GeneratedData {
  GeneratedData(std::string name_in, Dataset dataset_in)
      : name(std::move(name_in)), dataset(std::move(dataset_in)) {}

  GeneratedData(GeneratedData&&) = default;
  GeneratedData& operator=(GeneratedData&&) = default;
  GeneratedData(const GeneratedData&) = delete;
  GeneratedData& operator=(const GeneratedData&) = delete;

  std::string name;
  Dataset dataset;
  std::vector<DenialConstraint> dcs;
  ExtDictCollection dicts;
  std::vector<MatchingDependency> mds;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_DATA_GENERATED_DATA_H_
