#include "holoclean/data/physicians.h"

#include <array>
#include <unordered_map>

#include "holoclean/data/error_injector.h"
#include "holoclean/util/logging.h"

namespace holoclean {

namespace {

struct Organization {
  std::string org_id;
  std::string name;
  std::string address;
  size_t city_index;
  std::string zip;
  std::string phone;
  std::string ccn;
  // Systematic error plan: a fixed misspelling applied to a fraction of
  // this organization's rows (empty when the org is clean).
  std::string bad_city;
  double bad_city_rate = 0.0;
};

}  // namespace

GeneratedData MakePhysicians(const PhysiciansOptions& options) {
  Rng rng(options.seed);
  std::vector<GeoCity> geo = MakeGeography(16, 2, options.seed ^ 0xA11CULL);

  static const std::array<const char*, 12> kFirst = {
      "John", "Mary",  "Ahmed",  "Wei",   "Elena", "Raj",
      "Sara", "James", "Olivia", "Noah",  "Emma",  "Liam"};
  static const std::array<const char*, 12> kLast = {
      "Smith", "Johnson", "Lee",    "Patel", "Garcia",   "Kim",
      "Brown", "Davis",   "Wilson", "Moore", "Anderson", "Taylor"};
  static const std::array<const char*, 6> kSpecialties = {
      "INTERNAL MEDICINE", "FAMILY PRACTICE", "CARDIOLOGY",
      "DERMATOLOGY",       "PEDIATRICS",      "RADIOLOGY"};
  static const std::array<const char*, 4> kCredentials = {"MD", "DO", "NP",
                                                          "PA"};
  static const std::array<const char*, 5> kSchools = {
      "STATE UNIVERSITY SCHOOL OF MEDICINE", "CITY MEDICAL COLLEGE",
      "NORTHERN HEALTH SCIENCES UNIVERSITY", "CENTRAL MEDICAL SCHOOL",
      "OTHER"};
  static const std::array<const char*, 5> kOrgKinds = {
      "MEDICAL GROUP", "HEALTH PARTNERS", "CLINIC", "ASSOCIATES",
      "PHYSICIANS LLC"};
  static const std::array<const char*, 6> kStreets = {
      "MAIN ST", "OAK AVE", "ELM ST", "2ND AVE", "PARK RD", "CENTER ST"};

  size_t num_orgs = std::max<size_t>(8, options.num_rows / 40);
  std::vector<Organization> orgs;
  orgs.reserve(num_orgs);
  for (size_t o = 0; o < num_orgs; ++o) {
    Organization org;
    org.org_id = std::to_string(3000000 + o);
    org.city_index = rng.Below(geo.size());
    const GeoCity& city = geo[org.city_index];
    org.name = city.city + " " + kOrgKinds[rng.Below(kOrgKinds.size())] +
               " " + std::to_string(o);
    org.address = std::to_string(100 + o) + " " +
                  kStreets[rng.Below(kStreets.size())];
    org.zip = city.zips[rng.Below(city.zips.size())];
    org.phone = "312" + std::to_string(2000000 + o * 11 + rng.Below(11));
    org.ccn = std::to_string(140000 + o);
    if (rng.Chance(options.systematic_org_fraction)) {
      // The systematic misspelling, e.g. "Sacramento" -> "Scaramento":
      // swap two adjacent characters once, reuse the same wrong string for
      // every affected row of the organization. In a fraction of affected
      // organizations the misspelling *dominates* the org's rows — there
      // minimality-based repair sides with the wrong majority, while the
      // global zip/city statistics still identify the correct spelling.
      org.bad_city = SwapAdjacent(city.city, &rng);
      if (rng.Chance(0.3)) {
        // A "dominant" systematic error: most of this organization's rows
        // carry the misspelling, and the org has its own zip code (as real
        // organizations do at street granularity), so no other org's rows
        // witness the correct spelling inside the constraint blocks.
        org.bad_city_rate = 0.65;
        org.zip = std::to_string(70000 + o);
      } else {
        org.bad_city_rate = options.systematic_row_fraction;
      }
    }
    orgs.push_back(std::move(org));
  }

  Schema schema({"NPI", "FirstName", "LastName", "Gender", "Credential",
                 "MedicalSchool", "GradYear", "PrimarySpecialty", "OrgName",
                 "OrgID", "AddressLine1", "City", "State", "Zip", "Phone",
                 "CCN", "HospitalAffiliation", "AcceptsMedicare"});
  Table clean(schema, std::make_shared<Dictionary>());
  Table dirty(schema, clean.dict_ptr());

  for (size_t i = 0; i < options.num_rows; ++i) {
    const Organization& org = orgs[rng.Below(orgs.size())];
    const GeoCity& city = geo[org.city_index];
    std::string npi = std::to_string(1000000000ULL + i);
    std::vector<std::string> row = {
        npi,
        kFirst[rng.Below(kFirst.size())],
        kLast[rng.Below(kLast.size())],
        rng.Chance(0.5) ? "M" : "F",
        kCredentials[rng.Below(kCredentials.size())],
        kSchools[rng.Below(kSchools.size())],
        std::to_string(1970 + rng.Below(45)),
        kSpecialties[rng.Below(kSpecialties.size())],
        org.name,
        org.org_id,
        org.address,
        city.city,
        city.state,
        org.zip,
        org.phone,
        org.ccn,
        "HOSPITAL " + org.ccn,
        rng.Chance(0.9) ? "Y" : "N",
    };
    clean.AppendRowIds([&] {
      std::vector<ValueId> ids;
      ids.reserve(row.size());
      for (const auto& v : row) ids.push_back(clean.dict().Intern(v));
      return ids;
    }());

    // Dirty copy of the row: systematic city misspelling first, then rare
    // independent random noise.
    std::vector<std::string> dirty_row = row;
    if (!org.bad_city.empty() && rng.Chance(org.bad_city_rate)) {
      dirty_row[static_cast<size_t>(schema.IndexOf("City"))] = org.bad_city;
    }
    static const std::array<const char*, 5> kRandomAttrs = {
        "OrgName", "Zip", "Phone", "State", "City"};
    for (const char* attr : kRandomAttrs) {
      if (!rng.Chance(options.random_error_rate)) continue;
      size_t a = static_cast<size_t>(schema.IndexOf(attr));
      dirty_row[a] = std::string(attr) == "Zip" ||
                             std::string(attr) == "Phone"
                         ? PerturbDigit(dirty_row[a], &rng)
                         : InjectTypo(dirty_row[a], &rng);
    }
    dirty.AppendRow(dirty_row);
  }

  Dataset dataset(std::move(dirty));
  dataset.set_clean(std::move(clean));
  GeneratedData data("physicians", std::move(dataset));

  const Schema& s = data.dataset.dirty().schema();
  auto add_fd = [&](const std::vector<std::string>& lhs,
                    const std::vector<std::string>& rhs) {
    auto dcs = FdToDenialConstraints(s, lhs, rhs);
    HOLO_CHECK(dcs.ok());
    for (auto& dc : dcs.value()) data.dcs.push_back(std::move(dc));
  };
  add_fd({"OrgID"},
         {"OrgName", "AddressLine1", "City", "State", "Zip", "Phone", "CCN"});
  add_fd({"Zip"}, {"City", "State"});
  HOLO_CHECK(data.dcs.size() == 9);

  // KATARA's dictionary, reproducing the paper's format mismatch: the
  // listing stores zero-padded 6-digit zips, the data 5-digit ones, so no
  // tuple ever matches (Table 3: "KATARA performs no repairs due to format
  // mismatch for zip code").
  Table listing(Schema({"Ext_Zip", "Ext_City", "Ext_State"}),
                std::make_shared<Dictionary>());
  for (const GeoCity& city : geo) {
    for (const std::string& zip : city.zips) {
      listing.AppendRow({"0" + zip, city.city, city.state});
    }
  }
  int dict_id = data.dicts.Add("zip-listing-padded", std::move(listing));
  data.mds.push_back({"zip->city", dict_id, {{"Zip", "Ext_Zip"}}, "City",
                      "Ext_City"});
  data.mds.push_back({"zip->state", dict_id, {{"Zip", "Ext_Zip"}}, "State",
                      "Ext_State"});
  return data;
}

}  // namespace holoclean
