#include "holoclean/data/flights.h"

#include <algorithm>

#include "holoclean/data/error_injector.h"
#include "holoclean/util/logging.h"

namespace holoclean {

GeneratedData MakeFlights(const FlightsOptions& options) {
  Rng rng(options.seed);
  HOLO_CHECK(options.num_reliable < options.num_sources);

  Schema schema({"Flight", "ScheduledDeparture", "ActualDeparture",
                 "ScheduledArrival", "ActualArrival", "Source"});
  Table clean(schema, std::make_shared<Dictionary>());
  Table dirty(schema, clean.dict_ptr());

  std::vector<std::string> sources;
  for (size_t s = 0; s < options.num_sources; ++s) {
    sources.push_back("src_" + std::to_string(s));
  }
  auto accuracy_of = [&](size_t s) {
    return s < options.num_reliable ? options.reliable_accuracy
                                    : options.unreliable_accuracy;
  };

  const size_t kTimeAttrs = 4;
  size_t rows_emitted = 0;
  size_t flight_index = 0;
  while (rows_emitted < options.num_rows) {
    std::string flight =
        "UA-" + std::to_string(1000 + flight_index) + "-2011-12-0" +
        std::to_string(1 + flight_index % 9);
    ++flight_index;

    // True times: departure, actual dep (+delay), arrival, actual arr.
    int sched_dep = static_cast<int>(rng.Below(288)) * 5;
    int act_dep = sched_dep + static_cast<int>(rng.Below(12)) * 5;
    int sched_arr = sched_dep + 90 + static_cast<int>(rng.Below(36)) * 5;
    int act_arr = sched_arr + static_cast<int>(rng.Below(12)) * 5;
    std::vector<std::string> truth = {
        MinutesToTime(sched_dep), MinutesToTime(act_dep),
        MinutesToTime(sched_arr), MinutesToTime(act_arr)};
    // One decoy value per attribute (a wrong upstream feed that unreliable
    // sources copy from).
    std::vector<std::string> decoy(kTimeAttrs);
    for (size_t a = 0; a < kTimeAttrs; ++a) {
      decoy[a] = PerturbDigit(truth[a], &rng);
    }

    // Reporting sources: adversarial flights are covered by few reliable
    // and many unreliable sources; anchor flights the other way around.
    bool adversarial = rng.Chance(options.adversarial_fraction);
    std::vector<size_t> reporters;
    if (adversarial) {
      reporters.push_back(rng.Below(options.num_reliable));
      size_t wanted = 4 + rng.Below(2);
      while (reporters.size() < 1 + wanted) {
        size_t s = options.num_reliable +
                   rng.Below(options.num_sources - options.num_reliable);
        if (std::find(reporters.begin(), reporters.end(), s) ==
            reporters.end()) {
          reporters.push_back(s);
        }
      }
    } else {
      for (size_t s = 0; s < options.num_reliable; ++s) reporters.push_back(s);
      size_t extra = 1 + rng.Below(2);
      while (extra > 0) {
        size_t s = options.num_reliable +
                   rng.Below(options.num_sources - options.num_reliable);
        if (std::find(reporters.begin(), reporters.end(), s) ==
            reporters.end()) {
          reporters.push_back(s);
          --extra;
        }
      }
    }

    for (size_t s : reporters) {
      if (rows_emitted >= options.num_rows) break;
      std::vector<std::string> reported(kTimeAttrs);
      for (size_t a = 0; a < kTimeAttrs; ++a) {
        if (rng.Chance(accuracy_of(s))) {
          reported[a] = truth[a];
        } else if (rng.Chance(options.decoy_share)) {
          reported[a] = decoy[a];
        } else {
          reported[a] = MinutesToTime(static_cast<int>(rng.Below(288)) * 5);
        }
      }
      clean.AppendRow({flight, truth[0], truth[1], truth[2], truth[3],
                       sources[s]});
      dirty.AppendRow({flight, reported[0], reported[1], reported[2],
                       reported[3], sources[s]});
      ++rows_emitted;
    }
  }

  Dataset dataset(std::move(dirty));
  dataset.set_clean(std::move(clean));
  dataset.set_source_attr(schema.IndexOf("Source"));
  GeneratedData data("flights", std::move(dataset));

  const Schema& s = data.dataset.dirty().schema();
  auto fds = FdToDenialConstraints(
      s, {"Flight"},
      {"ScheduledDeparture", "ActualDeparture", "ScheduledArrival",
       "ActualArrival"});
  HOLO_CHECK(fds.ok());
  data.dcs = std::move(fds.value());
  HOLO_CHECK(data.dcs.size() == 4);
  return data;
}

}  // namespace holoclean
