#include "holoclean/detect/conflict_hypergraph.h"

#include <algorithm>

namespace holoclean {

ConflictHypergraph::ConflictHypergraph(std::vector<Violation> violations)
    : violations_(std::move(violations)) {
  for (size_t i = 0; i < violations_.size(); ++i) {
    for (const CellRef& c : violations_[i].cells) {
      by_cell_[c].push_back(static_cast<int>(i));
    }
  }
}

const std::vector<int>& ConflictHypergraph::EdgesOfCell(
    const CellRef& cell) const {
  auto it = by_cell_.find(cell);
  return it == by_cell_.end() ? empty_ : it->second;
}

std::vector<CellRef> ConflictHypergraph::Nodes() const {
  std::vector<CellRef> out;
  out.reserve(by_cell_.size());
  for (const auto& [cell, edges] : by_cell_) out.push_back(cell);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace holoclean
