#include "holoclean/detect/null_detector.h"

namespace holoclean {

NoisyCells NullDetector::Detect(const Dataset& dataset) const {
  NoisyCells noisy;
  const Table& table = dataset.dirty();
  for (size_t t = 0; t < table.num_rows(); ++t) {
    for (AttrId a : dataset.RepairableAttrs()) {
      CellRef c{static_cast<TupleId>(t), a};
      if (table.Get(c) == Dictionary::kNull) noisy.Add(c);
    }
  }
  return noisy;
}

}  // namespace holoclean
