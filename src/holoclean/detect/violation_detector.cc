#include "holoclean/detect/violation_detector.h"

#include <unordered_map>
#include <unordered_set>

#include "holoclean/util/hash.h"
#include "holoclean/util/logging.h"

namespace holoclean {

ViolationDetector::ViolationDetector(const Table* table,
                                     const std::vector<DenialConstraint>* dcs,
                                     Options options)
    : table_(table),
      dcs_(dcs),
      options_(options),
      evaluator_(table, options.sim_threshold) {}

Violation ViolationDetector::MakeViolation(int dc_index, TupleId t1,
                                           TupleId t2) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  Violation v;
  v.dc_index = dc_index;
  v.t1 = t1;
  v.t2 = t2;
  std::unordered_set<CellRef, CellRefHash> seen;
  auto add = [&](TupleId t, AttrId a) {
    CellRef c{t, a};
    if (seen.insert(c).second) v.cells.push_back(c);
  };
  for (const Predicate& p : dc.preds) {
    add(p.lhs_tuple == 0 ? t1 : t2, p.lhs_attr);
    if (!p.rhs_is_constant) add(p.rhs_tuple == 0 ? t1 : t2, p.rhs_attr);
  }
  return v;
}

std::vector<Violation> ViolationDetector::DetectSingleTuple(
    int dc_index) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  std::vector<Violation> out;
  for (size_t t = 0; t < table_->num_rows(); ++t) {
    TupleId tid = static_cast<TupleId>(t);
    if (evaluator_.ViolatesSingle(dc, tid)) {
      out.push_back(MakeViolation(dc_index, tid, tid));
    }
  }
  return out;
}

std::vector<Violation> ViolationDetector::DetectTwoTuple(int dc_index) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  std::vector<Violation> out;
  auto equalities = dc.CrossEqualities();
  size_t n = table_->num_rows();

  // Deduplicate on unordered tuple pairs: if both (x,y) and (y,x) violate,
  // one edge carries the same repair information.
  std::unordered_set<uint64_t> reported;
  auto report = [&](TupleId a, TupleId b) {
    uint64_t lo = static_cast<uint32_t>(std::min(a, b));
    uint64_t hi = static_cast<uint32_t>(std::max(a, b));
    if (reported.insert((hi << 32) | lo).second) {
      out.push_back(MakeViolation(dc_index, a, b));
    }
  };

  if (equalities.empty()) {
    size_t budget = options_.max_fallback_pairs;
    for (size_t i = 0; i < n && budget > 0; ++i) {
      for (size_t j = 0; j < n && budget > 0; ++j) {
        if (i == j) continue;
        --budget;
        TupleId a = static_cast<TupleId>(i);
        TupleId b = static_cast<TupleId>(j);
        if (evaluator_.Violates(dc, a, b)) report(a, b);
      }
    }
    if (budget == 0) {
      HOLO_LOG(kWarning) << "fallback pair budget exhausted for DC "
                         << dc.name;
    }
    return out;
  }

  // Hash blocking: a tuple pair can only violate the DC if it agrees on all
  // cross-tuple equality predicates. Key tuples by their t1-role values and
  // t2-role values separately (attributes may differ across roles).
  auto key_for = [&](TupleId t, int role) -> uint64_t {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const Predicate* p : equalities) {
      AttrId attr;
      if (role == 0) {
        attr = p->lhs_tuple == 0 ? p->lhs_attr : p->rhs_attr;
      } else {
        attr = p->lhs_tuple == 1 ? p->lhs_attr : p->rhs_attr;
      }
      ValueId v = table_->Get(t, attr);
      if (v == Dictionary::kNull) return 0;  // NULL never matches.
      h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(v)));
    }
    return h;
  };

  std::unordered_map<uint64_t, std::vector<TupleId>> t2_buckets;
  t2_buckets.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    uint64_t key = key_for(static_cast<TupleId>(t), 1);
    if (key != 0) t2_buckets[key].push_back(static_cast<TupleId>(t));
  }
  for (size_t t = 0; t < n; ++t) {
    TupleId a = static_cast<TupleId>(t);
    uint64_t key = key_for(a, 0);
    if (key == 0) continue;
    auto it = t2_buckets.find(key);
    if (it == t2_buckets.end()) continue;
    for (TupleId b : it->second) {
      if (a == b) continue;
      if (evaluator_.Violates(dc, a, b)) report(a, b);
    }
  }
  return out;
}

std::vector<Violation> ViolationDetector::DetectOne(int dc_index) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  return dc.IsTwoTuple() ? DetectTwoTuple(dc_index)
                         : DetectSingleTuple(dc_index);
}

std::vector<Violation> ViolationDetector::Detect() const {
  std::vector<std::vector<Violation>> per_dc(dcs_->size());
  if (options_.pool != nullptr && dcs_->size() > 1) {
    options_.pool->ParallelFor(dcs_->size(), [&](size_t i) {
      per_dc[i] = DetectOne(static_cast<int>(i));
    });
  } else {
    for (size_t i = 0; i < dcs_->size(); ++i) {
      per_dc[i] = DetectOne(static_cast<int>(i));
    }
  }
  std::vector<Violation> out;
  for (auto& part : per_dc) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

NoisyCells ViolationDetector::NoisyFromViolations(
    const std::vector<Violation>& violations) {
  NoisyCells noisy;
  for (const Violation& v : violations) {
    for (const CellRef& c : v.cells) noisy.Add(c);
  }
  return noisy;
}

}  // namespace holoclean
