#include "holoclean/detect/violation_detector.h"

#include <unordered_map>
#include <unordered_set>

#include "holoclean/util/hash.h"
#include "holoclean/util/logging.h"
#include "holoclean/util/string_util.h"

namespace holoclean {

namespace {

/// One DC's predicates compiled against the column store for pair-at-a-time
/// evaluation without per-pair string work:
///  - predicates confined to a single tuple role collapse into a per-tuple
///    verdict mask (constant predicates are resolved once per distinct
///    dictionary code, then gathered through the code array);
///  - cross-tuple predicates keep their operand roles and evaluate as
///    integer/double comparisons through the evaluator's order memo.
/// Verdicts are identical to DcEvaluator::PredicateHolds by construction.
struct ColumnarPlan {
  /// ok[role][t] == 1 iff every single-role predicate of `role` holds on t.
  std::vector<uint8_t> ok[2];
  struct CrossPred {
    Op op = Op::kEq;
    int lhs_tuple = 0;
    AttrId lhs_attr = 0;
    AttrId rhs_attr = 0;
    /// Decoded id columns of the two operands, resolved once at plan build
    /// so the per-pair loop reads flat arrays.
    const ValueId* lhs_col = nullptr;
    const ValueId* rhs_col = nullptr;
  };
  /// Cross-tuple equality predicates (the blocking keys). Verifying them
  /// per pair doubles as the hash-collision filter.
  std::vector<CrossPred> cross_eq;
  /// Remaining cross-tuple predicates.
  std::vector<CrossPred> cross;
};

/// The participating cells of a violation of `dc` are a fixed function of
/// the tuple pair: each predicate operand contributes (role, attr), deduped
/// in first-seen order. Resolving the template once per DC replaces the
/// per-violation hash set MakeViolation needs. For single-tuple violations
/// both roles read the same tuple, so the dedup collapses to the attribute.
std::vector<std::pair<uint8_t, AttrId>> CellTemplate(
    const DenialConstraint& dc, bool two_tuple) {
  std::vector<std::pair<uint8_t, AttrId>> tmpl;
  auto add = [&](int role, AttrId attr) {
    for (const auto& [r, a] : tmpl) {
      if (a == attr && (!two_tuple || r == role)) return;
    }
    tmpl.emplace_back(static_cast<uint8_t>(role), attr);
  };
  for (const Predicate& p : dc.preds) {
    add(p.lhs_tuple, p.lhs_attr);
    if (!p.rhs_is_constant) add(p.rhs_tuple, p.rhs_attr);
  }
  return tmpl;
}

/// Open-addressed set of packed tuple-pair keys (always nonzero: the pair
/// is unordered with distinct halves, so the high word is never zero).
/// Replaces unordered_set in the violation-dedup hot loop — no per-node
/// allocations, linear probing over a power-of-two table.
class PairSet {
 public:
  PairSet() : slots_(16, 0), mask_(15) {}

  /// True when the key was absent (and is now inserted).
  bool Insert(uint64_t key) {
    if ((size_ + 1) * 2 > slots_.size()) Grow();
    size_t s = static_cast<size_t>(Mix64(key)) & mask_;
    while (slots_[s] != 0) {
      if (slots_[s] == key) return false;
      s = (s + 1) & mask_;
    }
    slots_[s] = key;
    ++size_;
    return true;
  }

 private:
  void Grow() {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    mask_ = slots_.size() - 1;
    for (uint64_t key : old) {
      if (key == 0) continue;
      size_t s = static_cast<size_t>(Mix64(key)) & mask_;
      while (slots_[s] != 0) s = (s + 1) & mask_;
      slots_[s] = key;
    }
  }

  std::vector<uint64_t> slots_;
  size_t mask_;
  size_t size_ = 0;
};

ColumnarPlan BuildPlan(const Table& table, const DenialConstraint& dc,
                       const DcEvaluator& eval) {
  const size_t n = table.num_rows();
  const ColumnStore& store = table.store();
  const Dictionary& dict = table.dict();
  ColumnarPlan plan;
  plan.ok[0].assign(n, 1);
  plan.ok[1].assign(n, 1);
  for (const Predicate& p : dc.preds) {
    if (p.SpansTuples()) {
      ColumnarPlan::CrossPred cp;
      cp.op = p.op;
      cp.lhs_tuple = p.lhs_tuple;
      cp.lhs_attr = p.lhs_attr;
      cp.rhs_attr = p.rhs_attr;
      cp.lhs_col = table.Column(p.lhs_attr).data();
      cp.rhs_col = table.Column(p.rhs_attr).data();
      (p.op == Op::kEq ? plan.cross_eq : plan.cross).push_back(cp);
      continue;
    }
    const int role = p.lhs_tuple;
    std::vector<uint8_t>& ok = plan.ok[role];
    if (p.rhs_is_constant) {
      const auto& col = store.column(static_cast<size_t>(p.lhs_attr));
      auto meta =
          store.EnsureCompareMeta(static_cast<size_t>(p.lhs_attr), dict);
      const bool ordered = p.op == Op::kLt || p.op == Op::kGt ||
                           p.op == Op::kLeq || p.op == Op::kGeq;
      const bool const_numeric = ordered && IsNumeric(p.constant);
      const double const_value =
          const_numeric ? ParseDoubleOr(p.constant, 0.0) : 0.0;
      // Verdict per distinct code; NULL (code 0) never holds.
      std::vector<uint8_t> verdict(col.num_codes(), 0);
      for (size_t c = 1; c < col.num_codes(); ++c) {
        if (const_numeric && meta->is_numeric[c]) {
          const double v = meta->numeric[c];
          const int cmp = v < const_value ? -1 : (v > const_value ? 1 : 0);
          verdict[c] = (p.op == Op::kLt && cmp < 0) ||
                       (p.op == Op::kGt && cmp > 0) ||
                       (p.op == Op::kLeq && cmp <= 0) ||
                       (p.op == Op::kGeq && cmp >= 0);
        } else {
          verdict[c] = eval.CompareStrings(
              p.op, dict.GetString(col.code_to_value[c]), p.constant);
        }
      }
      size_t t = 0;
      for (size_t ch = 0; ch < col.codes.num_chunks(); ++ch) {
        const Code* codes = col.codes.chunk_data(ch);
        const size_t m = col.codes.chunk_size(ch);
        for (size_t i = 0; i < m; ++i, ++t) {
          ok[t] &= verdict[static_cast<size_t>(codes[i])];
        }
      }
    } else {
      const std::vector<ValueId>& lhs = table.Column(p.lhs_attr);
      const std::vector<ValueId>& rhs = table.Column(p.rhs_attr);
      for (size_t t = 0; t < n; ++t) {
        ok[t] &= lhs[t] != Dictionary::kNull && rhs[t] != Dictionary::kNull &&
                 eval.Compare(p.op, lhs[t], rhs[t]);
      }
    }
  }
  return plan;
}

}  // namespace

ViolationDetector::ViolationDetector(const Table* table,
                                     const std::vector<DenialConstraint>* dcs,
                                     Options options)
    : table_(table),
      dcs_(dcs),
      options_(options),
      evaluator_(table, options.sim_threshold) {}

Violation ViolationDetector::MakeViolation(int dc_index, TupleId t1,
                                           TupleId t2) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  Violation v;
  v.dc_index = dc_index;
  v.t1 = t1;
  v.t2 = t2;
  std::unordered_set<CellRef, CellRefHash> seen;
  auto add = [&](TupleId t, AttrId a) {
    CellRef c{t, a};
    if (seen.insert(c).second) v.cells.push_back(c);
  };
  for (const Predicate& p : dc.preds) {
    add(p.lhs_tuple == 0 ? t1 : t2, p.lhs_attr);
    if (!p.rhs_is_constant) add(p.rhs_tuple == 0 ? t1 : t2, p.rhs_attr);
  }
  return v;
}

std::vector<Violation> ViolationDetector::DetectSingleTuple(
    int dc_index) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  std::vector<Violation> out;
  for (size_t t = 0; t < table_->num_rows(); ++t) {
    TupleId tid = static_cast<TupleId>(t);
    if (evaluator_.ViolatesSingle(dc, tid)) {
      out.push_back(MakeViolation(dc_index, tid, tid));
    }
  }
  return out;
}

std::vector<Violation> ViolationDetector::DetectSingleTupleColumnar(
    int dc_index) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  // A single-tuple DC references only role 0, so its violations are exactly
  // the tuples passing the role-0 mask.
  ColumnarPlan plan = BuildPlan(*table_, dc, evaluator_);
  const auto tmpl = CellTemplate(dc, /*two_tuple=*/false);
  std::vector<Violation> out;
  for (size_t t = 0; t < table_->num_rows(); ++t) {
    if (plan.ok[0][t]) {
      TupleId tid = static_cast<TupleId>(t);
      Violation v;
      v.dc_index = dc_index;
      v.t1 = tid;
      v.t2 = tid;
      v.cells.reserve(tmpl.size());
      for (const auto& [role, attr] : tmpl) v.cells.push_back({tid, attr});
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<Violation> ViolationDetector::DetectTwoTuple(
    int dc_index, bool* truncated) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  std::vector<Violation> out;
  auto equalities = dc.CrossEqualities();
  size_t n = table_->num_rows();

  // Deduplicate on unordered tuple pairs: if both (x,y) and (y,x) violate,
  // one edge carries the same repair information.
  std::unordered_set<uint64_t> reported;
  auto report = [&](TupleId a, TupleId b) {
    uint64_t lo = static_cast<uint32_t>(std::min(a, b));
    uint64_t hi = static_cast<uint32_t>(std::max(a, b));
    if (reported.insert((hi << 32) | lo).second) {
      out.push_back(MakeViolation(dc_index, a, b));
    }
  };

  if (equalities.empty()) {
    size_t budget = options_.max_fallback_pairs;
    for (size_t i = 0; i < n && budget > 0; ++i) {
      for (size_t j = 0; j < n && budget > 0; ++j) {
        if (i == j) continue;
        --budget;
        TupleId a = static_cast<TupleId>(i);
        TupleId b = static_cast<TupleId>(j);
        if (evaluator_.Violates(dc, a, b)) report(a, b);
      }
    }
    if (budget == 0) {
      if (truncated != nullptr) *truncated = true;
      HOLO_LOG(kWarning) << "fallback pair budget exhausted for DC "
                         << dc.name;
    }
    return out;
  }

  // Hash blocking: a tuple pair can only violate the DC if it agrees on all
  // cross-tuple equality predicates. Key tuples by their t1-role values and
  // t2-role values separately (attributes may differ across roles).
  auto key_for = [&](TupleId t, int role) -> uint64_t {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const Predicate* p : equalities) {
      AttrId attr;
      if (role == 0) {
        attr = p->lhs_tuple == 0 ? p->lhs_attr : p->rhs_attr;
      } else {
        attr = p->lhs_tuple == 1 ? p->lhs_attr : p->rhs_attr;
      }
      ValueId v = table_->Get(t, attr);
      if (v == Dictionary::kNull) return 0;  // NULL never matches.
      h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(v)));
    }
    return h;
  };

  std::unordered_map<uint64_t, std::vector<TupleId>> t2_buckets;
  t2_buckets.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    uint64_t key = key_for(static_cast<TupleId>(t), 1);
    if (key != 0) t2_buckets[key].push_back(static_cast<TupleId>(t));
  }
  for (size_t t = 0; t < n; ++t) {
    TupleId a = static_cast<TupleId>(t);
    uint64_t key = key_for(a, 0);
    if (key == 0) continue;
    auto it = t2_buckets.find(key);
    if (it == t2_buckets.end()) continue;
    for (TupleId b : it->second) {
      if (a == b) continue;
      if (evaluator_.Violates(dc, a, b)) report(a, b);
    }
  }
  return out;
}

std::vector<Violation> ViolationDetector::DetectTwoTupleColumnar(
    int dc_index, bool* truncated) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  std::vector<Violation> out;
  const size_t n = table_->num_rows();
  ColumnarPlan plan = BuildPlan(*table_, dc, evaluator_);

  // Cross predicates resolve against the decoded id columns (pointers
  // resolved at plan build); attribute order follows the pair roles (a
  // plays t1, b plays t2). Equality/inequality are pure id compares — the
  // evaluator only enters for ordered and similarity operators.
  auto cross_holds = [&](const ColumnarPlan::CrossPred& cp, TupleId a,
                         TupleId b) {
    size_t lhs_t = static_cast<size_t>(cp.lhs_tuple == 0 ? a : b);
    size_t rhs_t = static_cast<size_t>(cp.lhs_tuple == 0 ? b : a);
    ValueId lhs = cp.lhs_col[lhs_t];
    if (lhs == Dictionary::kNull) return false;
    ValueId rhs = cp.rhs_col[rhs_t];
    if (rhs == Dictionary::kNull) return false;
    if (cp.op == Op::kEq) return lhs == rhs;
    if (cp.op == Op::kNeq) return lhs != rhs;
    return evaluator_.Compare(cp.op, lhs, rhs);
  };
  auto pair_violates = [&](TupleId a, TupleId b) {
    for (const auto& cp : plan.cross_eq) {
      // Integer check also filters hash collisions on the blocked path.
      if (!cross_holds(cp, a, b)) return false;
    }
    for (const auto& cp : plan.cross) {
      if (!cross_holds(cp, a, b)) return false;
    }
    return true;
  };

  const auto tmpl = CellTemplate(dc, /*two_tuple=*/true);
  PairSet reported;
  auto report = [&](TupleId a, TupleId b) {
    uint64_t lo = static_cast<uint32_t>(std::min(a, b));
    uint64_t hi = static_cast<uint32_t>(std::max(a, b));
    if (reported.Insert((hi << 32) | lo)) {
      Violation v;
      v.dc_index = dc_index;
      v.t1 = a;
      v.t2 = b;
      v.cells.reserve(tmpl.size());
      for (const auto& [role, attr] : tmpl) {
        v.cells.push_back({role == 0 ? a : b, attr});
      }
      out.push_back(std::move(v));
    }
  };

  if (plan.cross_eq.empty()) {
    // Brute-force fallback. The budget arithmetic mirrors the row path
    // exactly — each considered pair (j != i) costs one unit — so the same
    // prefix of the pair sequence is inspected; rows failing their role-0
    // mask are skipped in O(1) by charging the whole row at once (none of
    // their pairs can violate).
    size_t budget = options_.max_fallback_pairs;
    for (size_t i = 0; i < n && budget > 0; ++i) {
      if (!plan.ok[0][i]) {
        budget -= std::min(budget, n - 1);
        continue;
      }
      for (size_t j = 0; j < n && budget > 0; ++j) {
        if (i == j) continue;
        --budget;
        if (!plan.ok[1][j]) continue;
        TupleId a = static_cast<TupleId>(i);
        TupleId b = static_cast<TupleId>(j);
        if (pair_violates(a, b)) report(a, b);
      }
    }
    if (budget == 0) {
      if (truncated != nullptr) *truncated = true;
      HOLO_LOG(kWarning) << "fallback pair budget exhausted for DC "
                         << dc.name;
    }
    return out;
  }

  // Hash blocking on the cross-equality ids, scanning the decoded columns
  // directly. Keys and bucket order match the row path, so the violation
  // sequence is identical; tuples failing their single-role mask are
  // dropped before pairing (their pairs cannot violate).
  std::vector<const std::vector<ValueId>*> key_cols[2];
  for (const auto& cp : plan.cross_eq) {
    // Role 0 reads the attr the predicate gives t1, role 1 the t2 attr.
    AttrId a0 = cp.lhs_tuple == 0 ? cp.lhs_attr : cp.rhs_attr;
    AttrId a1 = cp.lhs_tuple == 0 ? cp.rhs_attr : cp.lhs_attr;
    key_cols[0].push_back(&table_->Column(a0));
    key_cols[1].push_back(&table_->Column(a1));
  }
  auto key_for = [&](size_t t, int role) -> uint64_t {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const std::vector<ValueId>* vals : key_cols[role]) {
      ValueId v = (*vals)[t];
      if (v == Dictionary::kNull) return 0;  // NULL never matches.
      h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(v)));
    }
    return h;
  };

  std::unordered_map<uint64_t, std::vector<TupleId>> t2_buckets;
  t2_buckets.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    if (!plan.ok[1][t]) continue;
    uint64_t key = key_for(t, 1);
    if (key != 0) t2_buckets[key].push_back(static_cast<TupleId>(t));
  }
  for (size_t t = 0; t < n; ++t) {
    if (!plan.ok[0][t]) continue;
    uint64_t key = key_for(t, 0);
    if (key == 0) continue;
    auto it = t2_buckets.find(key);
    if (it == t2_buckets.end()) continue;
    TupleId a = static_cast<TupleId>(t);
    for (TupleId b : it->second) {
      if (a == b) continue;
      if (pair_violates(a, b)) report(a, b);
    }
  }
  return out;
}

std::vector<Violation> ViolationDetector::DetectOneImpl(int dc_index,
                                                        bool* truncated) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  if (options_.columnar) {
    return dc.IsTwoTuple() ? DetectTwoTupleColumnar(dc_index, truncated)
                           : DetectSingleTupleColumnar(dc_index);
  }
  return dc.IsTwoTuple() ? DetectTwoTuple(dc_index, truncated)
                         : DetectSingleTuple(dc_index);
}

std::vector<Violation> ViolationDetector::DetectOne(int dc_index) const {
  bool truncated = false;
  return DetectOneImpl(dc_index, &truncated);
}

DetectResult ViolationDetector::DetectAll() const {
  std::vector<std::vector<Violation>> per_dc(dcs_->size());
  std::vector<uint8_t> truncated(dcs_->size(), 0);
  auto run = [&](size_t i) {
    bool t = false;
    per_dc[i] = DetectOneImpl(static_cast<int>(i), &t);
    truncated[i] = t ? 1 : 0;
  };
  if (options_.pool != nullptr && dcs_->size() > 1) {
    options_.pool->ParallelFor(dcs_->size(), run);
  } else {
    for (size_t i = 0; i < dcs_->size(); ++i) run(i);
  }
  DetectResult result;
  size_t total = 0;
  for (const auto& part : per_dc) total += part.size();
  result.violations.reserve(total);
  for (auto& part : per_dc) {
    result.violations.insert(result.violations.end(),
                             std::make_move_iterator(part.begin()),
                             std::make_move_iterator(part.end()));
  }
  for (size_t i = 0; i < truncated.size(); ++i) {
    if (truncated[i]) result.truncated_dcs.push_back(static_cast<int>(i));
  }
  return result;
}

std::vector<Violation> ViolationDetector::Detect() const {
  return DetectAll().violations;
}

// --- Block-limited delta detection ------------------------------------------
//
// A full blocked scan reports pairs in (outer tuple ascending, bucket
// position ascending) order, buckets are filled by ascending tuple id, and
// a pair's orientation is fixed by its first VIOLATING check — so every
// per-DC violation list is sorted by (t1, t2), and the checks involving a
// given tuple set form a contiguous-by-sort-key subsequence. The delta
// paths below reproduce exactly that subsequence (same check order, same
// dedup semantics), which makes cached + delta == full scan, including
// order. Delta evaluation uses the row-path evaluator; its verdicts are
// pinned bit-identical to the columnar plan by the existing differential
// tests, and bucket masking in the columnar path only skips checks that
// could never violate, so the violating-check sequence is the same.

std::vector<Violation> ViolationDetector::DeltaTwoTupleAppended(
    int dc_index, size_t old_rows) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  auto equalities = dc.CrossEqualities();
  const size_t n = table_->num_rows();

  auto key_for = [&](TupleId t, int role) -> uint64_t {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const Predicate* p : equalities) {
      AttrId attr;
      if (role == 0) {
        attr = p->lhs_tuple == 0 ? p->lhs_attr : p->rhs_attr;
      } else {
        attr = p->lhs_tuple == 1 ? p->lhs_attr : p->rhs_attr;
      }
      ValueId v = table_->Get(t, attr);
      if (v == Dictionary::kNull) return 0;  // NULL never matches.
      h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(v)));
    }
    return h;
  };

  std::vector<Violation> out;
  PairSet reported;
  auto check = [&](TupleId a, TupleId b) {
    if (a == b) return;
    if (!evaluator_.Violates(dc, a, b)) return;
    uint64_t lo = static_cast<uint32_t>(std::min(a, b));
    uint64_t hi = static_cast<uint32_t>(std::max(a, b));
    if (reported.Insert((hi << 32) | lo)) {
      out.push_back(MakeViolation(dc_index, a, b));
    }
  };

  // Phase 1: old outer tuples whose role-1 bucket gained new partners. In
  // the full scan these checks happen at outer a — after a's old partners
  // (cached) and before any new outer — so evaluating them in (a, b) order
  // slots them exactly where the full scan discovers them.
  std::unordered_map<uint64_t, std::vector<TupleId>> old_role0;
  old_role0.reserve(old_rows);
  for (size_t t = 0; t < old_rows; ++t) {
    uint64_t key = key_for(static_cast<TupleId>(t), 0);
    if (key != 0) old_role0[key].push_back(static_cast<TupleId>(t));
  }
  std::vector<std::pair<TupleId, TupleId>> pairs;
  for (size_t b = old_rows; b < n; ++b) {
    uint64_t key = key_for(static_cast<TupleId>(b), 1);
    if (key == 0) continue;
    auto it = old_role0.find(key);
    if (it == old_role0.end()) continue;
    for (TupleId a : it->second) {
      pairs.emplace_back(a, static_cast<TupleId>(b));
    }
  }
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [a, b] : pairs) check(a, b);

  // Phase 2: new outer tuples against the full role-1 buckets, ascending —
  // the tail of the full scan's outer loop.
  std::unordered_map<uint64_t, std::vector<TupleId>> t2_buckets;
  t2_buckets.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    uint64_t key = key_for(static_cast<TupleId>(t), 1);
    if (key != 0) t2_buckets[key].push_back(static_cast<TupleId>(t));
  }
  for (size_t a = old_rows; a < n; ++a) {
    uint64_t key = key_for(static_cast<TupleId>(a), 0);
    if (key == 0) continue;
    auto it = t2_buckets.find(key);
    if (it == t2_buckets.end()) continue;
    for (TupleId b : it->second) check(static_cast<TupleId>(a), b);
  }
  return out;
}

std::vector<Violation> ViolationDetector::DeltaTwoTupleChanged(
    int dc_index, TupleId changed) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  auto equalities = dc.CrossEqualities();
  const size_t n = table_->num_rows();

  auto key_for = [&](TupleId t, int role) -> uint64_t {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const Predicate* p : equalities) {
      AttrId attr;
      if (role == 0) {
        attr = p->lhs_tuple == 0 ? p->lhs_attr : p->rhs_attr;
      } else {
        attr = p->lhs_tuple == 1 ? p->lhs_attr : p->rhs_attr;
      }
      ValueId v = table_->Get(t, attr);
      if (v == Dictionary::kNull) return 0;
      h = HashCombine(h, static_cast<uint64_t>(static_cast<uint32_t>(v)));
    }
    return h;
  };

  std::vector<Violation> out;
  PairSet reported;
  auto check = [&](TupleId a, TupleId b) {
    if (a == b) return;
    if (!evaluator_.Violates(dc, a, b)) return;
    uint64_t lo = static_cast<uint32_t>(std::min(a, b));
    uint64_t hi = static_cast<uint32_t>(std::max(a, b));
    if (reported.Insert((hi << 32) | lo)) {
      out.push_back(MakeViolation(dc_index, a, b));
    }
  };

  // The full scan checks (a, changed) at every outer a whose role-0 key
  // matches the changed tuple's role-1 key, and (changed, b) at outer
  // `changed` against its role-0 key's bucket. Reproduce those checks in
  // outer order: a < changed first, then the changed tuple's own outer
  // block, then a > changed.
  const uint64_t k1_changed = key_for(changed, 1);
  const uint64_t k0_changed = key_for(changed, 0);
  std::vector<TupleId> outers;    // a with key0(a) == key1(changed)
  std::vector<TupleId> partners;  // b with key1(b) == key0(changed)
  for (size_t t = 0; t < n; ++t) {
    TupleId tid = static_cast<TupleId>(t);
    if (tid == changed) continue;
    if (k1_changed != 0 && key_for(tid, 0) == k1_changed) {
      outers.push_back(tid);
    }
    if (k0_changed != 0 && key_for(tid, 1) == k0_changed) {
      partners.push_back(tid);
    }
  }
  size_t k = 0;
  while (k < outers.size() && outers[k] < changed) {
    check(outers[k], changed);
    ++k;
  }
  for (TupleId b : partners) check(changed, b);
  for (; k < outers.size(); ++k) check(outers[k], changed);
  return out;
}

std::vector<Violation> ViolationDetector::DeltaOne(int dc_index,
                                                   size_t old_rows,
                                                   TupleId changed,
                                                   bool* recomputed,
                                                   bool* truncated) const {
  const DenialConstraint& dc = (*dcs_)[static_cast<size_t>(dc_index)];
  *recomputed = false;
  if (!dc.IsTwoTuple()) {
    std::vector<Violation> out;
    if (changed >= 0) {
      if (evaluator_.ViolatesSingle(dc, changed)) {
        out.push_back(MakeViolation(dc_index, changed, changed));
      }
    } else {
      for (size_t t = old_rows; t < table_->num_rows(); ++t) {
        TupleId tid = static_cast<TupleId>(t);
        if (evaluator_.ViolatesSingle(dc, tid)) {
          out.push_back(MakeViolation(dc_index, tid, tid));
        }
      }
    }
    return out;
  }
  if (dc.CrossEqualities().empty()) {
    *recomputed = true;
    return DetectOneImpl(dc_index, truncated);
  }
  return changed >= 0 ? DeltaTwoTupleChanged(dc_index, changed)
                      : DeltaTwoTupleAppended(dc_index, old_rows);
}

DeltaDetectResult ViolationDetector::DetectDeltaImpl(size_t old_rows,
                                                     TupleId changed) const {
  DeltaDetectResult result;
  result.per_dc.resize(dcs_->size());
  result.recomputed.assign(dcs_->size(), 0);
  std::vector<uint8_t> truncated(dcs_->size(), 0);
  auto run = [&](size_t i) {
    bool rec = false;
    bool tr = false;
    result.per_dc[i] =
        DeltaOne(static_cast<int>(i), old_rows, changed, &rec, &tr);
    result.recomputed[i] = rec ? 1 : 0;
    truncated[i] = tr ? 1 : 0;
  };
  if (options_.pool != nullptr && dcs_->size() > 1) {
    options_.pool->ParallelFor(dcs_->size(), run);
  } else {
    for (size_t i = 0; i < dcs_->size(); ++i) run(i);
  }
  for (size_t i = 0; i < truncated.size(); ++i) {
    if (truncated[i]) result.truncated_dcs.push_back(static_cast<int>(i));
  }
  return result;
}

DeltaDetectResult ViolationDetector::DetectAppended(size_t old_rows) const {
  return DetectDeltaImpl(old_rows, -1);
}

DeltaDetectResult ViolationDetector::DetectForTuple(TupleId changed) const {
  return DetectDeltaImpl(0, changed);
}

DetectResult ViolationDetector::MergeDeltaImpl(std::vector<Violation> cached,
                                               TupleId changed,
                                               size_t num_dcs,
                                               DeltaDetectResult delta) {
  std::vector<std::vector<Violation>> by_dc(num_dcs);
  for (Violation& v : cached) {
    by_dc[static_cast<size_t>(v.dc_index)].push_back(std::move(v));
  }
  DetectResult out;
  size_t total = 0;
  for (const auto& part : by_dc) total += part.size();
  for (const auto& part : delta.per_dc) total += part.size();
  out.violations.reserve(total);
  for (size_t s = 0; s < num_dcs; ++s) {
    std::vector<Violation>& old_list = by_dc[s];
    std::vector<Violation>& add = delta.per_dc[s];
    if (delta.recomputed[s]) {
      for (Violation& v : add) out.violations.push_back(std::move(v));
      continue;
    }
    // Both lists are (t1, t2)-sorted with disjoint keys (delta pairs all
    // involve delta tuples; the kept cached pairs involve none).
    size_t i = 0;
    size_t j = 0;
    auto before = [](const Violation& x, const Violation& y) {
      return x.t1 != y.t1 ? x.t1 < y.t1 : x.t2 < y.t2;
    };
    while (i < old_list.size() || j < add.size()) {
      if (i < old_list.size() && changed >= 0 &&
          (old_list[i].t1 == changed || old_list[i].t2 == changed)) {
        ++i;  // Stale: superseded by the delta re-detection.
        continue;
      }
      bool take_old = j >= add.size() ||
                      (i < old_list.size() && before(old_list[i], add[j]));
      out.violations.push_back(std::move(take_old ? old_list[i++] : add[j++]));
    }
  }
  out.truncated_dcs = std::move(delta.truncated_dcs);
  return out;
}

DetectResult ViolationDetector::MergeAppendDelta(std::vector<Violation> cached,
                                                 size_t num_dcs,
                                                 DeltaDetectResult delta) {
  return MergeDeltaImpl(std::move(cached), -1, num_dcs, std::move(delta));
}

DetectResult ViolationDetector::MergeTupleDelta(std::vector<Violation> cached,
                                                TupleId changed,
                                                size_t num_dcs,
                                                DeltaDetectResult delta) {
  return MergeDeltaImpl(std::move(cached), changed, num_dcs,
                        std::move(delta));
}

NoisyCells ViolationDetector::NoisyFromViolations(
    const std::vector<Violation>& violations) {
  NoisyCells noisy;
  for (const Violation& v : violations) {
    for (const CellRef& c : v.cells) noisy.Add(c);
  }
  return noisy;
}

}  // namespace holoclean
