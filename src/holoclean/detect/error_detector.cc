#include "holoclean/detect/error_detector.h"

#include "holoclean/detect/violation_detector.h"

namespace holoclean {

NoisyCells DcViolationDetector::Detect(const Dataset& dataset) const {
  ViolationDetector::Options options;
  options.sim_threshold = sim_threshold_;
  ViolationDetector detector(&dataset.dirty(), &dcs_, options);
  return ViolationDetector::NoisyFromViolations(detector.Detect());
}

}  // namespace holoclean
