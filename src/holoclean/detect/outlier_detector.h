#ifndef HOLOCLEAN_DETECT_OUTLIER_DETECTOR_H_
#define HOLOCLEAN_DETECT_OUTLIER_DETECTOR_H_

#include "holoclean/detect/error_detector.h"

namespace holoclean {

/// Categorical outlier detection in the spirit of Das & Schneider (KDD'07):
/// a cell is an outlier when its value is rare in the attribute's marginal
/// distribution *and* rare conditionally on some other attribute value of
/// the same tuple that is itself common.
///
/// Example (paper Figure 1): t4's City "Cicago" appears once while the
/// co-occurring Zip "60608" overwhelmingly co-occurs with "Chicago".
class OutlierDetector : public ErrorDetector {
 public:
  struct Options {
    /// A value with marginal frequency above this is never an outlier.
    double max_marginal_prob = 0.05;
    /// Absolute count cap: values appearing more often are never outliers.
    int max_count = 3;
    /// Conditional check: context values must be at least this common.
    int min_context_count = 4;
    /// The cell value must explain at most this fraction of the context.
    double max_conditional_prob = 0.1;
  };

  OutlierDetector() : options_(Options()) {}
  explicit OutlierDetector(Options options) : options_(options) {}

  std::string name() const override { return "outliers"; }
  NoisyCells Detect(const Dataset& dataset) const override;

 private:
  Options options_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_DETECT_OUTLIER_DETECTOR_H_
