#ifndef HOLOCLEAN_DETECT_NUMERIC_OUTLIER_DETECTOR_H_
#define HOLOCLEAN_DETECT_NUMERIC_OUTLIER_DETECTOR_H_

#include "holoclean/detect/error_detector.h"

namespace holoclean {

/// Quantitative outlier detection for numeric attributes in the spirit of
/// Hellerstein's "Quantitative Data Cleaning for Large Databases" (cited
/// as an error-detection method in paper §2.2): a cell is flagged when its
/// attribute is predominantly numeric and the value's robust z-score
/// (|v − median| / MAD) exceeds the threshold, or when the value fails to
/// parse at all in an otherwise-numeric column.
class NumericOutlierDetector : public ErrorDetector {
 public:
  struct Options {
    double max_robust_z = 5.0;
  };

  NumericOutlierDetector() : options_(Options()) {}
  explicit NumericOutlierDetector(Options options) : options_(options) {}

  std::string name() const override { return "numeric-outliers"; }
  NoisyCells Detect(const Dataset& dataset) const override;

 private:
  Options options_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_DETECT_NUMERIC_OUTLIER_DETECTOR_H_
