#ifndef HOLOCLEAN_DETECT_NULL_DETECTOR_H_
#define HOLOCLEAN_DETECT_NULL_DETECTOR_H_

#include "holoclean/detect/error_detector.h"

namespace holoclean {

/// Flags NULL (empty) cells in repairable attributes as noisy, turning
/// missing-value imputation into the same inference problem as repairing.
class NullDetector : public ErrorDetector {
 public:
  std::string name() const override { return "nulls"; }
  NoisyCells Detect(const Dataset& dataset) const override;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_DETECT_NULL_DETECTOR_H_
