#ifndef HOLOCLEAN_DETECT_CONFLICT_HYPERGRAPH_H_
#define HOLOCLEAN_DETECT_CONFLICT_HYPERGRAPH_H_

#include <unordered_map>
#include <vector>

#include "holoclean/detect/violation_detector.h"

namespace holoclean {

/// The conflict hypergraph of Kolahi & Lakshmanan: nodes are cells that
/// participate in detected violations; hyperedges connect the cells of one
/// violation and are annotated with the violated constraint (paper §5.1.2).
///
/// Consumers: the Holistic baseline (vertex cover over the hyperedges) and
/// HoloClean's tuple partitioning (connected components per constraint).
class ConflictHypergraph {
 public:
  explicit ConflictHypergraph(std::vector<Violation> violations);

  const std::vector<Violation>& edges() const { return violations_; }

  /// Indices into edges() of the hyperedges containing `cell`.
  const std::vector<int>& EdgesOfCell(const CellRef& cell) const;

  /// All distinct cells appearing in any hyperedge.
  std::vector<CellRef> Nodes() const;

  /// Number of hyperedges a cell participates in (its degree).
  size_t Degree(const CellRef& cell) const {
    return EdgesOfCell(cell).size();
  }

 private:
  std::vector<Violation> violations_;
  std::unordered_map<CellRef, std::vector<int>, CellRefHash> by_cell_;
  std::vector<int> empty_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_DETECT_CONFLICT_HYPERGRAPH_H_
