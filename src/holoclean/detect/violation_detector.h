#ifndef HOLOCLEAN_DETECT_VIOLATION_DETECTOR_H_
#define HOLOCLEAN_DETECT_VIOLATION_DETECTOR_H_

#include <vector>

#include "holoclean/constraints/evaluator.h"
#include "holoclean/storage/dataset.h"
#include "holoclean/util/thread_pool.h"

namespace holoclean {

/// One detected denial-constraint violation: the constraint, the tuple pair
/// (t2 == t1 for single-tuple constraints), and the participating cells.
struct Violation {
  int dc_index = 0;
  TupleId t1 = 0;
  TupleId t2 = 0;
  std::vector<CellRef> cells;
};

/// Full detection output: the violations plus which constraints hit the
/// brute-force pair budget (their violation lists may under-cover).
struct DetectResult {
  std::vector<Violation> violations;
  /// Indices of DCs whose fallback pair scan exhausted `max_fallback_pairs`,
  /// ascending.
  std::vector<int> truncated_dcs;
};

/// Output of block-limited delta re-detection (DetectAppended /
/// DetectForTuple): only the violations that involve the delta tuples,
/// per constraint, in the exact order a full DetectAll discovers them —
/// so merging them into a cached full result reproduces DetectAll over the
/// current table bit for bit.
struct DeltaDetectResult {
  /// per_dc[s]: violations of DC s involving at least one delta tuple,
  /// sorted by (t1, t2). For recomputed DCs, the constraint's FULL
  /// violation list instead.
  std::vector<std::vector<Violation>> per_dc;
  /// DCs with no cross-tuple equality predicate have no blocking structure
  /// to limit the delta to (the budgeted fallback scan is a prefix property
  /// of the whole pair sequence), so they are recomputed wholesale;
  /// per_dc[s] then replaces — not merges into — the cached list.
  std::vector<uint8_t> recomputed;
  /// Truncation among the recomputed DCs (blocked DCs never truncate).
  std::vector<int> truncated_dcs;
};

/// Finds all denial-constraint violations in a table.
///
/// Two-tuple constraints are evaluated with hash blocking on their cross-
/// tuple equality predicates, which reduces the quadratic pair scan to
/// within-block comparisons (the same trick DeepDive's grounding relies on;
/// see paper Section 5.1.2). Constraints without an equality predicate fall
/// back to the full pair scan, capped at `max_fallback_pairs`.
///
/// By default predicates are evaluated columnar: single-role predicates
/// become per-tuple verdict masks computed by scanning the ColumnStore's
/// code arrays (constant predicates resolve once per distinct code), and
/// cross-tuple predicates become integer comparisons over the decoded id
/// arrays. The output is bit-identical to the row-at-a-time path
/// (`Options::columnar = false`), which is kept as the reference
/// implementation for differential tests.
class ViolationDetector {
 public:
  struct Options {
    double sim_threshold = 0.8;
    /// Upper bound on brute-force pair comparisons for constraints with no
    /// equality predicate to block on.
    size_t max_fallback_pairs = 4'000'000;
    /// Optional worker pool: constraints are detected in parallel (the
    /// result is identical to the sequential order).
    ThreadPool* pool = nullptr;
    /// Evaluate predicates with vectorized scans over the column store
    /// instead of row-at-a-time evaluator calls. Same output, faster.
    bool columnar = true;
  };

  ViolationDetector(const Table* table,
                    const std::vector<DenialConstraint>* dcs,
                    Options options);
  ViolationDetector(const Table* table,
                    const std::vector<DenialConstraint>* dcs)
      : ViolationDetector(table, dcs, Options()) {}

  /// All violations, deduplicated on (constraint, unordered tuple pair).
  std::vector<Violation> Detect() const;

  /// Like Detect(), also reporting which DCs were truncated by the
  /// fallback pair budget.
  DetectResult DetectAll() const;

  /// Violations of a single constraint.
  std::vector<Violation> DetectOne(int dc_index) const;

  /// Block-limited delta detection for appended tuples: all violations
  /// involving at least one tuple with index >= old_rows, per constraint.
  /// Appends do not change existing tuples, so a cached DetectAll over the
  /// first old_rows rows plus this delta IS DetectAll over the current
  /// table (see MergeAppendDelta). Cost is proportional to the key scans
  /// plus the pairs the new tuples' blocks contribute — never the old
  /// pairs.
  DeltaDetectResult DetectAppended(size_t old_rows) const;

  /// Block-limited delta re-detection for one changed tuple (the feedback
  /// pin path): all violations involving `changed` under its current
  /// values, per constraint, in full-scan discovery order. Merging with a
  /// cached result purged of the tuple's old violations reproduces a full
  /// re-detection (see MergeTupleDelta).
  DeltaDetectResult DetectForTuple(TupleId changed) const;

  /// Merges a cached DetectAll result (over the first old_rows rows) with
  /// a DetectAppended delta into the full-table DetectAll output,
  /// bit-identical including violation order.
  static DetectResult MergeAppendDelta(std::vector<Violation> cached,
                                       size_t num_dcs,
                                       DeltaDetectResult delta);

  /// Drops every cached violation involving `changed` and merges the
  /// DetectForTuple delta in, reproducing a full re-detection of the
  /// current table bit for bit.
  static DetectResult MergeTupleDelta(std::vector<Violation> cached,
                                      TupleId changed, size_t num_dcs,
                                      DeltaDetectResult delta);

  /// Cells participating in any violation — the noisy set Dn the paper uses
  /// for all four datasets ("we seek to repair cells that participate in
  /// violations of integrity constraints").
  static NoisyCells NoisyFromViolations(const std::vector<Violation>& violations);

  const DcEvaluator& evaluator() const { return evaluator_; }

 private:
  std::vector<Violation> DetectOneImpl(int dc_index, bool* truncated) const;
  /// One constraint's delta: dispatches on constraint shape; `old_rows`
  /// delimits appended tuples, or `changed` >= 0 names the edited tuple.
  std::vector<Violation> DeltaOne(int dc_index, size_t old_rows,
                                  TupleId changed, bool* recomputed,
                                  bool* truncated) const;
  std::vector<Violation> DeltaTwoTupleAppended(int dc_index,
                                               size_t old_rows) const;
  std::vector<Violation> DeltaTwoTupleChanged(int dc_index,
                                              TupleId changed) const;
  DeltaDetectResult DetectDeltaImpl(size_t old_rows, TupleId changed) const;
  static DetectResult MergeDeltaImpl(std::vector<Violation> cached,
                                     TupleId changed, size_t num_dcs,
                                     DeltaDetectResult delta);
  std::vector<Violation> DetectTwoTuple(int dc_index, bool* truncated) const;
  std::vector<Violation> DetectSingleTuple(int dc_index) const;
  std::vector<Violation> DetectTwoTupleColumnar(int dc_index,
                                                bool* truncated) const;
  std::vector<Violation> DetectSingleTupleColumnar(int dc_index) const;
  Violation MakeViolation(int dc_index, TupleId t1, TupleId t2) const;

  const Table* table_;
  const std::vector<DenialConstraint>* dcs_;
  Options options_;
  DcEvaluator evaluator_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_DETECT_VIOLATION_DETECTOR_H_
