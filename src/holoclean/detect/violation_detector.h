#ifndef HOLOCLEAN_DETECT_VIOLATION_DETECTOR_H_
#define HOLOCLEAN_DETECT_VIOLATION_DETECTOR_H_

#include <vector>

#include "holoclean/constraints/evaluator.h"
#include "holoclean/storage/dataset.h"
#include "holoclean/util/thread_pool.h"

namespace holoclean {

/// One detected denial-constraint violation: the constraint, the tuple pair
/// (t2 == t1 for single-tuple constraints), and the participating cells.
struct Violation {
  int dc_index = 0;
  TupleId t1 = 0;
  TupleId t2 = 0;
  std::vector<CellRef> cells;
};

/// Full detection output: the violations plus which constraints hit the
/// brute-force pair budget (their violation lists may under-cover).
struct DetectResult {
  std::vector<Violation> violations;
  /// Indices of DCs whose fallback pair scan exhausted `max_fallback_pairs`,
  /// ascending.
  std::vector<int> truncated_dcs;
};

/// Finds all denial-constraint violations in a table.
///
/// Two-tuple constraints are evaluated with hash blocking on their cross-
/// tuple equality predicates, which reduces the quadratic pair scan to
/// within-block comparisons (the same trick DeepDive's grounding relies on;
/// see paper Section 5.1.2). Constraints without an equality predicate fall
/// back to the full pair scan, capped at `max_fallback_pairs`.
///
/// By default predicates are evaluated columnar: single-role predicates
/// become per-tuple verdict masks computed by scanning the ColumnStore's
/// code arrays (constant predicates resolve once per distinct code), and
/// cross-tuple predicates become integer comparisons over the decoded id
/// arrays. The output is bit-identical to the row-at-a-time path
/// (`Options::columnar = false`), which is kept as the reference
/// implementation for differential tests.
class ViolationDetector {
 public:
  struct Options {
    double sim_threshold = 0.8;
    /// Upper bound on brute-force pair comparisons for constraints with no
    /// equality predicate to block on.
    size_t max_fallback_pairs = 4'000'000;
    /// Optional worker pool: constraints are detected in parallel (the
    /// result is identical to the sequential order).
    ThreadPool* pool = nullptr;
    /// Evaluate predicates with vectorized scans over the column store
    /// instead of row-at-a-time evaluator calls. Same output, faster.
    bool columnar = true;
  };

  ViolationDetector(const Table* table,
                    const std::vector<DenialConstraint>* dcs,
                    Options options);
  ViolationDetector(const Table* table,
                    const std::vector<DenialConstraint>* dcs)
      : ViolationDetector(table, dcs, Options()) {}

  /// All violations, deduplicated on (constraint, unordered tuple pair).
  std::vector<Violation> Detect() const;

  /// Like Detect(), also reporting which DCs were truncated by the
  /// fallback pair budget.
  DetectResult DetectAll() const;

  /// Violations of a single constraint.
  std::vector<Violation> DetectOne(int dc_index) const;

  /// Cells participating in any violation — the noisy set Dn the paper uses
  /// for all four datasets ("we seek to repair cells that participate in
  /// violations of integrity constraints").
  static NoisyCells NoisyFromViolations(const std::vector<Violation>& violations);

  const DcEvaluator& evaluator() const { return evaluator_; }

 private:
  std::vector<Violation> DetectOneImpl(int dc_index, bool* truncated) const;
  std::vector<Violation> DetectTwoTuple(int dc_index, bool* truncated) const;
  std::vector<Violation> DetectSingleTuple(int dc_index) const;
  std::vector<Violation> DetectTwoTupleColumnar(int dc_index,
                                                bool* truncated) const;
  std::vector<Violation> DetectSingleTupleColumnar(int dc_index) const;
  Violation MakeViolation(int dc_index, TupleId t1, TupleId t2) const;

  const Table* table_;
  const std::vector<DenialConstraint>* dcs_;
  Options options_;
  DcEvaluator evaluator_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_DETECT_VIOLATION_DETECTOR_H_
