#include "holoclean/detect/numeric_outlier_detector.h"

#include "holoclean/stats/numeric.h"
#include "holoclean/util/string_util.h"

namespace holoclean {

NoisyCells NumericOutlierDetector::Detect(const Dataset& dataset) const {
  NoisyCells noisy;
  const Table& table = dataset.dirty();
  for (AttrId a : dataset.RepairableAttrs()) {
    NumericProfile profile = ProfileNumeric(table, a);
    if (!profile.IsNumericAttribute()) continue;
    for (size_t t = 0; t < table.num_rows(); ++t) {
      CellRef c{static_cast<TupleId>(t), a};
      ValueId v = table.Get(c);
      if (v == Dictionary::kNull) continue;
      const std::string& s = table.dict().GetString(v);
      if (!IsNumeric(s)) {
        // A non-number in a numeric column (e.g. an 'x'-typo in a zip).
        noisy.Add(c);
        continue;
      }
      if (profile.RobustZ(ParseDoubleOr(s, 0.0)) > options_.max_robust_z) {
        noisy.Add(c);
      }
    }
  }
  return noisy;
}

}  // namespace holoclean
