#include "holoclean/detect/outlier_detector.h"

#include "holoclean/stats/cooccurrence.h"
#include "holoclean/stats/frequency.h"

namespace holoclean {

NoisyCells OutlierDetector::Detect(const Dataset& dataset) const {
  NoisyCells noisy;
  const Table& table = dataset.dirty();
  std::vector<AttrId> attrs = dataset.RepairableAttrs();
  FrequencyStats freq = FrequencyStats::Build(table);
  CooccurrenceStats cooc = CooccurrenceStats::Build(table, attrs);

  for (size_t t = 0; t < table.num_rows(); ++t) {
    TupleId tid = static_cast<TupleId>(t);
    for (AttrId a : attrs) {
      ValueId v = table.Get(tid, a);
      if (v == Dictionary::kNull) continue;
      int count = freq.Count(a, v);
      if (count > options_.max_count) continue;
      if (freq.Probability(a, v) > options_.max_marginal_prob) continue;
      // Conditional check: look for a common context value in the tuple
      // that rarely explains v. A rare value that is *consistent* with its
      // contexts (e.g. a rare but valid street address) is not an outlier.
      bool conditionally_rare = false;
      for (AttrId a_ctx : attrs) {
        if (a_ctx == a) continue;
        ValueId v_ctx = table.Get(tid, a_ctx);
        if (v_ctx == Dictionary::kNull) continue;
        if (cooc.Count(a_ctx, v_ctx) < options_.min_context_count) continue;
        if (cooc.CondProb(a, v, a_ctx, v_ctx) <=
            options_.max_conditional_prob) {
          conditionally_rare = true;
          break;
        }
      }
      if (conditionally_rare) noisy.Add(CellRef{tid, a});
    }
  }
  return noisy;
}

}  // namespace holoclean
