#ifndef HOLOCLEAN_DETECT_ERROR_DETECTOR_H_
#define HOLOCLEAN_DETECT_ERROR_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// Pluggable error-detection interface. HoloClean treats error detection as
/// a black box (paper Section 2.2): any detector produces a set of noisy
/// cells Dn, and the union over detectors splits D into Dn and Dc.
class ErrorDetector {
 public:
  virtual ~ErrorDetector() = default;

  /// Name for reports.
  virtual std::string name() const = 0;

  /// Flags potentially erroneous cells of the dataset's dirty table.
  virtual NoisyCells Detect(const Dataset& dataset) const = 0;
};

/// Runs a set of detectors and unions their outputs.
class DetectorSuite {
 public:
  void Add(std::unique_ptr<ErrorDetector> detector) {
    detectors_.push_back(std::move(detector));
  }

  NoisyCells Detect(const Dataset& dataset) const {
    NoisyCells all;
    for (const auto& d : detectors_) all.Merge(d->Detect(dataset));
    return all;
  }

  size_t size() const { return detectors_.size(); }

  /// Detector names in registration order (reports, fingerprints).
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(detectors_.size());
    for (const auto& d : detectors_) out.push_back(d->name());
    return out;
  }

 private:
  std::vector<std::unique_ptr<ErrorDetector>> detectors_;
};

/// Detector flagging cells that participate in denial-constraint violations.
class DcViolationDetector : public ErrorDetector {
 public:
  explicit DcViolationDetector(std::vector<DenialConstraint> dcs,
                               double sim_threshold = 0.8)
      : dcs_(std::move(dcs)), sim_threshold_(sim_threshold) {}

  std::string name() const override { return "dc-violations"; }
  NoisyCells Detect(const Dataset& dataset) const override;

 private:
  std::vector<DenialConstraint> dcs_;
  double sim_threshold_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_DETECT_ERROR_DETECTOR_H_
