#ifndef HOLOCLEAN_SERVE_CLIENT_H_
#define HOLOCLEAN_SERVE_CLIENT_H_

#include <string>
#include <utility>

#include "holoclean/serve/protocol.h"

namespace holoclean {
namespace serve {

/// A blocking client over one connection to a CleaningServer: frames a
/// Request, waits for the response frame, and hands it back parsed. Used
/// by the CLI client tool, the serving tests, and the micro_serve
/// benchmark — the same code path an external integration would write
/// against serve/protocol.h.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:port.
  static Result<Client> Connect(int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends a request and blocks for its response frame. The returned
  /// object is the full response envelope; "ok" false means the server
  /// rejected the request (the transport itself succeeded).
  Result<JsonValue> Call(const Request& request);

  /// Sends a pre-built frame (protocol testing: malformed ops, etc.).
  Result<JsonValue> CallRaw(const JsonValue& frame);

 private:
  int fd_ = -1;
};

}  // namespace serve
}  // namespace holoclean

#endif  // HOLOCLEAN_SERVE_CLIENT_H_
