#ifndef HOLOCLEAN_SERVE_CLIENT_H_
#define HOLOCLEAN_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "holoclean/serve/protocol.h"

namespace holoclean {
namespace serve {

/// Retry policy of CallWithRetry. Only idempotent-safe outcomes are ever
/// retried: an `overloaded` or `draining` rejection (the server said "not
/// now" without starting work), a failed connect, or a timeout before any
/// response byte arrived. A response that parsed — success or any other
/// error — and a timeout mid-response both mean the server may have done
/// the work, so they are final.
struct RetryOptions {
  int max_attempts = 4;
  int initial_backoff_ms = 50;
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 2000;
  /// Seed of the deterministic backoff jitter (each sleep is scaled by a
  /// uniform factor in [0.5, 1.0] so synchronized clients desynchronize).
  uint64_t jitter_seed = 1;
  /// Budget for all attempts and backoffs together; 0 = unlimited. Also
  /// forwarded per-attempt as the request's `deadline_ms` (min with any
  /// deadline already on the request), so the server stops queueing work
  /// the client has given up on.
  int64_t overall_deadline_ms = 0;
};

/// Outcome of CallWithRetry, with enough telemetry to assert on.
struct RetryResult {
  JsonValue response;  ///< The final response frame (when status is OK).
  int attempts = 0;    ///< Total attempts made (1 = no retry needed).
  int64_t backoff_ms = 0;  ///< Total milliseconds slept between attempts.
};

/// A blocking client over one connection to a CleaningServer: frames a
/// Request, waits for the response frame, and hands it back parsed. Used
/// by the CLI client tool, the serving tests, and the micro_serve
/// benchmark — the same code path an external integration would write
/// against serve/protocol.h.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept {
    Close();
    fd_ = other.fd_;
    timeout_ms_ = other.timeout_ms_;
    other.fd_ = -1;
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:port. `timeout_ms` bounds the connect itself
  /// and is then applied as the socket's read/write timeout (0 = fully
  /// blocking, the legacy behavior). The connect is poll-driven, so an
  /// EINTR mid-connect resumes instead of failing (connect(2) cannot
  /// simply be retried — the kernel keeps connecting underneath).
  static Result<Client> Connect(int port, int timeout_ms = 0);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends a request and blocks for its response frame. The returned
  /// object is the full response envelope; "ok" false means the server
  /// rejected the request (the transport itself succeeded).
  Result<JsonValue> Call(const Request& request);

  /// Sends a pre-built frame (protocol testing: malformed ops, etc.).
  Result<JsonValue> CallRaw(const JsonValue& frame);

  /// Call() with jittered-exponential-backoff retries of idempotent-safe
  /// failures (see RetryOptions), reconnecting to `port` per attempt as
  /// needed. Stamps each attempt's ordinal into the request's `attempt`
  /// field and propagates the remaining overall deadline as its
  /// `deadline_ms`. Uses this client's connection for the first attempt
  /// when already connected.
  Result<RetryResult> CallWithRetry(int port, const Request& request,
                                    const RetryOptions& retry);

 private:
  int fd_ = -1;
  int timeout_ms_ = 0;  ///< Socket timeout to re-apply on reconnects.
};

}  // namespace serve
}  // namespace holoclean

#endif  // HOLOCLEAN_SERVE_CLIENT_H_
