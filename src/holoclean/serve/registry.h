#ifndef HOLOCLEAN_SERVE_REGISTRY_H_
#define HOLOCLEAN_SERVE_REGISTRY_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"
#include "holoclean/storage/table.h"
#include "holoclean/util/status.h"

namespace holoclean {
namespace serve {

/// Validates a tenant or dataset name for use in registry keys, cache
/// keys, and spill/snapshot filenames: non-empty, at most 128 bytes, and
/// drawn from [A-Za-z0-9._-] (no '/', which is the key separator).
Status ValidateName(const std::string& name, const char* what);

/// The composite key "tenant/dataset" used by the registry, the Engine
/// session LRU, and drained-state filenames alike.
std::string RegistryKey(const std::string& tenant, const std::string& dataset);

/// The concurrent named-dataset catalog of the serving tier.
///
/// Each entry holds the immutable parse result of one registration: the
/// base table (never mutated — per-tenant working copies are cloned off it
/// with Table::CloneWithPrivateDictionary), the constraints parsed against
/// its schema, and the verbatim registration payloads (re-persisted by
/// drain so a restarted server re-parses the exact same bytes, which pins
/// dictionary value ids).
///
/// Lookups take a shared lock; registration and drop take it exclusively.
/// Entries are handed out as shared_ptr-to-const, so a drop never pulls
/// the data out from under an in-flight clean that already resolved it.
///
/// Registration order is kept as an explicit manifest (`List` returns it)
/// so every iteration — list_datasets responses, drain manifests, restart
/// replay — sees one deterministic order regardless of hash-map layout.
class DatasetRegistry {
 public:
  struct Entry {
    std::string tenant;
    std::string dataset;
    /// Verbatim registration payloads (drain re-persists these).
    std::string csv_text;
    std::string dc_text;
    /// Parsed, immutable base state.
    std::shared_ptr<const Table> base;
    std::shared_ptr<const std::vector<DenialConstraint>> dcs;
  };

  /// Parses and registers a dataset under (tenant, dataset). Returns
  /// kAlreadyExists when the name is taken, kInvalidArgument /
  /// kParseError on bad names or payloads. Parsing runs outside the lock.
  Status Register(const std::string& tenant, const std::string& dataset,
                  const std::string& csv_text, const std::string& dc_text);

  /// Removes the entry; kNotFound when absent. In-flight requests holding
  /// the entry keep it alive; new lookups miss immediately.
  Status Drop(const std::string& tenant, const std::string& dataset);

  /// Resolves an entry, or kNotFound.
  Result<std::shared_ptr<const Entry>> Find(const std::string& tenant,
                                            const std::string& dataset) const;

  /// Every live entry in registration order.
  std::vector<std::shared_ptr<const Entry>> List() const;

  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  /// Registration-ordered manifest; erased entries leave no hole.
  std::vector<std::shared_ptr<const Entry>> ordered_;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> by_key_;
};

}  // namespace serve
}  // namespace holoclean

#endif  // HOLOCLEAN_SERVE_REGISTRY_H_
