#ifndef HOLOCLEAN_SERVE_QUEUE_H_
#define HOLOCLEAN_SERVE_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "holoclean/serve/admission.h"
#include "holoclean/util/status.h"

namespace holoclean {
namespace serve {

/// Bounded waiting in front of AdmissionController.
struct QueueOptions {
  /// Max requests waiting for an admission slot across all tenants.
  /// 0 restores the pre-queue reject-only behavior: a request that cannot
  /// be admitted immediately bounces with `overloaded`.
  size_t max_depth = 64;
  /// Deadline applied when a request does not carry `deadline_ms`.
  int64_t default_deadline_ms = 30000;
  /// Server-side cap on client-supplied deadlines; a client asking for
  /// more is clamped down (a queue is not a parking lot). 0 = no cap.
  int64_t max_deadline_ms = 120000;
};

/// Deadline-aware bounded request queue wrapping AdmissionController.
///
/// Admission is still the only source of execution slots; the queue adds
/// bounded, fair, deadline-bounded *waiting* for one. Acquire() first
/// tries a direct Admit (skipped while the tenant already has waiters, so
/// arrival order within a tenant is FIFO); on `overloaded` it parks the
/// calling connection thread in a per-tenant FIFO lane. When a Ticket is
/// released the queue hands the freed slot to the head of the next lane
/// in round-robin tenant order — one busy tenant cannot starve the rest —
/// skipping (and failing with `deadline_exceeded`) any waiter whose
/// deadline passed while it was parked.
///
/// Deadline checks happen at every stage: before enqueue (an
/// already-expired request never waits), while parked (wait_until the
/// deadline), at grant time, and by the caller again after dequeue
/// (post-dequeue expiry — the grant raced the deadline). A full queue is
/// not a deadline problem, so it keeps today's `overloaded` contract.
///
/// Close() fails all parked waiters and makes later Acquire() calls
/// non-blocking (direct Admit or reject), so Stop()/Drain() can join
/// connection threads without a waiter deadlocking the shutdown.
class RequestQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// Counters for explain_status; a snapshot, not a transaction.
  struct Stats {
    uint64_t enqueued = 0;           ///< Requests that had to wait.
    uint64_t granted_after_wait = 0; ///< Waiters that got a slot.
    uint64_t rejected_full = 0;      ///< Bounced on queue depth.
    uint64_t expired_in_queue = 0;   ///< Deadline passed while parked.
    uint64_t cancelled = 0;          ///< Failed by Close().
    size_t depth = 0;                ///< Waiters parked right now.
  };

  RequestQueue(QueueOptions options, AdmissionController* admission)
      : options_(options), admission_(admission) {}

  /// Resolves a request's wire-supplied deadline (`requested_ms`, <= 0
  /// meaning "not set") against the default and cap into an absolute
  /// deadline.
  Clock::time_point DeadlineFor(int64_t requested_ms) const;

  /// Blocks until an admission ticket for `tenant` is granted, the
  /// deadline passes (`deadline_exceeded`), the queue is full at arrival
  /// (`overloaded`), or the queue is closed (the Close reason). The
  /// caller must re-check the deadline after any long post-dequeue step.
  Result<AdmissionController::Ticket> Acquire(const std::string& tenant,
                                              Clock::time_point deadline);

  /// Fails every parked waiter with `reason` and disables waiting for
  /// later arrivals (they fall back to direct Admit-or-reject). Called on
  /// Drain()/Stop(); idempotent.
  void Close(Status reason);

  /// Called when a granted ticket is released: runs one grant pass so
  /// the freed slot goes to a parked waiter instead of the next arrival.
  void OnTicketReleased();

  Stats stats() const;
  const QueueOptions& options() const { return options_; }

 private:
  struct Waiter {
    std::string tenant;
    Clock::time_point deadline;
    std::condition_variable cv;
    bool granted = false;    ///< A released slot was handed to us.
    bool failed = false;     ///< Expired or cancelled; `status` says why.
    Status status;
    AdmissionController::Ticket ticket;  ///< Valid when granted.
  };

  /// Hands the one freed admission slot to the first live waiter in
  /// round-robin tenant order, expiring dead ones along the way.
  /// Requires mu_ held.
  void GrantNextLocked();

  /// Removes `waiter` from its lane. Requires mu_ held.
  void RemoveLocked(Waiter* waiter);

  QueueOptions options_;
  AdmissionController* admission_;

  mutable std::mutex mu_;
  /// Per-tenant FIFO lanes (ordered map: deterministic round-robin).
  std::map<std::string, std::deque<Waiter*>> lanes_;
  /// Tenant after which the round-robin scan resumes.
  std::string cursor_;
  size_t depth_ = 0;
  bool closed_ = false;
  Status close_reason_;
  Stats stats_;
};

/// Scoped hook: the server wraps each granted Ticket so its release
/// re-runs the queue's grant pass (the controller itself has no idea the
/// queue exists).
class QueuedTicket {
 public:
  QueuedTicket() = default;
  QueuedTicket(AdmissionController::Ticket ticket, RequestQueue* queue)
      : ticket_(std::move(ticket)), queue_(queue) {}
  QueuedTicket(QueuedTicket&& other) noexcept { *this = std::move(other); }
  QueuedTicket& operator=(QueuedTicket&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      ticket_ = std::move(other.ticket_);
      queue_ = other.queue_;
      other.queue_ = nullptr;
    }
    return *this;
  }
  QueuedTicket(const QueuedTicket&) = delete;
  QueuedTicket& operator=(const QueuedTicket&) = delete;
  ~QueuedTicket() { ReleaseNow(); }

 private:
  void ReleaseNow();

  AdmissionController::Ticket ticket_;
  RequestQueue* queue_ = nullptr;
};

}  // namespace serve
}  // namespace holoclean

#endif  // HOLOCLEAN_SERVE_QUEUE_H_
