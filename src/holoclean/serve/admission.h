#ifndef HOLOCLEAN_SERVE_ADMISSION_H_
#define HOLOCLEAN_SERVE_ADMISSION_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "holoclean/util/status.h"

namespace holoclean {
namespace serve {

/// Load-shedding bounds of the serving tier.
struct AdmissionOptions {
  /// Max cleaning requests one tenant may have in flight; beyond it the
  /// tenant's own requests bounce with `overloaded` while every other
  /// tenant keeps full service (per-tenant isolation).
  size_t per_tenant_inflight = 4;
  /// Max cleaning requests in flight across all tenants — the global
  /// backpressure bound protecting the engine's pool and memory.
  size_t global_inflight = 16;
};

/// Counting admission controller: requests take a Ticket up front and the
/// slot frees when the Ticket dies (RAII, so an early error return can
/// never leak a slot and slowly strangle a tenant).
///
/// Deliberately quota-only — this layer never queues. Bounded waiting with
/// per-request deadlines lives one layer up in `RequestQueue`
/// (serve/queue.h), which wraps Admit() so waiters time out visibly
/// (`deadline_exceeded`) instead of backlogging invisibly; with the queue
/// disabled a rejected request still gets a clean `overloaded` response
/// immediately.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      tenant_ = std::move(other.tenant_);
      other.controller_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release();

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, std::string tenant)
        : controller_(controller), tenant_(std::move(tenant)) {}

    AdmissionController* controller_ = nullptr;
    std::string tenant_;
  };

  /// Admits one request for `tenant`, or rejects with kOutOfRange (the
  /// wire's `overloaded`) naming the exhausted bound.
  Result<Ticket> Admit(const std::string& tenant);

  size_t inflight(const std::string& tenant) const;
  size_t total_inflight() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  void Release(const std::string& tenant);

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, size_t> per_tenant_;
  size_t total_ = 0;
};

}  // namespace serve
}  // namespace holoclean

#endif  // HOLOCLEAN_SERVE_ADMISSION_H_
