#include "holoclean/serve/registry.h"

#include <mutex>

#include "holoclean/constraints/parser.h"
#include "holoclean/util/csv.h"

namespace holoclean {
namespace serve {

Status ValidateName(const std::string& name, const char* what) {
  if (name.empty()) {
    return Status::InvalidArgument(std::string(what) + " must not be empty");
  }
  if (name.size() > 128) {
    return Status::InvalidArgument(std::string(what) + " exceeds 128 bytes");
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      return Status::InvalidArgument(std::string(what) + " \"" + name +
                                     "\" has characters outside [A-Za-z0-9._-]");
    }
  }
  return Status::OK();
}

std::string RegistryKey(const std::string& tenant,
                        const std::string& dataset) {
  return tenant + "/" + dataset;
}

Status DatasetRegistry::Register(const std::string& tenant,
                                 const std::string& dataset,
                                 const std::string& csv_text,
                                 const std::string& dc_text) {
  HOLO_RETURN_NOT_OK(ValidateName(tenant, "tenant"));
  HOLO_RETURN_NOT_OK(ValidateName(dataset, "dataset name"));

  // Parse outside the lock: registration payloads can be large, and a slow
  // parse must not stall concurrent lookups.
  HOLO_ASSIGN_OR_RETURN(doc, ParseCsv(csv_text));
  HOLO_ASSIGN_OR_RETURN(table, Table::FromCsv(doc));
  HOLO_ASSIGN_OR_RETURN(dcs, ParseDenialConstraints(dc_text, table.schema()));
  if (dcs.empty()) {
    return Status::InvalidArgument(
        "registration needs at least one denial constraint");
  }

  auto entry = std::make_shared<Entry>();
  entry->tenant = tenant;
  entry->dataset = dataset;
  entry->csv_text = csv_text;
  entry->dc_text = dc_text;
  entry->base = std::make_shared<const Table>(std::move(table));
  entry->dcs =
      std::make_shared<const std::vector<DenialConstraint>>(std::move(dcs));

  const std::string key = RegistryKey(tenant, dataset);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (by_key_.count(key) > 0) {
    return Status::AlreadyExists("dataset \"" + key +
                                 "\" is already registered");
  }
  by_key_.emplace(key, entry);
  ordered_.push_back(std::move(entry));
  return Status::OK();
}

Status DatasetRegistry::Drop(const std::string& tenant,
                             const std::string& dataset) {
  const std::string key = RegistryKey(tenant, dataset);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::NotFound("dataset \"" + key + "\" is not registered");
  }
  const Entry* raw = it->second.get();
  by_key_.erase(it);
  for (auto ot = ordered_.begin(); ot != ordered_.end(); ++ot) {
    if (ot->get() == raw) {
      ordered_.erase(ot);
      break;
    }
  }
  return Status::OK();
}

Result<std::shared_ptr<const DatasetRegistry::Entry>> DatasetRegistry::Find(
    const std::string& tenant, const std::string& dataset) const {
  const std::string key = RegistryKey(tenant, dataset);
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::NotFound("dataset \"" + key + "\" is not registered");
  }
  return it->second;
}

std::vector<std::shared_ptr<const DatasetRegistry::Entry>>
DatasetRegistry::List() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ordered_;
}

size_t DatasetRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_key_.size();
}

}  // namespace serve
}  // namespace holoclean
