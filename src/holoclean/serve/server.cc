#include "holoclean/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "holoclean/io/report_json.h"
#include "holoclean/stream/stream_session.h"
#include "holoclean/util/failpoint.h"
#include "holoclean/util/logging.h"

namespace holoclean {
namespace serve {

namespace {

Status ReadFileText(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("read error on " + path);
  return Status::OK();
}

Status WriteFileText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create " + path + ": " +
                            std::strerror(errno));
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  bool bad = std::fclose(f) != 0 || written != text.size();
  if (bad) return Status::Internal("short write on " + path);
  return Status::OK();
}

/// Full-fidelity config serialization for the drain manifest: every knob,
/// including those the wire's ApplyConfigOverrides does not expose, so a
/// restored session reopens under the exact config fingerprint its
/// snapshot was saved with.
JsonValue ConfigToJson(const HoloCleanConfig& c) {
  JsonValue j = JsonValue::Object();
  j.Set("tau", JsonValue::Number(c.tau));
  j.Set("max_candidates", JsonValue::Number(static_cast<uint64_t>(c.max_candidates)));
  j.Set("dc_mode", JsonValue::Number(static_cast<int>(c.dc_mode)));
  j.Set("partitioning", JsonValue::Bool(c.partitioning));
  j.Set("dc_factor_weight", JsonValue::Number(c.dc_factor_weight));
  j.Set("minimality_weight", JsonValue::Number(c.minimality_weight));
  j.Set("sim_threshold", JsonValue::Number(c.sim_threshold));
  j.Set("source_trust_scale", JsonValue::Number(c.source_trust_scale));
  j.Set("stats_prior_weight", JsonValue::Number(c.stats_prior_weight));
  j.Set("freq_prior_weight", JsonValue::Number(c.freq_prior_weight));
  j.Set("dc_violation_init", JsonValue::Number(c.dc_violation_init));
  j.Set("ext_dict_init", JsonValue::Number(c.ext_dict_init));
  j.Set("support_prior", JsonValue::Number(c.support_prior));
  j.Set("epochs", JsonValue::Number(c.epochs));
  j.Set("learning_rate", JsonValue::Number(c.learning_rate));
  j.Set("lr_decay", JsonValue::Number(c.lr_decay));
  j.Set("l2", JsonValue::Number(c.l2));
  j.Set("max_training_cells", JsonValue::Number(static_cast<uint64_t>(c.max_training_cells)));
  j.Set("gibbs_burn_in", JsonValue::Number(c.gibbs_burn_in));
  j.Set("gibbs_samples", JsonValue::Number(c.gibbs_samples));
  j.Set("compiled_kernel", JsonValue::Bool(c.compiled_kernel));
  j.Set("dc_table_cap", JsonValue::Number(static_cast<uint64_t>(c.dc_table_cap)));
  j.Set("columnar", JsonValue::Bool(c.columnar));
  j.Set("seed", JsonValue::Number(static_cast<uint64_t>(c.seed)));
  j.Set("num_threads", JsonValue::Number(static_cast<uint64_t>(c.num_threads)));
  return j;
}

HoloCleanConfig ConfigFromJson(const JsonValue& j) {
  HoloCleanConfig c;
  c.tau = j.GetDouble("tau", c.tau);
  c.max_candidates = static_cast<size_t>(
      j.GetInt("max_candidates", static_cast<int64_t>(c.max_candidates)));
  c.dc_mode = static_cast<DcMode>(
      j.GetInt("dc_mode", static_cast<int64_t>(c.dc_mode)));
  c.partitioning = j.GetBool("partitioning", c.partitioning);
  c.dc_factor_weight = j.GetDouble("dc_factor_weight", c.dc_factor_weight);
  c.minimality_weight = j.GetDouble("minimality_weight", c.minimality_weight);
  c.sim_threshold = j.GetDouble("sim_threshold", c.sim_threshold);
  c.source_trust_scale =
      j.GetDouble("source_trust_scale", c.source_trust_scale);
  c.stats_prior_weight =
      j.GetDouble("stats_prior_weight", c.stats_prior_weight);
  c.freq_prior_weight = j.GetDouble("freq_prior_weight", c.freq_prior_weight);
  c.dc_violation_init = j.GetDouble("dc_violation_init", c.dc_violation_init);
  c.ext_dict_init = j.GetDouble("ext_dict_init", c.ext_dict_init);
  c.support_prior = j.GetDouble("support_prior", c.support_prior);
  c.epochs = static_cast<int>(j.GetInt("epochs", c.epochs));
  c.learning_rate = j.GetDouble("learning_rate", c.learning_rate);
  c.lr_decay = j.GetDouble("lr_decay", c.lr_decay);
  c.l2 = j.GetDouble("l2", c.l2);
  c.max_training_cells = static_cast<size_t>(j.GetInt(
      "max_training_cells", static_cast<int64_t>(c.max_training_cells)));
  c.gibbs_burn_in = static_cast<int>(j.GetInt("gibbs_burn_in", c.gibbs_burn_in));
  c.gibbs_samples = static_cast<int>(j.GetInt("gibbs_samples", c.gibbs_samples));
  c.compiled_kernel = j.GetBool("compiled_kernel", c.compiled_kernel);
  c.dc_table_cap = static_cast<size_t>(
      j.GetInt("dc_table_cap", static_cast<int64_t>(c.dc_table_cap)));
  c.columnar = j.GetBool("columnar", c.columnar);
  c.seed = static_cast<uint64_t>(j.GetInt("seed", static_cast<int64_t>(c.seed)));
  c.num_threads = static_cast<size_t>(
      j.GetInt("num_threads", static_cast<int64_t>(c.num_threads)));
  return c;
}

/// Snapshot filename for a drained session ("/" is the key separator, so
/// "tenant--dataset" is collision-free for validated names).
std::string SessionSnapshotName(const std::string& tenant,
                                const std::string& dataset) {
  return "session-" + tenant + "--" + dataset + ".snapshot";
}

EngineOptions MakeEngineOptions(const ServerOptions& options) {
  EngineOptions eo;
  eo.num_threads = options.engine_threads;
  eo.session_cache_capacity = options.session_cache_capacity;
  eo.spill_directory = options.spill_directory;
  return eo;
}

}  // namespace

CleaningServer::CleaningServer(ServerOptions options)
    : options_(std::move(options)),
      engine_(MakeEngineOptions(options_)),
      admission_(options_.admission),
      queue_(options_.queue, &admission_) {
  if (!options_.failpoint_profile.empty()) {
    Status st = Failpoints::Global().Configure(options_.failpoint_profile);
    if (!st.ok()) {
      HOLO_LOG(kWarning) << "ignoring failpoint profile: " << st;
    }
  }
}

CleaningServer::~CleaningServer() { Stop(); }

// --- Slots -------------------------------------------------------------------

std::shared_ptr<CleaningServer::TenantSlot> CleaningServer::GetOrCreateSlot(
    const std::shared_ptr<const DatasetRegistry::Entry>& entry) {
  const std::string key = RegistryKey(entry->tenant, entry->dataset);
  std::lock_guard<std::mutex> lock(slots_mu_);
  auto it = slots_.find(key);
  if (it != slots_.end()) return it->second;
  auto slot = std::make_shared<TenantSlot>();
  slot->dataset = std::make_shared<Dataset>(
      entry->base->CloneWithPrivateDictionary());
  slot->dcs = entry->dcs;
  slot->config = options_.default_config;
  slots_.emplace(key, slot);
  return slot;
}

void CleaningServer::DropSlot(const std::string& key) {
  std::lock_guard<std::mutex> lock(slots_mu_);
  slots_.erase(key);
}

// --- Request dispatch --------------------------------------------------------

JsonValue CleaningServer::Handle(const JsonValue& request_frame) {
  Result<Request> req = Request::FromJson(request_frame);
  if (!req.ok()) return ErrorResponse(req.status());
  return Dispatch(req.value());
}

JsonValue CleaningServer::Dispatch(const Request& req) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  if (req.attempt > 0) {
    retried_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  JsonValue response = [&] {
    Status injected = HOLO_FAILPOINT("serve.dispatch");
    if (!injected.ok()) return ErrorResponse(injected);
    switch (req.op) {
      case Op::kRegisterDataset:
        return DoRegister(req);
      case Op::kDropDataset:
        return DoDrop(req);
      case Op::kListDatasets:
        return DoList(req);
      case Op::kClean:
        return DoClean(req);
      case Op::kFeedback:
        return DoFeedback(req);
      case Op::kAppendRows:
        return DoAppendRows(req);
      case Op::kExplainStatus:
        return DoExplainStatus(req);
    }
    return ErrorResponse(Status::Internal("unhandled op"));
  }();
  CountResponse(response);
  return response;
}

void CleaningServer::CountResponse(const JsonValue& response) {
  if (response.GetBool("ok")) {
    ok_total_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::string code = response.GetString("error");
  if (code.empty()) code = "internal";
  std::lock_guard<std::mutex> lock(stats_mu_);
  error_counts_[code]++;
}

JsonValue CleaningServer::DoRegister(const Request& req) {
  if (draining_.load()) {
    return ErrorResponse(Status::OutOfRange("draining: server is draining"));
  }
  Status st =
      registry_.Register(req.tenant, req.dataset, req.csv_text, req.dc_text);
  if (!st.ok()) return ErrorResponse(st);
  auto entry = registry_.Find(req.tenant, req.dataset);
  if (!entry.ok()) return ErrorResponse(entry.status());
  // Fold the dataset's vocabulary into the engine's dictionary arena, so
  // engine-stamped dictionaries share its value-id prefix.
  engine_.SeedDictionary(entry.value()->base->dict());
  JsonValue resp = OkResponse();
  resp.Set("rows", JsonValue::Number(
                       static_cast<uint64_t>(entry.value()->base->num_rows())));
  resp.Set("attrs",
           JsonValue::Number(static_cast<uint64_t>(
               entry.value()->base->schema().num_attrs())));
  resp.Set("num_dcs", JsonValue::Number(
                          static_cast<uint64_t>(entry.value()->dcs->size())));
  return resp;
}

JsonValue CleaningServer::DoDrop(const Request& req) {
  Status st = registry_.Drop(req.tenant, req.dataset);
  if (!st.ok()) return ErrorResponse(st);
  const std::string key = RegistryKey(req.tenant, req.dataset);
  // Discard any warm state for the dropped instance.
  engine_.TakeCachedSession(key);
  DropSlot(key);
  return OkResponse();
}

JsonValue CleaningServer::DoList(const Request& req) {
  JsonValue datasets = JsonValue::Array();
  for (const auto& entry : registry_.List()) {
    // A tenant-scoped list when the request names a tenant; the full
    // catalog otherwise (ops/debugging view).
    if (!req.tenant.empty() && entry->tenant != req.tenant) continue;
    JsonValue d = JsonValue::Object();
    d.Set("tenant", JsonValue::String(entry->tenant));
    d.Set("dataset", JsonValue::String(entry->dataset));
    d.Set("rows",
          JsonValue::Number(static_cast<uint64_t>(entry->base->num_rows())));
    d.Set("num_dcs",
          JsonValue::Number(static_cast<uint64_t>(entry->dcs->size())));
    d.Set("warm", JsonValue::Bool(engine_.HasCachedSession(
                      RegistryKey(entry->tenant, entry->dataset))));
    datasets.Append(std::move(d));
  }
  JsonValue resp = OkResponse();
  resp.Set("datasets", std::move(datasets));
  return resp;
}

JsonValue CleaningServer::DoClean(const Request& req) {
  if (draining_.load()) {
    return ErrorResponse(Status::OutOfRange("draining: server is draining"));
  }
  const RequestQueue::Clock::time_point deadline =
      queue_.DeadlineFor(req.deadline_ms);
  Result<AdmissionController::Ticket> acquired =
      queue_.Acquire(req.tenant, deadline);
  if (!acquired.ok()) return ErrorResponse(acquired.status());
  // Wrapping the ticket routes its release back through the queue, so the
  // freed slot goes to the longest-parked waiter, not the next arrival.
  QueuedTicket ticket(std::move(acquired).value(), &queue_);

  Result<std::shared_ptr<const DatasetRegistry::Entry>> entry =
      registry_.Find(req.tenant, req.dataset);
  if (!entry.ok()) return ErrorResponse(entry.status());

  HoloCleanConfig config = options_.default_config;
  Status st = ApplyConfigOverrides(req.config_overrides, &config);
  if (!st.ok()) return ErrorResponse(st);

  const std::string key = RegistryKey(req.tenant, req.dataset);
  std::shared_ptr<TenantSlot> slot = GetOrCreateSlot(entry.value());

  // One request at a time per (tenant, dataset): concurrent jobs must not
  // share a Dataset object. Distinct slots proceed concurrently.
  // serve.queue.dispatch models anything slow between grant and execution
  // (tests pin the post-dequeue expiry path with a delay here).
  st = HOLO_FAILPOINT("serve.queue.dispatch");
  if (!st.ok()) return ErrorResponse(st);
  std::lock_guard<std::mutex> slot_lock(slot->mu);
  if (RequestQueue::Clock::now() >= deadline) {
    // The deadline can pass after the queue granted a slot — the grant
    // raced the timer, or the slot-serialization wait ate the rest of the
    // budget. Reject before starting work nobody is waiting for.
    return ErrorResponse(
        DeadlineExceeded("request deadline passed after dequeue, before "
                         "execution"));
  }
  const bool was_warm = engine_.HasCachedSession(key);
  const bool was_spilled = engine_.HasSpilledSession(key);

  SessionOptions session_options;
  session_options.config = config;
  session_options.cache_key = key;
  std::future<Result<Report>> job = engine_.Submit(
      CleaningInputs::Owned(slot->dataset, slot->dcs), session_options);
  Result<Report> report = job.get();
  if (!report.ok()) return ErrorResponse(report.status());

  slot->config = config;
  slot->has_run = true;

  JsonValue resp = OkResponse();
  resp.Set("warm", JsonValue::Bool(was_warm));
  resp.Set("restored_from_spill",
           JsonValue::Bool(!was_warm && was_spilled));
  resp.Set("report", ReportToJson(report.value(), slot->dataset->dirty()));
  return resp;
}

JsonValue CleaningServer::DoFeedback(const Request& req) {
  if (draining_.load()) {
    return ErrorResponse(Status::OutOfRange("draining: server is draining"));
  }
  if (req.cell_tid < 0 || req.cell_attr.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("feedback needs a \"cell\" object"));
  }
  const RequestQueue::Clock::time_point deadline =
      queue_.DeadlineFor(req.deadline_ms);
  Result<AdmissionController::Ticket> acquired =
      queue_.Acquire(req.tenant, deadline);
  if (!acquired.ok()) return ErrorResponse(acquired.status());
  QueuedTicket ticket(std::move(acquired).value(), &queue_);

  Result<std::shared_ptr<const DatasetRegistry::Entry>> entry =
      registry_.Find(req.tenant, req.dataset);
  if (!entry.ok()) return ErrorResponse(entry.status());

  const std::string key = RegistryKey(req.tenant, req.dataset);
  std::shared_ptr<TenantSlot> slot = GetOrCreateSlot(entry.value());
  Status queue_st = HOLO_FAILPOINT("serve.queue.dispatch");
  if (!queue_st.ok()) return ErrorResponse(queue_st);
  std::lock_guard<std::mutex> slot_lock(slot->mu);
  if (RequestQueue::Clock::now() >= deadline) {
    return ErrorResponse(
        DeadlineExceeded("request deadline passed after dequeue, before "
                         "execution"));
  }

  Table& dirty = slot->dataset->dirty();
  AttrId attr = dirty.schema().IndexOf(req.cell_attr);
  if (attr < 0) {
    return ErrorResponse(Status::NotFound("no attribute \"" + req.cell_attr +
                                          "\" in dataset \"" + key + "\""));
  }
  if (req.cell_tid >= static_cast<int64_t>(dirty.num_rows())) {
    return ErrorResponse(Status::OutOfRange(
        "tid " + std::to_string(req.cell_tid) + " is past " +
        std::to_string(dirty.num_rows()) + " rows"));
  }

  HoloCleanConfig config = slot->has_run ? slot->config
                                         : options_.default_config;
  Status st = ApplyConfigOverrides(req.config_overrides, &config);
  if (!st.ok()) return ErrorResponse(st);

  // Reuse the warm parked session (or its spilled snapshot) when there is
  // one; open cold otherwise. The pin invalidates from compile, so a warm
  // session re-runs only the suffix.
  SessionOptions session_options;
  session_options.config = config;
  session_options.cache_key = key;
  Result<Session> session = engine_.OpenSession(
      CleaningInputs::Owned(slot->dataset, slot->dcs), session_options);
  if (!session.ok()) return ErrorResponse(session.status());

  CellRef cell{static_cast<TupleId>(req.cell_tid), attr};
  session.value().PinCell(cell, dirty.dict().Intern(req.cell_value));
  Result<Report> report = session.value().Run();
  if (!report.ok()) return ErrorResponse(report.status());

  JsonValue resp = OkResponse();
  resp.Set("report", ReportToJson(report.value(), dirty));
  slot->config = config;
  slot->has_run = true;
  engine_.CacheSession(key, std::move(session).value());
  return resp;
}

JsonValue CleaningServer::DoAppendRows(const Request& req) {
  if (draining_.load()) {
    return ErrorResponse(Status::OutOfRange("draining: server is draining"));
  }
  if (req.rows.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("append_rows needs a non-empty \"rows\""));
  }
  const RequestQueue::Clock::time_point deadline =
      queue_.DeadlineFor(req.deadline_ms);
  Result<AdmissionController::Ticket> acquired =
      queue_.Acquire(req.tenant, deadline);
  if (!acquired.ok()) return ErrorResponse(acquired.status());
  QueuedTicket ticket(std::move(acquired).value(), &queue_);

  Result<std::shared_ptr<const DatasetRegistry::Entry>> entry =
      registry_.Find(req.tenant, req.dataset);
  if (!entry.ok()) return ErrorResponse(entry.status());

  const std::string key = RegistryKey(req.tenant, req.dataset);
  std::shared_ptr<TenantSlot> slot = GetOrCreateSlot(entry.value());
  Status queue_st = HOLO_FAILPOINT("serve.queue.dispatch");
  if (!queue_st.ok()) return ErrorResponse(queue_st);
  std::lock_guard<std::mutex> slot_lock(slot->mu);
  if (RequestQueue::Clock::now() >= deadline) {
    return ErrorResponse(
        DeadlineExceeded("request deadline passed after dequeue, before "
                         "execution"));
  }

  HoloCleanConfig config = slot->has_run ? slot->config
                                         : options_.default_config;
  Status st = ApplyConfigOverrides(req.config_overrides, &config);
  if (!st.ok()) return ErrorResponse(st);

  // Reuse the warm parked session (or its spilled snapshot) when there is
  // one; open cold otherwise. The stream layer delta-detects only the
  // blocks the new rows touch, then — serving exact mode — re-runs the
  // model stages, so repairs are bit-identical to a from-scratch clean of
  // the grown table.
  SessionOptions session_options;
  session_options.config = config;
  session_options.cache_key = key;
  Result<Session> session = engine_.OpenSession(
      CleaningInputs::Owned(slot->dataset, slot->dcs), session_options);
  if (!session.ok()) return ErrorResponse(session.status());

  StreamOptions stream_options;
  stream_options.mode = StreamMode::kExact;
  StreamSession stream(&session.value(), stream_options);
  Result<Report> report = stream.AppendRows(req.rows);
  if (!report.ok()) return ErrorResponse(report.status());

  const StreamStats& stats = stream.stats();
  slot->stream_appended_rows += stats.appended_rows;
  slot->stream_batches += stats.batches;
  slot->stream_compactions += stats.compactions;
  slot->stream_last_batch_seconds = stats.last_batch.total_seconds;

  JsonValue resp = OkResponse();
  resp.Set("appended", JsonValue::Number(
                           static_cast<uint64_t>(stats.appended_rows)));
  resp.Set("rows",
           JsonValue::Number(
               static_cast<uint64_t>(slot->dataset->dirty().num_rows())));
  resp.Set("report", ReportToJson(report.value(), slot->dataset->dirty()));
  slot->config = config;
  slot->has_run = true;
  engine_.CacheSession(key, std::move(session).value());
  return resp;
}

JsonValue CleaningServer::ServerStatusJson() {
  JsonValue server = JsonValue::Object();
  server.Set("draining", JsonValue::Bool(draining_.load()));
  server.Set("requests_total",
             JsonValue::Number(requests_total_.load()));
  server.Set("ok_total", JsonValue::Number(ok_total_.load()));
  server.Set("retried_requests",
             JsonValue::Number(retried_requests_.load()));
  server.Set("socket_timeouts",
             JsonValue::Number(socket_timeouts_.load()));
  server.Set("global_inflight",
             JsonValue::Number(
                 static_cast<uint64_t>(admission_.total_inflight())));

  RequestQueue::Stats qs = queue_.stats();
  JsonValue queue = JsonValue::Object();
  queue.Set("depth", JsonValue::Number(static_cast<uint64_t>(qs.depth)));
  queue.Set("max_depth",
            JsonValue::Number(
                static_cast<uint64_t>(queue_.options().max_depth)));
  queue.Set("enqueued", JsonValue::Number(qs.enqueued));
  queue.Set("granted_after_wait", JsonValue::Number(qs.granted_after_wait));
  queue.Set("rejected_full", JsonValue::Number(qs.rejected_full));
  queue.Set("expired_in_queue", JsonValue::Number(qs.expired_in_queue));
  queue.Set("cancelled", JsonValue::Number(qs.cancelled));
  server.Set("queue", std::move(queue));

  JsonValue errors = JsonValue::Object();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (const auto& [code, count] : error_counts_) {
      errors.Set(code, JsonValue::Number(count));
    }
  }
  server.Set("errors", std::move(errors));
  return server;
}

JsonValue CleaningServer::DoExplainStatus(const Request& req) {
  // Without a (tenant, dataset) target the op reports server-wide health
  // only — the ops view a load balancer or smoke test polls.
  if (req.tenant.empty() && req.dataset.empty()) {
    JsonValue resp = OkResponse();
    resp.Set("server", ServerStatusJson());
    return resp;
  }
  Result<std::shared_ptr<const DatasetRegistry::Entry>> entry =
      registry_.Find(req.tenant, req.dataset);
  if (!entry.ok()) return ErrorResponse(entry.status());

  const std::string key = RegistryKey(req.tenant, req.dataset);
  JsonValue resp = OkResponse();
  resp.Set("rows", JsonValue::Number(
                       static_cast<uint64_t>(entry.value()->base->num_rows())));
  resp.Set("attrs",
           JsonValue::Number(static_cast<uint64_t>(
               entry.value()->base->schema().num_attrs())));
  resp.Set("num_dcs", JsonValue::Number(
                          static_cast<uint64_t>(entry.value()->dcs->size())));
  resp.Set("warm", JsonValue::Bool(engine_.HasCachedSession(key)));
  resp.Set("spilled", JsonValue::Bool(engine_.HasSpilledSession(key)));
  resp.Set("tenant_inflight",
           JsonValue::Number(
               static_cast<uint64_t>(admission_.inflight(req.tenant))));
  resp.Set("draining", JsonValue::Bool(draining_.load()));
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    auto it = slots_.find(key);
    bool has_run = false;
    JsonValue stream = JsonValue::Object();
    stream.Set("appended_rows", JsonValue::Number(uint64_t{0}));
    stream.Set("batches", JsonValue::Number(uint64_t{0}));
    stream.Set("compactions", JsonValue::Number(uint64_t{0}));
    stream.Set("last_batch_seconds", JsonValue::Number(0.0));
    if (it != slots_.end()) {
      std::lock_guard<std::mutex> slot_lock(it->second->mu);
      has_run = it->second->has_run;
      stream.Set("appended_rows",
                 JsonValue::Number(static_cast<uint64_t>(
                     it->second->stream_appended_rows)));
      stream.Set("batches", JsonValue::Number(static_cast<uint64_t>(
                                it->second->stream_batches)));
      stream.Set("compactions",
                 JsonValue::Number(static_cast<uint64_t>(
                     it->second->stream_compactions)));
      stream.Set("last_batch_seconds",
                 JsonValue::Number(it->second->stream_last_batch_seconds));
    }
    resp.Set("has_run", JsonValue::Bool(has_run));
    resp.Set("stream", std::move(stream));
  }
  resp.Set("server", ServerStatusJson());
  return resp;
}

// --- TCP front end -----------------------------------------------------------

Status CleaningServer::Start() {
  if (listen_fd_ >= 0) return Status::InvalidArgument("already started");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void CleaningServer::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (or unrecoverable): stop accepting.
    }
    if (!HOLO_FAILPOINT("serve.accept").ok()) {
      // An injected accept failure drops this connection on the floor —
      // the client sees a reset, the server keeps serving everyone else.
      ::close(fd);
      continue;
    }
    if (options_.socket_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.socket_timeout_ms / 1000;
      tv.tv_usec = (options_.socket_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void CleaningServer::ServeConnection(int fd) {
  for (;;) {
    Result<JsonValue> frame = ReadFrame(fd);
    if (!frame.ok()) {
      if (IsTimeout(frame.status())) {
        socket_timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      // Clean close (kNotFound) and idle timeouts end the connection
      // silently — nothing was in flight, the client may reconnect. A
      // framing error, socket error, or mid-frame timeout gets one
      // best-effort error frame first; the stream is out of sync, so the
      // connection cannot continue either way.
      if (frame.status().code() != StatusCode::kNotFound &&
          !IsIdleTimeout(frame.status())) {
        WriteFrame(fd, ErrorResponse(frame.status()));
      }
      break;
    }
    JsonValue response = Handle(frame.value());
    Status wrote = WriteFrame(fd, response);
    if (!wrote.ok()) {
      if (IsTimeout(wrote)) {
        socket_timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
}

void CleaningServer::Stop() {
  if (stopping_.exchange(true)) {
    // A second Stop still waits for threads the first one may be joining.
  }
  // Fail queued waiters before joining connection threads: a request
  // parked in the queue IS a blocked connection thread, and joining it
  // without waking it would deadlock the shutdown.
  queue_.Close(Status::OutOfRange(
      draining_.load() ? "draining: server is draining"
                       : "draining: server is stopping"));
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // Wakes the blocked accept().
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> threads;
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
    fds.swap(conn_fds_);
  }
  // SHUT_RD pops idle connections out of their blocking read while letting
  // an in-flight response finish writing.
  for (int fd : fds) ::shutdown(fd, SHUT_RD);
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  for (int fd : fds) ::close(fd);
}

// --- Drain / restore ---------------------------------------------------------

Status CleaningServer::Drain() {
  draining_.store(true);
  Stop();
  if (options_.state_directory.empty()) return Status::OK();

  JsonValue manifest = JsonValue::Object();
  manifest.Set("version", JsonValue::Number(kProtocolVersion));

  JsonValue datasets = JsonValue::Array();
  for (const auto& entry : registry_.List()) {
    JsonValue d = JsonValue::Object();
    d.Set("tenant", JsonValue::String(entry->tenant));
    d.Set("dataset", JsonValue::String(entry->dataset));
    d.Set("csv", JsonValue::String(entry->csv_text));
    d.Set("constraints", JsonValue::String(entry->dc_text));
    datasets.Append(std::move(d));
  }
  manifest.Set("datasets", std::move(datasets));

  JsonValue sessions = JsonValue::Array();
  for (auto& [key, session] : engine_.TakeAllCachedSessions()) {
    size_t slash = key.find('/');
    if (slash == std::string::npos) continue;
    const std::string tenant = key.substr(0, slash);
    const std::string dataset = key.substr(slash + 1);
    if (!registry_.Find(tenant, dataset).ok()) continue;  // Dropped.
    const std::string name = SessionSnapshotName(tenant, dataset);
    const std::string path = options_.state_directory + "/" + name;
    Status st = session.Save(path);
    if (!st.ok()) {
      HOLO_LOG(kWarning) << "drain: dropping session " << key << ": " << st;
      continue;  // Losing warm state degrades to a cold restart, not an error.
    }
    JsonValue s = JsonValue::Object();
    s.Set("tenant", JsonValue::String(tenant));
    s.Set("dataset", JsonValue::String(dataset));
    s.Set("snapshot", JsonValue::String(name));
    s.Set("config", ConfigToJson(session.config()));
    sessions.Append(std::move(s));
  }
  manifest.Set("sessions", std::move(sessions));

  return WriteFileText(options_.state_directory + "/manifest.json",
                       manifest.Dump() + "\n");
}

Status CleaningServer::RestoreState() {
  if (options_.state_directory.empty()) return Status::OK();
  const std::string manifest_path =
      options_.state_directory + "/manifest.json";
  std::string text;
  Status st = ReadFileText(manifest_path, &text);
  if (st.code() == StatusCode::kNotFound) return Status::OK();  // Fresh start.
  HOLO_RETURN_NOT_OK(st);
  HOLO_ASSIGN_OR_RETURN(manifest, JsonValue::Parse(text));

  if (const JsonValue* datasets = manifest.Find("datasets")) {
    for (const JsonValue& d : datasets->items()) {
      HOLO_RETURN_NOT_OK(registry_.Register(
          d.GetString("tenant"), d.GetString("dataset"), d.GetString("csv"),
          d.GetString("constraints")));
      auto entry =
          registry_.Find(d.GetString("tenant"), d.GetString("dataset"));
      if (entry.ok()) engine_.SeedDictionary(entry.value()->base->dict());
    }
  }

  if (const JsonValue* sessions = manifest.Find("sessions")) {
    for (const JsonValue& s : sessions->items()) {
      const std::string tenant = s.GetString("tenant");
      const std::string dataset = s.GetString("dataset");
      auto entry = registry_.Find(tenant, dataset);
      if (!entry.ok()) continue;
      const std::string key = RegistryKey(tenant, dataset);
      std::shared_ptr<TenantSlot> slot = GetOrCreateSlot(entry.value());
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      HoloCleanConfig config;
      if (const JsonValue* cj = s.Find("config")) config = ConfigFromJson(*cj);
      SessionOptions session_options;
      session_options.config = config;
      session_options.snapshot_path =
          options_.state_directory + "/" + s.GetString("snapshot");
      Result<Session> session = engine_.OpenSession(
          CleaningInputs::Owned(slot->dataset, slot->dcs), session_options);
      if (!session.ok()) {
        // A bad snapshot costs warmth, not correctness: the next request
        // opens cold over the freshly registered base data.
        HOLO_LOG(kWarning) << "restore: session " << key
                           << " opens cold: " << session.status();
        continue;
      }
      slot->config = config;
      slot->has_run = true;
      engine_.CacheSession(key, std::move(session).value());
    }
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace holoclean
