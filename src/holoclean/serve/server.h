#ifndef HOLOCLEAN_SERVE_SERVER_H_
#define HOLOCLEAN_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "holoclean/core/engine.h"
#include "holoclean/serve/admission.h"
#include "holoclean/serve/protocol.h"
#include "holoclean/serve/queue.h"
#include "holoclean/serve/registry.h"

namespace holoclean {
namespace serve {

/// Construction-time knobs of a CleaningServer.
struct ServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// port() after Start). The listener binds 127.0.0.1 only — the daemon
  /// has no authentication, so it must not face a network.
  int port = 0;

  /// Base pipeline configuration; per-request "config" overrides are
  /// applied on top of a copy, never mutating the base.
  HoloCleanConfig default_config;

  /// Engine sizing: shared-pool workers (0 = hardware concurrency) and
  /// the parked-session LRU capacity.
  size_t engine_threads = 0;
  size_t session_cache_capacity = 8;
  /// Engine spill directory: LRU-evicted sessions are saved as compressed
  /// snapshots here and restored on the next request instead of
  /// recomputed. Empty disables spilling.
  std::string spill_directory;

  /// Load-shedding bounds (per-tenant and global in-flight caps).
  AdmissionOptions admission;

  /// Deadline-aware waiting in front of admission: queue depth, default
  /// deadline, and the server-side deadline cap. queue.max_depth = 0
  /// restores reject-only admission.
  QueueOptions queue;

  /// SO_RCVTIMEO/SO_SNDTIMEO applied to every accepted connection, so a
  /// slow-loris peer (a frame trickled byte-by-byte, or never finished)
  /// cannot pin a connection thread forever. 0 disables.
  int socket_timeout_ms = 30000;

  /// Failpoint profile applied at construction (see util/failpoint.h);
  /// merged semantics match HOLOCLEAN_FAILPOINTS, but scoped to server
  /// startup so tests and the CI fault-smoke job can arm a fresh daemon
  /// without touching the environment. Empty = leave the global profile
  /// alone.
  std::string failpoint_profile;

  /// Where Drain() persists server state (dataset manifest + parked
  /// session snapshots) and RestoreState() reads it back. Empty disables
  /// state persistence (Drain then just stops the server).
  std::string state_directory;
};

/// The multi-tenant cleaning daemon over Engine.
///
/// One server owns one Engine (shared worker pool, parked-session LRU,
/// dictionary arena), a DatasetRegistry of named immutable base datasets,
/// and an AdmissionController bounding concurrent work. Requests arrive
/// either over TCP (Start spawns an accept loop; each connection gets a
/// thread speaking the length-prefixed JSON protocol) or in-process via
/// Handle() — tests and benchmarks dispatch through the exact same code
/// path the socket does, minus the framing.
///
/// Tenant isolation: each (tenant, dataset) pair gets a private working
/// copy of the registered base table, cloned with a private dictionary
/// (Table::CloneWithPrivateDictionary), on first use. Cleaning mutates
/// only that copy, so tenants sharing a dataset name never share mutable
/// state, and the engine's parked-session LRU keys warm state by
/// "tenant/dataset" — a tenant's repeat requests reuse its own session's
/// cached stage artifacts. Requests for the same (tenant, dataset) are
/// serialized on the slot (concurrent jobs must not share a Dataset);
/// distinct slots clean concurrently on the shared pool, bounded by
/// admission control.
///
/// Graceful drain: Drain() rejects new work with `draining`, stops the
/// listener, lets in-flight requests finish, then saves every parked
/// session to a snapshot plus a manifest of registered datasets under
/// state_directory. A restarted server calls RestoreState() to
/// re-register the datasets (re-parsing the verbatim payloads pins the
/// dictionary ids) and restore the parked sessions — follow-up requests
/// resume from warm state with bit-identical results.
class CleaningServer {
 public:
  explicit CleaningServer(ServerOptions options);
  /// Stops the listener and connection threads (without draining state).
  ~CleaningServer();

  CleaningServer(const CleaningServer&) = delete;
  CleaningServer& operator=(const CleaningServer&) = delete;

  /// Binds, listens, and spawns the accept loop. In-process Handle() use
  /// does not require Start().
  Status Start();

  /// The bound port (after Start; ephemeral binds report the real port).
  int port() const { return port_; }

  /// Stops the listener and joins connection threads. In-flight requests
  /// complete; nothing is persisted. Idempotent.
  void Stop();

  /// Graceful shutdown: flips the server to `draining` (new cleaning work
  /// is rejected), stops the listener, completes in-flight requests, then
  /// persists the dataset manifest and every parked session snapshot to
  /// options.state_directory. Idempotent; without a state_directory it
  /// degrades to Stop().
  Status Drain();

  /// Loads state persisted by a previous Drain(): re-registers every
  /// dataset and restores every parked session into the engine LRU.
  /// Missing state is not an error (fresh start). Call before Start().
  Status RestoreState();

  /// Dispatches one request frame and returns the response frame — the
  /// socket path minus framing. Thread-safe.
  JsonValue Handle(const JsonValue& request_frame);

  Engine& engine() { return engine_; }
  DatasetRegistry& registry() { return registry_; }
  AdmissionController& admission() { return admission_; }
  RequestQueue& queue() { return queue_; }
  bool draining() const { return draining_.load(); }
  const ServerOptions& options() const { return options_; }

 private:
  /// Per-(tenant, dataset) working state: the tenant's private dataset
  /// clone plus the config of its last successful run (what Drain
  /// persists so a restore reopens the parked session under the exact
  /// config fingerprint the snapshot was saved with).
  struct TenantSlot {
    std::mutex mu;  ///< Serializes requests over this slot's dataset.
    std::shared_ptr<Dataset> dataset;
    std::shared_ptr<const std::vector<DenialConstraint>> dcs;
    HoloCleanConfig config;  ///< Guarded by mu.
    bool has_run = false;    ///< Guarded by mu.
    /// Streaming-ingestion counters (append_rows), all guarded by mu —
    /// surfaced as explain_status's per-dataset "stream" object.
    size_t stream_appended_rows = 0;
    size_t stream_batches = 0;
    size_t stream_compactions = 0;
    double stream_last_batch_seconds = 0.0;
  };

  std::shared_ptr<TenantSlot> GetOrCreateSlot(
      const std::shared_ptr<const DatasetRegistry::Entry>& entry);
  void DropSlot(const std::string& key);

  JsonValue Dispatch(const Request& req);
  JsonValue DoRegister(const Request& req);
  JsonValue DoDrop(const Request& req);
  JsonValue DoList(const Request& req);
  JsonValue DoClean(const Request& req);
  JsonValue DoFeedback(const Request& req);
  JsonValue DoAppendRows(const Request& req);
  JsonValue DoExplainStatus(const Request& req);

  /// The "server" object of explain_status: queue depth and counters,
  /// per-error-code response totals, socket timeouts, retried requests.
  JsonValue ServerStatusJson();
  /// Counts one finished response in the per-code counters.
  void CountResponse(const JsonValue& response);

  void AcceptLoop();
  void ServeConnection(int fd);

  ServerOptions options_;
  Engine engine_;
  DatasetRegistry registry_;
  AdmissionController admission_;
  RequestQueue queue_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};

  /// Observability counters surfaced by explain_status. `error_counts_`
  /// is keyed by wire error code (the closed vocabulary in protocol.h).
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> ok_total_{0};
  std::atomic<uint64_t> retried_requests_{0};
  std::atomic<uint64_t> socket_timeouts_{0};
  mutable std::mutex stats_mu_;
  std::map<std::string, uint64_t> error_counts_;  ///< Guarded by stats_mu_.

  mutable std::mutex slots_mu_;
  std::unordered_map<std::string, std::shared_ptr<TenantSlot>> slots_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace serve
}  // namespace holoclean

#endif  // HOLOCLEAN_SERVE_SERVER_H_
