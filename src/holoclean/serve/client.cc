#include "holoclean/serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "holoclean/util/rng.h"

namespace holoclean {
namespace serve {

namespace {

Status ConnectError(int port, const char* what) {
  return Status::Internal("connect to 127.0.0.1:" + std::to_string(port) +
                          ": " + what);
}

/// True for failures where no response byte ever arrived: a connect that
/// never completed, a request frame whose send timed out, or a response
/// wait that expired still at byte zero. These are the idempotent-safe
/// transport retries. A timeout mid-response is NOT here — bytes arrived,
/// so the server dispatched the request and may have done the work.
bool RetriableTransport(const Status& status) {
  if (status.code() != StatusCode::kInternal) return false;
  const std::string& msg = status.message();
  if (msg.rfind("connect to", 0) == 0) return true;
  if (IsIdleTimeout(status)) return true;
  return msg.rfind("timeout: socket write", 0) == 0;
}

}  // namespace

Result<Client> Client::Connect(int port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));

  // Non-blocking connect + poll: the one shape that both bounds the
  // connect and survives EINTR. A blocking connect() interrupted by a
  // signal keeps connecting in the kernel — calling connect() again then
  // fails with EALREADY/EISCONN, so "retry on EINTR" is wrong there; here
  // the interrupted poll() just resumes waiting on the same attempt.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS && errno != EINTR) {
    Status st = ConnectError(port, std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (rc < 0) {
    auto give_up = std::chrono::steady_clock::time_point::max();
    if (timeout_ms > 0) {
      give_up = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeout_ms);
    }
    for (;;) {
      int wait_ms = -1;
      if (timeout_ms > 0) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            give_up - std::chrono::steady_clock::now());
        wait_ms = left.count() > 0 ? static_cast<int>(left.count()) : 0;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        Status st = ConnectError(port, std::strerror(errno));
        ::close(fd);
        return st;
      }
      if (ready == 0) {
        ::close(fd);
        return ConnectError(port, "timed out");
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      Status st = ConnectError(port, std::strerror(err != 0 ? err : errno));
      ::close(fd);
      return st;
    }
  }
  ::fcntl(fd, F_SETFL, flags);

  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }

  Client client;
  client.fd_ = fd;
  client.timeout_ms_ = timeout_ms;
  return client;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<JsonValue> Client::Call(const Request& request) {
  return CallRaw(request.ToJson());
}

Result<JsonValue> Client::CallRaw(const JsonValue& frame) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  HOLO_RETURN_NOT_OK(WriteFrame(fd_, frame));
  return ReadFrame(fd_);
}

Result<RetryResult> Client::CallWithRetry(int port, const Request& request,
                                          const RetryOptions& retry) {
  using Clock = std::chrono::steady_clock;
  auto give_up = Clock::time_point::max();
  if (retry.overall_deadline_ms > 0) {
    give_up = Clock::now() + std::chrono::milliseconds(
                                 retry.overall_deadline_ms);
  }
  Rng jitter(retry.jitter_seed);
  RetryResult result;
  double backoff = static_cast<double>(retry.initial_backoff_ms);
  Status last = Status::Internal("no attempts made");

  int max_attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Jittered exponential backoff: scale by u ~ U[0.5, 1.0) so a burst
      // of rejected clients spreads out instead of stampeding back in
      // lockstep. The Rng seed makes a test's sleep pattern replayable.
      double factor = 0.5 + 0.5 * jitter.Uniform();
      int64_t sleep_ms = static_cast<int64_t>(backoff * factor);
      backoff *= retry.backoff_multiplier;
      if (backoff > static_cast<double>(retry.max_backoff_ms)) {
        backoff = static_cast<double>(retry.max_backoff_ms);
      }
      if (give_up != Clock::time_point::max()) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        give_up - Clock::now())
                        .count();
        if (left <= 0) break;  // Out of budget: report the last failure.
        if (sleep_ms > left) sleep_ms = left;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      result.backoff_ms += sleep_ms;
    }
    result.attempts = attempt + 1;

    if (fd_ < 0) {
      int connect_timeout = timeout_ms_;
      Result<Client> fresh = Connect(port, connect_timeout);
      if (!fresh.ok()) {
        last = fresh.status();
        continue;  // Connect failures are always retriable.
      }
      *this = std::move(fresh).value();
    }

    Request attempt_req = request;
    attempt_req.attempt = attempt;
    if (give_up != Clock::time_point::max()) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      give_up - Clock::now())
                      .count();
      if (left <= 0) {
        last = DeadlineExceeded("client retry budget exhausted");
        break;
      }
      // Tell the server how much patience is actually left, so it stops
      // queueing work this client will have abandoned.
      if (attempt_req.deadline_ms <= 0 || attempt_req.deadline_ms > left) {
        attempt_req.deadline_ms = left;
      }
    }

    Result<JsonValue> response = Call(attempt_req);
    if (!response.ok()) {
      last = response.status();
      Close();  // The stream is unusable regardless of the failure kind.
      if (RetriableTransport(last)) continue;
      return last;  // Mid-response failures are final: work may be done.
    }
    const JsonValue& frame = response.value();
    if (frame.GetBool("ok")) {
      result.response = frame;
      return result;
    }
    const std::string code = frame.GetString("error");
    if (code == "overloaded" || code == "draining") {
      last = Status::OutOfRange(code + ": " + frame.GetString("message"));
      continue;  // The server refused before starting work: safe retry.
    }
    // Any other rejection is a real answer, not a transient.
    result.response = frame;
    return result;
  }
  return last;
}

}  // namespace serve
}  // namespace holoclean
