#include "holoclean/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace holoclean {
namespace serve {

Result<Client> Client::Connect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Internal("connect to 127.0.0.1:" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  Client client;
  client.fd_ = fd;
  return client;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<JsonValue> Client::Call(const Request& request) {
  return CallRaw(request.ToJson());
}

Result<JsonValue> Client::CallRaw(const JsonValue& frame) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  HOLO_RETURN_NOT_OK(WriteFrame(fd_, frame));
  return ReadFrame(fd_);
}

}  // namespace serve
}  // namespace holoclean
