#include "holoclean/serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace holoclean {
namespace serve {

const char* OpName(Op op) {
  switch (op) {
    case Op::kRegisterDataset:
      return "register_dataset";
    case Op::kDropDataset:
      return "drop_dataset";
    case Op::kListDatasets:
      return "list_datasets";
    case Op::kClean:
      return "clean";
    case Op::kFeedback:
      return "feedback";
    case Op::kExplainStatus:
      return "explain_status";
  }
  return "unknown";
}

Result<Op> ParseOp(const std::string& name) {
  if (name == "register_dataset") return Op::kRegisterDataset;
  if (name == "drop_dataset") return Op::kDropDataset;
  if (name == "list_datasets") return Op::kListDatasets;
  if (name == "clean") return Op::kClean;
  if (name == "feedback") return Op::kFeedback;
  if (name == "explain_status") return Op::kExplainStatus;
  return Status::InvalidArgument("unknown op \"" + name + "\"");
}

std::string ErrorCodeFor(const Status& status) {
  // Load-shedding rejections travel as kOutOfRange; the message prefix
  // distinguishes a draining server from a saturated tenant quota.
  if (status.code() == StatusCode::kOutOfRange) {
    if (status.message().rfind("draining", 0) == 0) return "draining";
    return "overloaded";
  }
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    default:
      return "internal";
  }
}

JsonValue Request::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("op", JsonValue::String(OpName(op)));
  if (!tenant.empty()) json.Set("tenant", JsonValue::String(tenant));
  if (!dataset.empty()) json.Set("dataset", JsonValue::String(dataset));
  if (!csv_text.empty()) json.Set("csv", JsonValue::String(csv_text));
  if (!dc_text.empty()) json.Set("constraints", JsonValue::String(dc_text));
  if (cell_tid >= 0) {
    JsonValue cell = JsonValue::Object();
    cell.Set("tid", JsonValue::Number(static_cast<double>(cell_tid)));
    cell.Set("attr", JsonValue::String(cell_attr));
    cell.Set("value", JsonValue::String(cell_value));
    json.Set("cell", std::move(cell));
  }
  if (config_overrides.is_object() && config_overrides.size() > 0) {
    json.Set("config", config_overrides);
  }
  return json;
}

Result<Request> Request::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request frame is not a JSON object");
  }
  Request req;
  const JsonValue* op = json.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("request has no string \"op\" field");
  }
  HOLO_ASSIGN_OR_RETURN(parsed_op, ParseOp(op->AsString()));
  req.op = parsed_op;
  req.tenant = json.GetString("tenant");
  req.dataset = json.GetString("dataset");
  req.csv_text = json.GetString("csv");
  req.dc_text = json.GetString("constraints");
  if (const JsonValue* cell = json.Find("cell")) {
    if (!cell->is_object()) {
      return Status::InvalidArgument("\"cell\" must be an object");
    }
    req.cell_tid = cell->GetInt("tid", -1);
    req.cell_attr = cell->GetString("attr");
    req.cell_value = cell->GetString("value");
    if (req.cell_tid < 0 || req.cell_attr.empty()) {
      return Status::InvalidArgument(
          "\"cell\" needs a non-negative tid and an attr");
    }
  }
  if (const JsonValue* config = json.Find("config")) {
    if (!config->is_object()) {
      return Status::InvalidArgument("\"config\" must be an object");
    }
    req.config_overrides = *config;
  }
  return req;
}

Status ApplyConfigOverrides(const JsonValue& overrides,
                            HoloCleanConfig* config) {
  if (!overrides.is_object()) {
    return Status::InvalidArgument("config overrides must be an object");
  }
  for (const auto& [key, value] : overrides.members()) {
    auto number = [&](double* out) -> Status {
      if (!value.is_number()) {
        return Status::InvalidArgument("config." + key + " must be a number");
      }
      *out = value.AsDouble();
      return Status::OK();
    };
    auto count = [&](size_t* out) -> Status {
      if (!value.is_number() || value.AsDouble() < 0) {
        return Status::InvalidArgument("config." + key +
                                       " must be a non-negative number");
      }
      *out = static_cast<size_t>(value.AsInt());
      return Status::OK();
    };
    auto integer = [&](int* out) -> Status {
      if (!value.is_number()) {
        return Status::InvalidArgument("config." + key + " must be a number");
      }
      *out = static_cast<int>(value.AsInt());
      return Status::OK();
    };
    auto boolean = [&](bool* out) -> Status {
      if (!value.is_bool()) {
        return Status::InvalidArgument("config." + key + " must be a bool");
      }
      *out = value.AsBool();
      return Status::OK();
    };
    if (key == "tau") {
      HOLO_RETURN_NOT_OK(number(&config->tau));
    } else if (key == "max_candidates") {
      HOLO_RETURN_NOT_OK(count(&config->max_candidates));
    } else if (key == "dc_factor_weight") {
      HOLO_RETURN_NOT_OK(number(&config->dc_factor_weight));
    } else if (key == "minimality_weight") {
      HOLO_RETURN_NOT_OK(number(&config->minimality_weight));
    } else if (key == "sim_threshold") {
      HOLO_RETURN_NOT_OK(number(&config->sim_threshold));
    } else if (key == "partitioning") {
      HOLO_RETURN_NOT_OK(boolean(&config->partitioning));
    } else if (key == "epochs") {
      HOLO_RETURN_NOT_OK(integer(&config->epochs));
    } else if (key == "learning_rate") {
      HOLO_RETURN_NOT_OK(number(&config->learning_rate));
    } else if (key == "lr_decay") {
      HOLO_RETURN_NOT_OK(number(&config->lr_decay));
    } else if (key == "l2") {
      HOLO_RETURN_NOT_OK(number(&config->l2));
    } else if (key == "max_training_cells") {
      HOLO_RETURN_NOT_OK(count(&config->max_training_cells));
    } else if (key == "gibbs_burn_in") {
      HOLO_RETURN_NOT_OK(integer(&config->gibbs_burn_in));
    } else if (key == "gibbs_samples") {
      HOLO_RETURN_NOT_OK(integer(&config->gibbs_samples));
    } else if (key == "compiled_kernel") {
      HOLO_RETURN_NOT_OK(boolean(&config->compiled_kernel));
    } else if (key == "columnar") {
      HOLO_RETURN_NOT_OK(boolean(&config->columnar));
    } else if (key == "seed") {
      if (!value.is_number()) {
        return Status::InvalidArgument("config.seed must be a number");
      }
      config->seed = static_cast<uint64_t>(value.AsInt());
    } else {
      return Status::InvalidArgument("unknown config override \"" + key +
                                     "\"");
    }
  }
  return Status::OK();
}

JsonValue OkResponse() {
  JsonValue json = JsonValue::Object();
  json.Set("ok", JsonValue::Bool(true));
  json.Set("protocol", JsonValue::Number(kProtocolVersion));
  return json;
}

JsonValue ErrorResponse(const Status& status) {
  JsonValue json = JsonValue::Object();
  json.Set("ok", JsonValue::Bool(false));
  json.Set("protocol", JsonValue::Number(kProtocolVersion));
  json.Set("error", JsonValue::String(ErrorCodeFor(status)));
  json.Set("message", JsonValue::String(status.message()));
  return json;
}

namespace {

/// Reads exactly `n` bytes; returns bytes read (== n on success, short
/// on EOF) or -1 with errno on socket error.
ssize_t ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) break;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

void EncodeFrame(const JsonValue& json, std::string* out) {
  std::string payload = json.Dump();
  uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>((len >> 24) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>(len & 0xff)};
  out->append(prefix, 4);
  out->append(payload);
}

Result<JsonValue> ReadFrame(int fd) {
  char prefix[4];
  ssize_t got = ReadFull(fd, prefix, 4);
  if (got < 0) {
    return Status::Internal(std::string("socket read: ") +
                            std::strerror(errno));
  }
  if (got == 0) return Status::NotFound("connection closed");
  if (got < 4) return Status::ParseError("truncated frame length prefix");
  uint32_t len = (static_cast<uint32_t>(static_cast<unsigned char>(prefix[0]))
                  << 24) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2]))
                  << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (len > kMaxFrameBytes) {
    return Status::ParseError("frame of " + std::to_string(len) +
                              " bytes exceeds the " +
                              std::to_string(kMaxFrameBytes) + "-byte limit");
  }
  std::string payload(len, '\0');
  got = ReadFull(fd, payload.data(), len);
  if (got < 0) {
    return Status::Internal(std::string("socket read: ") +
                            std::strerror(errno));
  }
  if (static_cast<uint32_t>(got) < len) {
    return Status::ParseError("connection closed mid-frame");
  }
  return JsonValue::Parse(payload);
}

Status WriteFrame(int fd, const JsonValue& json) {
  std::string frame;
  EncodeFrame(json, &frame);
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t w = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("socket write: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace holoclean
