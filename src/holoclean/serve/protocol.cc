#include "holoclean/serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "holoclean/util/failpoint.h"

namespace holoclean {
namespace serve {

const char* OpName(Op op) {
  switch (op) {
    case Op::kRegisterDataset:
      return "register_dataset";
    case Op::kDropDataset:
      return "drop_dataset";
    case Op::kListDatasets:
      return "list_datasets";
    case Op::kClean:
      return "clean";
    case Op::kFeedback:
      return "feedback";
    case Op::kExplainStatus:
      return "explain_status";
    case Op::kAppendRows:
      return "append_rows";
  }
  return "unknown";
}

Result<Op> ParseOp(const std::string& name) {
  if (name == "register_dataset") return Op::kRegisterDataset;
  if (name == "drop_dataset") return Op::kDropDataset;
  if (name == "list_datasets") return Op::kListDatasets;
  if (name == "clean") return Op::kClean;
  if (name == "feedback") return Op::kFeedback;
  if (name == "explain_status") return Op::kExplainStatus;
  if (name == "append_rows") return Op::kAppendRows;
  return Status::InvalidArgument("unknown op \"" + name + "\"");
}

std::string ErrorCodeFor(const Status& status) {
  // Load-shedding and deadline rejections travel as kOutOfRange; the
  // message prefix distinguishes a draining server, an expired deadline,
  // and a saturated quota/queue.
  if (status.code() == StatusCode::kOutOfRange) {
    if (status.message().rfind("draining", 0) == 0) return "draining";
    if (status.message().rfind("deadline_exceeded", 0) == 0) {
      return "deadline_exceeded";
    }
    return "overloaded";
  }
  if (IsTimeout(status)) return "timeout";
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    default:
      return "internal";
  }
}

Status DeadlineExceeded(const std::string& detail) {
  return Status::OutOfRange("deadline_exceeded: " + detail);
}

namespace {

constexpr char kTimeoutPrefix[] = "timeout:";
constexpr char kIdleTimeoutPrefix[] = "timeout: idle";

Status IdleTimeout() {
  return Status::Internal(
      "timeout: idle connection hit the socket read timeout");
}

Status MidFrameTimeout(const char* what) {
  return Status::Internal(std::string("timeout: socket ") + what +
                          " timed out mid-frame");
}

}  // namespace

bool IsTimeout(const Status& status) {
  return status.code() == StatusCode::kInternal &&
         status.message().rfind(kTimeoutPrefix, 0) == 0;
}

bool IsIdleTimeout(const Status& status) {
  return status.code() == StatusCode::kInternal &&
         status.message().rfind(kIdleTimeoutPrefix, 0) == 0;
}

JsonValue Request::ToJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("op", JsonValue::String(OpName(op)));
  if (!tenant.empty()) json.Set("tenant", JsonValue::String(tenant));
  if (!dataset.empty()) json.Set("dataset", JsonValue::String(dataset));
  if (!csv_text.empty()) json.Set("csv", JsonValue::String(csv_text));
  if (!dc_text.empty()) json.Set("constraints", JsonValue::String(dc_text));
  if (cell_tid >= 0) {
    JsonValue cell = JsonValue::Object();
    cell.Set("tid", JsonValue::Number(static_cast<double>(cell_tid)));
    cell.Set("attr", JsonValue::String(cell_attr));
    cell.Set("value", JsonValue::String(cell_value));
    json.Set("cell", std::move(cell));
  }
  if (!rows.empty()) {
    JsonValue rows_json = JsonValue::Array();
    for (const auto& row : rows) {
      JsonValue row_json = JsonValue::Array();
      for (const auto& value : row) {
        row_json.Append(JsonValue::String(value));
      }
      rows_json.Append(std::move(row_json));
    }
    json.Set("rows", std::move(rows_json));
  }
  if (config_overrides.is_object() && config_overrides.size() > 0) {
    json.Set("config", config_overrides);
  }
  // Emitted only when set: a request built by a protocol-1 client that
  // predates deadlines re-serializes byte-identically.
  if (deadline_ms > 0) {
    json.Set("deadline_ms",
             JsonValue::Number(static_cast<double>(deadline_ms)));
  }
  if (attempt > 0) {
    json.Set("attempt", JsonValue::Number(static_cast<double>(attempt)));
  }
  return json;
}

Result<Request> Request::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request frame is not a JSON object");
  }
  Request req;
  const JsonValue* op = json.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("request has no string \"op\" field");
  }
  HOLO_ASSIGN_OR_RETURN(parsed_op, ParseOp(op->AsString()));
  req.op = parsed_op;
  req.tenant = json.GetString("tenant");
  req.dataset = json.GetString("dataset");
  req.csv_text = json.GetString("csv");
  req.dc_text = json.GetString("constraints");
  if (const JsonValue* cell = json.Find("cell")) {
    if (!cell->is_object()) {
      return Status::InvalidArgument("\"cell\" must be an object");
    }
    req.cell_tid = cell->GetInt("tid", -1);
    req.cell_attr = cell->GetString("attr");
    req.cell_value = cell->GetString("value");
    if (req.cell_tid < 0 || req.cell_attr.empty()) {
      return Status::InvalidArgument(
          "\"cell\" needs a non-negative tid and an attr");
    }
  }
  if (const JsonValue* rows = json.Find("rows")) {
    if (!rows->is_array()) {
      return Status::InvalidArgument("\"rows\" must be an array of arrays");
    }
    for (const JsonValue& row : rows->items()) {
      if (!row.is_array()) {
        return Status::InvalidArgument("\"rows\" must be an array of arrays");
      }
      std::vector<std::string> values;
      for (const JsonValue& value : row.items()) {
        if (!value.is_string()) {
          return Status::InvalidArgument("row values must be strings");
        }
        values.push_back(value.AsString());
      }
      req.rows.push_back(std::move(values));
    }
  }
  if (const JsonValue* config = json.Find("config")) {
    if (!config->is_object()) {
      return Status::InvalidArgument("\"config\" must be an object");
    }
    req.config_overrides = *config;
  }
  if (const JsonValue* deadline = json.Find("deadline_ms")) {
    if (!deadline->is_number() || deadline->AsDouble() < 0) {
      return Status::InvalidArgument(
          "\"deadline_ms\" must be a non-negative number");
    }
    req.deadline_ms = deadline->AsInt();
  }
  req.attempt = static_cast<int>(json.GetInt("attempt", 0));
  return req;
}

Status ApplyConfigOverrides(const JsonValue& overrides,
                            HoloCleanConfig* config) {
  if (!overrides.is_object()) {
    return Status::InvalidArgument("config overrides must be an object");
  }
  for (const auto& [key, value] : overrides.members()) {
    auto number = [&](double* out) -> Status {
      if (!value.is_number()) {
        return Status::InvalidArgument("config." + key + " must be a number");
      }
      *out = value.AsDouble();
      return Status::OK();
    };
    auto count = [&](size_t* out) -> Status {
      if (!value.is_number() || value.AsDouble() < 0) {
        return Status::InvalidArgument("config." + key +
                                       " must be a non-negative number");
      }
      *out = static_cast<size_t>(value.AsInt());
      return Status::OK();
    };
    auto integer = [&](int* out) -> Status {
      if (!value.is_number()) {
        return Status::InvalidArgument("config." + key + " must be a number");
      }
      *out = static_cast<int>(value.AsInt());
      return Status::OK();
    };
    auto boolean = [&](bool* out) -> Status {
      if (!value.is_bool()) {
        return Status::InvalidArgument("config." + key + " must be a bool");
      }
      *out = value.AsBool();
      return Status::OK();
    };
    if (key == "tau") {
      HOLO_RETURN_NOT_OK(number(&config->tau));
    } else if (key == "max_candidates") {
      HOLO_RETURN_NOT_OK(count(&config->max_candidates));
    } else if (key == "dc_factor_weight") {
      HOLO_RETURN_NOT_OK(number(&config->dc_factor_weight));
    } else if (key == "minimality_weight") {
      HOLO_RETURN_NOT_OK(number(&config->minimality_weight));
    } else if (key == "sim_threshold") {
      HOLO_RETURN_NOT_OK(number(&config->sim_threshold));
    } else if (key == "partitioning") {
      HOLO_RETURN_NOT_OK(boolean(&config->partitioning));
    } else if (key == "epochs") {
      HOLO_RETURN_NOT_OK(integer(&config->epochs));
    } else if (key == "learning_rate") {
      HOLO_RETURN_NOT_OK(number(&config->learning_rate));
    } else if (key == "lr_decay") {
      HOLO_RETURN_NOT_OK(number(&config->lr_decay));
    } else if (key == "l2") {
      HOLO_RETURN_NOT_OK(number(&config->l2));
    } else if (key == "max_training_cells") {
      HOLO_RETURN_NOT_OK(count(&config->max_training_cells));
    } else if (key == "gibbs_burn_in") {
      HOLO_RETURN_NOT_OK(integer(&config->gibbs_burn_in));
    } else if (key == "gibbs_samples") {
      HOLO_RETURN_NOT_OK(integer(&config->gibbs_samples));
    } else if (key == "compiled_kernel") {
      HOLO_RETURN_NOT_OK(boolean(&config->compiled_kernel));
    } else if (key == "columnar") {
      HOLO_RETURN_NOT_OK(boolean(&config->columnar));
    } else if (key == "seed") {
      if (!value.is_number()) {
        return Status::InvalidArgument("config.seed must be a number");
      }
      config->seed = static_cast<uint64_t>(value.AsInt());
    } else {
      return Status::InvalidArgument("unknown config override \"" + key +
                                     "\"");
    }
  }
  return Status::OK();
}

JsonValue OkResponse() {
  JsonValue json = JsonValue::Object();
  json.Set("ok", JsonValue::Bool(true));
  json.Set("protocol", JsonValue::Number(kProtocolVersion));
  return json;
}

JsonValue ErrorResponse(const Status& status) {
  JsonValue json = JsonValue::Object();
  json.Set("ok", JsonValue::Bool(false));
  json.Set("protocol", JsonValue::Number(kProtocolVersion));
  json.Set("error", JsonValue::String(ErrorCodeFor(status)));
  json.Set("message", JsonValue::String(status.message()));
  return json;
}

namespace {

enum class IoEnd { kDone, kEof, kTimeout, kError };

/// Reads exactly `n` bytes, retrying EINTR and short reads. `*got` is
/// always the byte count actually transferred (what distinguishes an
/// idle timeout from a mid-frame one). kError leaves errno set.
IoEnd ReadFull(int fd, char* buf, size_t n, size_t* got) {
  *got = 0;
  size_t cap = n;  // Per-syscall byte cap (failpoint short-read drill).
  if (auto fire = HOLO_FAILPOINT_EVAL("serve.frame.read_slice")) {
    if (fire->action == Failpoints::Action::kSlice) cap = fire->slice_bytes;
  }
  while (*got < n) {
    if (HOLO_FAILPOINT_EVAL("serve.frame.read_eintr")) {
      // Pretend the read was signal-interrupted: a correct loop retries
      // without consuming or duplicating bytes.
      continue;
    }
    size_t want = n - *got;
    if (want > cap) want = cap;
    ssize_t r = ::read(fd, buf + *got, want);
    if (r == 0) return *got == n ? IoEnd::kDone : IoEnd::kEof;
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoEnd::kTimeout;
      return IoEnd::kError;
    }
    *got += static_cast<size_t>(r);
  }
  return IoEnd::kDone;
}

/// Writes exactly `n` bytes, retrying EINTR and short writes.
IoEnd WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  size_t cap = n;
  if (auto fire = HOLO_FAILPOINT_EVAL("serve.frame.write_slice")) {
    if (fire->action == Failpoints::Action::kSlice) cap = fire->slice_bytes;
  }
  while (sent < n) {
    if (HOLO_FAILPOINT_EVAL("serve.frame.write_eintr")) continue;
    size_t want = n - sent;
    if (want > cap) want = cap;
    ssize_t w = ::write(fd, buf + sent, want);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoEnd::kTimeout;
      return IoEnd::kError;
    }
    sent += static_cast<size_t>(w);
  }
  return IoEnd::kDone;
}

}  // namespace

void EncodeFrame(const JsonValue& json, std::string* out) {
  std::string payload = json.Dump();
  uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>((len >> 24) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>(len & 0xff)};
  out->append(prefix, 4);
  out->append(payload);
}

Result<JsonValue> ReadFrame(int fd) {
  HOLO_RETURN_NOT_OK(HOLO_FAILPOINT("serve.frame.read"));
  char prefix[4];
  size_t got = 0;
  switch (ReadFull(fd, prefix, 4, &got)) {
    case IoEnd::kDone:
      break;
    case IoEnd::kEof:
      if (got == 0) return Status::NotFound("connection closed");
      return Status::ParseError("truncated frame length prefix");
    case IoEnd::kTimeout:
      // No bytes yet = an idle keepalive connection, not a stuck frame.
      if (got == 0) return IdleTimeout();
      return MidFrameTimeout("read");
    case IoEnd::kError:
      return Status::Internal(std::string("socket read: ") +
                              std::strerror(errno));
  }
  uint32_t len = (static_cast<uint32_t>(static_cast<unsigned char>(prefix[0]))
                  << 24) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2]))
                  << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (len > kMaxFrameBytes) {
    return Status::ParseError("frame of " + std::to_string(len) +
                              " bytes exceeds the " +
                              std::to_string(kMaxFrameBytes) + "-byte limit");
  }
  std::string payload(len, '\0');
  switch (ReadFull(fd, payload.data(), len, &got)) {
    case IoEnd::kDone:
      break;
    case IoEnd::kEof:
      return Status::ParseError("connection closed mid-frame");
    case IoEnd::kTimeout:
      return MidFrameTimeout("read");
    case IoEnd::kError:
      return Status::Internal(std::string("socket read: ") +
                              std::strerror(errno));
  }
  return JsonValue::Parse(payload);
}

Status WriteFrame(int fd, const JsonValue& json) {
  HOLO_RETURN_NOT_OK(HOLO_FAILPOINT("serve.frame.write"));
  std::string frame;
  EncodeFrame(json, &frame);
  if (HOLO_FAILPOINT_EVAL("serve.frame.corrupt_write")) {
    // Flip a spread of payload bytes (the length prefix stays intact, so
    // the peer reads a full frame of garbage — the JSON-parse-failure
    // flavor of corruption, not the truncation flavor).
    for (size_t i = 4; i < frame.size(); i += 7) {
      frame[i] = static_cast<char>(frame[i] ^ 0x5a);
    }
  }
  if (HOLO_FAILPOINT_EVAL("serve.frame.truncate_write")) {
    // Send half the frame, then abandon it: the peer sees a mid-frame
    // hangup once we close.
    (void)WriteFull(fd, frame.data(), frame.size() / 2);
    return Status::Internal(
        "injected truncation after " + std::to_string(frame.size() / 2) +
        " of " + std::to_string(frame.size()) + " frame bytes");
  }
  switch (WriteFull(fd, frame.data(), frame.size())) {
    case IoEnd::kDone:
      return Status::OK();
    case IoEnd::kTimeout:
      return MidFrameTimeout("write");
    case IoEnd::kEof:  // WriteFull never returns kEof; keep -Werror happy.
    case IoEnd::kError:
      return Status::Internal(std::string("socket write: ") +
                              std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace holoclean
