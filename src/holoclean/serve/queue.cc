#include "holoclean/serve/queue.h"

#include "holoclean/serve/protocol.h"
#include "holoclean/util/failpoint.h"

namespace holoclean {
namespace serve {

RequestQueue::Clock::time_point RequestQueue::DeadlineFor(
    int64_t requested_ms) const {
  int64_t ms =
      requested_ms > 0 ? requested_ms : options_.default_deadline_ms;
  if (options_.max_deadline_ms > 0 && ms > options_.max_deadline_ms) {
    ms = options_.max_deadline_ms;
  }
  return Clock::now() + std::chrono::milliseconds(ms);
}

Result<AdmissionController::Ticket> RequestQueue::Acquire(
    const std::string& tenant, Clock::time_point deadline) {
  HOLO_RETURN_NOT_OK(HOLO_FAILPOINT("serve.queue.acquire"));
  std::unique_lock<std::mutex> lock(mu_);

  if (Clock::now() >= deadline) {
    return DeadlineExceeded("request deadline passed before admission");
  }

  // Direct admission path — skipped while this tenant already has parked
  // waiters, else a late arrival would jump its tenant's FIFO lane.
  auto lane = lanes_.find(tenant);
  bool tenant_has_waiters = lane != lanes_.end() && !lane->second.empty();
  if (!tenant_has_waiters) {
    Result<AdmissionController::Ticket> direct = admission_->Admit(tenant);
    if (direct.ok()) return direct;
    if (direct.status().code() != StatusCode::kOutOfRange) return direct;
    if (options_.max_depth == 0) {
      // Reject-only mode: surface the controller's own `overloaded`
      // message (naming the exhausted bound), exactly as before the
      // queue existed.
      return direct;
    }
    // `overloaded` falls through to the queue.
  }

  if (closed_) {
    // Shutdown in progress: never park a thread Stop()/Drain() would have
    // to wait on. tenant_has_waiters can't be true here (Close() empties
    // every lane), so a direct Admit was already tried above.
    return close_reason_;
  }
  if (options_.max_depth == 0 || depth_ >= options_.max_depth) {
    stats_.rejected_full++;
    return Status::OutOfRange(
        "overloaded: request queue full (depth " + std::to_string(depth_) +
        " of " + std::to_string(options_.max_depth) + ")");
  }

  Waiter waiter;
  waiter.tenant = tenant;
  waiter.deadline = deadline;
  lanes_[tenant].push_back(&waiter);
  depth_++;
  stats_.enqueued++;
  stats_.depth = depth_;

  while (!waiter.granted && !waiter.failed) {
    if (waiter.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        !waiter.granted && !waiter.failed) {
      RemoveLocked(&waiter);
      stats_.expired_in_queue++;
      return DeadlineExceeded("request deadline passed while queued (" +
                              std::to_string(stats_.depth) +
                              " requests still waiting)");
    }
  }
  if (waiter.failed) return waiter.status;
  stats_.granted_after_wait++;
  return std::move(waiter.ticket);
}

void RequestQueue::OnTicketReleased() {
  std::lock_guard<std::mutex> lock(mu_);
  GrantNextLocked();
}

void RequestQueue::GrantNextLocked() {
  if (depth_ == 0) return;
  Clock::time_point now = Clock::now();

  // Round-robin over tenant lanes starting after the cursor, expiring
  // dead lane heads as they surface. One pass over the lanes; the freed
  // slot goes to the first waiter whose tenant the controller accepts.
  auto start = lanes_.upper_bound(cursor_);
  size_t lane_count = lanes_.size();
  auto it = start;
  for (size_t scanned = 0; scanned < lane_count; ++scanned) {
    if (it == lanes_.end()) it = lanes_.begin();
    std::deque<Waiter*>& lane = it->second;
    while (!lane.empty() && lane.front()->deadline <= now) {
      Waiter* expired = lane.front();
      lane.pop_front();
      depth_--;
      stats_.expired_in_queue++;
      expired->failed = true;
      expired->status =
          DeadlineExceeded("request deadline passed while queued");
      expired->cv.notify_one();
    }
    if (!lane.empty()) {
      Waiter* head = lane.front();
      Result<AdmissionController::Ticket> admitted =
          admission_->Admit(head->tenant);
      if (admitted.ok()) {
        lane.pop_front();
        depth_--;
        cursor_ = it->first;
        head->granted = true;
        head->ticket = std::move(admitted).value();
        head->cv.notify_one();
        stats_.depth = depth_;
        if (lane.empty()) lanes_.erase(it);
        return;
      }
      // Tenant quota still exhausted — try the next lane.
    }
    if (it->second.empty()) {
      it = lanes_.erase(it);  // Drop drained lanes so lanes_ stays bounded.
    } else {
      ++it;
    }
  }
  stats_.depth = depth_;
}

void RequestQueue::RemoveLocked(Waiter* waiter) {
  auto lane = lanes_.find(waiter->tenant);
  if (lane == lanes_.end()) return;
  for (auto it = lane->second.begin(); it != lane->second.end(); ++it) {
    if (*it == waiter) {
      lane->second.erase(it);
      depth_--;
      stats_.depth = depth_;
      break;
    }
  }
  if (lane->second.empty()) lanes_.erase(lane);
}

void RequestQueue::Close(Status reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  close_reason_ = std::move(reason);
  for (auto& [tenant, lane] : lanes_) {
    for (Waiter* waiter : lane) {
      waiter->failed = true;
      waiter->status = close_reason_;
      waiter->cv.notify_one();
      stats_.cancelled++;
    }
    lane.clear();
  }
  lanes_.clear();
  depth_ = 0;
  stats_.depth = 0;
}

RequestQueue::Stats RequestQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void QueuedTicket::ReleaseNow() {
  RequestQueue* queue = queue_;
  queue_ = nullptr;
  // Free the controller slot first, then let the queue hand it out.
  ticket_ = AdmissionController::Ticket();
  if (queue != nullptr) queue->OnTicketReleased();
}

}  // namespace serve
}  // namespace holoclean
