#ifndef HOLOCLEAN_SERVE_PROTOCOL_H_
#define HOLOCLEAN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "holoclean/core/config.h"
#include "holoclean/util/json.h"
#include "holoclean/util/status.h"

namespace holoclean {
namespace serve {

/// The wire protocol of holoclean_serve — the repo's first stable external
/// API surface. One TCP connection carries a sequence of frames, each a
/// 4-byte big-endian length prefix followed by that many bytes of JSON.
/// Requests and responses alternate strictly (no pipelining).
///
/// Request object:
///   {"op": "clean", "tenant": "acme", "dataset": "food",
///    "config": {"tau": 0.5, ...},            // optional overrides
///    "csv": "...", "constraints": "...",     // register_dataset only
///    "cell": {"tid": 3, "attr": "City", "value": "Chicago"},  // feedback
///    "rows": [["v1", "v2", ...], ...],       // append_rows only
///    "deadline_ms": 2000,   // optional: give up after this long (queue
///                           // wait included); server clamps to its cap
///    "attempt": 1}          // optional: client retry ordinal, 0-based
///
/// Response object:
///   {"ok": true, "protocol": 2, ...op-specific payload...}
///   {"ok": false, "protocol": 2, "error": "overloaded",
///    "message": "tenant acme has 4 cleans in flight"}
///
/// Stability contract: fields are only ever added, never renamed or
/// removed; unknown fields are ignored on read. kProtocolVersion bumps
/// only when that contract has to break. Version 2 added the append_rows
/// op (streaming ingestion) and the request's "rows" field; both are
/// additive — a version-1 frame parses and re-serializes byte-identically.
inline constexpr int kProtocolVersion = 2;

/// Frames larger than this are refused before allocation — a hostile or
/// corrupt length prefix must not OOM the daemon. Registration payloads
/// carry whole CSV files, so the bound is generous.
inline constexpr uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

/// Operations a client can request.
enum class Op {
  kRegisterDataset,
  kDropDataset,
  kListDatasets,
  kClean,
  kFeedback,
  kExplainStatus,
  /// Streaming ingestion (protocol 2): appends the request's "rows" to the
  /// tenant's working copy and incrementally re-cleans it.
  kAppendRows,
};

const char* OpName(Op op);
Result<Op> ParseOp(const std::string& name);

/// Machine-readable error codes carried in failed responses ("error").
/// The human-oriented detail travels separately in "message".
///   invalid_argument | not_found | already_exists | overloaded |
///   draining | deadline_exceeded | timeout | internal
std::string ErrorCodeFor(const Status& status);

/// Builds the kOutOfRange Status the wire maps to `deadline_exceeded`
/// (same transport convention as `overloaded`/`draining`: the code rides
/// in a message prefix, keeping the StatusCode enum closed).
Status DeadlineExceeded(const std::string& detail);

/// Socket-timeout classification for Statuses out of ReadFrame/WriteFrame
/// when the fd has SO_RCVTIMEO/SO_SNDTIMEO set. Idle = the timer expired
/// between frames (nothing lost — the server closes silently, the client
/// may safely retry); mid-frame = it expired with a frame partly
/// transferred (the stream is unrecoverable, close the connection).
bool IsTimeout(const Status& status);
bool IsIdleTimeout(const Status& status);

/// One parsed request frame.
struct Request {
  Op op = Op::kListDatasets;
  std::string tenant;
  std::string dataset;
  /// register_dataset payloads.
  std::string csv_text;
  std::string dc_text;
  /// feedback payload: a user-verified cell value.
  int64_t cell_tid = -1;
  std::string cell_attr;
  std::string cell_value;
  /// append_rows payload: raw string rows, schema arity each. Serialized
  /// only when non-empty (protocol-1 frames round-trip byte-identically).
  std::vector<std::vector<std::string>> rows;
  /// Optional per-request config overrides (subset of HoloCleanConfig
  /// knobs; absent fields keep the server defaults).
  JsonValue config_overrides = JsonValue::Object();
  /// Optional deadline for the whole request, queue wait included; <= 0
  /// means "not set" (the server applies its default). Serialized only
  /// when set, so protocol-1 clients that never heard of deadlines
  /// round-trip byte-identically.
  int64_t deadline_ms = 0;
  /// Retry ordinal stamped by CallWithRetry (0 = first attempt); lets the
  /// server count retried requests. Serialized only when > 0.
  int attempt = 0;

  JsonValue ToJson() const;
  static Result<Request> FromJson(const JsonValue& json);
};

/// Applies the request's config overrides onto `config`. Unknown keys are
/// an error (a misspelled knob silently ignored would be a debugging
/// trap); unmentioned knobs keep their current values.
Status ApplyConfigOverrides(const JsonValue& overrides,
                            HoloCleanConfig* config);

/// Builds the standard response envelopes.
JsonValue OkResponse();
JsonValue ErrorResponse(const Status& status);

// --- Framing ---------------------------------------------------------------

/// Serializes `json` into a length-prefixed frame appended to `out`.
void EncodeFrame(const JsonValue& json, std::string* out);

/// Reads one length-prefixed JSON frame from `fd` (blocking). Returns
/// kNotFound on clean EOF before any byte of a frame, kParseError on a
/// truncated/oversized/malformed frame, kInternal on socket errors. When
/// the fd carries SO_RCVTIMEO, a timer expiry maps to an idle-timeout or
/// mid-frame-timeout Status (see IsIdleTimeout). Failpoint sites:
/// serve.frame.read (error/delay before the read),
/// serve.frame.read_eintr (pretend a syscall was signal-interrupted),
/// serve.frame.read_slice (cap each syscall's bytes — short-read drill).
Result<JsonValue> ReadFrame(int fd);

/// Writes one length-prefixed JSON frame to `fd` (blocking, handles short
/// writes; SO_SNDTIMEO expiry maps to a timeout Status). Failpoint
/// sites: serve.frame.write, serve.frame.write_eintr,
/// serve.frame.write_slice (as for ReadFrame), plus
/// serve.frame.corrupt_write (XOR-flips payload bytes — the peer sees a
/// malformed frame) and serve.frame.truncate_write (sends half the
/// frame, then fails — the peer sees a mid-frame hangup).
Status WriteFrame(int fd, const JsonValue& json);

}  // namespace serve
}  // namespace holoclean

#endif  // HOLOCLEAN_SERVE_PROTOCOL_H_
