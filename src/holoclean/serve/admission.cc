#include "holoclean/serve/admission.h"

namespace holoclean {
namespace serve {

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->Release(tenant_);
  controller_ = nullptr;
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_ >= options_.global_inflight) {
    return Status::OutOfRange("overloaded: " + std::to_string(total_) +
                              " requests in flight (global limit)");
  }
  size_t& mine = per_tenant_[tenant];
  if (mine >= options_.per_tenant_inflight) {
    return Status::OutOfRange("overloaded: tenant \"" + tenant + "\" has " +
                              std::to_string(mine) + " requests in flight");
  }
  ++mine;
  ++total_;
  return Ticket(this, tenant);
}

void AdmissionController::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_tenant_.find(tenant);
  if (it != per_tenant_.end() && it->second > 0) {
    if (--it->second == 0) per_tenant_.erase(it);
  }
  if (total_ > 0) --total_;
}

size_t AdmissionController::inflight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_tenant_.find(tenant);
  return it == per_tenant_.end() ? 0 : it->second;
}

size_t AdmissionController::total_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace serve
}  // namespace holoclean
