#ifndef HOLOCLEAN_INFER_GIBBS_H_
#define HOLOCLEAN_INFER_GIBBS_H_

#include <vector>

#include "holoclean/constraints/evaluator.h"
#include "holoclean/infer/marginals.h"
#include "holoclean/model/compiled_graph.h"
#include "holoclean/model/factor_graph.h"
#include "holoclean/util/rng.h"
#include "holoclean/util/thread_pool.h"

namespace holoclean {

/// Gibbs sampling hyper-parameters.
struct GibbsOptions {
  /// Full sweeps discarded before collecting marginal counts.
  int burn_in = 20;
  /// Full sweeps contributing to the marginal estimates.
  int samples = 80;
  uint64_t seed = 42;
  /// Optional worker pool. The sampler partitions the query variables into
  /// connected components of the factor graph and runs one independent
  /// chain per component (the DimmWitted-style parallelism of the paper's
  /// inference engine). Each component's chain is seeded by its smallest
  /// variable id, so results are identical for any thread count.
  ThreadPool* pool = nullptr;
};

/// Single-site Gibbs sampler over the query variables (paper §2.2, §5.2).
///
/// Each sweep resamples every query variable from its conditional: the
/// candidate score is the (precomputed) unary score minus, for every
/// attached DC factor, weight × 1[the factor's constraint is violated under
/// the current assignment of its other variables]. Evidence variables stay
/// fixed at their observed values. With no DC factors the chain's stationary
/// distribution equals ExactIndependentMarginals and mixes in O(n log n)
/// sweeps (the guarantee HoloClean's relaxation buys, §5.2).
///
/// With a CompiledGraph the sampler runs its compiled kernel: unary scores
/// come from the dense weight vector and CSR feature arenas, and factor
/// scoring is a precomputed violation-table lookup (falling back to the
/// DcEvaluator only for factors whose candidate cross-product exceeded the
/// table cap). Sweeps are allocation-free and the sampled chain is
/// bit-identical to the reference path.
class GibbsSampler {
 public:
  GibbsSampler(const FactorGraph* graph, const Table* table,
               const std::vector<DenialConstraint>* dcs,
               const WeightStore* weights, GibbsOptions options,
               const CompiledGraph* compiled = nullptr);

  /// Runs burn-in + sampling sweeps, returns estimated marginals.
  Marginals Run();

  /// Current assignment (candidate index per variable) — for tests.
  const std::vector<int>& assignment() const { return assignment_; }

 private:
  /// Per-chain scratch buffers, owned by RunComponent so concurrent
  /// component chains never share them. Reused across sweeps: after
  /// warm-up, sampling performs no allocations.
  struct ChainScratch {
    std::vector<double> scores;
    std::vector<double> factor_acc;
    std::vector<CellOverride> overrides;
  };

  double FactorScore(int var_id, int candidate_index,
                     std::vector<CellOverride>* overrides);
  /// Compiled kernel: per-candidate factor scores for `var_id` into
  /// scratch->factor_acc in one pass over its factors (affine
  /// violation-table indexing; evaluator fallback above the table cap).
  /// Accumulation order matches FactorScore bit for bit.
  void FactorScoresCompiled(int var_id, size_t num_cand,
                            ChainScratch* scratch);
  void SampleVariable(int var_id, Rng* rng, ChainScratch* scratch);
  /// Runs the full chain for one connected component of query variables,
  /// accumulating marginal counts (disjoint from other components).
  void RunComponent(const std::vector<int32_t>& component,
                    std::vector<std::vector<uint32_t>>* counts);
  /// Query variables grouped into factor-graph connected components,
  /// ordered by smallest member id.
  std::vector<std::vector<int32_t>> QueryComponents() const;

  const FactorGraph* graph_;
  const Table* table_;
  const std::vector<DenialConstraint>* dcs_;
  const WeightStore* weights_;
  GibbsOptions options_;
  /// Compiled kernel, or null for the reference interpreter.
  const CompiledGraph* compiled_;
  DcEvaluator evaluator_;
  std::vector<int> assignment_;
  /// Unary scores are assignment-independent; precomputed once.
  std::vector<std::vector<double>> unary_scores_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_INFER_GIBBS_H_
