#include "holoclean/infer/marginals.h"

#include <algorithm>

#include "holoclean/infer/learner.h"

namespace holoclean {

int Marginals::MapIndex(int var_id) const {
  const auto& p = probs_[static_cast<size_t>(var_id)];
  return static_cast<int>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

double Marginals::MapProb(int var_id) const {
  const auto& p = probs_[static_cast<size_t>(var_id)];
  return *std::max_element(p.begin(), p.end());
}

Marginals ExactIndependentMarginals(const FactorGraph& graph,
                                    const WeightStore& weights) {
  Marginals out(graph.num_variables());
  std::vector<double> scores;
  for (size_t v = 0; v < graph.num_variables(); ++v) {
    const Variable& var = graph.variable(static_cast<int>(v));
    auto& probs = out.probs()[v];
    if (var.is_evidence) {
      probs.assign(var.NumCandidates(), 0.0);
      probs[static_cast<size_t>(var.init_index)] = 1.0;
      continue;
    }
    scores.assign(var.NumCandidates(), 0.0);
    for (size_t k = 0; k < var.NumCandidates(); ++k) {
      scores[k] =
          graph.UnaryScore(static_cast<int>(v), static_cast<int>(k), weights);
    }
    probs = Softmax(scores);
  }
  return out;
}

}  // namespace holoclean
