#include "holoclean/infer/marginals.h"

#include <algorithm>

#include "holoclean/infer/learner.h"

namespace holoclean {

int Marginals::MapIndex(int var_id) const {
  const auto& p = probs_[static_cast<size_t>(var_id)];
  return static_cast<int>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

double Marginals::MapProb(int var_id) const {
  const auto& p = probs_[static_cast<size_t>(var_id)];
  return *std::max_element(p.begin(), p.end());
}

Marginals ExactIndependentMarginals(const FactorGraph& graph,
                                    const WeightStore& weights) {
  Marginals out(graph.num_variables());
  std::vector<double> scores;
  for (size_t v = 0; v < graph.num_variables(); ++v) {
    const Variable& var = graph.variable(static_cast<int>(v));
    auto& probs = out.probs()[v];
    if (var.is_evidence) {
      probs.assign(var.NumCandidates(), 0.0);
      probs[static_cast<size_t>(var.init_index)] = 1.0;
      continue;
    }
    scores.assign(var.NumCandidates(), 0.0);
    for (size_t k = 0; k < var.NumCandidates(); ++k) {
      scores[k] =
          graph.UnaryScore(static_cast<int>(v), static_cast<int>(k), weights);
    }
    probs = Softmax(scores);
  }
  return out;
}

Marginals ExactIndependentMarginals(const CompiledGraph& compiled,
                                    const WeightStore& weights) {
  std::vector<double> dense = compiled.GatherWeights(weights);
  Marginals out(compiled.num_variables());
  for (size_t v = 0; v < compiled.num_variables(); ++v) {
    size_t num_cand =
        static_cast<size_t>(compiled.NumCandidates(static_cast<int>(v)));
    auto& probs = out.probs()[v];
    probs.assign(num_cand, 0.0);
    if (compiled.IsEvidence(static_cast<int>(v))) {
      probs[static_cast<size_t>(compiled.InitIndex(static_cast<int>(v)))] =
          1.0;
      continue;
    }
    for (size_t k = 0; k < num_cand; ++k) {
      probs[k] = compiled.UnaryScore(static_cast<int>(v),
                                     static_cast<int>(k), dense);
    }
    SoftmaxInPlace(&probs);  // Scores softmax into the marginals in place.
  }
  return out;
}

}  // namespace holoclean
