#ifndef HOLOCLEAN_INFER_MARGINALS_H_
#define HOLOCLEAN_INFER_MARGINALS_H_

#include <vector>

#include "holoclean/model/compiled_graph.h"
#include "holoclean/model/factor_graph.h"

namespace holoclean {

/// Posterior marginals per variable: probs[var][k] is the marginal
/// probability of candidate k. Evidence variables get a point mass on
/// their observed value.
class Marginals {
 public:
  explicit Marginals(size_t num_vars) : probs_(num_vars) {}

  std::vector<std::vector<double>>& probs() { return probs_; }
  const std::vector<std::vector<double>>& probs() const { return probs_; }
  const std::vector<double>& Of(int var_id) const {
    return probs_[static_cast<size_t>(var_id)];
  }

  /// Index of the maximum-a-posteriori candidate.
  int MapIndex(int var_id) const;
  /// Marginal probability of the MAP candidate.
  double MapProb(int var_id) const;

 private:
  std::vector<std::vector<double>> probs_;
};

/// Closed-form marginals for the relaxed model (paper §5.2): with no DC
/// factors the variables are independent, so each query variable's marginal
/// is the softmax of its unary scores. Evidence variables are point masses.
Marginals ExactIndependentMarginals(const FactorGraph& graph,
                                    const WeightStore& weights);

/// Compiled-kernel variant: scores candidates through the dense weight
/// vector and CSR feature arenas. Bit-identical marginals, no hash lookup
/// per activation, no per-variable allocation.
Marginals ExactIndependentMarginals(const CompiledGraph& compiled,
                                    const WeightStore& weights);

}  // namespace holoclean

#endif  // HOLOCLEAN_INFER_MARGINALS_H_
