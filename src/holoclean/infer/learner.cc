#include "holoclean/infer/learner.h"

#include <algorithm>
#include <cmath>

#include "holoclean/util/rng.h"

namespace holoclean {

void SoftmaxInPlace(std::vector<double>* scores) {
  if (scores->empty()) return;
  double max_score = *std::max_element(scores->begin(), scores->end());
  double total = 0.0;
  for (double& s : *scores) {
    s = std::exp(s - max_score);
    total += s;
  }
  for (double& s : *scores) s /= total;
}

std::vector<double> Softmax(const std::vector<double>& scores) {
  std::vector<double> probs(scores);
  SoftmaxInPlace(&probs);
  return probs;
}

SgdLearner::SgdLearner(const FactorGraph* graph, LearnerOptions options)
    : graph_(graph), options_(options) {}

std::vector<double> SgdLearner::Train(WeightStore* weights) const {
  return TrainOn(graph_->evidence_vars(), weights);
}

std::vector<double> SgdLearner::TrainOn(
    const std::vector<int32_t>& evidence_vars, WeightStore* weights) const {
  std::vector<int32_t> order(evidence_vars);
  std::vector<double> epoch_nll;
  if (order.empty()) return epoch_nll;

  Rng rng(options_.seed);
  double lr = options_.learning_rate;
  std::vector<double> scores;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double nll = 0.0;
    for (int32_t var_id : order) {
      const Variable& var = graph_->variable(var_id);
      size_t num_cand = var.NumCandidates();
      scores.assign(num_cand, 0.0);
      for (size_t k = 0; k < num_cand; ++k) {
        scores[k] = graph_->UnaryScore(var_id, static_cast<int>(k), *weights);
      }
      SoftmaxInPlace(&scores);  // `scores` now holds the probabilities.
      size_t label = static_cast<size_t>(var.init_index);
      nll -= std::log(std::max(scores[label], 1e-12));

      for (size_t k = 0; k < num_cand; ++k) {
        double coef = (k == label ? 1.0 : 0.0) - scores[k];
        if (coef == 0.0) continue;
        for (int32_t i = var.feat_begin[k]; i < var.feat_begin[k + 1]; ++i) {
          const FeatureInstance& f = var.features[static_cast<size_t>(i)];
          // Lazy L2: shrink the weight as we touch it.
          double w = weights->Get(f.weight_key);
          weights->Set(f.weight_key,
                       w * (1.0 - lr * options_.l2) + lr * coef * f.activation);
        }
      }
    }
    epoch_nll.push_back(nll / static_cast<double>(order.size()));
    lr *= options_.lr_decay;
  }
  return epoch_nll;
}

std::vector<double> SgdLearner::Train(const CompiledGraph& compiled,
                                      WeightStore* weights) const {
  std::vector<int32_t> order(graph_->evidence_vars());
  std::vector<double> epoch_nll;
  if (order.empty()) return epoch_nll;

  // Dense working copy of the parameters; written back at the end. Only
  // weights the reference loop would have Set (coef != 0 at least once)
  // are scattered, so the sparse store's entry set stays bit-compatible.
  std::vector<double> dense = compiled.GatherWeights(*weights);
  std::vector<uint8_t> touched(dense.size(), 0);
  const std::vector<int32_t>& feat_weight = compiled.feat_weight();
  const std::vector<float>& feat_act = compiled.feat_act();

  Rng rng(options_.seed);
  double lr = options_.learning_rate;
  std::vector<double> scores;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double nll = 0.0;
    for (int32_t var_id : order) {
      size_t num_cand = static_cast<size_t>(compiled.NumCandidates(var_id));
      scores.resize(num_cand);
      for (size_t k = 0; k < num_cand; ++k) {
        scores[k] = compiled.UnaryScore(var_id, static_cast<int>(k), dense);
      }
      SoftmaxInPlace(&scores);
      size_t label = static_cast<size_t>(compiled.InitIndex(var_id));
      nll -= std::log(std::max(scores[label], 1e-12));

      for (size_t k = 0; k < num_cand; ++k) {
        double coef = (k == label ? 1.0 : 0.0) - scores[k];
        if (coef == 0.0) continue;
        int64_t end = compiled.FeatEnd(var_id, static_cast<int>(k));
        for (int64_t i = compiled.FeatBegin(var_id, static_cast<int>(k));
             i < end; ++i) {
          size_t wid = static_cast<size_t>(feat_weight[static_cast<size_t>(i)]);
          double w = dense[wid];
          dense[wid] = w * (1.0 - lr * options_.l2) +
                       lr * coef * feat_act[static_cast<size_t>(i)];
          touched[wid] = 1;
        }
      }
    }
    epoch_nll.push_back(nll / static_cast<double>(order.size()));
    lr *= options_.lr_decay;
  }
  compiled.ScatterWeights(dense, touched, weights);
  return epoch_nll;
}

}  // namespace holoclean
