#include "holoclean/infer/learner.h"

#include <algorithm>
#include <cmath>

#include "holoclean/util/rng.h"

namespace holoclean {

std::vector<double> Softmax(const std::vector<double>& scores) {
  std::vector<double> probs(scores.size());
  double max_score = *std::max_element(scores.begin(), scores.end());
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    probs[i] = std::exp(scores[i] - max_score);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

SgdLearner::SgdLearner(const FactorGraph* graph, LearnerOptions options)
    : graph_(graph), options_(options) {}

std::vector<double> SgdLearner::Train(WeightStore* weights) const {
  std::vector<int32_t> order(graph_->evidence_vars());
  std::vector<double> epoch_nll;
  if (order.empty()) return epoch_nll;

  Rng rng(options_.seed);
  double lr = options_.learning_rate;
  std::vector<double> scores;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double nll = 0.0;
    for (int32_t var_id : order) {
      const Variable& var = graph_->variable(var_id);
      size_t num_cand = var.NumCandidates();
      scores.assign(num_cand, 0.0);
      for (size_t k = 0; k < num_cand; ++k) {
        scores[k] = graph_->UnaryScore(var_id, static_cast<int>(k), *weights);
      }
      std::vector<double> probs = Softmax(scores);
      size_t label = static_cast<size_t>(var.init_index);
      nll -= std::log(std::max(probs[label], 1e-12));

      for (size_t k = 0; k < num_cand; ++k) {
        double coef = (k == label ? 1.0 : 0.0) - probs[k];
        if (coef == 0.0) continue;
        for (int32_t i = var.feat_begin[k]; i < var.feat_begin[k + 1]; ++i) {
          const FeatureInstance& f = var.features[static_cast<size_t>(i)];
          // Lazy L2: shrink the weight as we touch it.
          double w = weights->Get(f.weight_key);
          weights->Set(f.weight_key,
                       w * (1.0 - lr * options_.l2) + lr * coef * f.activation);
        }
      }
    }
    epoch_nll.push_back(nll / static_cast<double>(order.size()));
    lr *= options_.lr_decay;
  }
  return epoch_nll;
}

}  // namespace holoclean
