#ifndef HOLOCLEAN_INFER_LEARNER_H_
#define HOLOCLEAN_INFER_LEARNER_H_

#include <vector>

#include "holoclean/model/compiled_graph.h"
#include "holoclean/model/factor_graph.h"

namespace holoclean {

/// SGD hyper-parameters for weight learning.
struct LearnerOptions {
  int epochs = 20;
  double learning_rate = 0.05;
  /// Multiplicative decay applied to the learning rate per epoch.
  double lr_decay = 0.95;
  /// L2 regularization strength (applied lazily to touched weights).
  double l2 = 1e-5;
  uint64_t seed = 17;
};

/// Numerically stable softmax. Empty input yields an empty result.
std::vector<double> Softmax(const std::vector<double>& scores);

/// In-place variant: replaces `scores` with its softmax, allocation-free.
/// Produces exactly the values Softmax would; the learn/infer hot loops
/// (SGD, Gibbs sweeps, marginal estimation) use this on reused scratch
/// buffers. No-op on empty input.
void SoftmaxInPlace(std::vector<double>* scores);

/// Empirical-risk minimization over the evidence variables (paper §2.2):
/// each evidence cell is a multinomial logistic example whose label is its
/// observed value; SGD maximizes the conditional log-likelihood. Because
/// the relaxed model's variables are independent, this objective is convex
/// (paper §5.2).
class SgdLearner {
 public:
  SgdLearner(const FactorGraph* graph, LearnerOptions options);

  /// Trains `weights` in place; returns the average negative log-likelihood
  /// per epoch (for convergence monitoring/tests).
  std::vector<double> Train(WeightStore* weights) const;

  /// Compiled-kernel variant: gathers the store into a dense parameter
  /// vector, runs the same SGD over the compiled CSR feature arenas, and
  /// scatters the touched weights back. Bit-identical to Train(weights) —
  /// same shuffles, same arithmetic order, same store entry set — just
  /// without a hash lookup per feature activation. `compiled` must have
  /// been built from this learner's graph.
  std::vector<double> Train(const CompiledGraph& compiled,
                            WeightStore* weights) const;

  /// Warm-start refinement over a chosen subset of evidence variables:
  /// trains `weights` in place starting from their current values (no
  /// reinitialization), same per-example update as Train. The streaming
  /// tier uses this to fold a freshly appended batch's evidence into
  /// already-learned weights without revisiting the full evidence set.
  /// Runs the reference-graph path — append deltas are small, so the
  /// per-activation hash lookup doesn't matter.
  std::vector<double> TrainOn(const std::vector<int32_t>& evidence_vars,
                              WeightStore* weights) const;

 private:
  const FactorGraph* graph_;
  LearnerOptions options_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_INFER_LEARNER_H_
