#include "holoclean/infer/gibbs.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "holoclean/infer/learner.h"
#include "holoclean/util/hash.h"
#include "holoclean/util/union_find.h"

namespace holoclean {

GibbsSampler::GibbsSampler(const FactorGraph* graph, const Table* table,
                           const std::vector<DenialConstraint>* dcs,
                           const WeightStore* weights, GibbsOptions options)
    : graph_(graph),
      table_(table),
      dcs_(dcs),
      weights_(weights),
      options_(options),
      evaluator_(table) {
  assignment_.resize(graph_->num_variables());
  unary_scores_.resize(graph_->num_variables());
  for (size_t v = 0; v < graph_->num_variables(); ++v) {
    const Variable& var = graph_->variable(static_cast<int>(v));
    assignment_[v] = var.init_index >= 0 ? var.init_index : 0;
    auto& scores = unary_scores_[v];
    scores.resize(var.NumCandidates());
    for (size_t k = 0; k < var.NumCandidates(); ++k) {
      scores[k] = graph_->UnaryScore(static_cast<int>(v),
                                     static_cast<int>(k), *weights_);
    }
  }
}

double GibbsSampler::FactorScore(int var_id, int candidate_index) {
  const Variable& var = graph_->variable(var_id);
  double score = 0.0;
  std::vector<CellOverride> overrides;
  for (int32_t fid : graph_->FactorsOfVar(var_id)) {
    const DcFactor& factor =
        graph_->dc_factors()[static_cast<size_t>(fid)];
    overrides.clear();
    for (int32_t other : factor.var_ids) {
      const Variable& other_var = graph_->variable(other);
      ValueId value =
          other == var_id
              ? var.domain[static_cast<size_t>(candidate_index)]
              : other_var.domain[static_cast<size_t>(
                    assignment_[static_cast<size_t>(other)])];
      overrides.push_back({other_var.cell, value});
    }
    const DenialConstraint& dc =
        (*dcs_)[static_cast<size_t>(factor.dc_index)];
    if (evaluator_.ViolatesWith(dc, factor.t1, factor.t2, overrides)) {
      score -= factor.weight;
    }
  }
  return score;
}

void GibbsSampler::SampleVariable(int var_id, Rng* rng,
                                  std::vector<double>* scratch) {
  const Variable& var = graph_->variable(var_id);
  size_t num_cand = var.NumCandidates();
  if (num_cand == 1) {
    assignment_[static_cast<size_t>(var_id)] = 0;
    return;
  }
  auto& scores = *scratch;
  scores.assign(num_cand, 0.0);
  const auto& unary = unary_scores_[static_cast<size_t>(var_id)];
  bool has_factors = !graph_->FactorsOfVar(var_id).empty();
  for (size_t k = 0; k < num_cand; ++k) {
    scores[k] = unary[k];
    if (has_factors) {
      scores[k] += FactorScore(var_id, static_cast<int>(k));
    }
  }
  std::vector<double> probs = Softmax(scores);
  assignment_[static_cast<size_t>(var_id)] =
      static_cast<int>(rng->Categorical(probs));
}

std::vector<std::vector<int32_t>> GibbsSampler::QueryComponents() const {
  const auto& query = graph_->query_vars();
  UnionFind uf(graph_->num_variables());
  for (const DcFactor& factor : graph_->dc_factors()) {
    for (size_t i = 1; i < factor.var_ids.size(); ++i) {
      uf.Union(static_cast<size_t>(factor.var_ids[0]),
               static_cast<size_t>(factor.var_ids[i]));
    }
  }
  std::unordered_map<size_t, std::vector<int32_t>> by_root;
  for (int32_t v : query) {
    by_root[uf.Find(static_cast<size_t>(v))].push_back(v);
  }
  std::vector<std::vector<int32_t>> components;
  components.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end());
    components.push_back(std::move(members));
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return components;
}

void GibbsSampler::RunComponent(
    const std::vector<int32_t>& component,
    std::vector<std::vector<uint32_t>>* counts) {
  // Seeded by the component's smallest variable id: deterministic for any
  // thread count or component ordering.
  Rng rng(options_.seed ^ Mix64(static_cast<uint64_t>(component[0]) + 1));
  std::vector<int32_t> order(component);
  std::vector<double> scratch;
  int total_sweeps = options_.burn_in + options_.samples;
  for (int sweep = 0; sweep < total_sweeps; ++sweep) {
    rng.Shuffle(&order);
    for (int32_t var_id : order) {
      SampleVariable(var_id, &rng, &scratch);
    }
    if (sweep >= options_.burn_in) {
      for (int32_t var_id : order) {
        ++(*counts)[static_cast<size_t>(var_id)][static_cast<size_t>(
            assignment_[static_cast<size_t>(var_id)])];
      }
    }
  }
}

Marginals GibbsSampler::Run() {
  std::vector<std::vector<uint32_t>> counts(graph_->num_variables());
  for (size_t v = 0; v < graph_->num_variables(); ++v) {
    counts[v].assign(graph_->variable(static_cast<int>(v)).NumCandidates(),
                     0);
  }

  // Independent chains per factor-graph component; components share no
  // variables, so their chains may run concurrently.
  std::vector<std::vector<int32_t>> components = QueryComponents();
  if (options_.pool != nullptr && components.size() > 1) {
    options_.pool->ParallelFor(components.size(), [&](size_t c) {
      RunComponent(components[c], &counts);
    });
  } else {
    for (const auto& component : components) {
      RunComponent(component, &counts);
    }
  }

  Marginals out(graph_->num_variables());
  for (size_t v = 0; v < graph_->num_variables(); ++v) {
    const Variable& var = graph_->variable(static_cast<int>(v));
    auto& probs = out.probs()[v];
    probs.assign(var.NumCandidates(), 0.0);
    if (var.is_evidence) {
      probs[static_cast<size_t>(var.init_index)] = 1.0;
      continue;
    }
    uint64_t total = 0;
    for (uint32_t c : counts[v]) total += c;
    if (total == 0) {
      // Query variable never sampled (shouldn't happen); keep current state.
      probs[static_cast<size_t>(assignment_[v])] = 1.0;
      continue;
    }
    for (size_t k = 0; k < probs.size(); ++k) {
      probs[k] = static_cast<double>(counts[v][k]) /
                 static_cast<double>(total);
    }
  }
  return out;
}

}  // namespace holoclean
