#include "holoclean/infer/gibbs.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "holoclean/infer/learner.h"
#include "holoclean/util/hash.h"
#include "holoclean/util/union_find.h"

namespace holoclean {

GibbsSampler::GibbsSampler(const FactorGraph* graph, const Table* table,
                           const std::vector<DenialConstraint>* dcs,
                           const WeightStore* weights, GibbsOptions options,
                           const CompiledGraph* compiled)
    : graph_(graph),
      table_(table),
      dcs_(dcs),
      weights_(weights),
      options_(options),
      compiled_(compiled),
      // The fallback evaluator must score ≈ predicates exactly like the
      // precomputed violation tables, so it adopts the compiled graph's
      // recorded threshold (same 0.8 default on the reference path).
      evaluator_(table, compiled != nullptr ? compiled->sim_threshold()
                                            : 0.8) {
  assignment_.resize(graph_->num_variables());
  unary_scores_.resize(graph_->num_variables());
  std::vector<double> dense;
  if (compiled_ != nullptr) dense = compiled_->GatherWeights(*weights_);
  for (size_t v = 0; v < graph_->num_variables(); ++v) {
    const Variable& var = graph_->variable(static_cast<int>(v));
    assignment_[v] = var.init_index >= 0 ? var.init_index : 0;
    auto& scores = unary_scores_[v];
    scores.resize(var.NumCandidates());
    // Evidence variables are never resampled, so the compiled kernel skips
    // their unary scores (a large share of the feature arena on typical
    // graphs). The reference path keeps the original behavior.
    if (compiled_ != nullptr && var.is_evidence) continue;
    for (size_t k = 0; k < var.NumCandidates(); ++k) {
      scores[k] =
          compiled_ != nullptr
              ? compiled_->UnaryScore(static_cast<int>(v),
                                      static_cast<int>(k), dense)
              : graph_->UnaryScore(static_cast<int>(v), static_cast<int>(k),
                                   *weights_);
    }
  }
}

double GibbsSampler::FactorScore(int var_id, int candidate_index,
                                 std::vector<CellOverride>* overrides) {
  const Variable& var = graph_->variable(var_id);
  double score = 0.0;
  for (int32_t fid : graph_->FactorsOfVar(var_id)) {
    const DcFactor& factor =
        graph_->dc_factors()[static_cast<size_t>(fid)];
    overrides->clear();
    for (int32_t other : factor.var_ids) {
      const Variable& other_var = graph_->variable(other);
      ValueId value =
          other == var_id
              ? var.domain[static_cast<size_t>(candidate_index)]
              : other_var.domain[static_cast<size_t>(
                    assignment_[static_cast<size_t>(other)])];
      overrides->push_back({other_var.cell, value});
    }
    const DenialConstraint& dc =
        (*dcs_)[static_cast<size_t>(factor.dc_index)];
    if (evaluator_.ViolatesWith(dc, factor.t1, factor.t2, *overrides)) {
      score -= factor.weight;
    }
  }
  return score;
}

void GibbsSampler::FactorScoresCompiled(int var_id, size_t num_cand,
                                        ChainScratch* scratch) {
  // Accumulates every candidate's factor score into scratch->factor_acc in
  // one pass over the variable's factors. For each tabled factor the
  // lookup index is affine in the candidate (base + k * stride under the
  // row-major table layout), so the per-candidate work is a single byte
  // load. Contributions accumulate per candidate in factor order — the
  // exact arithmetic sequence of the reference FactorScore — so the chain
  // stays bit-identical.
  const CompiledGraph& c = *compiled_;
  const std::vector<int32_t>& fov = c.fov();
  const std::vector<int32_t>& factor_vars = c.factor_vars();
  auto& acc = scratch->factor_acc;
  acc.assign(num_cand, 0.0);
  for (int32_t fi = c.FovBegin(var_id); fi < c.FovEnd(var_id); ++fi) {
    int fid = fov[static_cast<size_t>(fi)];
    double weight = c.FactorWeight(fid);
    if (c.HasViolationTable(fid)) {
      size_t base = 0;
      size_t stride = 0;
      for (int32_t i = c.FactorVarBegin(fid); i < c.FactorVarEnd(fid); ++i) {
        int32_t v = factor_vars[static_cast<size_t>(i)];
        size_t n = static_cast<size_t>(c.NumCandidates(v));
        if (v == var_id) {
          base *= n;
          stride = 1;
        } else {
          base = base * n +
                 static_cast<size_t>(assignment_[static_cast<size_t>(v)]);
          stride *= n;
        }
      }
      const uint8_t* entry = c.ViolationTableEntry(fid, base);
      for (size_t k = 0; k < num_cand; ++k) {
        if (entry[k * stride] != 0) acc[k] -= weight;
      }
    } else {
      // Fallback: the factor's candidate cross-product was above the table
      // cap; evaluate it like the reference path (same override order, so
      // the verdict — and the chain — is bit-identical).
      const Variable& var = graph_->variable(var_id);
      const DenialConstraint& dc =
          (*dcs_)[static_cast<size_t>(c.FactorDcIndex(fid))];
      for (size_t k = 0; k < num_cand; ++k) {
        auto& overrides = scratch->overrides;
        overrides.clear();
        for (int32_t i = c.FactorVarBegin(fid); i < c.FactorVarEnd(fid);
             ++i) {
          int32_t other = factor_vars[static_cast<size_t>(i)];
          const Variable& other_var = graph_->variable(other);
          ValueId value =
              other == var_id
                  ? var.domain[k]
                  : other_var.domain[static_cast<size_t>(
                        assignment_[static_cast<size_t>(other)])];
          overrides.push_back({other_var.cell, value});
        }
        if (evaluator_.ViolatesWith(dc, c.FactorT1(fid), c.FactorT2(fid),
                                    overrides)) {
          acc[k] -= weight;
        }
      }
    }
  }
}

void GibbsSampler::SampleVariable(int var_id, Rng* rng,
                                  ChainScratch* scratch) {
  const Variable& var = graph_->variable(var_id);
  size_t num_cand = var.NumCandidates();
  if (num_cand == 1) {
    assignment_[static_cast<size_t>(var_id)] = 0;
    return;
  }
  auto& scores = scratch->scores;
  scores.assign(num_cand, 0.0);
  const auto& unary = unary_scores_[static_cast<size_t>(var_id)];
  bool has_factors = !graph_->FactorsOfVar(var_id).empty();
  if (compiled_ != nullptr && has_factors) {
    FactorScoresCompiled(var_id, num_cand, scratch);
    const auto& acc = scratch->factor_acc;
    for (size_t k = 0; k < num_cand; ++k) {
      scores[k] = unary[k] + acc[k];
    }
  } else {
    for (size_t k = 0; k < num_cand; ++k) {
      scores[k] = unary[k];
      if (has_factors) {
        scores[k] += FactorScore(var_id, static_cast<int>(k),
                                 &scratch->overrides);
      }
    }
  }
  SoftmaxInPlace(&scores);  // `scores` now holds the probabilities.
  assignment_[static_cast<size_t>(var_id)] =
      static_cast<int>(rng->Categorical(scores));
}

std::vector<std::vector<int32_t>> GibbsSampler::QueryComponents() const {
  const auto& query = graph_->query_vars();
  UnionFind uf(graph_->num_variables());
  for (const DcFactor& factor : graph_->dc_factors()) {
    for (size_t i = 1; i < factor.var_ids.size(); ++i) {
      uf.Union(static_cast<size_t>(factor.var_ids[0]),
               static_cast<size_t>(factor.var_ids[i]));
    }
  }
  std::unordered_map<size_t, std::vector<int32_t>> by_root;
  for (int32_t v : query) {
    by_root[uf.Find(static_cast<size_t>(v))].push_back(v);
  }
  std::vector<std::vector<int32_t>> components;
  components.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end());
    components.push_back(std::move(members));
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return components;
}

void GibbsSampler::RunComponent(
    const std::vector<int32_t>& component,
    std::vector<std::vector<uint32_t>>* counts) {
  // Seeded by the component's smallest variable id: deterministic for any
  // thread count or component ordering.
  Rng rng(options_.seed ^ Mix64(static_cast<uint64_t>(component[0]) + 1));
  std::vector<int32_t> order(component);
  ChainScratch scratch;
  int total_sweeps = options_.burn_in + options_.samples;
  for (int sweep = 0; sweep < total_sweeps; ++sweep) {
    rng.Shuffle(&order);
    for (int32_t var_id : order) {
      SampleVariable(var_id, &rng, &scratch);
    }
    if (sweep >= options_.burn_in) {
      for (int32_t var_id : order) {
        ++(*counts)[static_cast<size_t>(var_id)][static_cast<size_t>(
            assignment_[static_cast<size_t>(var_id)])];
      }
    }
  }
}

Marginals GibbsSampler::Run() {
  std::vector<std::vector<uint32_t>> counts(graph_->num_variables());
  for (size_t v = 0; v < graph_->num_variables(); ++v) {
    counts[v].assign(graph_->variable(static_cast<int>(v)).NumCandidates(),
                     0);
  }

  // Independent chains per factor-graph component; components share no
  // variables, so their chains may run concurrently.
  std::vector<std::vector<int32_t>> components = QueryComponents();
  if (options_.pool != nullptr && components.size() > 1) {
    options_.pool->ParallelFor(components.size(), [&](size_t c) {
      RunComponent(components[c], &counts);
    });
  } else {
    for (const auto& component : components) {
      RunComponent(component, &counts);
    }
  }

  Marginals out(graph_->num_variables());
  for (size_t v = 0; v < graph_->num_variables(); ++v) {
    const Variable& var = graph_->variable(static_cast<int>(v));
    auto& probs = out.probs()[v];
    probs.assign(var.NumCandidates(), 0.0);
    if (var.is_evidence) {
      probs[static_cast<size_t>(var.init_index)] = 1.0;
      continue;
    }
    uint64_t total = 0;
    for (uint32_t c : counts[v]) total += c;
    if (total == 0) {
      // Query variable never sampled (shouldn't happen); keep current state.
      probs[static_cast<size_t>(assignment_[v])] = 1.0;
      continue;
    }
    for (size_t k = 0; k < probs.size(); ++k) {
      probs[k] = static_cast<double>(counts[v][k]) /
                 static_cast<double>(total);
    }
  }
  return out;
}

}  // namespace holoclean
