#ifndef HOLOCLEAN_BASELINES_SCARE_H_
#define HOLOCLEAN_BASELINES_SCARE_H_

#include <vector>

#include "holoclean/core/report.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// Reimplementation of SCARE (Yakout, Berti-Équille, Elmagarmid — SIGMOD
/// 2013), the statistics-only baseline of the paper: scalable automatic
/// repairing with maximal likelihood and bounded changes. It uses no
/// integrity constraints or external data.
///
/// Our version follows SCARE's core loop: estimate the empirical
/// conditional model P(attr = v | other attribute values) from the data
/// (naive-Bayes factorization over co-occurrence statistics), flag cells
/// whose observed value is unlikely under that model, and propose the
/// maximum-likelihood replacement when its likelihood exceeds the observed
/// value's by `min_likelihood_gain`, changing at most `max_changes_per_tuple`
/// cells per tuple.
class Scare {
 public:
  struct Options {
    /// Log-likelihood margin required to modify a value.
    double min_likelihood_gain = 2.0;
    /// SCARE's bounded-changes parameter.
    int max_changes_per_tuple = 2;
    /// Laplace smoothing for the conditional estimates.
    double smoothing = 0.1;
  };

  Scare() : options_(Options()) {}
  explicit Scare(Options options) : options_(options) {}

  std::vector<Repair> Run(const Dataset& dataset) const;

 private:
  Options options_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_BASELINES_SCARE_H_
