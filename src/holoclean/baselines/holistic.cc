#include "holoclean/baselines/holistic.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "holoclean/detect/conflict_hypergraph.h"
#include "holoclean/detect/violation_detector.h"

namespace holoclean {

namespace {

// Value suggestions that resolve the violations a cell participates in:
// for every !=-predicate of a violated constraint targeting the cell's
// attribute, becoming equal to the partner's value resolves the violation.
ValueId ChooseRepairValue(const Table& table,
                          const std::vector<DenialConstraint>& dcs,
                          const ConflictHypergraph& graph,
                          const CellRef& cell) {
  std::map<ValueId, int> votes;
  for (int e : graph.EdgesOfCell(cell)) {
    const Violation& v = graph.edges()[static_cast<size_t>(e)];
    const DenialConstraint& dc = dcs[static_cast<size_t>(v.dc_index)];
    for (const Predicate& p : dc.preds) {
      if (p.op != Op::kNeq || p.rhs_is_constant) continue;
      TupleId lhs_tid = p.lhs_tuple == 0 ? v.t1 : v.t2;
      TupleId rhs_tid = p.rhs_tuple == 0 ? v.t1 : v.t2;
      if (p.lhs_attr == cell.attr && lhs_tid == cell.tid) {
        ++votes[table.Get(rhs_tid, p.rhs_attr)];
      } else if (p.rhs_attr == cell.attr && rhs_tid == cell.tid) {
        ++votes[table.Get(lhs_tid, p.lhs_attr)];
      }
    }
  }
  if (votes.empty()) return table.Get(cell);
  // Minimality: the majority suggestion requires the fewest further
  // changes. Ties break on the smaller string (deterministic).
  ValueId best = table.Get(cell);
  int best_votes = 0;
  for (const auto& [value, n] : votes) {
    bool better = n > best_votes ||
                  (n == best_votes && best_votes > 0 &&
                   table.dict().GetString(value) <
                       table.dict().GetString(best));
    if (better) {
      best = value;
      best_votes = n;
    }
  }
  return best;
}

}  // namespace

std::vector<Repair> Holistic::Run(
    const Dataset& dataset, const std::vector<DenialConstraint>& dcs) const {
  Table work = dataset.dirty().Clone();
  ViolationDetector::Options det_options;
  det_options.sim_threshold = options_.sim_threshold;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    ViolationDetector detector(&work, &dcs, det_options);
    std::vector<Violation> violations = detector.Detect();
    if (violations.empty()) break;
    ConflictHypergraph graph(std::move(violations));
    // Greedy minimum vertex cover over the hyperedges: take the cell with
    // the highest uncovered degree. This is the minimality heuristic of
    // the original system — and it inherits its failure mode: when the
    // left-hand side of the dependencies accumulates the highest degree
    // (as on Flights, where the flight id joins all four constraints), the
    // cover is spent on cells with no repair expression and nothing gets
    // fixed. All suggestions of one iteration are computed against the same
    // snapshot and applied as a batch, then violations are re-detected.
    std::vector<bool> edge_covered(graph.edges().size(), false);
    size_t uncovered = graph.edges().size();
    std::vector<CellRef> nodes = graph.Nodes();
    std::vector<std::pair<CellRef, ValueId>> batch;
    while (uncovered > 0) {
      CellRef best{};
      size_t best_degree = 0;
      for (const CellRef& cell : nodes) {
        size_t degree = 0;
        for (int e : graph.EdgesOfCell(cell)) {
          if (!edge_covered[static_cast<size_t>(e)]) ++degree;
        }
        if (degree > best_degree) {
          best = cell;
          best_degree = degree;
        }
      }
      if (best_degree == 0) break;
      ValueId value = ChooseRepairValue(work, dcs, graph, best);
      if (value != work.Get(best)) batch.emplace_back(best, value);
      for (int e : graph.EdgesOfCell(best)) {
        if (!edge_covered[static_cast<size_t>(e)]) {
          edge_covered[static_cast<size_t>(e)] = true;
          --uncovered;
        }
      }
    }
    if (batch.empty()) break;
    for (const auto& [cell, value] : batch) work.Set(cell, value);
  }

  std::vector<Repair> repairs;
  const Table& dirty = dataset.dirty();
  for (size_t t = 0; t < dirty.num_rows(); ++t) {
    for (AttrId a : dataset.RepairableAttrs()) {
      CellRef c{static_cast<TupleId>(t), a};
      if (work.Get(c) != dirty.Get(c)) {
        repairs.push_back({c, dirty.Get(c), work.Get(c), 1.0});
      }
    }
  }
  return repairs;
}

}  // namespace holoclean
