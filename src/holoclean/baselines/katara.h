#ifndef HOLOCLEAN_BASELINES_KATARA_H_
#define HOLOCLEAN_BASELINES_KATARA_H_

#include <vector>

#include "holoclean/core/report.h"
#include "holoclean/extdata/matcher.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// Reimplementation of KATARA's automatic core (Chu et al., SIGMOD 2015) —
/// the external-data-only baseline of the paper.
///
/// KATARA aligns table patterns with a knowledge base and repairs cells
/// that disagree with the KB. We reuse the matching-dependency machinery:
/// a cell is repaired to the dictionary's suggestion when the tuple matches
/// a dictionary record and all suggestions for the cell agree (ambiguous
/// matches are skipped — KATARA defers those to the crowd, which is not
/// available offline). High precision, recall bounded by KB coverage.
class Katara {
 public:
  /// Repairs the dataset's dirty table (not mutated; suggested values are
  /// interned into its dictionary, which is why the dataset is non-const).
  std::vector<Repair> Run(Dataset* dataset, const ExtDictCollection& dicts,
                             const std::vector<MatchingDependency>& mds) const;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_BASELINES_KATARA_H_
