#ifndef HOLOCLEAN_BASELINES_HOLISTIC_H_
#define HOLOCLEAN_BASELINES_HOLISTIC_H_

#include <vector>

#include "holoclean/constraints/denial_constraint.h"
#include "holoclean/core/report.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// Reimplementation of Holistic data cleaning (Chu, Ilyas, Papotti —
/// ICDE 2013), the constraints-only baseline of the paper (Table 1/3).
///
/// Algorithm: detect denial-constraint violations, build the conflict
/// hypergraph, greedily pick a (near-)minimum vertex cover of cells to
/// change, and assign each cover cell the value that resolves the most of
/// its violations with the fewest changes (the minimality principle; the
/// original solves a QP for numeric repairs — our value selection is the
/// majority value among the cell's constraint partners, which preserves the
/// defining minimal-change behaviour). Iterates until no violations remain
/// or `max_iterations` passes complete.
class Holistic {
 public:
  struct Options {
    int max_iterations = 10;
    double sim_threshold = 0.8;
  };

  Holistic() : options_(Options()) {}
  explicit Holistic(Options options) : options_(options) {}

  /// Repairs `dataset`'s dirty table. The table is not mutated; the repairs
  /// reflect the final state of the internal working copy.
  std::vector<Repair> Run(const Dataset& dataset,
                             const std::vector<DenialConstraint>& dcs) const;

 private:
  Options options_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_BASELINES_HOLISTIC_H_
