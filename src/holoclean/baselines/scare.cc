#include "holoclean/baselines/scare.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "holoclean/stats/cooccurrence.h"

namespace holoclean {

namespace {

// Log-likelihood of value v for attribute a given the tuple's other
// attribute values, Σ_ctx log P(v | v_ctx), with Laplace smoothing scaled
// by the attribute's domain size so rare values cannot win on smoothing
// mass alone.
double LogLikelihood(const CooccurrenceStats& cooc, const Table& table,
                     const std::vector<AttrId>& attrs, TupleId t, AttrId a,
                     ValueId v, double smoothing, size_t num_rows) {
  double domain = static_cast<double>(cooc.Domain(a).size()) + 1.0;
  double ll = std::log((cooc.Count(a, v) + smoothing) /
                       (static_cast<double>(num_rows) + smoothing * domain));
  for (AttrId a_ctx : attrs) {
    if (a_ctx == a) continue;
    ValueId v_ctx = table.Get(t, a_ctx);
    if (v_ctx == Dictionary::kNull) continue;
    int pair = cooc.PairCount(a, v, a_ctx, v_ctx);
    int ctx_count = cooc.Count(a_ctx, v_ctx);
    ll += std::log((pair + smoothing) / (ctx_count + smoothing * domain));
  }
  return ll;
}

}  // namespace

std::vector<Repair> Scare::Run(const Dataset& dataset) const {
  const Table& table = dataset.dirty();
  std::vector<AttrId> attrs = dataset.RepairableAttrs();
  CooccurrenceStats cooc = CooccurrenceStats::Build(table, attrs);
  size_t num_rows = table.num_rows();

  std::vector<Repair> repairs;
  for (size_t t = 0; t < num_rows; ++t) {
    TupleId tid = static_cast<TupleId>(t);
    // Rank candidate modifications of this tuple by likelihood gain and
    // apply the top `max_changes_per_tuple`.
    std::vector<std::pair<double, Repair>> proposals;
    for (AttrId a : attrs) {
      ValueId observed = table.Get(tid, a);
      if (observed == Dictionary::kNull) continue;
      double observed_ll = LogLikelihood(cooc, table, attrs, tid, a, observed,
                                         options_.smoothing, num_rows);
      // Candidate replacements: values co-occurring with the tuple context.
      std::unordered_map<ValueId, bool> seen;
      double best_ll = observed_ll;
      ValueId best_value = observed;
      for (AttrId a_ctx : attrs) {
        if (a_ctx == a) continue;
        ValueId v_ctx = table.Get(tid, a_ctx);
        if (v_ctx == Dictionary::kNull) continue;
        for (const auto& [v, n] : cooc.CooccurringValues(a, a_ctx, v_ctx)) {
          if (v == observed || seen.count(v) > 0) continue;
          seen[v] = true;
          double ll = LogLikelihood(cooc, table, attrs, tid, a, v,
                                    options_.smoothing, num_rows);
          if (ll > best_ll) {
            best_ll = ll;
            best_value = v;
          }
        }
      }
      if (best_value != observed &&
          best_ll - observed_ll >= options_.min_likelihood_gain) {
        proposals.push_back(
            {best_ll - observed_ll, {CellRef{tid, a}, observed, best_value,
                                     1.0}});
      }
    }
    std::sort(proposals.begin(), proposals.end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
    int applied = 0;
    for (const auto& [gain, repair] : proposals) {
      if (applied >= options_.max_changes_per_tuple) break;
      repairs.push_back(repair);
      ++applied;
    }
  }
  std::sort(repairs.begin(), repairs.end(),
            [](const Repair& a, const Repair& b) { return a.cell < b.cell; });
  return repairs;
}

}  // namespace holoclean
