#include "holoclean/baselines/katara.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "holoclean/util/logging.h"

namespace holoclean {

std::vector<Repair> Katara::Run(
    Dataset* dataset, const ExtDictCollection& dicts,
    const std::vector<MatchingDependency>& mds) const {
  std::vector<Repair> repairs;
  if (dicts.empty() || mds.empty()) return repairs;

  Table& table = dataset->dirty();
  Matcher matcher(&table, &dicts);
  auto matched = matcher.MatchAll(mds);
  if (!matched.ok()) {
    HOLO_LOG(kWarning) << "KATARA matching failed: "
                       << matched.status().ToString();
    return repairs;
  }

  // Group suggestions per cell; repair only unambiguous disagreements.
  std::unordered_map<CellRef, std::unordered_set<std::string>, CellRefHash>
      suggestions;
  for (const MatchedEntry& m : matched.value()) {
    suggestions[m.cell].insert(m.value);
  }
  for (const auto& [cell, values] : suggestions) {
    if (values.size() != 1) continue;  // Ambiguous: defer (no crowd).
    const std::string& suggestion = *values.begin();
    if (table.GetString(cell) == suggestion) continue;
    ValueId old_value = table.Get(cell);
    ValueId new_value = table.dict().Intern(suggestion);
    repairs.push_back({cell, old_value, new_value, 1.0});
  }
  std::sort(repairs.begin(), repairs.end(),
            [](const Repair& a, const Repair& b) { return a.cell < b.cell; });
  return repairs;
}

}  // namespace holoclean
