#ifndef HOLOCLEAN_CORE_SESSION_H_
#define HOLOCLEAN_CORE_SESSION_H_

#include <memory>
#include <vector>

#include "holoclean/core/inputs.h"
#include "holoclean/core/pipeline_context.h"
#include "holoclean/core/stage.h"
#include "holoclean/io/session_snapshot.h"

namespace holoclean {

/// A long-lived handle over one cleaning instance (obtained with
/// Engine::OpenSession or OpenStandaloneSession) that supports
/// incremental re-runs: the session caches every stage artifact in its
/// PipelineContext and tracks which leading stages are still valid. Run()
/// only executes the invalid suffix, so e.g. changing a Gibbs knob re-runs
/// inference and repair extraction against the cached factor graph without
/// re-detecting or re-grounding anything.
///
/// Invalidation sources:
///  - Invalidate(stage): explicit, everything from `stage` on re-executes.
///  - UpdateConfig(config): diffs the configs and invalidates the earliest
///    stage any changed knob feeds into (e.g. tau -> compile, epochs ->
///    learn, gibbs_samples -> infer). Changing num_threads rebuilds the
///    private worker pool but invalidates nothing: results are
///    thread-count invariant.
///  - PinCell(cell, value): writes a user-verified value into the dirty
///    table (the feedback loop of paper §2.2). When detection is cached,
///    the pinned tuple is re-detected exactly with a block-limited delta
///    scan (ViolationDetector::DetectForTuple) and merged over the cached
///    violations, so the detect artifacts match a full re-detection bit
///    for bit — cells flagged noisy only by the old value drop out, and
///    conflicts the verified value newly exposes are detected — at the
///    cost of the tuple's blocks rather than the table. The verified cell
///    itself is then removed from the noisy set (it is ground truth) and
///    compile and later stages re-run.
///
/// The session holds its CleaningInputs bundle: owned inputs stay alive
/// for the session's lifetime, borrowed ones must outlive it. It mutates
/// the dataset's dictionary (interning matched candidate values) and —
/// only via PinCell — cell values.
///
/// Worker pool: a session either runs on a shared, externally owned pool
/// (Engine sessions — the pool is shared by every concurrent session and
/// batch job) or owns a private pool sized by config.num_threads (the
/// legacy facade behavior). Results are bit-identical either way.
class Session {
 public:
  /// Opens a staged session over an input bundle. `shared_pool` non-null
  /// wires the session onto that (engine-owned) pool; null gives the
  /// session a private pool per config.num_threads.
  Session(HoloCleanConfig config, CleaningInputs inputs,
          std::shared_ptr<ThreadPool> shared_pool = nullptr);

  /// Legacy borrowed-pointer constructor (the facade's calling
  /// convention); equivalent to the bundle constructor with
  /// CleaningInputs::Borrowed and a private pool.
  Session(HoloCleanConfig config, Dataset* dataset,
          const std::vector<DenialConstraint>* dcs,
          const ExtDictCollection* dicts,
          const std::vector<MatchingDependency>* mds,
          const DetectorSuite* extra_detectors);

  /// Moves keep the context's pool pointer wired to the pool the
  /// destination now owns (or shares) and leave the source inert: a
  /// moved-from session holds no input pointers and no pool reference, so
  /// destroying — or accidentally reusing — it can never touch resources
  /// that migrated to the destination. Move-assignment first destroys the
  /// destination's old private pool; any helper tasks a finished parallel
  /// section left in a pool queue hold only self-contained heap state (see
  /// TaskGroup), so the teardown is safe even right after a run.
  Session(Session&& other);
  Session& operator=(Session&& other);

  /// Executes all invalid stages through repair extraction and returns the
  /// report. When every stage is valid this is a cached-report lookup.
  Result<Report> Run() { return RunThrough(StageId::kRepair); }

  /// Executes invalid stages up to and including `last` (prefix execution:
  /// e.g. RunThrough(kCompile) grounds the model without learning). The
  /// returned report carries the stats of the stages run so far.
  Result<Report> RunThrough(StageId last);

  /// Marks `from` and every later stage as needing re-execution.
  void Invalidate(StageId from);

  /// True when the stage's cached artifacts are valid.
  bool StageIsValid(StageId id) const {
    return static_cast<int>(id) < valid_through_;
  }

  /// Adopts a new configuration, invalidating the minimal stage suffix the
  /// changed knobs feed into (see class comment).
  void UpdateConfig(const HoloCleanConfig& config);

  /// Applies a user-verified value (feedback loop): writes it to the dirty
  /// table and invalidates from compile (detection cached) or detect.
  void PinCell(const CellRef& cell, ValueId value);

  /// Serializes the cached stage artifacts (everything the valid stage
  /// prefix produced, plus the dirty table's current cell values and
  /// dictionary) into a versioned, checksummed SessionSnapshot at `path`.
  /// A later process restores it with Engine::OpenSession or
  /// OpenStandaloneSession (snapshot_path) and re-runs from any cached
  /// stage exactly like an in-process rerun. `options` select the section
  /// codec (packed by default) and, for comparison benchmarks, the legacy
  /// v1 format. A lazily restored session materializes its factor graph
  /// first.
  Status Save(const std::string& path, const SnapshotSaveOptions& options = {});

  /// Loads a snapshot saved by Save() into this session, replacing every
  /// cached artifact and setting the valid stage prefix to what the
  /// snapshot carries. The session must have been opened over the same
  /// dataset, constraints, and config fingerprint the snapshot was saved
  /// with; on any validation or parse error the session is left invalid
  /// from detect (as if freshly opened) and the error is returned.
  /// With options.lazy_graph the snapshot is mapped instead of read and
  /// the factor-graph section stays on disk until the first stage that
  /// needs it runs (see SnapshotLoadOptions for the corruption-reporting
  /// trade-off).
  Status RestoreFrom(const std::string& path,
                     const SnapshotLoadOptions& options = {});

  PipelineContext& context() { return ctx_; }
  const PipelineContext& context() const { return ctx_; }

  /// The report of the last (possibly partial) run.
  const Report& report() const { return ctx_.report; }

  /// The learned weights (valid once the learn stage ran or was restored).
  const WeightStore& weights() const { return ctx_.weights; }

  const HoloCleanConfig& config() const { return ctx_.config; }

  /// The input bundle the session runs over.
  const CleaningInputs& inputs() const { return inputs_; }

  /// True when the session runs on a shared (engine-owned) pool rather
  /// than a private one.
  bool uses_shared_pool() const { return shared_pool_ != nullptr; }

 private:
  void RebuildPool();

  CleaningInputs inputs_;
  /// Engine-owned pool, shared with other sessions; null when the session
  /// owns `pool_` instead.
  std::shared_ptr<ThreadPool> shared_pool_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<PipelineStage>> stages_;
  PipelineContext ctx_;
  /// Stages [0, valid_through_) have valid cached artifacts.
  int valid_through_ = 0;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_SESSION_H_
