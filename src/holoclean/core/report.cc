#include "holoclean/core/report.h"

namespace holoclean {

// Report types are header-only; this TU anchors the library target.

}  // namespace holoclean
