#ifndef HOLOCLEAN_CORE_PIPELINE_CONTEXT_H_
#define HOLOCLEAN_CORE_PIPELINE_CONTEXT_H_

#include <memory>
#include <vector>

#include "holoclean/core/config.h"
#include "holoclean/core/report.h"
#include "holoclean/ddlog/program.h"
#include "holoclean/detect/error_detector.h"
#include "holoclean/detect/violation_detector.h"
#include "holoclean/extdata/matcher.h"
#include "holoclean/extdata/matching_dependency.h"
#include "holoclean/infer/marginals.h"
#include "holoclean/model/compiled_graph.h"
#include "holoclean/model/domain_pruning.h"
#include "holoclean/model/factor_graph.h"
#include "holoclean/model/grounding.h"
#include "holoclean/model/partitioning.h"
#include "holoclean/model/weight_store.h"
#include "holoclean/stats/cooccurrence.h"
#include "holoclean/storage/dataset.h"
#include "holoclean/util/status.h"
#include "holoclean/util/thread_pool.h"

namespace holoclean {

struct PipelineContext;

/// A factor-graph section whose materialization was deferred by a lazy
/// (mmap-backed) snapshot restore. The source owns whatever keeps the
/// section bytes readable (typically the file mapping) and knows how to
/// parse, validate, and install them into a context on first access.
class DeferredGraphSource {
 public:
  virtual ~DeferredGraphSource() = default;

  /// Parses and validates the deferred section, then installs the graph
  /// into `ctx->graph`. Validation mirrors the eager loader exactly (same
  /// bounds checks, same marginals-shape check), so a corrupt section
  /// fails with a clean Status here instead of at restore time. On error
  /// the context is untouched; the caller keeps the source so a retry
  /// reports the same error instead of silently running on an empty graph.
  virtual Status Materialize(PipelineContext* ctx) = 0;
};

/// Everything a pipeline run reads and produces, owned in one place so that
/// stages can re-run individually against cached upstream artifacts.
///
/// Two invariants make incremental re-runs sound:
///  - Stages are stateless: every artifact a stage produces lives here,
///    never inside the stage, so a later stage sees exactly what an earlier
///    (possibly cached) execution left behind.
///  - Engine inputs point at context-owned vectors with stable addresses.
///    In particular `query_cells` is an owned copy of the noisy set — the
///    monolithic pipeline wired `GroundingInput::query_cells` to an
///    accessor-returned reference of a stack-local `NoisyCells`, which is
///    exactly the kind of dangling-input hazard this struct removes.
struct PipelineContext {
  // --- Session inputs (borrowed; must outlive the session) ---
  Dataset* dataset = nullptr;
  const std::vector<DenialConstraint>* dcs = nullptr;
  const ExtDictCollection* dicts = nullptr;
  const std::vector<MatchingDependency>* mds = nullptr;
  const DetectorSuite* extra_detectors = nullptr;
  HoloCleanConfig config;
  /// Worker pool for the parallel sections; null = fully sequential.
  /// Owned by the session, never by the context.
  ThreadPool* pool = nullptr;

  // --- DetectStage artifacts ---
  std::vector<AttrId> attrs;
  std::vector<Violation> violations;
  NoisyCells noisy;

  // --- CompileStage artifacts ---
  /// Stable owned copy of the noisy cells: the grounding query variables.
  std::vector<CellRef> query_cells;
  /// Clean, non-null cells sampled for training (capped, seeded shuffle).
  std::vector<CellRef> evidence_cells;
  CooccurrenceStats cooc;
  std::vector<MatchedEntry> matches;
  PrunedDomains domains;
  /// Algorithm-3 tuple groups backing partition-parallel grounding.
  /// Rebuilt by every compile execution (cheap, linear in the violations)
  /// and kept here so the groups that drove grounding stay inspectable.
  TupleGroups groups;
  Program program;
  FactorGraph graph;
  /// Non-null while a lazily restored snapshot's factor-graph section has
  /// not been materialized yet; `graph` is empty until then. Cleared by
  /// EnsureGraph (first consumer touch) and by every compile execution
  /// (which rebuilds the graph from scratch).
  std::shared_ptr<DeferredGraphSource> deferred_graph;
  Grounder::Stats grounder_stats;
  /// Compiled runtime view of `graph` (dense weight ids, CSR arenas,
  /// violation tables), built on demand by EnsureCompiled when
  /// config.compiled_kernel is on. Never serialized: it is a pure function
  /// of the graph, table, and constraints, so restores and compile
  /// executions just drop it and the next learn/infer run rebuilds it.
  std::shared_ptr<const CompiledGraph> compiled;
  /// Number of grounding executions in this session. An incremental re-run
  /// from LearnStage or later reuses the cached graph and leaves this
  /// unchanged (asserted in tests).
  size_t ground_runs = 0;

  // --- LearnStage artifacts ---
  WeightStore weights;

  // --- InferStage artifacts ---
  Marginals marginals{0};

  // --- RepairStage output (stats fields are filled by every stage) ---
  Report report;

  /// Materializes the factor graph if a lazy restore deferred it; cheap
  /// no-op otherwise. Every consumer of `graph` (the learn/infer/repair
  /// stages, Session::Save) calls this before touching it. On failure the
  /// deferred source is kept, so retries keep failing with the same error
  /// rather than proceeding against an empty graph.
  Status EnsureGraph() {
    if (deferred_graph == nullptr) return Status::OK();
    HOLO_RETURN_NOT_OK(deferred_graph->Materialize(this));
    deferred_graph.reset();
    return Status::OK();
  }

  /// Materializes the graph (if deferred) and builds the compiled runtime
  /// view if it is not cached yet. Called by the learn/infer stages when
  /// config.compiled_kernel is on; a rerun-from-infer against the cached
  /// graph reuses the cached compiled view too. The build's arena fill and
  /// violation-table precompute run on the session's pool (byte-identical
  /// for any pool size; see CompiledGraph::Build).
  Status EnsureCompiled() {
    HOLO_RETURN_NOT_OK(EnsureGraph());
    if (compiled == nullptr) {
      CompiledGraphOptions copts;
      copts.violation_table_cap = config.dc_table_cap;
      // Non-const make_shared: the streaming tier extends the arenas in
      // place (CompiledGraph::AppendVariables) through a const_pointer_cast,
      // which is only defined when the owned object is not actually const.
      compiled = std::make_shared<CompiledGraph>(
          CompiledGraph::Build(graph, dataset->dirty(), *dcs, copts, pool));
    }
    return Status::OK();
  }
};

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_PIPELINE_CONTEXT_H_
