#include "holoclean/core/stage.h"

#include <algorithm>

#include "holoclean/infer/gibbs.h"
#include "holoclean/infer/learner.h"
#include "holoclean/model/weight_initializer.h"
#include "holoclean/util/rng.h"

namespace holoclean {

const char* StageName(StageId id) {
  switch (id) {
    case StageId::kDetect:
      return "detect";
    case StageId::kCompile:
      return "compile";
    case StageId::kLearn:
      return "learn";
    case StageId::kInfer:
      return "infer";
    case StageId::kRepair:
      return "repair";
  }
  return "unknown";
}

Result<StageId> ParseStageName(const std::string& name) {
  for (int i = 0; i < kNumStages; ++i) {
    StageId id = static_cast<StageId>(i);
    if (name == StageName(id)) return id;
  }
  return Status::InvalidArgument(
      "unknown stage: " + name +
      " (expected detect|compile|learn|infer|repair)");
}

namespace {

/// Builds the DDlog program mirroring the configured model, for the report.
Program BuildProgram(const HoloCleanConfig& config,
                     const std::vector<DenialConstraint>& dcs,
                     size_t num_dicts) {
  Program program;
  InferenceRule random_var;
  random_var.kind = RuleKind::kRandomVariable;
  program.rules.push_back(random_var);
  InferenceRule feature;
  feature.kind = RuleKind::kFeature;
  feature.weight_is_learned = true;
  program.rules.push_back(feature);
  InferenceRule prior;
  prior.kind = RuleKind::kMinimalityPrior;
  prior.fixed_weight = config.minimality_weight;
  program.rules.push_back(prior);
  for (size_t k = 0; k < num_dicts; ++k) {
    InferenceRule rule;
    rule.kind = RuleKind::kExtDictMatch;
    rule.dict_id = static_cast<int>(k);
    rule.weight_is_learned = true;
    program.rules.push_back(rule);
  }
  bool factors =
      config.dc_mode == DcMode::kFactors || config.dc_mode == DcMode::kBoth;
  bool features =
      config.dc_mode == DcMode::kFeatures || config.dc_mode == DcMode::kBoth;
  for (size_t s = 0; s < dcs.size(); ++s) {
    if (factors) {
      InferenceRule rule;
      rule.kind = RuleKind::kDcFactor;
      rule.dc_index = static_cast<int>(s);
      rule.fixed_weight = config.dc_factor_weight;
      program.rules.push_back(rule);
    }
    if (features) {
      for (const DcHeadSlot& slot : EnumerateHeadSlots(dcs[s])) {
        InferenceRule rule;
        rule.kind = RuleKind::kDcRelaxedFeature;
        rule.dc_index = static_cast<int>(s);
        rule.head = slot;
        rule.weight_is_learned = true;
        program.rules.push_back(rule);
      }
    }
  }
  return program;
}

/// Phase 1 — error detection: DC violations plus any extra detectors union
/// into the noisy set Dn.
class DetectStage : public PipelineStage {
 public:
  StageId id() const override { return StageId::kDetect; }

  Status Run(PipelineContext* ctx) override {
    Table& table = ctx->dataset->dirty();
    ctx->attrs = ctx->dataset->RepairableAttrs();
    ViolationDetector::Options options;
    options.sim_threshold = ctx->config.sim_threshold;
    options.pool = ctx->pool;
    options.columnar = ctx->config.columnar;
    ViolationDetector detector(&table, ctx->dcs, options);
    DetectResult result = detector.DetectAll();
    ctx->violations = std::move(result.violations);
    ctx->noisy = ViolationDetector::NoisyFromViolations(ctx->violations);
    if (ctx->extra_detectors != nullptr) {
      ctx->noisy.Merge(ctx->extra_detectors->Detect(*ctx->dataset));
    }
    ctx->report.stats.num_violations = ctx->violations.size();
    ctx->report.stats.num_noisy_cells = ctx->noisy.size();
    ctx->report.stats.detect_truncated = !result.truncated_dcs.empty();
    ctx->report.stats.num_truncated_dcs = result.truncated_dcs.size();
    return Status::OK();
  }
};

/// Phase 2 — compilation: co-occurrence statistics, external-data matching,
/// evidence sampling, domain pruning (Algorithm 2), DDlog program
/// generation, tuple partitioning (Algorithm 3), and grounding.
class CompileStage : public PipelineStage {
 public:
  StageId id() const override { return StageId::kCompile; }

  Status Run(PipelineContext* ctx) override {
    const HoloCleanConfig& config = ctx->config;
    Table& table = ctx->dataset->dirty();
    const std::vector<AttrId>& attrs = ctx->attrs;

    // Own a stable copy of the query cells; feedback pins may have shrunk
    // the noisy set since detection ran.
    ctx->query_cells = ctx->noisy.cells();
    ctx->report.stats.num_noisy_cells = ctx->query_cells.size();

    // Compilation rebuilds the graph from scratch, so a pending lazily
    // restored graph section is dead weight — drop it (and its file
    // mapping) instead of materializing it. The compiled runtime view of
    // the old graph is stale for the same reason.
    ctx->deferred_graph.reset();
    ctx->compiled.reset();

    ctx->cooc = config.columnar
                    ? CooccurrenceStats::BuildColumnar(table, attrs, ctx->pool)
                    : CooccurrenceStats::Build(table, attrs);

    // External data: evaluate matching dependencies, intern suggested
    // values so they can enter candidate domains.
    ctx->matches.clear();
    if (ctx->dicts != nullptr && ctx->mds != nullptr && !ctx->dicts->empty()) {
      Matcher matcher(&table, ctx->dicts);
      HOLO_ASSIGN_OR_RETURN(matched, matcher.MatchAll(*ctx->mds));
      ctx->matches = std::move(matched);
      for (const MatchedEntry& m : ctx->matches) table.dict().Intern(m.value);
    }

    // Evidence sample: clean, non-null cells, capped for training cost.
    ctx->evidence_cells.clear();
    for (size_t t = 0; t < table.num_rows(); ++t) {
      for (AttrId a : attrs) {
        CellRef c{static_cast<TupleId>(t), a};
        if (ctx->noisy.Contains(c)) continue;
        if (table.Get(c) == Dictionary::kNull) continue;
        ctx->evidence_cells.push_back(c);
      }
    }
    if (ctx->evidence_cells.size() > config.max_training_cells) {
      Rng rng(config.seed);
      rng.Shuffle(&ctx->evidence_cells);
      ctx->evidence_cells.resize(config.max_training_cells);
      std::sort(ctx->evidence_cells.begin(), ctx->evidence_cells.end());
    }

    // Domain pruning (Algorithm 2) over query and evidence cells alike.
    DomainPruningOptions prune_options;
    prune_options.tau = config.tau;
    prune_options.max_candidates = config.max_candidates;
    std::vector<CellRef> all_cells = ctx->query_cells;
    all_cells.insert(all_cells.end(), ctx->evidence_cells.begin(),
                     ctx->evidence_cells.end());
    ctx->domains = config.columnar
                       ? PruneDomainsColumnar(table, all_cells, attrs,
                                              ctx->cooc, prune_options,
                                              ctx->pool)
                       : PruneDomains(table, all_cells, attrs, ctx->cooc,
                                      prune_options);

    // Candidates suggested by external dictionaries join the domain of the
    // matched (noisy) cells.
    for (const MatchedEntry& m : ctx->matches) {
      if (!ctx->noisy.Contains(m.cell)) continue;
      auto it = ctx->domains.candidates.find(m.cell);
      if (it == ctx->domains.candidates.end()) continue;
      ValueId v = table.dict().Lookup(m.value);
      if (v < 0) continue;
      if (std::find(it->second.begin(), it->second.end(), v) ==
          it->second.end()) {
        it->second.push_back(v);
      }
    }
    ctx->report.stats.num_candidates = ctx->domains.TotalCandidates();

    ctx->program = BuildProgram(
        config, *ctx->dcs, ctx->dicts == nullptr ? 0 : ctx->dicts->size());
    ctx->report.ddlog = ctx->program.ToDDlog(table.schema(), *ctx->dcs);

    bool dc_factors =
        config.dc_mode == DcMode::kFactors || config.dc_mode == DcMode::kBoth;
    bool partitioned = dc_factors && config.partitioning;
    ctx->groups = partitioned
                      ? BuildTupleGroups(table.num_rows(), ctx->dcs->size(),
                                         ctx->violations)
                      : TupleGroups();

    GroundingInput input;
    input.table = &table;
    input.dcs = ctx->dcs;
    input.attrs = &ctx->attrs;
    input.cooc = &ctx->cooc;
    input.query_cells = &ctx->query_cells;
    input.evidence_cells = &ctx->evidence_cells;
    input.domains = &ctx->domains;
    input.matches = ctx->matches.empty() ? nullptr : &ctx->matches;
    input.violations = &ctx->violations;
    input.groups = partitioned ? &ctx->groups : nullptr;
    input.source_attr = ctx->dataset->source_attr();

    GroundingOptions options = config.ToGroundingOptions();
    options.pool = ctx->pool;
    Grounder grounder(input, options);
    HOLO_ASSIGN_OR_RETURN(graph, grounder.Ground());
    ctx->graph = std::move(graph);
    ctx->grounder_stats = grounder.stats();
    ++ctx->ground_runs;
    ctx->report.stats.num_query_vars = grounder.stats().num_query_vars;
    ctx->report.stats.num_evidence_vars = grounder.stats().num_evidence_vars;
    ctx->report.stats.num_dc_factors = grounder.stats().num_dc_factors;
    ctx->report.stats.num_grounded_factors = ctx->graph.NumGroundedFactors();
    return Status::OK();
  }
};

/// Phase 3a — learning: prior weights seeded by the WeightInitializer,
/// refined by SGD on the evidence variables.
class LearnStage : public PipelineStage {
 public:
  StageId id() const override { return StageId::kLearn; }

  Status Run(PipelineContext* ctx) override {
    HOLO_RETURN_NOT_OK(ctx->EnsureGraph());
    const HoloCleanConfig& config = ctx->config;
    WeightInitInput input;
    input.table = &ctx->dataset->dirty();
    input.attrs = &ctx->attrs;
    input.dcs = ctx->dcs;
    input.num_dicts = ctx->dicts == nullptr ? 0 : ctx->dicts->size();
    input.source_attr =
        ctx->dataset->has_source_attr() ? ctx->dataset->source_attr() : -1;
    WeightInitializer initializer(config.ToWeightInitOptions());
    ctx->weights = initializer.Initialize(input);

    LearnerOptions options;
    options.epochs = config.epochs;
    options.learning_rate = config.learning_rate;
    options.lr_decay = config.lr_decay;
    options.l2 = config.l2;
    options.seed = config.seed ^ 0x5851F42D4C957F2DULL;
    SgdLearner learner(&ctx->graph, options);
    if (config.compiled_kernel) {
      HOLO_RETURN_NOT_OK(ctx->EnsureCompiled());
      learner.Train(*ctx->compiled, &ctx->weights);
    } else {
      learner.Train(&ctx->weights);
    }
    return Status::OK();
  }
};

/// Phase 3b — inference: exact marginals for the relaxed (factor-free)
/// model, Gibbs sampling otherwise. The sampler runs one independent chain
/// per factor-graph component, concurrently on the pool.
class InferStage : public PipelineStage {
 public:
  StageId id() const override { return StageId::kInfer; }

  Status Run(PipelineContext* ctx) override {
    HOLO_RETURN_NOT_OK(ctx->EnsureGraph());
    const HoloCleanConfig& config = ctx->config;
    const CompiledGraph* compiled = nullptr;
    if (config.compiled_kernel) {
      HOLO_RETURN_NOT_OK(ctx->EnsureCompiled());
      compiled = ctx->compiled.get();
    }
    if (ctx->graph.dc_factors().empty()) {
      ctx->marginals = compiled != nullptr
                           ? ExactIndependentMarginals(*compiled, ctx->weights)
                           : ExactIndependentMarginals(ctx->graph,
                                                       ctx->weights);
    } else {
      GibbsOptions options;
      options.burn_in = config.gibbs_burn_in;
      options.samples = config.gibbs_samples;
      options.seed = config.seed ^ 0x2545F4914F6CDD1DULL;
      options.pool = ctx->pool;
      GibbsSampler sampler(&ctx->graph, &ctx->dataset->dirty(), ctx->dcs,
                           &ctx->weights, options, compiled);
      ctx->marginals = sampler.Run();
    }
    return Status::OK();
  }
};

/// Phase 4 — repair extraction: MAP assignment per query variable, repairs
/// where it differs from the observed value.
class RepairStage : public PipelineStage {
 public:
  StageId id() const override { return StageId::kRepair; }

  Status Run(PipelineContext* ctx) override {
    HOLO_RETURN_NOT_OK(ctx->EnsureGraph());
    const Table& table = ctx->dataset->dirty();
    Report& report = ctx->report;
    report.repairs.clear();
    report.posteriors.clear();
    for (int32_t var_id : ctx->graph.query_vars()) {
      const Variable& var = ctx->graph.variable(var_id);
      int map_index = ctx->marginals.MapIndex(var_id);
      double map_prob = ctx->marginals.MapProb(var_id);
      ValueId old_value = table.Get(var.cell);
      ValueId new_value = var.domain[static_cast<size_t>(map_index)];
      report.posteriors.push_back(
          {var.cell, old_value, new_value, map_prob});
      if (new_value != old_value) {
        report.repairs.push_back({var.cell, old_value, new_value, map_prob});
      }
    }
    std::sort(
        report.repairs.begin(), report.repairs.end(),
        [](const Repair& a, const Repair& b) { return a.cell < b.cell; });
    return Status::OK();
  }
};

}  // namespace

std::vector<std::unique_ptr<PipelineStage>> MakeDefaultStages() {
  std::vector<std::unique_ptr<PipelineStage>> stages;
  stages.push_back(std::make_unique<DetectStage>());
  stages.push_back(std::make_unique<CompileStage>());
  stages.push_back(std::make_unique<LearnStage>());
  stages.push_back(std::make_unique<InferStage>());
  stages.push_back(std::make_unique<RepairStage>());
  return stages;
}

}  // namespace holoclean
