#include "holoclean/core/session.h"

#include <algorithm>
#include <utility>

#include "holoclean/io/session_snapshot.h"
#include "holoclean/util/memory.h"
#include "holoclean/util/timer.h"

namespace holoclean {

Session::Session(HoloCleanConfig config, CleaningInputs inputs,
                 std::shared_ptr<ThreadPool> shared_pool)
    : inputs_(std::move(inputs)), shared_pool_(std::move(shared_pool)) {
  ctx_.config = std::move(config);
  ctx_.dataset = inputs_.dataset_ptr();
  ctx_.dcs = inputs_.dcs_ptr();
  ctx_.dicts = inputs_.dicts_ptr();
  ctx_.mds = inputs_.mds_ptr();
  ctx_.extra_detectors = inputs_.detectors_ptr();
  stages_ = MakeDefaultStages();
  auto& timings = ctx_.report.stats.stage_timings;
  timings.resize(stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) {
    timings[i].name = stages_[i]->Name();
  }
  RebuildPool();
}

Session::Session(HoloCleanConfig config, Dataset* dataset,
                 const std::vector<DenialConstraint>* dcs,
                 const ExtDictCollection* dicts,
                 const std::vector<MatchingDependency>* mds,
                 const DetectorSuite* extra_detectors)
    : Session(std::move(config),
              CleaningInputs::Borrowed(dataset, dcs, dicts, mds,
                                       extra_detectors)) {}

Session::Session(Session&& other)
    : inputs_(std::move(other.inputs_)),
      shared_pool_(std::move(other.shared_pool_)),
      pool_(std::move(other.pool_)),
      stages_(std::move(other.stages_)),
      ctx_(std::move(other.ctx_)),
      valid_through_(other.valid_through_) {
  // ctx_.pool already points at the (heap or shared) pool whose ownership
  // just migrated here. The source's context still holds raw copies of
  // every input and pool pointer — reset it so a moved-from session can
  // never alias resources it no longer keeps alive.
  other.ctx_ = PipelineContext();
  other.valid_through_ = 0;
}

Session& Session::operator=(Session&& other) {
  if (this == &other) return *this;
  // Adopt the source's context before destroying our pool: the old
  // context aliases the old pool, and dropping the alias first keeps the
  // window where ctx_.pool dangles at zero. Destroying the old private
  // pool joins its workers; stale TaskGroup helper tasks still queued
  // there hold only self-contained heap state, so the teardown is safe
  // even when a parallel section just finished.
  ctx_ = std::move(other.ctx_);
  stages_ = std::move(other.stages_);
  inputs_ = std::move(other.inputs_);
  valid_through_ = other.valid_through_;
  pool_ = std::move(other.pool_);
  shared_pool_ = std::move(other.shared_pool_);
  other.ctx_ = PipelineContext();
  other.valid_through_ = 0;
  return *this;
}

void Session::RebuildPool() {
  pool_.reset();
  if (shared_pool_ != nullptr) {
    ctx_.pool = shared_pool_.get();
    return;
  }
  if (ctx_.config.num_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(ctx_.config.num_threads);
  }
  ctx_.pool = pool_.get();
}

Result<Report> Session::RunThrough(StageId last) {
  int last_index = static_cast<int>(last);
  auto& timings = ctx_.report.stats.stage_timings;
  for (int i = 0; i <= last_index; ++i) {
    if (i < valid_through_) {
      timings[static_cast<size_t>(i)].cached = true;
      continue;
    }
    Timer timer;
    HOLO_RETURN_NOT_OK(stages_[static_cast<size_t>(i)]->Run(&ctx_));
    timings[static_cast<size_t>(i)].seconds = timer.Seconds();
    timings[static_cast<size_t>(i)].peak_rss_bytes = PeakRssBytes();
    timings[static_cast<size_t>(i)].cached = false;
    valid_through_ = i + 1;
  }
  // Keep the legacy phase view in sync (repair extraction folds into the
  // inference phase, matching the monolithic pipeline's accounting). A
  // cached stage spent no time this run: its StageTiming keeps the
  // prior-run wall time for reference (flagged `cached`), but the phase
  // totals report only what this run actually executed.
  auto spent = [&timings, last_index](size_t i) {
    if (static_cast<int>(i) > last_index) return 0.0;  // Not visited.
    return timings[i].cached ? 0.0 : timings[i].seconds;
  };
  RunStats& stats = ctx_.report.stats;
  stats.detect_seconds = spent(0);
  stats.compile_seconds = spent(1);
  stats.learn_seconds = spent(2);
  stats.infer_seconds = spent(3) + spent(4);
  return ctx_.report;
}

Status Session::Save(const std::string& path,
                     const SnapshotSaveOptions& options) {
  // A lazily restored graph must be materialized before it can be
  // re-serialized (saving is a consumer like any stage) — but only when
  // the snapshot will actually carry a graph section; a shorter valid
  // prefix has no business decoding (or failing on) the deferred bytes.
  if (valid_through_ > static_cast<int>(StageId::kCompile)) {
    HOLO_RETURN_NOT_OK(ctx_.EnsureGraph());
  }
  return SaveSessionSnapshot(ctx_, valid_through_, path, options);
}

Status Session::RestoreFrom(const std::string& path,
                            const SnapshotLoadOptions& options) {
  // A failed load leaves the context and dataset untouched (the loader
  // stages everything before committing), but any previously cached prefix
  // is still dropped: a restore that was asked for and failed should never
  // silently fall back to older in-process artifacts.
  valid_through_ = 0;
  HOLO_ASSIGN_OR_RETURN(valid_through,
                        LoadSessionSnapshot(path, &ctx_, options));
  valid_through_ = valid_through;
  return Status::OK();
}

void Session::Invalidate(StageId from) {
  valid_through_ = std::min(valid_through_, static_cast<int>(from));
}

void Session::UpdateConfig(const HoloCleanConfig& config) {
  const HoloCleanConfig& cur = ctx_.config;
  int invalid = kNumStages;
  auto touch = [&](StageId stage) {
    invalid = std::min(invalid, static_cast<int>(stage));
  };
  if (config.sim_threshold != cur.sim_threshold) touch(StageId::kDetect);
  if (config.tau != cur.tau || config.max_candidates != cur.max_candidates ||
      config.dc_mode != cur.dc_mode ||
      config.partitioning != cur.partitioning ||
      config.dc_factor_weight != cur.dc_factor_weight ||
      config.minimality_weight != cur.minimality_weight ||
      config.max_training_cells != cur.max_training_cells ||
      config.seed != cur.seed) {
    touch(StageId::kCompile);
  }
  if (config.stats_prior_weight != cur.stats_prior_weight ||
      config.freq_prior_weight != cur.freq_prior_weight ||
      config.dc_violation_init != cur.dc_violation_init ||
      config.ext_dict_init != cur.ext_dict_init ||
      config.support_prior != cur.support_prior ||
      config.source_trust_scale != cur.source_trust_scale ||
      config.epochs != cur.epochs ||
      config.learning_rate != cur.learning_rate ||
      config.lr_decay != cur.lr_decay || config.l2 != cur.l2) {
    touch(StageId::kLearn);
  }
  if (config.gibbs_burn_in != cur.gibbs_burn_in ||
      config.gibbs_samples != cur.gibbs_samples) {
    touch(StageId::kInfer);
  }
  // The compiled kernel produces bit-identical results, so toggling it (or
  // moving the violation-table cap) re-runs from learn only so an A/B
  // comparison actually exercises the requested path — and a cap change
  // drops the cached compiled view, which bakes the cap in at build time.
  if (config.compiled_kernel != cur.compiled_kernel ||
      config.dc_table_cap != cur.dc_table_cap) {
    touch(StageId::kLearn);
  }
  // Drop the cached compiled view when it can no longer be used as-is: a
  // cap change bakes differently, and a disabled kernel should not keep
  // tens of MB of arenas alive (EnsureCompiled rebuilds on re-enable).
  if (config.dc_table_cap != cur.dc_table_cap || !config.compiled_kernel) {
    ctx_.compiled.reset();
  }
  // A shared pool is engine property: num_threads only governs private
  // pools (results are thread-count invariant either way).
  bool pool_changed =
      shared_pool_ == nullptr && config.num_threads != cur.num_threads;
  ctx_.config = config;
  if (pool_changed) RebuildPool();
  if (invalid < kNumStages) Invalidate(static_cast<StageId>(invalid));
}

void Session::PinCell(const CellRef& cell, ValueId value) {
  ctx_.dataset->dirty().Set(cell, value);
  if (StageIsValid(StageId::kDetect)) {
    // Exact incremental re-detection: the cached violations involving the
    // pinned cell's tuple are replaced by a block-limited delta scan of
    // that tuple alone, so the committed detect artifacts match a full
    // re-detection of the updated table bit for bit. Cells that were noisy
    // only because of the old value drop out, and conflicts the verified
    // value newly exposes enter — the two gaps the previous approximation
    // left open. Cost is the tuple's blocks, not the table.
    ViolationDetector::Options options;
    options.sim_threshold = ctx_.config.sim_threshold;
    options.pool = ctx_.pool;
    options.columnar = ctx_.config.columnar;
    ViolationDetector detector(&ctx_.dataset->dirty(), ctx_.dcs, options);
    DeltaDetectResult delta = detector.DetectForTuple(cell.tid);
    DetectResult merged = ViolationDetector::MergeTupleDelta(
        std::move(ctx_.violations), cell.tid, ctx_.dcs->size(),
        std::move(delta));
    ctx_.violations = std::move(merged.violations);
    ctx_.noisy = ViolationDetector::NoisyFromViolations(ctx_.violations);
    if (ctx_.extra_detectors != nullptr) {
      ctx_.noisy.Merge(ctx_.extra_detectors->Detect(*ctx_.dataset));
    }
    // The pin is ground truth: the verified cell itself never becomes a
    // query variable again, even when its tuple still violates.
    ctx_.noisy.Remove(cell);
    ctx_.report.stats.num_violations = ctx_.violations.size();
    ctx_.report.stats.num_noisy_cells = ctx_.noisy.size();
    ctx_.report.stats.detect_truncated = !merged.truncated_dcs.empty();
    ctx_.report.stats.num_truncated_dcs = merged.truncated_dcs.size();
    Invalidate(StageId::kCompile);
  } else {
    Invalidate(StageId::kDetect);
  }
}

}  // namespace holoclean
