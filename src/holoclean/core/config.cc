#include "holoclean/core/config.h"

namespace holoclean {

std::string DcModeName(DcMode mode) {
  switch (mode) {
    case DcMode::kFactors:
      return "DC Factors";
    case DcMode::kFeatures:
      return "DC Feats";
    case DcMode::kBoth:
      return "DC Feats + DC Factors";
  }
  return "?";
}

}  // namespace holoclean
