#include "holoclean/core/engine.h"

#include <cstdio>
#include <utility>

#include "holoclean/io/session_snapshot.h"
#include "holoclean/util/failpoint.h"
#include "holoclean/util/hash.h"

namespace holoclean {

Engine::Engine(EngineOptions options) : options_(options) {}

Engine::~Engine() {
  // Wait for submitted jobs: they run on our pool and park sessions into
  // our LRU, so none may outlive the members below. The pool itself is
  // torn down by the shared_ptr once the last session holding it goes.
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return inflight_jobs_ == 0; });
}

std::shared_ptr<ThreadPool> Engine::shared_pool() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_ == nullptr) {
    pool_ = std::make_shared<ThreadPool>(options_.num_threads);
  }
  return pool_;
}

Result<Session> Engine::OpenSession(CleaningInputs inputs,
                                    SessionOptions options) {
  HOLO_RETURN_NOT_OK(inputs.Validate());
  if (!options.cache_key.empty()) {
    std::optional<Session> cached =
        TakeCompatibleSession(options.cache_key, inputs);
    if (cached.has_value()) {
      // The parked session keeps its own (still-alive) input bundle; the
      // new bundle only served as the compatibility witness. UpdateConfig
      // invalidates exactly the stage suffix the config diff requires, so
      // the reuse is bit-identical to a cold open + run.
      cached->UpdateConfig(options.config);
      return std::move(*cached);
    }
  }
  std::shared_ptr<ThreadPool> pool =
      options.private_pool ? nullptr : shared_pool();
  // Second-level warm path: a session evicted from the LRU may live on as
  // a spilled snapshot. Restoring it replays every cached stage artifact
  // bit-identically; any validation failure (e.g. a config fingerprint
  // mismatch) falls back to the cold open below. An explicit
  // snapshot_path outranks the spill (the caller asked for that state).
  if (!options.cache_key.empty() && options.snapshot_path.empty()) {
    std::optional<SpillEntry> spill =
        TakeCompatibleSpill(options.cache_key, inputs);
    if (spill.has_value()) {
      Session session(options.config, inputs, pool);
      // engine.spill.restore models a lost/corrupt spill file; injected or
      // real, a failed restore costs warmth only — the cold open below
      // recomputes from the registered inputs.
      Status restored = HOLO_FAILPOINT("engine.spill.restore");
      if (restored.ok()) {
        restored = session.RestoreFrom(spill->path, options.load_options);
      }
      std::remove(spill->path.c_str());
      if (restored.ok()) return session;
    }
  }
  Session session(options.config, std::move(inputs), std::move(pool));
  if (!options.snapshot_path.empty()) {
    HOLO_RETURN_NOT_OK(
        session.RestoreFrom(options.snapshot_path, options.load_options));
  }
  return session;
}

Result<Session> OpenStandaloneSession(CleaningInputs inputs,
                                      SessionOptions options) {
  HOLO_RETURN_NOT_OK(inputs.Validate());
  Session session(options.config, std::move(inputs), nullptr);
  if (!options.snapshot_path.empty()) {
    HOLO_RETURN_NOT_OK(
        session.RestoreFrom(options.snapshot_path, options.load_options));
  }
  return session;
}

Result<Report> CleanOnce(CleaningInputs inputs, SessionOptions options) {
  Result<Session> opened =
      OpenStandaloneSession(std::move(inputs), std::move(options));
  if (!opened.ok()) return opened.status();
  Session session = std::move(opened).value();
  Result<Report> report = session.Run();
  if (report.ok()) {
    report.value().learned_weights =
        std::make_shared<const WeightStore>(session.context().weights);
  }
  return report;
}

Result<Report> Engine::RunJob(CleaningInputs inputs, SessionOptions options) {
  // engine.job.run models a job failing (or stalling, with delay) on a
  // pool worker before any pipeline stage starts.
  HOLO_RETURN_NOT_OK(HOLO_FAILPOINT("engine.job.run"));
  std::string cache_key = options.cache_key;
  Result<Session> opened = OpenSession(std::move(inputs), std::move(options));
  if (!opened.ok()) return opened.status();
  Session session = std::move(opened).value();
  Result<Report> report = session.Run();
  if (report.ok()) {
    report.value().learned_weights =
        std::make_shared<const WeightStore>(session.context().weights);
    // Park only successful sessions: a failed stage may have left a
    // partial context, and the next job under the key deserves a cold
    // open. (CacheSession additionally refuses borrowed bundles.)
    if (!cache_key.empty()) CacheSession(cache_key, std::move(session));
  }
  return report;
}

std::future<Result<Report>> Engine::Submit(CleaningInputs inputs,
                                           SessionOptions options) {
  auto promise = std::make_shared<std::promise<Result<Report>>>();
  std::future<Result<Report>> future = promise->get_future();
  std::shared_ptr<ThreadPool> pool = shared_pool();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++inflight_jobs_;
  }
  pool->Enqueue([this, promise, inputs = std::move(inputs),
                 options = std::move(options)]() mutable {
    promise->set_value(RunJob(std::move(inputs), std::move(options)));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inflight_jobs_;
    }
    idle_.notify_all();
  });
  return future;
}

uint64_t Engine::PerJobSeed(uint64_t base_seed, size_t job_index) {
  if (job_index == 0) return base_seed;
  return Mix64(base_seed + 0x9E3779B97F4A7C15ULL * job_index);
}

std::vector<std::future<Result<Report>>> Engine::SubmitBatch(
    std::vector<CleaningInputs> inputs, const SessionOptions& common) {
  std::vector<std::future<Result<Report>>> futures;
  futures.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    SessionOptions options = common;
    options.config.seed = PerJobSeed(common.config.seed, i);
    futures.push_back(Submit(std::move(inputs[i]), std::move(options)));
  }
  return futures;
}

std::vector<std::future<Result<Report>>> Engine::SubmitBatch(
    std::vector<BatchJob> jobs) {
  std::vector<std::future<Result<Report>>> futures;
  futures.reserve(jobs.size());
  for (BatchJob& job : jobs) {
    futures.push_back(Submit(std::move(job.inputs), std::move(job.options)));
  }
  return futures;
}

void Engine::CacheSession(const std::string& key, Session session) {
  if (options_.session_cache_capacity == 0) return;
  const CleaningInputs& inputs = session.inputs();
  // A parked session outlives its caller, so borrowed inputs would turn
  // into dangling pointers the moment the caller's scope ends — and a
  // later cache hit (validated against the *new* bundle's fingerprints)
  // would dereference them. Only fully owned bundles may park; borrowed
  // ones are simply destroyed here, which is always safe.
  if (!inputs.FullyOwned()) return;
  Dataset* dataset = inputs.dataset_ptr();
  uint64_t dcs_fp = DcsFingerprint(*inputs.dcs_ptr(), dataset->dirty().schema());
  uint64_t extdata_fp = ExternalDataFingerprint(
      inputs.dicts_ptr(), inputs.mds_ptr(), inputs.detectors_ptr());
  CacheEntry entry{key, dcs_fp, extdata_fp, dataset, std::move(session)};
  // Sessions are destroyed (or spilled) outside the lock: pool teardown,
  // artifact frees, and snapshot writes have no business serializing
  // other cache users.
  std::optional<Session> replaced;
  std::optional<CacheEntry> evicted;
  std::string stale_spill_path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      // Same-key replacement: the incoming session is strictly fresher,
      // so the old one is destroyed, never spilled.
      replaced = std::move(it->second->session);
      lru_.erase(it->second);
      by_key_.erase(it);
    }
    // The parked session also supersedes any spilled snapshot under the
    // key (the spill predates it).
    auto spill_it = spill_index_.find(key);
    if (spill_it != spill_index_.end()) {
      stale_spill_path = std::move(spill_it->second.path);
      spill_index_.erase(spill_it);
    }
    lru_.push_front(std::move(entry));
    by_key_[key] = lru_.begin();
    if (lru_.size() > options_.session_cache_capacity) {
      evicted = std::move(lru_.back());
      by_key_.erase(evicted->key);
      lru_.pop_back();
    }
  }
  if (!stale_spill_path.empty()) std::remove(stale_spill_path.c_str());
  if (evicted.has_value() && !options_.spill_directory.empty()) {
    SpillEvicted(std::move(*evicted));
  }
}

void Engine::SpillEvicted(CacheEntry evicted) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path = options_.spill_directory + "/spill-" +
           std::to_string(spill_seq_++) + ".snapshot";
  }
  // Packed-codec save (the SnapshotSaveOptions default): spilled state is
  // cold by definition, so it pays the compact-on-disk trade.
  // engine.spill.save models a full/failed disk during the save.
  Status saved = HOLO_FAILPOINT("engine.spill.save");
  if (saved.ok()) saved = evicted.session.Save(path);
  if (!saved.ok()) {
    std::remove(path.c_str());
    return;  // Dropping the session is the pre-spill eviction behavior.
  }
  SpillEntry entry{path, evicted.dcs_fp, evicted.extdata_fp, evicted.dataset};
  std::string displaced_path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A concurrent job may have re-parked or re-spilled the key while we
    // were saving; the newer state wins and this snapshot is discarded.
    if (by_key_.count(evicted.key) > 0 ||
        spill_index_.count(evicted.key) > 0) {
      displaced_path = std::move(path);
    } else {
      spill_index_.emplace(evicted.key, std::move(entry));
    }
  }
  if (!displaced_path.empty()) std::remove(displaced_path.c_str());
}

std::optional<Session> Engine::TakeCachedSession(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return std::nullopt;
  std::optional<Session> session(std::move(it->second->session));
  lru_.erase(it->second);
  by_key_.erase(it);
  return session;
}

std::optional<Session> Engine::TakeCompatibleSession(
    const std::string& key, const CleaningInputs& inputs) {
  Dataset* dataset = inputs.dataset_ptr();
  uint64_t dcs_fp =
      DcsFingerprint(*inputs.dcs_ptr(), dataset->dirty().schema());
  uint64_t extdata_fp = ExternalDataFingerprint(
      inputs.dicts_ptr(), inputs.mds_ptr(), inputs.detectors_ptr());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return std::nullopt;
  CacheEntry& entry = *it->second;
  // Reuse demands the same dataset *object* (the parked session's cached
  // artifacts embed its cell values and dictionary ids) and identical
  // constraint/external-data inputs. A mismatched entry stays parked: the
  // caller opens cold and typically replaces it afterwards.
  if (entry.dataset != dataset || entry.dcs_fp != dcs_fp ||
      entry.extdata_fp != extdata_fp) {
    return std::nullopt;
  }
  std::optional<Session> session(std::move(entry.session));
  lru_.erase(it->second);
  by_key_.erase(it);
  return session;
}

std::optional<Engine::SpillEntry> Engine::TakeCompatibleSpill(
    const std::string& key, const CleaningInputs& inputs) {
  Dataset* dataset = inputs.dataset_ptr();
  uint64_t dcs_fp =
      DcsFingerprint(*inputs.dcs_ptr(), dataset->dirty().schema());
  uint64_t extdata_fp = ExternalDataFingerprint(
      inputs.dicts_ptr(), inputs.mds_ptr(), inputs.detectors_ptr());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spill_index_.find(key);
  if (it == spill_index_.end()) return std::nullopt;
  if (it->second.dataset != dataset || it->second.dcs_fp != dcs_fp ||
      it->second.extdata_fp != extdata_fp) {
    return std::nullopt;
  }
  SpillEntry entry = std::move(it->second);
  spill_index_.erase(it);
  return entry;
}

bool Engine::HasCachedSession(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_key_.count(key) > 0;
}

bool Engine::HasSpilledSession(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spill_index_.count(key) > 0;
}

std::vector<std::string> Engine::CachedSessionKeys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const CacheEntry& entry : lru_) keys.push_back(entry.key);
  return keys;
}

std::vector<std::pair<std::string, Session>> Engine::TakeAllCachedSessions() {
  std::list<CacheEntry> taken;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    taken = std::move(lru_);
    lru_.clear();
    by_key_.clear();
  }
  std::vector<std::pair<std::string, Session>> sessions;
  sessions.reserve(taken.size());
  for (CacheEntry& entry : taken) {
    sessions.emplace_back(std::move(entry.key), std::move(entry.session));
  }
  return sessions;
}

size_t Engine::cached_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void Engine::SeedDictionary(const Dictionary& vocab) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < vocab.size(); ++i) {
    dict_arena_.Intern(vocab.GetString(static_cast<ValueId>(i)));
  }
}

std::shared_ptr<Dictionary> Engine::NewDictionary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::make_shared<Dictionary>(dict_arena_);
}

}  // namespace holoclean
