#include "holoclean/core/feedback.h"

#include <algorithm>

#include "holoclean/core/engine.h"

namespace holoclean {

size_t FeedbackSession::AddLabel(const FeedbackLabel& label) {
  // A newer verdict for the same cell replaces the older one.
  for (FeedbackLabel& existing : labels_) {
    if (existing.cell == label.cell) {
      existing.true_value = label.true_value;
      return labels_.size();
    }
  }
  labels_.push_back(label);
  return labels_.size();
}

Result<Report> FeedbackSession::Run() {
  if (!session_) {
    auto opened = OpenStandaloneSession(
        CleaningInputs::Borrowed(dataset_, &dcs_), {config_});
    if (!opened.ok()) return opened.status();
    session_.emplace(std::move(opened).value());
  }

  // Pin the labels not yet applied (or re-applied with a newer verdict):
  // the labeled cells now hold ground truth, so they stop violating
  // constraints (leaving Dn) and serve as evidence for weight learning —
  // the "labeled examples to retrain the parameters" of §2.2. PinCell
  // keeps the cached detection and re-runs only compile and later.
  // Rollback record per newly applied pin: the cell's table value from just
  // before the pin, and — when the cell was already pinned with an older
  // verdict — that previous pin entry. Erasing the entry outright on
  // failure would desynchronize the bookkeeping: the restored table value
  // IS the old pin, so the pin entry must come back with it.
  struct AppliedPin {
    CellRef cell;
    ValueId previous_value = 0;
    bool had_pin = false;
    ValueId previous_pin = 0;
  };
  Table& table = dataset_->dirty();
  std::vector<AppliedPin> applied;
  for (const FeedbackLabel& label : labels_) {
    auto it = pinned_.find(label.cell);
    if (it != pinned_.end() && it->second == label.true_value) continue;
    AppliedPin pin;
    pin.cell = label.cell;
    pin.previous_value = table.Get(label.cell);
    pin.had_pin = it != pinned_.end();
    if (pin.had_pin) pin.previous_pin = it->second;
    applied.push_back(pin);
    session_->PinCell(label.cell, label.true_value);
    pinned_[label.cell] = label.true_value;
  }

  Result<Report> report = session_->Run();
  if (!report.ok()) {
    // Restore on failure so the session stays usable.
    for (const AppliedPin& pin : applied) {
      table.Set(pin.cell, pin.previous_value);
      if (pin.had_pin) {
        pinned_[pin.cell] = pin.previous_pin;
      } else {
        pinned_.erase(pin.cell);
      }
    }
    session_->Invalidate(StageId::kDetect);
    return report.status();
  }
  last_report_ = report.value();
  return std::move(report).value();
}

std::vector<Repair> FeedbackSession::ReviewQueue(size_t k) const {
  std::vector<Repair> queue = last_report_.repairs;
  std::sort(queue.begin(), queue.end(), [](const Repair& a, const Repair& b) {
    return a.probability != b.probability ? a.probability < b.probability
                                          : a.cell < b.cell;
  });
  if (queue.size() > k) queue.resize(k);
  return queue;
}

}  // namespace holoclean
