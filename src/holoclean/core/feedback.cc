#include "holoclean/core/feedback.h"

#include <algorithm>

#include "holoclean/core/pipeline.h"

namespace holoclean {

size_t FeedbackSession::AddLabel(const FeedbackLabel& label) {
  // A newer verdict for the same cell replaces the older one.
  for (FeedbackLabel& existing : labels_) {
    if (existing.cell == label.cell) {
      existing.true_value = label.true_value;
      return labels_.size();
    }
  }
  labels_.push_back(label);
  return labels_.size();
}

Result<Report> FeedbackSession::Run() {
  if (!session_) {
    HoloClean cleaner(config_);
    auto opened = cleaner.Open(dataset_, dcs_);
    if (!opened.ok()) return opened.status();
    session_.emplace(std::move(opened).value());
  }

  // Pin the labels not yet applied (or re-applied with a newer verdict):
  // the labeled cells now hold ground truth, so they stop violating
  // constraints (leaving Dn) and serve as evidence for weight learning —
  // the "labeled examples to retrain the parameters" of §2.2. PinCell
  // keeps the cached detection and re-runs only compile and later.
  Table& table = dataset_->dirty();
  std::vector<std::pair<CellRef, ValueId>> previous;
  for (const FeedbackLabel& label : labels_) {
    auto it = pinned_.find(label.cell);
    if (it != pinned_.end() && it->second == label.true_value) continue;
    previous.emplace_back(label.cell, table.Get(label.cell));
    session_->PinCell(label.cell, label.true_value);
    pinned_[label.cell] = label.true_value;
  }

  Result<Report> report = session_->Run();
  if (!report.ok()) {
    // Restore on failure so the session stays usable.
    for (const auto& [cell, value] : previous) {
      table.Set(cell, value);
      pinned_.erase(cell);
    }
    session_->Invalidate(StageId::kDetect);
    return report.status();
  }
  last_report_ = report.value();
  return std::move(report).value();
}

std::vector<Repair> FeedbackSession::ReviewQueue(size_t k) const {
  std::vector<Repair> queue = last_report_.repairs;
  std::sort(queue.begin(), queue.end(), [](const Repair& a, const Repair& b) {
    return a.probability != b.probability ? a.probability < b.probability
                                          : a.cell < b.cell;
  });
  if (queue.size() > k) queue.resize(k);
  return queue;
}

}  // namespace holoclean
