#include "holoclean/core/pipeline.h"

namespace holoclean {

SessionOptions HoloClean::MakeSessionOptions() const {
  SessionOptions options;
  options.config = config_;
  // Facade sessions keep the legacy pool semantics: a private pool sized
  // by config.num_threads (results are thread-count invariant, but tests
  // and benches rely on num_threads == 1 meaning a fully sequential run).
  options.private_pool = true;
  return options;
}

Result<Session> HoloClean::Open(Dataset* dataset,
                                const std::vector<DenialConstraint>& dcs,
                                const ExtDictCollection* dicts,
                                const std::vector<MatchingDependency>* mds,
                                const DetectorSuite* extra_detectors) const {
  return engine_->OpenSession(
      CleaningInputs::Borrowed(dataset, &dcs, dicts, mds, extra_detectors),
      MakeSessionOptions());
}

Result<Session> HoloClean::Restore(const std::string& snapshot_path,
                                   Dataset* dataset,
                                   const std::vector<DenialConstraint>& dcs,
                                   const ExtDictCollection* dicts,
                                   const std::vector<MatchingDependency>* mds,
                                   const DetectorSuite* extra_detectors,
                                   const SnapshotLoadOptions& options) const {
  SessionOptions session_options = MakeSessionOptions();
  session_options.snapshot_path = snapshot_path;
  session_options.load_options = options;
  return engine_->OpenSession(
      CleaningInputs::Borrowed(dataset, &dcs, dicts, mds, extra_detectors),
      std::move(session_options));
}

Result<Report> HoloClean::Run(Dataset* dataset,
                              const std::vector<DenialConstraint>& dcs,
                              const ExtDictCollection* dicts,
                              const std::vector<MatchingDependency>* mds,
                              const DetectorSuite* extra_detectors) {
  HOLO_ASSIGN_OR_RETURN(session,
                        Open(dataset, dcs, dicts, mds, extra_detectors));
  HOLO_ASSIGN_OR_RETURN(report, session.Run());
  last_weights_ = std::make_shared<const WeightStore>(
      session.context().weights);
  report.learned_weights = last_weights_;
  return report;
}

const WeightStore& HoloClean::weights() const {
  static const WeightStore kEmpty;
  return last_weights_ != nullptr ? *last_weights_ : kEmpty;
}

}  // namespace holoclean
