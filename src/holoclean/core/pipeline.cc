#include "holoclean/core/pipeline.h"

#include <algorithm>
#include <unordered_set>

#include "holoclean/ddlog/program.h"
#include "holoclean/infer/gibbs.h"
#include "holoclean/infer/learner.h"
#include "holoclean/model/domain_pruning.h"
#include "holoclean/model/feature_registry.h"
#include "holoclean/model/grounding.h"
#include "holoclean/stats/cooccurrence.h"
#include "holoclean/stats/source_reliability.h"
#include "holoclean/util/rng.h"
#include "holoclean/util/thread_pool.h"
#include "holoclean/util/timer.h"

namespace holoclean {

namespace {

/// Builds the DDlog program mirroring the configured model, for the report.
Program BuildProgram(const HoloCleanConfig& config,
                     const std::vector<DenialConstraint>& dcs,
                     size_t num_dicts) {
  Program program;
  program.rules.push_back({RuleKind::kRandomVariable});
  InferenceRule feature;
  feature.kind = RuleKind::kFeature;
  feature.weight_is_learned = true;
  program.rules.push_back(feature);
  InferenceRule prior;
  prior.kind = RuleKind::kMinimalityPrior;
  prior.fixed_weight = config.minimality_weight;
  program.rules.push_back(prior);
  for (size_t k = 0; k < num_dicts; ++k) {
    InferenceRule rule;
    rule.kind = RuleKind::kExtDictMatch;
    rule.dict_id = static_cast<int>(k);
    rule.weight_is_learned = true;
    program.rules.push_back(rule);
  }
  bool factors =
      config.dc_mode == DcMode::kFactors || config.dc_mode == DcMode::kBoth;
  bool features =
      config.dc_mode == DcMode::kFeatures || config.dc_mode == DcMode::kBoth;
  for (size_t s = 0; s < dcs.size(); ++s) {
    if (factors) {
      InferenceRule rule;
      rule.kind = RuleKind::kDcFactor;
      rule.dc_index = static_cast<int>(s);
      rule.fixed_weight = config.dc_factor_weight;
      program.rules.push_back(rule);
    }
    if (features) {
      for (const DcHeadSlot& slot : EnumerateHeadSlots(dcs[s])) {
        InferenceRule rule;
        rule.kind = RuleKind::kDcRelaxedFeature;
        rule.dc_index = static_cast<int>(s);
        rule.head = slot;
        rule.weight_is_learned = true;
        program.rules.push_back(rule);
      }
    }
  }
  return program;
}

}  // namespace

Result<Report> HoloClean::Run(Dataset* dataset,
                              const std::vector<DenialConstraint>& dcs,
                              const ExtDictCollection* dicts,
                              const std::vector<MatchingDependency>* mds,
                              const DetectorSuite* extra_detectors) {
  if (dataset == nullptr) return Status::InvalidArgument("null dataset");
  Report report;
  Table& table = dataset->dirty();
  std::vector<AttrId> attrs = dataset->RepairableAttrs();
  ThreadPool pool(config_.num_threads);
  ThreadPool* pool_ptr = config_.num_threads == 1 ? nullptr : &pool;

  // ---- Phase 1: error detection --------------------------------------
  Timer timer;
  ViolationDetector::Options det_options;
  det_options.sim_threshold = config_.sim_threshold;
  det_options.pool = pool_ptr;
  ViolationDetector detector(&table, &dcs, det_options);
  std::vector<Violation> violations = detector.Detect();
  NoisyCells noisy = ViolationDetector::NoisyFromViolations(violations);
  if (extra_detectors != nullptr) {
    noisy.Merge(extra_detectors->Detect(*dataset));
  }
  report.stats.detect_seconds = timer.Seconds();
  report.stats.num_violations = violations.size();
  report.stats.num_noisy_cells = noisy.size();

  // ---- Phase 2: compilation ------------------------------------------
  timer.Reset();
  CooccurrenceStats cooc = CooccurrenceStats::Build(table, attrs);

  // External data: evaluate matching dependencies, intern suggested values
  // so they can enter candidate domains.
  std::vector<MatchedEntry> matches;
  if (dicts != nullptr && mds != nullptr && !dicts->empty()) {
    Matcher matcher(&table, dicts);
    HOLO_ASSIGN_OR_RETURN(matched, matcher.MatchAll(*mds));
    matches = std::move(matched);
    for (const MatchedEntry& m : matches) table.dict().Intern(m.value);
  }

  // Evidence sample: clean, non-null cells, capped for training cost.
  std::vector<CellRef> evidence_cells;
  for (size_t t = 0; t < table.num_rows(); ++t) {
    for (AttrId a : attrs) {
      CellRef c{static_cast<TupleId>(t), a};
      if (noisy.Contains(c)) continue;
      if (table.Get(c) == Dictionary::kNull) continue;
      evidence_cells.push_back(c);
    }
  }
  if (evidence_cells.size() > config_.max_training_cells) {
    Rng rng(config_.seed);
    rng.Shuffle(&evidence_cells);
    evidence_cells.resize(config_.max_training_cells);
    std::sort(evidence_cells.begin(), evidence_cells.end());
  }

  // Domain pruning (Algorithm 2) over query and evidence cells alike.
  DomainPruningOptions prune_options;
  prune_options.tau = config_.tau;
  prune_options.max_candidates = config_.max_candidates;
  std::vector<CellRef> all_cells = noisy.cells();
  all_cells.insert(all_cells.end(), evidence_cells.begin(),
                   evidence_cells.end());
  PrunedDomains domains =
      PruneDomains(table, all_cells, attrs, cooc, prune_options);

  // Candidates suggested by external dictionaries join the domain of the
  // matched (noisy) cells.
  for (const MatchedEntry& m : matches) {
    if (!noisy.Contains(m.cell)) continue;
    auto it = domains.candidates.find(m.cell);
    if (it == domains.candidates.end()) continue;
    ValueId v = table.dict().Lookup(m.value);
    if (v < 0) continue;
    if (std::find(it->second.begin(), it->second.end(), v) ==
        it->second.end()) {
      it->second.push_back(v);
    }
  }
  report.stats.num_candidates = domains.TotalCandidates();

  Program program = BuildProgram(config_, dcs,
                                 dicts == nullptr ? 0 : dicts->size());
  report.ddlog = program.ToDDlog(table.schema(), dcs);

  GroundingInput ground_input;
  ground_input.table = &table;
  ground_input.dcs = &dcs;
  ground_input.attrs = &attrs;
  ground_input.cooc = &cooc;
  ground_input.query_cells = &noisy.cells();
  ground_input.evidence_cells = &evidence_cells;
  ground_input.domains = &domains;
  ground_input.matches = matches.empty() ? nullptr : &matches;
  ground_input.violations = &violations;
  ground_input.source_attr = dataset->source_attr();

  GroundingOptions ground_options = config_.ToGroundingOptions();
  ground_options.pool = pool_ptr;
  Grounder grounder(ground_input, ground_options);
  HOLO_ASSIGN_OR_RETURN(graph, grounder.Ground());
  report.stats.compile_seconds = timer.Seconds();
  report.stats.num_query_vars = grounder.stats().num_query_vars;
  report.stats.num_evidence_vars = grounder.stats().num_evidence_vars;
  report.stats.num_dc_factors = grounder.stats().num_dc_factors;
  report.stats.num_grounded_factors = graph.NumGroundedFactors();

  // ---- Phase 3: learning ----------------------------------------------
  timer.Reset();
  weights_ = WeightStore();
  // Signal priors (refined by SGD below): statistics features positive,
  // violation counts negative, dictionary matches positive.
  for (AttrId a : attrs) {
    uint32_t au = static_cast<uint32_t>(a);
    weights_.Set(WeightKeyCodec::Pack(FeatureKind::kFrequency, au, 0, 0, 0),
                 config_.freq_prior_weight);
    for (AttrId a_ctx : attrs) {
      if (a_ctx == a) continue;
      weights_.Set(
          WeightKeyCodec::Pack(FeatureKind::kCondProb, au,
                               static_cast<uint32_t>(a_ctx), 0, 0),
          config_.stats_prior_weight);
    }
  }
  for (size_t s = 0; s < dcs.size(); ++s) {
    weights_.Set(WeightKeyCodec::Pack(FeatureKind::kDcViolation, 0,
                                      static_cast<uint32_t>(s), 0, 0),
                 config_.dc_violation_init);
  }
  if (dicts != nullptr) {
    for (size_t k = 0; k < dicts->size(); ++k) {
      weights_.Set(WeightKeyCodec::Pack(FeatureKind::kExtDict, 0,
                                        static_cast<uint32_t>(k), 0, 0),
                   config_.ext_dict_init);
    }
  }
  if (!dataset->has_source_attr()) {
    for (AttrId a : attrs) {
      for (size_t s = 0; s < dcs.size(); ++s) {
        weights_.Set(WeightKeyCodec::Pack(FeatureKind::kSourceSupport,
                                          static_cast<uint32_t>(a),
                                          static_cast<uint32_t>(s), 0, 0),
                     config_.support_prior);
      }
    }
  }
  // Source-trust initialization (SLiMFast-style, §6.2.1): when provenance
  // is available, estimate per-source reliability with the EM voter and
  // seed the partner-support weights with it. SGD refines from there.
  if (dataset->has_source_attr()) {
    AttrId key_attr = -1;
    for (const DenialConstraint& dc : dcs) {
      auto equalities = dc.CrossEqualities();
      if (dc.IsTwoTuple() && !equalities.empty()) {
        key_attr = equalities.front()->lhs_attr;
        break;
      }
    }
    if (key_attr >= 0) {
      SourceReliability trust = SourceReliability::Estimate(
          table, key_attr, dataset->source_attr());
      for (const auto& [src, r] : trust.All()) {
        double w = config_.source_trust_scale * (r - 0.5) * 2.0;
        for (AttrId a : attrs) {
          for (size_t s = 0; s < dcs.size(); ++s) {
            weights_.Set(
                WeightKeyCodec::Pack(FeatureKind::kSourceSupport,
                                     static_cast<uint32_t>(a),
                                     static_cast<uint32_t>(s),
                                     static_cast<uint32_t>(src), 0),
                w);
          }
        }
      }
    }
  }
  LearnerOptions learn_options;
  learn_options.epochs = config_.epochs;
  learn_options.learning_rate = config_.learning_rate;
  learn_options.lr_decay = config_.lr_decay;
  learn_options.l2 = config_.l2;
  learn_options.seed = config_.seed ^ 0x5851F42D4C957F2DULL;
  SgdLearner learner(&graph, learn_options);
  learner.Train(&weights_);
  report.stats.learn_seconds = timer.Seconds();

  // ---- Phase 3b: inference ---------------------------------------------
  timer.Reset();
  Marginals marginals(0);
  if (graph.dc_factors().empty()) {
    marginals = ExactIndependentMarginals(graph, weights_);
  } else {
    GibbsOptions gibbs_options;
    gibbs_options.burn_in = config_.gibbs_burn_in;
    gibbs_options.samples = config_.gibbs_samples;
    gibbs_options.seed = config_.seed ^ 0x2545F4914F6CDD1DULL;
    gibbs_options.pool = pool_ptr;
    GibbsSampler sampler(&graph, &table, &dcs, &weights_, gibbs_options);
    marginals = sampler.Run();
  }

  for (int32_t var_id : graph.query_vars()) {
    const Variable& var = graph.variable(var_id);
    int map_index = marginals.MapIndex(var_id);
    double map_prob = marginals.MapProb(var_id);
    ValueId old_value = table.Get(var.cell);
    ValueId new_value = var.domain[static_cast<size_t>(map_index)];
    report.posteriors.push_back(
        {var.cell, old_value, new_value, map_prob});
    if (new_value != old_value) {
      report.repairs.push_back({var.cell, old_value, new_value, map_prob});
    }
  }
  std::sort(report.repairs.begin(), report.repairs.end(),
            [](const Repair& a, const Repair& b) { return a.cell < b.cell; });
  report.stats.infer_seconds = timer.Seconds();
  return report;
}

}  // namespace holoclean
