#include "holoclean/core/pipeline.h"

namespace holoclean {

Result<Session> HoloClean::Open(Dataset* dataset,
                                const std::vector<DenialConstraint>& dcs,
                                const ExtDictCollection* dicts,
                                const std::vector<MatchingDependency>* mds,
                                const DetectorSuite* extra_detectors) const {
  if (dataset == nullptr) return Status::InvalidArgument("null dataset");
  return Session(config_, dataset, &dcs, dicts, mds, extra_detectors);
}

Result<Session> HoloClean::Restore(const std::string& snapshot_path,
                                   Dataset* dataset,
                                   const std::vector<DenialConstraint>& dcs,
                                   const ExtDictCollection* dicts,
                                   const std::vector<MatchingDependency>* mds,
                                   const DetectorSuite* extra_detectors,
                                   const SnapshotLoadOptions& options) const {
  HOLO_ASSIGN_OR_RETURN(session,
                        Open(dataset, dcs, dicts, mds, extra_detectors));
  HOLO_RETURN_NOT_OK(session.RestoreFrom(snapshot_path, options));
  return session;
}

Result<Report> HoloClean::Run(Dataset* dataset,
                              const std::vector<DenialConstraint>& dcs,
                              const ExtDictCollection* dicts,
                              const std::vector<MatchingDependency>* mds,
                              const DetectorSuite* extra_detectors) {
  HOLO_ASSIGN_OR_RETURN(session,
                        Open(dataset, dcs, dicts, mds, extra_detectors));
  HOLO_ASSIGN_OR_RETURN(report, session.Run());
  weights_ = session.context().weights;
  return report;
}

}  // namespace holoclean
