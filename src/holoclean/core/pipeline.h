#ifndef HOLOCLEAN_CORE_PIPELINE_H_
#define HOLOCLEAN_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "holoclean/core/config.h"
#include "holoclean/core/engine.h"
#include "holoclean/core/report.h"
#include "holoclean/core/session.h"
#include "holoclean/detect/error_detector.h"
#include "holoclean/extdata/matcher.h"
#include "holoclean/extdata/matching_dependency.h"
#include "holoclean/model/weight_store.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// Deprecated single-instance facade over the Engine API (paper Figure 2).
///
/// New code should use holoclean::Engine directly: it owns the shared
/// worker pool and session LRU, takes value-typed CleaningInputs bundles
/// (borrowed or owned) instead of five nullable raw pointers, and supports
/// concurrent multi-dataset batch runs with per-job futures
/// (Engine::Submit / Engine::SubmitBatch). Migration:
///
///   HoloClean(cfg).Run(ds, dcs, ...)   -> engine.Submit(inputs, {cfg})
///                                         or OpenSession(...)->Run()
///   HoloClean::Open(ds, dcs, ...)      -> engine.OpenSession(inputs, {cfg})
///   HoloClean::Restore(path, ds, ...)  -> engine.OpenSession(inputs,
///                                         {cfg, .snapshot_path = path})
///   HoloClean::weights()               -> Session::weights() or
///                                         Report::learned_weights
///
/// The facade delegates to a private Engine with per-session pools (so a
/// session honors config.num_threads exactly as it always did) and every
/// existing call site compiles and behaves unchanged. It is not
/// re-entrant: Run updates the weights() shim. Batch and multi-tenant
/// deployments must use Engine.
class HoloClean {
 public:
  explicit HoloClean(HoloCleanConfig config)
      : config_(std::move(config)), engine_(std::make_shared<Engine>()) {}

  /// Cleans `dataset` under constraints `dcs`. `dicts`/`mds` supply the
  /// external-data signal and may be null; `extra_detectors` augments the
  /// default DC-violation error detection and may be null. Thin wrapper
  /// over the full stage sequence of a fresh Session.
  Result<Report> Run(Dataset* dataset,
                     const std::vector<DenialConstraint>& dcs,
                     const ExtDictCollection* dicts = nullptr,
                     const std::vector<MatchingDependency>* mds = nullptr,
                     const DetectorSuite* extra_detectors = nullptr);

  /// Opens a staged session over the inputs without running anything. All
  /// referenced inputs are borrowed and must outlive the session.
  Result<Session> Open(Dataset* dataset,
                       const std::vector<DenialConstraint>& dcs,
                       const ExtDictCollection* dicts = nullptr,
                       const std::vector<MatchingDependency>* mds = nullptr,
                       const DetectorSuite* extra_detectors = nullptr) const;

  /// Opens a session over the inputs and restores the cached stage
  /// artifacts from a SessionSnapshot written by Session::Save — the
  /// cross-process counterpart of an incremental re-run: a session saved
  /// after learning and restored here re-runs from inference against the
  /// persisted factor graph and weights, bit-identical to an uninterrupted
  /// in-process run. The snapshot must have been saved under the same
  /// config fingerprint, dataset, and constraints (validated on load).
  /// Restoring replays onto the dirty table any cell values the saved
  /// session had pinned via feedback.
  /// `options.lazy_graph` maps the file and defers the factor-graph
  /// section to first stage access instead of parsing it here.
  Result<Session> Restore(const std::string& snapshot_path, Dataset* dataset,
                          const std::vector<DenialConstraint>& dcs,
                          const ExtDictCollection* dicts = nullptr,
                          const std::vector<MatchingDependency>* mds = nullptr,
                          const DetectorSuite* extra_detectors = nullptr,
                          const SnapshotLoadOptions& options = {}) const;

  /// Deprecated: learned weights of this facade's last Run (model
  /// introspection, tests). Prefer Session::weights() or
  /// Report::learned_weights, which carry no cross-run mutable state.
  const WeightStore& weights() const;

  const HoloCleanConfig& config() const { return config_; }

 private:
  SessionOptions MakeSessionOptions() const;

  HoloCleanConfig config_;
  std::shared_ptr<Engine> engine_;
  /// weights() shim storage: the learned weights of the last Run.
  std::shared_ptr<const WeightStore> last_weights_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_PIPELINE_H_
