#ifndef HOLOCLEAN_CORE_PIPELINE_H_
#define HOLOCLEAN_CORE_PIPELINE_H_

#include <vector>

#include "holoclean/core/config.h"
#include "holoclean/core/report.h"
#include "holoclean/detect/error_detector.h"
#include "holoclean/extdata/matcher.h"
#include "holoclean/extdata/matching_dependency.h"
#include "holoclean/model/weight_store.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// The end-to-end HoloClean system (paper Figure 2):
///
///   1. Error detection — DC violations, plus any extra detectors.
///   2. Compilation — co-occurrence statistics, domain pruning (Alg. 2),
///      external-data matching, DDlog program generation, grounding
///      (with partitioning, Alg. 3, when configured).
///   3. Repairing — SGD weight learning on the evidence cells, then exact
///      marginals (relaxed model) or Gibbs sampling (DC factors), MAP
///      assignment, and repairs with calibrated marginal probabilities.
///
/// The pipeline mutates the dataset's dictionary (interning candidate
/// values suggested by external dictionaries) but never the cell values;
/// apply repairs explicitly with Report::Apply.
class HoloClean {
 public:
  explicit HoloClean(HoloCleanConfig config) : config_(std::move(config)) {}

  /// Cleans `dataset` under constraints `dcs`. `dicts`/`mds` supply the
  /// external-data signal and may be null; `extra_detectors` augments the
  /// default DC-violation error detection and may be null.
  Result<Report> Run(Dataset* dataset,
                     const std::vector<DenialConstraint>& dcs,
                     const ExtDictCollection* dicts = nullptr,
                     const std::vector<MatchingDependency>* mds = nullptr,
                     const DetectorSuite* extra_detectors = nullptr);

  /// Learned weights of the last run (model introspection, tests).
  const WeightStore& weights() const { return weights_; }

  const HoloCleanConfig& config() const { return config_; }

 private:
  HoloCleanConfig config_;
  WeightStore weights_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_PIPELINE_H_
