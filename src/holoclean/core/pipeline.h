#ifndef HOLOCLEAN_CORE_PIPELINE_H_
#define HOLOCLEAN_CORE_PIPELINE_H_

#include <vector>

#include "holoclean/core/config.h"
#include "holoclean/core/report.h"
#include "holoclean/core/session.h"
#include "holoclean/detect/error_detector.h"
#include "holoclean/extdata/matcher.h"
#include "holoclean/extdata/matching_dependency.h"
#include "holoclean/model/weight_store.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// The end-to-end HoloClean system (paper Figure 2), built as a staged
/// pipeline over a shared PipelineContext:
///
///   1. DetectStage — DC violations, plus any extra detectors.
///   2. CompileStage — co-occurrence statistics, domain pruning (Alg. 2),
///      external-data matching, DDlog program generation, grounding
///      (partition-parallel over the Alg. 3 tuple groups when configured).
///   3. LearnStage — prior weights (WeightInitializer) refined by SGD on
///      the evidence cells.
///   4. InferStage — exact marginals (relaxed model) or Gibbs sampling
///      (DC factors), one concurrent chain per graph component.
///   5. RepairStage — MAP assignment and repairs with calibrated marginal
///      probabilities.
///
/// Run() executes the full sequence. Open() returns a Session handle that
/// caches every stage artifact and supports incremental re-runs: after
/// feedback pins a cell or a config change touches only inference knobs,
/// only the affected suffix of stages re-executes.
///
/// The pipeline mutates the dataset's dictionary (interning candidate
/// values suggested by external dictionaries) but never the cell values;
/// apply repairs explicitly with Report::Apply.
class HoloClean {
 public:
  explicit HoloClean(HoloCleanConfig config) : config_(std::move(config)) {}

  /// Cleans `dataset` under constraints `dcs`. `dicts`/`mds` supply the
  /// external-data signal and may be null; `extra_detectors` augments the
  /// default DC-violation error detection and may be null. Thin wrapper
  /// over the full stage sequence of a fresh Session.
  Result<Report> Run(Dataset* dataset,
                     const std::vector<DenialConstraint>& dcs,
                     const ExtDictCollection* dicts = nullptr,
                     const std::vector<MatchingDependency>* mds = nullptr,
                     const DetectorSuite* extra_detectors = nullptr);

  /// Opens a staged session over the inputs without running anything. All
  /// referenced inputs are borrowed and must outlive the session.
  Result<Session> Open(Dataset* dataset,
                       const std::vector<DenialConstraint>& dcs,
                       const ExtDictCollection* dicts = nullptr,
                       const std::vector<MatchingDependency>* mds = nullptr,
                       const DetectorSuite* extra_detectors = nullptr) const;

  /// Opens a session over the inputs and restores the cached stage
  /// artifacts from a SessionSnapshot written by Session::Save — the
  /// cross-process counterpart of an incremental re-run: a session saved
  /// after learning and restored here re-runs from inference against the
  /// persisted factor graph and weights, bit-identical to an uninterrupted
  /// in-process run. The snapshot must have been saved under the same
  /// config fingerprint, dataset, and constraints (validated on load).
  /// Restoring replays onto the dirty table any cell values the saved
  /// session had pinned via feedback.
  /// `options.lazy_graph` maps the file and defers the factor-graph
  /// section to first stage access instead of parsing it here.
  Result<Session> Restore(const std::string& snapshot_path, Dataset* dataset,
                          const std::vector<DenialConstraint>& dcs,
                          const ExtDictCollection* dicts = nullptr,
                          const std::vector<MatchingDependency>* mds = nullptr,
                          const DetectorSuite* extra_detectors = nullptr,
                          const SnapshotLoadOptions& options = {}) const;

  /// Learned weights of the last run (model introspection, tests).
  const WeightStore& weights() const { return weights_; }

  const HoloCleanConfig& config() const { return config_; }

 private:
  HoloCleanConfig config_;
  WeightStore weights_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_PIPELINE_H_
