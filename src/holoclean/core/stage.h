#ifndef HOLOCLEAN_CORE_STAGE_H_
#define HOLOCLEAN_CORE_STAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "holoclean/core/pipeline_context.h"
#include "holoclean/util/status.h"

namespace holoclean {

/// The stages of the HoloClean pipeline in execution order (paper Figure 2:
/// error detection, compilation, repairing = learning + inference), with
/// repair extraction split out so inference knobs can be re-run without
/// re-deriving the MAP assignment code path.
enum class StageId : int {
  kDetect = 0,
  kCompile = 1,
  kLearn = 2,
  kInfer = 3,
  kRepair = 4,
};

inline constexpr int kNumStages = 5;

/// Stage name as used in reports and CLI flags ("detect", "compile", ...).
const char* StageName(StageId id);

/// Parses a stage name printed by StageName; case-sensitive.
Result<StageId> ParseStageName(const std::string& name);

/// One composable step of the pipeline. Stages are stateless: everything
/// they read and write lives in the PipelineContext, so any stage can be
/// re-executed against cached upstream artifacts at any time.
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;

  virtual StageId id() const = 0;
  const char* Name() const { return StageName(id()); }

  /// Executes the stage against the context. Reads upstream artifacts,
  /// overwrites this stage's artifacts and report statistics.
  virtual Status Run(PipelineContext* ctx) = 0;
};

/// The full stage sequence: Detect, Compile, Learn, Infer, Repair.
std::vector<std::unique_ptr<PipelineStage>> MakeDefaultStages();

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_STAGE_H_
