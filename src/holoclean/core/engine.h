#ifndef HOLOCLEAN_CORE_ENGINE_H_
#define HOLOCLEAN_CORE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "holoclean/core/inputs.h"
#include "holoclean/core/session.h"

namespace holoclean {

/// Construction-time knobs of an Engine.
struct EngineOptions {
  /// Workers of the shared pool (0 = hardware concurrency). The pool is
  /// created lazily, on the first shared-pool session or submitted job, so
  /// an engine used only through private-pool sessions never spawns it.
  size_t num_threads = 0;
  /// Capacity of the bounded LRU of parked sessions (restored or compiled
  /// state kept warm between jobs). 0 disables parking.
  size_t session_cache_capacity = 8;
  /// When set, sessions evicted from a full LRU are saved to compressed
  /// snapshots in this directory instead of being destroyed, and a later
  /// OpenSession/job under the same cache_key (same dataset object, same
  /// constraint/external-data fingerprints) restores the snapshot instead
  /// of recomputing from scratch. A spilled snapshot is single-use; a
  /// failed restore falls back to a cold open. Empty disables spilling.
  std::string spill_directory;
};

/// Per-session/per-job options: the pipeline configuration plus how the
/// session is created and pooled.
struct SessionOptions {
  HoloCleanConfig config;

  /// When set, the session restores its cached stage artifacts from this
  /// SessionSnapshot (the restore-into-pool path; same validation and
  /// bit-identical resume semantics as a standalone restore).
  std::string snapshot_path;
  /// Snapshot load knobs (lazy mmap-backed graph materialization).
  SnapshotLoadOptions load_options;

  /// When set, OpenSession first checks the engine's session LRU for a
  /// compatible parked session under this key (same dataset object, same
  /// constraint and external-data fingerprints) and returns it after an
  /// UpdateConfig — reusing every still-valid cached stage artifact, and
  /// skipping the snapshot load. Submitted jobs park their session back
  /// under the key when they succeed — only for fully owned bundles
  /// (CleaningInputs::FullyOwned): a parked session outlives the caller,
  /// so borrowed inputs are never parked. A cache hit trades nothing for
  /// correctness: incremental re-runs are bit-identical to cold runs.
  std::string cache_key;

  /// Run on a private per-session pool sized by config.num_threads
  /// instead of the engine's shared pool (the legacy facade semantics).
  /// Results are bit-identical either way.
  bool private_pool = false;
};

/// The process-wide entry point of the cleaning service: one Engine owns
/// the resources every session and batch job shares —
///
///  - a ThreadPool serving every concurrent session's parallel sections
///    (amortizing thread setup that used to be paid per session, and
///    keeping a multi-tenant process at a bounded worker count),
///  - a bounded LRU of parked sessions, so repeated jobs over the same
///    instance reuse restored/compiled state instead of recomputing it,
///  - an interned-dictionary arena: a base vocabulary that NewDictionary()
///    stamps into per-dataset dictionaries, giving engine-created
///    datasets a shared value-id prefix without sharing a mutable
///    Dictionary across concurrent jobs.
///
/// Sessions are opened synchronously with OpenSession; whole cleaning
/// jobs are submitted asynchronously with Submit/SubmitBatch, which run
/// the pipeline on the shared pool and expose each job's outcome as a
/// std::future<Result<Report>>. Jobs are isolated: one failing dataset
/// surfaces a clean per-job Status without poisoning its siblings, and
/// every job is deterministic — batch results are bit-identical to the
/// same jobs run sequentially as standalone sessions, for any pool size.
///
/// The engine must outlive its sessions (they share its pool); the
/// destructor waits for in-flight jobs.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Waits for every submitted job to finish.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Opens a session over the bundle: validates the inputs, consults the
  /// session LRU (options.cache_key), and otherwise opens cold — wired to
  /// the shared pool unless options.private_pool — restoring from
  /// options.snapshot_path when set.
  Result<Session> OpenSession(CleaningInputs inputs,
                              SessionOptions options = {});

  /// Asynchronously runs one full cleaning job (open, run all stages,
  /// optionally park under options.cache_key) on the shared pool. The
  /// returned future never throws: failures surface as the Result's
  /// Status.
  std::future<Result<Report>> Submit(CleaningInputs inputs,
                                     SessionOptions options = {});

  /// One batch job: an input bundle plus its session options.
  struct BatchJob {
    CleaningInputs inputs;
    SessionOptions options;
  };

  /// Submits one job per bundle, all running concurrently over the shared
  /// pool with fair FIFO interleaving of their parallel sections. Job i
  /// runs `common` with its seed replaced by PerJobSeed(common.config.seed,
  /// i) — deterministic, scheduling-independent, and reproducible
  /// standalone by running job i's inputs with that same derived seed.
  std::vector<std::future<Result<Report>>> SubmitBatch(
      std::vector<CleaningInputs> inputs, const SessionOptions& common = {});

  /// Fully explicit batch: every job runs exactly its own options (no seed
  /// derivation).
  std::vector<std::future<Result<Report>>> SubmitBatch(
      std::vector<BatchJob> jobs);

  /// The seed SubmitBatch derives for job `job_index` from the common
  /// config's seed: a SplitMix-style mix, so per-job streams are
  /// decorrelated but a standalone rerun of any single job is trivially
  /// reproducible. Job 0 keeps the base seed.
  static uint64_t PerJobSeed(uint64_t base_seed, size_t job_index);

  // --- Session LRU ---------------------------------------------------------

  /// Parks a session under `key` for later reuse by OpenSession/jobs with
  /// that cache_key, evicting the least-recently-used entry beyond
  /// capacity. An existing entry under the key is replaced. Sessions over
  /// bundles with borrowed inputs are destroyed instead of parked (their
  /// pointers die with the caller's scope).
  void CacheSession(const std::string& key, Session session);

  /// Removes and returns the parked session under `key`, if any.
  std::optional<Session> TakeCachedSession(const std::string& key);

  bool HasCachedSession(const std::string& key) const;
  size_t cached_sessions() const;

  /// Keys of every parked session, most recently used first. A consistent
  /// snapshot of the LRU; entries may be taken by concurrent jobs before
  /// the caller acts on them.
  std::vector<std::string> CachedSessionKeys() const;

  /// Removes and returns every parked session with its key (MRU first),
  /// leaving the LRU empty. The drain primitive: a server saves each
  /// returned session to a snapshot before shutting down.
  std::vector<std::pair<std::string, Session>> TakeAllCachedSessions();

  /// True when a spilled snapshot is indexed under `key` (testing hook).
  bool HasSpilledSession(const std::string& key) const;

  // --- Shared dictionary arena ---------------------------------------------

  /// Merges a vocabulary into the engine's interned-dictionary arena (ids
  /// are assigned in first-seen order and never change).
  void SeedDictionary(const Dictionary& vocab);

  /// A fresh per-dataset dictionary pre-populated with the arena's
  /// vocabulary: every engine-stamped dictionary shares the arena's
  /// value-id prefix, and the copy (which reuses the arena's cached
  /// hashes) is what keeps concurrent jobs free of cross-session
  /// dictionary races.
  std::shared_ptr<Dictionary> NewDictionary() const;

  /// The shared pool, created on first use.
  std::shared_ptr<ThreadPool> shared_pool();

  const EngineOptions& options() const { return options_; }

 private:
  struct CacheEntry {
    std::string key;
    uint64_t dcs_fp = 0;
    uint64_t extdata_fp = 0;
    Dataset* dataset = nullptr;
    Session session;
  };

  /// Index entry of one spilled (evicted-to-snapshot) session. The
  /// fingerprints replay the same compatibility check the LRU uses; the
  /// snapshot's own validation then re-checks everything on restore.
  struct SpillEntry {
    std::string path;
    uint64_t dcs_fp = 0;
    uint64_t extdata_fp = 0;
    Dataset* dataset = nullptr;
  };

  /// The body of one submitted job; runs on a pool worker.
  Result<Report> RunJob(CleaningInputs inputs, SessionOptions options);

  /// Takes the parked session under `key` when it is compatible with the
  /// bundle (same dataset object, same constraint/external-data
  /// fingerprints); incompatible or absent entries are left alone.
  std::optional<Session> TakeCompatibleSession(const std::string& key,
                                               const CleaningInputs& inputs);

  /// Takes the spill-index entry under `key` when it is compatible with
  /// the bundle. The entry is removed either way the caller's restore
  /// goes: spilled snapshots are single-use.
  std::optional<SpillEntry> TakeCompatibleSpill(const std::string& key,
                                                const CleaningInputs& inputs);

  /// Saves an evicted cache entry to a spill snapshot and indexes it.
  /// Called outside mutex_ (snapshot writes are expensive); on save
  /// failure the session is simply dropped, which is the pre-spill
  /// eviction behavior.
  void SpillEvicted(CacheEntry evicted);

  EngineOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  size_t inflight_jobs_ = 0;  ///< Guarded by mutex_.
  std::shared_ptr<ThreadPool> pool_;  ///< Lazily created; guarded by mutex_.
  Dictionary dict_arena_;  ///< Guarded by mutex_.
  /// LRU of parked sessions, most recent first, with an index by key.
  std::list<CacheEntry> lru_;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> by_key_;
  /// Spilled sessions by cache key; guarded by mutex_.
  std::unordered_map<std::string, SpillEntry> spill_index_;
  size_t spill_seq_ = 0;  ///< Uniquifies spill filenames; guarded by mutex_.
};

// --- Standalone (engine-free) entry points ---------------------------------

/// Opens a self-contained session over the bundle: no Engine required, the
/// session owns a private pool sized by options.config.num_threads.
/// options.snapshot_path/load_options restore exactly as in
/// Engine::OpenSession; cache_key and private_pool are ignored (there is
/// no LRU, and the pool is always private). This is the one-shot
/// replacement for the removed HoloClean facade's Open/Restore.
Result<Session> OpenStandaloneSession(CleaningInputs inputs,
                                      SessionOptions options = {});

/// Opens a standalone session, runs the full pipeline once, and returns
/// the report (with learned_weights filled). The replacement for the
/// removed facade's Run.
Result<Report> CleanOnce(CleaningInputs inputs, SessionOptions options = {});

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_ENGINE_H_
