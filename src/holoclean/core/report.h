#ifndef HOLOCLEAN_CORE_REPORT_H_
#define HOLOCLEAN_CORE_REPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "holoclean/model/weight_store.h"
#include "holoclean/storage/table.h"

namespace holoclean {

/// One proposed cell repair with its calibrated marginal probability
/// (paper §2.2: "each repair ... is associated with a marginal probability
/// that carries rigorous semantics").
struct Repair {
  CellRef cell;
  ValueId old_value = 0;
  ValueId new_value = 0;
  double probability = 0.0;
};

/// Posterior summary for every query cell (including unrepaired ones);
/// drives the calibration analysis of §6.3.3.
struct CellPosterior {
  CellRef cell;
  ValueId old_value = 0;
  ValueId map_value = 0;
  double map_prob = 0.0;
};

/// Wall time and memory high-water mark of one pipeline stage in the last
/// run. Recorded uniformly by the session for every stage; `cached` marks
/// stages that were skipped on an incremental re-run because their
/// artifacts were still valid.
struct StageTiming {
  std::string name;
  double seconds = 0.0;
  /// Process peak RSS sampled when the stage finished (bytes; 0 when the
  /// platform cannot report it). The peak is monotone across the run, so
  /// the increase over the previous stage's sample is memory this stage
  /// newly touched.
  size_t peak_rss_bytes = 0;
  bool cached = false;
};

/// Phase timings and model-size statistics of one run (Tables 2/4,
/// Figures 4/5, and the grounding-reduction claims of §1).
struct RunStats {
  /// Legacy phase view of the timings (detect / compile / learn / infer,
  /// with the repair-extraction time folded into infer). Kept in sync with
  /// `stage_timings` by the session.
  double detect_seconds = 0.0;
  double compile_seconds = 0.0;
  double learn_seconds = 0.0;
  double infer_seconds = 0.0;

  /// Per-stage timings in stage order (detect, compile, learn, infer,
  /// repair). Empty for reports not produced by the staged engine.
  std::vector<StageTiming> stage_timings;

  size_t num_violations = 0;
  size_t num_noisy_cells = 0;
  size_t num_query_vars = 0;
  size_t num_evidence_vars = 0;
  size_t num_candidates = 0;
  size_t num_dc_factors = 0;
  size_t num_grounded_factors = 0;

  /// Detection truncation: true when at least one constraint hit the
  /// `max_fallback_pairs` budget and its violation set is incomplete
  /// (detect also logs a warning per truncated constraint).
  bool detect_truncated = false;
  /// How many constraints were truncated.
  size_t num_truncated_dcs = 0;

  double TotalSeconds() const {
    return detect_seconds + compile_seconds + learn_seconds + infer_seconds;
  }
  double RepairSeconds() const { return learn_seconds + infer_seconds; }
};

/// Everything a HoloClean run produces.
struct Report {
  /// Cells whose MAP value differs from the observed value.
  std::vector<Repair> repairs;
  /// Posterior for every query cell.
  std::vector<CellPosterior> posteriors;
  RunStats stats;
  /// The generated DDlog-style program (for inspection / debugging).
  std::string ddlog;
  /// The learned weights backing this run's repairs (model introspection
  /// for consumers that never see a session — Engine batch futures and
  /// the facade's Run). Filled at the job level, not by the learn stage
  /// (a per-stage deep copy would tax every incremental re-run): null on
  /// reports read straight off a Session, where Session::weights()
  /// exposes the live store for free. Not serialized into snapshots: the
  /// WeightStore has its own section.
  std::shared_ptr<const WeightStore> learned_weights;

  /// Applies the repairs to a table (typically the dataset's dirty table).
  void Apply(Table* table) const {
    for (const Repair& r : repairs) table->Set(r.cell, r.new_value);
  }
};

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_REPORT_H_
