#ifndef HOLOCLEAN_CORE_EVALUATION_H_
#define HOLOCLEAN_CORE_EVALUATION_H_

#include <vector>

#include "holoclean/core/report.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// Repair-quality metrics of the paper (§6.1): precision is correct repairs
/// over performed repairs; recall is correct repairs over ground-truth
/// errors; F1 is their harmonic mean.
struct EvalResult {
  size_t total_repairs = 0;
  size_t correct_repairs = 0;
  size_t total_errors = 0;

  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Scores `repairs` against the dataset's ground truth. A repair is correct
/// when it sets the cell to its clean value. Requires dataset.has_clean().
EvalResult EvaluateRepairs(const Dataset& dataset,
                           const std::vector<Repair>& repairs);

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_EVALUATION_H_
