#ifndef HOLOCLEAN_CORE_FEEDBACK_H_
#define HOLOCLEAN_CORE_FEEDBACK_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "holoclean/core/config.h"
#include "holoclean/core/report.h"
#include "holoclean/core/session.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// One user verdict on a proposed repair (or on a cell directly): the cell
/// and its true value.
struct FeedbackLabel {
  CellRef cell;
  ValueId true_value = 0;
};

/// The incremental-cleaning loop sketched in paper §2.2: HoloClean's
/// calibrated marginals identify the repairs worth showing a human ("ask
/// users to verify repairs with low marginal probabilities"), and the
/// verified labels are folded back in as evidence for the next run.
///
/// Runs ride a staged Session: the first Run() executes the full pipeline;
/// later runs pin the new labels into the cached context (Session::PinCell)
/// and re-execute only from CompileStage — the expensive detection pass is
/// reused, the labeled cells become evidence, and the model re-learns.
class FeedbackSession {
 public:
  FeedbackSession(Dataset* dataset, std::vector<DenialConstraint> dcs,
                  HoloCleanConfig config)
      : dataset_(dataset), dcs_(std::move(dcs)), config_(config) {}

  // The underlying Session borrows `dcs_` by address.
  FeedbackSession(const FeedbackSession&) = delete;
  FeedbackSession& operator=(const FeedbackSession&) = delete;

  /// Runs the pipeline with all labels received so far applied: labeled
  /// cells are fixed to their verified values (the cells become part of
  /// the clean evidence) and the model is re-learned.
  Result<Report> Run();

  /// The `k` proposed repairs with the lowest marginal probability from
  /// the last Run() — the review queue for the user.
  std::vector<Repair> ReviewQueue(size_t k) const;

  /// Records a user verdict. Returns the number of labels so far.
  size_t AddLabel(const FeedbackLabel& label);

  /// Convenience: confirm a proposed repair (label = repaired value).
  size_t Confirm(const Repair& repair) {
    return AddLabel({repair.cell, repair.new_value});
  }
  /// Convenience: reject a proposed repair (label = original value).
  size_t Reject(const Repair& repair) {
    return AddLabel({repair.cell, repair.old_value});
  }

  const std::vector<FeedbackLabel>& labels() const { return labels_; }
  const Report& last_report() const { return last_report_; }

  /// The pins currently applied to the table, by their pinned value. Stays
  /// consistent with the table across failed runs: a failure rolls the
  /// table back and restores the previous pin entries with it.
  const std::unordered_map<CellRef, ValueId, CellRefHash>& pinned() const {
    return pinned_;
  }

  /// The underlying staged session (null before the first Run()).
  Session* session() { return session_ ? &*session_ : nullptr; }

 private:
  Dataset* dataset_;
  std::vector<DenialConstraint> dcs_;
  HoloCleanConfig config_;
  std::vector<FeedbackLabel> labels_;
  /// Labels already pinned into the session, by their pinned value.
  std::unordered_map<CellRef, ValueId, CellRefHash> pinned_;
  std::optional<Session> session_;
  Report last_report_;
};

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_FEEDBACK_H_
