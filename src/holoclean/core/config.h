#ifndef HOLOCLEAN_CORE_CONFIG_H_
#define HOLOCLEAN_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "holoclean/model/grounding.h"
#include "holoclean/model/weight_initializer.h"

namespace holoclean {

/// End-to-end configuration of a HoloClean run. Defaults correspond to the
/// configuration the paper uses for its headline results (Table 3): DCs
/// relaxed to features, no partitioning, τ from {0.3,...,0.9} per dataset.
struct HoloCleanConfig {
  /// Domain-pruning threshold τ of Algorithm 2.
  double tau = 0.5;
  /// Hard cap on candidates per cell.
  size_t max_candidates = 64;

  /// How denial constraints enter the model (§6.3.1 variants).
  DcMode dc_mode = DcMode::kFeatures;
  /// Tuple partitioning (Algorithm 3) for DC factors.
  bool partitioning = false;
  /// Fixed soft weight of DC factors.
  double dc_factor_weight = 4.0;
  /// Minimality prior weight w0.
  double minimality_weight = 1.0;
  /// Similarity threshold for ≈ predicates and approximate matching.
  double sim_threshold = 0.8;
  /// Scale of the source-trust weight initialization derived from the
  /// SLiMFast-style reliability estimates (used when the dataset declares a
  /// provenance attribute; §6.2.1).
  double source_trust_scale = 2.0;

  /// Weight initializations. SGD refines all of these from the evidence
  /// cells; the priors encode the qualitative direction of each signal so
  /// the model behaves sensibly even where the evidence carries no gradient
  /// (e.g. single-candidate evidence variables).
  /// Initial weight of the shared probability-valued co-occurrence feature.
  double stats_prior_weight = 1.0;
  /// Initial weight of the per-attribute frequency feature.
  double freq_prior_weight = 0.3;
  /// Initial weight of the relaxed DC violation-count features w(σ)
  /// (negative: violations lower a candidate's score).
  double dc_violation_init = -1.0;
  /// Initial weight of the external-dictionary factors w(k).
  double ext_dict_init = 2.0;
  /// Initial weight of the FD-partner support feature when the dataset has
  /// no provenance column (with provenance, EM trust estimates are used).
  double support_prior = 0.5;

  /// Learning.
  int epochs = 20;
  double learning_rate = 0.05;
  double lr_decay = 0.95;
  double l2 = 1e-5;
  /// Evidence cells sampled for training (caps SGD cost on large inputs).
  size_t max_training_cells = 20'000;

  /// Gibbs sampling (used when DC factors are grounded).
  int gibbs_burn_in = 10;
  int gibbs_samples = 50;

  /// Compiled inference kernel for the learn/infer stages: dense weight
  /// ids, CSR feature arenas, and precomputed DC violation tables (see
  /// model/compiled_graph.h). Bit-identical results to the reference
  /// FactorGraph interpreter for any seed and thread count — this knob
  /// only trades compile-once setup cost for much faster hot loops, so it
  /// is deliberately excluded from the snapshot config fingerprint. Off
  /// switches back to the reference path (A/B comparisons, debugging).
  bool compiled_kernel = true;
  /// Max candidate-combination entries precomputed per DC factor; factors
  /// whose candidate cross-product exceeds the cap fall back to
  /// evaluator-based scoring (bit-identical, just slower). Also excluded
  /// from the config fingerprint.
  size_t dc_table_cap = 4096;

  /// Columnar fast paths for detect/compile: violation detection over
  /// per-column dictionary codes, co-occurrence counting passes, flat-run
  /// domain pruning, and context-run grounding features. Storage itself is
  /// always columnar (ColumnStore behind Table); this knob only selects the
  /// scan algorithms and is bit-identical to the row reference paths for
  /// any seed and thread count, so — like `compiled_kernel` — it is
  /// excluded from the snapshot config fingerprint. Off switches back to
  /// the row reference path (A/B comparisons, differential tests).
  bool columnar = true;

  /// Master seed for every randomized component.
  uint64_t seed = 42;

  /// Worker threads for detection, grounding, and Gibbs sampling
  /// (0 = hardware concurrency, 1 = fully sequential). Results are
  /// identical for any thread count.
  size_t num_threads = 0;

  /// Translates to the weight-initializer options.
  WeightInitOptions ToWeightInitOptions() const {
    WeightInitOptions w;
    w.stats_prior_weight = stats_prior_weight;
    w.freq_prior_weight = freq_prior_weight;
    w.dc_violation_init = dc_violation_init;
    w.ext_dict_init = ext_dict_init;
    w.support_prior = support_prior;
    w.source_trust_scale = source_trust_scale;
    return w;
  }

  /// Translates to the grounding-engine options.
  GroundingOptions ToGroundingOptions() const {
    GroundingOptions g;
    g.dc_mode = dc_mode;
    g.use_partitioning = partitioning;
    g.dc_factor_weight = dc_factor_weight;
    g.minimality_weight = minimality_weight;
    g.sim_threshold = sim_threshold;
    g.columnar = columnar;
    return g;
  }
};

/// Human-readable name of a DcMode ("DC Factors", "DC Feats", ...).
std::string DcModeName(DcMode mode);

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_CONFIG_H_
