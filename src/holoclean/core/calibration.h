#ifndef HOLOCLEAN_CORE_CALIBRATION_H_
#define HOLOCLEAN_CORE_CALIBRATION_H_

#include <vector>

#include "holoclean/core/report.h"
#include "holoclean/storage/dataset.h"

namespace holoclean {

/// One probability bucket of the calibration analysis (paper Figure 6).
struct CalibrationBucket {
  double lo = 0.0;
  double hi = 0.0;
  size_t total = 0;
  size_t wrong = 0;

  /// Rate of incorrect repairs among repairs in this bucket.
  double ErrorRate() const {
    return total == 0 ? 0.0 : static_cast<double>(wrong) /
                                  static_cast<double>(total);
  }
};

/// Buckets the run's repairs by marginal probability and measures the
/// error rate per bucket against ground truth. Default buckets are the
/// paper's: [.5,.6), [.6,.7), [.7,.8), [.8,.9), [.9,1.0].
std::vector<CalibrationBucket> ComputeCalibration(
    const Dataset& dataset, const std::vector<Repair>& repairs,
    const std::vector<double>& edges = {0.5, 0.6, 0.7, 0.8, 0.9, 1.0});

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_CALIBRATION_H_
