#include "holoclean/core/calibration.h"

#include "holoclean/util/logging.h"

namespace holoclean {

std::vector<CalibrationBucket> ComputeCalibration(
    const Dataset& dataset, const std::vector<Repair>& repairs,
    const std::vector<double>& edges) {
  HOLO_CHECK(dataset.has_clean());
  HOLO_CHECK(edges.size() >= 2);
  std::vector<CalibrationBucket> buckets;
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    buckets.push_back({edges[i], edges[i + 1], 0, 0});
  }
  for (const Repair& r : repairs) {
    if (r.new_value == r.old_value) continue;
    for (size_t i = 0; i < buckets.size(); ++i) {
      bool is_last = i + 1 == buckets.size();
      bool in_bucket = r.probability >= buckets[i].lo &&
                       (is_last ? r.probability <= buckets[i].hi
                                : r.probability < buckets[i].hi);
      if (!in_bucket) continue;
      ++buckets[i].total;
      if (dataset.clean().Get(r.cell) != r.new_value) ++buckets[i].wrong;
      break;
    }
  }
  return buckets;
}

}  // namespace holoclean
