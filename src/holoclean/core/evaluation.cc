#include "holoclean/core/evaluation.h"

#include "holoclean/util/logging.h"

namespace holoclean {

EvalResult EvaluateRepairs(const Dataset& dataset,
                           const std::vector<Repair>& repairs) {
  HOLO_CHECK(dataset.has_clean());
  EvalResult result;
  result.total_errors = dataset.TrueErrors().size();
  for (const Repair& r : repairs) {
    if (r.new_value == r.old_value) continue;  // Not an actual change.
    ++result.total_repairs;
    if (dataset.clean().Get(r.cell) == r.new_value) {
      ++result.correct_repairs;
    }
  }
  if (result.total_repairs > 0) {
    result.precision = static_cast<double>(result.correct_repairs) /
                       static_cast<double>(result.total_repairs);
  }
  if (result.total_errors > 0) {
    result.recall = static_cast<double>(result.correct_repairs) /
                    static_cast<double>(result.total_errors);
  }
  if (result.precision + result.recall > 0.0) {
    result.f1 = 2.0 * result.precision * result.recall /
                (result.precision + result.recall);
  }
  return result;
}

}  // namespace holoclean
