#ifndef HOLOCLEAN_CORE_INPUTS_H_
#define HOLOCLEAN_CORE_INPUTS_H_

#include <memory>
#include <utility>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"
#include "holoclean/detect/error_detector.h"
#include "holoclean/extdata/ext_dict.h"
#include "holoclean/extdata/matching_dependency.h"
#include "holoclean/storage/dataset.h"
#include "holoclean/util/status.h"

namespace holoclean {

/// The value-typed input bundle of one cleaning instance: the dataset, its
/// denial constraints, and the optional external-data signal (dictionaries
/// + matching dependencies) and extra detectors. Replaces the legacy
/// five-positional-raw-pointer calling convention of the removed facade.
///
/// Each input comes in a borrowed and an owned flavor:
///  - Borrowed(...) wraps raw pointers; the caller guarantees they outlive
///    every session/job built over the bundle (the legacy contract).
///  - Owned(...) takes shared_ptrs; the bundle (and therefore the session
///    or batch job holding it) keeps the inputs alive, so callers can fire
///    an async job and let their own handles go out of scope.
/// The two flavors can mix (e.g. an owned dataset with borrowed
/// constraints); an owned pointer wins over a borrowed one for the same
/// slot. Copies share ownership — a bundle is cheap to pass by value.
///
/// Only `dataset` is mutated by a run (dictionary interning, feedback
/// pins); everything else is read-only. Concurrent jobs must not share a
/// Dataset object (their dictionary interning would race) — give each job
/// its own copy, or serialize them through one session.
struct CleaningInputs {
  // Borrowed (non-owning) inputs.
  Dataset* dataset = nullptr;
  const std::vector<DenialConstraint>* dcs = nullptr;
  const ExtDictCollection* dicts = nullptr;
  const std::vector<MatchingDependency>* mds = nullptr;
  const DetectorSuite* extra_detectors = nullptr;

  // Owned inputs; non-null takes precedence over the borrowed slot.
  std::shared_ptr<Dataset> owned_dataset;
  std::shared_ptr<const std::vector<DenialConstraint>> owned_dcs;
  std::shared_ptr<const ExtDictCollection> owned_dicts;
  std::shared_ptr<const std::vector<MatchingDependency>> owned_mds;
  std::shared_ptr<const DetectorSuite> owned_detectors;

  static CleaningInputs Borrowed(
      Dataset* dataset, const std::vector<DenialConstraint>* dcs,
      const ExtDictCollection* dicts = nullptr,
      const std::vector<MatchingDependency>* mds = nullptr,
      const DetectorSuite* extra_detectors = nullptr) {
    CleaningInputs inputs;
    inputs.dataset = dataset;
    inputs.dcs = dcs;
    inputs.dicts = dicts;
    inputs.mds = mds;
    inputs.extra_detectors = extra_detectors;
    return inputs;
  }

  static CleaningInputs Owned(
      std::shared_ptr<Dataset> dataset,
      std::shared_ptr<const std::vector<DenialConstraint>> dcs,
      std::shared_ptr<const ExtDictCollection> dicts = nullptr,
      std::shared_ptr<const std::vector<MatchingDependency>> mds = nullptr,
      std::shared_ptr<const DetectorSuite> extra_detectors = nullptr) {
    CleaningInputs inputs;
    inputs.owned_dataset = std::move(dataset);
    inputs.owned_dcs = std::move(dcs);
    inputs.owned_dicts = std::move(dicts);
    inputs.owned_mds = std::move(mds);
    inputs.owned_detectors = std::move(extra_detectors);
    return inputs;
  }

  Dataset* dataset_ptr() const {
    return owned_dataset != nullptr ? owned_dataset.get() : dataset;
  }
  const std::vector<DenialConstraint>* dcs_ptr() const {
    return owned_dcs != nullptr ? owned_dcs.get() : dcs;
  }
  const ExtDictCollection* dicts_ptr() const {
    return owned_dicts != nullptr ? owned_dicts.get() : dicts;
  }
  const std::vector<MatchingDependency>* mds_ptr() const {
    return owned_mds != nullptr ? owned_mds.get() : mds;
  }
  const DetectorSuite* detectors_ptr() const {
    return owned_detectors != nullptr ? owned_detectors.get()
                                      : extra_detectors;
  }

  /// True when every input the bundle references is owned (no borrowed
  /// raw pointer is load-bearing). Only fully owned bundles may outlive
  /// their caller — e.g. be parked in an Engine's session LRU.
  bool FullyOwned() const {
    auto owned = [](const void* borrowed, const void* owner) {
      return borrowed == nullptr || owner != nullptr;
    };
    return owned(dataset, owned_dataset.get()) &&
           owned(dcs, owned_dcs.get()) && owned(dicts, owned_dicts.get()) &&
           owned(mds, owned_mds.get()) &&
           owned(extra_detectors, owned_detectors.get());
  }

  /// The dataset and the constraint set are mandatory; everything else is
  /// optional signal.
  Status Validate() const {
    if (dataset_ptr() == nullptr) {
      return Status::InvalidArgument("null dataset");
    }
    if (dcs_ptr() == nullptr) {
      return Status::InvalidArgument("null denial-constraint set");
    }
    return Status::OK();
  }
};

}  // namespace holoclean

#endif  // HOLOCLEAN_CORE_INPUTS_H_
