#include "holoclean/ddlog/program.h"

#include <set>
#include <sstream>

namespace holoclean {

std::vector<DcHeadSlot> EnumerateHeadSlots(const DenialConstraint& dc) {
  std::set<std::pair<int, AttrId>> seen;
  std::vector<DcHeadSlot> out;
  auto add = [&](int role, AttrId attr) {
    if (seen.insert({role, attr}).second) out.push_back({role, attr});
  };
  for (const Predicate& p : dc.preds) {
    add(p.lhs_tuple, p.lhs_attr);
    if (!p.rhs_is_constant) add(p.rhs_tuple, p.rhs_attr);
  }
  return out;
}

namespace {

std::string ScopeString(const DenialConstraint& dc, const Schema& schema) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dc.preds.size(); ++i) {
    const Predicate& p = dc.preds[i];
    if (i > 0) os << ", ";
    os << "v" << (p.lhs_tuple + 1) << "_" << schema.name(p.lhs_attr) << " "
       << OpName(p.op) << " ";
    if (p.rhs_is_constant) {
      os << "\"" << p.constant << "\"";
    } else {
      os << "v" << (p.rhs_tuple + 1) << "_" << schema.name(p.rhs_attr);
    }
  }
  os << "]";
  return os.str();
}

std::string ValuePred(int role, AttrId attr, const Schema& schema) {
  std::ostringstream os;
  os << "Value?(t" << (role + 1) << "," << schema.name(attr) << ",v"
     << (role + 1) << "_" << schema.name(attr) << ")";
  return os.str();
}

std::string InitPred(int role, AttrId attr, const Schema& schema) {
  std::ostringstream os;
  os << "InitValue(t" << (role + 1) << "," << schema.name(attr) << ",v"
     << (role + 1) << "_" << schema.name(attr) << ")";
  return os.str();
}

}  // namespace

std::string InferenceRule::ToDDlog(
    const Schema& schema, const std::vector<DenialConstraint>& dcs) const {
  std::ostringstream os;
  switch (kind) {
    case RuleKind::kRandomVariable:
      os << "Value?(t,a,d) :- Domain(t,a,d)";
      break;
    case RuleKind::kFeature:
      os << "Value?(t,a,d) :- HasFeature(t,a,f) weight = w(d,f)";
      break;
    case RuleKind::kMinimalityPrior:
      os << "Value?(t,a,d) :- InitValue(t,a,d) weight = " << fixed_weight;
      break;
    case RuleKind::kExtDictMatch:
      os << "Value?(t,a,d) :- Matched(t,a,d," << dict_id
         << ") weight = w(k=" << dict_id << ")";
      break;
    case RuleKind::kDcFactor: {
      const DenialConstraint& dc = dcs[static_cast<size_t>(dc_index)];
      os << "!(";
      auto slots = EnumerateHeadSlots(dc);
      for (size_t i = 0; i < slots.size(); ++i) {
        if (i > 0) os << " ^ ";
        os << ValuePred(slots[i].role, slots[i].attr, schema);
      }
      os << ") :- Tuple(t1)";
      if (dc.IsTwoTuple()) os << ",Tuple(t2)";
      os << "," << ScopeString(dc, schema) << " weight = " << fixed_weight;
      break;
    }
    case RuleKind::kDcRelaxedFeature: {
      const DenialConstraint& dc = dcs[static_cast<size_t>(dc_index)];
      os << "!" << ValuePred(head.role, head.attr, schema) << " :- ";
      bool first = true;
      for (const DcHeadSlot& slot : EnumerateHeadSlots(dc)) {
        if (slot.role == head.role && slot.attr == head.attr) continue;
        if (!first) os << ",";
        first = false;
        os << InitPred(slot.role, slot.attr, schema);
      }
      if (!first) os << ",";
      os << "Tuple(t1)";
      if (dc.IsTwoTuple()) os << ",Tuple(t2)";
      os << "," << ScopeString(dc, schema) << " weight = w(sigma="
         << dc_index << ")";
      break;
    }
  }
  return os.str();
}

std::string Program::ToDDlog(const Schema& schema,
                             const std::vector<DenialConstraint>& dcs) const {
  std::ostringstream os;
  for (const InferenceRule& rule : rules) {
    os << rule.ToDDlog(schema, dcs) << "\n";
  }
  return os.str();
}

}  // namespace holoclean
