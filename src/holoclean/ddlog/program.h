#ifndef HOLOCLEAN_DDLOG_PROGRAM_H_
#define HOLOCLEAN_DDLOG_PROGRAM_H_

#include <string>
#include <vector>

#include "holoclean/constraints/denial_constraint.h"

namespace holoclean {

/// The kinds of inference rules HoloClean's compiler emits (paper Section 4.2
/// and Section 5.2). Grounding dispatches on this tag; ToDDlog() renders the
/// declarative form the paper shows.
enum class RuleKind {
  /// Value?(t,a,d) :- Domain(t,a,d) — declares the random variables.
  kRandomVariable,
  /// Value?(t,a,d) :- HasFeature(t,a,f) weight = w(d,f) — co-occurrence
  /// (and, when provenance exists, source) features.
  kFeature,
  /// Value?(t,a,d) :- InitValue(t,a,d) weight = w0 — minimality prior.
  kMinimalityPrior,
  /// Value?(t,a,d) :- Matched(t,a,d,k) weight = w(k) — external data.
  kExtDictMatch,
  /// !(Value? ∧ ... ∧ Value?) :- Tuple(t1),Tuple(t2),[scope] weight = w —
  /// the DC factor of Algorithm 1 (soft constraint with fixed weight).
  kDcFactor,
  /// !Value?(head) :- InitValue(...),...,[scope] weight = w(σ) — the
  /// relaxed per-head rules of Section 5.2 (Example 6).
  kDcRelaxedFeature,
};

/// A cell slot of a denial constraint: one (tuple role, attribute) pair whose
/// Value? predicate can serve as the head of a relaxed rule.
struct DcHeadSlot {
  int role = 0;
  AttrId attr = 0;
};

/// One inference rule of the generated program.
struct InferenceRule {
  RuleKind kind = RuleKind::kRandomVariable;

  /// For kDcFactor / kDcRelaxedFeature: index into the DC list.
  int dc_index = -1;
  /// For kDcRelaxedFeature: which cell slot is the head Value? predicate.
  DcHeadSlot head;
  /// For kExtDictMatch: dictionary id.
  int dict_id = -1;
  /// Fixed weight (kDcFactor, kMinimalityPrior); learned weights are
  /// parameterized and live in the WeightStore.
  double fixed_weight = 0.0;
  bool weight_is_learned = false;

  /// Renders the rule in the DDlog-style syntax of the paper.
  std::string ToDDlog(const Schema& schema,
                      const std::vector<DenialConstraint>& dcs) const;
};

/// The probabilistic program the compiler hands to grounding.
struct Program {
  std::vector<InferenceRule> rules;

  std::string ToDDlog(const Schema& schema,
                      const std::vector<DenialConstraint>& dcs) const;
};

/// Enumerates the distinct head slots of a denial constraint — the relaxation
/// procedure of Section 5.2 emits one rule per slot.
std::vector<DcHeadSlot> EnumerateHeadSlots(const DenialConstraint& dc);

}  // namespace holoclean

#endif  // HOLOCLEAN_DDLOG_PROGRAM_H_
