#include <gtest/gtest.h>

#include <cmath>

#include "holoclean/infer/gibbs.h"
#include "holoclean/infer/learner.h"
#include "holoclean/infer/marginals.h"
#include "holoclean/model/feature_registry.h"

namespace holoclean {
namespace {

// ---------- Softmax ----------

TEST(Softmax, SumsToOne) {
  auto p = Softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, NumericallyStableForLargeScores) {
  auto p = Softmax({1000.0, 1001.0});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Softmax, UniformForEqualScores) {
  auto p = Softmax({0.5, 0.5, 0.5, 0.5});
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(Softmax, EmptyInputYieldsEmptyOutput) {
  // Guarded: *std::max_element on an empty range would be UB.
  EXPECT_TRUE(Softmax({}).empty());
  std::vector<double> scores;
  SoftmaxInPlace(&scores);
  EXPECT_TRUE(scores.empty());
}

TEST(Softmax, InPlaceVariantMatchesBitForBit) {
  std::vector<double> scores = {-3.5, 0.0, 1.25, 1000.0, 999.5};
  std::vector<double> expected = Softmax(scores);
  SoftmaxInPlace(&scores);
  ASSERT_EQ(scores.size(), expected.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(scores[i], expected[i]);
  }
}

// A tiny hand-built graph:
//   feature keys: 1 ("f1"), 2 ("f2").
//   Evidence variables expose a learnable pattern: label candidate carries
//   f1, the other candidate carries f2.
Variable MakeVar(CellRef cell, bool evidence, int init_index,
                 std::vector<std::vector<FeatureInstance>> per_candidate) {
  Variable var;
  var.cell = cell;
  var.is_evidence = evidence;
  var.init_index = init_index;
  var.domain.resize(per_candidate.size());
  for (size_t i = 0; i < per_candidate.size(); ++i) {
    var.domain[i] = static_cast<ValueId>(100 + i);
  }
  var.prior_bias.assign(per_candidate.size(), 0.0);
  var.feat_begin.push_back(0);
  for (const auto& feats : per_candidate) {
    for (const auto& f : feats) var.features.push_back(f);
    var.feat_begin.push_back(static_cast<int32_t>(var.features.size()));
  }
  return var;
}

TEST(SgdLearner, LearnsSeparableWeights) {
  FactorGraph graph;
  for (int i = 0; i < 50; ++i) {
    graph.AddVariable(MakeVar({i, 0}, /*evidence=*/true, /*init=*/0,
                              {{{1, 1.0f}}, {{2, 1.0f}}}));
  }
  // A query variable with the same feature pattern.
  graph.AddVariable(MakeVar({99, 0}, /*evidence=*/false, 1,
                            {{{1, 1.0f}}, {{2, 1.0f}}}));

  WeightStore weights;
  LearnerOptions options;
  options.epochs = 30;
  SgdLearner learner(&graph, options);
  auto nll = learner.Train(&weights);
  ASSERT_EQ(nll.size(), 30u);
  // NLL decreases and w(f1) > w(f2).
  EXPECT_LT(nll.back(), nll.front());
  EXPECT_GT(weights.Get(1), weights.Get(2));

  // The query variable now prefers candidate 0.
  Marginals marginals = ExactIndependentMarginals(graph, weights);
  int query = graph.query_vars()[0];
  EXPECT_EQ(marginals.MapIndex(query), 0);
  EXPECT_GT(marginals.MapProb(query), 0.5);
}

TEST(SgdLearner, NoEvidenceNoCrash) {
  FactorGraph graph;
  graph.AddVariable(MakeVar({0, 0}, false, 0, {{{1, 1.0f}}, {{2, 1.0f}}}));
  WeightStore weights;
  SgdLearner learner(&graph, LearnerOptions());
  EXPECT_TRUE(learner.Train(&weights).empty());
}

TEST(SgdLearner, L2ShrinksWeights) {
  FactorGraph graph;
  for (int i = 0; i < 20; ++i) {
    graph.AddVariable(MakeVar({i, 0}, true, 0,
                              {{{1, 1.0f}}, {{2, 1.0f}}}));
  }
  LearnerOptions strong;
  strong.epochs = 20;
  strong.l2 = 0.5;
  LearnerOptions weak;
  weak.epochs = 20;
  weak.l2 = 0.0;
  WeightStore w_strong;
  WeightStore w_weak;
  SgdLearner(&graph, strong).Train(&w_strong);
  SgdLearner(&graph, weak).Train(&w_weak);
  EXPECT_LT(std::abs(w_strong.Get(1)), std::abs(w_weak.Get(1)));
}

TEST(ExactMarginals, EvidenceIsPointMass) {
  FactorGraph graph;
  graph.AddVariable(MakeVar({0, 0}, true, 1, {{{1, 1.0f}}, {{2, 1.0f}}}));
  WeightStore weights;
  Marginals m = ExactIndependentMarginals(graph, weights);
  EXPECT_DOUBLE_EQ(m.Of(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(m.Of(0)[1], 1.0);
  EXPECT_EQ(m.MapIndex(0), 1);
}

TEST(ExactMarginals, MatchesSoftmaxOfScores) {
  FactorGraph graph;
  Variable var = MakeVar({0, 0}, false, 0, {{{1, 1.0f}}, {{2, 1.0f}}});
  var.prior_bias = {0.5, 0.0};
  graph.AddVariable(var);
  WeightStore weights;
  weights.Set(1, 1.0);
  weights.Set(2, 0.25);
  Marginals m = ExactIndependentMarginals(graph, weights);
  auto expected = Softmax({1.5, 0.25});
  EXPECT_NEAR(m.Of(0)[0], expected[0], 1e-12);
  EXPECT_NEAR(m.Of(0)[1], expected[1], 1e-12);
}

// ---------- Gibbs ----------

// Without factors the Gibbs marginals must converge to the independent
// softmax marginals.
TEST(Gibbs, MatchesExactMarginalsWithoutFactors) {
  FactorGraph graph;
  Variable var = MakeVar({0, 0}, false, 0, {{{1, 1.0f}}, {{2, 1.0f}}});
  graph.AddVariable(var);
  Table table(Schema({"A"}), std::make_shared<Dictionary>());
  table.AppendRow({"x"});
  std::vector<DenialConstraint> dcs;
  WeightStore weights;
  weights.Set(1, 1.0);

  GibbsOptions options;
  options.burn_in = 50;
  options.samples = 4000;
  GibbsSampler sampler(&graph, &table, &dcs, &weights, options);
  Marginals gibbs = sampler.Run();
  Marginals exact = ExactIndependentMarginals(graph, weights);
  EXPECT_NEAR(gibbs.Of(0)[0], exact.Of(0)[0], 0.03);
}

// A two-variable graph with a pairwise constraint factor: compare Gibbs
// marginals against brute-force enumeration of the joint distribution.
TEST(Gibbs, MatchesBruteForceWithFactor) {
  Table table(Schema({"V"}), std::make_shared<Dictionary>());
  table.AppendRow({"a"});
  table.AppendRow({"b"});
  ValueId a = table.dict().Lookup("a");
  ValueId b = table.dict().Lookup("b");

  // Constraint: the two cells must not differ (violated when unequal).
  Schema schema = table.schema();
  DenialConstraint dc;
  dc.name = "equal";
  Predicate p;
  p.lhs_tuple = 0;
  p.lhs_attr = 0;
  p.op = Op::kNeq;
  p.rhs_tuple = 1;
  p.rhs_attr = 0;
  dc.preds.push_back(p);
  std::vector<DenialConstraint> dcs = {dc};

  FactorGraph graph;
  for (int t = 0; t < 2; ++t) {
    Variable var;
    var.cell = {t, 0};
    var.domain = {a, b};
    var.init_index = t;  // Observed: t0="a", t1="b" (conflicting).
    var.is_evidence = false;
    var.prior_bias = {0.0, 0.0};
    var.feat_begin = {0, 0, 0};
    graph.AddVariable(var);
  }
  double w = 1.2;
  graph.AddDcFactor({0, 0, 1, w, {0, 1}});

  WeightStore weights;
  GibbsOptions options;
  options.burn_in = 200;
  options.samples = 30000;
  options.seed = 9;
  GibbsSampler sampler(&graph, &table, &dcs, &weights, options);
  Marginals gibbs = sampler.Run();

  // Brute force: states (i, j) with energy -w when i != j.
  double z = 0.0;
  double p0_a = 0.0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      double score = i != j ? -w : 0.0;
      double mass = std::exp(score);
      z += mass;
      if (i == 0) p0_a += mass;
    }
  }
  EXPECT_NEAR(gibbs.Of(0)[0], p0_a / z, 0.02);
}

TEST(Gibbs, DeterministicForSeed) {
  FactorGraph graph;
  graph.AddVariable(MakeVar({0, 0}, false, 0, {{{1, 1.0f}}, {{2, 1.0f}}}));
  Table table(Schema({"A"}), std::make_shared<Dictionary>());
  table.AppendRow({"x"});
  std::vector<DenialConstraint> dcs;
  WeightStore weights;
  GibbsOptions options;
  options.samples = 100;
  GibbsSampler s1(&graph, &table, &dcs, &weights, options);
  GibbsSampler s2(&graph, &table, &dcs, &weights, options);
  EXPECT_EQ(s1.Run().Of(0), s2.Run().Of(0));
}

TEST(Gibbs, MarginalsSumToOne) {
  FactorGraph graph;
  graph.AddVariable(
      MakeVar({0, 0}, false, 0,
              {{{1, 1.0f}}, {{2, 1.0f}}, {{1, 0.5f}, {2, 0.5f}}}));
  Table table(Schema({"A"}), std::make_shared<Dictionary>());
  table.AppendRow({"x"});
  std::vector<DenialConstraint> dcs;
  WeightStore weights;
  GibbsOptions options;
  GibbsSampler sampler(&graph, &table, &dcs, &weights, options);
  Marginals m = sampler.Run();
  double sum = 0.0;
  for (double p : m.Of(0)) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace holoclean
